// Production scenario suite: runs registered datacenter scenarios (incast,
// multi-tenant, mice-elephants, churn -- scenario/scenario.hpp) through the
// orchestrator and evaluates each scenario's self-check contracts.  Every
// violated contract prints a FAIL row and the exit code is non-zero, so CI
// runs this binary as a production-behaviour regression gate.
//
//   --scenario=NAME   run one scenario instead of the whole registry
//   --list-scenarios  print the registry and exit
//   --shards=N        sharded engine per arm; --threads / --quick as usual
#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/scenario_sweep.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report("scenarios", opts);

  ScenarioSweepOptions options;
  options.threads = opts.threads();
  options.shards = opts.shards();
  options.quick = opts.quick();
  options.base_seed = opts.seed();
  options.profile = opts.profile();
  options.progress = opts.progress();

  std::vector<std::string> selected;
  if (opts.scenario()) selected.push_back(*opts.scenario());

  std::printf("Production scenario suite: %s\n%d-port %d-tree, %s mode\n",
              opts.scenario() ? opts.scenario()->c_str()
                              : scenario_listing().c_str(),
              options.m, options.n, options.quick ? "quick" : "full");

  const std::vector<ScenarioReport> reports =
      run_scenarios(selected, options);

  int violations = 0;
  for (const ScenarioReport& r : reports) {
    std::printf("\n%s", render_scenario_table(r).c_str());
    std::printf("%s", render_contract_table(r).c_str());
    violations += r.violations();
    for (const ScenarioPoint& p : r.points) {
      const std::string series = r.name + "/" + p.arm;
      if (p.closed_loop) {
        report.add(series, p.burst, p.manifest);
      } else {
        report.add(series, p.sim, p.manifest);
      }
    }
  }

  std::printf("\n(wrote %s)\n", report.write().c_str());
  if (violations > 0) {
    std::fprintf(stderr, "%d scenario contract(s) violated\n", violations);
    return 1;
  }
  return 0;
}

// Ablation A12: network scaling (the paper's Remark 3).  Fixes the port
// count and deepens the tree, reporting the MLID/SLID saturation ratio per
// size -- the "improvement is more noticeable while a network size is
// getting larger" claim as one table.
#include <cstdio>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);

  std::puts("Ablation A12: scaling with tree height (20%-centric, 1 VL)");
  // The loop below applies its own --quick grid, so the sweep-level quick
  // shrink stays off; the other flags pass through.
  SweepOptions sweep = opts.sweep_options();
  sweep.quick = false;
  TextTable table({"network", "nodes", "SLID sat B/ns/node",
                   "MLID sat B/ns/node", "MLID/SLID"});
  for (const auto& [m, n] : {std::pair{4, 2}, std::pair{4, 3},
                             std::pair{4, 4}, std::pair{8, 2},
                             std::pair{8, 3}}) {
    FigureSpec spec;
    spec.title = "scaling";
    spec.m = m;
    spec.n = n;
    spec.traffic = {TrafficKind::kCentric, 0.20, 0, opts.seed() ^ 0xABCu};
    spec.sim.seed = opts.seed();
    spec.vl_counts = {1};
    if (opts.quick()) {
      spec.sim.warmup_ns = 5'000;
      spec.sim.measure_ns = 20'000;
      spec.loads = {0.3, 0.6, 0.9};
    } else {
      spec.loads = {0.2, 0.4, 0.6, 0.8, 0.95};
    }
    const auto points = run_sweep(spec, sweep);
    spec.title = std::to_string(m) + "-port " + std::to_string(n) + "-tree";
    report.add_figure(spec, points);
    const double slid = saturation_throughput(points, "SLID", 1);
    const double mlid = saturation_throughput(points, "MLID", 1);
    table.add_row({std::to_string(m) + "-port " + std::to_string(n) + "-tree",
                   std::to_string(FatTreeParams(m, n).num_nodes()),
                   TextTable::num(slid, 4), TextTable::num(mlid, 4),
                   TextTable::num(mlid / slid, 3) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: the MLID/SLID ratio grows along both axes"
            " (taller trees and\nwider switches), Remark 3 of the paper.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

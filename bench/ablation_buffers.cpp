// Ablation A3: buffer depth.  The paper fixes input/output buffers at one
// packet per VL; this sweep shows how much of the saturation gap is due to
// the resulting credit-loop bubble, and that MLID's relative advantage
// persists with deeper buffers.
#include <cstdio>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 4, n = 3;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  std::printf("Ablation A3: buffer depth, %d-port %d-tree, uniform, "
              "offered load 0.9\n", m, n);
  TextTable table({"bufs (pkts)", "SLID B/ns/node", "SLID lat ns",
                   "MLID B/ns/node", "MLID lat ns", "MLID/SLID"});
  for (const int depth : {1, 2, 4, 8}) {
    SimConfig cfg;
    cfg.in_buf_pkts = depth;
    cfg.out_buf_pkts = depth;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kUniform, 0.20, 0,
                                opts.seed() ^ 0xAB3u};
    const SimResult s = Simulation::open_loop(slid, cfg, traffic, 0.9).run();
    const SimResult q = Simulation::open_loop(mlid, cfg, traffic, 0.9).run();
    report.add("SLID/bufs=" + std::to_string(depth), s);
    report.add("MLID/bufs=" + std::to_string(depth), q);
    table.add_row({std::to_string(depth),
                   TextTable::num(s.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(s.avg_latency_ns, 1),
                   TextTable::num(q.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(q.avg_latency_ns, 1),
                   TextTable::num(q.accepted_bytes_per_ns_per_node /
                                      s.accepted_bytes_per_ns_per_node,
                                  3) +
                       "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: absolute throughput rises with depth (credit"
            " bubble amortized);\nMLID >= SLID at every depth.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

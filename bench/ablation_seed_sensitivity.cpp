// Ablation A14: statistical robustness.  Replicates the headline
// comparison (20%-centric, 1 VL, offered load 0.9) across independent
// seeds and reports mean +/- stddev for both schemes plus the per-seed
// ratio range -- the error bars behind the EXPERIMENTS.md tables.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int runs = opts.quick() ? 3 : 10;

  std::printf("Ablation A14: seed sensitivity (%d replications, 20%%-centric,"
              " offered load 0.9, 1 VL)\n", runs);
  TextTable table({"network", "SLID mean B/ns/node", "SLID stddev",
                   "MLID mean B/ns/node", "MLID stddev", "mean ratio"});
  for (const auto& [m, n] : {std::pair{4, 3}, std::pair{8, 2}}) {
    const FatTreeFabric fabric{FatTreeParams(m, n)};
    const Subnet slid(fabric, "SLID");
    const Subnet mlid(fabric, "MLID");
    SimConfig cfg;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kCentric, 0.20, 0,
                                opts.seed() ^ 0xABEu};
    const Replication rs = replicate(slid, cfg, traffic, 0.9, runs);
    const Replication rq = replicate(mlid, cfg, traffic, 0.9, runs);
    const std::string net =
        std::to_string(m) + "-port-" + std::to_string(n) + "-tree";
    report.add("SLID/" + net + "/first-replication", rs.first);
    report.add("MLID/" + net + "/first-replication", rq.first);
    table.add_row({std::to_string(m) + "-port " + std::to_string(n) + "-tree",
                   TextTable::num(rs.accepted.mean(), 4),
                   TextTable::num(rs.accepted.stddev(), 4),
                   TextTable::num(rq.accepted.mean(), 4),
                   TextTable::num(rq.accepted.stddev(), 4),
                   TextTable::num(rq.accepted.mean() / rs.accepted.mean(),
                                  3) +
                       "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: per-scheme stddev well below the MLID-SLID"
            " gap, i.e. the paper's\ncomparison is not a seed artifact.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Ablation A10: QoS via VL weights.  Two traffic classes share the fabric:
// a latency-critical class pinned to VL0 and a bulk background class on
// VL1 (kBySource parity split as a stand-in for SL-based classification).
// Sweeping the VL0:VL1 arbitration weight shows the latency isolation the
// IBA VLArb mechanism buys the critical class.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 4, n = 3;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet subnet(fabric, "MLID");

  std::printf("Ablation A10: VL-weight QoS, %d-port %d-tree, uniform traffic"
              " at offered load 0.9\n", m, n);
  std::puts("(even-PID nodes inject on VL0 = critical, odd on VL1 = bulk)");
  TextTable table({"VL0:VL1 weight", "VL0 delivered", "VL1 delivered",
                   "share VL0", "VL0 lat ns", "VL1 lat ns"});
  for (const int w0 : {1, 2, 4, 8}) {
    SimConfig cfg;
    cfg.num_vls = 2;
    cfg.vl_policy = VlPolicy::kBySource;  // parity-based classes
    cfg.vl_weights = {w0, 1};
    // Depth > 1 so per-VL credits don't force strict alternation (with
    // single-packet buffers a VL is never eligible twice in a row and the
    // arbiter has nothing to weigh).
    cfg.in_buf_pkts = 4;
    cfg.out_buf_pkts = 4;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    Simulation sim = Simulation::open_loop(subnet, cfg,
                                           {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0xABAu},
                                           0.9);
    const SimResult r = sim.run();
    report.add("weights=" + std::to_string(w0) + ":1", r);
    const double total = static_cast<double>(r.delivered_per_vl[0] +
                                             r.delivered_per_vl[1]);
    table.add_row({std::to_string(w0) + ":1",
                   std::to_string(r.delivered_per_vl[0]),
                   std::to_string(r.delivered_per_vl[1]),
                   TextTable::num(
                       static_cast<double>(r.delivered_per_vl[0]) / total, 3),
                   TextTable::num(r.avg_latency_per_vl_ns[0], 1),
                   TextTable::num(r.avg_latency_per_vl_ns[1], 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: the critical class's delivered share and"
            " latency improve with its\nweight and plateau once it is no"
            " longer arbitration-limited; the bulk class pays\nthe"
            " difference.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

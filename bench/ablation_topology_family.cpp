// Ablation A7: topology family.  Compares the paper's m-port n-tree against
// a k-ary n-tree built from the same 2k-port switches at (near-)matching
// node counts.  The m-port family hosts twice the nodes per switch row at
// the price of halved per-node root bandwidth, which shows up as earlier
// saturation under uniform traffic.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);

  struct Config {
    const char* label;
    FatTreeParams params;
  };
  const Config configs[] = {
      {"4-port 3-tree (16 nodes, 20 sw)", FatTreeParams(4, 3)},
      {"2-ary 4-tree  (16 nodes, 32 sw)", FatTreeParams::kary(2, 4)},
      {"8-port 2-tree (32 nodes, 12 sw)", FatTreeParams(8, 2)},
      {"4-ary 2-tree  (16 nodes,  8 sw)", FatTreeParams::kary(4, 2)},
  };

  std::puts("Ablation A7: m-port n-tree vs k-ary n-tree (MLID, 1 VL)");
  TextTable table({"topology", "nodes", "switches", "load", "accepted B/ns/node",
                   "avg latency ns"});
  for (const Config& config : configs) {
    const FatTreeFabric fabric(config.params);
    const Subnet subnet(fabric, "MLID");
    for (const double load : {0.3, 0.9}) {
      SimConfig cfg;
      cfg.seed = opts.seed();
      if (opts.quick()) {
        cfg.warmup_ns = 5'000;
        cfg.measure_ns = 20'000;
      }
      const SimResult r =
          Simulation::open_loop(subnet, cfg,
                                {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0xAB7u},
                                load)
              .run();
      report.add(std::string(config.label) + "/load=" +
                     TextTable::num(load, 1),
                 r);
      table.add_row({config.label,
                     std::to_string(fabric.params().num_nodes()),
                     std::to_string(fabric.params().num_switches()),
                     TextTable::num(load, 1),
                     TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                     TextTable::num(r.avg_latency_ns, 1)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: at equal node counts the k-ary tree spends"
            " more switches and\nsustains higher per-node throughput; the"
            " m-port tree is the cheaper build.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Ablation A2: virtual-lane count scaling (1..8) under 20%-centric traffic,
// for both schemes.  Extends the paper's {1, 2, 4} grid and quantifies the
// claim that MLID@1VL can beat SLID@2VL on large-port networks.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  std::printf("Ablation A2: VL scaling, %d-port %d-tree, 20%%-centric, "
              "offered load 0.9\n", m, n);
  TextTable table({"VLs", "SLID B/ns/node", "MLID B/ns/node", "MLID/SLID"});
  double slid_2vl = 0.0, mlid_1vl = 0.0;
  for (const int vls : {1, 2, 4, 8}) {
    SimConfig cfg;
    cfg.num_vls = vls;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kCentric, 0.20, 0,
                                opts.seed() ^ 0xAB2u};
    const SimResult slid_r = Simulation::open_loop(slid, cfg, traffic, 0.9).run();
    const SimResult mlid_r = Simulation::open_loop(mlid, cfg, traffic, 0.9).run();
    report.add("SLID/vls=" + std::to_string(vls), slid_r);
    report.add("MLID/vls=" + std::to_string(vls), mlid_r);
    const double s = slid_r.accepted_bytes_per_ns_per_node;
    const double q = mlid_r.accepted_bytes_per_ns_per_node;
    if (vls == 1) mlid_1vl = q;
    if (vls == 2) slid_2vl = s;
    table.add_row({std::to_string(vls), TextTable::num(s, 4),
                   TextTable::num(q, 4), TextTable::num(q / s, 3) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::printf("\nObservation-3 check (large m): MLID@1VL / SLID@2VL = %.3fx"
              " (paper expects >= 1)\n",
              mlid_1vl / slid_2vl);
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Ablation A5: degraded fabrics.  Removes k random inter-switch uplinks
// from an 8-port 2-tree, recomputes BFS-based up*/down* tables (UPDN, full
// LMC) as an SM re-sweep would, and measures the surviving throughput.
// For contrast, the closed-form MLID tables -- valid only for the pristine
// wiring -- are run on the damaged fabric too: the dropped-packet counter
// shows why fault handling needs the generic engine.
#include <cstdio>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "routing/updown.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;

  std::printf("Ablation A5: link failures, %d-port %d-tree, uniform traffic,"
              " offered load 0.6\n", m, n);
  TextTable table({"failed links", "UPDN accepted B/ns/node", "UPDN lat ns",
                   "UPDN drops", "MLID(stale) drops"});
  for (const int failures : {0, 1, 2, 4, 8}) {
    FatTreeFabric fabric{FatTreeParams(m, n)};
    Xoshiro256 rng(opts.seed() * 77 + static_cast<std::uint64_t>(failures));
    int removed = 0;
    while (removed < failures) {
      const auto sw = static_cast<SwitchId>(
          rng.below(fabric.params().num_switches()));
      if (fabric.switch_label(sw).level() == 0) continue;
      const auto port = static_cast<PortId>(
          static_cast<std::uint64_t>(fabric.params().half()) + 1 +
          rng.below(static_cast<std::uint64_t>(fabric.params().half())));
      const DeviceId dev = fabric.switch_device(sw);
      if (!fabric.fabric().device(dev).port_connected(port)) continue;
      fabric.mutable_fabric().disconnect(dev, port);
      ++removed;
    }

    SimConfig cfg;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0,
                                opts.seed() ^ 0xAB5u};

    auto updn = std::make_unique<UpDownRouting>(
        fabric, fabric.params().mlid_lmc());
    if (!updn->fully_connected()) {
      table.add_row({std::to_string(failures), "partitioned", "-", "-", "-"});
      continue;
    }
    const Subnet updn_subnet(fabric, std::move(updn));
    const SimResult r = Simulation::open_loop(updn_subnet, cfg, traffic, 0.6).run();

    const Subnet stale_mlid(fabric, "MLID");
    const SimResult s = Simulation::open_loop(stale_mlid, cfg, traffic, 0.6).run();
    report.add("UPDN/failures=" + std::to_string(failures), r);
    report.add("MLID-stale/failures=" + std::to_string(failures), s);

    table.add_row({std::to_string(failures),
                   TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(r.avg_latency_ns, 1),
                   std::to_string(r.packets_dropped),
                   std::to_string(s.packets_dropped)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: UPDN throughput degrades gracefully with"
            " failures and never drops;\nthe stale closed-form tables drop"
            " packets as soon as one link is gone.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

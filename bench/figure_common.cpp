#include "figure_common.hpp"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>

#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "obs/stream.hpp"

namespace mlid::bench {

FigureSpec paper_figure(std::string title, int m, int n, TrafficKind traffic) {
  FigureSpec spec;
  spec.title = std::move(title);
  spec.m = m;
  spec.n = n;
  spec.traffic.kind = traffic;
  spec.traffic.hot_fraction = 0.20;  // the paper's "20% centric" pattern
  spec.traffic.hot_node = 0;
  return spec;
}

int run_figure_main(int argc, char** argv, FigureSpec spec) {
  const CliOptions opts(argc, argv);
  opts.apply(spec);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  // --metrics-out: one JSONL "point" line per completed grid point, live.
  const std::unique_ptr<MetricsStreamer> metrics = opts.make_metrics_streamer();
  SweepOptions sweep = opts.sweep_options();
  sweep.metrics = metrics.get();
  const auto start = std::chrono::steady_clock::now();
  const auto points = run_sweep(spec, sweep);
  const auto elapsed = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  std::fputs(render_figure_table(spec, points).c_str(), stdout);
  std::fputs("\n", stdout);
  std::fputs(render_figure_summary(spec, points).c_str(), stdout);
  if (opts.csv()) {
    std::fputs("\n", stdout);
    std::fputs(render_figure_csv(spec, points).c_str(), stdout);
  }
  if (opts.json()) {
    std::fputs("\n", stdout);
    std::fputs(to_json(spec, points).c_str(), stdout);
    std::fputs("\n", stdout);
  }
  if (!opts.out_path().empty()) {
    std::ofstream csv(opts.out_path() + ".csv");
    csv << render_figure_csv(spec, points);
    if (opts.json()) {
      std::ofstream json(opts.out_path() + ".json");
      json << to_json(spec, points) << "\n";
    }
    std::printf("\n(wrote %s.csv%s)\n", opts.out_path().c_str(),
                opts.json() ? " and .json" : "");
  }
  report.add_figure(spec, points);
  const std::string bench_path = report.write();
  std::printf("\n(wrote %s)\n", bench_path.c_str());
  std::printf("(%zu simulations in %.1f s%s)\n", points.size(), elapsed,
              opts.quick() ? ", --quick mode" : "");
  return 0;
}

}  // namespace mlid::bench

// Ablation A16: congestion control under hot-spot traffic.  A congestion
// tree rooted at the hot node's terminal link backs up through the fabric
// and punishes victim flows that merely share switches with it.  This
// sweep runs hot-spot fractions x {CC off, CC on} x {SLID, MLID} and
// checks that FECN/BECN marking plus CCT source throttling recovers the
// victims: lower victim-flow p99 latency and higher delivered-throughput
// fairness, for both routing schemes.
#include <cstdio>
#include <string>
#include <vector>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  // Below the uniform-traffic saturation point (~0.37 with the paper's
  // one-packet buffers): the hot node's oversubscribed terminal link is
  // then the *only* bottleneck, so the victims' pain is pure congestion
  // spreading -- exactly what CC is supposed to cure.
  const double kLoad = 0.30;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  // The CC operating point: mark early (the paper-model buffers are one
  // packet deep, so depth 3 already means a formed backlog), return BECNs
  // fast, and throttle hard enough that the hot node's sources drain the
  // congestion tree instead of feeding it.
  CcConfig cc;
  cc.enabled = true;
  cc.becn_increase = 4;
  cc.cct_quantum_ns = 600;
  cc.timer_ns = 15'000;

  std::printf(
      "Ablation A16: congestion control, %d-port %d-tree, offered load "
      "%.2f, 1 VL, hot node 0\n"
      "CC: threshold=%u pkts, stall=%lld ns, quantum=%lld ns, timer=%lld "
      "ns, levels=%u, increase=%u\n",
      m, n, kLoad, cc.fecn_threshold_pkts,
      static_cast<long long>(cc.fecn_stall_ns),
      static_cast<long long>(cc.cct_quantum_ns),
      static_cast<long long>(cc.timer_ns), cc.cct_levels, cc.becn_increase);

  std::vector<double> fractions = {0.10, 0.20, 0.40};
  if (opts.quick()) fractions = {0.20};

  TextTable table({"scheme", "hot frac", "cc", "victim p99 ns", "jain",
                   "accepted B/ns/node", "fecn", "becn", "throttled"});
  int violations = 0;
  for (const auto& [name, subnet] :
       {std::pair<const char*, const Subnet*>{"SLID", &slid},
        std::pair<const char*, const Subnet*>{"MLID", &mlid}}) {
    for (const double h : fractions) {
      SimConfig cfg;
      cfg.seed = opts.seed();
      // Sampler on by default: the BENCH json then carries a timeline per
      // cell, and the CC-on cells show the BECN burst and CCT onset
      // time-resolved (used by the EXPERIMENTS.md plot).
      cfg.sample_interval_ns = opts.sample_interval_ns().value_or(1'000);
      if (opts.quick()) {
        cfg.warmup_ns = 5'000;
        cfg.measure_ns = 20'000;
      }
      const TrafficConfig traffic{TrafficKind::kCentric, h, 0,
                                  opts.seed() ^ 0xCCAu};
      const SimResult off =
          Simulation::open_loop(*subnet, cfg, traffic, kLoad).run();
      SimConfig on_cfg = cfg;
      on_cfg.cc = cc;
      const SimResult on =
          Simulation::open_loop(*subnet, on_cfg, traffic, kLoad).run();
      report.add(std::string(name) + "/hot=" + TextTable::num(h, 2) + "/off",
                 off);
      report.add(std::string(name) + "/hot=" + TextTable::num(h, 2) + "/on",
                 on);
      for (const SimResult* r : {&off, &on}) {
        table.add_row(
            {name, TextTable::num(h, 2), r == &on ? "on" : "off",
             TextTable::num(r->victim_p99_latency_ns, 1),
             TextTable::num(r->jain_fairness_index, 4),
             TextTable::num(r->accepted_bytes_per_ns_per_node, 4),
             std::to_string(r->cc.fecn_marked),
             std::to_string(r->cc.becn_received),
             std::to_string(r->cc.throttled_pkts)});
      }
      // Acceptance: CC must help the victims at every operating point --
      // strictly lower victim p99 and no worse Jain fairness.
      if (!(on.victim_p99_latency_ns < off.victim_p99_latency_ns)) {
        std::printf("  VIOLATION: %s hot=%.2f victim p99 %.1f -> %.1f\n",
                    name, h, off.victim_p99_latency_ns,
                    on.victim_p99_latency_ns);
        ++violations;
      }
      if (!(on.jain_fairness_index >= off.jain_fairness_index)) {
        std::printf("  VIOLATION: %s hot=%.2f jain %.4f -> %.4f\n", name, h,
                    off.jain_fairness_index, on.jain_fairness_index);
        ++violations;
      }
      if (on.cc.fecn_marked == 0 || on.cc.becn_received == 0 ||
          on.cc.throttled_pkts == 0) {
        std::printf("  VIOLATION: %s hot=%.2f CC loop inactive "
                    "(fecn=%llu becn=%llu throttled=%llu)\n",
                    name, h,
                    static_cast<unsigned long long>(on.cc.fecn_marked),
                    static_cast<unsigned long long>(on.cc.becn_received),
                    static_cast<unsigned long long>(on.cc.throttled_pkts));
        ++violations;
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  if (opts.csv()) std::fputs(table.to_csv().c_str(), stdout);
  std::puts("\nExpected shape: with CC off the congestion tree inflates"
            " victim tail latency and\ndrags fairness down as the hot"
            " fraction grows; with CC on the hot sources throttle,\nthe"
            " tree drains, and victim p99 / fairness recover for both SLID"
            " and MLID.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  if (violations != 0) {
    std::printf("\nFAIL: %d acceptance check(s) violated\n", violations);
    return 1;
  }
  std::puts("\nPASS: CC-on lowers victim p99 latency and holds or raises"
            " fairness at every point.");
  return 0;
}

// Shared driver for the per-figure reproduction binaries (Figures 12-19).
//
// Each binary declares its FigureSpec (network size + traffic pattern) and
// delegates here; the driver applies CLI flags, runs the sweep grid
// (SLID/MLID x VL 1/2/4 x offered load) and prints the paper-style series,
// a summary with MLID/SLID throughput ratios, and optionally CSV.
#pragma once

#include "harness/sweep.hpp"

namespace mlid::bench {

/// Builds the spec shared by all figures: timing defaults from DESIGN.md,
/// the paper's VL grid {1, 2, 4}, and both schemes.
FigureSpec paper_figure(std::string title, int m, int n, TrafficKind traffic);

/// Runs one figure end to end; returns the process exit code.
int run_figure_main(int argc, char** argv, FigureSpec spec);

}  // namespace mlid::bench

// Reproduces paper Figure 15: uniform traffic on a 8-port 3-tree
// (SLID vs MLID, VL in {1, 2, 4}, average latency vs accepted traffic).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mlid::bench::run_figure_main(
      argc, argv,
      mlid::bench::paper_figure(
          "Figure 15: uniform traffic, 8-port 3-tree", 8, 3,
          mlid::TrafficKind::kUniform));
}

// Ablation P1: parallel execution scaling.  Two independent axes:
//
//   * point-parallelism -- the same figure sweep run on 1/2/4/8 worker
//     threads; points are independent simulations, so this scales until
//     the grid or the cores run out, and every thread count must produce
//     byte-identical results;
//   * engine sharding -- ONE simulation split across 1/2/4/8 shards of the
//     conservative-sync engine (canonical event order), again bit-identical
//     by construction, with the window-barrier overhead on display.
//
// Wall-clock numbers only mean something on a multi-core host; the bench
// prints the hardware concurrency and leaves speedup *assertions* to CI
// (perf-smoke), reporting events/sec honestly either way.
#include <chrono>
#include <cstdio>
#include <memory>
#include <thread>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "parallel/sharded.hpp"
#include "routing/fat_tree_routing.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report("parallel_scaling", opts);
  const unsigned cores = std::thread::hardware_concurrency();

  std::printf("Ablation P1: parallel scaling (host has %u hardware thread%s)\n",
              cores, cores == 1 ? "" : "s");
  if (cores <= 1) {
    std::puts("note: single-core host -- wall times below measure overhead,"
              " not speedup");
  }

  const auto wall_of = [](auto&& fn) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // --- Axis 1: sweep worker threads -----------------------------------------
  FigureSpec spec;
  spec.title = "parallel scaling sweep";
  spec.m = 4;
  spec.n = 3;
  spec.traffic = {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0xABCu};
  spec.sim.seed = opts.seed();
  spec.vl_counts = {1, 4};
  if (opts.quick()) {
    spec.sim.warmup_ns = 5'000;
    spec.sim.measure_ns = 20'000;
    spec.loads = {0.3, 0.6, 0.9};
  } else {
    spec.loads = {0.2, 0.4, 0.6, 0.8, 0.95};
  }

  TextTable sweep_table(
      {"sweep threads", "wall s", "Mevents/s", "identical to 1-thread"});
  std::string baseline;
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    SweepOptions sweep = opts.sweep_options();
    sweep.quick = false;  // the spec above already applied its quick grid
    sweep.threads = threads;
    std::vector<SweepPoint> points;
    const double wall = wall_of([&] { points = run_sweep(spec, sweep); });
    std::uint64_t events = 0;
    for (const auto& p : points) events += p.result.events_processed;
    // Profile-scrubbed identity, so the check survives a --profile run
    // (host wall times in the profile block are not deterministic).
    std::string json;
    for (const auto& p : points) {
      SimResult scrubbed = p.result;
      scrubbed.profile = ProfileSummary{};
      json += to_json(scrubbed);
    }
    if (threads == 1) {
      baseline = json;
      FigureSpec titled = spec;
      titled.title = "sweep @1 thread";
      report.add_figure(titled, points);
    }
    const bool identical = json == baseline;
    sweep_table.add_row({std::to_string(threads), TextTable::num(wall, 3),
                         TextTable::num(static_cast<double>(events) / wall /
                                            1e6,
                                        2),
                         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: sweep results diverged at %u threads\n", threads);
      return 1;
    }
  }
  std::fputs(sweep_table.to_string().c_str(), stdout);

  // --- Axis 2: engine shards ------------------------------------------------
  // One larger simulation, canonical order (what sharding forces), split
  // 1/2/4/8 ways.  Shard 1 *is* the sequential engine modulo the order.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.seed = opts.seed();
  cfg.event_order = EventOrder::kCanonical;
  // Self-profiling on: the shard tables below decompose the wall time into
  // processing vs barrier wait.  The profiler is passive, so the identity
  // checks still hold -- they compare profile-scrubbed JSON (the profile
  // block holds host wall times, nondeterministic by nature).
  cfg.profile = true;
  if (opts.quick()) {
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 20'000;
  } else {
    cfg.warmup_ns = 20'000;
    cfg.measure_ns = 200'000;
  }
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0,
                              opts.seed() ^ 0x5EEDu};

  TextTable shard_table({"shards", "threads used", "wall s", "Mevents/s",
                         "barrier frac", "imbalance", "identical to 1-shard"});
  std::string shard_baseline;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SimResult result;
    PointManifest manifest;
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, cfg, traffic, /*offered_load=*/0.6, {shards, /*threads=*/0});
    const double wall = wall_of([&] { result = sim.run(); });
    manifest.sim_seed = cfg.seed;
    manifest.traffic_seed = traffic.seed;
    manifest.wall_seconds = wall;
    manifest.events_processed = result.events_processed;
    manifest.events_scheduled = result.events_scheduled;
    manifest.events_per_sec =
        wall > 0.0 ? static_cast<double>(result.events_processed) / wall : 0.0;
    manifest.threads = sim.threads_used();
    manifest.shards = shards;
    manifest.queue = sim.queue_stats();
    manifest.profile = result.profile;
    report.add("sharded @" + std::to_string(shards), result, manifest);
    // Identity compares profile-scrubbed JSON: host wall times differ
    // run-to-run, everything the simulation computed must not.
    SimResult scrubbed = result;
    scrubbed.profile = ProfileSummary{};
    const std::string json = to_json(scrubbed);
    if (shards == 1) shard_baseline = json;
    const bool identical = json == shard_baseline;
    shard_table.add_row(
        {std::to_string(shards), std::to_string(sim.threads_used()),
         TextTable::num(wall, 3),
         TextTable::num(manifest.events_per_sec / 1e6, 2),
         TextTable::num(result.profile.barrier_wait_fraction(), 3),
         TextTable::num(result.profile.mean_imbalance, 2),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr, "FATAL: sharded result diverged at %u shards\n",
                   shards);
      return 1;
    }
  }
  std::fputs(shard_table.to_string().c_str(), stdout);

  // --- Axis 3: shards on a big fabric ---------------------------------------
  // FT(16,4): 8192 nodes / 3584 switches / 65536 total ports -- the fabric
  // the struct-of-arrays hot-state layout targets.  Shard speedup on the
  // small FT(4,3) above is barrier-dominated; this is where sharding has to
  // earn its keep.  Full MLID cannot address this fabric (LMC 9), so the
  // big point runs PartialMlid at LMC 2 like the scale suite.
  std::puts("\nbig fabric: FT(16,4), 8192 nodes / 65536 total ports,"
            " partial-mlid LMC 2");
  const FatTreeFabric big_fabric{FatTreeParams(16, 4)};
  const Subnet big_subnet(
      big_fabric,
      std::make_unique<PartialMlidRouting>(big_fabric.params(), Lmc{2}));
  SimConfig big_cfg;
  big_cfg.seed = opts.seed();
  big_cfg.event_order = EventOrder::kCanonical;
  big_cfg.profile = true;
  if (opts.quick()) {
    big_cfg.warmup_ns = 500;
    big_cfg.measure_ns = 2'000;
  } else {
    big_cfg.warmup_ns = 2'000;
    big_cfg.measure_ns = 10'000;
  }
  const TrafficConfig big_traffic{TrafficKind::kUniform, 0.2, 0,
                                  opts.seed() ^ 0xB16Fu};

  TextTable big_table({"shards", "threads used", "wall s", "Mevents/s",
                       "barrier frac", "imbalance", "identical to 1-shard"});
  std::string big_baseline;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    SimResult result;
    PointManifest manifest;
    ShardedSimulation sim = ShardedSimulation::open_loop(
        big_subnet, big_cfg, big_traffic, /*offered_load=*/0.3,
        {shards, /*threads=*/0});
    const double wall = wall_of([&] { result = sim.run(); });
    manifest.sim_seed = big_cfg.seed;
    manifest.traffic_seed = big_traffic.seed;
    manifest.wall_seconds = wall;
    manifest.events_processed = result.events_processed;
    manifest.events_scheduled = result.events_scheduled;
    manifest.events_per_sec =
        wall > 0.0 ? static_cast<double>(result.events_processed) / wall : 0.0;
    manifest.threads = sim.threads_used();
    manifest.shards = shards;
    manifest.queue = sim.queue_stats();
    manifest.profile = result.profile;
    report.add("big-fabric @" + std::to_string(shards), result, manifest);
    SimResult scrubbed = result;
    scrubbed.profile = ProfileSummary{};
    const std::string json = to_json(scrubbed);
    if (shards == 1) big_baseline = json;
    const bool identical = json == big_baseline;
    big_table.add_row(
        {std::to_string(shards), std::to_string(sim.threads_used()),
         TextTable::num(wall, 3),
         TextTable::num(manifest.events_per_sec / 1e6, 2),
         TextTable::num(result.profile.barrier_wait_fraction(), 3),
         TextTable::num(result.profile.mean_imbalance, 2),
         identical ? "yes" : "NO"});
    if (!identical) {
      std::fprintf(stderr,
                   "FATAL: big-fabric result diverged at %u shards\n", shards);
      return 1;
    }
  }
  std::fputs(big_table.to_string().c_str(), stdout);

  std::puts("\nExpected shape: sweep threads scale near-linearly up to the\n"
            "core count (independent points); shards pay a window-barrier\n"
            "tax, so their speedup is sublinear and only appears when one\n"
            "simulation is too big to wait for.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

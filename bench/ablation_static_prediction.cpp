// Ablation A8: analytic prediction vs simulation.  The static LoadAnalysis
// gives a bottleneck-link saturation bound (1 / max expected link load);
// this bench compares it against the saturation load the simulator finds
// by bisection, per scheme and traffic pattern.  The analytic bound is an
// upper bound -- the simulator lands below it by the credit-loop and
// head-of-line factors that only dynamics capture.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "routing/load_analysis.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 4, n = 3;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const std::uint32_t nodes = fabric.params().num_nodes();

  SimConfig cfg;
  cfg.seed = opts.seed();
  if (opts.quick()) {
    cfg.warmup_ns = 4'000;
    cfg.measure_ns = 16'000;
  } else {
    cfg.warmup_ns = 8'000;
    cfg.measure_ns = 40'000;
  }

  std::printf("Ablation A8: static saturation bound vs simulated saturation"
              " (%d-port %d-tree, 1 VL)\n", m, n);
  TextTable table({"traffic", "scheme", "bottleneck load", "analytic bound",
                   "simulated saturation", "sim/bound"});
  struct Pattern {
    const char* label;
    TrafficKind kind;
    double hot;
  };
  for (const Pattern& pattern :
       {Pattern{"uniform", TrafficKind::kUniform, 0.0},
        Pattern{"centric 20%", TrafficKind::kCentric, 0.20}}) {
    const TrafficMatrix matrix =
        pattern.kind == TrafficKind::kUniform
            ? TrafficMatrix::uniform(nodes)
            : TrafficMatrix::centric(nodes, 0, pattern.hot);
    for (const std::string_view kind : {"SLID", "MLID"}) {
      const Subnet subnet(fabric, kind);
      const LoadAnalysis analysis(fabric, subnet.scheme(), subnet.routes());
      LoadSummary summary = analysis.summarize(analysis.predict(matrix));
      // The terminal links (load = column sum) can dominate under centric
      // matrices; fold them in for an honest bound.
      for (const PredictedLoad& entry : analysis.predict(matrix)) {
        summary.max_load = std::max(summary.max_load, entry.load);
      }
      summary.saturation_bound = std::min(1.0, 1.0 / summary.max_load);
      const TrafficConfig traffic{pattern.kind, pattern.hot, 0,
                                  opts.seed() ^ 0xAB8u};
      const double sat = find_saturation_load(subnet, cfg, traffic,
                                              /*slack=*/0.08);
      // One telemetry run at the found saturation point, so the BENCH json
      // carries full latency/link detail alongside the scalar bound.
      const SimResult at_sat =
          Simulation::open_loop(subnet, cfg, traffic, sat > 0.0 ? sat : 0.1).run();
      report.add(std::string(pattern.label) + "/" +
                     std::string(kind) + "/at-saturation",
                 at_sat);
      table.add_row({pattern.label, std::string(kind),
                     TextTable::num(summary.max_load, 3),
                     TextTable::num(summary.saturation_bound, 3),
                     TextTable::num(sat, 3),
                     TextTable::num(sat / summary.saturation_bound, 3)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: simulated saturation <= analytic bound (up to"
            " the 8% bisection slack)\nfor every row; the remaining gap is"
            " the one-packet credit-loop overhead (roughly the\n256/396"
            " factor at these constants).  MLID tracks its bound under"
            " centric traffic\nbecause the terminal link is the sole"
            " bottleneck; SLID leaves ~17% on the table by\nfunnelling the"
            " descent.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

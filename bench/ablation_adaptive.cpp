// Ablation A11: how much would adaptive routing buy -- and does congestion
// control sharpen or dull it?
//
// InfiniBand forwarding is deterministic by specification -- the premise
// the MLID scheme works within.  This what-if switches the simulator's
// crossbars to the registered "adaptive" forwarding policy (credit /
// occupancy-keyed uplink selection, FECN-mark tie-breaking when CC is on)
// and compares against the static schemes under a hot-spot workload, over
// the full 2x2 of {policy off/on} x {congestion control off/on}.  A second
// table holds the forwarding policy fixed and sweeps the dynamic VL-map
// axis (vFtree-style destination binding, flow hashing) at 4 VLs.
//
// The run is self-checking: under centric traffic the adaptive policy must
// strictly rescue SLID (it substitutes for the static spreading) and stay
// within 5% of MLID's deterministic throughput in every CC cell.  Any
// violated expectation prints a diagnostic and exits non-zero, so CI can
// run this binary as a policy-regression gate.
#include <cstdio>
#include <string>
#include <vector>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

namespace {

// Simulation + manifest for one cell, so the BENCH json carries the
// policy/vl_map provenance fields (schema v6) for every series.
mlid::SimResult run_cell(const mlid::Subnet& subnet, const mlid::SimConfig& cfg,
                         const mlid::TrafficConfig& traffic, double load,
                         mlid::BenchReport& report, const std::string& series) {
  using namespace mlid;
  Simulation sim = Simulation::open_loop(subnet, cfg, traffic, load);
  const SimResult r = sim.run();
  PointManifest manifest;
  manifest.sim_seed = cfg.seed;
  manifest.traffic_seed = traffic.seed;
  manifest.events_processed = r.events_processed;
  manifest.events_scheduled = r.events_scheduled;
  manifest.policy = cfg.policy.forwarding;
  manifest.vl_map = cfg.policy.vl_map;
  manifest.queue = sim.queue_stats();
  report.add(series, r, manifest);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report("adaptive", opts);
  const int m = 8, n = 2;
  const double kLoad = 0.9;
  const double kHot = 0.20;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid_subnet(fabric, "MLID");

  auto base_cfg = [&](const char* policy, const char* vl_map) {
    SimConfig cfg;
    cfg.policy.forwarding = policy;
    cfg.policy.vl_map = vl_map;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    return cfg;
  };
  const TrafficConfig centric{TrafficKind::kCentric, kHot, 0,
                              opts.seed() ^ 0xABBu};

  std::printf("Ablation A11: deterministic vs adaptive uplinks x congestion"
              " control,\n%d-port %d-tree, centric %d%% hot traffic, offered"
              " load %.1f, 1 VL\n", m, n, int(kHot * 100), kLoad);

  // ---- 2x2: forwarding policy x congestion control ------------------------
  // Every policy arm of a cell faces the identical traffic stream (same
  // TrafficConfig seed), so differences measure the policy and nothing else.
  TextTable table({"cc", "scheme", "policy", "accepted B/ns/node",
                   "avg latency ns", "p99 ns"});
  // accepted[cc on?][scheme][policy] for the self-checks below.
  double accepted[2][2][2] = {};
  const char* scheme_names[2] = {"SLID", "MLID"};
  const Subnet* subnets[2] = {&slid, &mlid_subnet};
  const char* policy_names[2] = {"deterministic", "adaptive"};
  for (int cc_on = 0; cc_on < 2; ++cc_on) {
    for (int s = 0; s < 2; ++s) {
      for (int p = 0; p < 2; ++p) {
        SimConfig cfg = base_cfg(policy_names[p], "none");
        cfg.cc.enabled = cc_on == 1;
        const std::string series = std::string(cc_on ? "cc" : "nocc") + "/" +
                                   scheme_names[s] + "/" + policy_names[p];
        const SimResult r =
            run_cell(*subnets[s], cfg, centric, kLoad, report, series);
        accepted[cc_on][s][p] = r.accepted_bytes_per_ns_per_node;
        table.add_row({cc_on ? "on" : "off", scheme_names[s], policy_names[p],
                       TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                       TextTable::num(r.avg_latency_ns, 1),
                       TextTable::num(r.p99_latency_ns, 1)});
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);

  // ---- VL-map axis: dynamic queuing at 4 VLs ------------------------------
  std::printf("\nDynamic VL assignment (deterministic forwarding, 4 VLs):\n");
  TextTable vl_table({"scheme", "vl map", "accepted B/ns/node",
                      "avg latency ns", "p99 ns"});
  for (int s = 0; s < 2; ++s) {
    for (const char* vl_map : {"none", "dest-mod", "flow-hash"}) {
      SimConfig cfg = base_cfg("deterministic", vl_map);
      cfg.num_vls = 4;
      const SimResult r =
          run_cell(*subnets[s], cfg, centric, kLoad, report,
                   std::string("vlmap/") + scheme_names[s] + "/" + vl_map);
      vl_table.add_row({scheme_names[s], vl_map,
                        TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                        TextTable::num(r.avg_latency_ns, 1),
                        TextTable::num(r.p99_latency_ns, 1)});
    }
  }
  std::fputs(vl_table.to_string().c_str(), stdout);

  std::puts("\nExpected shape: adaptive forwarding lifts SLID close to MLID"
            " (it substitutes for\nthe static spreading); on top of MLID it"
            " adds only a small further gain -- the\npaper's deterministic"
            " scheme already captures most of the multipath benefit.");

  // ---- self-checks ---------------------------------------------------------
  int violations = 0;
  auto check = [&violations](bool ok, const std::string& what) {
    if (!ok) {
      std::fprintf(stderr, "FAIL: %s\n", what.c_str());
      ++violations;
    }
  };
  for (int cc_on = 0; cc_on < 2; ++cc_on) {
    const char* cc_label = cc_on ? "cc on" : "cc off";
    // Hot-spot convergence starves SLID's single fixed uplink; spreading
    // over equivalent uplinks must strictly recover throughput.
    check(accepted[cc_on][0][1] > accepted[cc_on][0][0],
          std::string("adaptive must beat deterministic SLID under centric"
                      " traffic (") + cc_label + ")");
    // MLID's static spreading is already near-optimal: adaptive may shuffle
    // ties but must not give up more than 5%.
    check(accepted[cc_on][1][1] >= 0.95 * accepted[cc_on][1][0],
          std::string("adaptive must stay within 5% of deterministic MLID (") +
              cc_label + ")");
  }

  std::printf("\n(wrote %s)\n", report.write().c_str());
  if (violations > 0) {
    std::fprintf(stderr, "%d self-check(s) failed\n", violations);
    return 1;
  }
  return 0;
}

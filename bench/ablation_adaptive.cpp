// Ablation A11: how much would adaptive routing buy?
//
// InfiniBand forwarding is deterministic by specification -- the premise
// the MLID scheme works within.  This what-if switches the simulator's
// crossbars to credit-aware adaptive uplink selection and compares against
// the static schemes, bounding the gap MLID leaves on the table.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, SchemeKind::kSlid);
  const Subnet mlid(fabric, SchemeKind::kMlid);

  std::printf("Ablation A11: deterministic vs adaptive uplinks, %d-port"
              " %d-tree, offered load 0.9, 1 VL\n", m, n);
  TextTable table({"traffic", "scheme", "forwarding", "accepted B/ns/node",
                   "avg latency ns"});
  for (const auto& [label, kind, hot] :
       {std::tuple{"uniform", TrafficKind::kUniform, 0.0},
        std::tuple{"centric 20%", TrafficKind::kCentric, 0.20}}) {
    for (const auto& [scheme_label, subnet] :
         {std::pair{"SLID", &slid}, std::pair{"MLID", &mlid}}) {
      for (const auto& [mode_label, mode] :
           {std::pair{"deterministic", ForwardingMode::kDeterministic},
            std::pair{"adaptive", ForwardingMode::kAdaptiveUplinks}}) {
        SimConfig cfg;
        cfg.forwarding = mode;
        cfg.seed = opts.seed();
        if (opts.quick()) {
          cfg.warmup_ns = 5'000;
          cfg.measure_ns = 20'000;
        }
        const SimResult r =
            Simulation::open_loop(*subnet, cfg,
                                  {kind, hot, 0, opts.seed() ^ 0xABBu}, 0.9)
                .run();
        table.add_row({label, scheme_label, mode_label,
                       TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                       TextTable::num(r.avg_latency_ns, 1)});
        report.add(std::string(label) + "/" + scheme_label + "/" + mode_label,
                   r);
      }
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: adaptive forwarding lifts SLID close to MLID"
            " (it substitutes for\nthe static spreading); on top of MLID it"
            " adds only a small further gain -- the\npaper's deterministic"
            " scheme already captures most of the multipath benefit.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

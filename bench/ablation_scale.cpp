// Scale ablation: the FT(16,4)-class fabric from ROADMAP item 2 -- 8192
// endnodes, 3584 switches, 65536 total ports.  Full MLID cannot address
// this fabric (LMC 9 would need 2^9 LIDs per node), so the two layouts the
// scale suite uses are PartialMlid at LMC 2 and SLID.  For each layout the
// bench brings the subnet up, runs a short open-loop window, and reports
// the memory split the struct-of-arrays refactor targets: compiled routing
// tables (formula-backed CompactLft), engine hot state, and the combined
// bytes-per-endport figure that docs/simulator.md budgets and CI regresses
// on (BENCH_scale.json, manifest key "bytes_per_endport").
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "harness/sweep.hpp"
#include "obs/stream.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sim/engine.hpp"
#include "subnet/subnet.hpp"

namespace {

std::size_t total_ports(const mlid::FatTreeFabric& fabric) {
  const mlid::Fabric& g = fabric.fabric();
  std::size_t ports = 0;
  for (mlid::DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    ports += static_cast<std::size_t>(g.device(dev).num_ports());
  }
  return ports;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  // Fixed report name: downstream tooling and the CI smoke step read
  // BENCH_scale.json regardless of the binary's on-disk name.
  BenchReport report("scale", opts);

  std::puts("Scale ablation: FT(16,4), 8192 nodes / 65536 total ports");
  const FatTreeFabric fabric{FatTreeParams(16, 4)};
  const std::size_t ports = total_ports(fabric);

  SimConfig cfg;
  cfg.seed = opts.seed();
  // Always profile: the scale manifests carry the phase breakdown (and CI's
  // profile-smoke step reads it).  Passive -- results are unchanged.
  cfg.profile = true;
  if (opts.quick()) {
    cfg.warmup_ns = 500;
    cfg.measure_ns = 2'000;
  } else {
    cfg.warmup_ns = 2'000;
    cfg.measure_ns = 10'000;
  }

  // Optional live metrics stream (--metrics-out): window lines from each
  // layout's run plus its run summary, in run order.
  const std::unique_ptr<MetricsStreamer> metrics = opts.make_metrics_streamer();

  struct Layout {
    const char* series;
    std::unique_ptr<Subnet> subnet;
  };
  Layout layouts[2];
  layouts[0] = {"partial-mlid-lmc2",
                std::make_unique<Subnet>(
                    fabric, std::make_unique<PartialMlidRouting>(
                                fabric.params(), Lmc{2}))};
  layouts[1] = {"slid", std::make_unique<Subnet>(fabric, "SLID")};

  TextTable table({"layout", "LIDs", "routes MiB", "engine MiB", "B/endport",
                   "delivered", "dropped"});
  for (Layout& layout : layouts) {
    const Subnet& subnet = *layout.subnet;
    const auto start = std::chrono::steady_clock::now();
    OpenLoopOptions run_options;
    run_options.metrics = metrics.get();
    Simulation sim = Simulation::open_loop(
        subnet, cfg, {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0x5CA1Eu},
        0.3, run_options);
    const SimResult r = sim.run();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const std::size_t routes_bytes = subnet.routes().memory_bytes();
    const std::size_t engine_bytes = sim.memory_footprint();
    const double per_port =
        static_cast<double>(routes_bytes + engine_bytes) /
        static_cast<double>(ports);

    PointManifest manifest;
    manifest.sim_seed = cfg.seed;
    manifest.traffic_seed = opts.seed() ^ 0x5CA1Eu;
    manifest.wall_seconds = wall;
    manifest.events_processed = r.events_processed;
    manifest.events_scheduled = r.events_scheduled;
    manifest.events_per_sec =
        wall > 0.0 ? static_cast<double>(r.events_processed) / wall : 0.0;
    manifest.bytes_per_endport = per_port;
    manifest.queue = sim.queue_stats();
    manifest.profile = r.profile;
    report.add(layout.series, r, manifest);

    constexpr double kMiB = 1024.0 * 1024.0;
    table.add_row({layout.series,
                   std::to_string(subnet.init_stats().lids_assigned),
                   TextTable::num(static_cast<double>(routes_bytes) / kMiB, 1),
                   TextTable::num(static_cast<double>(engine_bytes) / kMiB, 1),
                   TextTable::num(per_port, 0),
                   std::to_string(r.packets_delivered),
                   std::to_string(r.packets_dropped)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: both layouts fit the documented 2 KiB/endport"
            " budget; routing\ntables stay near zero (formula-backed CompactLft"
            " materializes no dense rows).");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

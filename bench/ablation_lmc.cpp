// Ablation A1: how much of MLID's win comes from each extra LID bit?
//
// Sweeps the LMC from 0 (= SLID) to the tree's full (n-1) log2(m/2) using
// PartialMlidRouting, under both uniform and 20%-centric traffic at high
// offered load, and reports saturation throughput per LMC.
#include <cstdio>
#include <memory>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "routing/fat_tree_routing.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 4, n = 3;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  SimConfig cfg;
  cfg.seed = opts.seed();
  if (opts.quick()) {
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 20'000;
  }

  std::printf("Ablation A1: LMC depth on a %d-port %d-tree (full LMC = %d)\n",
              m, n, int(fabric.params().mlid_lmc()));
  TextTable table({"traffic", "LMC", "LIDs/node", "accepted B/ns/node",
                   "avg latency ns", "vs LMC 0"});
  for (const TrafficKind kind :
       {TrafficKind::kUniform, TrafficKind::kCentric}) {
    double baseline = 0.0;
    for (Lmc lmc = 0; lmc <= fabric.params().mlid_lmc(); ++lmc) {
      const Subnet subnet(
          fabric, std::make_unique<PartialMlidRouting>(fabric.params(), lmc));
      TrafficConfig traffic{kind, 0.20, 0, opts.seed() ^ 0xAB1u};
      Simulation sim = Simulation::open_loop(subnet, cfg, traffic,
                                             /*offered_load=*/0.9);
      const SimResult r = sim.run();
      report.add(std::string(to_string(kind)) + "/lmc=" +
                     std::to_string(int(lmc)),
                 r);
      if (lmc == 0) baseline = r.accepted_bytes_per_ns_per_node;
      table.add_row(
          {std::string(to_string(kind)), std::to_string(int(lmc)),
           std::to_string(1u << lmc),
           TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
           TextTable::num(r.avg_latency_ns, 1),
           TextTable::num(r.accepted_bytes_per_ns_per_node / baseline, 3) +
               "x"});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: throughput grows monotonically with LMC under"
            " centric traffic;\nthe first bits buy the most (path diversity"
            " doubles per bit).");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Component microbenchmarks (google-benchmark): the building blocks whose
// cost determines how large a network the simulator can sweep.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "harness/report.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/load_analysis.hpp"
#include "routing/path.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mlid;

void BM_LftLookup(benchmark::State& state) {
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  const Lft lft = scheme.build_lft(0);
  Lid lid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lft.lookup(lid));
    lid = lid % scheme.max_lid() + 1;
  }
}
BENCHMARK(BM_LftLookup);

void BM_OutputPortClosedForm(benchmark::State& state) {
  // Equation (1)/(2) evaluation, the SM-side cost per LFT entry.
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  const SwitchLabel sw = switch_from_id(p, p.num_switches() - 1);
  Lid lid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.output_port(sw, lid));
    lid = lid % scheme.max_lid() + 1;
  }
}
BENCHMARK(BM_OutputPortClosedForm);

void BM_BuildLft(benchmark::State& state) {
  const FatTreeParams p(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)));
  const MlidRouting scheme(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.build_lft(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          scheme.max_lid());
}
BENCHMARK(BM_BuildLft)->Args({4, 3})->Args({8, 3})->Args({16, 2});

void BM_SelectDlid(benchmark::State& state) {
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  NodeId src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.select_dlid(src, dst));
    src = (src + 1) % p.num_nodes();
    dst = (dst + 7) % p.num_nodes();
  }
}
BENCHMARK(BM_SelectDlid);

void BM_EventQueuePushPop(benchmark::State& state) {
  EventQueue q;
  SimTime t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(t + (i * 37) % 1000, EventKind::kTryTx, 0);
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(q.pop());
    }
    t += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
}
BENCHMARK(BM_EventQueuePushPop);

void BM_TracePath(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(8, 3)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  NodeId src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace_path(fabric, routes, src, scheme.select_dlid(src, dst)));
    src = (src + 1) % fabric.params().num_nodes();
    dst = (dst + 7) % fabric.params().num_nodes();
  }
}
BENCHMARK(BM_TracePath);

void BM_SubnetBringUp(benchmark::State& state) {
  const FatTreeFabric fabric{
      FatTreeParams(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)))};
  for (auto _ : state) {
    const Subnet subnet(fabric, SchemeKind::kMlid);
    benchmark::DoNotOptimize(subnet.init_stats());
  }
}
BENCHMARK(BM_SubnetBringUp)->Args({4, 3})->Args({8, 3});

void BM_SimulationEventsPerSecond(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    Simulation sim(subnet, cfg, {TrafficKind::kUniform, 0.2, 0, seed}, 0.6);
    const SimResult r = sim.run();
    events += r.events_processed;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulationEventsPerSecond);

void BM_BurstAllToAll(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  const auto workload = all_to_all_personalized(16, 512);
  std::uint64_t packets = 0;
  for (auto _ : state) {
    SimConfig cfg;
    Simulation sim(subnet, cfg, workload);
    const BurstResult r = sim.run_to_completion();
    packets += r.packets;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_BurstAllToAll);

void BM_LoadAnalysisPredict(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const LoadAnalysis analysis(fabric, scheme, routes);
  const TrafficMatrix matrix =
      TrafficMatrix::uniform(fabric.params().num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.predict(matrix));
  }
}
BENCHMARK(BM_LoadAnalysisPredict);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark keeps its own
// flag language (--benchmark_filter etc. -- CliOptions would reject it),
// and after the benchmarks we emit the standard BENCH json with one labeled
// smoke simulation so this binary's output is schema-compatible with every
// other bench.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  BenchReport report(bench_name_from_path(argv[0]), /*seed=*/1,
                     /*threads=*/1, /*quick=*/true);
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  const SimResult r =
      Simulation(subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 2}, 0.6).run();
  report.add("smoke/MLID/4-port-3-tree", r);
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Component microbenchmarks (google-benchmark): the building blocks whose
// cost determines how large a network the simulator can sweep.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "harness/report.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/load_analysis.hpp"
#include "routing/path.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mlid;

// Queue kind the simulation-level benchmarks run on (set by --event-queue;
// BM_EventQueuePushPop always measures both kinds side by side).
EventQueueKind g_queue_kind = EventQueueKind::kLadder;

void BM_LftLookup(benchmark::State& state) {
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  const Lft lft = scheme.build_lft(0);
  Lid lid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lft.lookup(lid));
    lid = lid % scheme.max_lid() + 1;
  }
}
BENCHMARK(BM_LftLookup);

void BM_OutputPortClosedForm(benchmark::State& state) {
  // Equation (1)/(2) evaluation, the SM-side cost per LFT entry.
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  const SwitchLabel sw = switch_from_id(p, p.num_switches() - 1);
  Lid lid = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.output_port(sw, lid));
    lid = lid % scheme.max_lid() + 1;
  }
}
BENCHMARK(BM_OutputPortClosedForm);

void BM_BuildLft(benchmark::State& state) {
  const FatTreeParams p(static_cast<int>(state.range(0)),
                        static_cast<int>(state.range(1)));
  const MlidRouting scheme(p);
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.build_lft(0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          scheme.max_lid());
}
BENCHMARK(BM_BuildLft)->Args({4, 3})->Args({8, 3})->Args({16, 2});

void BM_SelectDlid(benchmark::State& state) {
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  NodeId src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheme.select_dlid(src, dst));
    src = (src + 1) % p.num_nodes();
    dst = (dst + 7) % p.num_nodes();
  }
}
BENCHMARK(BM_SelectDlid);

void BM_EventQueuePushPop(benchmark::State& state) {
  const auto kind = static_cast<EventQueueKind>(state.range(0));
  EventQueue q(kind);
  SimTime t = 0;
  for (auto _ : state) {
    for (int i = 0; i < 64; ++i) {
      q.push(t + (i * 37) % 1000, EventKind::kTryTx, 0);
    }
    for (int i = 0; i < 64; ++i) {
      benchmark::DoNotOptimize(q.pop());
    }
    t += 1000;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 64);
  state.SetLabel(std::string(to_string(kind)));
}
BENCHMARK(BM_EventQueuePushPop)
    ->Arg(static_cast<int>(EventQueueKind::kHeap))
    ->Arg(static_cast<int>(EventQueueKind::kLadder));

void BM_TracePath(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(8, 3)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  NodeId src = 0, dst = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        trace_path(fabric, routes, src, scheme.select_dlid(src, dst)));
    src = (src + 1) % fabric.params().num_nodes();
    dst = (dst + 7) % fabric.params().num_nodes();
  }
}
BENCHMARK(BM_TracePath);

void BM_SubnetBringUp(benchmark::State& state) {
  const FatTreeFabric fabric{
      FatTreeParams(static_cast<int>(state.range(0)),
                    static_cast<int>(state.range(1)))};
  for (auto _ : state) {
    const Subnet subnet(fabric, "MLID");
    benchmark::DoNotOptimize(subnet.init_stats());
  }
}
BENCHMARK(BM_SubnetBringUp)->Args({4, 3})->Args({8, 3});

void BM_SimulationEventsPerSecond(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  cfg.event_queue = g_queue_kind;
  std::uint64_t events = 0;
  std::uint64_t seed = 1;
  for (auto _ : state) {
    cfg.seed = seed++;
    Simulation sim = Simulation::open_loop(subnet, cfg,
                                           {TrafficKind::kUniform, 0.2, 0, seed},
                                           0.6);
    const SimResult r = sim.run();
    events += r.events_processed;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_SimulationEventsPerSecond);

void BM_BurstAllToAll(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(16, 512);
  std::uint64_t packets = 0;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.event_queue = g_queue_kind;
    Simulation sim = Simulation::burst(subnet, cfg, workload);
    const BurstResult r = sim.run_to_completion();
    packets += r.packets;
    benchmark::DoNotOptimize(r);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
}
BENCHMARK(BM_BurstAllToAll);

void BM_LoadAnalysisPredict(benchmark::State& state) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const LoadAnalysis analysis(fabric, scheme, routes);
  const TrafficMatrix matrix =
      TrafficMatrix::uniform(fabric.params().num_nodes());
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis.predict(matrix));
  }
}
BENCHMARK(BM_LoadAnalysisPredict);

}  // namespace

namespace {

// One timed smoke simulation on the given queue kind, reported as its own
// labeled series with the manifest carrying events/sec and queue internals.
mlid::SimResult run_smoke(mlid::BenchReport& report,
                          mlid::EventQueueKind kind) {
  using namespace mlid;
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 2;
  cfg.event_queue = kind;
  const auto start = std::chrono::steady_clock::now();
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 2}, 0.6);
  const SimResult r = sim.run();
  const double wall = std::chrono::duration<double>(
                          std::chrono::steady_clock::now() - start)
                          .count();
  PointManifest manifest;
  manifest.sim_seed = cfg.seed;
  manifest.traffic_seed = 2;
  manifest.wall_seconds = wall;
  manifest.events_processed = r.events_processed;
  manifest.events_scheduled = r.events_scheduled;
  manifest.events_per_sec =
      wall > 0.0 ? static_cast<double>(r.events_processed) / wall : 0.0;
  manifest.queue = sim.queue_stats();
  report.add(std::string("smoke/MLID/4-port-3-tree/") +
                 std::string(to_string(kind)),
             r, manifest);
  return r;
}

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): google-benchmark keeps its own
// flag language (--benchmark_filter etc. -- CliOptions would reject it), so
// the harness flags this binary understands (--quick, --event-queue=K) are
// stripped from argv before benchmark::Initialize sees them.  After the
// benchmarks we emit the standard BENCH json with one labeled smoke
// simulation per queue kind -- asserted bit-identical -- so this binary's
// output is schema-compatible with every other bench and lets CI compare
// heap vs ladder events/sec from a single file.
int main(int argc, char** argv) {
  bool quick = false;
  std::vector<char*> args;
  std::string min_time_flag;  // outlives the argv google-benchmark keeps
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--event-queue", 0) == 0) {
      std::string_view value;
      if (arg.size() > 13 && arg[13] == '=') {
        value = arg.substr(14);
      } else if (arg.size() == 13 && i + 1 < argc) {
        value = argv[++i];
      }
      const auto kind = event_queue_from_string(value);
      if (!kind) {
        std::fprintf(stderr,
                     "error: invalid value '%.*s' for --event-queue "
                     "(expected heap or ladder)\n",
                     static_cast<int>(value.size()), value.data());
        return 2;
      }
      g_queue_kind = *kind;
    } else {
      args.push_back(argv[i]);
    }
  }
  if (quick) {
    min_time_flag = "--benchmark_min_time=0.01";
    args.push_back(min_time_flag.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(filtered_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  BenchReport report(bench_name_from_path(argv[0]), /*seed=*/1,
                     /*threads=*/1, quick);
  const SimResult heap = run_smoke(report, EventQueueKind::kHeap);
  const SimResult ladder = run_smoke(report, EventQueueKind::kLadder);
  // The queue kind is pure mechanism: any divergence here is a determinism
  // bug in the ladder queue, not a tuning difference.
  MLID_EXPECT(to_json(heap) == to_json(ladder),
              "heap and ladder smoke runs must be bit-identical");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

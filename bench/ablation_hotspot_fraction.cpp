// Ablation A4: hot-spot intensity sweep.  The paper fixes the centric
// fraction at 20%; this sweep shows where the MLID advantage appears as the
// hot fraction grows from uniform-like (5%) to heavily centric (40%).
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  std::printf("Ablation A4: hot-spot fraction, %d-port %d-tree, "
              "offered load 0.9, 1 VL\n", m, n);
  TextTable table({"hot fraction", "SLID B/ns/node", "MLID B/ns/node",
                   "MLID/SLID", "SLID lat ns", "MLID lat ns"});
  for (const double h : {0.05, 0.10, 0.20, 0.30, 0.40}) {
    SimConfig cfg;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kCentric, h, 0,
                                opts.seed() ^ 0xAB4u};
    const SimResult s = Simulation::open_loop(slid, cfg, traffic, 0.9).run();
    const SimResult q = Simulation::open_loop(mlid, cfg, traffic, 0.9).run();
    report.add("SLID/hot=" + TextTable::num(h, 2), s);
    report.add("MLID/hot=" + TextTable::num(h, 2), q);
    table.add_row({TextTable::num(h, 2),
                   TextTable::num(s.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(q.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(q.accepted_bytes_per_ns_per_node /
                                      s.accepted_bytes_per_ns_per_node,
                                  3) +
                       "x",
                   TextTable::num(s.avg_latency_ns, 1),
                   TextTable::num(q.avg_latency_ns, 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: both schemes converge as the hot node's link"
            " becomes the physical\nbottleneck; MLID's edge is largest at"
            " small-to-moderate fractions where tree links,\nnot the"
            " terminal link, are the constraint.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Ablation A9: collective exchange makespans (closed-loop bursts).
//
// The paper motivates MLID with cluster workloads; this bench measures the
// completion time of canonical MPI-style exchanges -- all-to-all, gather,
// scatter, ring shift -- under SLID and MLID on one network.
#include <cstdio>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const std::uint32_t nodes = fabric.params().num_nodes();
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");
  const std::uint32_t bytes = opts.quick() ? 512 : 4096;

  struct Workload {
    std::string label;
    std::vector<MessageSpec> messages;
  };
  const Workload workloads[] = {
      {"all-to-all", all_to_all_personalized(nodes, bytes)},
      {"gather(0)", gather_to(nodes, 0, bytes)},
      {"scatter(0)", scatter_from(nodes, 0, bytes)},
      {"ring +1", ring_shift(nodes, 1, bytes)},
      {"ring +N/2", ring_shift(nodes, nodes / 2, bytes)},
      {"permutation", random_permutation(nodes, bytes, opts.seed())},
  };

  std::printf("Ablation A9: collective makespans, %d-port %d-tree (%u"
              " nodes), %u B messages, 1 VL\n",
              m, n, nodes, bytes);
  TextTable table({"collective", "msgs", "SLID makespan ns",
                   "MLID makespan ns", "SLID/MLID", "MLID goodput B/ns"});
  for (const Workload& workload : workloads) {
    SimConfig cfg;
    cfg.seed = opts.seed();
    const BurstResult s =
        Simulation::burst(slid, cfg, workload.messages).run_to_completion();
    const BurstResult q =
        Simulation::burst(mlid, cfg, workload.messages).run_to_completion();
    report.add("SLID/" + workload.label, s);
    report.add("MLID/" + workload.label, q);
    table.add_row(
        {workload.label, std::to_string(workload.messages.size()),
         std::to_string(s.makespan_ns), std::to_string(q.makespan_ns),
         TextTable::num(static_cast<double>(s.makespan_ns) /
                            static_cast<double>(q.makespan_ns),
                        3) +
             "x",
         TextTable::num(q.aggregate_bytes_per_ns(), 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: MLID clearly wins gather (its subgroup"
            " spreading relieves the\nconvergence *before* the root's"
            " terminal link); scatter and dense symmetric\nexchanges"
            " (all-to-all, rings) are NIC- or symmetry-bound and tie; a"
            " single random\npermutation is a coin flip between the two"
            " static hashes (src-rank vs dest-digit)\n-- vary --seed to see"
            " both outcomes.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

// Ablation A6: scheme shoot-out on one pristine network.  SLID, partial
// MLID (every LMC), full MLID and the generic BFS up*/down* engine, under
// uniform and 20%-centric traffic -- the quantified version of the paper's
// introduction claim that generic engines "cannot deliver satisfactory
// performance" unless they exploit the multipath structure (which UPDN at
// full LMC does, matching MLID exactly).
#include <cstdio>
#include <memory>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/updown.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Lmc full = fabric.params().mlid_lmc();

  struct Entry {
    std::string label;
    std::unique_ptr<Subnet> subnet;
  };
  std::vector<Entry> entries;
  entries.push_back({"SLID", std::make_unique<Subnet>(fabric,
                                                      "SLID")});
  for (Lmc lmc = 1; lmc < full; ++lmc) {
    entries.push_back(
        {"MLID lmc=" + std::to_string(int(lmc)),
         std::make_unique<Subnet>(
             fabric,
             std::make_unique<PartialMlidRouting>(fabric.params(), lmc))});
  }
  entries.push_back({"MLID (full)", std::make_unique<Subnet>(
                                        fabric, "MLID")});
  entries.push_back(
      {"UPDN lmc=0", std::make_unique<Subnet>(
                         fabric, std::make_unique<UpDownRouting>(fabric, 0))});
  entries.push_back(
      {"UPDN (full)",
       std::make_unique<Subnet>(
           fabric, std::make_unique<UpDownRouting>(fabric, full))});

  std::printf("Ablation A6: routing schemes on a %d-port %d-tree, offered"
              " load 0.9, 1 VL\n", m, n);
  TextTable table({"scheme", "uniform B/ns/node", "uniform lat ns",
                   "centric B/ns/node", "centric lat ns"});
  for (const auto& entry : entries) {
    SimConfig cfg;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const SimResult uni =
        Simulation::open_loop(*entry.subnet, cfg,
                              {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0xAB6u},
                              0.9)
            .run();
    const SimResult cen =
        Simulation::open_loop(*entry.subnet, cfg,
                              {TrafficKind::kCentric, 0.2, 0, opts.seed() ^ 0xAB6u},
                              0.9)
            .run();
    report.add(entry.label + "/uniform", uni);
    report.add(entry.label + "/centric", cen);
    table.add_row({entry.label,
                   TextTable::num(uni.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(uni.avg_latency_ns, 1),
                   TextTable::num(cen.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(cen.avg_latency_ns, 1)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: throughput rises with the LMC; UPDN(full)"
            " matches MLID(full) exactly\n(identical tables); UPDN lmc=0"
            " matches SLID.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

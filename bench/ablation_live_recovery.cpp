// Ablation A15: live recovery.  Where ablation_faults compares *offline*
// rebuilt tables against stale ones, this bench runs the whole fault story
// inside the simulation: k uplinks die mid-run, the switches raise traps,
// the live Subnet Manager re-sweeps and reprograms the LFTs while traffic
// keeps flowing.  Three questions, per scheme (SLID / MLID / UPDN):
//
//   1. How long until the SM reconverges, and where does the time go
//      (detection + sweep vs programming)?
//   2. How many packets die in the convergence window, and does the drop
//      rate really return to zero afterwards (drops_post_convergence == 0)?
//   3. Is post-recovery throughput within 5% of an *offline* UPDN rebuild
//      on the same degraded fabric at the same LMC — i.e. does online
//      incremental repair reach the same steady state as a from-scratch
//      bring-up?
//
// Each (k, scheme) cell runs twice with the same seed and schedule: once to
// observe the convergence timeline, once with the warmup extended past the
// observed convergence point so the measurement window samples only the
// repaired steady state.
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "routing/updown.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mlid;

constexpr double kLoad = 0.6;
constexpr SimTime kConvergenceSlackNs = 5'000;

struct SchemeSpec {
  const char* name;
  bool updn;         // caller-supplied UpDownRouting instead of a SchemeKind
  SchemeKind kind;   // used when !updn
};

std::unique_ptr<Subnet> make_subnet(const FatTreeFabric& fabric,
                                    const SchemeSpec& spec) {
  if (spec.updn) {
    return std::make_unique<Subnet>(
        fabric, std::make_unique<UpDownRouting>(fabric,
                                                fabric.params().mlid_lmc()));
  }
  return std::make_unique<Subnet>(fabric, spec.kind);
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeParams params(m, n);

  SimConfig base;
  base.seed = opts.seed();
  base.warmup_ns = opts.quick() ? 5'000 : 20'000;
  // Pass 1 must outlast the slowest convergence (k=4, full-table rebuild
  // costs included), so its window shrinks less than usual under --quick.
  base.measure_ns = 80'000;
  // --fail-links N (with --fail-at-ns / --recover-at-ns) narrows the sweep
  // to the flags' schedule; the default grid covers k in {1, 2, 4}.
  const bool from_flags = opts.fail_links() > 0;
  const std::vector<int> ks =
      from_flags ? std::vector<int>{opts.fail_links()}
                 : std::vector<int>{1, 2, 4};
  const SimTime fail_at =
      from_flags ? opts.fail_at_ns() : base.warmup_ns + 10'000;
  const SimTime steady_measure_ns = opts.quick() ? 15'000 : 40'000;
  // The 5% bound needs the full measurement window; the --quick smoke keeps
  // a coarser guard against outright recovery failures.
  const double min_ratio = opts.quick() ? 0.90 : 0.95;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0,
                              opts.seed() ^ 0xAB5u};

  std::printf("Ablation A15: live SM recovery, %d-port %d-tree, uniform"
              " traffic, offered load %.1f\n", m, n, kLoad);
  std::printf("k uplinks fail at t=%lld ns; traps -> re-sweep -> incremental"
              " LFT reprogramming.\n\n", static_cast<long long>(fail_at));

  TextTable table({"k", "scheme", "reconverge ns", "sweep ns", "program ns",
                   "entries", "drops dead/conv/unrt", "post-conv drops",
                   "steady B/ns/node", "offline UPDN", "ratio"});
  const SchemeSpec schemes[] = {
      {"SLID", false, SchemeKind::kSlid},
      {"MLID", false, SchemeKind::kMlid},
      {"UPDN", true, SchemeKind::kMlid},
  };

  int violations = 0;
  for (const int k : ks) {
    // The schedule stores (device, port) pairs, so one schedule built
    // against a pristine fabric replays identically onto every fresh
    // fabric of the same shape below.
    const FatTreeFabric pristine{params};
    const FaultSchedule faults =
        from_flags ? opts.fault_schedule(pristine)
                   : FaultSchedule::random_uplink_failures(
                         pristine, k, fail_at,
                         opts.seed() ^ 0xFA11u ^ static_cast<std::uint64_t>(k));

    for (const SchemeSpec& spec : schemes) {
      // Pass 1: watch the convergence timeline.
      FatTreeFabric fabric{params};
      const auto subnet = make_subnet(fabric, spec);
      SubnetManager sm(fabric, *subnet);
      Simulation sim =
          Simulation::open_loop(*subnet, base, traffic, kLoad, {&sm, faults});
      const SimResult r = sim.run();

      if (r.reconvergence_ns < 0) {
        table.add_row({std::to_string(k), spec.name, "did not converge", "-",
                       "-", "-", "-", "-", "-", "-", "-"});
        ++violations;
        continue;
      }
      if (r.drops_post_convergence != 0) ++violations;

      // Pass 2: same seed and schedule, warmup pushed past the observed
      // convergence point, so the window measures the repaired fabric.
      SimConfig steady = base;
      steady.warmup_ns = r.sm_converged_ns + kConvergenceSlackNs;
      steady.measure_ns = steady_measure_ns;
      FatTreeFabric fabric2{params};
      const auto subnet2 = make_subnet(fabric2, spec);
      SubnetManager sm2(fabric2, *subnet2);
      Simulation sim2 = Simulation::open_loop(*subnet2, steady, traffic, kLoad,
                                              {&sm2, faults});
      const SimResult post = sim2.run();
      report.add(std::string(spec.name) + "/k=" + std::to_string(k) +
                     "/convergence",
                 r);
      report.add(std::string(spec.name) + "/k=" + std::to_string(k) +
                     "/steady",
                 post);

      // Offline baseline: a fresh UPDN bring-up on the fabric in its final
      // wiring state (failures applied, recoveries re-applied) at the
      // *same LMC* as the live scheme, measured over the same window.
      FatTreeFabric degraded{params};
      for (const FaultEvent& ev : faults.events()) {
        if (ev.fail) {
          degraded.mutable_fabric().disconnect(ev.dev_a, ev.port_a);
        } else {
          degraded.mutable_fabric().connect(ev.dev_a, ev.port_a, ev.dev_b,
                                            ev.port_b);
        }
      }
      auto offline_routes = std::make_unique<UpDownRouting>(
          degraded, subnet->scheme().lmc());
      double ratio = -1.0;
      double offline_tp = -1.0;
      if (offline_routes->fully_connected()) {
        const Subnet offline(degraded, std::move(offline_routes));
        const SimResult base_r =
            Simulation::open_loop(offline, steady, traffic, kLoad).run();
        offline_tp = base_r.accepted_bytes_per_ns_per_node;
        ratio = post.accepted_bytes_per_ns_per_node / offline_tp;
        if (ratio < min_ratio) ++violations;
      }

      table.add_row(
          {std::to_string(k), spec.name, std::to_string(r.reconvergence_ns),
           std::to_string(sm.stats().last_sweep_cost_ns),
           std::to_string(sm.stats().last_program_cost_ns),
           std::to_string(r.sm_entries_programmed),
           std::to_string(r.dropped_dead_link) + "/" +
               std::to_string(r.dropped_during_convergence) + "/" +
               std::to_string(r.dropped_unroutable),
           std::to_string(r.drops_post_convergence),
           TextTable::num(post.accepted_bytes_per_ns_per_node, 4),
           offline_tp < 0 ? "partitioned" : TextTable::num(offline_tp, 4),
           ratio < 0 ? "-" : TextTable::num(ratio, 3)});
    }
  }

  std::fputs(table.to_string().c_str(), stdout);
  if (opts.csv()) std::fputs(table.to_csv().c_str(), stdout);
  std::puts("\nExpected shape: every scheme reconverges (reconverge ns grows"
            " with the sweep+programming\ncost, not with k alone), drops"
            " stop once the SM is converged (post-conv drops = 0), and\n"
            "the repaired fabric's steady throughput matches an offline UPDN"
            " rebuild (ratio >= 0.95).");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  if (violations != 0) {
    std::printf("\nFAIL: %d acceptance check(s) violated\n", violations);
    return 1;
  }
  std::puts("\nPASS: converged, no post-convergence drops, steady"
            " throughput within 5% of offline rebuild.");
  return 0;
}

// Ablation A15: live recovery.  Where ablation_faults compares *offline*
// rebuilt tables against stale ones, this bench runs the whole fault story
// inside the simulation: k uplinks die mid-run, the switches raise traps,
// the live Subnet Manager re-sweeps and reprograms the LFTs while traffic
// keeps flowing.  Three questions, per scheme (SLID / MLID / UPDN):
//
//   1. How long until the SM reconverges, and where does the time go
//      (detection + sweep vs programming)?
//   2. How many packets die in the convergence window, and does the drop
//      rate really return to zero afterwards (drops_post_convergence == 0)?
//   3. Is post-recovery throughput within 5% of an *offline* UPDN rebuild
//      on the same degraded fabric at the same LMC — i.e. does online
//      incremental repair reach the same steady state as a from-scratch
//      bring-up?
//
// Each (k, scheme) cell runs twice with the same seed and schedule: once to
// observe the convergence timeline, once with the warmup extended past the
// observed convergence point so the measurement window samples only the
// repaired steady state.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/text_table.hpp"
#include "harness/chrome_trace.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "routing/updown.hpp"
#include "sim/engine.hpp"

namespace {

using namespace mlid;

constexpr double kLoad = 0.6;
constexpr SimTime kConvergenceSlackNs = 5'000;

// UPDN is a registered scheme like the other two, so all three arms come
// straight out of the SchemeRegistry by name.
struct SchemeSpec {
  const char* name;
};

std::unique_ptr<Subnet> make_subnet(const FatTreeFabric& fabric,
                                    const SchemeSpec& spec) {
  return std::make_unique<Subnet>(fabric, spec.name);
}

/// What the interval sampler's timeline must show for one convergence run:
/// no drops before the fault, a drop dip starting at (or after) the fault,
/// and -- when the schedule heals the links again -- the delivered rate back
/// to >= 90% of its pre-fault mean once the SM finished reprogramming the
/// restored fabric.  Without a recovery event the post-reconvergence rate is
/// the *degraded* fabric's and carries no such bound (at load 0.6 a missing
/// uplink is a real capacity loss), so the 90% check is gated on
/// `expect_recovery`.
struct TimelineCheck {
  double pre_rate = 0.0;       ///< delivered pkts/ns before the fault
  double post_rate = 0.0;      ///< delivered pkts/ns after reconvergence
  SimTime dip_start = -1;      ///< window start of the first dropping sample
  int violations = 0;
};

TimelineCheck check_timeline(const SimResult& r, SimTime fail_at,
                             bool expect_recovery) {
  TimelineCheck out;
  const Timeline& tl = r.timeline;
  // The dip-start bound is only exact when samples align with the fault
  // (always true for the default grid; a custom --sample-interval-ns that
  // does not divide --fail-at-ns blurs the boundary by one window).
  const bool aligned = fail_at % tl.base_interval_ns == 0;
  double pre_sum = 0.0, post_sum = 0.0;
  std::uint64_t pre_n = 0, post_n = 0;
  for (const TimelineSample& s : tl.samples) {
    const SimTime span =
        static_cast<SimTime>(s.intervals) * tl.base_interval_ns;
    const SimTime start = s.t_ns - span;
    const double rate =
        static_cast<double>(s.delivered) / static_cast<double>(span);
    // A sample ending at t covers strictly-earlier events, so every sample
    // with t_ns <= fail_at is pure pre-fault traffic: no drops allowed.
    if (s.t_ns <= fail_at && s.dropped > 0) ++out.violations;
    if (s.t_ns <= fail_at && s.t_ns > fail_at / 2) {
      pre_sum += rate;
      ++pre_n;
    }
    if (out.dip_start < 0 && s.dropped > 0) out.dip_start = start;
    if (r.sm_converged_ns >= 0 &&
        start >= r.sm_converged_ns + kConvergenceSlackNs) {
      post_sum += rate;
      ++post_n;
    }
  }
  if (r.packets_dropped > 0 && out.dip_start < 0) ++out.violations;
  if (aligned && out.dip_start >= 0 && out.dip_start < fail_at) {
    ++out.violations;  // the dip may not begin before the fault
  }
  if (pre_n == 0 || post_n == 0) {
    ++out.violations;  // the window must sample both sides of the story
    return out;
  }
  out.pre_rate = pre_sum / static_cast<double>(pre_n);
  out.post_rate = post_sum / static_cast<double>(post_n);
  if (expect_recovery && out.post_rate < 0.90 * out.pre_rate) {
    ++out.violations;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 8, n = 2;
  const FatTreeParams params(m, n);

  SimConfig base;
  base.seed = opts.seed();
  base.warmup_ns = opts.quick() ? 5'000 : 20'000;
  // The interval sampler is on by default here: the timeline self-check
  // below is this bench's whole point (--sample-interval-ns 0 disables it).
  base.sample_interval_ns = opts.sample_interval_ns().value_or(1'000);
  // Pass 1 must outlast the slowest convergence (k=4, full-table rebuild
  // costs included), so its window shrinks less than usual under --quick.
  base.measure_ns = 80'000;
  // --fail-links N (with --fail-at-ns / --recover-at-ns) narrows the sweep
  // to the flags' schedule; the default grid covers k in {1, 2, 4}.
  const bool from_flags = opts.fail_links() > 0;
  const std::vector<int> ks =
      from_flags ? std::vector<int>{opts.fail_links()}
                 : std::vector<int>{1, 2, 4};
  const SimTime fail_at =
      from_flags ? opts.fail_at_ns() : base.warmup_ns + 10'000;
  const SimTime steady_measure_ns = opts.quick() ? 15'000 : 40'000;
  // The 5% bound needs the full measurement window; the --quick smoke keeps
  // a coarser guard against outright recovery failures.
  const double min_ratio = opts.quick() ? 0.90 : 0.95;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0,
                              opts.seed() ^ 0xAB5u};

  std::printf("Ablation A15: live SM recovery, %d-port %d-tree, uniform"
              " traffic, offered load %.1f\n", m, n, kLoad);
  std::printf("k uplinks fail at t=%lld ns; traps -> re-sweep -> incremental"
              " LFT reprogramming.\n\n", static_cast<long long>(fail_at));

  TextTable table({"k", "scheme", "reconverge ns", "sweep ns", "program ns",
                   "entries", "drops dead/conv/unrt", "post-conv drops",
                   "steady B/ns/node", "offline UPDN", "ratio"});
  const SchemeSpec schemes[] = {{"SLID"}, {"MLID"}, {"UPDN"}};

  int violations = 0;
  std::string timeline_notes;
  const bool want_chrome = !opts.chrome_trace().empty();
  for (const int k : ks) {
    // The schedule stores (device, port) pairs, so one schedule built
    // against a pristine fabric replays identically onto every fresh
    // fabric of the same shape below.
    const FatTreeFabric pristine{params};
    const FaultSchedule faults =
        from_flags ? opts.fault_schedule(pristine)
                   : FaultSchedule::random_uplink_failures(
                         pristine, k, fail_at,
                         opts.seed() ^ 0xFA11u ^ static_cast<std::uint64_t>(k));

    for (const SchemeSpec& spec : schemes) {
      // Pass 1: watch the convergence timeline.  The first cell also feeds
      // the chrome-trace exporter when --chrome-trace asked for a file:
      // packet traces, the control-plane record and the flight recorder all
      // ride along (they are passive, so the results are unchanged).
      const bool chrome_cell =
          want_chrome && k == ks.front() && &spec == &schemes[0];
      SimConfig cfg1 = base;
      if (chrome_cell) {
        cfg1.trace_packets = opts.trace_packets().value_or(512);
        cfg1.trace_stride = opts.trace_stride().value_or(64);
        cfg1.trace_control = true;
        cfg1.flight_recorder_depth = opts.flight_recorder().value_or(32);
        cfg1.profile = true;  // profiler track rides along (pid 5)
      }
      FatTreeFabric fabric{params};
      const auto subnet = make_subnet(fabric, spec);
      SubnetManager sm(fabric, *subnet);
      Simulation sim =
          Simulation::open_loop(*subnet, cfg1, traffic, kLoad, {&sm, faults});
      const SimResult r = sim.run();
      if (chrome_cell) {
        ChromeTraceData data;
        data.packets = &sim.traces();
        data.control = &sim.control_trace();
        data.timeline = &sim.timeline();
        data.flight = &sim.flight_dump();
        data.profile = &r.profile;
        write_chrome_trace(opts.chrome_trace(), fabric.fabric(), data);
        std::printf("(wrote chrome trace %s: k=%d %s)\n\n",
                    opts.chrome_trace().c_str(), k, spec.name);
      }

      if (r.reconvergence_ns < 0) {
        table.add_row({std::to_string(k), spec.name, "did not converge", "-",
                       "-", "-", "-", "-", "-", "-", "-"});
        ++violations;
        continue;
      }
      if (r.drops_post_convergence != 0) ++violations;

      // The sampler's timeline must tell the fault story on its own: no
      // drops before the fault, a dip that starts at (or after) it.  The
      // links stay dead in the grid runs, so the post-reconvergence rate is
      // informational here; the 90% restoration bound lives in the healing
      // pass below.
      if (r.timeline.enabled()) {
        const bool heals = std::any_of(
            faults.events().begin(), faults.events().end(),
            [](const FaultEvent& ev) { return !ev.fail; });
        const TimelineCheck tc = check_timeline(r, fail_at, heals);
        violations += tc.violations;
        char buf[192];
        std::snprintf(
            buf, sizeof buf,
            "  k=%d %-4s pre-fault %.4f pkts/ns, drop dip at %lld ns, "
            "post-reconvergence %.4f pkts/ns (%.0f%%)%s\n",
            k, spec.name, tc.pre_rate,
            static_cast<long long>(tc.dip_start), tc.post_rate,
            tc.pre_rate > 0.0 ? 100.0 * tc.post_rate / tc.pre_rate : 0.0,
            tc.violations != 0 ? "  <-- VIOLATION" : "");
        timeline_notes += buf;
      }

      // Pass 2: same seed and schedule, warmup pushed past the observed
      // convergence point, so the window measures the repaired fabric.
      SimConfig steady = base;
      steady.warmup_ns = r.sm_converged_ns + kConvergenceSlackNs;
      steady.measure_ns = steady_measure_ns;
      FatTreeFabric fabric2{params};
      const auto subnet2 = make_subnet(fabric2, spec);
      SubnetManager sm2(fabric2, *subnet2);
      Simulation sim2 = Simulation::open_loop(*subnet2, steady, traffic, kLoad,
                                              {&sm2, faults});
      const SimResult post = sim2.run();
      report.add(std::string(spec.name) + "/k=" + std::to_string(k) +
                     "/convergence",
                 r);
      report.add(std::string(spec.name) + "/k=" + std::to_string(k) +
                     "/steady",
                 post);

      // Offline baseline: a fresh UPDN bring-up on the fabric in its final
      // wiring state (failures applied, recoveries re-applied) at the
      // *same LMC* as the live scheme, measured over the same window.
      FatTreeFabric degraded{params};
      for (const FaultEvent& ev : faults.events()) {
        if (ev.fail) {
          degraded.mutable_fabric().disconnect(ev.dev_a, ev.port_a);
        } else {
          degraded.mutable_fabric().connect(ev.dev_a, ev.port_a, ev.dev_b,
                                            ev.port_b);
        }
      }
      auto offline_routes = std::make_unique<UpDownRouting>(
          degraded, subnet->scheme().lmc());
      double ratio = -1.0;
      double offline_tp = -1.0;
      if (offline_routes->fully_connected()) {
        const Subnet offline(degraded, std::move(offline_routes));
        const SimResult base_r =
            Simulation::open_loop(offline, steady, traffic, kLoad).run();
        offline_tp = base_r.accepted_bytes_per_ns_per_node;
        ratio = post.accepted_bytes_per_ns_per_node / offline_tp;
        if (ratio < min_ratio) ++violations;
      }

      table.add_row(
          {std::to_string(k), spec.name, std::to_string(r.reconvergence_ns),
           std::to_string(sm.stats().last_sweep_cost_ns),
           std::to_string(sm.stats().last_program_cost_ns),
           std::to_string(r.sm_entries_programmed),
           std::to_string(r.dropped_dead_link) + "/" +
               std::to_string(r.dropped_during_convergence) + "/" +
               std::to_string(r.dropped_unroutable),
           std::to_string(r.drops_post_convergence),
           TextTable::num(post.accepted_bytes_per_ns_per_node, 4),
           offline_tp < 0 ? "partitioned" : TextTable::num(offline_tp, 4),
           ratio < 0 ? "-" : TextTable::num(ratio, 3)});
    }
  }

  // Pass 3: the restoration story the sampler exists to tell.  One uplink
  // dies and *heals* mid-run; the SM reprograms twice (repair, then
  // restore), and the timeline alone must show the dip starting at the
  // fault and the delivered rate back to >= 90% of its pre-fault mean once
  // the second reprogramming converged.  The recovery lands past the first
  // trap -> sweep -> program pipeline (~36 us on this fabric: 2.5 us
  // detection+trap, 25.6 us sweep, programming) so the two reconvergences
  // stay distinct, and the window outlives the second pipeline plus a
  // sampling tail.
  std::string heal_notes;
  if (base.sample_interval_ns > 0) {
    const SimTime heal_fail = base.warmup_ns + 10'000;
    const SimTime heal_recover = heal_fail + 40'000;
    SimConfig heal_cfg = base;
    heal_cfg.measure_ns = (heal_recover - base.warmup_ns) + 70'000;
    const FatTreeFabric pristine{params};
    const FaultSchedule heal = FaultSchedule::random_uplink_failures(
        pristine, 1, heal_fail, opts.seed() ^ 0x5E1Fu, heal_recover);
    for (const SchemeSpec& spec : schemes) {
      FatTreeFabric fabric{params};
      const auto subnet = make_subnet(fabric, spec);
      SubnetManager sm(fabric, *subnet);
      Simulation sim =
          Simulation::open_loop(*subnet, heal_cfg, traffic, kLoad, {&sm, heal});
      const SimResult r = sim.run();
      const TimelineCheck tc =
          check_timeline(r, heal_fail, /*expect_recovery=*/true);
      violations += tc.violations;
      char buf[192];
      std::snprintf(
          buf, sizeof buf,
          "  %-4s pre-fault %.4f pkts/ns, drop dip at %lld ns, restored "
          "%.4f pkts/ns (%.0f%%)%s\n",
          spec.name, tc.pre_rate, static_cast<long long>(tc.dip_start),
          tc.post_rate,
          tc.pre_rate > 0.0 ? 100.0 * tc.post_rate / tc.pre_rate : 0.0,
          tc.violations != 0 ? "  <-- VIOLATION" : "");
      heal_notes += buf;
      report.add(std::string(spec.name) + "/heal", r);
    }
  }

  std::fputs(table.to_string().c_str(), stdout);
  if (opts.csv()) std::fputs(table.to_csv().c_str(), stdout);
  if (!timeline_notes.empty()) {
    std::puts("\nTimeline self-check (interval sampler, pass 1):");
    std::fputs(timeline_notes.c_str(), stdout);
  }
  if (!heal_notes.empty()) {
    std::puts("\nTimeline self-check (fail at +10 us, heal at +50 us):");
    std::fputs(heal_notes.c_str(), stdout);
  }
  std::puts("\nExpected shape: every scheme reconverges (reconverge ns grows"
            " with the sweep+programming\ncost, not with k alone), drops"
            " stop once the SM is converged (post-conv drops = 0), the\n"
            "repaired fabric's steady throughput matches an offline UPDN"
            " rebuild (ratio >= 0.95), and\nafter the healed link is"
            " reprogrammed the sampled rate recovers to >= 90% of"
            " pre-fault.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  if (violations != 0) {
    std::printf("\nFAIL: %d acceptance check(s) violated\n", violations);
    return 1;
  }
  std::puts("\nPASS: converged, no post-convergence drops, steady"
            " throughput within 5% of offline rebuild.");
  return 0;
}

// Reproduces paper Table 1: the simulated m-port n-tree network sizes,
// extended with the derived routing constants (LMC, paths per pair) and the
// SM bring-up cost measured on the constructed fabric.
#include <cstdio>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"
#include "subnet/subnet.hpp"
#include "topology/validate.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport bench(bench_name_from_path(argv[0]), opts);
  TextTable table({"m", "n", "nodes", "switches", "links", "LMC",
                   "paths/pair", "LIDs used", "LFT entries", "SM probes"});
  const std::pair<int, int> grid[] = {{4, 2}, {4, 3}, {4, 4}, {8, 2},
                                      {8, 3}, {16, 2}, {32, 2}};
  for (const auto& [m, n] : grid) {
    const FatTreeFabric fabric{FatTreeParams(m, n)};
    const auto report = validate_fat_tree(fabric);
    if (!report.ok()) {
      std::fprintf(stderr, "fabric %d-port %d-tree failed validation: %s\n",
                   m, n, report.problems.front().c_str());
      return 1;
    }
    const Subnet subnet(fabric, "MLID");
    const SubnetInitStats& stats = subnet.init_stats();
    table.add_row({std::to_string(m), std::to_string(n),
                   std::to_string(fabric.params().num_nodes()),
                   std::to_string(fabric.params().num_switches()),
                   std::to_string(fabric.fabric().num_links()),
                   std::to_string(int(fabric.params().mlid_lmc())),
                   std::to_string(fabric.params().paths_per_pair()),
                   std::to_string(stats.lids_assigned),
                   std::to_string(stats.lft_entries_programmed),
                   std::to_string(stats.discovery_probes)});
  }
  std::puts("Table 1: simulated m-port n-tree InfiniBand networks");
  std::fputs(table.to_string().c_str(), stdout);

  // The table itself is static structure; run one small labeled simulation
  // so this bench's BENCH json carries the same latency/link telemetry as
  // every other.
  {
    const FatTreeFabric fabric{FatTreeParams(4, 2)};
    const Subnet subnet(fabric, "MLID");
    SimConfig cfg;
    cfg.seed = opts.seed();
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 20'000;
    const SimResult r =
        Simulation::open_loop(subnet, cfg,
                              {TrafficKind::kUniform, 0.2, 0, opts.seed() ^ 0x7AB1u},
                              0.5)
            .run();
    bench.add("smoke/MLID/4-port-2-tree", r);
  }
  std::printf("\n(wrote %s)\n", bench.write().c_str());
  return 0;
}

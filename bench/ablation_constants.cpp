// Ablation A13: sensitivity to the restored constants.
//
// The paper's absolute timing numbers were lost to OCR (DESIGN.md).  This
// sweep perturbs each restored constant -- routing delay, flying time,
// packet size -- and shows that the MLID/SLID throughput ratio under
// 20%-centric traffic is insensitive to them, which is the justification
// for comparing shapes rather than absolute values.
#include <cstdio>
#include <string>

#include "common/text_table.hpp"
#include "harness/cli.hpp"
#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const CliOptions opts(argc, argv);
  BenchReport report(bench_name_from_path(argv[0]), opts);
  const int m = 4, n = 3;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  struct Variant {
    const char* label;
    SimTime t_r;
    SimTime t_fly;
    std::uint32_t bytes;
  };
  const Variant variants[] = {
      {"baseline (100ns, 20ns, 256B)", 100, 20, 256},
      {"fast switch (50ns)", 50, 20, 256},
      {"slow switch (200ns)", 200, 20, 256},
      {"short wire (5ns)", 100, 5, 256},
      {"long wire (80ns)", 100, 80, 256},
      {"small packets (64B)", 100, 20, 64},
      {"large packets (1024B)", 100, 20, 1024},
  };

  std::printf("Ablation A13: constants sensitivity, %d-port %d-tree, "
              "20%%-centric, offered load 0.9, 1 VL\n", m, n);
  TextTable table({"constants", "SLID B/ns/node", "MLID B/ns/node",
                   "MLID/SLID"});
  for (const Variant& v : variants) {
    SimConfig cfg;
    cfg.routing_delay_ns = v.t_r;
    cfg.flying_time_ns = v.t_fly;
    cfg.packet_bytes = v.bytes;
    cfg.seed = opts.seed();
    if (opts.quick()) {
      cfg.warmup_ns = 5'000;
      cfg.measure_ns = 20'000;
    }
    const TrafficConfig traffic{TrafficKind::kCentric, 0.20, 0,
                                opts.seed() ^ 0xABDu};
    const SimResult slid_r = Simulation::open_loop(slid, cfg, traffic, 0.9).run();
    const SimResult mlid_r = Simulation::open_loop(mlid, cfg, traffic, 0.9).run();
    report.add(std::string("SLID/") + v.label, slid_r);
    report.add(std::string("MLID/") + v.label, mlid_r);
    const double s = slid_r.accepted_bytes_per_ns_per_node;
    const double q = mlid_r.accepted_bytes_per_ns_per_node;
    table.add_row({v.label, TextTable::num(s, 4), TextTable::num(q, 4),
                   TextTable::num(q / s, 3) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nExpected shape: absolute throughput moves with every"
            " constant, but the MLID/SLID\nratio stays > 1 and within a"
            " narrow band -- the paper's comparison is robust to the\n"
            "OCR-lost parameters.");
  std::printf("\n(wrote %s)\n", report.write().c_str());
  return 0;
}

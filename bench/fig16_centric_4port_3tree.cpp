// Reproduces paper Figure 16: centric traffic on a 4-port 3-tree
// (SLID vs MLID, VL in {1, 2, 4}, average latency vs accepted traffic).
#include "figure_common.hpp"

int main(int argc, char** argv) {
  return mlid::bench::run_figure_main(
      argc, argv,
      mlid::bench::paper_figure(
          "Figure 16: centric traffic, 4-port 3-tree", 4, 3,
          mlid::TrafficKind::kCentric));
}

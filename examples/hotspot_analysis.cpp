// Hot-spot analysis: the scenario from the paper's Figures 8/9.
//
// All other nodes flood one destination; we compare SLID and MLID at the
// routing level (which least common ancestors carry the flows) and at the
// simulation level (accepted traffic and latency across hot fractions).
//
//   $ ./hotspot_analysis [m] [n] [hot_node]
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/text_table.hpp"
#include "routing/path.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 2;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const auto hot = argc > 3 ? static_cast<NodeId>(std::atoi(argv[3]))
                            : NodeId{0};

  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  // Routing-level view: how many distinct flows cross each root on the way
  // to the hot node?  (The paper's Figure 9a vs 9b, quantified.)
  std::printf("flows towards %s crossing each root switch:\n",
              fabric.node_label(hot).to_string().c_str());
  for (const auto* subnet : {&slid, &mlid}) {
    std::map<std::string, int> per_root;
    for (NodeId src = 0; src < fabric.params().num_nodes(); ++src) {
      if (src == hot) continue;
      const PathTrace trace = trace_path(fabric, subnet->routes(), src,
                                         subnet->select_dlid(src, hot));
      for (std::size_t i = 1; i < trace.hops.size(); ++i) {
        const Device& dev = fabric.fabric().device(trace.hops[i].device);
        if (dev.kind() == DeviceKind::kSwitch &&
            fabric.switch_label(dev.switch_id).level() == 0) {
          ++per_root[dev.name()];
        }
      }
    }
    std::printf("  %-4s:", std::string(subnet->scheme().name()).c_str());
    for (const auto& [name, count] : per_root) {
      std::printf("  %s x%d", name.c_str(), count);
    }
    std::printf("\n");
  }

  // Simulation-level view across hot fractions.
  std::printf("\nsimulated accepted traffic (bytes/ns/node) at offered load"
              " 0.9, 1 VL:\n");
  TextTable table({"hot fraction", "SLID", "MLID", "MLID/SLID"});
  for (const double h : {0.10, 0.20, 0.40}) {
    SimConfig cfg;
    const TrafficConfig traffic{TrafficKind::kCentric, h, hot, 99};
    const double s = Simulation::open_loop(slid, cfg, traffic, 0.9)
                         .run()
                         .accepted_bytes_per_ns_per_node;
    const double q = Simulation::open_loop(mlid, cfg, traffic, 0.9)
                         .run()
                         .accepted_bytes_per_ns_per_node;
    table.add_row({TextTable::num(h, 2), TextTable::num(s, 4),
                   TextTable::num(q, 4), TextTable::num(q / s, 3) + "x"});
  }
  std::fputs(table.to_string().c_str(), stdout);
  return 0;
}

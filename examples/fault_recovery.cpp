// Fault recovery walk-through: what a Subnet Manager does when a cable
// dies.
//
//   1. Healthy fabric, closed-form MLID tables: everything routes.
//   2. A link fails: the stale tables now drop traffic (measured).
//   3. SM re-sweep with the BFS up*/down* engine: traffic flows again,
//      with slightly longer detour paths.
//
//   $ ./fault_recovery [m] [n]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "routing/updown.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;

  SimConfig cfg;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 7};
  auto run = [&](const Subnet& subnet) {
    return Simulation(subnet, cfg, traffic, 0.5).run();
  };

  // 1. Healthy fabric.
  FatTreeFabric fabric{FatTreeParams(m, n)};
  {
    const Subnet subnet(fabric, SchemeKind::kMlid);
    const SimResult r = run(subnet);
    std::printf("healthy fabric, MLID tables:   accepted %.4f B/ns/node, "
                "%llu dropped\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped));
  }

  // 2. A middle-layer uplink dies; the old tables are now stale.
  const SwitchLabel victim = SwitchLabel::from_index(fabric.params(), 1, 0);
  const auto dead_port = static_cast<PortId>(fabric.params().half() + 1);
  fabric.mutable_fabric().disconnect(
      fabric.switch_device(victim.switch_id(fabric.params())), dead_port);
  std::printf("\n*** link failure: %s port %d went down ***\n\n",
              victim.to_string().c_str(), int(dead_port));
  {
    const Subnet subnet(fabric, SchemeKind::kMlid);  // stale closed forms
    const SimResult r = run(subnet);
    std::printf("stale MLID tables:             accepted %.4f B/ns/node, "
                "%llu dropped\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped));
  }

  // 3. SM re-sweep: recompute BFS-based up*/down* tables on what is left.
  {
    auto updn = std::make_unique<UpDownRouting>(
        fabric, fabric.params().mlid_lmc());
    std::printf("SM re-sweep (UPDN, LMC %d):    %s\n",
                int(fabric.params().mlid_lmc()),
                updn->fully_connected() ? "all nodes still reachable"
                                        : "fabric partitioned!");
    const Subnet subnet(fabric, std::move(updn));
    const SimResult r = run(subnet);
    std::printf("recomputed tables:             accepted %.4f B/ns/node, "
                "%llu dropped, avg latency %.1f ns\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped),
                r.avg_latency_ns);
  }
  return 0;
}

// Fault recovery walk-through: what the live Subnet Manager does when a
// cable dies mid-run -- inside the simulation, not as separate offline
// reruns.
//
//   1. Healthy fabric, closed-form MLID tables: everything routes.
//   2. A live SM is attached and an uplink fails at t=30us: both endpoints
//      raise traps, the SM re-sweeps and incrementally reprograms the stale
//      LFT entries while traffic keeps flowing.  The trap -> sweep ->
//      reprogram timeline is printed from SmStats.
//   3. The link also comes back later in the run: the SM converges a second
//      time and the live tables return to the original bring-up state.
//   4. The same failure with a dead SM (SmConfig::react = false): the
//      tables stay stale forever and the drop counter never stops.
//
// The live run (2.) keeps the interval sampler on, so after the prose
// timeline a time-resolved one is printed straight from the samples: the
// drop burst at the failure and the delivered-rate recovery after the SM
// converges.  An optional third argument names a Chrome trace-event file
// (chrome://tracing or https://ui.perfetto.dev) with packet lifecycles,
// the SM/fault/CC control events, and the sampled counters.
//
//   $ ./fault_recovery [m] [n] [chrome-trace.json]
#include <cstdio>
#include <cstdlib>

#include "harness/chrome_trace.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;
  const char* trace_path = argc > 3 ? argv[3] : nullptr;

  const FatTreeParams params(m, n);
  SimConfig cfg;
  cfg.warmup_ns = 20'000;
  cfg.measure_ns = 130'000;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 7};
  constexpr SimTime kFailAt = 30'000;
  constexpr SimTime kRecoverAt = 90'000;

  // 1. Healthy fabric.
  {
    FatTreeFabric fabric{params};
    const Subnet subnet(fabric, "MLID");
    const SimResult r = Simulation::open_loop(subnet, cfg, traffic, 0.5).run();
    std::printf("healthy fabric, MLID tables:  accepted %.4f B/ns/node, "
                "%llu dropped\n\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped));
  }

  // The victim link: the first up port of a middle-layer switch.
  const SwitchLabel victim = SwitchLabel::from_index(params, 1, 0);
  const auto dead_port = static_cast<PortId>(params.half() + 1);
  FaultEvent failed{};  // endpoints resolved while building the first schedule

  // 2. Live SM, failure only: the full trap -> sweep -> reprogram timeline.
  SimTime fail_reconvergence = -1;
  {
    FatTreeFabric fabric{params};
    FaultSchedule schedule;
    schedule.fail_link(kFailAt, fabric.fabric(),
                       fabric.switch_device(victim.switch_id(params)),
                       dead_port);
    failed = schedule.events().front();

    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    const SmConfig& smc = sm.config();
    SimConfig live_cfg = cfg;
    live_cfg.sample_interval_ns = 1'000;
    if (trace_path != nullptr) {
      live_cfg.trace_packets = 256;
      live_cfg.trace_stride = 16;
      live_cfg.trace_control = true;
      live_cfg.flight_recorder_depth = 32;
    }
    Simulation sim =
        Simulation::open_loop(subnet, live_cfg, traffic, 0.5, {&sm, schedule});

    std::printf("*** live run: %s port %d fails at t=%lld ns ***\n\n",
                victim.to_string().c_str(), int(dead_port),
                static_cast<long long>(kFailAt));
    const SimResult r = sim.run();
    const SmStats& s = sm.stats();
    fail_reconvergence = r.reconvergence_ns;

    std::printf("t=%6lld  link down; packets on and behind it are lost\n",
                static_cast<long long>(kFailAt));
    std::printf("t=%6lld  both switch endpoints detect the loss "
                "(detection delay %lld ns)\n",
                static_cast<long long>(kFailAt + smc.detection_delay_ns),
                static_cast<long long>(smc.detection_delay_ns));
    std::printf("t=%6lld  traps reach the SM (%lld ns in flight, second one "
                "coalesced); re-sweep starts\n",
                static_cast<long long>(s.first_trap_ns),
                static_cast<long long>(smc.trap_travel_ns));
    std::printf("t=%6lld  sweep done (%llu probes x %lld ns); fresh UPDN "
                "routes diffed against the live tables\n",
                static_cast<long long>(s.last_sweep_done_ns),
                static_cast<unsigned long long>(s.probes_sent),
                static_cast<long long>(smc.smp_probe_ns));
    std::printf("t=%6lld  last of %llu LFT writes on %llu switches lands: "
                "converged (reconvergence %lld ns)\n\n",
                static_cast<long long>(s.converged_at),
                static_cast<unsigned long long>(s.entries_programmed),
                static_cast<unsigned long long>(s.switches_programmed),
                static_cast<long long>(r.reconvergence_ns));

    std::printf("  accepted           %.4f B/ns/node\n",
                r.accepted_bytes_per_ns_per_node);
    std::printf("  drops              %llu dead-link, %llu convergence, "
                "%llu unroutable\n",
                static_cast<unsigned long long>(r.dropped_dead_link),
                static_cast<unsigned long long>(r.dropped_during_convergence),
                static_cast<unsigned long long>(r.dropped_unroutable));
    std::printf("  after convergence  %llu drops among packets injected into "
                "the repaired fabric\n\n",
                static_cast<unsigned long long>(r.drops_post_convergence));

    // The same story time-resolved, straight from the interval sampler:
    // each row is one sample window around the failure.
    std::printf("sampled timeline (%lld ns cadence) around the failure:\n",
                static_cast<long long>(r.timeline.interval_ns));
    std::printf("  %10s %9s %9s %9s %9s\n", "window end", "delivered",
                "dropped", "in-flight", "stalled");
    for (const TimelineSample& ts : r.timeline.samples) {
      if (ts.t_ns <= kFailAt - 2'000 || ts.t_ns > s.converged_at + 6'000) {
        continue;
      }
      std::printf("  %10lld %9llu %9llu %9llu %9u%s\n",
                  static_cast<long long>(ts.t_ns),
                  static_cast<unsigned long long>(ts.delivered),
                  static_cast<unsigned long long>(ts.dropped),
                  static_cast<unsigned long long>(ts.in_flight),
                  ts.stalled_vls, ts.dropped > 0 ? "  <-- dropping" : "");
    }
    std::printf("\n");

    if (trace_path != nullptr) {
      ChromeTraceData data;
      data.packets = &sim.traces();
      data.control = &sim.control_trace();
      data.timeline = &sim.timeline();
      data.flight = &sim.flight_dump();
      write_chrome_trace(trace_path, fabric.fabric(), data);
      std::printf("wrote Chrome trace to %s (load in chrome://tracing or "
                  "ui.perfetto.dev)\n\n",
                  trace_path);
    }
  }

  // 3. Failure + recovery in one run: the SM converges twice and ends up
  // exactly where the original bring-up left it.
  {
    FatTreeFabric fabric{params};
    FaultSchedule schedule;
    schedule.fail_link(kFailAt, fabric.fabric(), failed.dev_a, failed.port_a);
    schedule.recover_link(kRecoverAt, failed.dev_a, failed.port_a,
                          failed.dev_b, failed.port_b);

    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    Simulation sim =
        Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, schedule});
    const SimResult r = sim.run();
    const SmStats& s = sm.stats();

    bool pristine = true;
    for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
      if (!(sm.lft(sw) == subnet.routes().lft(sw))) pristine = false;
    }
    std::printf("*** link back in service at t=%lld ns ***\n\n",
                static_cast<long long>(kRecoverAt));
    std::printf("t=%6lld  IN_SERVICE traps -> sweep #%llu\n",
                static_cast<long long>(s.last_sweep_started_ns),
                static_cast<unsigned long long>(s.sweeps_completed));
    std::printf("t=%6lld  second convergence; %llu total LFT writes over "
                "both repairs\n",
                static_cast<long long>(s.converged_at),
                static_cast<unsigned long long>(s.entries_programmed));
    std::printf("  live tables now identical to the original bring-up: %s\n",
                pristine ? "yes" : "NO (bug!)");
    std::printf("  accepted           %.4f B/ns/node, %llu dropped\n\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped));
  }

  // 4. Same failure, dead SM: traps are counted but nothing reacts.
  {
    FatTreeFabric fabric{params};
    FaultSchedule schedule;
    schedule.fail_link(kFailAt, fabric.fabric(), failed.dev_a, failed.port_a);
    const Subnet subnet(fabric, "MLID");
    SmConfig dead;
    dead.react = false;
    SubnetManager sm(fabric, subnet, dead);
    Simulation sim =
        Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, schedule});
    const SimResult r = sim.run();
    std::printf("dead SM (react=false):        accepted %.4f B/ns/node, "
                "%llu dropped and still dropping\n",
                r.accepted_bytes_per_ns_per_node,
                static_cast<unsigned long long>(r.packets_dropped));
    std::printf("the live SM turned that permanent %.1f%% loss into a "
                "%lld ns convergence window\n",
                100.0 * static_cast<double>(r.packets_dropped) /
                    static_cast<double>(r.packets_generated),
                static_cast<long long>(fail_reconvergence));
  }
  return 0;
}

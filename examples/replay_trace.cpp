// Trace replay: run a user-supplied message trace (CSV: src,dst,bytes per
// line) as a closed-loop burst under both routing schemes.
//
//   $ ./replay_trace <m> <n> <trace.csv> [--json]
//   $ ./replay_trace 4 3 - <<'EOF'
//   # three messages
//   0,15,4096
//   1,15,4096
//   2,15,4096
//   EOF
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>

#include "harness/report.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  if (argc < 4) {
    std::fprintf(stderr, "usage: %s <m> <n> <trace.csv|-> [--json]\n",
                 argv[0]);
    return 2;
  }
  const FatTreeParams params(std::atoi(argv[1]), std::atoi(argv[2]));
  const bool json = argc > 4 && std::strcmp(argv[4], "--json") == 0;

  std::vector<MessageSpec> workload;
  if (std::strcmp(argv[3], "-") == 0) {
    workload = parse_message_csv(std::cin);
  } else {
    std::ifstream file(argv[3]);
    if (!file) {
      std::fprintf(stderr, "cannot open %s\n", argv[3]);
      return 2;
    }
    workload = parse_message_csv(file);
  }
  if (workload.empty()) {
    std::fprintf(stderr, "trace contains no messages\n");
    return 2;
  }

  const FatTreeFabric fabric(params);
  std::printf("replaying %zu messages on a %d-port %d-tree (%u nodes)\n\n",
              workload.size(), params.m(), params.n(), params.num_nodes());
  for (const std::string_view kind : {"SLID", "MLID"}) {
    const Subnet subnet(fabric, kind);
    SimConfig cfg;
    Simulation sim = Simulation::burst(subnet, cfg, workload);
    const BurstResult r = sim.run_to_completion();
    std::printf("%-4s: makespan %lld ns, avg message latency %.1f ns, "
                "goodput %.3f B/ns\n",
                std::string(subnet.scheme().name()).c_str(),
                static_cast<long long>(r.makespan_ns),
                r.avg_message_latency_ns, r.aggregate_bytes_per_ns());
    if (json) std::printf("  %s\n", to_json(r).c_str());
  }
  return 0;
}

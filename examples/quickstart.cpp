// Quickstart: the whole library in ~80 lines.
//
//   1. Construct an m-port n-tree InfiniBand fabric.
//   2. Bring the subnet up (SM discovery, MLID addressing, LFTs).
//   3. Inspect the multiple LIDs and the path each one selects.
//   4. Run a short simulation and read the paper's two metrics.
//
//   $ ./quickstart [m] [n]
#include <cstdio>
#include <cstdlib>

#include "routing/path.hpp"
#include "sim/engine.hpp"
#include "topology/export.hpp"
#include "topology/validate.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;

  // 1. Topology.
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  std::fputs(describe(fabric).c_str(), stdout);
  const ValidationReport check = validate_fat_tree(fabric);
  std::printf("structural validation: %s\n\n",
              check.ok() ? "OK" : check.problems.front().c_str());

  // 2. Subnet bring-up with the paper's MLID routing scheme.
  const Subnet subnet(fabric, "MLID");
  const SubnetInitStats& init = subnet.init_stats();
  std::printf("SM bring-up: %llu discovery probes, %u LIDs assigned, "
              "%u LFT entries programmed\n\n",
              static_cast<unsigned long long>(init.discovery_probes),
              init.lids_assigned, init.lft_entries_programmed);

  // 3. Addressing + path selection: show how the last node's LID block
  //    spreads traffic from the first few sources over distinct paths.
  const NodeId dst = fabric.params().num_nodes() - 1;
  const LidRange lids = subnet.scheme().lids_of(dst);
  std::printf("node %s owns LIDs [%u..%u] (LMC %d)\n",
              fabric.node_label(dst).to_string().c_str(), lids.base(),
              lids.last(), int(lids.lmc()));
  for (NodeId src = 0; src < 4 && src < dst; ++src) {
    const Lid dlid = subnet.select_dlid(src, dst);
    const PathTrace trace = trace_path(fabric, subnet.routes(), src, dlid);
    std::printf("  %s -> DLID %-3u : %s\n",
                fabric.node_label(src).to_string().c_str(), dlid,
                to_string(fabric, trace).c_str());
  }

  // 4. Simulate uniform traffic at half load.
  SimConfig cfg;  // DESIGN.md defaults: 100ns routing, 20ns fly, 256B packets
  Simulation sim = Simulation::open_loop(subnet, cfg, {TrafficKind::kUniform},
                                         /*offered_load=*/0.5);
  const SimResult r = sim.run();
  std::printf(
      "\nsimulated %lld ns: accepted %.4f bytes/ns/node, "
      "avg latency %.1f ns (p99 %.1f), %llu packets delivered\n",
      static_cast<long long>(r.sim_end_ns), r.accepted_bytes_per_ns_per_node,
      r.avg_latency_ns, r.p99_latency_ns,
      static_cast<unsigned long long>(r.packets_measured));
  return check.ok() ? 0 : 1;
}

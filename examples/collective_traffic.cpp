// Collective-style workloads: permutation, bit-complement and neighbor
// exchanges (proxies for MPI all-to-all phases, transpose steps and
// halo exchange) on an m-port n-tree, comparing SLID and MLID.
//
//   $ ./collective_traffic [m] [n] [load]
#include <cstdio>
#include <cstdlib>

#include "common/text_table.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;
  const double load = argc > 3 ? std::atof(argv[3]) : 0.8;
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet slid(fabric, "SLID");
  const Subnet mlid(fabric, "MLID");

  std::printf("collective-style patterns on a %d-port %d-tree (%u nodes) at"
              " offered load %.2f\n",
              m, n, fabric.params().num_nodes(), load);
  TextTable table({"pattern", "scheme", "accepted B/ns/node",
                   "avg latency ns", "p99 ns", "avg hops"});
  for (const TrafficKind kind :
       {TrafficKind::kPermutation, TrafficKind::kBitComplement,
        TrafficKind::kNeighbor, TrafficKind::kUniform}) {
    for (const auto* subnet : {&slid, &mlid}) {
      SimConfig cfg;
      Simulation sim = Simulation::open_loop(*subnet, cfg, {kind, 0.2, 0, 7},
                                             load);
      const SimResult r = sim.run();
      table.add_row({std::string(to_string(kind)),
                     std::string(subnet->scheme().name()),
                     TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                     TextTable::num(r.avg_latency_ns, 1),
                     TextTable::num(r.p99_latency_ns, 1),
                     TextTable::num(r.avg_hops, 2)});
    }
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nReading guide: neighbor stays leaf-local (1 hop) for both"
            " schemes; permutation\nand bit-complement separate the schemes"
            " when several flows share ascent links.");

  // The closed-loop view of the same question: how long does one round of
  // each collective take to *complete*?
  std::printf("\nclosed-loop makespans (one %u-byte message per pair):\n",
              4u * 256u);
  TextTable burst_table({"collective", "SLID makespan ns", "MLID makespan ns",
                         "SLID/MLID"});
  const std::uint32_t nodes = fabric.params().num_nodes();
  const std::pair<const char*, std::vector<MessageSpec>> collectives[] = {
      {"all-to-all", all_to_all_personalized(nodes, 1024)},
      {"gather(0)", gather_to(nodes, 0, 1024)},
      {"ring +1", ring_shift(nodes, 1, 1024)},
  };
  for (const auto& [label, workload] : collectives) {
    SimConfig cfg;
    const SimTime t_slid =
        Simulation::burst(slid, cfg, workload).run_to_completion().makespan_ns;
    const SimTime t_mlid =
        Simulation::burst(mlid, cfg, workload).run_to_completion().makespan_ns;
    burst_table.add_row(
        {label, std::to_string(t_slid), std::to_string(t_mlid),
         TextTable::num(static_cast<double>(t_slid) /
                            static_cast<double>(t_mlid),
                        3) +
             "x"});
  }
  std::fputs(burst_table.to_string().c_str(), stdout);
  return 0;
}

// Topology explorer: dump an IBFT(m, n) in several formats.
//
//   $ ./topology_explorer 4 3                 # human-readable summary
//   $ ./topology_explorer 4 3 --dot           # Graphviz
//   $ ./topology_explorer 4 3 --links         # CSV link list
//   $ ./topology_explorer 4 3 --lft 5         # LFT of switch id 5 (MLID)
//   $ ./topology_explorer 4 3 --path 0 15     # every MLID path 0 -> 15
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "routing/path.hpp"
#include "routing/fat_tree_routing.hpp"
#include "topology/export.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <m> <n> [--dot|--links|--lft <sw>|--path <src> "
                 "<dst>]\n",
                 argv[0]);
    return 2;
  }
  const FatTreeParams params(std::atoi(argv[1]), std::atoi(argv[2]));
  const FatTreeFabric fabric(params);

  if (argc == 3) {
    std::fputs(describe(fabric).c_str(), stdout);
    return 0;
  }
  if (std::strcmp(argv[3], "--dot") == 0) {
    std::fputs(to_dot(fabric).c_str(), stdout);
    return 0;
  }
  if (std::strcmp(argv[3], "--links") == 0) {
    std::fputs(links_csv(fabric).c_str(), stdout);
    return 0;
  }
  if (std::strcmp(argv[3], "--lft") == 0 && argc >= 5) {
    const auto sw = static_cast<SwitchId>(std::atoi(argv[4]));
    const MlidRouting scheme(params);
    const Lft lft = scheme.build_lft(sw);
    std::printf("LFT of %s (MLID):\nDLID  out port\n",
                fabric.switch_label(sw).to_string().c_str());
    for (Lid lid = 1; lid <= scheme.max_lid(); ++lid) {
      std::printf("%4u  %u%s\n", lid, unsigned(lft.lookup(lid)),
                  lid == scheme.lids_of(scheme.node_of_lid(lid)).base()
                      ? "   <- base LID"
                      : "");
    }
    return 0;
  }
  if (std::strcmp(argv[3], "--path") == 0 && argc >= 6) {
    const auto src = static_cast<NodeId>(std::atoi(argv[4]));
    const auto dst = static_cast<NodeId>(std::atoi(argv[5]));
    const MlidRouting scheme(params);
    const CompiledRoutes routes(fabric, scheme);
    const LidRange lids = scheme.lids_of(dst);
    std::printf("all %u LID-selected paths %s -> %s (chosen DLID: %u):\n",
                lids.count(), fabric.node_label(src).to_string().c_str(),
                fabric.node_label(dst).to_string().c_str(),
                scheme.select_dlid(src, dst));
    for (Lid lid = lids.base(); lid <= lids.last(); ++lid) {
      const PathTrace trace = trace_path(fabric, routes, src, lid);
      std::printf("  DLID %-3u: %s\n", lid, to_string(fabric, trace).c_str());
    }
    return 0;
  }
  std::fprintf(stderr, "unknown mode %s\n", argv[3]);
  return 2;
}

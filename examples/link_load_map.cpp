// Link-load map: the static LoadAnalysis prediction next to measured link
// utilization from a low-load simulation, per directed link.
//
// Shows where a traffic pattern concentrates -- the tool you would reach
// for before buying hardware or choosing a routing scheme.
//
//   $ ./link_load_map [m] [n] [hot_fraction]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>

#include "common/text_table.hpp"
#include "routing/load_analysis.hpp"
#include "sim/engine.hpp"

int main(int argc, char** argv) {
  using namespace mlid;
  const int m = argc > 1 ? std::atoi(argv[1]) : 4;
  const int n = argc > 2 ? std::atoi(argv[2]) : 3;
  const double hot = argc > 3 ? std::atof(argv[3]) : 0.5;

  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const Subnet subnet(fabric, "MLID");
  const std::uint32_t nodes = fabric.params().num_nodes();

  // Analytic prediction.
  const LoadAnalysis analysis(fabric, subnet.scheme(), subnet.routes());
  const auto predicted =
      analysis.predict(TrafficMatrix::centric(nodes, 0, hot));
  std::map<std::pair<DeviceId, PortId>, double> predicted_by_link;
  for (const PredictedLoad& entry : predicted) {
    predicted_by_link[{entry.dev, entry.port}] = entry.load;
  }

  // Low-load measurement (queueing negligible, utilization tracks load).
  SimConfig cfg;
  const double load = 0.15;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kCentric, hot, 0, 11},
                                         load);
  sim.run();

  // Top-10 busiest links side by side.
  auto measured = sim.link_loads();
  std::sort(measured.begin(), measured.end(),
            [](const LinkLoad& a, const LinkLoad& b) {
              return a.busy_fraction > b.busy_fraction;
            });
  std::printf("MLID on a %d-port %d-tree, %.0f%%-centric toward %s, offered"
              " load %.2f\n\n",
              m, n, hot * 100.0,
              fabric.fabric().device(fabric.node_device(0)).name().c_str(),
              load);
  TextTable table({"link (transmitting device:port)", "measured util",
                   "predicted flow-units", "predicted util @ this load"});
  for (std::size_t i = 0; i < 10 && i < measured.size(); ++i) {
    const LinkLoad& link = measured[i];
    const double flows = predicted_by_link[{link.dev, link.port}];
    table.add_row(
        {fabric.fabric().device(link.dev).name() + ":" +
             std::to_string(int(link.port)),
         TextTable::num(link.busy_fraction, 3), TextTable::num(flows, 2),
         // Each flow unit is one node's injection = `load` B/ns on 1 B/ns
         // links, so predicted utilization is simply flows * load.
         TextTable::num(std::min(1.0, flows * load), 3)});
  }
  std::fputs(table.to_string().c_str(), stdout);
  std::puts("\nThe measured column should track the prediction within the"
            " credit-loop overhead;\nthe hot node's terminal link tops both"
            " rankings.");
  return 0;
}

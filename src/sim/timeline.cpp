#include "sim/timeline.hpp"

#include <algorithm>
#include <sstream>

namespace mlid {

void TimelineSample::merge_from(const TimelineSample& later) noexcept {
  t_ns = later.t_ns;
  intervals += later.intervals;
  generated += later.generated;
  delivered += later.delivered;
  dropped += later.dropped;
  becn += later.becn;
  // Gauges: the merged sample reports the later snapshot for the absolute
  // level and the worst case seen across the window for the pressure peaks.
  in_flight = later.in_flight;
  queued_pkts = std::max(queued_pkts, later.queued_pkts);
  max_queue_depth = std::max(max_queue_depth, later.max_queue_depth);
  stalled_vls = std::max(stalled_vls, later.stalled_vls);
  cct_active_nodes = std::max(cct_active_nodes, later.cct_active_nodes);
  peak_cct_index = std::max(peak_cct_index, later.peak_cct_index);
}

void Timeline::append(const TimelineSample& sample) {
  MLID_EXPECT(enabled(), "appending to an unconfigured timeline");
  samples.push_back(sample);
  if (samples.size() >= max_samples) decimate();
}

void Timeline::decimate() {
  // Merge adjacent pairs in place; an odd trailing sample survives as-is
  // (its `intervals` keeps the accounting exact either way).
  std::size_t w = 0;
  for (std::size_t r = 0; r < samples.size(); r += 2) {
    TimelineSample merged = samples[r];
    if (r + 1 < samples.size()) merged.merge_from(samples[r + 1]);
    samples[w++] = merged;
  }
  samples.resize(w);
  interval_ns *= 2;
  ++decimations;
}

std::string to_string(const FlightRecorderDump& dump) {
  std::ostringstream os;
  if (!dump.valid()) return "flight recorder: no dump\n";
  os << "flight recorder: device " << dump.dev;
  if (!dump.device_name.empty()) os << " (" << dump.device_name << ")";
  os << " at t=" << dump.at << "ns, cause: " << dump.cause << "\n";
  for (const FlightEvent& e : dump.events) {
    os << "  t=" << e.time << "ns  " << to_string(e.kind) << "  port "
       << int(e.port) << " vl " << int(e.vl);
    if (e.pkt != kInvalidPacket) os << " pkt " << e.pkt;
    os << "\n";
  }
  return os.str();
}

std::string_view to_string(ControlPoint point) {
  switch (point) {
    case ControlPoint::kLinkFail:
      return "link-fail";
    case ControlPoint::kLinkRecover:
      return "link-recover";
    case ControlPoint::kTrap:
      return "trap";
    case ControlPoint::kSweepDone:
      return "sweep-done";
    case ControlPoint::kLftProgram:
      return "lft-program";
    case ControlPoint::kBecn:
      return "becn";
    case ControlPoint::kCctTimer:
      return "cct-timer";
    case ControlPoint::kCcRelease:
      return "cc-release";
  }
  return "?";
}

}  // namespace mlid

#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/rng.hpp"

namespace mlid {

void FaultSchedule::fail_link(SimTime at, const Fabric& fabric, DeviceId dev,
                              PortId port) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  const PortRef peer = fabric.peer_of(dev, port);
  MLID_EXPECT(peer.valid(), "failing a link that is not connected");
  MLID_EXPECT(fabric.device(dev).kind() == DeviceKind::kSwitch &&
                  fabric.device(peer.device).kind() == DeviceKind::kSwitch,
              "only inter-switch links may fail (an endnode attach link "
              "would partition the node)");
  events_.push_back(
      FaultEvent{at, dev, port, peer.device, peer.port, /*fail=*/true});
  sorted_ = false;
}

void FaultSchedule::recover_link(SimTime at, DeviceId dev_a, PortId port_a,
                                 DeviceId dev_b, PortId port_b) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  events_.push_back(
      FaultEvent{at, dev_a, port_a, dev_b, port_b, /*fail=*/false});
  sorted_ = false;
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
  return events_;
}

void FaultSchedule::validate() const {
  // A link is identified by its unordered endpoint pair: a recovery may
  // name the endpoints in either order relative to the failure.
  const auto key_of = [](const FaultEvent& e) {
    const std::uint64_t a =
        (static_cast<std::uint64_t>(e.dev_a) << 8) | e.port_a;
    const std::uint64_t b =
        (static_cast<std::uint64_t>(e.dev_b) << 8) | e.port_b;
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> down_since;
  // Last recovery instant per link: a re-failure at that exact timestamp
  // would make the fail/recover windows overlap in whichever tie order the
  // stable sort happened to keep, so it is rejected outright -- the result
  // must not depend on insertion order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> up_at;
  for (const FaultEvent& e : events()) {
    const auto key = key_of(e);
    const auto it = down_since.find(key);
    if (e.fail) {
      MLID_EXPECT(it == down_since.end(),
                  "fault schedule fails a link that is already down "
                  "(duplicate failure without an intervening recovery)");
      const auto up = up_at.find(key);
      MLID_EXPECT(up == up_at.end() || e.at > up->second,
                  "fault schedule re-fails a link at the instant of (or "
                  "before) its recovery; the windows overlap");
      down_since.emplace(key, e.at);
    } else {
      MLID_EXPECT(it != down_since.end(),
                  "fault schedule recovers a link that is not down "
                  "(recovery before, or without, its failure)");
      MLID_EXPECT(e.at > it->second,
                  "fault schedule recovers a link at (or before) the "
                  "instant it fails; recovery must be strictly later");
      up_at.insert_or_assign(key, e.at);
      down_since.erase(it);
    }
  }
}

namespace {

struct UplinkChoice {
  DeviceId dev;
  PortId port;
  PortRef peer;
};

// `count` distinct random inter-switch uplinks, clamped to the number of
// distinct uplinks available (each inter-level link has exactly one lower
// endpoint with an up port), so an oversized request picks every uplink
// instead of rejection-sampling forever.  Draw order is the historical
// random_uplink_failures order, so existing schedules stay byte-identical.
std::vector<UplinkChoice> pick_distinct_uplinks(const FatTreeFabric& fabric,
                                                int count, Xoshiro256& rng) {
  std::vector<UplinkChoice> chosen;
  int available = 0;
  for (std::uint32_t sw = 0; sw < fabric.params().num_switches(); ++sw) {
    if (fabric.switch_label(static_cast<SwitchId>(sw)).level() == 0) continue;
    const DeviceId dev = fabric.switch_device(static_cast<SwitchId>(sw));
    for (int p = fabric.params().half() + 1; p <= fabric.params().m(); ++p) {
      if (fabric.fabric().device(dev).port_connected(static_cast<PortId>(p))) {
        ++available;
      }
    }
  }
  int remaining = std::min(count, available);
  chosen.reserve(static_cast<std::size_t>(std::max(remaining, 0)));
  while (remaining > 0) {
    const auto sw =
        static_cast<SwitchId>(rng.below(fabric.params().num_switches()));
    if (fabric.switch_label(sw).level() == 0) continue;  // roots have no ups
    const auto port = static_cast<PortId>(
        static_cast<std::uint64_t>(fabric.params().half()) + 1 +
        rng.below(static_cast<std::uint64_t>(fabric.params().half())));
    const DeviceId dev = fabric.switch_device(sw);
    if (!fabric.fabric().device(dev).port_connected(port)) continue;
    bool duplicate = false;
    const PortRef peer = fabric.fabric().peer_of(dev, port);
    for (const auto& c : chosen) {
      if ((c.dev == dev && c.port == port) ||
          (c.dev == peer.device && c.port == peer.port)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    chosen.push_back(UplinkChoice{dev, port, peer});
    --remaining;
  }
  return chosen;
}

}  // namespace

FaultSchedule FaultSchedule::random_uplink_failures(
    const FatTreeFabric& fabric, int count, SimTime fail_at,
    std::uint64_t seed, SimTime recover_at) {
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  for (const UplinkChoice& c : pick_distinct_uplinks(fabric, count, rng)) {
    schedule.fail_link(fail_at, fabric.fabric(), c.dev, c.port);
    if (recover_at >= 0) {
      MLID_EXPECT(recover_at > fail_at, "recovery must follow the failure");
      schedule.recover_link(recover_at, c.dev, c.port, c.peer.device,
                            c.peer.port);
    }
  }
  return schedule;
}

FaultSchedule FaultSchedule::periodic_uplink_churn(
    const FatTreeFabric& fabric, int links, SimTime start_at,
    SimTime period_ns, SimTime downtime_ns, SimTime until,
    std::uint64_t seed) {
  MLID_EXPECT(links >= 1, "churn needs at least one link");
  MLID_EXPECT(start_at >= 0, "churn start must be non-negative");
  MLID_EXPECT(downtime_ns > 0 && downtime_ns < period_ns,
              "churn downtime must be positive and shorter than the period");
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  const auto chosen = pick_distinct_uplinks(fabric, links, rng);
  const auto n = static_cast<SimTime>(chosen.size());
  for (SimTime i = 0; i < n; ++i) {
    const UplinkChoice& c = chosen[static_cast<std::size_t>(i)];
    // Stagger starts across one period so failures spread over the cycle.
    for (SimTime t = start_at + i * period_ns / n; t + downtime_ns < until;
         t += period_ns) {
      schedule.fail_link(t, fabric.fabric(), c.dev, c.port);
      schedule.recover_link(t + downtime_ns, c.dev, c.port, c.peer.device,
                            c.peer.port);
    }
  }
  schedule.validate();
  return schedule;
}

}  // namespace mlid

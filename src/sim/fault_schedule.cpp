#include "sim/fault_schedule.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "common/rng.hpp"

namespace mlid {

void FaultSchedule::fail_link(SimTime at, const Fabric& fabric, DeviceId dev,
                              PortId port) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  const PortRef peer = fabric.peer_of(dev, port);
  MLID_EXPECT(peer.valid(), "failing a link that is not connected");
  MLID_EXPECT(fabric.device(dev).kind() == DeviceKind::kSwitch &&
                  fabric.device(peer.device).kind() == DeviceKind::kSwitch,
              "only inter-switch links may fail (an endnode attach link "
              "would partition the node)");
  events_.push_back(
      FaultEvent{at, dev, port, peer.device, peer.port, /*fail=*/true});
  sorted_ = false;
}

void FaultSchedule::recover_link(SimTime at, DeviceId dev_a, PortId port_a,
                                 DeviceId dev_b, PortId port_b) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  events_.push_back(
      FaultEvent{at, dev_a, port_a, dev_b, port_b, /*fail=*/false});
  sorted_ = false;
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
  return events_;
}

void FaultSchedule::validate() const {
  // A link is identified by its unordered endpoint pair: a recovery may
  // name the endpoints in either order relative to the failure.
  const auto key_of = [](const FaultEvent& e) {
    const std::uint64_t a =
        (static_cast<std::uint64_t>(e.dev_a) << 8) | e.port_a;
    const std::uint64_t b =
        (static_cast<std::uint64_t>(e.dev_b) << 8) | e.port_b;
    return std::make_pair(std::min(a, b), std::max(a, b));
  };
  std::map<std::pair<std::uint64_t, std::uint64_t>, SimTime> down_since;
  for (const FaultEvent& e : events()) {
    const auto key = key_of(e);
    const auto it = down_since.find(key);
    if (e.fail) {
      MLID_EXPECT(it == down_since.end(),
                  "fault schedule fails a link that is already down "
                  "(duplicate failure without an intervening recovery)");
      down_since.emplace(key, e.at);
    } else {
      MLID_EXPECT(it != down_since.end(),
                  "fault schedule recovers a link that is not down "
                  "(recovery before, or without, its failure)");
      MLID_EXPECT(e.at > it->second,
                  "fault schedule recovers a link at (or before) the "
                  "instant it fails; recovery must be strictly later");
      down_since.erase(it);
    }
  }
}

FaultSchedule FaultSchedule::random_uplink_failures(
    const FatTreeFabric& fabric, int count, SimTime fail_at,
    std::uint64_t seed, SimTime recover_at) {
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  std::vector<std::pair<DeviceId, PortId>> chosen;
  // Clamp to the number of distinct uplinks (each inter-level link has
  // exactly one lower endpoint with an up port), so an oversized request
  // fails every uplink instead of rejection-sampling forever.
  int available = 0;
  for (std::uint32_t sw = 0; sw < fabric.params().num_switches(); ++sw) {
    if (fabric.switch_label(static_cast<SwitchId>(sw)).level() == 0) continue;
    const DeviceId dev = fabric.switch_device(static_cast<SwitchId>(sw));
    for (int p = fabric.params().half() + 1; p <= fabric.params().m(); ++p) {
      if (fabric.fabric().device(dev).port_connected(static_cast<PortId>(p))) {
        ++available;
      }
    }
  }
  int remaining = std::min(count, available);
  while (remaining > 0) {
    const auto sw =
        static_cast<SwitchId>(rng.below(fabric.params().num_switches()));
    if (fabric.switch_label(sw).level() == 0) continue;  // roots have no ups
    const auto port = static_cast<PortId>(
        static_cast<std::uint64_t>(fabric.params().half()) + 1 +
        rng.below(static_cast<std::uint64_t>(fabric.params().half())));
    const DeviceId dev = fabric.switch_device(sw);
    if (!fabric.fabric().device(dev).port_connected(port)) continue;
    bool duplicate = false;
    const PortRef peer = fabric.fabric().peer_of(dev, port);
    for (const auto& [cdev, cport] : chosen) {
      if ((cdev == dev && cport == port) ||
          (cdev == peer.device && cport == peer.port)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    chosen.emplace_back(dev, port);
    schedule.fail_link(fail_at, fabric.fabric(), dev, port);
    if (recover_at >= 0) {
      MLID_EXPECT(recover_at > fail_at, "recovery must follow the failure");
      schedule.recover_link(recover_at, dev, port, peer.device, peer.port);
    }
    --remaining;
  }
  return schedule;
}

}  // namespace mlid

#include "sim/fault_schedule.hpp"

#include <algorithm>

#include "common/rng.hpp"

namespace mlid {

void FaultSchedule::fail_link(SimTime at, const Fabric& fabric, DeviceId dev,
                              PortId port) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  const PortRef peer = fabric.peer_of(dev, port);
  MLID_EXPECT(peer.valid(), "failing a link that is not connected");
  MLID_EXPECT(fabric.device(dev).kind() == DeviceKind::kSwitch &&
                  fabric.device(peer.device).kind() == DeviceKind::kSwitch,
              "only inter-switch links may fail (an endnode attach link "
              "would partition the node)");
  events_.push_back(
      FaultEvent{at, dev, port, peer.device, peer.port, /*fail=*/true});
  sorted_ = false;
}

void FaultSchedule::recover_link(SimTime at, DeviceId dev_a, PortId port_a,
                                 DeviceId dev_b, PortId port_b) {
  MLID_EXPECT(at >= 0, "fault time must be non-negative");
  events_.push_back(
      FaultEvent{at, dev_a, port_a, dev_b, port_b, /*fail=*/false});
  sorted_ = false;
}

const std::vector<FaultEvent>& FaultSchedule::events() const {
  if (!sorted_) {
    std::stable_sort(events_.begin(), events_.end(),
                     [](const FaultEvent& a, const FaultEvent& b) {
                       return a.at < b.at;
                     });
    sorted_ = true;
  }
  return events_;
}

FaultSchedule FaultSchedule::random_uplink_failures(
    const FatTreeFabric& fabric, int count, SimTime fail_at,
    std::uint64_t seed, SimTime recover_at) {
  FaultSchedule schedule;
  Xoshiro256 rng(seed);
  std::vector<std::pair<DeviceId, PortId>> chosen;
  // Clamp to the number of distinct uplinks (each inter-level link has
  // exactly one lower endpoint with an up port), so an oversized request
  // fails every uplink instead of rejection-sampling forever.
  int available = 0;
  for (std::uint32_t sw = 0; sw < fabric.params().num_switches(); ++sw) {
    if (fabric.switch_label(static_cast<SwitchId>(sw)).level() == 0) continue;
    const DeviceId dev = fabric.switch_device(static_cast<SwitchId>(sw));
    for (int p = fabric.params().half() + 1; p <= fabric.params().m(); ++p) {
      if (fabric.fabric().device(dev).port_connected(static_cast<PortId>(p))) {
        ++available;
      }
    }
  }
  int remaining = std::min(count, available);
  while (remaining > 0) {
    const auto sw =
        static_cast<SwitchId>(rng.below(fabric.params().num_switches()));
    if (fabric.switch_label(sw).level() == 0) continue;  // roots have no ups
    const auto port = static_cast<PortId>(
        static_cast<std::uint64_t>(fabric.params().half()) + 1 +
        rng.below(static_cast<std::uint64_t>(fabric.params().half())));
    const DeviceId dev = fabric.switch_device(sw);
    if (!fabric.fabric().device(dev).port_connected(port)) continue;
    bool duplicate = false;
    const PortRef peer = fabric.fabric().peer_of(dev, port);
    for (const auto& [cdev, cport] : chosen) {
      if ((cdev == dev && cport == port) ||
          (cdev == peer.device && cport == peer.port)) {
        duplicate = true;
        break;
      }
    }
    if (duplicate) continue;
    chosen.emplace_back(dev, port);
    schedule.fail_link(fail_at, fabric.fabric(), dev, port);
    if (recover_at >= 0) {
      MLID_EXPECT(recover_at > fail_at, "recovery must follow the failure");
      schedule.recover_link(recover_at, dev, port, peer.device, peer.port);
    }
    --remaining;
  }
  return schedule;
}

}  // namespace mlid

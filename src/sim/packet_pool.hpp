// Pooled packet storage shared by the sequential and sharded engines.
//
// Packets are recycled through a freelist (no per-packet heap traffic on
// the hot path) and every slot carries a generation counter that is bumped
// on release: debug/checked builds verify each access against the live
// map, so a stale PacketId — the classic pool bug — trips a
// ContractViolation instead of silently reading a recycled slot.
//
// The pool also owns the intrusive `next` links that thread packets into
// PacketQueue FIFOs: a packet is in at most one queue at a time (a NIC
// source queue, an output VL's granted queue, or a crossbar wait queue),
// so one link per slot replaces the per-port deque storage that dominated
// per-port memory before the struct-of-arrays refactor.
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "ib/packet.hpp"

namespace mlid {

/// Intrusive FIFO of pooled packets: 16 bytes per queue (head, tail,
/// count) instead of an 80-byte std::deque plus its heap blocks.  All
/// mutation goes through PacketPool, which owns the links.
struct PacketQueue {
  PacketId head = kInvalidPacket;
  PacketId tail = kInvalidPacket;
  std::uint32_t size = 0;

  [[nodiscard]] bool empty() const noexcept { return size == 0; }
};

class PacketPool {
 public:
  /// Allocates a slot (recycled from the freelist when possible).  The
  /// slot's Packet contents are whatever the caller assigns next; the
  /// intrusive link starts detached.
  [[nodiscard]] PacketId alloc() {
    PacketId pkt;
    if (!free_.empty()) {
      pkt = free_.back();
      free_.pop_back();
      MLID_ASSERT(!live_[pkt], "freelist entry still live");
    } else {
      pkt = static_cast<PacketId>(pkts_.size());
      pkts_.emplace_back();
      next_.push_back(kInvalidPacket);
      gen_.push_back(0);
      live_.push_back(0);
    }
    live_[pkt] = 1;
    next_[pkt] = kInvalidPacket;
    ++live_count_;
    return pkt;
  }

  /// Returns a slot to the freelist and bumps its generation, so checked
  /// builds catch any later access through a stale id.
  void release(PacketId pkt) {
    MLID_ASSERT(pkt < pkts_.size() && live_[pkt],
                "releasing a packet that is not live");
    live_[pkt] = 0;
    ++gen_[pkt];
    free_.push_back(pkt);
    --live_count_;
  }

  [[nodiscard]] Packet& get(PacketId pkt) {
    MLID_ASSERT(pkt < pkts_.size() && live_[pkt],
                "access to a released packet slot");
    return pkts_[pkt];
  }
  [[nodiscard]] const Packet& get(PacketId pkt) const {
    MLID_ASSERT(pkt < pkts_.size() && live_[pkt],
                "access to a released packet slot");
    return pkts_[pkt];
  }

  [[nodiscard]] bool is_live(PacketId pkt) const noexcept {
    return pkt < pkts_.size() && live_[pkt];
  }
  [[nodiscard]] std::uint32_t generation(PacketId pkt) const {
    MLID_ASSERT(pkt < gen_.size(), "packet id out of range");
    return gen_[pkt];
  }

  // --- intrusive FIFO ops ----------------------------------------------------
  void push_back(PacketQueue& q, PacketId pkt) {
    MLID_ASSERT(is_live(pkt), "queueing a released packet");
    next_[pkt] = kInvalidPacket;
    if (q.tail == kInvalidPacket) {
      q.head = pkt;
    } else {
      next_[q.tail] = pkt;
    }
    q.tail = pkt;
    ++q.size;
  }

  PacketId pop_front(PacketQueue& q) {
    MLID_ASSERT(q.size > 0, "pop from an empty packet queue");
    const PacketId pkt = q.head;
    q.head = next_[pkt];
    if (q.head == kInvalidPacket) q.tail = kInvalidPacket;
    next_[pkt] = kInvalidPacket;
    --q.size;
    return pkt;
  }

  /// Unlinks `pkt` given its predecessor (kInvalidPacket when `pkt` is the
  /// head) — the CC skip-scan removes the first non-gated packet from the
  /// middle of a source queue.
  void erase_after(PacketQueue& q, PacketId prev, PacketId pkt) {
    MLID_ASSERT(q.size > 0, "erase from an empty packet queue");
    if (prev == kInvalidPacket) {
      MLID_ASSERT(q.head == pkt, "predecessor mismatch");
      q.head = next_[pkt];
    } else {
      MLID_ASSERT(next_[prev] == pkt, "predecessor mismatch");
      next_[prev] = next_[pkt];
    }
    if (q.tail == pkt) q.tail = prev;
    next_[pkt] = kInvalidPacket;
    --q.size;
  }

  [[nodiscard]] PacketId next_of(PacketId pkt) const {
    MLID_ASSERT(pkt < next_.size(), "packet id out of range");
    return next_[pkt];
  }

  // --- accounting ------------------------------------------------------------
  [[nodiscard]] std::size_t slots() const noexcept { return pkts_.size(); }
  [[nodiscard]] std::size_t live_count() const noexcept { return live_count_; }
  /// Heap bytes owned by the pool (excluding sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return pkts_.capacity() * sizeof(Packet) +
           next_.capacity() * sizeof(PacketId) +
           gen_.capacity() * sizeof(std::uint32_t) +
           live_.capacity() * sizeof(char) +
           free_.capacity() * sizeof(PacketId);
  }

 private:
  std::vector<Packet> pkts_;
  std::vector<PacketId> next_;       ///< intrusive queue link per slot
  std::vector<std::uint32_t> gen_;   ///< bumped on release (stale-id guard)
  std::vector<char> live_;           ///< alloc/release pairing guard
  std::vector<PacketId> free_;
  std::size_t live_count_ = 0;
};

}  // namespace mlid

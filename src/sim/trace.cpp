#include "sim/trace.hpp"

#include <sstream>

namespace mlid {

std::string to_string(const PacketTraceRecord& record) {
  std::ostringstream os;
  os << "packet node " << record.src << " -> node " << record.dst
     << " (dlid " << record.dlid << ")\n";
  for (const TraceEvent& event : record.events) {
    os << "  t=" << event.time << "ns  " << to_string(event.point)
       << "  device " << event.dev << " port " << int(event.port) << " vl "
       << int(event.vl) << "\n";
  }
  return os.str();
}

std::string to_string(TracePoint point) {
  switch (point) {
    case TracePoint::kGenerated:
      return "generated";
    case TracePoint::kInjected:
      return "injected";
    case TracePoint::kHeadArrive:
      return "head-arrive";
    case TracePoint::kForwarded:
      return "forwarded";
    case TracePoint::kDelivered:
      return "delivered";
    case TracePoint::kDropped:
      return "dropped";
  }
  return "?";
}

}  // namespace mlid

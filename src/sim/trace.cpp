#include "sim/trace.hpp"

#include <sstream>

namespace mlid {

std::string to_string(const PacketTraceRecord& record) {
  std::ostringstream os;
  os << "packet node " << record.src << " -> node " << record.dst
     << " (dlid " << record.dlid << ")\n";
  for (const TraceEvent& event : record.events) {
    os << "  t=" << event.time << "ns  " << to_string(event.point)
       << "  device " << event.dev << " port " << int(event.port) << " vl "
       << int(event.vl);
    if (event.drop != DropReason::kNone) {
      os << " (" << to_string(event.drop) << ")";
    }
    os << "\n";
  }
  return os.str();
}

std::string_view to_string(DropReason reason) {
  switch (reason) {
    case DropReason::kNone:
      return "none";
    case DropReason::kUnroutable:
      return "unroutable";
    case DropReason::kDeadLink:
      return "dead-link";
    case DropReason::kConvergence:
      return "convergence";
  }
  return "?";
}

std::string to_string(TracePoint point) {
  switch (point) {
    case TracePoint::kGenerated:
      return "generated";
    case TracePoint::kInjected:
      return "injected";
    case TracePoint::kHeadArrive:
      return "head-arrive";
    case TracePoint::kForwarded:
      return "forwarded";
    case TracePoint::kDelivered:
      return "delivered";
    case TracePoint::kDropped:
      return "dropped";
  }
  return "?";
}

}  // namespace mlid

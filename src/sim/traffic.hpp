// Traffic patterns: destination selection per generated packet.
//
// The paper evaluates a uniform pattern and a "centric" hot-spot pattern
// (each node directs a fixed fraction of its packets to one particular
// node).  Permutation and bit-complement patterns are provided for the
// extension benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlid {

enum class TrafficKind : std::uint8_t {
  kUniform,        ///< destination uniform over all other nodes
  kCentric,        ///< hot-spot: P(hot) = hot_fraction, else uniform
  kPermutation,    ///< fixed random derangement src -> dst
  kBitComplement,  ///< dst = N - 1 - src (worst-case prefix distance)
  kNeighbor,       ///< dst = src ^ 1 (same leaf switch; best case)
};

[[nodiscard]] std::string to_string(TrafficKind kind);

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kUniform;
  double hot_fraction = 0.20;     ///< centric only
  NodeId hot_node = 0;            ///< centric only
  std::uint64_t seed = 42;        ///< pattern-private randomness
  /// > 0 partitions the node space into that many contiguous blocks and
  /// confines every destination to the source's own block (uniform and
  /// centric kinds only; centric picks a per-tenant hot node).  0 keeps the
  /// historical unpartitioned draw, byte-identical to pre-tenant streams.
  /// Must match SimConfig::tenants.count when per-tenant accounting is on.
  int tenants = 0;
};

/// Tenant of node i under a T-way partition of N nodes: contiguous,
/// near-equal blocks via i*T/N.  The inverse block bounds come from
/// tenant_block_begin; every block is non-empty for T <= N.
[[nodiscard]] constexpr int tenant_of_node(NodeId node, int tenants,
                                           std::uint32_t num_nodes) noexcept {
  return static_cast<int>(static_cast<std::uint64_t>(node) *
                          static_cast<std::uint64_t>(tenants) / num_nodes);
}

/// First node of tenant t's block (== one past the end of block t-1).
[[nodiscard]] constexpr NodeId tenant_block_begin(
    int tenant, int tenants, std::uint32_t num_nodes) noexcept {
  // ceil(t*N/T): the smallest i with i*T/N == t.
  return static_cast<NodeId>(
      (static_cast<std::uint64_t>(tenant) * num_nodes +
       static_cast<std::uint64_t>(tenants) - 1) /
      static_cast<std::uint64_t>(tenants));
}

/// Stateful pattern object; one per simulation.  Destination draws use a
/// per-source RNG stream so node count changes don't perturb other nodes.
class TrafficPattern {
 public:
  TrafficPattern(TrafficConfig config, std::uint32_t num_nodes);

  [[nodiscard]] NodeId pick_destination(NodeId src);

  [[nodiscard]] const TrafficConfig& config() const noexcept {
    return config_;
  }

 private:
  TrafficConfig config_;
  std::uint32_t num_nodes_;
  std::vector<Xoshiro256> per_source_;
  std::vector<NodeId> permutation_;  ///< permutation pattern only
};

}  // namespace mlid

// Traffic patterns: destination selection per generated packet.
//
// The paper evaluates a uniform pattern and a "centric" hot-spot pattern
// (each node directs a fixed fraction of its packets to one particular
// node).  Permutation and bit-complement patterns are provided for the
// extension benches and examples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/types.hpp"

namespace mlid {

enum class TrafficKind : std::uint8_t {
  kUniform,        ///< destination uniform over all other nodes
  kCentric,        ///< hot-spot: P(hot) = hot_fraction, else uniform
  kPermutation,    ///< fixed random derangement src -> dst
  kBitComplement,  ///< dst = N - 1 - src (worst-case prefix distance)
  kNeighbor,       ///< dst = src ^ 1 (same leaf switch; best case)
};

[[nodiscard]] std::string to_string(TrafficKind kind);

struct TrafficConfig {
  TrafficKind kind = TrafficKind::kUniform;
  double hot_fraction = 0.20;     ///< centric only
  NodeId hot_node = 0;            ///< centric only
  std::uint64_t seed = 42;        ///< pattern-private randomness
};

/// Stateful pattern object; one per simulation.  Destination draws use a
/// per-source RNG stream so node count changes don't perturb other nodes.
class TrafficPattern {
 public:
  TrafficPattern(TrafficConfig config, std::uint32_t num_nodes);

  [[nodiscard]] NodeId pick_destination(NodeId src);

  [[nodiscard]] const TrafficConfig& config() const noexcept {
    return config_;
  }

 private:
  TrafficConfig config_;
  std::uint32_t num_nodes_;
  std::vector<Xoshiro256> per_source_;
  std::vector<NodeId> permutation_;  ///< permutation pattern only
};

}  // namespace mlid

// Time-resolved observability: the interval sampler's Timeline, the
// per-device flight recorder and the control-plane trace.
//
// Everything in this header is passive instrumentation, like the telemetry
// counters: recording never schedules events, draws random numbers or
// touches engine state, so enabling any of it leaves the simulation's
// results bit-identical (asserted by sim/timeline_test.cpp).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "sim/event_queue.hpp"

namespace mlid {

/// One sampler interval.  Deltas cover the half-open window
/// (t_ns - intervals * base_interval, t_ns]; gauges are snapshots taken at
/// t_ns.  Samples are mergeable: two adjacent samples combine into one
/// covering both windows (deltas add, gauges keep the max / the later
/// value), which is what the decimation policy and cross-run aggregation
/// rely on.
struct TimelineSample {
  SimTime t_ns = 0;             ///< exclusive end of the covered window
  std::uint32_t intervals = 1;  ///< base intervals merged into this sample

  // --- deltas over the covered window ----------------------------------------
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t becn = 0;  ///< BECNs echoed by destinations (CC only)

  // --- gauges at t_ns ---------------------------------------------------------
  /// Packets alive anywhere (source queues included):
  /// generated - delivered - dropped, whole run.
  std::uint64_t in_flight = 0;
  /// Packets sitting in switch output queues + crossbar wait queues.
  std::uint64_t queued_pkts = 0;
  /// Deepest single (port, VL) output backlog right now.
  std::uint32_t max_queue_depth = 0;
  /// (link, VL) heads blocked purely on zero downstream credits.
  std::uint32_t stalled_vls = 0;
  /// HCAs currently holding any non-zero CCT entry (CC only).
  std::uint32_t cct_active_nodes = 0;
  /// Highest CCT index currently held by any HCA (CC only).
  std::uint16_t peak_cct_index = 0;

  /// Folds the chronologically *later* sample into this one.
  void merge_from(const TimelineSample& later) noexcept;

  friend bool operator==(const TimelineSample&,
                         const TimelineSample&) = default;
};

/// The interval sampler's output: a bounded sequence of TimelineSamples.
/// When appending would exceed max_samples, adjacent pairs are merged in
/// place and the effective interval doubles (a "decimation"), so the
/// timeline of an arbitrarily long run stays within the cap while every
/// base interval remains accounted for exactly once.
struct Timeline {
  SimTime base_interval_ns = 0;  ///< SimConfig::sample_interval_ns
  SimTime interval_ns = 0;       ///< current cadence (doubles per decimation)
  std::uint32_t max_samples = 0;
  std::uint32_t decimations = 0;
  std::vector<TimelineSample> samples;

  [[nodiscard]] bool enabled() const noexcept { return interval_ns > 0; }

  void configure(SimTime interval, std::uint32_t cap) {
    MLID_EXPECT(interval > 0, "sampler interval must be positive");
    MLID_EXPECT(cap >= 2, "timeline cap must hold at least two samples");
    base_interval_ns = interval;
    interval_ns = interval;
    max_samples = cap;
    samples.reserve(cap);
  }

  /// Appends one sample, decimating when the cap is reached.
  void append(const TimelineSample& sample);

  friend bool operator==(const Timeline&, const Timeline&) = default;

 private:
  void decimate();
};

/// One slot of a device's flight-recorder ring: a dispatched engine event,
/// with node-scoped events (generation, BECN arrival, CC timers) mapped to
/// the node's NIC device.
struct FlightEvent {
  SimTime time = 0;
  EventKind kind = EventKind::kGenerate;
  DeviceId dev = kInvalidDevice;
  PacketId pkt = kInvalidPacket;
  PortId port = 0;
  VlId vl = 0;

  friend bool operator==(const FlightEvent&, const FlightEvent&) = default;
};

/// Frozen copy of one device's ring, taken at the first drop (or rendered
/// on a contract violation): the last K engine events that touched the
/// device, oldest first -- the context that makes a drop-taxonomy counter
/// debuggable.
struct FlightRecorderDump {
  SimTime at = -1;  ///< freeze time (-1 = never froze)
  DeviceId dev = kInvalidDevice;
  std::string device_name;
  std::string cause;
  std::vector<FlightEvent> events;  ///< oldest -> newest

  [[nodiscard]] bool valid() const noexcept { return at >= 0; }
};

/// Multi-line human-readable rendering (what lands on stderr on freeze).
[[nodiscard]] std::string to_string(const FlightRecorderDump& dump);

/// Control-plane occurrences the chrome-trace exporter renders as instant
/// events: fault injections, the SM's trap -> sweep -> program pipeline and
/// the congestion-control loop.
enum class ControlPoint : std::uint8_t {
  kLinkFail,     ///< dev = failing device, port = failing port
  kLinkRecover,  ///< dev/port = endpoint A, aux = endpoint B device
  kTrap,         ///< dev = reporting device, port = reported port
  kSweepDone,    ///< the SM's re-sweep completed
  kLftProgram,   ///< dev = plan index, aux = epoch
  kBecn,         ///< dev = source HCA node, aux = congested destination node
  kCctTimer,     ///< dev = HCA node
  kCcRelease,    ///< dev = HCA node whose injection gate reopened
};

[[nodiscard]] std::string_view to_string(ControlPoint point);

/// One recorded control event (SimConfig::trace_control).
struct ControlTraceRecord {
  SimTime time = 0;
  ControlPoint point = ControlPoint::kLinkFail;
  DeviceId dev = kInvalidDevice;  ///< semantics per ControlPoint above
  std::uint32_t aux = 0;
  PortId port = 0;

  friend bool operator==(const ControlTraceRecord&,
                         const ControlTraceRecord&) = default;
};

}  // namespace mlid

// Event-driven InfiniBand subnet simulator.
//
// Models, at packet granularity (see DESIGN.md §6):
//   * crossbar switches with per-(port, VL) input/output buffers,
//   * deterministic LFT forwarding with a fixed routing/arbitration delay,
//   * virtual cut-through (forwarding begins after the head is routed; the
//     serialization time is paid once end-to-end when uncontended),
//   * credit-based link-level flow control per VL,
//   * round-robin VL arbitration on each physical link,
//   * endnode NICs with per-VL source queues injecting at a constant rate.
//
// Every run is bit-deterministic for a given (config, traffic) seed pair.
#pragma once

#include <vector>

#include "cc/cct.hpp"
#include "cc/telemetry.hpp"
#include "sim/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/packet_pool.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"
#include "subnet/sm.hpp"
#include "subnet/subnet.hpp"

namespace mlid {

class MetricsStreamer;

/// Optional extras for Simulation::open_loop.  Attaching a live Subnet
/// Manager here -- rather than through a post-construction setter -- makes
/// the old "attach after run()" misuse unrepresentable by construction.
struct OpenLoopOptions {
  /// Live Subnet Manager (non-owning; must outlive the simulation).  The
  /// fault schedule's link failures and recoveries become simulation
  /// events: packets caught on a failing link are dropped, stale tables
  /// misroute until the SM's trap-driven re-sweep reprograms the switches,
  /// and the timeline lands in SimResult.  With an empty schedule the run
  /// is bit-identical to an unattached one.
  SubnetManager* live_sm = nullptr;
  FaultSchedule faults;
  /// JSONL metrics stream (non-owning; must outlive the run).  The engine
  /// emits a "window" line every MetricsStreamer::interval_ns() of
  /// simulated time plus one "summary" line at run end.  Passive like the
  /// interval sampler: results are byte-identical with streaming on/off
  /// (tests/obs/metrics_stream_test.cpp).
  MetricsStreamer* metrics = nullptr;
};

/// One event crossing a shard boundary in a sharded run (see
/// parallel/sharded.hpp): a plain value the parallel driver carries from the
/// scheduling shard's outbox into the owning shard's queue at the next
/// window barrier.  Packet handoffs (kHeadArrive) carry the packet by value;
/// the receiver re-allocates it in its own pool.
struct ShardMessage {
  SimTime time = 0;
  EventKind kind = EventKind::kGenerate;
  DeviceId dev = kInvalidDevice;
  PacketId pkt = kInvalidPacket;  ///< payload field (BECN dst, recover endpoint)
  PortId port = 0;
  VlId vl = 0;
  std::uint64_t corder = 0;
  bool has_packet = false;
  Packet packet;  ///< valid when has_packet
};

/// Binding of one Simulation instance into a sharded run.  Installed at
/// construction by ShardedSimulation; all pointers reference driver-owned
/// storage that outlives the shard.  A null outbox means "not sharded".
struct ShardBinding {
  std::uint32_t shard_id = 0;
  std::uint32_t num_shards = 1;
  const std::vector<std::uint32_t>* dev_shard = nullptr;   ///< by DeviceId
  const std::vector<std::uint32_t>* node_shard = nullptr;  ///< by NodeId
  std::vector<ShardMessage>* outbox = nullptr;   ///< cross-shard data events
  std::vector<ShardMessage>* control = nullptr;  ///< SM/fault events -> driver
};

class Simulation {
 public:
  /// Open-loop mode: `offered_load` is the per-node injection rate as a
  /// fraction of the endnode link bandwidth (1.0 = one packet every
  /// packet_wire_ns).  Use run().
  [[nodiscard]] static Simulation open_loop(const Subnet& subnet,
                                            const SimConfig& config,
                                            const TrafficConfig& traffic,
                                            double offered_load,
                                            const OpenLoopOptions& options = {});

  /// Closed-loop (burst) mode: segments every message at the MTU
  /// (config.packet_bytes) and queues all segments at t = 0.  Use
  /// run_to_completion().
  [[nodiscard]] static Simulation burst(
      const Subnet& subnet, const SimConfig& config,
      const std::vector<MessageSpec>& workload);

  /// Run to config.end_time() and return the collected metrics
  /// (open-loop mode only).
  SimResult run();

  /// Drain the burst workload and report makespan / message latencies
  /// (burst mode only).
  BurstResult run_to_completion();

  /// Post-run diagnostics: every output port still holding packets, its
  /// credit counters and crossbar wait queues.  Empty string when the
  /// network fully drained (modulo source queues).
  [[nodiscard]] std::string stall_report() const;

  /// Timelines of up to SimConfig::trace_packets generated packets, taken
  /// every SimConfig::trace_stride-th generation (empty when tracing is
  /// off).  Valid after run().
  [[nodiscard]] const std::vector<PacketTraceRecord>& traces() const noexcept {
    return traces_;
  }

  /// The interval sampler's output (empty unless
  /// SimConfig::sample_interval_ns > 0).  Also exported in
  /// SimResult::timeline; valid after run().
  [[nodiscard]] const Timeline& timeline() const noexcept { return timeline_; }

  /// Control-plane events (faults, SM pipeline, CC loop) in dispatch order
  /// (empty unless SimConfig::trace_control).  Valid after run().
  [[nodiscard]] const std::vector<ControlTraceRecord>& control_trace()
      const noexcept {
    return control_trace_;
  }

  /// The flight recorder's frozen ring: the last K engine events on the
  /// first dropping device (invalid when SimConfig::flight_recorder_depth
  /// is 0 or nothing dropped).  Also rendered to stderr at freeze time.
  [[nodiscard]] const FlightRecorderDump& flight_dump() const noexcept {
    return flight_dump_;
  }

  /// Per-directed-link transmission counts and busy fractions, in
  /// deterministic (device, port) order.  Valid after run().
  [[nodiscard]] std::vector<LinkLoad> link_loads() const;

  /// Full per-link / per-VL telemetry (bytes, busy time, credit stalls,
  /// peak queue depths), in deterministic (device, port) order.  Requires
  /// SimConfig::telemetry; valid after run() / run_to_completion().
  [[nodiscard]] std::vector<LinkStats> link_stats() const;

  /// Token-conservation self-check: every output slot/credit counter must
  /// still balance against its capacity.  Throws ContractViolation on the
  /// first violation; run() calls it automatically before returning.
  void check_invariants() const;

  /// Internals of the pending-event structure this run executed on (kind,
  /// scheduled/processed counts, ladder bucket occupancy / resizes /
  /// overflow depth).  Pure host-performance metadata: identical results
  /// come out of either queue kind.
  [[nodiscard]] EventQueueStats queue_stats() const noexcept {
    return events_.stats();
  }

  /// Per-HCA congestion-control counters (BECNs, throttled time, peak CCT
  /// index), indexed by NodeId.  Empty unless SimConfig::cc is enabled;
  /// valid after run() / run_to_completion().
  [[nodiscard]] std::vector<CcNodeStats> cc_node_stats() const;

  /// Analytic engine-resident heap footprint in bytes: the packet pool,
  /// the flat per-port / per-VL arrays, source queues, timeline, traces
  /// and delivery log.  Deliberately *not* an RSS probe, so it is stable
  /// under sanitizers and across allocators; the scale bench divides it by
  /// the fabric's port count for the bytes/endport budget.  Excludes the
  /// pending-event queue (bounded by in-flight events, not fabric size)
  /// and the routing tables (CompiledRoutes::memory_bytes()).
  [[nodiscard]] std::size_t memory_footprint() const noexcept;

 private:
  /// The conservative-sync parallel driver (parallel/sharded.hpp) drives
  /// shard instances through the private machinery: it pops/dispatches
  /// events, drains outboxes, replays deliveries and merges results.
  friend class ShardedSimulation;

  // --- engine state types ----------------------------------------------------
  //
  // Hot per-port / per-VL state lives in flat struct-of-arrays storage,
  // indexed through a prefix sum over device port counts:
  //
  //   fp = port_base_[dev] + port     physical-port slot (ports are 1-based;
  //                                   slot 0 of every device is unused)
  //   vs = fp * vls_ + vl             (port, VL) slot
  //
  // Packet FIFOs are intrusive PacketQueues threaded through the pool's
  // per-slot links (sim/packet_pool.hpp): 16 bytes per queue instead of a
  // std::deque and its heap blocks, and the arbitration hot loop touches
  // three small parallel arrays instead of striding over 100+-byte structs.

  /// Cold per-(port, VL) counters: telemetry accumulators (only touched
  /// when cfg_.telemetry is on) kept out of the hot arrays.
  struct VlTelemetry {
    std::uint64_t pkts_tx = 0;
    std::uint64_t bytes_tx = 0;
    SimTime stall_since = -1;     ///< head blocked on credits since (-1 = no)
    SimTime credit_stall_ns = 0;  ///< accumulated credit-blocked idle time
    std::uint32_t peak_queue_pkts = 0;
    std::uint64_t fecn_marks = 0;  ///< marks stamped here (telemetry only)
  };
  struct PacketRt {
    DeviceId dev = kInvalidDevice;
    PortId in_port = 0;  ///< 0 = came from the local source queue
    PortId out_port = 0;
    std::int32_t trace = -1;  ///< index into traces_, -1 = untraced
    /// Shard mode: the packet's head crossed a shard boundary; this pool
    /// entry is a stale copy to be released when its tail finishes.
    bool handed_off = false;
  };
  struct NodeState {
    double next_gen_ns = 0.0;
    std::uint64_t queued_pkts = 0;
    std::uint64_t generated = 0;  ///< per-source Packet::corder counter
  };
  struct MsgState {
    std::uint32_t remaining_segments = 0;
    SimTime completed_at = -1;
  };
  /// Everything accumulate_delivery() needs from one delivered packet.  In a
  /// sharded run each shard logs these instead of feeding its own Welford
  /// accumulators; the driver replays the global log on shard 0 in canonical
  /// order, so the order-sensitive running statistics see the exact sequence
  /// the sequential oracle produced.
  struct DeliveryRecord {
    SimTime time = 0;
    DeviceId dev = kInvalidDevice;
    VlId vl = 0;
    std::uint64_t corder = 0;
    SimTime generated_at = 0;
    SimTime injected_at = 0;
    std::uint32_t size_bytes = 0;
    NodeId dst = kInvalidNode;
    std::uint16_t hops = 0;
    MessageId msg = kNoMessage;
  };

  /// Per-HCA congestion-control state (only populated when cfg_.cc.enabled).
  struct CcNode {
    /// Per-destination earliest next injection: the CCT delay is an
    /// inter-packet gap on the throttled *flow*, so a source full of
    /// victim traffic is not stalled by one congested destination
    /// (beyond FIFO head-of-line blocking while a gated head waits).
    std::vector<SimTime> next_allowed;
    bool release_scheduled = false; ///< a kCcRelease is already queued
    bool timer_armed = false;       ///< a kCctTimer is already queued
    CcNodeStats stats;
  };

  /// One pooled trace event: packet traces append here during the run and
  /// are distributed into traces_[rec].events once at run end, replacing
  /// per-record vector growth on the hot path.
  struct PendingTraceEvent {
    std::int32_t rec = -1;  ///< index into traces_
    TraceEvent ev;
  };

  // --- flat-state index helpers ----------------------------------------------
  [[nodiscard]] std::size_t port_index(DeviceId dev, PortId port) const noexcept {
    return port_base_[dev] + port;
  }
  [[nodiscard]] std::size_t vl_index(std::size_t fp,
                                     std::size_t vl) const noexcept {
    return fp * vls_ + vl;
  }

  // --- event handlers ---------------------------------------------------------
  void on_generate(NodeId node, SimTime now);
  void on_head_arrive(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                      SimTime now);
  void on_routed(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                 SimTime now);
  void on_tail_out(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                   SimTime now);
  void on_deliver(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                  SimTime now);

  // --- congestion control (IBA CCA) -------------------------------------------
  [[nodiscard]] bool cc_on() const noexcept { return cfg_.cc.enabled; }
  /// Stamps the FECN bit (idempotent; counters see the first mark only).
  void mark_fecn(PacketId pkt, bool stall_mark, DeviceId dev, PortId port,
                 VlId vl);
  /// A BECN from destination `dst` lands at source HCA `src`.
  void on_becn(NodeId src, NodeId dst, SimTime now);
  void on_cct_timer(NodeId node, SimTime now);
  void on_cc_release(NodeId node, SimTime now);
  [[nodiscard]] CcSummary collect_cc() const;

  // --- live SM / fault handling ----------------------------------------------
  // DropReason (sim/trace.hpp) names the taxonomy; `dev` is where the
  // packet died (freezes that device's flight-recorder ring on the first
  // drop).
  void count_drop(DropReason reason, PacketId pkt, DeviceId dev, SimTime now);
  void on_link_fail(DeviceId dev, PortId port, SimTime now);
  void on_link_recover(DeviceId dev_a, PortId port_a, DeviceId dev_b,
                       PortId port_b, SimTime now);
  void kill_port(DeviceId dev, PortId port, SimTime now);
  void revive_port(DeviceId dev, PortId port);
  void drop_in_switch(PacketId pkt, SimTime now);
  [[nodiscard]] const CompactLft& live_lft(SwitchId sw) const {
    return sm_ ? sm_->lft(sw) : subnet_->routes().lft(sw);
  }

  // --- mechanics ---------------------------------------------------------------
  void try_source_pull(NodeId node, VlId vl, SimTime now);
  /// `deterministic` is the LFT answer for the packet's DLID (the caller
  /// already looked it up); adaptive mode may override it with another
  /// up-port on the same switch.
  [[nodiscard]] PortId pick_output(DeviceId dev, const Device& device,
                                   VlId vl, PortId deterministic) const;
  void try_tx(DeviceId dev, PortId port, SimTime now);
  void grant_output(DeviceId dev, PortId out, VlId vl, PacketId pkt,
                    SimTime now);
  void return_credit_upstream(DeviceId dev, PortId in_port, VlId vl,
                              SimTime now);
  // Construction happens through the open_loop() / burst() factories only
  // (plus the *_shard variants ShardedSimulation uses).
  Simulation(const Subnet& subnet, SimConfig config, TrafficConfig traffic,
             double offered_load, bool burst,
             const ShardBinding* binding = nullptr);  // shared setup
  Simulation(const Subnet& subnet, SimConfig config, TrafficConfig traffic,
             double offered_load, const OpenLoopOptions& options);
  Simulation(const Subnet& subnet, SimConfig config,
             const std::vector<MessageSpec>& workload,
             const ShardBinding* binding = nullptr);
  void attach_live_sm(SubnetManager& sm, const FaultSchedule& faults);

  // --- shard-mode machinery (driven by ShardedSimulation) ---------------------
  /// One shard of a sharded open-loop run: seeds only owned nodes, routes
  /// boundary events through the binding's outbox.  `sm` (optional) is read
  /// for live tables only; fault events live in the driver's control queue.
  [[nodiscard]] static Simulation open_loop_shard(const Subnet& subnet,
                                                  const SimConfig& config,
                                                  const TrafficConfig& traffic,
                                                  double offered_load,
                                                  SubnetManager* sm,
                                                  const ShardBinding& binding);
  [[nodiscard]] static Simulation burst_shard(
      const Subnet& subnet, const SimConfig& config,
      const std::vector<MessageSpec>& workload, const ShardBinding& binding);
  [[nodiscard]] bool sharded() const noexcept {
    return shard_.outbox != nullptr;
  }
  [[nodiscard]] bool owns_node(NodeId node) const noexcept {
    return !sharded() || (*shard_.node_shard)[node] == shard_.shard_id;
  }
  /// Shard that must dispatch an event (node-scoped kinds map through the
  /// node partition, device-scoped through the device partition).
  [[nodiscard]] std::uint32_t target_shard(EventKind kind,
                                           DeviceId dev) const noexcept;
  /// Canonical tie-break key for an event (EventOrder::kCanonical).
  [[nodiscard]] std::uint64_t corder_of(EventKind kind, PacketId pkt) const;
  /// The engine's single scheduling point: pushes locally, or -- in shard
  /// mode -- routes control kinds and other shards' events into the binding.
  void schedule(SimTime time, EventKind kind, DeviceId dev, PortId port = 0,
                VlId vl = 0, PacketId pkt = kInvalidPacket);
  /// Delivers a boundary event from another shard into the local queue,
  /// re-homing a carried packet into the local pool.
  void receive(const ShardMessage& msg);
  /// Feeds one delivered packet into the order-sensitive accumulators
  /// (Welford windows, histograms, per-VL/per-node tallies, burst message
  /// completion).  Factored out of on_deliver so sharded runs can replay.
  void accumulate_delivery(const DeliveryRecord& rec);
  /// Tail of run(): assembles SimResult from the accumulated state.  Event
  /// totals are parameters so the driver can pass fleet-wide sums.
  [[nodiscard]] SimResult finalize_open_loop(std::uint64_t events_processed,
                                             std::uint64_t events_scheduled);
  /// Tail of run_to_completion(), same contract.
  [[nodiscard]] BurstResult finalize_burst(std::uint64_t events_processed,
                                           std::uint64_t events_scheduled);
  PacketId alloc_packet();
  void release_packet(PacketId pkt);
  [[nodiscard]] SimTime wire_ns(PacketId pkt) const {
    return static_cast<SimTime>(pool_.get(pkt).size_bytes) * cfg_.byte_time_ns;
  }
  void dispatch(const Event& e);
  void trace_event(PacketId pkt, SimTime now, TracePoint point, DeviceId dev,
                   PortId port, VlId vl,
                   DropReason drop = DropReason::kNone);
  /// Distributes the pooled trace arena into traces_[i].events (run end).
  void materialize_traces();
  // --- time-resolved observability (all passive; see sim/timeline.hpp) -------
  /// Snapshots one TimelineSample at simulated time `t` (counters-only).
  void take_sample(SimTime t);
  /// Fills the gauge fields of `s` by scanning this engine's (owned)
  /// devices and HCAs.  Shared by the sequential sampler and -- summed
  /// across shards -- the sharded driver's sampler.
  void collect_sample_gauges(TimelineSample& s) const;
  /// Emits one JSONL "window" line at simulated time `t` (counters-only;
  /// sequential engine; the sharded driver paces its own fleet lines).
  void emit_stream_window(SimTime t, bool partial);
  void record_flight(const Event& e);
  void record_control(const Event& e);
  /// The device a dispatched event belongs to for the flight recorder
  /// (node-scoped events map to the node's NIC; -1 = not device-scoped).
  [[nodiscard]] std::int64_t flight_device_of(const Event& e) const;
  void freeze_flight_dump(DeviceId dev, SimTime at, std::string cause);
  [[nodiscard]] FlightRecorderDump render_flight_ring(DeviceId dev, SimTime at,
                                                      std::string cause) const;
  [[nodiscard]] VlId assign_vl(NodeId src, NodeId dst);
  void accumulate_utilization(std::size_t fp, SimTime start, SimTime end);
  /// Closes open credit-stall intervals at `end` and rolls the per-link /
  /// per-VL counters up into a LinkSummary (utilization is busy time over
  /// `window_ns`).  No-op without cfg_.telemetry.
  LinkSummary finish_link_telemetry(SimTime end, SimTime window_ns);
  void note_queue_depth(DeviceId dev, PortId out, VlId vl);

  // --- wiring -------------------------------------------------------------------
  const Subnet* subnet_;
  SubnetManager* sm_ = nullptr;  ///< live tables + SM state machine, optional
  ShardBinding shard_;           ///< inert (null outbox) outside sharded runs
  std::vector<DeliveryRecord> deliveries_;  ///< shard mode only
  SimConfig cfg_;
  TrafficPattern traffic_;
  double offered_load_;
  double gen_interval_ns_;

  EventQueue events_;
  PacketPool pool_;          ///< generation-checked slots + intrusive links
  std::vector<PacketRt> rt_; ///< routing scratch, parallel to the pool

  // --- flat per-port / per-VL state (see the layout comment above) -----------
  std::vector<std::size_t> port_base_;  ///< per device + one end sentinel
  std::size_t vls_ = 1;                 ///< cfg_.num_vls as an index stride
  // Indexed by physical-port slot fp:
  std::vector<PortRef> port_peer_;
  std::vector<SimTime> port_busy_until_;
  std::vector<SimTime> port_busy_in_window_;
  std::vector<std::uint64_t> port_packets_tx_;
  std::vector<std::int32_t> port_wrr_vl_;      ///< VL whose round is running
  std::vector<std::int32_t> port_wrr_budget_;  ///< packets it may still send
  std::vector<std::uint8_t> port_retry_;       ///< a kTryTx is already queued
  std::vector<std::uint8_t> port_connected_;
  // Indexed by (port, VL) slot vs:
  std::vector<PacketQueue> vl_q_;     ///< granted packets awaiting the wire
  std::vector<PacketQueue> vl_wait_;  ///< crossbar wait queue
  std::vector<std::int32_t> vl_free_slots_;
  std::vector<std::int32_t> vl_credits_;  ///< downstream input slots available
  /// The head packet whose transmission is in progress (kInvalidPacket when
  /// the wire is idle).  Popped out of vl_q_ at transmit time: the pool owns
  /// exactly one intrusive link per packet, and the downstream hop queues
  /// the packet again (head arrival outruns our tail-out), so the
  /// transmitting head must not stay linked here.  It still occupies its
  /// output slot until tail-out frees it.
  std::vector<PacketId> vl_tx_pkt_;
  /// Congestion control's credit-stall clock (only touched when
  /// cfg_.cc.enabled).  A separate clock from the telemetry one in
  /// VlTelemetry: CC behavior must be identical whether telemetry is on
  /// or off.
  std::vector<SimTime> vl_cc_stall_since_;
  std::vector<VlTelemetry> vl_cold_;
  std::vector<PacketQueue> src_q_;  ///< NIC source queues [node * vls_ + vl]
  std::vector<PacketId> scratch_;   ///< kill_port queue snapshot

  std::vector<NodeState> nodes_;
  std::vector<PortId> first_up_port_;  ///< per device; 0 = no up ports
  std::vector<Xoshiro256> vl_rng_;

  // --- forwarding / VL-map policies (routing/adaptive.hpp) --------------------
  std::unique_ptr<ForwardingPolicy> fwd_policy_;
  std::unique_ptr<VlMapPolicy> vl_map_;
  bool adaptive_ = false;   ///< cached !fwd_policy_->deterministic()
  bool remap_vls_ = false;  ///< cached !vl_map_->identity()
  /// pick_output's candidate scratch (adaptive only; avoids per-hop
  /// allocation).  Mutable: pick_output is const and the scratch carries no
  /// state across calls.
  mutable std::vector<UpPortCandidate> uplink_scratch_;
  /// FECN marks per (port, VL) slot: the CC-derived selection signal the
  /// adaptive policy reads.  Sized only when the policy is adaptive *and*
  /// CC is enabled; kept separate from VlTelemetry::fecn_marks so policy
  /// behaviour never depends on the observability flags.
  std::vector<std::uint32_t> vl_fecn_signal_;

  // --- congestion control (empty / zero unless cfg_.cc.enabled) ---------------
  std::vector<CcNode> cc_nodes_;                    ///< per HCA
  std::vector<CongestionControlTable> cct_;         ///< per HCA
  std::uint64_t cc_fecn_marked_ = 0;
  std::uint64_t cc_fecn_depth_marks_ = 0;
  std::uint64_t cc_fecn_stall_marks_ = 0;
  std::uint64_t cc_becn_sent_ = 0;
  std::uint64_t cc_timer_fires_ = 0;
  std::vector<std::uint64_t> cc_index_hist_;        ///< [0, cct_levels]

  // --- time-resolved observability (empty / inert unless configured) ---------
  Timeline timeline_;
  std::uint64_t sampled_generated_ = 0;  ///< counters at the last sample
  std::uint64_t sampled_delivered_ = 0;
  std::uint64_t sampled_dropped_ = 0;
  std::uint64_t sampled_becn_ = 0;
  std::vector<FlightEvent> flight_ring_;   ///< [dev * depth + slot]
  std::vector<std::uint32_t> flight_pos_;  ///< next write slot per device
  std::vector<std::uint32_t> flight_len_;  ///< valid entries per device
  DeviceId last_flight_dev_ = kInvalidDevice;
  FlightRecorderDump flight_dump_;
  std::vector<ControlTraceRecord> control_trace_;

  // --- engine self-profile + metrics stream (inert unless configured) --------
  /// Filled by run() when cfg_.profile (sequential taxonomy), or installed
  /// by the sharded driver before finalize_open_loop; copied into
  /// SimResult::profile.
  ProfileSummary profile_;
  MetricsStreamer* stream_ = nullptr;  ///< non-owning, from OpenLoopOptions
  SimTime next_stream_ = 0;            ///< next window-line boundary
  SimTime last_stream_ = 0;            ///< previous emitted boundary
  std::uint64_t streamed_generated_ = 0;  ///< counters at the last line
  std::uint64_t streamed_delivered_ = 0;
  std::uint64_t streamed_dropped_ = 0;
  std::uint64_t streamed_becn_ = 0;

  // --- metrics accumulation -------------------------------------------------
  SimResult result_;
  std::vector<PacketTraceRecord> traces_;
  std::vector<PendingTraceEvent> trace_arena_;
  OnlineStats latency_window_;
  OnlineStats net_latency_window_;
  OnlineStats hops_window_;
  Histogram latency_hist_;
  // Hot-spot victim breakdown (only fed on kCentric traffic).
  OnlineStats victim_window_;
  OnlineStats hot_window_;
  Histogram victim_hist_;
  Histogram hot_hist_;
  std::uint64_t bytes_accepted_window_ = 0;
  std::vector<std::uint64_t> delivered_per_vl_;
  std::vector<OnlineStats> latency_per_vl_;
  std::vector<std::uint64_t> bytes_per_node_;
  // Multi-tenant accounting, indexed by tenant id (empty unless
  // cfg_.tenants.count > 0).  Fed from accumulate_delivery, so sharded runs
  // pick it up through the canonical delivery-log replay for free.
  std::vector<std::uint64_t> tenant_delivered_;
  std::vector<std::uint64_t> tenant_bytes_;
  std::vector<OnlineStats> tenant_latency_;
  [[nodiscard]] int tenant_of(NodeId node) const noexcept {
    return tenant_of_node(node, cfg_.tenants.count,
                          static_cast<std::uint32_t>(bytes_per_node_.size()));
  }

  // --- burst (closed-loop) mode ----------------------------------------------
  bool burst_ = false;
  std::vector<MsgState> msgs_;
  OnlineStats msg_latency_;
  Log2Histogram msg_latency_hist_;
  SimTime last_delivery_ = 0;
  std::uint64_t burst_packets_ = 0;
  std::uint64_t burst_bytes_ = 0;
};

}  // namespace mlid

// Simulation results: the quantities the paper plots plus diagnostics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace mlid {

struct SimResult {
  // --- the paper's axes ------------------------------------------------------
  double offered_load = 0.0;  ///< fraction of endnode link bandwidth
  /// Accepted traffic in payload bytes per nanosecond per processing node,
  /// measured over the measurement window (the paper's x axis).
  double accepted_bytes_per_ns_per_node = 0.0;
  /// Average message latency in ns, generation -> tail delivery (y axis).
  double avg_latency_ns = 0.0;

  // --- additional latency detail --------------------------------------------
  double avg_network_latency_ns = 0.0;  ///< injection -> delivery
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  // --- accounting ------------------------------------------------------------
  std::uint64_t packets_generated = 0;  ///< whole run
  std::uint64_t packets_delivered = 0;  ///< whole run
  std::uint64_t packets_measured = 0;   ///< delivered inside the window
  std::uint64_t packets_dropped = 0;    ///< unroutable DLID (must stay 0)
  std::uint64_t events_processed = 0;
  double avg_hops = 0.0;
  std::uint64_t max_source_queue_pkts = 0;
  double mean_link_utilization = 0.0;  ///< busy fraction, measurement window
  double max_link_utilization = 0.0;
  SimTime sim_end_ns = 0;

  // --- fairness and per-lane detail ------------------------------------------
  std::vector<std::uint64_t> delivered_per_vl;  ///< measurement window
  std::vector<double> avg_latency_per_vl_ns;    ///< measurement window
  /// Jain fairness index over per-destination accepted bytes in the window
  /// (1.0 = perfectly even; 1/N = one node receives everything).
  double jain_fairness_index = 0.0;
  double min_node_accepted_bytes_per_ns = 0.0;
  double max_node_accepted_bytes_per_ns = 0.0;
};

}  // namespace mlid

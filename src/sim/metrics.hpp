// Simulation results: the quantities the paper plots plus diagnostics, and
// the observability-layer types (log2 latency histograms, link summaries)
// every run exports alongside them.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "cc/telemetry.hpp"
#include "common/expect.hpp"
#include "common/stats.hpp"
#include "common/types.hpp"
#include "obs/profile.hpp"
#include "sim/timeline.hpp"

namespace mlid {

/// Fixed-bucket base-2 logarithmic histogram for latency-style quantities
/// (nanoseconds).  Bucket 0 counts values in [0, 1); bucket i >= 1 counts
/// [2^(i-1), 2^i); the top bucket absorbs everything at or above its lower
/// edge.  The layout is identical for every instance, so histograms from
/// different runs, schemes or VLs merge by element-wise addition -- unlike
/// a range-fitted linear histogram, no rebinning is ever needed.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 48;  // 2^46 ns ~ 19.5 hours

  /// Bucket index a value lands in (negatives and NaN clamp to bucket 0).
  [[nodiscard]] static std::size_t bucket_of(double x) noexcept {
    if (!(x >= 1.0)) return 0;
    if (x >= 0x1p63) return kBuckets - 1;
    const auto v = static_cast<std::uint64_t>(x);
    return std::min<std::size_t>(std::bit_width(v), kBuckets - 1);
  }

  /// Inclusive lower edge of bucket `i` (0, 1, 2, 4, 8, ...).
  [[nodiscard]] static double bucket_lo(std::size_t i) noexcept {
    return i == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(i) - 1);
  }

  /// Exclusive upper edge of bucket `i` (1, 2, 4, 8, ...).
  [[nodiscard]] static double bucket_hi(std::size_t i) noexcept {
    return std::ldexp(1.0, static_cast<int>(i));
  }

  void add(double x) noexcept {
    ++counts_[bucket_of(x)];
    ++total_;
  }

  void merge(const Log2Histogram& other) noexcept {
    for (std::size_t i = 0; i < kBuckets; ++i) counts_[i] += other.counts_[i];
    total_ += other.total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::array<std::uint64_t, kBuckets>& counts()
      const noexcept {
    return counts_;
  }

  /// Index just past the last non-empty bucket (0 when empty) -- lets
  /// exporters trim the long zero tail.
  [[nodiscard]] std::size_t trimmed_size() const noexcept {
    std::size_t n = kBuckets;
    while (n > 0 && counts_[n - 1] == 0) --n;
    return n;
  }

  /// Approximate quantile (q in [0, 1]) assuming uniform density per
  /// bucket.  Resolution is the bucket width, i.e. a factor of two -- fine
  /// for tail shape, not for tight percentile deltas (SimResult's p50/p95/
  /// p99 come from a fine-grained linear histogram instead).
  [[nodiscard]] double quantile(double q) const {
    MLID_EXPECT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (total_ == 0) return 0.0;
    const auto target =
        static_cast<std::uint64_t>(q * static_cast<double>(total_));
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      if (seen + counts_[i] > target) {
        const double frac = counts_[i]
                                ? static_cast<double>(target - seen) /
                                      static_cast<double>(counts_[i])
                                : 0.0;
        return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
      }
      seen += counts_[i];
    }
    return bucket_hi(kBuckets - 1);
  }

  friend bool operator==(const Log2Histogram&,
                         const Log2Histogram&) = default;

 private:
  std::array<std::uint64_t, kBuckets> counts_{};
  std::uint64_t total_ = 0;
};

/// Aggregate per-link telemetry for one run: the roll-up of the per-link /
/// per-VL counters (Simulation::link_stats()) that is cheap enough to ship
/// with every SweepPoint.  Only populated when SimConfig::telemetry is on.
struct LinkSummary {
  std::uint64_t links = 0;            ///< connected directed links at run end
  std::uint64_t total_packets = 0;    ///< whole run, all links
  std::uint64_t total_bytes = 0;      ///< whole run, all links
  double mean_utilization = 0.0;      ///< busy fraction, measurement window
  double max_utilization = 0.0;
  /// Total / worst time any (link, VL) head sat blocked on zero downstream
  /// credits while the link itself was idle -- the credit-loop bubble.
  std::uint64_t total_credit_stall_ns = 0;
  std::uint64_t max_credit_stall_ns = 0;
  /// Deepest per-(link, VL) output backlog (granted queue + crossbar
  /// waiters) seen anywhere in the fabric.
  std::uint32_t max_queue_depth_pkts = 0;
  /// FECN marks stamped across all (link, VL) outputs (zero unless both
  /// telemetry and congestion control are enabled).
  std::uint64_t total_fecn_marks = 0;
};

/// Per-tenant delivery roll-up for multi-tenant runs (SimConfig::tenants):
/// accepted packets/bytes and mean latency over the measurement window for
/// the packets *destined* to the tenant's node block.
struct TenantStats {
  std::uint64_t delivered_pkts = 0;    ///< measurement window
  double accepted_bytes_per_ns = 0.0;  ///< aggregate over the tenant's nodes
  double avg_latency_ns = 0.0;         ///< generation -> delivery

  friend bool operator==(const TenantStats&, const TenantStats&) = default;
};

struct SimResult {
  // --- the paper's axes ------------------------------------------------------
  double offered_load = 0.0;  ///< fraction of endnode link bandwidth
  /// Accepted traffic in payload bytes per nanosecond per processing node,
  /// measured over the measurement window (the paper's x axis).
  double accepted_bytes_per_ns_per_node = 0.0;
  /// Average message latency in ns, generation -> tail delivery (y axis).
  double avg_latency_ns = 0.0;

  // --- additional latency detail --------------------------------------------
  double avg_network_latency_ns = 0.0;  ///< injection -> delivery
  double p50_latency_ns = 0.0;
  double p95_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  // --- accounting ------------------------------------------------------------
  std::uint64_t packets_generated = 0;  ///< whole run
  std::uint64_t packets_delivered = 0;  ///< whole run
  std::uint64_t packets_measured = 0;   ///< delivered inside the window
  /// Total drops, all reasons (sum of the breakdown below).  Zero on a
  /// pristine fabric with matching tables; non-zero either flags a routing
  /// bug (dropped_unroutable) or measures fault/convergence loss.
  std::uint64_t packets_dropped = 0;
  /// No LFT entry at all for the DLID — a routing hole (bug, or a
  /// partitioned fabric after repair).
  std::uint64_t dropped_unroutable = 0;
  /// Caught on or queued behind a link at the instant it failed.
  std::uint64_t dropped_dead_link = 0;
  /// A stale LFT entry forwarded into a dead port — the convergence-window
  /// loss a live SM shrinks and an offline/stale table suffers forever.
  std::uint64_t dropped_during_convergence = 0;
  /// Drops of packets *injected* while the SM was quiescent (converged) —
  /// stays 0 when recovery actually works (asserted by the live-recovery
  /// bench).  Stragglers injected during the convergence window may still
  /// die shortly after the last program lands; those count as convergence
  /// loss above, not here.
  std::uint64_t drops_post_convergence = 0;
  /// Events dispatched by the engine's main loop.  events_scheduled also
  /// counts work still queued when the run's end time cut the loop off, so
  /// scheduled >= processed; events/sec manifests divide by *processed*.
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;
  double avg_hops = 0.0;
  std::uint64_t max_source_queue_pkts = 0;
  double mean_link_utilization = 0.0;  ///< busy fraction, measurement window
  double max_link_utilization = 0.0;
  SimTime sim_end_ns = 0;

  // --- fairness and per-lane detail ------------------------------------------
  std::vector<std::uint64_t> delivered_per_vl;  ///< measurement window
  std::vector<double> avg_latency_per_vl_ns;    ///< measurement window
  /// Jain fairness index over per-destination accepted bytes in the window
  /// (1.0 = perfectly even; 1/N = one node receives everything).
  double jain_fairness_index = 0.0;
  double min_node_accepted_bytes_per_ns = 0.0;
  double max_node_accepted_bytes_per_ns = 0.0;

  // --- hot-spot victim breakdown (centric traffic only; zero otherwise) ------
  // Victim flows are the packets NOT destined to the traffic pattern's hot
  // node: they share switches with the congestion tree without causing it.
  // Always collected for kCentric runs (counters only, like the p99 path).
  std::uint64_t victim_packets = 0;  ///< delivered in window, dst != hot
  std::uint64_t hot_packets = 0;     ///< delivered in window, dst == hot
  double victim_avg_latency_ns = 0.0;
  double victim_p99_latency_ns = 0.0;
  double hot_avg_latency_ns = 0.0;
  double hot_p99_latency_ns = 0.0;

  // --- multi-tenant isolation (populated only when SimConfig::tenants on) ----
  /// One entry per tenant, indexed by tenant id; empty when the tenant
  /// subsystem is off.  Like the telemetry block, enabling it adds counter
  /// increments only -- every other field stays bit-identical (asserted by
  /// sim/scenario_parity_test.cpp).
  std::vector<TenantStats> tenants;
  /// Jain fairness index over per-tenant accepted byte rates (1.0 = evenly
  /// shared; 1/T = one tenant receives everything).  Zero when off.
  double tenant_jain_fairness_index = 0.0;

  // --- congestion control (populated only when SimConfig::cc is enabled) -----
  CcSummary cc;

  // --- telemetry (populated only when SimConfig::telemetry is on) ------------
  // Turning telemetry off zeroes this block and nothing else: the engine
  // asserts (sim/telemetry_test.cpp) that every field above is
  // bit-identical with telemetry on and off.
  bool telemetry = false;
  Log2Histogram latency_log2_hist;  ///< generation -> delivery, window
  Log2Histogram queue_log2_hist;    ///< generation -> injection (source queue)
  Log2Histogram network_log2_hist;  ///< injection -> delivery (in-network)
  /// Generation -> delivery per virtual lane; merging all lanes reproduces
  /// latency_log2_hist exactly.
  std::vector<Log2Histogram> latency_log2_per_vl;
  LinkSummary link_summary;

  // --- time-resolved telemetry (populated only when the sampler is on) -------
  /// Interval-sampler output (SimConfig::sample_interval_ns > 0): deltas
  /// and gauges on a fixed cadence, pair-merged under the cap.  Like the
  /// telemetry block, leaving it off changes nothing else.
  Timeline timeline;

  // --- engine self-profile (populated only when SimConfig::profile is on) ----
  /// Wall-time phase breakdown of the simulator itself (obs/profile.hpp).
  /// Host-clock readings only: the engine asserts byte-identity of every
  /// *other* field with profiling on/off, and byte-comparisons across runs
  /// must scrub this block first (assign ProfileSummary{}).
  ProfileSummary profile;

  // --- live SM timeline (populated only when a SubnetManager is attached) ----
  SimTime first_fault_ns = -1;    ///< first link failure event (-1 = none)
  SimTime sm_converged_ns = -1;   ///< last time the SM reached quiescence
  /// sm_converged_ns - first_fault_ns: the window in which traffic ran on
  /// stale tables (-1 when no fault occurred or the run ended mid-repair).
  SimTime reconvergence_ns = -1;
  std::uint64_t sm_traps = 0;
  std::uint64_t sm_sweeps = 0;
  std::uint64_t sm_entries_programmed = 0;
  std::uint64_t sm_switches_programmed = 0;
};

}  // namespace mlid

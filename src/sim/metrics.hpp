// Simulation results: the quantities the paper plots plus diagnostics.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace mlid {

struct SimResult {
  // --- the paper's axes ------------------------------------------------------
  double offered_load = 0.0;  ///< fraction of endnode link bandwidth
  /// Accepted traffic in payload bytes per nanosecond per processing node,
  /// measured over the measurement window (the paper's x axis).
  double accepted_bytes_per_ns_per_node = 0.0;
  /// Average message latency in ns, generation -> tail delivery (y axis).
  double avg_latency_ns = 0.0;

  // --- additional latency detail --------------------------------------------
  double avg_network_latency_ns = 0.0;  ///< injection -> delivery
  double p50_latency_ns = 0.0;
  double p99_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  // --- accounting ------------------------------------------------------------
  std::uint64_t packets_generated = 0;  ///< whole run
  std::uint64_t packets_delivered = 0;  ///< whole run
  std::uint64_t packets_measured = 0;   ///< delivered inside the window
  /// Total drops, all reasons (sum of the breakdown below).  Zero on a
  /// pristine fabric with matching tables; non-zero either flags a routing
  /// bug (dropped_unroutable) or measures fault/convergence loss.
  std::uint64_t packets_dropped = 0;
  /// No LFT entry at all for the DLID — a routing hole (bug, or a
  /// partitioned fabric after repair).
  std::uint64_t dropped_unroutable = 0;
  /// Caught on or queued behind a link at the instant it failed.
  std::uint64_t dropped_dead_link = 0;
  /// A stale LFT entry forwarded into a dead port — the convergence-window
  /// loss a live SM shrinks and an offline/stale table suffers forever.
  std::uint64_t dropped_during_convergence = 0;
  /// Drops of packets *injected* while the SM was quiescent (converged) —
  /// stays 0 when recovery actually works (asserted by the live-recovery
  /// bench).  Stragglers injected during the convergence window may still
  /// die shortly after the last program lands; those count as convergence
  /// loss above, not here.
  std::uint64_t drops_post_convergence = 0;
  std::uint64_t events_processed = 0;
  double avg_hops = 0.0;
  std::uint64_t max_source_queue_pkts = 0;
  double mean_link_utilization = 0.0;  ///< busy fraction, measurement window
  double max_link_utilization = 0.0;
  SimTime sim_end_ns = 0;

  // --- fairness and per-lane detail ------------------------------------------
  std::vector<std::uint64_t> delivered_per_vl;  ///< measurement window
  std::vector<double> avg_latency_per_vl_ns;    ///< measurement window
  /// Jain fairness index over per-destination accepted bytes in the window
  /// (1.0 = perfectly even; 1/N = one node receives everything).
  double jain_fairness_index = 0.0;
  double min_node_accepted_bytes_per_ns = 0.0;
  double max_node_accepted_bytes_per_ns = 0.0;

  // --- live SM timeline (populated only when a SubnetManager is attached) ----
  SimTime first_fault_ns = -1;    ///< first link failure event (-1 = none)
  SimTime sm_converged_ns = -1;   ///< last time the SM reached quiescence
  /// sm_converged_ns - first_fault_ns: the window in which traffic ran on
  /// stale tables (-1 when no fault occurred or the run ended mid-repair).
  SimTime reconvergence_ns = -1;
  std::uint64_t sm_traps = 0;
  std::uint64_t sm_sweeps = 0;
  std::uint64_t sm_entries_programmed = 0;
  std::uint64_t sm_switches_programmed = 0;
};

}  // namespace mlid

#include "sim/workload.hpp"

#include <istream>
#include <numeric>
#include <sstream>

namespace mlid {

std::vector<MessageSpec> all_to_all_personalized(
    std::uint32_t num_nodes, std::uint32_t bytes_per_pair) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(bytes_per_pair >= 1, "empty messages are not modelled");
  std::vector<MessageSpec> messages;
  messages.reserve(static_cast<std::size_t>(num_nodes) * (num_nodes - 1));
  for (NodeId src = 0; src < num_nodes; ++src) {
    for (std::uint32_t step = 1; step < num_nodes; ++step) {
      const NodeId dst = (src + step) % num_nodes;
      messages.push_back(MessageSpec{src, dst, bytes_per_pair});
    }
  }
  return messages;
}

std::vector<MessageSpec> gather_to(std::uint32_t num_nodes, NodeId root,
                                   std::uint32_t bytes) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(root < num_nodes, "root out of range");
  MLID_EXPECT(bytes >= 1, "empty messages are not modelled");
  std::vector<MessageSpec> messages;
  messages.reserve(num_nodes - 1);
  for (NodeId src = 0; src < num_nodes; ++src) {
    if (src != root) messages.push_back(MessageSpec{src, root, bytes});
  }
  return messages;
}

std::vector<MessageSpec> scatter_from(std::uint32_t num_nodes, NodeId root,
                                      std::uint32_t bytes) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(root < num_nodes, "root out of range");
  MLID_EXPECT(bytes >= 1, "empty messages are not modelled");
  std::vector<MessageSpec> messages;
  messages.reserve(num_nodes - 1);
  for (NodeId dst = 0; dst < num_nodes; ++dst) {
    if (dst != root) messages.push_back(MessageSpec{root, dst, bytes});
  }
  return messages;
}

std::vector<MessageSpec> ring_shift(std::uint32_t num_nodes,
                                    std::uint32_t shift, std::uint32_t bytes) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(shift % num_nodes != 0, "shift must move every node");
  MLID_EXPECT(bytes >= 1, "empty messages are not modelled");
  std::vector<MessageSpec> messages;
  messages.reserve(num_nodes);
  for (NodeId src = 0; src < num_nodes; ++src) {
    messages.push_back(MessageSpec{src, (src + shift) % num_nodes, bytes});
  }
  return messages;
}

std::vector<MessageSpec> random_permutation(std::uint32_t num_nodes,
                                            std::uint32_t bytes,
                                            std::uint64_t seed) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(bytes >= 1, "empty messages are not modelled");
  std::vector<NodeId> perm(num_nodes);
  std::iota(perm.begin(), perm.end(), NodeId{0});
  Xoshiro256 rng(seed);
  for (std::uint32_t i = num_nodes - 1; i > 0; --i) {
    const auto j = static_cast<std::uint32_t>(rng.below(i + 1));
    std::swap(perm[i], perm[j]);
  }
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    if (perm[i] == i) std::swap(perm[i], perm[(i + 1) % num_nodes]);
  }
  std::vector<MessageSpec> messages;
  messages.reserve(num_nodes);
  for (NodeId src = 0; src < num_nodes; ++src) {
    messages.push_back(MessageSpec{src, perm[src], bytes});
  }
  return messages;
}

std::vector<MessageSpec> mice_elephants(std::uint32_t num_nodes,
                                        const MiceElephantsConfig& config,
                                        std::uint64_t seed) {
  MLID_EXPECT(num_nodes >= 2, "collective needs at least two nodes");
  MLID_EXPECT(config.flows_per_node >= 1, "each node must originate a flow");
  MLID_EXPECT(config.elephant_fraction >= 0.0 &&
                  config.elephant_fraction <= 1.0,
              "elephant fraction must be a probability");
  MLID_EXPECT(config.mouse_bytes >= 1 && config.elephant_bytes >= 1,
              "empty messages are not modelled");
  MLID_EXPECT(config.mouse_bytes <= config.elephant_bytes,
              "mice must not outweigh elephants");
  // Per-source streams, same structure as TrafficPattern: inserting or
  // removing one source never perturbs another source's flows.
  SplitMix64 seeder(seed);
  std::vector<MessageSpec> messages;
  messages.reserve(static_cast<std::size_t>(num_nodes) *
                   config.flows_per_node);
  for (NodeId src = 0; src < num_nodes; ++src) {
    Xoshiro256 rng(seeder.next());
    for (std::uint32_t f = 0; f < config.flows_per_node; ++f) {
      auto dst = static_cast<NodeId>(rng.below(num_nodes - 1));
      if (dst >= src) ++dst;  // uniform over the others
      const bool elephant = rng.chance(config.elephant_fraction);
      messages.push_back(MessageSpec{
          src, dst,
          elephant ? config.elephant_bytes : config.mouse_bytes});
    }
  }
  return messages;
}

std::vector<MessageSpec> parse_message_csv(std::istream& in) {
  std::vector<MessageSpec> messages;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t src = 0, dst = 0, bytes = 0;
    char comma1 = 0, comma2 = 0;
    fields >> src >> comma1 >> dst >> comma2 >> bytes;
    MLID_EXPECT(fields && comma1 == ',' && comma2 == ',',
                ("malformed trace line " + std::to_string(line_no)).c_str());
    MLID_EXPECT(src <= kInvalidNode && dst <= kInvalidNode &&
                    bytes > 0 && bytes <= 1u << 30,
                ("trace line " + std::to_string(line_no) +
                 " out of range").c_str());
    messages.push_back(MessageSpec{static_cast<NodeId>(src),
                                   static_cast<NodeId>(dst),
                                   static_cast<std::uint32_t>(bytes)});
  }
  return messages;
}

}  // namespace mlid

// Fault schedule: timestamped link failure / recovery events injected into
// a live simulation run.
//
// Each event names both endpoints of the affected link, resolved at
// schedule-build time (a recovery must reconnect the exact ports the
// failure tore down, and by then the fabric no longer knows the pairing).
// The schedule itself is inert data; OpenLoopOptions::live_sm turns it
// into kLinkFail / kLinkRecover events on the engine's queue.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/builder.hpp"

namespace mlid {

struct FaultEvent {
  SimTime at = 0;
  DeviceId dev_a = kInvalidDevice;
  PortId port_a = 0;
  DeviceId dev_b = kInvalidDevice;
  PortId port_b = 0;
  bool fail = true;  ///< false = reconnect (a, port_a) <-> (b, port_b)
};

/// An ordered list of mid-run fabric mutations.  Only switch-to-switch
/// links may fail: an endnode attach link has no alternative path, so its
/// failure partitions the node rather than exercising rerouting.
class FaultSchedule {
 public:
  /// Fail the link leaving (dev, port) at time `at`.  The peer endpoint is
  /// resolved from the fabric's current wiring.
  void fail_link(SimTime at, const Fabric& fabric, DeviceId dev, PortId port);

  /// Reconnect a previously failed link at time `at`.
  void recover_link(SimTime at, DeviceId dev_a, PortId port_a, DeviceId dev_b,
                    PortId port_b);

  /// Events sorted by time (ties keep insertion order).
  [[nodiscard]] const std::vector<FaultEvent>& events() const;

  /// Check per-link event ordering: every recovery must name a link that a
  /// strictly earlier failure tore down, and a link that is already down
  /// may not fail again (including a duplicate fail at the same timestamp)
  /// until it recovers.  A re-failure at the exact instant of the recovery
  /// is rejected too: same-timestamp fail/recover windows on one link are
  /// order-ambiguous, and whether they validated used to depend on
  /// insertion order.  Throws ContractViolation naming the offending
  /// event.  Called by Simulation::attach_live_sm before any event is
  /// scheduled, so a malformed schedule fails fast instead of tripping an
  /// engine assertion mid-run.
  void validate() const;

  [[nodiscard]] bool empty() const noexcept { return events_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }

  /// `count` distinct random inter-switch uplinks all failing at `fail_at`
  /// (the selection mirrors bench/ablation_faults).  When `recover_at` is
  /// non-negative every failed link comes back at that time.
  static FaultSchedule random_uplink_failures(const FatTreeFabric& fabric,
                                              int count, SimTime fail_at,
                                              std::uint64_t seed,
                                              SimTime recover_at = -1);

  /// Long-running churn process: `links` distinct random inter-switch
  /// uplinks each flap on a fixed cadence -- fail, stay down for
  /// `downtime_ns`, recover, repeat every `period_ns` -- from `start_at`
  /// until no full fail/recover window fits before `until`.  Link starts
  /// are staggered by period/links so failures spread across the cycle
  /// instead of arriving as synchronized waves.  Requires
  /// 0 < downtime_ns < period_ns; the result always validates.
  static FaultSchedule periodic_uplink_churn(const FatTreeFabric& fabric,
                                             int links, SimTime start_at,
                                             SimTime period_ns,
                                             SimTime downtime_ns,
                                             SimTime until,
                                             std::uint64_t seed);

 private:
  mutable std::vector<FaultEvent> events_;
  mutable bool sorted_ = true;
};

}  // namespace mlid

#include "sim/traffic.hpp"

#include <numeric>

#include "common/expect.hpp"

namespace mlid {

std::string to_string(TrafficKind kind) {
  switch (kind) {
    case TrafficKind::kUniform:
      return "uniform";
    case TrafficKind::kCentric:
      return "centric";
    case TrafficKind::kPermutation:
      return "permutation";
    case TrafficKind::kBitComplement:
      return "bit-complement";
    case TrafficKind::kNeighbor:
      return "neighbor";
  }
  return "?";
}

TrafficPattern::TrafficPattern(TrafficConfig config, std::uint32_t num_nodes)
    : config_(config), num_nodes_(num_nodes) {
  MLID_EXPECT(num_nodes >= 2, "traffic needs at least two nodes");
  MLID_EXPECT(config.hot_fraction >= 0.0 && config.hot_fraction <= 1.0,
              "hot fraction must be a probability");
  MLID_EXPECT(config.hot_node < num_nodes, "hot node out of range");
  MLID_EXPECT(config.tenants >= 0, "tenant count cannot be negative");
  if (config.tenants > 0) {
    MLID_EXPECT(config.kind == TrafficKind::kUniform ||
                    config.kind == TrafficKind::kCentric,
                "tenant partitioning supports uniform and centric kinds");
    MLID_EXPECT(config.tenants <= static_cast<int>(num_nodes / 2),
                "every tenant block needs at least two nodes");
  }
  SplitMix64 seeder(config.seed);
  per_source_.reserve(num_nodes);
  for (std::uint32_t i = 0; i < num_nodes; ++i) {
    per_source_.emplace_back(seeder.next());
  }
  if (config.kind == TrafficKind::kPermutation) {
    // Fisher-Yates from a dedicated stream, then rotate fixed points away so
    // the pattern is a derangement (nobody sends to itself).
    permutation_.resize(num_nodes);
    std::iota(permutation_.begin(), permutation_.end(), NodeId{0});
    Xoshiro256 rng(seeder.next());
    for (std::uint32_t i = num_nodes - 1; i > 0; --i) {
      const auto j = static_cast<std::uint32_t>(rng.below(i + 1));
      std::swap(permutation_[i], permutation_[j]);
    }
    for (std::uint32_t i = 0; i < num_nodes; ++i) {
      if (permutation_[i] == i) {
        const std::uint32_t j = (i + 1) % num_nodes;
        std::swap(permutation_[i], permutation_[j]);
      }
    }
  }
}

NodeId TrafficPattern::pick_destination(NodeId src) {
  MLID_EXPECT(src < num_nodes_, "source out of range");
  Xoshiro256& rng = per_source_[src];
  auto uniform_other = [&]() {
    // Draw from [0, N-1) and skip over src: uniform over the others.
    auto d = static_cast<NodeId>(rng.below(num_nodes_ - 1));
    return d >= src ? d + 1 : d;
  };
  if (config_.tenants > 0) {
    // Confine the draw to the source's tenant block; the same skip trick
    // keeps it uniform over the block's other nodes.
    const int t = tenant_of_node(src, config_.tenants, num_nodes_);
    const NodeId lo = tenant_block_begin(t, config_.tenants, num_nodes_);
    const NodeId hi = tenant_block_begin(t + 1, config_.tenants, num_nodes_);
    const std::uint32_t size = hi - lo;
    auto uniform_in_block = [&]() {
      auto d = lo + static_cast<NodeId>(rng.below(size - 1));
      return d >= src ? d + 1 : d;
    };
    if (config_.kind == TrafficKind::kCentric) {
      // Each tenant hammers its own hot node at the same block offset.
      const NodeId hot = lo + (config_.hot_node % size);
      if (src != hot && rng.chance(config_.hot_fraction)) return hot;
    }
    return uniform_in_block();
  }
  switch (config_.kind) {
    case TrafficKind::kUniform:
      return uniform_other();
    case TrafficKind::kCentric: {
      if (src != config_.hot_node && rng.chance(config_.hot_fraction)) {
        return config_.hot_node;
      }
      return uniform_other();
    }
    case TrafficKind::kPermutation:
      return permutation_[src];
    case TrafficKind::kBitComplement:
      return num_nodes_ - 1 - src;
    case TrafficKind::kNeighbor:
      return src ^ 1u;
  }
  return uniform_other();
}

}  // namespace mlid

#include "sim/engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <iostream>
#include <limits>
#include <sstream>
#include <type_traits>

#include "obs/stream.hpp"

namespace mlid {

Simulation Simulation::open_loop(const Subnet& subnet, const SimConfig& config,
                                 const TrafficConfig& traffic,
                                 double offered_load,
                                 const OpenLoopOptions& options) {
  return Simulation(subnet, config, traffic, offered_load, options);
}

Simulation Simulation::burst(const Subnet& subnet, const SimConfig& config,
                             const std::vector<MessageSpec>& workload) {
  return Simulation(subnet, config, workload);
}

Simulation Simulation::open_loop_shard(const Subnet& subnet,
                                       const SimConfig& config,
                                       const TrafficConfig& traffic,
                                       double offered_load, SubnetManager* sm,
                                       const ShardBinding& binding) {
  Simulation sim(subnet, config, traffic, offered_load, /*burst=*/false,
                 &binding);
  if (sm != nullptr) {
    MLID_EXPECT(&sm->subnet() == &subnet,
                "the SM must manage the subnet this simulation runs on");
    // Live tables only: the driver owns the fault schedule and replicates
    // control dispatch itself (attach_live_sm would queue events here).
    sim.sm_ = sm;
  }
  return sim;
}

Simulation Simulation::burst_shard(const Subnet& subnet,
                                   const SimConfig& config,
                                   const std::vector<MessageSpec>& workload,
                                   const ShardBinding& binding) {
  return Simulation(subnet, config, workload, &binding);
}

Simulation::Simulation(const Subnet& subnet, SimConfig config,
                       TrafficConfig traffic, double offered_load,
                       const OpenLoopOptions& options)
    : Simulation(subnet, config, traffic, offered_load, /*burst=*/false) {
  if (options.live_sm != nullptr) {
    attach_live_sm(*options.live_sm, options.faults);
  } else {
    MLID_EXPECT(options.faults.empty(),
                "a fault schedule needs a live SM to react to it");
  }
  stream_ = options.metrics;
}

Simulation::Simulation(const Subnet& subnet, SimConfig config,
                       const std::vector<MessageSpec>& workload,
                       const ShardBinding* binding)
    : Simulation(subnet, config, TrafficConfig{}, /*offered_load=*/1.0,
                 /*burst=*/true, binding) {
  MLID_EXPECT(!workload.empty(), "burst workload is empty");
  MLID_EXPECT(cfg_.sample_interval_ns == 0,
              "the interval sampler is open-loop only (burst runs have no "
              "fixed end time to pace samples against)");
  // The whole burst is one measurement window.
  cfg_.warmup_ns = 0;
  cfg_.measure_ns = kSimTimeNever / 4;
  const std::uint32_t num_nodes = subnet.fabric().params().num_nodes();
  msgs_.reserve(workload.size());
  // Packet::corder is the global segment index over the workload's iteration
  // order, counted across every message even when a shard materializes only
  // its owned sources -- that keeps the key identical for any shard count.
  std::uint64_t segment_corder = 0;
  for (const MessageSpec& spec : workload) {
    MLID_EXPECT(spec.src < num_nodes && spec.dst < num_nodes,
                "message endpoint out of range");
    MLID_EXPECT(spec.src != spec.dst, "self-messages are not modelled");
    MLID_EXPECT(spec.bytes >= 1, "empty message");
    const auto mid = static_cast<MessageId>(msgs_.size());
    std::uint32_t remaining = spec.bytes;
    std::uint32_t segments = 0;
    const bool owned = owns_node(spec.src);
    while (remaining > 0) {
      const std::uint32_t size = std::min(remaining, cfg_.packet_bytes);
      remaining -= size;
      const std::uint64_t corder = segment_corder++;
      ++segments;
      if (!owned) continue;
      const PacketId id = alloc_packet();
      Packet& pkt = pool_.get(id);
      pkt.src = spec.src;
      pkt.dst = spec.dst;
      pkt.slid = subnet_->slid_of(spec.src);
      pkt.dlid = subnet_->select_dlid(spec.src, spec.dst);
      pkt.vl = assign_vl(spec.src, spec.dst);
      pkt.size_bytes = size;
      pkt.generated_at = 0;
      pkt.msg = mid;
      pkt.corder = corder;
      ++result_.packets_generated;
      ++burst_packets_;
      burst_bytes_ += size;
      NodeState& ns = nodes_[spec.src];
      pool_.push_back(src_q_[static_cast<std::size_t>(spec.src) * vls_ + pkt.vl],
                      id);
      ++ns.queued_pkts;
    }
    // Every shard tracks every message (segment counts are shard-independent)
    // so the driver's delivery replay can complete them on shard 0.
    msgs_.push_back(MsgState{segments, -1});
  }
  // Prime every owned NIC once; subsequent pulls chain off tail-out events.
  for (NodeId node = 0; node < num_nodes; ++node) {
    if (!owns_node(node)) continue;
    for (int vl = 0; vl < cfg_.num_vls; ++vl) {
      try_source_pull(node, static_cast<VlId>(vl), 0);
    }
  }
}

Simulation::Simulation(const Subnet& subnet, SimConfig config,
                       TrafficConfig traffic, double offered_load, bool burst,
                       const ShardBinding* binding)
    : subnet_(&subnet),
      cfg_(config),
      traffic_(traffic, subnet.fabric().params().num_nodes()),
      offered_load_(offered_load),
      gen_interval_ns_(static_cast<double>(config.packet_wire_ns()) /
                       offered_load),
      events_(config.event_queue, config.event_order),
      latency_hist_(0.0, 400'000.0, 4000),
      victim_hist_(0.0, 400'000.0, 4000),
      hot_hist_(0.0, 400'000.0, 4000) {
  cfg_.validate();
  burst_ = burst;
  if (binding != nullptr) {
    shard_ = *binding;
    MLID_EXPECT(shard_.outbox != nullptr && shard_.control != nullptr &&
                    shard_.dev_shard != nullptr && shard_.node_shard != nullptr,
                "incomplete shard binding");
    MLID_EXPECT(cfg_.event_order == EventOrder::kCanonical,
                "sharded runs require the canonical event order");
    // The interval sampler is *driver-level* in sharded runs (the driver
    // samples at window barriers and reads each shard's gauges); a shard
    // must never pace its own timeline.
    MLID_EXPECT(cfg_.sample_interval_ns == 0,
                "shard configs must not carry a sample interval; the sharded "
                "driver owns the timeline");
    // The flight recorder is allowed: devices are owner-exclusive, so each
    // shard keeps host-side rings for its own devices and freezes a dump
    // tagged with its shard id (count_drop / check_invariants).
    MLID_EXPECT(cfg_.trace_packets == 0 && !cfg_.trace_control,
                "per-event observability (packet traces, control trace) is "
                "sequential-only; drop --shards to use it");
  }
  MLID_EXPECT(burst || (offered_load > 0.0 && offered_load <= 1.0),
              "offered load must be in (0, 1]");

  // Flat struct-of-arrays port state: one prefix-sum pass sizes every hot
  // array (see the layout comment in engine.hpp).
  const Fabric& g = subnet.fabric().fabric();
  vls_ = static_cast<std::size_t>(cfg_.num_vls);
  port_base_.resize(static_cast<std::size_t>(g.num_devices()) + 1);
  std::size_t next_fp = 0;
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    port_base_[dev] = next_fp;
    next_fp += static_cast<std::size_t>(g.device(dev).num_ports()) + 1;
  }
  port_base_[g.num_devices()] = next_fp;
  const std::size_t num_fp = next_fp;
  port_peer_.assign(num_fp, PortRef{});
  port_busy_until_.assign(num_fp, 0);
  port_busy_in_window_.assign(num_fp, 0);
  port_packets_tx_.assign(num_fp, 0);
  port_wrr_vl_.assign(num_fp, 0);
  port_wrr_budget_.assign(num_fp, 0);
  port_retry_.assign(num_fp, 0);
  port_connected_.assign(num_fp, 0);
  vl_q_.assign(num_fp * vls_, PacketQueue{});
  vl_wait_.assign(num_fp * vls_, PacketQueue{});
  vl_free_slots_.assign(num_fp * vls_, 0);
  vl_credits_.assign(num_fp * vls_, 0);
  vl_tx_pkt_.assign(num_fp * vls_, kInvalidPacket);
  vl_cc_stall_since_.assign(num_fp * vls_, -1);
  vl_cold_.assign(num_fp * vls_, VlTelemetry{});
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    const Device& device = g.device(dev);
    for (PortId port = 1; port <= device.num_ports(); ++port) {
      if (!device.port_connected(port)) continue;
      const std::size_t fp = port_index(dev, port);
      port_connected_[fp] = 1;
      port_peer_[fp] = device.peer(port);
      for (std::size_t vl = 0; vl < vls_; ++vl) {
        vl_free_slots_[vl_index(fp, vl)] = cfg_.out_buf_pkts;
        vl_credits_[vl_index(fp, vl)] =
            cfg_.in_buf_pkts;  // downstream input buffer depth
      }
      port_wrr_budget_[fp] =
          cfg_.vl_weights.empty() ? 1 : cfg_.vl_weights.front();
    }
  }

  const std::uint32_t num_nodes = subnet.fabric().params().num_nodes();
  nodes_.resize(num_nodes);
  src_q_.assign(static_cast<std::size_t>(num_nodes) * vls_, PacketQueue{});
  SplitMix64 seeder(cfg_.seed ^ 0xC0FFEE0000ULL);
  vl_rng_.reserve(num_nodes);
  for (NodeId node = 0; node < num_nodes; ++node) {
    vl_rng_.emplace_back(seeder.next());
  }

  if (cfg_.cc.enabled) {
    cc_nodes_.resize(num_nodes);
    cct_.reserve(num_nodes);
    for (NodeId node = 0; node < num_nodes; ++node) {
      cc_nodes_[node].next_allowed.assign(num_nodes, 0);
      cct_.emplace_back(cfg_.cc, num_nodes);
    }
    cc_index_hist_.assign(static_cast<std::size_t>(cfg_.cc.cct_levels) + 1, 0);
  }

  if (cfg_.sample_interval_ns > 0) {
    timeline_.configure(cfg_.sample_interval_ns, cfg_.timeline_max_samples);
  }
  if (cfg_.flight_recorder_depth > 0) {
    flight_ring_.resize(static_cast<std::size_t>(g.num_devices()) *
                        cfg_.flight_recorder_depth);
    flight_pos_.assign(g.num_devices(), 0);
    flight_len_.assign(g.num_devices(), 0);
  }

  delivered_per_vl_.assign(static_cast<std::size_t>(cfg_.num_vls), 0);
  latency_per_vl_.assign(static_cast<std::size_t>(cfg_.num_vls),
                         OnlineStats{});
  bytes_per_node_.assign(num_nodes, 0);
  cfg_.tenants.validate(static_cast<int>(num_nodes));
  if (cfg_.tenants.count > 0) {
    const auto tenants = static_cast<std::size_t>(cfg_.tenants.count);
    tenant_delivered_.assign(tenants, 0);
    tenant_bytes_.assign(tenants, 0);
    tenant_latency_.assign(tenants, OnlineStats{});
  }
  result_.telemetry = cfg_.telemetry;
  if (cfg_.telemetry) {
    result_.latency_log2_per_vl.assign(static_cast<std::size_t>(cfg_.num_vls),
                                       Log2Histogram{});
  }

  // Up-port ranges for the adaptive forwarding policies: on both tree
  // families the up ports of a non-root switch are the contiguous physical
  // range [m/2 + 1, m].
  first_up_port_.assign(g.num_devices(), 0);
  const FatTreeParams& params = subnet.fabric().params();
  for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
    const SwitchLabel label = switch_from_id(params, sw);
    if (num_up_ports(params, label.level()) > 0) {
      first_up_port_[subnet.fabric().switch_device(sw)] =
          static_cast<PortId>(params.half() + 1);
    }
  }

  // Forwarding / VL-map policies.  Each engine instance (and therefore each
  // shard of a sharded run) owns its own stateless policy objects; the
  // adaptive policy reads only this instance's local occupancy arrays.
  fwd_policy_ = make_forwarding_policy(cfg_.policy.forwarding);
  vl_map_ = make_vl_map_policy(cfg_.policy.vl_map);
  adaptive_ = !fwd_policy_->deterministic();
  remap_vls_ = !vl_map_->identity();
  if (adaptive_) {
    uplink_scratch_.reserve(static_cast<std::size_t>(params.m()));
    // The FECN selection signal only exists where FECN marking happens.
    if (cfg_.cc.enabled) vl_fecn_signal_.assign(num_fp * vls_, 0);
  }

  // Stagger generation starts uniformly across one interval so all nodes do
  // not fire in lockstep at t = 0.  Burst mode injects nothing here; its
  // workload is queued by the delegating constructor instead.
  if (!burst_) {
    Xoshiro256 stagger(seeder.next());
    for (NodeId node = 0; node < num_nodes; ++node) {
      // Every shard draws every node's stagger (keeping the stream aligned
      // with the sequential run) but seeds generation only for owned nodes.
      nodes_[node].next_gen_ns = stagger.uniform01() * gen_interval_ns_;
      if (!owns_node(node)) continue;
      schedule(static_cast<SimTime>(std::llround(nodes_[node].next_gen_ns)),
               EventKind::kGenerate, node);
    }
  }
}

void Simulation::attach_live_sm(SubnetManager& sm,
                                const FaultSchedule& faults) {
  MLID_EXPECT(!burst_, "the live SM is modelled in open-loop mode");
  MLID_EXPECT(sm_ == nullptr, "a Subnet Manager is already attached");
  MLID_EXPECT(&sm.subnet() == subnet_,
              "the SM must manage the subnet this simulation runs on");
  faults.validate();  // reject recover-before-fail / duplicate fails early
  sm_ = &sm;
  for (const FaultEvent& f : faults.events()) {
    if (f.fail) {
      schedule(f.at, EventKind::kLinkFail, f.dev_a, f.port_a);
    } else {
      // kLinkRecover names both endpoints: the second one travels in the
      // otherwise unused pkt (device) and vl (port) payload fields.
      schedule(f.at, EventKind::kLinkRecover, f.dev_a, f.port_a,
               static_cast<VlId>(f.port_b), static_cast<PacketId>(f.dev_b));
    }
  }
}

// --- shard-mode event routing ------------------------------------------------

std::uint32_t Simulation::target_shard(EventKind kind,
                                       DeviceId dev) const noexcept {
  switch (kind) {
    case EventKind::kGenerate:
    case EventKind::kBecnArrive:
    case EventKind::kCctTimer:
    case EventKind::kCcRelease:
      // Node-scoped: `dev` carries a NodeId.
      return (*shard_.node_shard)[dev];
    default:
      return (*shard_.dev_shard)[dev];
  }
}

std::uint64_t Simulation::corder_of(EventKind kind, PacketId pkt) const {
  switch (kind) {
    case EventKind::kHeadArrive:
    case EventKind::kRouted:
    case EventKind::kTailOut:
    case EventKind::kDeliver:
      return pool_.get(pkt).corder;
    case EventKind::kBecnArrive:
      return pkt;  // payload: the congested destination node
    default:
      // Remaining kinds are either unique per (time, kind, dev, port, vl)
      // or commutative when tied (multiple credit returns to one slot).
      return 0;
  }
}

void Simulation::schedule(SimTime time, EventKind kind, DeviceId dev,
                          PortId port, VlId vl, PacketId pkt) {
  if (!sharded()) {
    events_.push(time, kind, dev, port, vl, pkt, corder_of(kind, pkt));
    return;
  }
  switch (kind) {
    case EventKind::kLinkFail:
    case EventKind::kLinkRecover:
    case EventKind::kTrap:
    case EventKind::kSweepDone:
    case EventKind::kLftProgram:
      // Control plane: the driver owns these (its control queue dispatches
      // them in sequential global timesteps).
      shard_.control->push_back(
          ShardMessage{time, kind, dev, pkt, port, vl, 0, false, Packet{}});
      return;
    default:
      break;
  }
  const std::uint64_t corder = corder_of(kind, pkt);
  if (target_shard(kind, dev) == shard_.shard_id) {
    events_.push(time, kind, dev, port, vl, pkt, corder);
    return;
  }
  ShardMessage msg{time, kind, dev, pkt, port, vl, corder, false, Packet{}};
  if (kind == EventKind::kHeadArrive) {
    // Packet handoff: the receiving shard re-homes the copy in its own
    // pool; our entry becomes a stale duplicate that dies at tail-out.
    msg.has_packet = true;
    msg.packet = pool_.get(pkt);
    msg.pkt = kInvalidPacket;
    rt_[pkt].handed_off = true;
  }
  shard_.outbox->push_back(msg);
}

void Simulation::receive(const ShardMessage& msg) {
  PacketId pkt = msg.pkt;
  if (msg.has_packet) {
    pkt = alloc_packet();
    pool_.get(pkt) = msg.packet;
  }
  events_.push(msg.time, msg.kind, msg.dev, msg.port, msg.vl, pkt, msg.corder);
}

// --- packet pool ------------------------------------------------------------

PacketId Simulation::alloc_packet() {
  const PacketId id = pool_.alloc();
  if (id >= rt_.size()) {
    rt_.emplace_back();
  } else {
    rt_[id] = PacketRt{};
  }
  pool_.get(id) = Packet{};
  return id;
}

void Simulation::release_packet(PacketId pkt) { pool_.release(pkt); }

VlId Simulation::assign_vl(NodeId src, NodeId dst) {
  const auto vls = static_cast<std::uint32_t>(cfg_.num_vls);
  VlId base = 0;
  switch (cfg_.vl_policy) {
    case VlPolicy::kRandom:
      // Drawn before the remap check so the per-source RNG streams stay
      // aligned whether or not a VL map is layered on top.
      base = static_cast<VlId>(vl_rng_[src].below(vls));
      break;
    case VlPolicy::kBySource:
      base = static_cast<VlId>(src % vls);
      break;
    case VlPolicy::kByDestination:
      base = static_cast<VlId>(dst % vls);
      break;
    case VlPolicy::kFixed0:
      base = 0;
      break;
  }
  if (cfg_.tenants.count > 0 && cfg_.tenants.bind_vls) {
    // Tenant VL pinning overrides both the policy draw and any VL map: the
    // draw above still happened, so the per-source RNG streams stay aligned
    // with the unpinned run.
    return static_cast<VlId>(static_cast<std::uint32_t>(tenant_of(src)) % vls);
  }
  if (!remap_vls_) return base;
  const VlId mapped = vl_map_->remap(src, dst, base, cfg_.num_vls);
  MLID_ASSERT(mapped < vls, "VL map must stay within the configured VL count");
  return mapped;
}

// --- generation / injection --------------------------------------------------

void Simulation::on_generate(NodeId node, SimTime now) {
  const NodeId dst = traffic_.pick_destination(node);
  const PacketId id = alloc_packet();
  Packet& pkt = pool_.get(id);
  pkt.src = node;
  pkt.dst = dst;
  pkt.slid = subnet_->slid_of(node);
  pkt.dlid = subnet_->select_dlid(node, dst);
  pkt.vl = assign_vl(node, dst);
  pkt.size_bytes = cfg_.packet_bytes;
  pkt.generated_at = now;
  pkt.corder = (static_cast<std::uint64_t>(node) << 32) |
               nodes_[node].generated++;
  ++result_.packets_generated;
  if (traces_.size() < cfg_.trace_packets &&
      (result_.packets_generated - 1) % cfg_.trace_stride == 0) {
    rt_[id].trace = static_cast<std::int32_t>(traces_.size());
    traces_.push_back(PacketTraceRecord{node, dst, pkt.dlid, {}});
    trace_event(id, now, TracePoint::kGenerated,
                subnet_->fabric().node_device(node), 0, pkt.vl);
  }

  NodeState& ns = nodes_[node];
  pool_.push_back(src_q_[node * vls_ + pkt.vl], id);
  ++ns.queued_pkts;
  result_.max_source_queue_pkts =
      std::max(result_.max_source_queue_pkts, ns.queued_pkts);
  try_source_pull(node, pkt.vl, now);

  ns.next_gen_ns += gen_interval_ns_;
  schedule(std::max(now + 1,
                    static_cast<SimTime>(std::llround(ns.next_gen_ns))),
           EventKind::kGenerate, node);
}

void Simulation::try_source_pull(NodeId node, VlId vl, SimTime now) {
  NodeState& ns = nodes_[node];
  PacketQueue& queue = src_q_[node * vls_ + vl];
  if (queue.empty()) return;
  PacketId pick = queue.head;
  PacketId prev = kInvalidPacket;
  if (cc_on()) {
    // CCT injection gate, per destination (flow): the previous pull toward
    // a destination set an inter-packet delay on that flow.  A gated head
    // must not head-of-line block other flows sharing this FIFO -- real
    // HCAs schedule per QP -- so pull the first packet whose flow is open
    // (per-destination order is preserved, which is the IB ordering
    // contract).  If every queued flow is gated, retry when the earliest
    // gate opens.
    CcNode& cn = cc_nodes_[node];
    SimTime earliest = std::numeric_limits<SimTime>::max();
    while (pick != kInvalidPacket) {
      const SimTime allowed = cn.next_allowed[pool_.get(pick).dst];
      if (allowed <= now) break;
      earliest = std::min(earliest, allowed);
      prev = pick;
      pick = pool_.next_of(pick);
    }
    if (pick == kInvalidPacket) {
      if (!cn.release_scheduled) {
        cn.release_scheduled = true;
        cn.stats.throttled_ns += static_cast<std::uint64_t>(earliest - now);
        schedule(earliest, EventKind::kCcRelease, node);
      }
      return;
    }
  }
  const DeviceId dev = subnet_->fabric().node_device(node);
  const std::size_t fp = port_index(dev, 1);  // the endnode's single endport
  const std::size_t vs = vl_index(fp, vl);
  if (vl_free_slots_[vs] == 0) return;
  const PacketId pkt = pick;
  pool_.erase_after(queue, prev, pkt);
  --ns.queued_pkts;
  --vl_free_slots_[vs];
  pool_.push_back(vl_q_[vs], pkt);
  if (cc_on()) {
    // The *next* pull toward this destination pays its CCT index as an
    // inter-packet delay (rate throttling, not retroactive blocking).
    const SimTime delay = cct_[node].delay_ns(pool_.get(pkt).dst);
    if (delay > 0) {
      CcNode& cn = cc_nodes_[node];
      cn.next_allowed[pool_.get(pkt).dst] = now + delay;
      ++cn.stats.throttled_pkts;
    }
  }
  rt_[pkt].dev = dev;       // keep the trace index assigned at generation
  rt_[pkt].in_port = 0;
  rt_[pkt].out_port = 1;
  try_tx(dev, 1, now);
}

// --- faults and the live SM --------------------------------------------------

void Simulation::count_drop(DropReason reason, PacketId pkt, DeviceId dev,
                            SimTime now) {
  ++result_.packets_dropped;
  if (!flight_ring_.empty() && !flight_dump_.valid()) {
    std::string cause = std::string("first drop: ") +
                        std::string(to_string(reason));
    if (sharded()) {
      cause += " [shard " + std::to_string(shard_.shard_id) + "]";
    }
    freeze_flight_dump(dev, now, std::move(cause));
  }
  switch (reason) {
    case DropReason::kNone:
      MLID_ASSERT(false, "a drop needs a real reason");
      break;
    case DropReason::kUnroutable:
      ++result_.dropped_unroutable;
      break;
    case DropReason::kDeadLink:
      ++result_.dropped_dead_link;
      break;
    case DropReason::kConvergence:
      ++result_.dropped_during_convergence;
      break;
  }
  // A dropped packet that was injected into an already-converged fabric
  // means recovery did not actually restore full routing — the
  // live-recovery bench asserts this stays 0.  Stragglers routed during
  // the convergence window may still die shortly after the last program
  // lands; those are convergence loss, not a recovery failure.
  if (sm_ != nullptr && result_.first_fault_ns >= 0 && sm_->converged() &&
      pool_.get(pkt).injected_at >= sm_->stats().converged_at) {
    ++result_.drops_post_convergence;
  }
}

/// A packet that was sitting inside a switch (output queue or crossbar wait
/// queue) when its link died: free its input slot and account the loss.
void Simulation::drop_in_switch(PacketId pkt, SimTime now) {
  const PacketRt& rt = rt_[pkt];
  if (rt.in_port != 0) {
    // The input slot it held frees now instead of at transmit time.  The
    // upstream port may itself have just died (multi-link failures at one
    // timestamp): its credits are void, so the return is simply skipped.
    const PortRef up = subnet_->fabric().fabric().peer_of(rt.dev, rt.in_port);
    if (up.valid()) {
      schedule(now + cfg_.flying_time_ns, EventKind::kCreditArrive, up.device,
               up.port, pool_.get(pkt).vl);
    }
  }
  trace_event(pkt, now, TracePoint::kDropped, rt.dev, rt.out_port,
              pool_.get(pkt).vl, DropReason::kDeadLink);
  count_drop(DropReason::kDeadLink, pkt, rt.dev, now);
  release_packet(pkt);
}

void Simulation::kill_port(DeviceId dev, PortId port, SimTime now) {
  const std::size_t fp = port_index(dev, port);
  MLID_ASSERT(port_connected_[fp], "killing a port twice");
  port_connected_[fp] = 0;
  for (std::size_t vl = 0; vl < vls_; ++vl) {
    const std::size_t vs = vl_index(fp, vl);
    VlTelemetry& cold = vl_cold_[vs];
    if (cold.stall_since >= 0) {  // the stall ends with the link
      cold.credit_stall_ns += now - cold.stall_since;
      cold.stall_since = -1;
    }
    vl_cc_stall_since_[vs] = -1;  // whatever stalled here is dropped below
    // A head already on the wire (vl_tx_pkt_) keeps its events: it is
    // judged at head arrival on the (now dead) far side, and its tail-out
    // still frees this slot.  Everything queued behind it is lost with the
    // link.
    PacketQueue& q = vl_q_[vs];
    if (q.size > 0) {
      // Snapshot the chain so the drops can run back-to-front (matching
      // the historical pop_back order bit-for-bit) while the intrusive
      // queue relinks once.
      scratch_.clear();
      for (PacketId p = q.head; p != kInvalidPacket; p = pool_.next_of(p)) {
        scratch_.push_back(p);
      }
      q = PacketQueue{};
      for (std::size_t i = scratch_.size(); i > 0; --i) {
        ++vl_free_slots_[vs];
        drop_in_switch(scratch_[i - 1], now);
      }
    }
    PacketQueue& waitq = vl_wait_[vs];
    while (!waitq.empty()) {
      const PacketId pkt = pool_.pop_front(waitq);
      drop_in_switch(pkt, now);
    }
  }
}

void Simulation::revive_port(DeviceId dev, PortId port) {
  const std::size_t fp = port_index(dev, port);
  MLID_EXPECT(!port_connected_[fp], "reviving a port that is not down");
  for (std::size_t vl = 0; vl < vls_; ++vl) {
    const std::size_t vs = vl_index(fp, vl);
    MLID_EXPECT(vl_q_[vs].empty() && vl_tx_pkt_[vs] == kInvalidPacket,
                "link recovered while its last transmission is still "
                "draining; space fail and recover events further apart");
    vl_free_slots_[vs] = cfg_.out_buf_pkts;
    vl_credits_[vs] = cfg_.in_buf_pkts;  // the reborn link starts empty
  }
  port_connected_[fp] = 1;
  port_wrr_vl_[fp] = 0;
  port_wrr_budget_[fp] = cfg_.vl_weights.empty() ? 1 : cfg_.vl_weights.front();
}

void Simulation::on_link_fail(DeviceId dev, PortId port, SimTime now) {
  MLID_ASSERT(sm_ != nullptr, "fault events need an attached SM");
  const PortRef peer = subnet_->fabric().fabric().peer_of(dev, port);
  if (!peer.valid()) return;  // duplicate schedule entry: already dead
  if (result_.first_fault_ns < 0) result_.first_fault_ns = now;
  // The SM disconnects the fabric (so LFT lookups see the dead port) and
  // tells us when the endpoints' traps will reach it.
  const auto traps = sm_->on_link_fail(dev, port, now);
  kill_port(dev, port, now);
  kill_port(peer.device, peer.port, now);
  for (const auto& trap : traps) {
    schedule(trap.at, EventKind::kTrap, trap.reporter, trap.port);
  }
}

void Simulation::on_link_recover(DeviceId dev_a, PortId port_a,
                                 DeviceId dev_b, PortId port_b, SimTime now) {
  MLID_ASSERT(sm_ != nullptr, "fault events need an attached SM");
  const auto traps = sm_->on_link_recover(dev_a, port_a, dev_b, port_b, now);
  revive_port(dev_a, port_a);
  revive_port(dev_b, port_b);
  for (const auto& trap : traps) {
    schedule(trap.at, EventKind::kTrap, trap.reporter, trap.port);
  }
}

// --- link transmission ---------------------------------------------------------

void Simulation::accumulate_utilization(std::size_t fp, SimTime start,
                                        SimTime end) {
  const SimTime lo = std::max(start, cfg_.warmup_ns);
  const SimTime hi = std::min(end, cfg_.end_time());
  if (hi > lo) port_busy_in_window_[fp] += hi - lo;
}

void Simulation::try_tx(DeviceId dev, PortId port, SimTime now) {
  const std::size_t fp = port_index(dev, port);
  // A port can go down mid-run with credit returns / retries still queued
  // against it; those late events are simply void.
  if (!port_connected_[fp]) return;
  if (port_busy_until_[fp] > now) {
    if (!port_retry_[fp]) {
      port_retry_[fp] = 1;
      schedule(port_busy_until_[fp], EventKind::kTryTx, dev, port);
    }
    return;
  }
  // Weighted round-robin VL arbitration (IBA VLArb): the current VL may
  // send up to its weight's worth of packets per round before yielding to
  // the next eligible VL; with no weights configured every VL weighs 1,
  // which is plain round-robin.
  const int vls = cfg_.num_vls;
  const std::size_t vbase = fp * vls_;
  auto weight_of = [&](int vl) {
    return cfg_.vl_weights.empty()
               ? 1
               : cfg_.vl_weights[static_cast<std::size_t>(vl)];
  };
  auto eligible = [&](int vl) {
    const std::size_t vs = vbase + static_cast<std::size_t>(vl);
    return vl_q_[vs].size != 0 && vl_tx_pkt_[vs] == kInvalidPacket &&
           vl_credits_[vs] > 0;
  };
  int chosen = -1;
  for (int i = 0; i < vls; ++i) {
    const int vl = (port_wrr_vl_[fp] + i) % vls;
    if (!eligible(vl)) continue;
    if (i == 0 && port_wrr_budget_[fp] <= 0) continue;  // round used up: yield
    chosen = vl;
    break;
  }
  if (chosen < 0 && eligible(port_wrr_vl_[fp])) {
    // Only the exhausted VL has traffic: start a fresh round for it.
    chosen = port_wrr_vl_[fp];
    port_wrr_budget_[fp] = weight_of(chosen);
  }
  if (chosen < 0) {
    // Nothing eligible on an idle link: any VL whose head is blocked purely
    // on downstream credits starts (or continues) a credit-stall interval,
    // closed when the credit arrives (kCreditArrive) or the link dies.
    if (cfg_.telemetry) {
      for (int vl = 0; vl < vls; ++vl) {
        const std::size_t vs = vbase + static_cast<std::size_t>(vl);
        if (vl_q_[vs].size != 0 && vl_tx_pkt_[vs] == kInvalidPacket &&
            vl_credits_[vs] == 0 && vl_cold_[vs].stall_since < 0) {
          vl_cold_[vs].stall_since = now;
        }
      }
    }
    if (cc_on()) {
      // Same clock, kept separate: CC marking must not depend on whether
      // telemetry collection is enabled.
      for (int vl = 0; vl < vls; ++vl) {
        const std::size_t vs = vbase + static_cast<std::size_t>(vl);
        if (vl_q_[vs].size != 0 && vl_tx_pkt_[vs] == kInvalidPacket &&
            vl_credits_[vs] == 0 && vl_cc_stall_since_[vs] < 0) {
          vl_cc_stall_since_[vs] = now;
        }
      }
    }
    return;  // re-armed by credit arrival / new grant
  }
  if (chosen != port_wrr_vl_[fp]) {
    port_wrr_vl_[fp] = chosen;
    port_wrr_budget_[fp] = weight_of(chosen);
  }
  --port_wrr_budget_[fp];
  const std::size_t vs = vbase + static_cast<std::size_t>(chosen);
  // Unlink the head now: its head arrival downstream (and the queue it
  // joins there) outruns our tail-out, and the pool owns only one
  // intrusive link per packet.  The output slot stays reserved until
  // tail-out (vl_free_slots_ is untouched here).
  const PacketId pkt = pool_.pop_front(vl_q_[vs]);
  vl_tx_pkt_[vs] = pkt;
  --vl_credits_[vs];  // reserve the downstream input slot
  const SimTime wire = wire_ns(pkt);  // segments may be shorter than the MTU
  accumulate_utilization(fp, now, now + wire);
  port_busy_until_[fp] = now + wire;
  ++port_packets_tx_[fp];
  if (cfg_.telemetry) {
    VlTelemetry& cold = vl_cold_[vs];
    ++cold.pkts_tx;
    cold.bytes_tx += pool_.get(pkt).size_bytes;
  }
  const bool from_endnode =
      subnet_->fabric().fabric().device(dev).kind() == DeviceKind::kEndnode;
  if (from_endnode) {
    pool_.get(pkt).injected_at = now;  // head enters the first link
  }
  if (cc_on() && vl_cc_stall_since_[vs] >= 0) {
    // The head finally transmits after a credit-blocked wait.  A long
    // enough stall on a *switch* output is the congestion-tree signature
    // one-deep buffers hide from depth marking; NIC stalls are the
    // throttle's own doing and never self-mark.
    if (!from_endnode &&
        now - vl_cc_stall_since_[vs] >= cfg_.cc.fecn_stall_ns) {
      mark_fecn(pkt, /*stall_mark=*/true, dev, port,
                static_cast<VlId>(chosen));
    }
    vl_cc_stall_since_[vs] = -1;
  }
  trace_event(pkt, now,
              from_endnode ? TracePoint::kInjected : TracePoint::kForwarded,
              dev, port, static_cast<VlId>(chosen));
  const auto vl_id = static_cast<VlId>(chosen);
  const PortRef peer = port_peer_[fp];
  schedule(now + cfg_.flying_time_ns, EventKind::kHeadArrive, peer.device,
           peer.port, vl_id, pkt);
  schedule(now + wire, EventKind::kTailOut, dev, port, vl_id, pkt);
  // The packet's input-side slot on *this* switch drains as the tail leaves
  // (at now + wire); the credit then flies back upstream.  Scheduled here --
  // not in on_tail_out -- because rt_[pkt] is re-pointed at the downstream
  // switch as soon as the head lands there.
  if (rt_[pkt].in_port != 0) {
    const PortRef up =
        subnet_->fabric().fabric().peer_of(dev, rt_[pkt].in_port);
    // The packet may have entered through a link that has since died (it
    // was already buffered here, so it survives and forwards normally);
    // the freed input slot then has no upstream to credit.
    if (up.valid()) {
      schedule(now + wire + cfg_.flying_time_ns, EventKind::kCreditArrive,
               up.device, up.port, vl_id);
    } else {
      MLID_ASSERT(sm_ != nullptr, "unconnected in-port without a live SM");
    }
  }
}

// --- switch traversal -----------------------------------------------------------

void Simulation::on_head_arrive(DeviceId dev, PortId port, VlId vl,
                                PacketId pkt, SimTime now) {
  if (!port_connected_[port_index(dev, port)]) {
    // The link died while the packet was on the wire.  Its tail-out on the
    // transmitting side still cleans up that output slot; here the packet
    // simply never lands.
    trace_event(pkt, now, TracePoint::kDropped, dev, port, vl,
                DropReason::kDeadLink);
    count_drop(DropReason::kDeadLink, pkt, dev, now);
    release_packet(pkt);
    return;
  }
  trace_event(pkt, now, TracePoint::kHeadArrive, dev, port, vl);
  const Device& device = subnet_->fabric().fabric().device(dev);
  if (device.kind() == DeviceKind::kEndnode) {
    // Tail arrives one serialization time later; deliver then.
    schedule(now + wire_ns(pkt), EventKind::kDeliver, dev, port, vl, pkt);
    return;
  }
  rt_[pkt].dev = dev;
  rt_[pkt].in_port = port;
  schedule(now + cfg_.routing_delay_ns, EventKind::kRouted, dev, port, vl,
           pkt);
}

PortId Simulation::pick_output(DeviceId dev, const Device& device, VlId vl,
                               PortId deterministic) const {
  if (!adaptive_ || first_up_port_[dev] == 0 ||
      deterministic < first_up_port_[dev]) {
    // Deterministic policy, or a down entry: down entries are unique (the
    // destination sits in exactly one subtree); only upward forwarding has
    // freedom a policy may exploit.
    return deterministic;
  }
  // Any connected up port is a minimal next hop: hand the policy every
  // candidate with its local occupancy signals and let it choose.
  uplink_scratch_.clear();
  for (PortId port = first_up_port_[dev]; port <= device.num_ports();
       ++port) {
    const std::size_t fp = port_index(dev, port);
    if (!port_connected_[fp]) continue;
    const std::size_t vs = vl_index(fp, vl);
    uplink_scratch_.push_back(UpPortCandidate{
        port, vl_free_slots_[vs], vl_credits_[vs],
        vl_fecn_signal_.empty() ? 0u : vl_fecn_signal_[vs]});
  }
  const PortId out = fwd_policy_->select_uplink(uplink_scratch_, deterministic);
  // The eligibility contract: a policy may only redirect onto another
  // connected up port of the same switch (anything else could loop or
  // forward into the void).
  MLID_ASSERT(out >= first_up_port_[dev] && out <= device.num_ports() &&
                  port_connected_[port_index(dev, out)],
              "forwarding policy must return a connected up-phase candidate");
  return out;
}

void Simulation::on_routed(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                           SimTime now) {
  const Device& device = subnet_->fabric().fabric().device(dev);
  const CompactLft& lft = live_lft(device.switch_id);
  const Lid dlid = pool_.get(pkt).dlid;
  const PortId fwd = lft.find(dlid);
  if (fwd == CompactLft::kNoEntry) {
    // No entry at all: a routing hole.  On an intact run the counter
    // doubles as a routing-bug detector; after a partitioning failure it
    // counts destinations the repaired tables legitimately cannot reach.
    trace_event(pkt, now, TracePoint::kDropped, dev, port, vl,
                DropReason::kUnroutable);
    count_drop(DropReason::kUnroutable, pkt, dev, now);
    return_credit_upstream(dev, port, vl, now);
    release_packet(pkt);
    return;
  }
  if (!device.port_connected(fwd)) {
    // The entry points at a dead port: the table is stale relative to the
    // physical fabric.  With a live SM this is the convergence window;
    // with offline tables it is the permanent cost of not re-sweeping.
    trace_event(pkt, now, TracePoint::kDropped, dev, port, vl,
                DropReason::kConvergence);
    count_drop(DropReason::kConvergence, pkt, dev, now);
    return_credit_upstream(dev, port, vl, now);
    release_packet(pkt);
    return;
  }
  const PortId out = pick_output(dev, device, vl, fwd);
  ++pool_.get(pkt).hops;
  const std::size_t vs = vl_index(port_index(dev, out), vl);
  if (cc_on() && vl_cc_stall_since_[vs] < 0) {
    // FECN depth marking: the backlog this packet joins at its output
    // (granted queue + crossbar waiters), counting the packet itself.
    // Only at the congestion tree's *root*: a backlog that persists while
    // the output is draining at link rate (not credit-stalled) means the
    // sink itself is oversubscribed.  Credit-stalled outputs upstream are
    // victims of that root; marking there would throttle innocent flows
    // that merely share a link with the tree (they get the stall-mark
    // path instead, which only fires on the long-blocked head packet).
    const std::size_t depth = static_cast<std::size_t>(vl_q_[vs].size) +
                              (vl_tx_pkt_[vs] != kInvalidPacket ? 1 : 0) +
                              vl_wait_[vs].size + 1;
    if (depth >= cfg_.cc.fecn_threshold_pkts) {
      mark_fecn(pkt, /*stall_mark=*/false, dev, out, vl);
    }
  }
  if (vl_free_slots_[vs] > 0) {
    grant_output(dev, out, vl, pkt, now);
  } else {
    pool_.push_back(vl_wait_[vs], pkt);
    if (cfg_.telemetry) note_queue_depth(dev, out, vl);
  }
}

void Simulation::grant_output(DeviceId dev, PortId out, VlId vl, PacketId pkt,
                              SimTime now) {
  const std::size_t vs = vl_index(port_index(dev, out), vl);
  MLID_ASSERT(vl_free_slots_[vs] > 0, "granting without a free output slot");
  --vl_free_slots_[vs];
  pool_.push_back(vl_q_[vs], pkt);
  rt_[pkt].out_port = out;
  if (cfg_.telemetry) note_queue_depth(dev, out, vl);
  try_tx(dev, out, now);
}

void Simulation::note_queue_depth(DeviceId dev, PortId out, VlId vl) {
  const std::size_t vs = vl_index(port_index(dev, out), vl);
  const std::uint32_t depth = vl_q_[vs].size +
                              (vl_tx_pkt_[vs] != kInvalidPacket ? 1u : 0u) +
                              vl_wait_[vs].size;
  vl_cold_[vs].peak_queue_pkts =
      std::max(vl_cold_[vs].peak_queue_pkts, depth);
}

void Simulation::return_credit_upstream(DeviceId dev, PortId in_port, VlId vl,
                                        SimTime now) {
  const PortRef up = subnet_->fabric().fabric().peer_of(dev, in_port);
  if (!up.valid()) {
    // The in-port's link died after this packet was buffered: the credit
    // has nowhere to go (revive_port resets counters on recovery).
    MLID_ASSERT(sm_ != nullptr, "credit return on an unconnected port");
    return;
  }
  schedule(now + cfg_.flying_time_ns, EventKind::kCreditArrive, up.device,
           up.port, vl);
}

void Simulation::on_tail_out(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                             SimTime now) {
  const std::size_t fp = port_index(dev, port);
  const std::size_t vs = vl_index(fp, vl);
  MLID_ASSERT(vl_tx_pkt_[vs] == pkt,
              "tail-out for a packet that is not the transmitting head");
  vl_tx_pkt_[vs] = kInvalidPacket;
  ++vl_free_slots_[vs];

  // The output slot freed: admit the longest-waiting routed packet, if any.
  PacketQueue& waitq = vl_wait_[vs];
  if (!waitq.empty()) {
    const PacketId next = pool_.pop_front(waitq);
    grant_output(dev, port, vl, next, now);
  }

  if (rt_[pkt].handed_off) {
    // Shard mode: the head crossed a shard boundary at transmit time and the
    // receiving shard owns the live copy now; ours dies with the tail.
    rt_[pkt].handed_off = false;
    release_packet(pkt);
  }
  // The packet's tail has left this device.  The matching upstream credit
  // was already scheduled at transmit time (see try_tx); the only
  // input-side resource handled here is the NIC's source queue.
  const Device& device = subnet_->fabric().fabric().device(dev);
  if (device.kind() == DeviceKind::kEndnode) {
    try_source_pull(device.node_id, vl, now);
  }
  try_tx(dev, port, now);
}

// --- delivery --------------------------------------------------------------------

void Simulation::on_deliver(DeviceId dev, PortId port, VlId vl, PacketId pkt,
                            SimTime now) {
  Packet& p = pool_.get(pkt);
  MLID_ASSERT(p.delivered_at < 0, "packet delivered twice");
  MLID_ASSERT(subnet_->fabric().node_device(subnet_->node_of(p.dlid)) == dev,
              "packet delivered to a node that does not own its DLID");
  p.delivered_at = now;
  ++result_.packets_delivered;
  const DeliveryRecord rec{now,          dev,   vl,    p.corder,
                           p.generated_at, p.injected_at, p.size_bytes,
                           p.dst,        p.hops, p.msg};
  if (sharded()) {
    // The Welford windows and histograms are accumulation-order sensitive;
    // log the delivery and let the driver replay the global log on shard 0
    // in canonical order, reproducing the sequential accumulation sequence.
    deliveries_.push_back(rec);
  } else {
    accumulate_delivery(rec);
  }
  if (cc_on() && p.fecn) {
    // BECN return: the destination HCA echoes the mark to the source as a
    // small control packet, modeled as a delayed event like SM traps.
    ++cc_becn_sent_;
    ++cc_nodes_[p.dst].stats.becn_sent;
    schedule(now + cfg_.cc.becn_delay_ns, EventKind::kBecnArrive, p.src, 0, 0,
             static_cast<PacketId>(p.dst));
  }
  last_delivery_ = std::max(last_delivery_, now);
  trace_event(pkt, now, TracePoint::kDelivered, dev, port, vl);
  // The destination endnode consumes at link rate: its input slot frees as
  // the tail lands, so the credit travels back immediately.
  return_credit_upstream(dev, port, vl, now);
  release_packet(pkt);
}

void Simulation::accumulate_delivery(const DeliveryRecord& rec) {
  const SimTime now = rec.time;
  if (now >= cfg_.warmup_ns && now < cfg_.end_time()) {
    ++result_.packets_measured;
    bytes_accepted_window_ += rec.size_bytes;
    ++delivered_per_vl_[rec.vl];
    latency_per_vl_[rec.vl].add(static_cast<double>(now - rec.generated_at));
    bytes_per_node_[rec.dst] += rec.size_bytes;
    const auto lat = static_cast<double>(now - rec.generated_at);
    latency_window_.add(lat);
    latency_hist_.add(lat);
    net_latency_window_.add(static_cast<double>(now - rec.injected_at));
    hops_window_.add(static_cast<double>(rec.hops));
    if (traffic_.config().kind == TrafficKind::kCentric) {
      if (rec.dst == traffic_.config().hot_node) {
        hot_window_.add(lat);
        hot_hist_.add(lat);
      } else {
        victim_window_.add(lat);
        victim_hist_.add(lat);
      }
    }
    if (!tenant_delivered_.empty()) {
      const auto t = static_cast<std::size_t>(tenant_of(rec.dst));
      ++tenant_delivered_[t];
      tenant_bytes_[t] += rec.size_bytes;
      tenant_latency_[t].add(lat);
    }
    if (cfg_.telemetry) {
      result_.latency_log2_hist.add(lat);
      result_.queue_log2_hist.add(
          static_cast<double>(rec.injected_at - rec.generated_at));
      result_.network_log2_hist.add(
          static_cast<double>(now - rec.injected_at));
      result_.latency_log2_per_vl[rec.vl].add(lat);
    }
  }
  if (rec.msg != kNoMessage) {
    MsgState& msg = msgs_[rec.msg];
    MLID_ASSERT(msg.remaining_segments > 0, "message over-delivered");
    if (--msg.remaining_segments == 0) {
      msg.completed_at = now;
      msg_latency_.add(static_cast<double>(now));  // all bursts start at 0
      if (cfg_.telemetry) msg_latency_hist_.add(static_cast<double>(now));
    }
  }
}

// --- congestion control ------------------------------------------------------

void Simulation::mark_fecn(PacketId pkt, bool stall_mark, DeviceId dev,
                           PortId port, VlId vl) {
  Packet& p = pool_.get(pkt);
  if (p.fecn) return;  // one mark per packet, whichever trigger fires first
  p.fecn = true;
  ++cc_fecn_marked_;
  if (stall_mark) {
    ++cc_fecn_stall_marks_;
  } else {
    ++cc_fecn_depth_marks_;
  }
  if (!vl_fecn_signal_.empty()) {
    // The adaptive policy's congestion-root signal (independent of the
    // telemetry counter below, so policy behaviour does not change with
    // observability flags).
    ++vl_fecn_signal_[vl_index(port_index(dev, port), vl)];
  }
  if (cfg_.telemetry) {
    ++vl_cold_[vl_index(port_index(dev, port), vl)].fecn_marks;
  }
}

void Simulation::on_becn(NodeId src, NodeId dst, SimTime now) {
  CcNode& cn = cc_nodes_[src];
  ++cn.stats.becn_received;
  const std::uint16_t idx = cct_[src].on_becn(dst);
  cn.stats.peak_cct_index = std::max(cn.stats.peak_cct_index, idx);
  ++cc_index_hist_[idx];
  if (!cn.timer_armed) {
    cn.timer_armed = true;
    schedule(now + cfg_.cc.timer_ns, EventKind::kCctTimer, src);
  }
}

void Simulation::on_cct_timer(NodeId node, SimTime now) {
  ++cc_timer_fires_;
  if (cct_[node].decay()) {
    schedule(now + cfg_.cc.timer_ns, EventKind::kCctTimer, node);
  } else {
    cc_nodes_[node].timer_armed = false;
  }
}

void Simulation::on_cc_release(NodeId node, SimTime now) {
  cc_nodes_[node].release_scheduled = false;
  for (int vl = 0; vl < cfg_.num_vls; ++vl) {
    try_source_pull(node, static_cast<VlId>(vl), now);
  }
}

CcSummary Simulation::collect_cc() const {
  CcSummary cc;
  if (!cc_on()) return cc;
  cc.enabled = true;
  cc.fecn_marked = cc_fecn_marked_;
  cc.fecn_depth_marks = cc_fecn_depth_marks_;
  cc.fecn_stall_marks = cc_fecn_stall_marks_;
  cc.becn_sent = cc_becn_sent_;
  cc.cct_timer_fires = cc_timer_fires_;
  cc.cct_index_hist = cc_index_hist_;
  for (const CcNode& cn : cc_nodes_) {
    const CcNodeStats& s = cn.stats;
    cc.becn_received += s.becn_received;
    cc.throttled_pkts += s.throttled_pkts;
    cc.throttled_ns_total += s.throttled_ns;
    cc.max_node_throttled_ns =
        std::max(cc.max_node_throttled_ns, s.throttled_ns);
    cc.peak_cct_index = std::max(cc.peak_cct_index, s.peak_cct_index);
  }
  return cc;
}

std::vector<CcNodeStats> Simulation::cc_node_stats() const {
  std::vector<CcNodeStats> stats;
  stats.reserve(cc_nodes_.size());
  for (const CcNode& cn : cc_nodes_) stats.push_back(cn.stats);
  return stats;
}

void Simulation::trace_event(PacketId pkt, SimTime now, TracePoint point,
                             DeviceId dev, PortId port, VlId vl,
                             DropReason drop) {
  const std::int32_t idx = rt_[pkt].trace;
  if (idx < 0) return;
  // Pooled: one arena append instead of growing a per-record vector on the
  // hot path.  materialize_traces() distributes at run end.
  trace_arena_.push_back(
      PendingTraceEvent{idx, TraceEvent{now, point, dev, port, vl, drop}});
}

void Simulation::materialize_traces() {
  if (trace_arena_.empty()) return;
  for (const PendingTraceEvent& pending : trace_arena_) {
    traces_[static_cast<std::size_t>(pending.rec)].events.push_back(
        pending.ev);
  }
  trace_arena_.clear();
  trace_arena_.shrink_to_fit();
}

// --- time-resolved observability ---------------------------------------------
// All passive: these read counters and queue sizes but never schedule
// events, draw random numbers or mutate engine state, which is what keeps
// results bit-identical with the instrumentation on or off.

void Simulation::take_sample(SimTime t) {
  TimelineSample s;
  s.t_ns = t;
  // `intervals` counts BASE intervals: after d decimations each new sample
  // covers one doubled window, i.e. 2^d base intervals, keeping the
  // per-sample tiling invariant t_ns - prev.t_ns == intervals * base.
  s.intervals =
      static_cast<std::uint32_t>(timeline_.interval_ns /
                                 timeline_.base_interval_ns);
  s.generated = result_.packets_generated - sampled_generated_;
  s.delivered = result_.packets_delivered - sampled_delivered_;
  s.dropped = result_.packets_dropped - sampled_dropped_;
  s.becn = cc_becn_sent_ - sampled_becn_;
  sampled_generated_ = result_.packets_generated;
  sampled_delivered_ = result_.packets_delivered;
  sampled_dropped_ = result_.packets_dropped;
  sampled_becn_ = cc_becn_sent_;
  s.in_flight = result_.packets_generated - result_.packets_delivered -
                result_.packets_dropped;
  collect_sample_gauges(s);
  timeline_.append(s);
}

void Simulation::emit_stream_window(SimTime t, bool partial) {
  MetricsWindow w;
  w.t_ns = t;
  w.window_ns = t - last_stream_;
  w.partial = partial;
  w.shards = 1;
  w.generated = result_.packets_generated - streamed_generated_;
  w.delivered = result_.packets_delivered - streamed_delivered_;
  w.dropped = result_.packets_dropped - streamed_dropped_;
  w.becn = cc_becn_sent_ - streamed_becn_;
  streamed_generated_ = result_.packets_generated;
  streamed_delivered_ = result_.packets_delivered;
  streamed_dropped_ = result_.packets_dropped;
  streamed_becn_ = cc_becn_sent_;
  w.in_flight = result_.packets_generated - result_.packets_delivered -
                result_.packets_dropped;
  w.events_processed = events_.events_processed();
  last_stream_ = t;
  stream_->window(w);
}

void Simulation::collect_sample_gauges(TimelineSample& s) const {
  const Fabric& g = subnet_->fabric().fabric();
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    if (sharded() && (*shard_.dev_shard)[dev] != shard_.shard_id) continue;
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      for (std::size_t vl = 0; vl < vls_; ++vl) {
        const std::size_t vs = vl_index(fp, vl);
        const std::uint32_t depth =
            vl_q_[vs].size + (vl_tx_pkt_[vs] != kInvalidPacket ? 1u : 0u) +
            vl_wait_[vs].size;
        s.queued_pkts += depth;
        s.max_queue_depth = std::max(s.max_queue_depth, depth);
        // The same structural condition the credit-stall telemetry clocks,
        // read directly so the sample does not depend on cfg_.telemetry.
        if (vl_q_[vs].size != 0 && vl_tx_pkt_[vs] == kInvalidPacket &&
            vl_credits_[vs] == 0) {
          ++s.stalled_vls;
        }
      }
    }
  }
  if (cc_on()) {
    for (NodeId node = 0; node < cct_.size(); ++node) {
      if (sharded() && (*shard_.node_shard)[node] != shard_.shard_id) continue;
      const CongestionControlTable& cct = cct_[node];
      if (!cct.any_active()) continue;
      ++s.cct_active_nodes;
      s.peak_cct_index = std::max(s.peak_cct_index, cct.max_index());
    }
  }
}

void Simulation::record_flight(const Event& e) {
  const std::int64_t owner = flight_device_of(e);
  if (owner < 0) return;
  const auto dev = static_cast<DeviceId>(owner);
  const std::uint32_t depth = cfg_.flight_recorder_depth;
  const std::size_t base = static_cast<std::size_t>(dev) * depth;
  flight_ring_[base + flight_pos_[dev]] =
      FlightEvent{e.time, e.kind, e.dev, e.pkt, e.port, e.vl};
  flight_pos_[dev] = (flight_pos_[dev] + 1) % depth;
  flight_len_[dev] = std::min(flight_len_[dev] + 1, depth);
  last_flight_dev_ = dev;
}

std::int64_t Simulation::flight_device_of(const Event& e) const {
  switch (e.kind) {
    case EventKind::kGenerate:
    case EventKind::kBecnArrive:
    case EventKind::kCctTimer:
    case EventKind::kCcRelease:
      // Node-scoped: file under the node's NIC device.
      return subnet_->fabric().node_device(static_cast<NodeId>(e.dev));
    case EventKind::kSweepDone:
    case EventKind::kLftProgram:
      return -1;  // SM-global; no single device owns them
    default:
      return e.dev;
  }
}

void Simulation::record_control(const Event& e) {
  switch (e.kind) {
    case EventKind::kLinkFail:
      control_trace_.push_back(
          {e.time, ControlPoint::kLinkFail, e.dev, 0, e.port});
      break;
    case EventKind::kLinkRecover:
      // Endpoint B travels in the pkt (device) / vl (port) payload fields.
      control_trace_.push_back({e.time, ControlPoint::kLinkRecover, e.dev,
                                static_cast<std::uint32_t>(e.pkt), e.port});
      break;
    case EventKind::kTrap:
      control_trace_.push_back(
          {e.time, ControlPoint::kTrap, e.dev, 0, e.port});
      break;
    case EventKind::kSweepDone:
      control_trace_.push_back({e.time, ControlPoint::kSweepDone, e.dev, 0, 0});
      break;
    case EventKind::kLftProgram:
      control_trace_.push_back({e.time, ControlPoint::kLftProgram, e.dev,
                                static_cast<std::uint32_t>(e.pkt), 0});
      break;
    case EventKind::kBecnArrive:
      control_trace_.push_back({e.time, ControlPoint::kBecn, e.dev,
                                static_cast<std::uint32_t>(e.pkt), 0});
      break;
    case EventKind::kCctTimer:
      control_trace_.push_back({e.time, ControlPoint::kCctTimer, e.dev, 0, 0});
      break;
    case EventKind::kCcRelease:
      control_trace_.push_back(
          {e.time, ControlPoint::kCcRelease, e.dev, 0, 0});
      break;
    default:
      break;  // data-plane events are the packet traces' job
  }
}

FlightRecorderDump Simulation::render_flight_ring(DeviceId dev, SimTime at,
                                                  std::string cause) const {
  FlightRecorderDump dump;
  dump.at = at;
  dump.dev = dev;
  dump.device_name = subnet_->fabric().fabric().device(dev).name();
  dump.cause = std::move(cause);
  const std::uint32_t depth = cfg_.flight_recorder_depth;
  const std::size_t base = static_cast<std::size_t>(dev) * depth;
  const std::uint32_t len = flight_len_[dev];
  dump.events.reserve(len);
  for (std::uint32_t i = 0; i < len; ++i) {
    const std::uint32_t slot = (flight_pos_[dev] + depth - len + i) % depth;
    dump.events.push_back(flight_ring_[base + slot]);
  }
  return dump;
}

void Simulation::freeze_flight_dump(DeviceId dev, SimTime at,
                                    std::string cause) {
  flight_dump_ = render_flight_ring(dev, at, std::move(cause));
  std::cerr << to_string(flight_dump_);
}

std::vector<LinkLoad> Simulation::link_loads() const {
  std::vector<LinkLoad> loads;
  const Fabric& g = subnet_->fabric().fabric();
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      loads.push_back(LinkLoad{
          dev, port, port_packets_tx_[fp],
          static_cast<double>(port_busy_in_window_[fp]) /
              static_cast<double>(cfg_.measure_ns)});
    }
  }
  return loads;
}

// --- memory accounting -------------------------------------------------------

std::size_t Simulation::memory_footprint() const noexcept {
  const auto vec_bytes = [](const auto& v) noexcept {
    using T = typename std::remove_reference_t<decltype(v)>::value_type;
    return v.capacity() * sizeof(T);
  };
  std::size_t total = pool_.memory_bytes() + vec_bytes(rt_);
  total += vec_bytes(port_base_) + vec_bytes(port_peer_) +
           vec_bytes(port_busy_until_) + vec_bytes(port_busy_in_window_) +
           vec_bytes(port_packets_tx_) + vec_bytes(port_wrr_vl_) +
           vec_bytes(port_wrr_budget_) + vec_bytes(port_retry_) +
           vec_bytes(port_connected_);
  total += vec_bytes(vl_q_) + vec_bytes(vl_wait_) + vec_bytes(vl_free_slots_) +
           vec_bytes(vl_credits_) + vec_bytes(vl_tx_pkt_) +
           vec_bytes(vl_cc_stall_since_) + vec_bytes(vl_cold_);
  total += vec_bytes(src_q_) + vec_bytes(scratch_) + vec_bytes(nodes_) +
           vec_bytes(first_up_port_) + vec_bytes(vl_rng_);
  // Policy state (empty under the default deterministic/none pair).
  total += vec_bytes(uplink_scratch_) + vec_bytes(vl_fecn_signal_);
  // CC state (next_allowed is the O(nodes^2) part; CCT internals are
  // approximated by their object size).
  total += vec_bytes(cc_nodes_) + vec_bytes(cct_) + vec_bytes(cc_index_hist_);
  for (const CcNode& cn : cc_nodes_) total += vec_bytes(cn.next_allowed);
  total += vec_bytes(timeline_.samples) + vec_bytes(flight_ring_) +
           vec_bytes(flight_pos_) + vec_bytes(flight_len_);
  total += vec_bytes(deliveries_) + vec_bytes(trace_arena_) +
           vec_bytes(traces_) + vec_bytes(msgs_);
  total += vec_bytes(delivered_per_vl_) + vec_bytes(latency_per_vl_) +
           vec_bytes(bytes_per_node_);
  return total;
}

// --- main loop ---------------------------------------------------------------------

void Simulation::dispatch(const Event& e) {
  if (!flight_ring_.empty()) record_flight(e);
  if (cfg_.trace_control) record_control(e);
  switch (e.kind) {
    case EventKind::kGenerate:
      on_generate(static_cast<NodeId>(e.dev), e.time);
      break;
    case EventKind::kHeadArrive:
      on_head_arrive(e.dev, e.port, e.vl, e.pkt, e.time);
      break;
    case EventKind::kRouted:
      on_routed(e.dev, e.port, e.vl, e.pkt, e.time);
      break;
    case EventKind::kTailOut:
      on_tail_out(e.dev, e.port, e.vl, e.pkt, e.time);
      break;
    case EventKind::kCreditArrive: {
      const std::size_t fp = port_index(e.dev, e.port);
      if (!port_connected_[fp]) break;  // credit for a dead port: void
      const std::size_t vs = vl_index(fp, e.vl);
      VlTelemetry& cold = vl_cold_[vs];
      if (cold.stall_since >= 0) {
        cold.credit_stall_ns += e.time - cold.stall_since;
        cold.stall_since = -1;
      }
      if (vl_credits_[vs] < cfg_.in_buf_pkts) {
        ++vl_credits_[vs];
      } else {
        // Only possible after a fail/recover cycle: a packet that crossed
        // the link before the failure returns its credit to the revived
        // (already fully credited) port.  The stale credit is void.
        MLID_ASSERT(sm_ != nullptr, "credit overflow without a live SM");
      }
      try_tx(e.dev, e.port, e.time);
      break;
    }
    case EventKind::kTryTx:
      port_retry_[port_index(e.dev, e.port)] = 0;
      try_tx(e.dev, e.port, e.time);
      break;
    case EventKind::kDeliver:
      on_deliver(e.dev, e.port, e.vl, e.pkt, e.time);
      break;
    case EventKind::kLinkFail:
      on_link_fail(e.dev, e.port, e.time);
      break;
    case EventKind::kLinkRecover:
      on_link_recover(e.dev, e.port, static_cast<DeviceId>(e.pkt), e.vl,
                      e.time);
      break;
    case EventKind::kTrap: {
      const auto sweep_done = sm_->on_trap(e.dev, e.port, e.time);
      if (sweep_done) {
        schedule(*sweep_done, EventKind::kSweepDone, e.dev);
      }
      break;
    }
    case EventKind::kSweepDone:
      for (const auto& op : sm_->on_sweep_done(e.time)) {
        schedule(op.at, EventKind::kLftProgram, op.plan_index, 0, 0, op.epoch);
      }
      break;
    case EventKind::kLftProgram:
      sm_->apply_program(e.dev, e.pkt, e.time);
      break;
    case EventKind::kBecnArrive:
      on_becn(static_cast<NodeId>(e.dev), static_cast<NodeId>(e.pkt), e.time);
      break;
    case EventKind::kCctTimer:
      on_cct_timer(static_cast<NodeId>(e.dev), e.time);
      break;
    case EventKind::kCcRelease:
      on_cc_release(static_cast<NodeId>(e.dev), e.time);
      break;
  }
}

BurstResult Simulation::run_to_completion() {
  MLID_EXPECT(burst_, "run_to_completion needs the burst factory");
  MLID_EXPECT(!sharded(), "sharded runs go through ShardedSimulation");
  events_.drain_until(std::numeric_limits<SimTime>::max(),
                      [this](const Event& e) {
                        MLID_ASSERT(e.kind != EventKind::kGenerate,
                                    "burst mode schedules no generation");
                        dispatch(e);
                      });
  MLID_EXPECT(result_.packets_delivered + result_.packets_dropped ==
                  result_.packets_generated,
              "burst did not fully drain");
  check_invariants();
  materialize_traces();
  return finalize_burst(events_.events_processed(),
                        events_.events_scheduled());
}

BurstResult Simulation::finalize_burst(std::uint64_t events_processed,
                                       std::uint64_t events_scheduled) {
  BurstResult burst;
  burst.makespan_ns = last_delivery_;
  burst.avg_message_latency_ns = msg_latency_.mean();
  burst.max_message_latency_ns = msg_latency_.max();
  burst.messages = msgs_.size();
  burst.packets = burst_packets_;
  burst.total_bytes = burst_bytes_;
  burst.events_processed = events_processed;
  burst.events_scheduled = events_scheduled;
  burst.cc = collect_cc();
  if (cfg_.telemetry) {
    burst.telemetry = true;
    burst.p50_message_latency_ns = msg_latency_hist_.quantile(0.50);
    burst.p95_message_latency_ns = msg_latency_hist_.quantile(0.95);
    burst.p99_message_latency_ns = msg_latency_hist_.quantile(0.99);
    burst.message_latency_hist = msg_latency_hist_;
    burst.link_summary = finish_link_telemetry(
        last_delivery_, std::max<SimTime>(last_delivery_, 1));
  }
  return burst;
}

LinkSummary Simulation::finish_link_telemetry(SimTime end, SimTime window_ns) {
  LinkSummary summary;
  if (!cfg_.telemetry) return summary;
  const Fabric& g = subnet_->fabric().fabric();
  OnlineStats util;
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      ++summary.links;
      util.add(static_cast<double>(port_busy_in_window_[fp]) /
               static_cast<double>(window_ns));
      for (std::size_t vl = 0; vl < vls_; ++vl) {
        VlTelemetry& slot = vl_cold_[vl_index(fp, vl)];
        if (slot.stall_since >= 0) {  // still blocked when the run ended
          slot.credit_stall_ns += end - slot.stall_since;
          slot.stall_since = -1;
        }
        summary.total_packets += slot.pkts_tx;
        summary.total_bytes += slot.bytes_tx;
        summary.total_credit_stall_ns +=
            static_cast<std::uint64_t>(slot.credit_stall_ns);
        summary.max_credit_stall_ns =
            std::max(summary.max_credit_stall_ns,
                     static_cast<std::uint64_t>(slot.credit_stall_ns));
        summary.max_queue_depth_pkts =
            std::max(summary.max_queue_depth_pkts, slot.peak_queue_pkts);
        summary.total_fecn_marks += slot.fecn_marks;
      }
    }
  }
  summary.mean_utilization = util.mean();
  summary.max_utilization = util.max();
  return summary;
}

std::vector<LinkStats> Simulation::link_stats() const {
  MLID_EXPECT(cfg_.telemetry,
              "link_stats() needs SimConfig::telemetry enabled");
  // Utilization is relative to the same window finish_link_telemetry used:
  // the measurement window in open-loop mode, the makespan for bursts.
  const auto window = static_cast<double>(
      burst_ ? std::max<SimTime>(last_delivery_, 1) : cfg_.measure_ns);
  std::vector<LinkStats> stats;
  const Fabric& g = subnet_->fabric().fabric();
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      LinkStats link;
      link.dev = dev;
      link.port = port;
      link.busy_ns = port_busy_in_window_[fp];
      link.utilization =
          static_cast<double>(port_busy_in_window_[fp]) / window;
      link.vls.reserve(vls_);
      for (std::size_t v = 0; v < vls_; ++v) {
        const VlTelemetry& slot = vl_cold_[vl_index(fp, v)];
        VlLinkStats vl;
        vl.packets_tx = slot.pkts_tx;
        vl.bytes_tx = slot.bytes_tx;
        vl.credit_stall_ns = slot.credit_stall_ns;
        vl.peak_queue_pkts = slot.peak_queue_pkts;
        vl.fecn_marks = slot.fecn_marks;
        link.packets_tx += vl.packets_tx;
        link.bytes_tx += vl.bytes_tx;
        link.credit_stall_ns += vl.credit_stall_ns;
        link.peak_queue_pkts =
            std::max(link.peak_queue_pkts, vl.peak_queue_pkts);
        link.fecn_marks += vl.fecn_marks;
        link.vls.push_back(vl);
      }
      stats.push_back(std::move(link));
    }
  }
  return stats;
}

void Simulation::check_invariants() const {
  const Fabric& g = subnet_->fabric().fabric();
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      for (std::size_t vl = 0; vl < vls_; ++vl) {
        const std::size_t vs = vl_index(fp, vl);
        const int occupied =
            static_cast<int>(vl_q_[vs].size) +
            (vl_tx_pkt_[vs] != kInvalidPacket ? 1 : 0);
        MLID_EXPECT(vl_free_slots_[vs] >= 0 &&
                        vl_free_slots_[vs] + occupied == cfg_.out_buf_pkts,
                    "output slot accounting out of balance");
        MLID_EXPECT(vl_credits_[vs] >= 0 &&
                        vl_credits_[vs] <= cfg_.in_buf_pkts,
                    "credit counter out of range");
        // Merged shard state carries foreign pool ids (each shard owns its
        // own PacketPool), so the liveness cross-check is sequential-only.
        MLID_EXPECT(sharded() || vl_tx_pkt_[vs] == kInvalidPacket ||
                        pool_.is_live(vl_tx_pkt_[vs]),
                    "transmission in progress without a live head packet");
      }
    }
  }
}

SimResult Simulation::run() {
  MLID_EXPECT(!burst_, "burst simulation: use run_to_completion()");
  MLID_EXPECT(!sharded(), "sharded runs go through ShardedSimulation");
  const SimTime end = cfg_.end_time();
  const auto run_start = std::chrono::steady_clock::now();
  next_stream_ = stream_ != nullptr ? stream_->interval_ns() : kSimTimeNever;
  last_stream_ = 0;
  try {
    if (!timeline_.enabled() && stream_ == nullptr) {
      events_.drain_until(end, [this](const Event& e) { dispatch(e); });
    } else {
      // Sampler-interposed drain: a sample at time t is taken before any
      // event at t dispatches, so it covers the window ending at t.  The
      // cadence is re-read after every sample because append() doubles it
      // when decimation triggers.  This is an observation loop wrapped
      // around the identical pop order -- no event is ever scheduled for
      // sampling, which is what keeps results bit-identical.  The metrics
      // stream pacer interleaves on the same terms (its boundaries are
      // host-side writes, never events).
      SimTime next = timeline_.enabled()
                         ? static_cast<SimTime>(timeline_.interval_ns)
                         : kSimTimeNever;
      while (const Event* e = events_.peek()) {
        if (e->time >= end) break;
        while (next <= e->time || next_stream_ <= e->time) {
          if (next <= next_stream_) {
            take_sample(next);
            next += timeline_.interval_ns;
          } else {
            emit_stream_window(next_stream_, /*partial=*/false);
            next_stream_ += stream_->interval_ns();
          }
        }
        dispatch(events_.pop());
      }
      while (next <= end || next_stream_ <= end) {
        if (next <= next_stream_) {
          take_sample(next);
          next += timeline_.interval_ns;
        } else {
          emit_stream_window(next_stream_, /*partial=*/false);
          next_stream_ += stream_->interval_ns();
        }
      }
    }
    check_invariants();
  } catch (const ContractViolation&) {
    // Give the flight recorder its second job: on an engine-invariant
    // failure, dump the last-touched device's ring before propagating.
    if (!flight_ring_.empty() && last_flight_dev_ != kInvalidDevice &&
        flight_len_[last_flight_dev_] > 0) {
      const DeviceId dev = last_flight_dev_;
      const std::uint32_t depth = cfg_.flight_recorder_depth;
      const std::uint32_t newest = (flight_pos_[dev] + depth - 1) % depth;
      const SimTime at =
          flight_ring_[static_cast<std::size_t>(dev) * depth + newest].time;
      std::cerr << to_string(
          render_flight_ring(dev, at, "contract violation"));
    }
    throw;
  }
  materialize_traces();
  if (cfg_.profile) {
    // Sequential runs carry the sharded phase taxonomy with degenerate
    // barrier / mailbox / control terms: the whole drain loop is one
    // shard's "processing" phase.
    const auto wall = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - run_start)
            .count());
    profile_.enabled = true;
    profile_.shards = 1;
    profile_.threads = 1;
    profile_.total_wall_ns = wall;
    profile_.processing_ns = wall;
    const EventQueueStats qs = events_.stats();
    profile_.queue_pushes = qs.events_scheduled;
    profile_.queue_pops = qs.events_processed;
    profile_.queue_overflow_pushes = qs.overflow_pushes;
    profile_.queue_resizes = qs.resizes;
    profile_.shard_phases.assign(
        1, ShardPhaseProfile{wall, 0, qs.events_processed, 0});
  }
  const SimResult result = finalize_open_loop(events_.events_processed(),
                                              events_.events_scheduled());
  if (stream_ != nullptr) {
    // The final sub-interval window (if the run end is not on a stream
    // boundary), then the run summary.
    if (last_stream_ < end) emit_stream_window(end, /*partial=*/true);
    MetricsRunSummary summary;
    summary.end_ns = end;
    summary.shards = 1;
    summary.threads = 1;
    summary.generated = result.packets_generated;
    summary.delivered = result.packets_delivered;
    summary.dropped = result.packets_dropped;
    summary.events_processed = result.events_processed;
    summary.profile = &result.profile;
    stream_->run_summary(summary);
  }
  return result;
}

SimResult Simulation::finalize_open_loop(std::uint64_t events_processed,
                                         std::uint64_t events_scheduled) {
  const SimTime end = cfg_.end_time();
  result_.timeline = timeline_;
  result_.profile = profile_;

  result_.offered_load = offered_load_;
  result_.sim_end_ns = end;
  result_.events_processed = events_processed;
  result_.events_scheduled = events_scheduled;
  const auto num_nodes =
      static_cast<double>(subnet_->fabric().params().num_nodes());
  result_.accepted_bytes_per_ns_per_node =
      static_cast<double>(bytes_accepted_window_) /
      static_cast<double>(cfg_.measure_ns) / num_nodes;
  result_.avg_latency_ns = latency_window_.mean();
  result_.avg_network_latency_ns = net_latency_window_.mean();
  result_.p50_latency_ns = latency_hist_.quantile(0.50);
  result_.p95_latency_ns = latency_hist_.quantile(0.95);
  result_.p99_latency_ns = latency_hist_.quantile(0.99);
  result_.max_latency_ns = latency_window_.max();
  result_.avg_hops = hops_window_.mean();

  OnlineStats util;
  for (std::size_t fp = 0; fp < port_connected_.size(); ++fp) {
    if (!port_connected_[fp]) continue;
    util.add(static_cast<double>(port_busy_in_window_[fp]) /
             static_cast<double>(cfg_.measure_ns));
  }
  result_.mean_link_utilization = util.mean();
  result_.max_link_utilization = util.max();
  result_.link_summary = finish_link_telemetry(end, cfg_.measure_ns);

  result_.delivered_per_vl = delivered_per_vl_;
  result_.avg_latency_per_vl_ns.clear();
  for (const OnlineStats& s : latency_per_vl_) {
    result_.avg_latency_per_vl_ns.push_back(s.mean());
  }
  double sum = 0.0, sum_sq = 0.0, lo = -1.0, hi = 0.0;
  for (const std::uint64_t bytes : bytes_per_node_) {
    const auto rate = static_cast<double>(bytes) /
                      static_cast<double>(cfg_.measure_ns);
    sum += rate;
    sum_sq += rate * rate;
    if (lo < 0.0 || rate < lo) lo = rate;
    hi = std::max(hi, rate);
  }
  const auto n_nodes = static_cast<double>(bytes_per_node_.size());
  result_.jain_fairness_index =
      sum_sq > 0.0 ? sum * sum / (n_nodes * sum_sq) : 0.0;
  result_.min_node_accepted_bytes_per_ns = std::max(lo, 0.0);
  result_.max_node_accepted_bytes_per_ns = hi;

  if (!tenant_delivered_.empty()) {
    result_.tenants.resize(tenant_delivered_.size());
    double t_sum = 0.0, t_sum_sq = 0.0;
    for (std::size_t t = 0; t < tenant_delivered_.size(); ++t) {
      TenantStats& out = result_.tenants[t];
      out.delivered_pkts = tenant_delivered_[t];
      out.accepted_bytes_per_ns = static_cast<double>(tenant_bytes_[t]) /
                                  static_cast<double>(cfg_.measure_ns);
      out.avg_latency_ns = tenant_latency_[t].mean();
      t_sum += out.accepted_bytes_per_ns;
      t_sum_sq += out.accepted_bytes_per_ns * out.accepted_bytes_per_ns;
    }
    const auto n_tenants = static_cast<double>(tenant_delivered_.size());
    result_.tenant_jain_fairness_index =
        t_sum_sq > 0.0 ? t_sum * t_sum / (n_tenants * t_sum_sq) : 0.0;
  }

  if (traffic_.config().kind == TrafficKind::kCentric) {
    result_.victim_packets = victim_window_.count();
    result_.hot_packets = hot_window_.count();
    result_.victim_avg_latency_ns = victim_window_.mean();
    result_.victim_p99_latency_ns = victim_hist_.quantile(0.99);
    result_.hot_avg_latency_ns = hot_window_.mean();
    result_.hot_p99_latency_ns = hot_hist_.quantile(0.99);
  }
  result_.cc = collect_cc();

  if (sm_ != nullptr) {
    const SmStats& sm = sm_->stats();
    result_.sm_traps = sm.traps_received;
    result_.sm_sweeps = sm.sweeps_completed;
    result_.sm_entries_programmed = sm.entries_programmed;
    result_.sm_switches_programmed = sm.switches_programmed;
    result_.sm_converged_ns = sm.converged_at;
    if (result_.first_fault_ns >= 0 &&
        sm.converged_at >= result_.first_fault_ns) {
      result_.reconvergence_ns = sm.converged_at - result_.first_fault_ns;
    }
  }
  return result_;
}

std::string Simulation::stall_report() const {
  std::ostringstream os;
  const Fabric& g = subnet_->fabric().fabric();
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      const std::size_t fp = port_index(dev, port);
      if (!port_connected_[fp]) continue;
      for (std::size_t vl = 0; vl < vls_; ++vl) {
        const std::size_t vs = vl_index(fp, vl);
        const PacketQueue& queue = vl_q_[vs];
        const PacketQueue& waitq = vl_wait_[vs];
        if (queue.empty() && waitq.empty()) continue;
        os << g.device(dev).name() << " port " << int(port) << " vl " << vl
           << ": out_q=" << queue.size
           << " started=" << (vl_tx_pkt_[vs] != kInvalidPacket)
           << " credits=" << vl_credits_[vs] << " waitq=" << waitq.size
           << " busy_until=" << port_busy_until_[fp]
           << " retry=" << bool(port_retry_[fp]) << "\n";
        for (PacketId pkt = queue.head; pkt != kInvalidPacket;
             pkt = pool_.next_of(pkt)) {
          os << "    out pkt " << pkt << " src=" << pool_.get(pkt).src
             << " dst=" << pool_.get(pkt).dst
             << " dlid=" << pool_.get(pkt).dlid
             << " in_port=" << int(rt_[pkt].in_port) << "\n";
        }
        for (PacketId pkt = waitq.head; pkt != kInvalidPacket;
             pkt = pool_.next_of(pkt)) {
          os << "    wait pkt " << pkt << " src=" << pool_.get(pkt).src
             << " dst=" << pool_.get(pkt).dst
             << " dlid=" << pool_.get(pkt).dlid
             << " in_port=" << int(rt_[pkt].in_port) << "\n";
        }
      }
    }
  }
  return os.str();
}

}  // namespace mlid

// Discrete-event core: deterministic time-ordered event queues.
//
// Ties on the timestamp are broken by insertion sequence number, which makes
// every simulation run bit-reproducible for a given seed (asserted by the
// test suite).  Two interchangeable implementations sit behind the EventQueue
// facade, selected by SimConfig::event_queue:
//
//   * HeapEventQueue   -- a std::priority_queue binary heap, O(log n) per
//     push/pop.  The reference implementation.
//   * LadderEventQueue -- a calendar/ladder queue: an array of FIFO epoch
//     buckets covering the near time horizon plus a sorted overflow tier for
//     far-future events, amortized O(1) per event.  Pop order is *exactly*
//     the heap's (time, seq) total order -- every bucket is sorted once when
//     its epoch becomes current, and late pushes into the active epoch are
//     merge-inserted ahead of the drain cursor -- so the two queues are
//     bit-interchangeable (asserted by sim/event_queue_test.cpp and
//     sim/queue_parity_test.cpp).
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <queue>
#include <string_view>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "ib/packet.hpp"

namespace mlid {

enum class EventKind : std::uint8_t {
  kGenerate,      ///< node creates the next packet (dev = node)
  kHeadArrive,    ///< packet head reaches (dev, port, vl)
  kRouted,        ///< routing delay elapsed; request an output
  kTailOut,       ///< packet tail finished leaving (dev, port, vl)
  kCreditArrive,  ///< one credit returned to out port (dev, port, vl)
  kTryTx,         ///< re-attempt link transmission on out port (dev, port)
  kDeliver,       ///< packet tail fully received by destination node
  // --- live Subnet Manager (only scheduled when an SM is attached) ----------
  kLinkFail,      ///< the link leaving (dev, port) dies now
  kLinkRecover,   ///< reconnect (dev, port) <-> (pkt as DeviceId, vl as PortId)
  kTrap,          ///< a trap from (dev, port) reaches the SM
  kSweepDone,     ///< the SM's re-sweep completes; compute + schedule programs
  kLftProgram,    ///< apply plan entry (dev as plan index, pkt as epoch)
  // --- congestion control (only scheduled when SimConfig::cc is enabled) ----
  kBecnArrive,    ///< a BECN reaches source HCA `dev` (pkt = destination node)
  kCctTimer,      ///< HCA `dev`'s CCT recovery-timer tick
  kCcRelease,     ///< HCA `dev`'s injection gate opens; retry source pulls
};

[[nodiscard]] constexpr std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kGenerate:
      return "generate";
    case EventKind::kHeadArrive:
      return "head-arrive";
    case EventKind::kRouted:
      return "routed";
    case EventKind::kTailOut:
      return "tail-out";
    case EventKind::kCreditArrive:
      return "credit-arrive";
    case EventKind::kTryTx:
      return "try-tx";
    case EventKind::kDeliver:
      return "deliver";
    case EventKind::kLinkFail:
      return "link-fail";
    case EventKind::kLinkRecover:
      return "link-recover";
    case EventKind::kTrap:
      return "trap";
    case EventKind::kSweepDone:
      return "sweep-done";
    case EventKind::kLftProgram:
      return "lft-program";
    case EventKind::kBecnArrive:
      return "becn-arrive";
    case EventKind::kCctTimer:
      return "cct-timer";
    case EventKind::kCcRelease:
      return "cc-release";
  }
  return "?";
}

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total-orders simultaneous events
  /// Content-derived tie-break key, independent of which queue scheduled the
  /// event (packet generation order for data events, payload for BECNs).
  /// Only consulted under EventOrder::kCanonical.
  std::uint64_t corder = 0;
  EventKind kind = EventKind::kGenerate;
  DeviceId dev = kInvalidDevice;
  PacketId pkt = kInvalidPacket;
  PortId port = 0;
  VlId vl = 0;
};

/// Tie-break rule for events at the same timestamp.
enum class EventOrder : std::uint8_t {
  /// Insertion order (seq).  The historical rule: deterministic for a single
  /// sequential queue, and the default everywhere.
  kFifo,
  /// Content key (kind, dev, port, vl, corder) before seq.  Makes the
  /// dispatch order at each timestamp a pure function of *what* is pending,
  /// not of which queue (or shard) scheduled it first -- the property the
  /// sharded engine needs to stay bit-identical to its sequential oracle.
  /// Events with fully equal content keys are commutative (e.g. two credit
  /// returns to the same (port, VL)), so seq as the final tie-break never
  /// changes results.
  kCanonical,
};

[[nodiscard]] constexpr std::string_view to_string(EventOrder order) {
  return order == EventOrder::kFifo ? "fifo" : "canonical";
}

/// Which pending-event structure the engine runs on.
enum class EventQueueKind : std::uint8_t {
  kHeap,    ///< binary heap (reference; O(log n) per event)
  kLadder,  ///< ladder/calendar queue (default; amortized O(1) per event)
};

[[nodiscard]] constexpr std::string_view to_string(EventQueueKind kind) {
  return kind == EventQueueKind::kHeap ? "heap" : "ladder";
}

/// Parses "heap" / "ladder" (the --event-queue CLI values); nullopt on
/// anything else.
[[nodiscard]] inline std::optional<EventQueueKind> event_queue_from_string(
    std::string_view text) {
  if (text == "heap") return EventQueueKind::kHeap;
  if (text == "ladder") return EventQueueKind::kLadder;
  return std::nullopt;
}

/// Queue internals surfaced through the telemetry layer into BENCH_*.json.
/// These describe *how* the run was computed, never *what* it computed: for
/// a given event stream the pop order is identical across kinds, so none of
/// these feed back into simulation results.
struct EventQueueStats {
  EventQueueKind kind = EventQueueKind::kLadder;
  std::uint64_t events_scheduled = 0;  ///< pushes (lifetime)
  std::uint64_t events_processed = 0;  ///< pops (lifetime)
  // --- ladder internals (zero when kind == kHeap) ---------------------------
  std::uint32_t buckets = 0;             ///< current ring size
  SimTime bucket_width_ns = 0;           ///< simulated time per bucket
  std::uint32_t resizes = 0;             ///< ring doublings under load
  std::uint64_t overflow_pushes = 0;     ///< events that missed the horizon
  std::uint64_t max_overflow_depth = 0;  ///< deepest the overflow tier got
  std::uint64_t max_bucket_events = 0;   ///< largest single epoch drain

  friend bool operator==(const EventQueueStats&,
                         const EventQueueStats&) = default;
};

namespace detail {
/// Strict-weak "earlier" order on (time, seq); seq is unique, so this is a
/// total order.
struct EarlierEvent {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }
};

/// Runtime-selected strict-weak "earlier" order: (time, seq) under kFifo,
/// (time, kind, dev, port, vl, corder, seq) under kCanonical.  seq is unique
/// either way, so both are total orders.
struct EventCompare {
  EventOrder order = EventOrder::kFifo;

  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.time != b.time) return a.time < b.time;
    if (order == EventOrder::kCanonical) {
      if (a.kind != b.kind) return a.kind < b.kind;
      if (a.dev != b.dev) return a.dev < b.dev;
      if (a.port != b.port) return a.port < b.port;
      if (a.vl != b.vl) return a.vl < b.vl;
      if (a.corder != b.corder) return a.corder < b.corder;
    }
    return a.seq < b.seq;
  }
};
}  // namespace detail

/// The original binary-heap queue, kept as the bit-identical reference the
/// ladder queue is validated (and raced) against.
class HeapEventQueue {
 public:
  explicit HeapEventQueue(EventOrder order = EventOrder::kFifo)
      : heap_(Later{detail::EventCompare{order}}) {}

  void push(const Event& e) { heap_.push(e); }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    Event e = heap_.top();
    heap_.pop();
    return e;
  }

 private:
  struct Later {
    detail::EventCompare earlier;
    bool operator()(const Event& a, const Event& b) const noexcept {
      return earlier(b, a);
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
};

/// Ladder/calendar queue.  Simulated time is divided into fixed-width
/// epochs; an epoch's bucket lives in a power-of-two ring covering the
/// near horizon [current epoch, current epoch + buckets).  Pushes inside
/// the horizon append to their epoch's bucket (O(1)); pushes beyond it go
/// to a heap-ordered overflow tier.  When an epoch becomes current its
/// bucket is sorted once by (time, seq) and drained through a cursor;
/// events scheduled *into the active epoch* while it drains (common: a
/// handler scheduling work a few ns ahead) are merge-inserted beyond the
/// cursor, preserving the exact total order.  Before any epoch drains,
/// overflow events that the advancing horizon now covers are pulled into
/// their buckets, so the tiers can never disagree about order.  The ring
/// doubles (a "resize") when occupancy crowds the buckets.
class LadderEventQueue {
 public:
  /// 64 ns buckets: finer than the engine's dominant deltas (routing 100 ns,
  /// wire 256 ns) so an epoch drain stays small, coarse enough that the
  /// default ring covers a 16 us horizon.
  static constexpr int kWidthLog2 = 6;
  static constexpr std::size_t kDefaultBuckets = 256;  // power of two
  static constexpr std::size_t kMaxBuckets = std::size_t{1} << 20;
  /// Ring doubles when it averages more than this many events per bucket.
  static constexpr std::size_t kResizeLoad = 8;

  explicit LadderEventQueue(EventOrder order = EventOrder::kFifo)
      : earlier_{order},
        overflow_(LaterOverflow{detail::EventCompare{order}}),
        ring_(kDefaultBuckets) {}

  void push(const Event& e) {
    ++size_;
    const std::uint64_t ep = epoch_of(e.time);
    if (draining_ && ep <= cur_epoch_) {
      // Arrival into (or, after a peek advanced the horizon, before) the
      // active epoch: merge beyond the drain cursor.  e.seq is larger than
      // every queued seq, so upper_bound lands it after all already-pending
      // events with the same order key.  An insertion point *behind* the
      // cursor cannot arise under kFifo; under kCanonical a same-timestamp
      // event with a smaller content key clamps to the cursor, which is
      // exactly where a heap would pop it next.
      const auto it =
          std::upper_bound(drain_.begin() + static_cast<std::ptrdiff_t>(pos_),
                           drain_.end(), e, earlier_);
      drain_.insert(it, e);
      return;
    }
    MLID_ASSERT(ep >= cur_epoch_, "event epoch behind the drained horizon");
    if (ep - cur_epoch_ < ring_.size()) {
      ring_[ep & (ring_.size() - 1)].push_back(e);
      ++ring_count_;
      if (ring_count_ > ring_.size() * kResizeLoad &&
          ring_.size() < kMaxBuckets) {
        grow();
      }
    } else {
      overflow_.push(e);
      ++overflow_pushes_;
      max_overflow_depth_ =
          std::max(max_overflow_depth_, static_cast<std::uint64_t>(
                                            overflow_.size()));
    }
  }

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  /// The globally next event, or nullptr when empty.  Non-const: reaching
  /// the next epoch sorts its bucket into the drain run.
  [[nodiscard]] const Event* peek() {
    if (size_ == 0) return nullptr;
    prepare();
    return &drain_[pos_];
  }

  Event pop() {
    prepare();
    --size_;
    return drain_[pos_++];
  }

  // --- internals telemetry ----------------------------------------------------
  [[nodiscard]] std::uint32_t buckets() const noexcept {
    return static_cast<std::uint32_t>(ring_.size());
  }
  [[nodiscard]] SimTime bucket_width_ns() const noexcept {
    return SimTime{1} << kWidthLog2;
  }
  [[nodiscard]] std::uint32_t resizes() const noexcept { return resizes_; }
  [[nodiscard]] std::uint64_t overflow_pushes() const noexcept {
    return overflow_pushes_;
  }
  [[nodiscard]] std::uint64_t max_overflow_depth() const noexcept {
    return max_overflow_depth_;
  }
  [[nodiscard]] std::uint64_t max_bucket_events() const noexcept {
    return max_bucket_events_;
  }

 private:
  [[nodiscard]] static std::uint64_t epoch_of(SimTime t) noexcept {
    return static_cast<std::uint64_t>(t) >> kWidthLog2;
  }

  /// Ensures drain_[pos_] is the globally next event.  Pre: size_ > 0.
  void prepare() {
    if (pos_ < drain_.size()) return;
    drain_.clear();
    pos_ = 0;
    // Next epoch holding events: the nearest non-empty ring bucket or the
    // overflow front, whichever is earlier.  The scan is bounded by the
    // ring size and in practice by the engine's short event horizon.
    std::uint64_t next = kNoEpoch;
    if (ring_count_ > 0) {
      std::uint64_t ep = draining_ ? cur_epoch_ + 1 : cur_epoch_;
      while (ring_[ep & (ring_.size() - 1)].empty()) ++ep;
      next = ep;
    }
    if (!overflow_.empty()) {
      next = std::min(next, epoch_of(overflow_.top().time));
    }
    MLID_ASSERT(next != kNoEpoch, "ladder lost track of its events");
    cur_epoch_ = next;
    draining_ = true;
    // The horizon moved: any overflow event it now covers belongs in a
    // bucket (possibly the one about to drain).
    while (!overflow_.empty() &&
           epoch_of(overflow_.top().time) - cur_epoch_ < ring_.size()) {
      const Event& e = overflow_.top();
      ring_[epoch_of(e.time) & (ring_.size() - 1)].push_back(e);
      overflow_.pop();
      ++ring_count_;
    }
    auto& bucket = ring_[cur_epoch_ & (ring_.size() - 1)];
    drain_.swap(bucket);
    bucket.clear();
    ring_count_ -= drain_.size();
    std::sort(drain_.begin(), drain_.end(), earlier_);
    max_bucket_events_ =
        std::max(max_bucket_events_, static_cast<std::uint64_t>(drain_.size()));
  }

  void grow() {
    std::vector<std::vector<Event>> wider(ring_.size() * 2);
    for (auto& bucket : ring_) {
      for (const Event& e : bucket) {
        wider[epoch_of(e.time) & (wider.size() - 1)].push_back(e);
      }
    }
    ring_.swap(wider);
    ++resizes_;
  }

  static constexpr std::uint64_t kNoEpoch =
      std::numeric_limits<std::uint64_t>::max();

  struct LaterOverflow {
    detail::EventCompare earlier;
    bool operator()(const Event& a, const Event& b) const noexcept {
      return earlier(b, a);
    }
  };

  detail::EventCompare earlier_;
  std::priority_queue<Event, std::vector<Event>, LaterOverflow> overflow_;
  std::vector<std::vector<Event>> ring_;  ///< epoch e -> ring_[e & mask]
  std::vector<Event> drain_;  ///< current epoch, sorted; pos_ is the cursor
  std::size_t pos_ = 0;
  std::uint64_t cur_epoch_ = 0;
  bool draining_ = false;   ///< cur_epoch_'s bucket has been claimed by drain_
  std::size_t size_ = 0;    ///< all tiers
  std::size_t ring_count_ = 0;  ///< events in ring buckets (not drain/overflow)
  std::uint32_t resizes_ = 0;
  std::uint64_t overflow_pushes_ = 0;
  std::uint64_t max_overflow_depth_ = 0;
  std::uint64_t max_bucket_events_ = 0;
};

/// The engine's pending-event set.  Owns the sequence numbering, the
/// monotonic-time contract and the scheduled/processed counters; delegates
/// ordering to the implementation SimConfig::event_queue selects.
class EventQueue {
 public:
  explicit EventQueue(EventQueueKind kind = EventQueueKind::kLadder,
                      EventOrder order = EventOrder::kFifo)
      : kind_(kind), order_(order), heap_(order), ladder_(order) {}

  void push(SimTime time, EventKind kind, DeviceId dev, PortId port = 0,
            VlId vl = 0, PacketId pkt = kInvalidPacket,
            std::uint64_t corder = 0) {
    MLID_ASSERT(time >= last_popped_, "scheduling into the past");
    const Event e{time, next_seq_++, corder, kind, dev, pkt, port, vl};
    if (kind_ == EventQueueKind::kHeap) {
      heap_.push(e);
    } else {
      ladder_.push(e);
    }
  }

  [[nodiscard]] bool empty() const noexcept {
    return kind_ == EventQueueKind::kHeap ? heap_.empty() : ladder_.empty();
  }
  [[nodiscard]] std::size_t size() const noexcept {
    return kind_ == EventQueueKind::kHeap ? heap_.size() : ladder_.size();
  }

  /// The next event without removing it; nullptr when empty.
  [[nodiscard]] const Event* peek() {
    if (kind_ == EventQueueKind::kHeap) {
      return heap_.empty() ? nullptr : &heap_.top();
    }
    return ladder_.peek();
  }

  Event pop() {
    MLID_EXPECT(!empty(), "popping an empty event queue");
    const Event e =
        kind_ == EventQueueKind::kHeap ? heap_.pop() : ladder_.pop();
    last_popped_ = e.time;
    ++pops_;
    return e;
  }

  /// The engine's main loop: dispatch every event strictly before `end`,
  /// including events the handlers schedule along the way.  On the ladder
  /// this runs down sorted bucket drains instead of re-heapifying per event.
  template <typename Fn>
  void drain_until(SimTime end, Fn&& handle) {
    while (const Event* e = peek()) {
      if (e->time >= end) break;
      handle(pop());
    }
  }

  /// Events pushed over the queue's lifetime.
  [[nodiscard]] std::uint64_t events_scheduled() const noexcept {
    return next_seq_;
  }

  /// Events actually popped (dispatched).  Strictly less than
  /// events_scheduled() whenever the run ends with work still queued --
  /// the distinction the events/sec manifests report on.
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return pops_;
  }

  [[nodiscard]] EventQueueKind kind() const noexcept { return kind_; }
  [[nodiscard]] EventOrder order() const noexcept { return order_; }

  [[nodiscard]] EventQueueStats stats() const noexcept {
    EventQueueStats s;
    s.kind = kind_;
    s.events_scheduled = next_seq_;
    s.events_processed = pops_;
    if (kind_ == EventQueueKind::kLadder) {
      s.buckets = ladder_.buckets();
      s.bucket_width_ns = ladder_.bucket_width_ns();
      s.resizes = ladder_.resizes();
      s.overflow_pushes = ladder_.overflow_pushes();
      s.max_overflow_depth = ladder_.max_overflow_depth();
      s.max_bucket_events = ladder_.max_bucket_events();
    }
    return s;
  }

 private:
  EventQueueKind kind_;
  EventOrder order_;
  HeapEventQueue heap_;
  LadderEventQueue ladder_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t pops_ = 0;
  SimTime last_popped_ = 0;
};

}  // namespace mlid

// Discrete-event core: a deterministic time-ordered event queue.
//
// Ties on the timestamp are broken by insertion sequence number, which makes
// every simulation run bit-reproducible for a given seed (asserted by the
// test suite).
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"
#include "ib/packet.hpp"

namespace mlid {

enum class EventKind : std::uint8_t {
  kGenerate,      ///< node creates the next packet (dev = node)
  kHeadArrive,    ///< packet head reaches (dev, port, vl)
  kRouted,        ///< routing delay elapsed; request an output
  kTailOut,       ///< packet tail finished leaving (dev, port, vl)
  kCreditArrive,  ///< one credit returned to out port (dev, port, vl)
  kTryTx,         ///< re-attempt link transmission on out port (dev, port)
  kDeliver,       ///< packet tail fully received by destination node
  // --- live Subnet Manager (only scheduled when an SM is attached) ----------
  kLinkFail,      ///< the link leaving (dev, port) dies now
  kLinkRecover,   ///< reconnect (dev, port) <-> (pkt as DeviceId, vl as PortId)
  kTrap,          ///< a trap from (dev, port) reaches the SM
  kSweepDone,     ///< the SM's re-sweep completes; compute + schedule programs
  kLftProgram,    ///< apply plan entry (dev as plan index, pkt as epoch)
};

struct Event {
  SimTime time = 0;
  std::uint64_t seq = 0;  ///< insertion order; total-orders simultaneous events
  EventKind kind = EventKind::kGenerate;
  DeviceId dev = kInvalidDevice;
  PacketId pkt = kInvalidPacket;
  PortId port = 0;
  VlId vl = 0;
};

class EventQueue {
 public:
  void push(SimTime time, EventKind kind, DeviceId dev, PortId port = 0,
            VlId vl = 0, PacketId pkt = kInvalidPacket) {
    MLID_ASSERT(time >= last_popped_, "scheduling into the past");
    heap_.push(Event{time, next_seq_++, kind, dev, pkt, port, vl});
  }

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }
  [[nodiscard]] const Event& top() const { return heap_.top(); }

  Event pop() {
    MLID_EXPECT(!heap_.empty(), "popping an empty event queue");
    Event e = heap_.top();
    heap_.pop();
    last_popped_ = e.time;
    return e;
  }

  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return next_seq_;
  }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  SimTime last_popped_ = 0;
};

}  // namespace mlid

// Simulation configuration: timing constants, buffering, virtual lanes and
// measurement windows.
//
// The paper's absolute numbers were lost to OCR; the defaults below follow
// the IBA spec and contemporaneous studies (see DESIGN.md "Substitutions"):
// 100 ns routing/arbitration per switch, 20 ns wire flying time, 1 ns per
// byte (4X link), 256-byte packets, one-packet-deep per-VL buffers.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/config.hpp"
#include "common/expect.hpp"
#include "common/types.hpp"
#include "routing/adaptive.hpp"
#include "sim/event_queue.hpp"

namespace mlid {

/// How endnodes map packets onto virtual lanes.
enum class VlPolicy : std::uint8_t {
  kRandom,        ///< uniform random per packet (default; spreads hot flows)
  kBySource,      ///< vl = src mod VLs (per-source affinity)
  kByDestination, ///< vl = dst mod VLs
  kFixed0,        ///< everything on VL0 (degenerates to a single lane)
};

/// Multi-tenant partitioning: carves the endnode space into `count`
/// contiguous, equal-sized blocks and (optionally) pins each tenant's
/// traffic to its own virtual lane.  `count == 0` disables the subsystem
/// entirely -- no per-tenant accounting, no VL override -- and every run is
/// byte-identical to the pre-tenant engine (asserted by
/// sim/scenario_parity_test.cpp).  Tenant of node i is `i * count / N`.
struct TenantConfig {
  int count = 0;          ///< number of tenants; 0 = subsystem off
  /// Pin each tenant's packets to VL = tenant % num_vls (after the normal
  /// VlPolicy draw, which still happens so the RNG stream stays aligned
  /// with the unpinned run -- same pattern as VlMapPolicy remaps).
  bool bind_vls = false;

  void validate(int num_nodes) const {
    MLID_EXPECT(count >= 0, "tenant count cannot be negative");
    if (count > 0 && num_nodes > 0) {
      MLID_EXPECT(count <= num_nodes, "more tenants than endnodes");
    }
  }
};

struct SimConfig {
  // --- timing (nanoseconds) -------------------------------------------------
  SimTime routing_delay_ns = 100;  ///< LFT lookup + arbitration + startup
  SimTime flying_time_ns = 20;     ///< head propagation per hop (wire)
  SimTime byte_time_ns = 1;        ///< serialization time per byte

  // --- packets and buffers --------------------------------------------------
  std::uint32_t packet_bytes = 256;
  int num_vls = 1;            ///< data virtual lanes (1, 2 or 4 in the paper)
  int in_buf_pkts = 1;        ///< input buffer depth per (port, VL)
  int out_buf_pkts = 1;       ///< output buffer depth per (port, VL)
  VlPolicy vl_policy = VlPolicy::kRandom;

  /// Forwarding / VL-map policy pair, by registry name (see
  /// routing/adaptive.hpp).  The defaults ("deterministic", "none") take
  /// the historical hot path and are byte-identical to the pre-policy
  /// engine; "adaptive" switches the up-phase to credit/occupancy-keyed
  /// port selection and the non-identity VL maps remap packets onto
  /// destination- or flow-keyed lanes at the HCA.
  PolicyConfig policy;

  /// IBA VL-arbitration weights (packets served per round before yielding).
  /// Empty = equal-weight round-robin.  When set, must have one positive
  /// entry per VL.
  std::vector<int> vl_weights;

  // --- measurement ----------------------------------------------------------
  SimTime warmup_ns = 20'000;
  SimTime measure_ns = 80'000;
  std::uint64_t seed = 1;

  /// Collect the extended telemetry (log2 latency histograms, per-link and
  /// per-VL counters, LinkSummary).  Pure observability: it adds counter
  /// increments to the hot path but never schedules events or draws random
  /// numbers, so turning it off changes nothing except leaving SimResult's
  /// telemetry block empty (asserted by sim/telemetry_test.cpp).
  bool telemetry = true;

  /// Record full event timelines for up to N generated packets
  /// (0 = tracing off; see Simulation::traces()).
  std::uint32_t trace_packets = 0;

  /// Trace every k-th generated packet until trace_packets records exist.
  /// Stride 1 keeps the historical first-N behaviour; a larger stride
  /// spreads the records across the run so traces cover steady state
  /// instead of only the cold-start transient.
  std::uint32_t trace_stride = 1;

  /// Interval sampler cadence (0 = off; open-loop mode only).  Every
  /// sample_interval_ns of simulated time the engine snapshots delivery /
  /// generation / drop deltas, in-flight and queued packet counts,
  /// credit-stall and CCT gauges into SimResult::timeline.  Sampling is
  /// pure observation -- no events, no RNG draws -- so results stay
  /// bit-identical with the sampler on or off (sim/timeline_test.cpp).
  SimTime sample_interval_ns = 0;

  /// Timeline length bound: reaching it merges adjacent sample pairs and
  /// doubles the effective interval (see Timeline::append), keeping
  /// BENCH_*.json bounded on arbitrarily long runs.
  std::uint32_t timeline_max_samples = 512;

  /// Per-device flight recorder: keep the last K dispatched engine events
  /// per device (0 = off) and freeze the dropping device's ring on the
  /// first drop, making the drop-reason taxonomy debuggable.  Passive like
  /// the sampler.
  std::uint32_t flight_recorder_depth = 0;

  /// Record control-plane events (faults, SM traps/sweeps/programs, BECN /
  /// CCT activity) into Simulation::control_trace() for the chrome-trace
  /// exporter.  Passive like the sampler.
  bool trace_control = false;

  /// Engine self-profiling (obs/profile.hpp): wall-time phase breakdown of
  /// the *simulator* -- event processing vs barrier wait vs mailbox drain
  /// vs control steps, window/imbalance/queue-op statistics -- into
  /// SimResult::profile.  Reads host clocks and existing counters only;
  /// never schedules events or draws random numbers, so results stay
  /// byte-identical with profiling on or off for any shard/thread count
  /// (tests/obs/profile_parity_test.cpp).
  bool profile = false;

  /// Pending-event structure the engine runs on.  The ladder queue is the
  /// default hot path; the heap is the O(log n) reference kept one flag away
  /// for bit-identity checks (asserted by sim/queue_parity_test.cpp) and
  /// perf comparisons.  The choice never alters results, only speed.
  EventQueueKind event_queue = EventQueueKind::kLadder;

  /// Tie-break rule for simultaneous events.  kFifo (default) keeps the
  /// historical insertion-order dispatch; kCanonical orders ties by content
  /// key instead, making dispatch independent of which queue scheduled each
  /// event.  Both are valid serializations of the same event set; results
  /// can differ only in same-timestamp tie order.  The sharded engine
  /// (parallel/sharded.hpp) forces kCanonical and is asserted bit-identical
  /// to a sequential kCanonical run.
  EventOrder event_order = EventOrder::kFifo;

  /// Congestion control (IBA CCA): FECN marking at switches, BECN echo from
  /// destinations, CCT-indexed injection throttling at sources.  Off by
  /// default; with cc.enabled == false every run is bit-identical to the
  /// pre-CC engine (asserted by sim/cc_parity_test.cpp).
  CcConfig cc;

  /// Multi-tenant partitioning (off by default; see TenantConfig).  The
  /// scenario subsystem's `multi-tenant` scenario turns this on together
  /// with TrafficConfig::tenants so traffic, VL isolation and the
  /// per-tenant SimResult block all agree on the same node blocks.
  TenantConfig tenants;

  [[nodiscard]] SimTime end_time() const noexcept {
    return warmup_ns + measure_ns;
  }

  /// Serialization time of one full packet.
  [[nodiscard]] SimTime packet_wire_ns() const noexcept {
    return static_cast<SimTime>(packet_bytes) * byte_time_ns;
  }

  void validate() const {
    MLID_EXPECT(routing_delay_ns >= 0 && flying_time_ns >= 0 &&
                    byte_time_ns >= 1,
                "timing constants out of range");
    MLID_EXPECT(packet_bytes >= 1, "empty packets are not modelled");
    MLID_EXPECT(num_vls >= 1 && num_vls <= 15,
                "IBA supports at most 15 data VLs");
    if (!vl_weights.empty()) {
      MLID_EXPECT(static_cast<int>(vl_weights.size()) == num_vls,
                  "need one VL-arbitration weight per VL");
      for (int w : vl_weights) {
        MLID_EXPECT(w >= 1, "VL-arbitration weights must be positive");
      }
    }
    MLID_EXPECT(in_buf_pkts >= 1 && out_buf_pkts >= 1,
                "buffers must hold at least one packet");
    policy.validate();
    MLID_EXPECT(warmup_ns >= 0 && measure_ns > 0,
                "measurement window must be non-empty");
    MLID_EXPECT(trace_stride >= 1, "trace stride must be at least 1");
    MLID_EXPECT(sample_interval_ns >= 0, "sampler interval cannot be negative");
    if (sample_interval_ns > 0) {
      MLID_EXPECT(timeline_max_samples >= 2,
                  "timeline cap must hold at least two samples");
    }
    cc.validate();
    tenants.validate(/*num_nodes=*/0);  // count bound re-checked per fabric
  }
};

}  // namespace mlid

// Closed-loop (burst) workloads: explicit message lists with MTU
// segmentation, the cluster-computing scenarios from the paper's
// introduction (parallel applications exchanging messages, not open-loop
// packet streams).  Simulation::run_to_completion() drains a workload and
// reports its makespan and message latencies.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/expect.hpp"
#include "common/rng.hpp"
#include "common/types.hpp"
#include "sim/metrics.hpp"

namespace mlid {

/// One application-level message; per-source order is the injection order.
struct MessageSpec {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  std::uint32_t bytes = 0;
};

/// Result of draining a burst workload.
struct BurstResult {
  SimTime makespan_ns = 0;  ///< first injection attempt to last delivery
  double avg_message_latency_ns = 0.0;
  double max_message_latency_ns = 0.0;
  std::uint64_t messages = 0;
  std::uint64_t packets = 0;
  std::uint64_t total_bytes = 0;
  /// A burst drains completely, so processed == scheduled here; both are
  /// reported for symmetry with SimResult.
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;

  // --- congestion control (populated only when SimConfig::cc is enabled) -----
  CcSummary cc;

  // --- telemetry (populated only when SimConfig::telemetry is on) ------------
  bool telemetry = false;
  double p50_message_latency_ns = 0.0;
  double p95_message_latency_ns = 0.0;
  double p99_message_latency_ns = 0.0;
  Log2Histogram message_latency_hist;  ///< completion time per message
  /// Per-link roll-up over the burst; utilization is relative to the
  /// makespan (not a measurement window, which bursts do not have).
  LinkSummary link_summary;

  /// Aggregate goodput: total payload bytes / makespan.
  [[nodiscard]] double aggregate_bytes_per_ns() const noexcept {
    return makespan_ns > 0
               ? static_cast<double>(total_bytes) /
                     static_cast<double>(makespan_ns)
               : 0.0;
  }
};

// --- canonical collective exchange patterns ---------------------------------

/// Every node sends `bytes_per_pair` to every other node (MPI_Alltoall's
/// traffic).  Send order is rotated per source (src sends first to src+1)
/// so the pattern does not start synchronized on one destination.
std::vector<MessageSpec> all_to_all_personalized(std::uint32_t num_nodes,
                                                 std::uint32_t bytes_per_pair);

/// Every node sends one message to `root` (MPI_Gather's traffic).
std::vector<MessageSpec> gather_to(std::uint32_t num_nodes, NodeId root,
                                   std::uint32_t bytes);

/// `root` sends a personalized message to every other node (MPI_Scatter).
std::vector<MessageSpec> scatter_from(std::uint32_t num_nodes, NodeId root,
                                      std::uint32_t bytes);

/// Node i sends one message to (i + shift) mod N (ring/halo exchange step).
std::vector<MessageSpec> ring_shift(std::uint32_t num_nodes, std::uint32_t shift,
                                    std::uint32_t bytes);

/// A seeded random permutation exchange (one message per node).
std::vector<MessageSpec> random_permutation(std::uint32_t num_nodes,
                                            std::uint32_t bytes,
                                            std::uint64_t seed);

/// Parameters for the datacenter-style skewed flow-size mix: most flows are
/// short ("mice"), a small fraction are long ("elephants") that carry most
/// of the bytes.  Defaults give a 10:1 count skew and ~100:1 size skew.
struct MiceElephantsConfig {
  std::uint32_t flows_per_node = 8;     ///< messages each node originates
  double elephant_fraction = 0.10;      ///< probability a flow is an elephant
  std::uint32_t mouse_bytes = 512;      ///< short-flow payload
  std::uint32_t elephant_bytes = 65536; ///< long-flow payload
};

/// Skewed flow-size mix on the closed-loop path: every node originates
/// `flows_per_node` messages to uniformly drawn other nodes; each flow is
/// independently an elephant with `elephant_fraction` probability.  Flow
/// sizes and destinations come from per-source SplitMix64-derived streams,
/// so the workload is deterministic under a fixed seed and independent of
/// node-count-preserving config changes (same contract as TrafficPattern).
std::vector<MessageSpec> mice_elephants(std::uint32_t num_nodes,
                                        const MiceElephantsConfig& config,
                                        std::uint64_t seed);

/// Parse a message trace: one "src,dst,bytes" triple per line; blank lines
/// and lines starting with '#' are ignored.  Throws ContractViolation on
/// malformed input (with the offending line number).
std::vector<MessageSpec> parse_message_csv(std::istream& in);

}  // namespace mlid

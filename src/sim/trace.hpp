// Packet tracing: optional per-packet event timelines and per-link load
// counters, for debugging and for the examples' link-level analyses.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace mlid {

enum class TracePoint : std::uint8_t {
  kGenerated,   ///< entered the source queue
  kInjected,    ///< head left the source NIC onto the first link
  kHeadArrive,  ///< head reached an input port
  kForwarded,   ///< head left a switch output port
  kDelivered,   ///< tail fully received by the destination
  kDropped,     ///< lost to a dead link or a stale forwarding entry
};

[[nodiscard]] std::string to_string(TracePoint point);

/// Why a packet died -- the taxonomy SimResult's drop counters aggregate,
/// carried on the kDropped trace event so a traced packet's timeline says
/// what killed it, not just that it stopped.
enum class DropReason : std::uint8_t {
  kNone,         ///< not a drop (every non-kDropped event)
  kUnroutable,   ///< no LFT entry for the DLID
  kDeadLink,     ///< on or behind a link at the instant it failed
  kConvergence,  ///< stale LFT entry pointing at a dead port
};

[[nodiscard]] std::string_view to_string(DropReason reason);

struct TraceEvent {
  SimTime time = 0;
  TracePoint point = TracePoint::kGenerated;
  DeviceId dev = kInvalidDevice;
  PortId port = 0;
  VlId vl = 0;
  DropReason drop = DropReason::kNone;  ///< set only on kDropped events

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Timeline of one traced packet.  Up to SimConfig::trace_packets records
/// are collected, taking every SimConfig::trace_stride-th generated packet
/// (stride 1 = the first N packets).
struct PacketTraceRecord {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Lid dlid = kInvalidLid;
  std::vector<TraceEvent> events;

  friend bool operator==(const PacketTraceRecord&,
                         const PacketTraceRecord&) = default;
};

/// Multi-line human-readable rendering of one trace record.
std::string to_string(const PacketTraceRecord& record);

/// Per-directed-link transmission counters collected by every run.
struct LinkLoad {
  DeviceId dev = kInvalidDevice;
  PortId port = 0;
  std::uint64_t packets_tx = 0;
  double busy_fraction = 0.0;  ///< of the measurement window
};

/// Per-VL slice of one directed link's telemetry counters (whole run).
struct VlLinkStats {
  std::uint64_t packets_tx = 0;
  std::uint64_t bytes_tx = 0;
  /// Time this VL's head packet sat ready on an idle link with zero
  /// downstream credits -- the link-level flow-control bubble.
  SimTime credit_stall_ns = 0;
  /// Deepest output backlog (granted queue + crossbar waiters) seen.
  std::uint32_t peak_queue_pkts = 0;
  /// FECN marks stamped at this (link, VL) output (congestion control on).
  std::uint64_t fecn_marks = 0;
};

/// Full telemetry for one directed link: LinkLoad's counters extended with
/// bytes, busy time, credit stalls and queue depths, plus the per-VL
/// breakdown.  Collected only when SimConfig::telemetry is on; exported by
/// Simulation::link_stats() in deterministic (device, port) order.
struct LinkStats {
  DeviceId dev = kInvalidDevice;
  PortId port = 0;
  std::uint64_t packets_tx = 0;
  std::uint64_t bytes_tx = 0;
  SimTime busy_ns = 0;         ///< inside the measurement window
  double utilization = 0.0;    ///< busy_ns / measurement window
  SimTime credit_stall_ns = 0;          ///< sum over VLs
  std::uint32_t peak_queue_pkts = 0;    ///< max over VLs
  std::uint64_t fecn_marks = 0;         ///< sum over VLs
  std::vector<VlLinkStats> vls;
};

}  // namespace mlid

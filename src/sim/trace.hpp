// Packet tracing: optional per-packet event timelines and per-link load
// counters, for debugging and for the examples' link-level analyses.
#pragma once

#include <string>
#include <vector>

#include "common/types.hpp"

namespace mlid {

enum class TracePoint : std::uint8_t {
  kGenerated,   ///< entered the source queue
  kInjected,    ///< head left the source NIC onto the first link
  kHeadArrive,  ///< head reached an input port
  kForwarded,   ///< head left a switch output port
  kDelivered,   ///< tail fully received by the destination
  kDropped,     ///< lost to a dead link or a stale forwarding entry
};

[[nodiscard]] std::string to_string(TracePoint point);

struct TraceEvent {
  SimTime time = 0;
  TracePoint point = TracePoint::kGenerated;
  DeviceId dev = kInvalidDevice;
  PortId port = 0;
  VlId vl = 0;
};

/// Timeline of one traced packet (the first SimConfig::trace_packets
/// generated packets are recorded).
struct PacketTraceRecord {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  Lid dlid = kInvalidLid;
  std::vector<TraceEvent> events;
};

/// Multi-line human-readable rendering of one trace record.
std::string to_string(const PacketTraceRecord& record);

/// Per-directed-link transmission counters collected by every run.
struct LinkLoad {
  DeviceId dev = kInvalidDevice;
  PortId port = 0;
  std::uint64_t packets_tx = 0;
  double busy_fraction = 0.0;  ///< of the measurement window
};

}  // namespace mlid

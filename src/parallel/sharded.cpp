#include "parallel/sharded.hpp"

#include <algorithm>
#include <atomic>
#include <barrier>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>
#include <tuple>

#include "obs/stream.hpp"

namespace mlid {

namespace {
/// Default worker count when ShardOptions::threads == 0.
[[nodiscard]] std::uint32_t hardware_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// Host nanoseconds since `t0` (profiler clock; never simulation time).
[[nodiscard]] std::uint64_t ns_since(
    std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}
}  // namespace

ShardedSimulation::ShardedSimulation(const Subnet& subnet,
                                     const SimConfig& config,
                                     const ShardOptions& par)
    : subnet_(&subnet), cfg_(config) {
  // Sharding requires the content-based tie-break; forcing it here (instead
  // of rejecting kFifo) keeps the call sites identical to the sequential
  // factories.  The parity oracle is a sequential kCanonical run.
  cfg_.event_order = EventOrder::kCanonical;
  plan_ = ShardPlan::subtree(subnet.fabric(), par.shards, cfg_);
  const std::uint32_t requested =
      par.threads == 0 ? hardware_threads() : par.threads;
  threads_used_ = std::clamp<std::uint32_t>(requested, 1, plan_.num_shards);
  outboxes_.resize(plan_.num_shards);
  control_staged_.resize(plan_.num_shards);
  bindings_.resize(plan_.num_shards);
  for (std::uint32_t i = 0; i < plan_.num_shards; ++i) {
    bindings_[i] =
        ShardBinding{i,
                     plan_.num_shards,
                     &plan_.dev_shard,
                     &plan_.node_shard,
                     &outboxes_[i],
                     &control_staged_[i]};
  }
  shards_.reserve(plan_.num_shards);
  if (cfg_.profile) {
    profile_.shard_phases.assign(plan_.num_shards, ShardPhaseProfile{});
    win_shard_ns_.assign(plan_.num_shards, 0);
    win_shard_events_.assign(plan_.num_shards, 0);
  }
}

ShardedSimulation ShardedSimulation::open_loop(const Subnet& subnet,
                                               const SimConfig& config,
                                               const TrafficConfig& traffic,
                                               double offered_load,
                                               const ShardOptions& par,
                                               const OpenLoopOptions& options) {
  ShardedSimulation driver(subnet, config, par);
  driver.sm_ = options.live_sm;
  if (options.live_sm == nullptr) {
    MLID_EXPECT(options.faults.empty(),
                "a fault schedule needs a live SM to react to it");
  } else {
    options.faults.validate();
  }
  // The interval sampler is driver-owned: the shards are built with a
  // zeroed interval and the driver paces the fleet-wide timeline itself.
  // Self-profiling and the metrics stream are driver-owned the same way.
  SimConfig shard_cfg = driver.cfg_;
  shard_cfg.sample_interval_ns = 0;
  shard_cfg.profile = false;
  driver.stream_ = options.metrics;
  if (driver.cfg_.sample_interval_ns > 0) {
    driver.timeline_.configure(driver.cfg_.sample_interval_ns,
                               driver.cfg_.timeline_max_samples);
    driver.next_sample_ = driver.timeline_.interval_ns;
  }
  for (std::uint32_t i = 0; i < driver.plan_.num_shards; ++i) {
    driver.shards_.push_back(Simulation::open_loop_shard(
        subnet, shard_cfg, traffic, offered_load, driver.sm_,
        driver.bindings_[i]));
  }
  // The faults seed the driver's control queue with the same encoding
  // Simulation::attach_live_sm uses for its single queue.
  for (const FaultEvent& f : options.faults.events()) {
    if (f.fail) {
      driver.control_.push(f.at, EventKind::kLinkFail, f.dev_a, f.port_a);
    } else {
      driver.control_.push(f.at, EventKind::kLinkRecover, f.dev_a, f.port_a,
                           static_cast<VlId>(f.port_b),
                           static_cast<PacketId>(f.dev_b));
    }
  }
  driver.drain_mailboxes();  // nothing expected; keep construction airtight
  return driver;
}

ShardedSimulation ShardedSimulation::burst(
    const Subnet& subnet, const SimConfig& config,
    const std::vector<MessageSpec>& workload, const ShardOptions& par) {
  ShardedSimulation driver(subnet, config, par);
  driver.burst_ = true;
  // Mirrors the sequential burst constructor's rejection: the shards are
  // built with a zeroed interval, so the driver must enforce it here.
  MLID_EXPECT(config.sample_interval_ns == 0,
              "the interval sampler is open-loop only (burst runs have no "
              "fixed end time to pace samples against)");
  for (std::uint32_t i = 0; i < driver.plan_.num_shards; ++i) {
    driver.shards_.push_back(
        Simulation::burst_shard(subnet, driver.cfg_, workload,
                                driver.bindings_[i]));
  }
  // Priming the NICs inside the constructors can already cross shard
  // boundaries (a leaf switch may live on a different shard than one of its
  // nodes when the node blocks do not align with subtree edges).
  driver.drain_mailboxes();
  return driver;
}

std::uint32_t ShardedSimulation::target_of(const ShardMessage& msg) const {
  switch (msg.kind) {
    case EventKind::kGenerate:
    case EventKind::kBecnArrive:
    case EventKind::kCctTimer:
    case EventKind::kCcRelease:
      return plan_.node_shard[msg.dev];
    default:
      return plan_.dev_shard[msg.dev];
  }
}

void ShardedSimulation::drain_mailboxes() {
  for (std::uint32_t i = 0; i < plan_.num_shards; ++i) {
    if (profiling()) {
      profile_.shard_phases[i].handoffs_out += outboxes_[i].size();
      profile_.handoff_messages += outboxes_[i].size();
    }
    for (const ShardMessage& msg : outboxes_[i]) {
      shards_[target_of(msg)].receive(msg);
    }
    outboxes_[i].clear();
    for (const ShardMessage& msg : control_staged_[i]) {
      control_.push(msg.time, msg.kind, msg.dev, msg.port, msg.vl, msg.pkt);
    }
    control_staged_[i].clear();
  }
}

void ShardedSimulation::dispatch_control(const Event& e) {
  MLID_EXPECT(sm_ != nullptr, "control events need a live SM");
  switch (e.kind) {
    case EventKind::kLinkFail: {
      // Replicates Simulation::on_link_fail across shard boundaries: the
      // peer must be read before the SM disconnects the fabric, and
      // first_fault_ns must be visible on EVERY shard before the kills so
      // each shard's drop taxonomy matches the sequential run.
      const PortRef peer = subnet_->fabric().fabric().peer_of(e.dev, e.port);
      if (!peer.valid()) break;  // duplicate schedule entry: already dead
      for (Simulation& s : shards_) {
        if (s.result_.first_fault_ns < 0) s.result_.first_fault_ns = e.time;
      }
      const auto traps = sm_->on_link_fail(e.dev, e.port, e.time);
      shards_[plan_.dev_shard[e.dev]].kill_port(e.dev, e.port, e.time);
      shards_[plan_.dev_shard[peer.device]].kill_port(peer.device, peer.port,
                                                      e.time);
      for (const auto& trap : traps) {
        control_.push(trap.at, EventKind::kTrap, trap.reporter, trap.port);
      }
      break;
    }
    case EventKind::kLinkRecover: {
      const auto dev_b = static_cast<DeviceId>(e.pkt);
      const PortId port_b = e.vl;
      const auto traps =
          sm_->on_link_recover(e.dev, e.port, dev_b, port_b, e.time);
      shards_[plan_.dev_shard[e.dev]].revive_port(e.dev, e.port);
      shards_[plan_.dev_shard[dev_b]].revive_port(dev_b, port_b);
      for (const auto& trap : traps) {
        control_.push(trap.at, EventKind::kTrap, trap.reporter, trap.port);
      }
      break;
    }
    case EventKind::kTrap: {
      const auto sweep_done = sm_->on_trap(e.dev, e.port, e.time);
      if (sweep_done) {
        control_.push(*sweep_done, EventKind::kSweepDone, e.dev);
      }
      break;
    }
    case EventKind::kSweepDone:
      for (const auto& op : sm_->on_sweep_done(e.time)) {
        control_.push(op.at, EventKind::kLftProgram, op.plan_index, 0, 0,
                      op.epoch);
      }
      break;
    case EventKind::kLftProgram:
      sm_->apply_program(e.dev, e.pkt, e.time);
      break;
    default:
      MLID_EXPECT(false, "data event in the driver's control queue");
  }
}

void ShardedSimulation::step_at(SimTime t) {
  // All shards have reached `t`; dispatch every event at exactly `t` one at
  // a time in the canonical order, draining mailboxes after each so a
  // kill_port's drops or an LFT program's effects land before the next
  // pick -- the same interleaving the sequential queue produces.  The
  // comparator's seq tie-break never decides across queues: each (kind,
  // device) pair is owned by exactly one queue, so full content-key ties
  // between queues cannot occur.
  const detail::EventCompare earlier{EventOrder::kCanonical};
  while (true) {
    Simulation* best_shard = nullptr;
    const Event* best = nullptr;
    for (Simulation& s : shards_) {
      const Event* e = s.events_.peek();
      if (e == nullptr || e->time != t) continue;
      if (best == nullptr || earlier(*e, *best)) {
        best = e;
        best_shard = &s;
      }
    }
    if (const Event* c = control_.peek();
        c != nullptr && c->time == t && (best == nullptr || earlier(*c, *best))) {
      best = c;
      best_shard = nullptr;
    }
    if (best == nullptr) return;
    if (best_shard == nullptr) {
      dispatch_control(control_.pop());
    } else {
      best_shard->dispatch(best_shard->events_.pop());
    }
    drain_mailboxes();
  }
}

void ShardedSimulation::drain_shards(std::uint32_t first, std::uint32_t stride,
                                     SimTime window_end) {
  for (std::uint32_t i = first; i < shards_.size(); i += stride) {
    Simulation& s = shards_[i];
    if (profiling()) {
      // Per-shard drain wall time: this shard is drained by exactly one
      // worker per window, and the done barrier publishes the write before
      // the parent reads it -- no synchronization beyond the window
      // protocol is needed.
      const auto t0 = std::chrono::steady_clock::now();
      s.events_.drain_until(window_end,
                            [&s](const Event& e) { s.dispatch(e); });
      const std::uint64_t dt = ns_since(t0);
      profile_.shard_phases[i].processing_ns += dt;
      win_shard_ns_[i] = dt;
    } else {
      s.events_.drain_until(window_end,
                            [&s](const Event& e) { s.dispatch(e); });
    }
  }
}

void ShardedSimulation::window_loop(
    SimTime end, SimTime lookahead,
    const std::function<void(SimTime)>& drain_all) {
  while (true) {
    SimTime horizon = kSimTimeNever;
    for (Simulation& s : shards_) {
      if (const Event* e = s.events_.peek()) {
        horizon = std::min(horizon, e->time);
      }
    }
    SimTime control_time = kSimTimeNever;
    if (const Event* c = control_.peek()) control_time = c->time;
    horizon = std::min(horizon, control_time);
    if (sampling()) {
      // Every event strictly before `horizon` has dispatched, so all sample
      // times up to min(horizon, end) are due now -- before any event at
      // `horizon` runs, which is exactly the sequential sampler's "sample
      // at t covers the window ending at t" ordering.  The cadence is
      // re-read after each append because decimation doubles it.
      const SimTime sample_limit = std::min(horizon, end);
      while (next_sample_ <= sample_limit) {
        take_sample(next_sample_);
        next_sample_ += timeline_.interval_ns;
      }
    }
    if (stream_ != nullptr) {
      // The metrics stream paces on the same terms as the sampler: every
      // boundary up to min(horizon, end) is due before any event at
      // `horizon` dispatches.
      const SimTime stream_limit = std::min(horizon, end);
      while (next_stream_ <= stream_limit) {
        emit_stream_window(next_stream_, /*partial=*/false);
        next_stream_ += stream_->interval_ns();
      }
    }
    if (horizon >= end) return;  // drained, or only post-end events remain
    const SimTime by_lookahead = lookahead >= kSimTimeNever - horizon
                                     ? kSimTimeNever
                                     : horizon + lookahead;
    // A pending sample clips the window like a zero-lookahead control
    // event: no event at or past next_sample_ may dispatch before it fires.
    // A pending stream boundary clips identically; splitting a window is
    // always a valid conservative-sync schedule, so the clip is
    // result-neutral.
    const SimTime sample_time = sampling() ? next_sample_ : kSimTimeNever;
    const SimTime stream_time = stream_ != nullptr ? next_stream_ : kSimTimeNever;
    const SimTime window_end =
        std::min({by_lookahead, control_time, end, sample_time, stream_time});
    if (window_end > horizon) {
      // Every event in [horizon, window_end) is safe to dispatch without
      // cross-shard coordination: anything a shard emits during the window
      // lands at >= horizon + lookahead >= window_end.
      if (!profiling()) {
        drain_all(window_end);
        drain_mailboxes();
        continue;
      }
      for (std::uint32_t i = 0; i < plan_.num_shards; ++i) {
        win_shard_ns_[i] = 0;
        win_shard_events_[i] = shards_[i].events_.events_processed();
      }
      const auto t0 = std::chrono::steady_clock::now();
      drain_all(window_end);
      const std::uint64_t window_wall = ns_since(t0);
      const auto t1 = std::chrono::steady_clock::now();
      drain_mailboxes();
      profile_.mailbox_ns += ns_since(t1);
      ++profile_.windows;
      window_width_.add(static_cast<double>(window_end - horizon));
      // Barrier wait: the window's wall time minus the shard's own drain
      // time.  Under one worker thread this degrades to "time spent while
      // the other shards drained" -- the serialization cost -- which keeps
      // the fraction comparable across thread counts.
      std::uint64_t max_ev = 0;
      std::uint64_t total_ev = 0;
      for (std::uint32_t i = 0; i < plan_.num_shards; ++i) {
        const std::uint64_t own = std::min(window_wall, win_shard_ns_[i]);
        profile_.shard_phases[i].barrier_wait_ns += window_wall - own;
        const std::uint64_t ev =
            shards_[i].events_.events_processed() - win_shard_events_[i];
        max_ev = std::max(max_ev, ev);
        total_ev += ev;
      }
      if (total_ev > 0) {
        const double mean_ev = static_cast<double>(total_ev) /
                               static_cast<double>(plan_.num_shards);
        imbalance_.add(static_cast<double>(max_ev) / mean_ev);
      }
    } else {
      // A control event sits exactly at the horizon: no parallel progress
      // is possible (control has zero lookahead), so run the timestep
      // sequentially and re-open the next window after it.
      if (!profiling()) {
        step_at(horizon);
        continue;
      }
      const auto t0 = std::chrono::steady_clock::now();
      step_at(horizon);
      profile_.control_ns += ns_since(t0);
      ++profile_.control_steps;
    }
  }
}

void ShardedSimulation::drive(SimTime end) {
  const SimTime lookahead =
      plan_.num_shards > 1 ? plan_.lookahead_ns : kSimTimeNever;
  if (threads_used_ <= 1) {
    window_loop(end, lookahead,
                [this](SimTime we) { drain_shards(0, 1, we); });
    return;
  }

  // Persistent worker pool, two-barrier window protocol: the parent writes
  // window_end, releases the start barrier, workers drain their shards, the
  // done barrier closes the window and publishes everything back (both
  // barriers give the necessary happens-before edges).  Worker exceptions
  // are parked and rethrown on the parent after the window.
  const std::uint32_t workers = threads_used_;
  std::barrier start(workers + 1);
  std::barrier done(workers + 1);
  std::atomic<bool> stop{false};
  SimTime window_end = 0;
  std::mutex err_mu;
  std::exception_ptr err;
  std::vector<std::jthread> pool;
  pool.reserve(workers);
  for (std::uint32_t w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      while (true) {
        start.arrive_and_wait();
        if (stop.load(std::memory_order_relaxed)) return;
        try {
          drain_shards(w, workers, window_end);
        } catch (...) {
          const std::scoped_lock lock(err_mu);
          if (!err) err = std::current_exception();
        }
        done.arrive_and_wait();
      }
    });
  }
  bool pool_running = true;
  auto shutdown = [&] {
    if (!pool_running) return;
    pool_running = false;
    stop.store(true, std::memory_order_relaxed);
    start.arrive_and_wait();  // releases the workers into their exit path
  };
  try {
    window_loop(end, lookahead, [&](SimTime we) {
      window_end = we;
      start.arrive_and_wait();
      done.arrive_and_wait();
      if (err) std::rethrow_exception(err);
    });
    shutdown();
  } catch (...) {
    shutdown();
    throw;
  }
}

void ShardedSimulation::merge_into_root() {
  Simulation& r = root();
  for (std::uint32_t i = 1; i < shards_.size(); ++i) {
    Simulation& s = shards_[i];
    SimResult& a = r.result_;
    const SimResult& b = s.result_;
    a.packets_generated += b.packets_generated;
    a.packets_delivered += b.packets_delivered;
    a.packets_dropped += b.packets_dropped;
    a.dropped_unroutable += b.dropped_unroutable;
    a.dropped_dead_link += b.dropped_dead_link;
    a.dropped_during_convergence += b.dropped_during_convergence;
    a.drops_post_convergence += b.drops_post_convergence;
    a.max_source_queue_pkts =
        std::max(a.max_source_queue_pkts, b.max_source_queue_pkts);
    // Devices are dispatched exclusively by their owner, so the owner's
    // flat per-port / per-VL state (buffer occupancy, link-utilization and
    // telemetry counters, connectivity after faults) is authoritative --
    // copy its slot ranges over.  Every shard shares the same port_base_
    // layout (it is a pure function of the fabric), so the ranges line up.
    // PacketQueue heads/tails inside the copied slots reference the owner's
    // pool; finalization only reads queue *sizes*, never the links.
    const Fabric& g = subnet_->fabric().fabric();
    const auto copy_range = [](auto& dst, const auto& src, std::size_t lo,
                               std::size_t hi) {
      std::copy(src.begin() + static_cast<std::ptrdiff_t>(lo),
                src.begin() + static_cast<std::ptrdiff_t>(hi),
                dst.begin() + static_cast<std::ptrdiff_t>(lo));
    };
    for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
      if (plan_.dev_shard[dev] != i) continue;
      const std::size_t lo = r.port_base_[dev];
      const std::size_t hi = r.port_base_[dev + 1];
      copy_range(r.port_busy_until_, s.port_busy_until_, lo, hi);
      copy_range(r.port_busy_in_window_, s.port_busy_in_window_, lo, hi);
      copy_range(r.port_packets_tx_, s.port_packets_tx_, lo, hi);
      copy_range(r.port_wrr_vl_, s.port_wrr_vl_, lo, hi);
      copy_range(r.port_wrr_budget_, s.port_wrr_budget_, lo, hi);
      copy_range(r.port_retry_, s.port_retry_, lo, hi);
      copy_range(r.port_connected_, s.port_connected_, lo, hi);
      const std::size_t vlo = lo * r.vls_;
      const std::size_t vhi = hi * r.vls_;
      copy_range(r.vl_q_, s.vl_q_, vlo, vhi);
      copy_range(r.vl_wait_, s.vl_wait_, vlo, vhi);
      copy_range(r.vl_free_slots_, s.vl_free_slots_, vlo, vhi);
      copy_range(r.vl_credits_, s.vl_credits_, vlo, vhi);
      copy_range(r.vl_tx_pkt_, s.vl_tx_pkt_, vlo, vhi);
      copy_range(r.vl_cc_stall_since_, s.vl_cc_stall_since_, vlo, vhi);
      copy_range(r.vl_cold_, s.vl_cold_, vlo, vhi);
    }
    if (cfg_.cc.enabled) {
      r.cc_fecn_marked_ += s.cc_fecn_marked_;
      r.cc_fecn_depth_marks_ += s.cc_fecn_depth_marks_;
      r.cc_fecn_stall_marks_ += s.cc_fecn_stall_marks_;
      r.cc_becn_sent_ += s.cc_becn_sent_;
      r.cc_timer_fires_ += s.cc_timer_fires_;
      for (std::size_t k = 0; k < r.cc_index_hist_.size(); ++k) {
        r.cc_index_hist_[k] += s.cc_index_hist_[k];
      }
      // Per-HCA CC state is node-owner exclusive (BECNs, timers and gates
      // all dispatch on the source's shard).
      for (NodeId node = 0; node < plan_.node_shard.size(); ++node) {
        if (plan_.node_shard[node] != i) continue;
        r.cc_nodes_[node] = std::move(s.cc_nodes_[node]);
        r.cct_[node] = std::move(s.cct_[node]);
      }
    }
    r.last_delivery_ = std::max(r.last_delivery_, s.last_delivery_);
    r.burst_packets_ += s.burst_packets_;
    r.burst_bytes_ += s.burst_bytes_;
  }
}

void ShardedSimulation::replay_deliveries() {
  Simulation& r = root();
  std::vector<Simulation::DeliveryRecord> all;
  std::size_t total = 0;
  for (const Simulation& s : shards_) total += s.deliveries_.size();
  all.reserve(total);
  for (Simulation& s : shards_) {
    all.insert(all.end(), s.deliveries_.begin(), s.deliveries_.end());
    s.deliveries_.clear();
  }
  // Canonical dispatch order of kDeliver events: (time, dev, vl, corder).
  // Destination endnodes have a single port, and corder is unique per
  // packet, so this reproduces the sequential accumulation sequence.
  std::sort(all.begin(), all.end(),
            [](const Simulation::DeliveryRecord& a,
               const Simulation::DeliveryRecord& b) {
              return std::tie(a.time, a.dev, a.vl, a.corder) <
                     std::tie(b.time, b.dev, b.vl, b.corder);
            });
  for (const Simulation::DeliveryRecord& rec : all) {
    r.accumulate_delivery(rec);
  }
}

void ShardedSimulation::take_sample(SimTime t) {
  TimelineSample s;
  s.t_ns = t;
  s.intervals = static_cast<std::uint32_t>(timeline_.interval_ns /
                                           timeline_.base_interval_ns);
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t becn = 0;
  for (const Simulation& sh : shards_) {
    generated += sh.result_.packets_generated;
    delivered += sh.result_.packets_delivered;
    dropped += sh.result_.packets_dropped;
    becn += sh.cc_becn_sent_;
  }
  s.generated = generated - sampled_generated_;
  s.delivered = delivered - sampled_delivered_;
  s.dropped = dropped - sampled_dropped_;
  s.becn = becn - sampled_becn_;
  sampled_generated_ = generated;
  sampled_delivered_ = delivered;
  sampled_dropped_ = dropped;
  sampled_becn_ = becn;
  s.in_flight = generated - delivered - dropped;
  // Gauge fields accumulate across shards: sums add up, maxima max-merge
  // (each shard only scans its owned devices / HCAs).
  for (const Simulation& sh : shards_) sh.collect_sample_gauges(s);
  timeline_.append(s);
}

void ShardedSimulation::emit_stream_window(SimTime t, bool partial) {
  MetricsWindow w;
  w.t_ns = t;
  w.window_ns = t - last_stream_;
  w.partial = partial;
  w.shards = plan_.num_shards;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t becn = 0;
  std::uint64_t processed = control_.events_processed();
  for (const Simulation& sh : shards_) {
    generated += sh.result_.packets_generated;
    delivered += sh.result_.packets_delivered;
    dropped += sh.result_.packets_dropped;
    becn += sh.cc_becn_sent_;
    processed += sh.events_.events_processed();
  }
  w.generated = generated - streamed_generated_;
  w.delivered = delivered - streamed_delivered_;
  w.dropped = dropped - streamed_dropped_;
  w.becn = becn - streamed_becn_;
  streamed_generated_ = generated;
  streamed_delivered_ = delivered;
  streamed_dropped_ = dropped;
  streamed_becn_ = becn;
  w.in_flight = generated - delivered - dropped;
  w.events_processed = processed;
  last_stream_ = t;
  stream_->window(w);
}

SimResult ShardedSimulation::run() {
  MLID_EXPECT(!burst_, "burst driver: use run_to_completion()");
  MLID_EXPECT(!ran_, "a sharded simulation runs once");
  ran_ = true;
  const SimTime end = cfg_.end_time();
  const auto run_start = std::chrono::steady_clock::now();
  if (stream_ != nullptr) {
    next_stream_ = stream_->interval_ns();
    last_stream_ = 0;
  }
  drive(end);
  drain_mailboxes();
  // The final sub-interval window must go out before merge_into_root sums
  // the non-root shards' counters into the root (the fleet loop in
  // emit_stream_window would double-count them afterwards).
  if (stream_ != nullptr && last_stream_ < end) {
    emit_stream_window(end, /*partial=*/true);
  }
  merge_into_root();
  replay_deliveries();
  // Hand the driver-paced timeline to the root so finalize_open_loop
  // exports it in SimResult exactly like the sequential engine does.
  if (sampling()) root().timeline_ = timeline_;
  std::uint64_t processed = control_.events_processed();
  std::uint64_t scheduled = control_.events_scheduled();
  for (const Simulation& s : shards_) {
    processed += s.events_.events_processed();
    scheduled += s.events_.events_scheduled();
  }
  if (profiling()) {
    // Assemble the fleet profile and hand it to the root the same way the
    // timeline travels; finalize_open_loop copies it into SimResult.
    profile_.enabled = true;
    profile_.shards = plan_.num_shards;
    profile_.threads = threads_used_;
    profile_.total_wall_ns = ns_since(run_start);
    profile_.window_ns_min = static_cast<SimTime>(window_width_.min());
    profile_.window_ns_max = static_cast<SimTime>(window_width_.max());
    profile_.window_ns_mean = window_width_.mean();
    profile_.max_imbalance = imbalance_.max();
    profile_.mean_imbalance = imbalance_.mean();
    profile_.processing_ns = 0;
    profile_.barrier_wait_ns = 0;
    for (std::uint32_t i = 0; i < plan_.num_shards; ++i) {
      profile_.shard_phases[i].events_processed =
          shards_[i].events_.events_processed();
      profile_.processing_ns += profile_.shard_phases[i].processing_ns;
      profile_.barrier_wait_ns += profile_.shard_phases[i].barrier_wait_ns;
    }
    const EventQueueStats qs = queue_stats();
    profile_.queue_pushes = qs.events_scheduled;
    profile_.queue_pops = qs.events_processed;
    profile_.queue_overflow_pushes = qs.overflow_pushes;
    profile_.queue_resizes = qs.resizes;
    root().profile_ = profile_;
  }
  root().check_invariants();
  const SimResult result = root().finalize_open_loop(processed, scheduled);
  if (stream_ != nullptr) {
    MetricsRunSummary summary;
    summary.end_ns = end;
    summary.shards = plan_.num_shards;
    summary.threads = threads_used_;
    summary.generated = result.packets_generated;
    summary.delivered = result.packets_delivered;
    summary.dropped = result.packets_dropped;
    summary.events_processed = result.events_processed;
    summary.profile = &result.profile;
    stream_->run_summary(summary);
  }
  return result;
}

BurstResult ShardedSimulation::run_to_completion() {
  MLID_EXPECT(burst_, "run_to_completion needs the burst factory");
  MLID_EXPECT(!ran_, "a sharded simulation runs once");
  ran_ = true;
  drive(kSimTimeNever);
  drain_mailboxes();
  merge_into_root();
  replay_deliveries();
  Simulation& r = root();
  MLID_EXPECT(r.result_.packets_delivered + r.result_.packets_dropped ==
                  r.result_.packets_generated,
              "burst did not fully drain");
  std::uint64_t processed = control_.events_processed();
  std::uint64_t scheduled = control_.events_scheduled();
  for (const Simulation& s : shards_) {
    processed += s.events_.events_processed();
    scheduled += s.events_.events_scheduled();
  }
  r.check_invariants();
  return r.finalize_burst(processed, scheduled);
}

EventQueueStats ShardedSimulation::queue_stats() const {
  EventQueueStats sum;
  sum.kind = cfg_.event_queue;
  const EventQueueStats control = control_.stats();
  sum.events_scheduled = control.events_scheduled;
  sum.events_processed = control.events_processed;
  for (const Simulation& s : shards_) {
    const EventQueueStats q = s.events_.stats();
    sum.events_scheduled += q.events_scheduled;
    sum.events_processed += q.events_processed;
    sum.buckets = std::max(sum.buckets, q.buckets);
    sum.bucket_width_ns = std::max(sum.bucket_width_ns, q.bucket_width_ns);
    sum.resizes += q.resizes;
    sum.overflow_pushes += q.overflow_pushes;
    sum.max_overflow_depth =
        std::max(sum.max_overflow_depth, q.max_overflow_depth);
    sum.max_bucket_events =
        std::max(sum.max_bucket_events, q.max_bucket_events);
  }
  return sum;
}

std::size_t ShardedSimulation::memory_footprint() const noexcept {
  std::size_t total = 0;
  for (const Simulation& s : shards_) total += s.memory_footprint();
  return total;
}

const FlightRecorderDump& ShardedSimulation::flight_dump() const noexcept {
  for (const Simulation& s : shards_) {
    if (s.flight_dump().valid()) return s.flight_dump();
  }
  return shards_.front().flight_dump();
}

}  // namespace mlid

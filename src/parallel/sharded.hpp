// Sharded conservative-sync simulation driver.
//
// Partitions the fabric into per-subtree shards (parallel/partition.hpp),
// gives each shard its own event queue and engine state, and advances all
// shards in lock-stepped windows bounded by the link lookahead: every event
// that crosses a shard boundary takes at least `lookahead_ns` of simulated
// time (the wire flying time; the BECN echo delay when CC is on), so events
// strictly before `min(shard horizons) + lookahead` can be dispatched in
// parallel without any shard observing the others mid-window.  Cross-shard
// events travel as ShardMessage mailbox entries, drained into the owning
// shard's queue at each window barrier.
//
// Control-plane events (link faults, SM traps / sweeps / LFT programs) have
// no lookahead -- a program takes effect the instant it lands -- so the
// driver owns them in a separate queue and executes any timestep holding one
// as a *sequential global step*: all shards pause at that instant and events
// dispatch one at a time in the canonical order a sequential run would use.
//
// Determinism: results are bit-identical to a sequential run with
// SimConfig::event_order == EventOrder::kCanonical, for ANY shard count and
// ANY thread count (asserted by tests/parallel/shard_parity_test.cpp).  Three
// mechanisms carry the guarantee:
//   * the canonical event order makes same-timestamp dispatch a pure
//     function of event content, not of which queue scheduled it first;
//   * Packet::corder (generation order) replaces pool ids as the tie-break
//     key, because pool ids diverge across shard counts;
//   * order-sensitive accumulators (Welford windows, histograms, message
//     completion) are not fed during the run -- each shard logs
//     DeliveryRecords and the driver replays the merged log in canonical
//     order on shard 0 at the end, reproducing the sequential sequence
//     exactly (including float rounding).
//
// Time-resolved telemetry: the interval sampler (SimConfig::sample_interval_ns)
// is *driver-owned* in sharded runs.  Shards never pace their own timeline;
// the driver treats each sample time like a zero-lookahead barrier (windows
// are clipped at the next sample), sums fleet-wide counters for the deltas
// and merges every shard's gauges into one TimelineSample -- so the sampled
// timeline is bit-identical to the sequential engine's for any shard or
// thread count.
//
// Engine self-profiling (SimConfig::profile) and the JSONL metrics stream
// (OpenLoopOptions::metrics) are driver-owned on the same terms: a stream
// boundary clips windows exactly like a sample time (any window partition
// is a valid conservative-sync schedule), and the profiler reads host
// clocks and existing counters only -- both are result-neutral for any
// shard/thread count (tests/obs/profile_parity_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "parallel/partition.hpp"
#include "sim/engine.hpp"

namespace mlid {

/// Parallelism knobs of one sharded run.
struct ShardOptions {
  std::uint32_t shards = 1;   ///< fabric partitions (1 = sequential layout)
  /// Worker threads draining shard queues inside a window; 0 = one per
  /// shard, capped at the hardware concurrency.  Any value yields
  /// bit-identical results; threads only change wall-clock time.
  std::uint32_t threads = 0;
};

/// Drop-in parallel counterpart of Simulation::open_loop / Simulation::burst:
/// same inputs, same SimResult / BurstResult, computed across shards.
class ShardedSimulation {
 public:
  [[nodiscard]] static ShardedSimulation open_loop(
      const Subnet& subnet, const SimConfig& config,
      const TrafficConfig& traffic, double offered_load,
      const ShardOptions& par, const OpenLoopOptions& options = {});

  [[nodiscard]] static ShardedSimulation burst(
      const Subnet& subnet, const SimConfig& config,
      const std::vector<MessageSpec>& workload, const ShardOptions& par);

  /// Open-loop run to config.end_time(); call once.
  SimResult run();

  /// Drain the burst workload; call once.
  BurstResult run_to_completion();

  [[nodiscard]] std::uint32_t num_shards() const noexcept {
    return plan_.num_shards;
  }
  /// Worker threads the window drains actually use (requested threads
  /// resolved against the shard count and hardware concurrency).
  [[nodiscard]] std::uint32_t threads_used() const noexcept {
    return threads_used_;
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }

  /// Fleet-wide queue stats: events summed over every shard queue plus the
  /// control queue; ladder internals max-merged across shards.
  [[nodiscard]] EventQueueStats queue_stats() const;

  /// Fleet-wide hot-state bytes: Simulation::memory_footprint() summed over
  /// every shard (each shard only sizes its owned slice, so the sum is the
  /// fleet's actual allocation, not num_shards copies of the fabric).
  [[nodiscard]] std::size_t memory_footprint() const noexcept;

  /// First frozen per-shard flight dump (SimConfig::flight_recorder_depth).
  /// Devices are owner-exclusive, so every shard keeps its own host-side
  /// rings and tags its dump cause with "[shard N]"; this returns the
  /// lowest-numbered shard's dump, invalid when no shard froze one.
  [[nodiscard]] const FlightRecorderDump& flight_dump() const noexcept;

 private:
  ShardedSimulation(const Subnet& subnet, const SimConfig& config,
                    const ShardOptions& par);

  /// Routes a mailbox message to the shard that owns its event
  /// (mirrors Simulation::target_shard).
  [[nodiscard]] std::uint32_t target_of(const ShardMessage& msg) const;
  /// Moves every outbox entry into its owner's queue and every staged
  /// control event into the control queue (insertion order; the canonical
  /// event order makes that order irrelevant to results).
  void drain_mailboxes();
  /// Dispatches one driver-owned control event (replicating the control
  /// arms of Simulation::dispatch across shard boundaries).
  void dispatch_control(const Event& e);
  /// Sequential global timestep: dispatches every pending event at exactly
  /// `t` -- across all shards and the control queue -- in canonical order.
  void step_at(SimTime t);
  /// Drains shards first, first+stride, ... up to `window_end` (exclusive).
  void drain_shards(std::uint32_t first, std::uint32_t stride,
                    SimTime window_end);
  /// The conservative-sync loop: computes each window and runs it through
  /// `drain_all(window_end)` (single- or multi-threaded).
  void window_loop(SimTime end, SimTime lookahead,
                   const std::function<void(SimTime)>& drain_all);
  /// window_loop with the thread pool wrapped around it.
  void drive(SimTime end);
  /// Folds every non-root shard into shard 0: owned device / CC state moves
  /// over, integer counters sum, watermarks max-merge.
  void merge_into_root();
  /// Sorts all shards' DeliveryRecords into canonical order and feeds them
  /// through shard 0's accumulators.
  void replay_deliveries();
  /// Driver-level TimelineSample at simulated time `t`: fleet-wide counter
  /// deltas plus every shard's gauges (mirrors Simulation::take_sample).
  void take_sample(SimTime t);
  [[nodiscard]] bool sampling() const noexcept { return timeline_.enabled(); }
  [[nodiscard]] bool profiling() const noexcept { return cfg_.profile; }
  /// Driver-level JSONL "window" line at simulated time `t`: fleet-wide
  /// counter deltas (mirrors take_sample; emitted before merge_into_root so
  /// per-shard counters are not double-counted).
  void emit_stream_window(SimTime t, bool partial);
  [[nodiscard]] Simulation& root() { return shards_.front(); }

  const Subnet* subnet_;
  SimConfig cfg_;           ///< event_order forced to kCanonical
  ShardPlan plan_;
  SubnetManager* sm_ = nullptr;
  std::uint32_t threads_used_ = 1;
  bool burst_ = false;
  bool ran_ = false;

  // Mailbox storage is allocated before the shards so the bindings' pointers
  // stay valid from each shard's constructor on (the burst constructor can
  // emit cross-shard head arrivals while priming NICs).
  std::vector<std::vector<ShardMessage>> outboxes_;        ///< per shard
  std::vector<std::vector<ShardMessage>> control_staged_;  ///< per shard
  std::vector<ShardBinding> bindings_;
  std::vector<Simulation> shards_;
  /// Driver-owned control plane (faults + SM pipeline).  Heap: a handful of
  /// events, and the ladder's bucket machinery would be pure overhead.
  EventQueue control_{EventQueueKind::kHeap, EventOrder::kCanonical};

  // Driver-owned interval sampler (open-loop only; the shards' own configs
  // carry sample_interval_ns == 0).
  Timeline timeline_;
  SimTime next_sample_ = 0;              ///< next pending sample time
  std::uint64_t sampled_generated_ = 0;  ///< fleet counters at the last sample
  std::uint64_t sampled_delivered_ = 0;
  std::uint64_t sampled_dropped_ = 0;
  std::uint64_t sampled_becn_ = 0;

  // --- engine self-profiler (inert unless cfg_.profile; obs/profile.hpp).
  // Per-shard wall time accumulates inside drain_shards (each shard is
  // drained by exactly one worker per window and the done barrier publishes
  // the writes, so the parent reads race-free between windows); barrier
  // wait is window wall minus a shard's own drain time.  All host-clock
  // reads are keyed off cfg_.profile and never touch window boundaries, so
  // results are byte-identical with profiling on or off.
  ProfileSummary profile_;
  std::vector<std::uint64_t> win_shard_ns_;      ///< per-shard drain wall, this window
  std::vector<std::uint64_t> win_shard_events_;  ///< per-shard processed, window start
  OnlineStats window_width_;  ///< simulated-ns window widths
  OnlineStats imbalance_;     ///< per-window max/mean events-per-shard factor

  // --- metrics stream (driver-paced like the sampler; open-loop only) --------
  MetricsStreamer* stream_ = nullptr;  ///< non-owning, from OpenLoopOptions
  SimTime next_stream_ = 0;
  SimTime last_stream_ = 0;
  std::uint64_t streamed_generated_ = 0;  ///< fleet counters at the last line
  std::uint64_t streamed_delivered_ = 0;
  std::uint64_t streamed_dropped_ = 0;
  std::uint64_t streamed_becn_ = 0;
};

}  // namespace mlid

#include "parallel/partition.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace mlid {

ShardPlan ShardPlan::subtree(const FatTreeFabric& fabric, std::uint32_t shards,
                             const SimConfig& config) {
  const FatTreeParams& params = fabric.params();
  const Fabric& graph = fabric.fabric();
  const std::uint32_t num_nodes = params.num_nodes();

  MLID_EXPECT(shards >= 1, "shard count must be positive");
  MLID_EXPECT(shards <= num_nodes,
              "cannot split a fabric into more shards than endnodes");

  ShardPlan plan;
  plan.num_shards = shards;
  plan.lookahead_ns = config.flying_time_ns;
  if (config.cc.enabled) {
    plan.lookahead_ns = std::min(plan.lookahead_ns, config.cc.becn_delay_ns);
  }
  MLID_EXPECT(shards == 1 || plan.lookahead_ns >= 1,
              "sharded runs need at least 1 ns of link lookahead "
              "(flying_time_ns, and becn_delay_ns when CC is on)");

  plan.node_shard.resize(num_nodes);
  for (std::uint32_t node = 0; node < num_nodes; ++node) {
    // Contiguous blocks in PID order: PIDs enumerate labels
    // lexicographically, so a block is a union of adjacent subtrees.
    plan.node_shard[node] = static_cast<std::uint32_t>(
        static_cast<std::uint64_t>(node) * shards / num_nodes);
  }

  plan.dev_shard.resize(graph.num_devices());
  for (DeviceId dev = 0; dev < graph.num_devices(); ++dev) {
    const Device& device = graph.device(dev);
    if (device.kind() == DeviceKind::kEndnode) {
      plan.dev_shard[dev] = plan.node_shard[device.node_id];
      continue;
    }
    if (fabric.switch_label(device.switch_id).level() == 0) {
      // Roots belong to no subtree (each one reaches every node, and the
      // m/2 roots differing only in digit 0 share a leftmost descendant),
      // so spread them round-robin instead of piling them on one shard.
      plan.dev_shard[dev] = device.switch_id % shards;
      continue;
    }
    // Non-root switch: follow down port 1 to its leftmost descendant
    // endnode and co-locate with it.  The walk descends one level per hop
    // (down ports are the low-numbered physical ports), so it terminates
    // at a leaf-attached node.  Requires a pristine fabric, which is the
    // state every run starts in -- faults arrive as scheduled events.
    DeviceId cursor = dev;
    while (graph.device(cursor).kind() == DeviceKind::kSwitch) {
      const PortRef down = graph.peer_of(cursor, 1);
      MLID_EXPECT(down.valid(),
                  "partition requires a fully wired fabric (port 1 walk)");
      cursor = down.device;
    }
    plan.dev_shard[dev] = plan.node_shard[graph.device(cursor).node_id];
  }
  return plan;
}

}  // namespace mlid

// Fabric partitioning for the sharded conservative-sync engine.
//
// The m-port n-tree's subtree structure (the same structure the paper's gcp
// algebra exploits for LID assignment) gives a natural shard boundary:
// endnodes split into contiguous blocks, every non-root switch follows its
// leftmost descendant endnode, and root switches -- which belong to no
// subtree -- round-robin across shards.  Correctness never depends on the
// partition (any ownership map yields bit-identical results; see
// parallel/sharded.hpp); the subtree layout just keeps most hops
// shard-local so boundary traffic stays small.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "sim/config.hpp"
#include "topology/builder.hpp"

namespace mlid {

/// Ownership map of one sharded run: which shard dispatches events for each
/// device / node, plus the conservative lookahead the link timing allows.
struct ShardPlan {
  std::uint32_t num_shards = 1;
  std::vector<std::uint32_t> dev_shard;   ///< by DeviceId
  std::vector<std::uint32_t> node_shard;  ///< by NodeId
  /// Conservative-sync window width: the minimum simulated time any event
  /// takes to cross a shard boundary.  Link flying time, tightened by the
  /// BECN echo delay when congestion control is on.
  SimTime lookahead_ns = 0;

  /// Subtree partition of `fabric` into `shards` pieces (1 <= shards <=
  /// num_nodes).  Shard counts above 1 require lookahead >= 1 ns, i.e.
  /// config.flying_time_ns >= 1 (and cc.becn_delay_ns >= 1 when CC is on).
  [[nodiscard]] static ShardPlan subtree(const FatTreeFabric& fabric,
                                         std::uint32_t shards,
                                         const SimConfig& config);
};

}  // namespace mlid

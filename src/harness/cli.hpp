// Minimal CLI flag handling shared by the bench / example executables.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mlid {

/// Parses the tiny flag language the harness binaries accept:
///   --quick            shrink windows & load grid (CI-friendly)
///   --seed=N           master seed
///   --csv              also print the CSV block
///   --json             also print a JSON result blob
///   --out=PATH         also write the CSV (and JSON if --json) to files
///                      PATH.csv / PATH.json
///   --threads=N        worker threads for the sweep
class CliOptions {
 public:
  CliOptions(int argc, char** argv);

  [[nodiscard]] bool quick() const noexcept { return quick_; }
  [[nodiscard]] bool csv() const noexcept { return csv_; }
  [[nodiscard]] bool json() const noexcept { return json_; }
  [[nodiscard]] const std::string& out_path() const noexcept { return out_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// Apply quick-mode shrinking to a figure spec (fewer loads, shorter
  /// windows) so `--quick` runs finish in seconds.
  template <typename FigureSpecT>
  void apply(FigureSpecT& spec) const {
    spec.sim.seed = seed_;
    spec.traffic.seed = seed_ ^ 0x5EEDu;
    if (quick_) {
      spec.sim.warmup_ns = 5'000;
      spec.sim.measure_ns = 20'000;
      spec.loads = {0.10, 0.40, 0.80};
    }
  }

 private:
  bool quick_ = false;
  bool csv_ = false;
  bool json_ = false;
  std::string out_;
  std::uint64_t seed_ = 1;
  unsigned threads_ = 0;
  std::vector<std::string> positional_;
};

}  // namespace mlid

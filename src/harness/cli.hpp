// Minimal CLI flag handling shared by the bench / example executables.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cc/config.hpp"
#include "sim/event_queue.hpp"
#include "sim/fault_schedule.hpp"

namespace mlid {

struct SweepOptions;
class MetricsStreamer;

/// Parses the tiny flag language the harness binaries accept:
///   --help             print usage and exit 0
///   --quick            shrink windows & load grid (CI-friendly)
///   --seed=N           master seed
///   --csv              also print the CSV block
///   --json             also print a JSON result blob
///   --out=PATH         also write the CSV (and JSON if --json) to files
///                      PATH.csv / PATH.json
///   --threads=N        worker threads for the sweep (N >= 1; omitting the
///                      flag picks the hardware concurrency)
///   --shards=N         engine shards per simulation (N >= 1; >1 runs the
///                      sharded conservative-sync engine)
///   --event-queue=K    pending-event structure: heap | ladder
///   --scheme=NAME      routing scheme by SchemeRegistry name (any
///                      registered scheme; validated at parse time)
///   --scenario=NAME    production scenario by ScenarioRegistry name
///                      (validated at parse time; unknown names exit 2
///                      with the registry listing)
///   --list-scenarios   print every registered scenario and exit 0
///   --policy=NAME      up-phase forwarding policy by registry name
///   --vl-map=NAME      HCA-side dynamic VL assignment by registry name
///   --no-telemetry     skip the extended per-link/histogram telemetry
///   --fail-links=N     fail N random inter-switch uplinks mid-run
///   --fail-at-ns=T     when the failures hit (default 20000)
///   --recover-at-ns=T  bring the failed links back at T (default: never)
///   --cc               enable IBA congestion control (FECN/BECN + CCT)
///   --cc-threshold=N   FECN marking backlog threshold, packets
///   --cc-timer-ns=T    CCT recovery-timer period
///   --sample-interval-ns=T  interval-sampler cadence (0 = off)
///   --chrome-trace=PATH     write a chrome://tracing / Perfetto JSON trace
///   --trace-packets=N  record up to N per-packet event timelines
///   --trace-stride=K   trace every K-th generated packet
///   --flight-recorder=K     keep the last K engine events per device
///                      (works under --shards too: per-shard rings, dump
///                      tagged with the owning shard)
///   --profile          engine self-profiling (ProfileSummary in results /
///                      manifests; passive -- results are byte-identical)
///   --progress         stderr heartbeat: one line per completed sweep
///                      point (done/total, elapsed, ETA); never on stdout
///   --metrics-out=FILE stream run metrics as JSONL to FILE (obs/stream.hpp)
///   --metrics-interval-ns=T  metrics window cadence (default 10000; must
///                      be >= 1 -- 0 or negative exits 2)
/// The fault, CC and tracing value flags also accept the two-token form
/// (`--fail-links 4`, `--cc-threshold 3`).
///
/// Parsing is strict: numeric values must consume the whole token
/// (`--seed=abc` and `--threads=4x` are fatal, not silently 0 / 4), and an
/// unrecognized `--flag` exits 2 with a diagnostic listing the known flags
/// instead of being swallowed as a positional argument.
class CliOptions {
 public:
  CliOptions(int argc, char** argv);

  [[nodiscard]] bool quick() const noexcept { return quick_; }
  [[nodiscard]] bool csv() const noexcept { return csv_; }
  [[nodiscard]] bool json() const noexcept { return json_; }
  [[nodiscard]] const std::string& out_path() const noexcept { return out_; }
  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }
  [[nodiscard]] unsigned threads() const noexcept { return threads_; }
  [[nodiscard]] unsigned shards() const noexcept { return shards_; }
  /// Queue kind from --event-queue; nullopt = keep the spec's default.
  [[nodiscard]] std::optional<EventQueueKind> event_queue() const noexcept {
    return event_queue_;
  }
  [[nodiscard]] bool telemetry() const noexcept { return telemetry_; }
  /// Scheme name from --scheme; nullopt = keep the binary's scheme grid.
  /// Always a registered name (unknown values exit 2 during parsing).
  [[nodiscard]] const std::optional<std::string>& scheme() const noexcept {
    return scheme_;
  }
  /// Scenario name from --scenario; nullopt = the binary's own default
  /// (bench/ablation_scenarios runs every registered scenario).  Always a
  /// registered name (unknown values exit 2 during parsing).
  [[nodiscard]] const std::optional<std::string>& scenario() const noexcept {
    return scenario_;
  }
  /// Forwarding-policy name from --policy; nullopt = spec default.
  [[nodiscard]] const std::optional<std::string>& policy() const noexcept {
    return policy_;
  }
  /// VL-map name from --vl-map; nullopt = spec default.
  [[nodiscard]] const std::optional<std::string>& vl_map() const noexcept {
    return vl_map_;
  }
  /// Congestion-control config from --cc / --cc-threshold / --cc-timer-ns;
  /// nullopt without --cc (the value flags tune the config --cc enables).
  [[nodiscard]] std::optional<CcConfig> cc() const noexcept {
    if (!cc_) return std::nullopt;
    CcConfig config;
    config.enabled = true;
    if (cc_threshold_) config.fecn_threshold_pkts = *cc_threshold_;
    if (cc_timer_ns_) config.timer_ns = *cc_timer_ns_;
    return config;
  }
  /// Sampler cadence from --sample-interval-ns; nullopt = keep the
  /// binary's default (most default to off, the ablation benches to 1 us).
  [[nodiscard]] std::optional<std::int64_t> sample_interval_ns()
      const noexcept {
    return sample_interval_ns_;
  }
  /// Output path from --chrome-trace (empty = no trace export).
  [[nodiscard]] const std::string& chrome_trace() const noexcept {
    return chrome_trace_;
  }
  [[nodiscard]] std::optional<std::uint32_t> trace_packets() const noexcept {
    return trace_packets_;
  }
  [[nodiscard]] std::optional<std::uint32_t> trace_stride() const noexcept {
    return trace_stride_;
  }
  [[nodiscard]] std::optional<std::uint32_t> flight_recorder() const noexcept {
    return flight_recorder_;
  }
  [[nodiscard]] bool profile() const noexcept { return profile_; }
  [[nodiscard]] bool progress() const noexcept { return progress_; }
  /// Output path from --metrics-out (empty = no metrics stream).
  [[nodiscard]] const std::string& metrics_out() const noexcept {
    return metrics_out_;
  }
  [[nodiscard]] std::int64_t metrics_interval_ns() const noexcept {
    return metrics_interval_ns_;
  }
  /// The JSONL metrics streamer --metrics-out / --metrics-interval-ns
  /// describe, or nullptr without --metrics-out.  Wire the returned object
  /// into SweepOptions::metrics (sweeps) or OpenLoopOptions::metrics
  /// (single runs); it flushes per line, so it is live from the first
  /// window.  An unwritable path is a usage error (exit 2), matching the
  /// parse-time strictness of the other file flags.
  [[nodiscard]] std::unique_ptr<MetricsStreamer> make_metrics_streamer() const;
  [[nodiscard]] int fail_links() const noexcept { return fail_links_; }
  [[nodiscard]] std::int64_t fail_at_ns() const noexcept { return fail_at_ns_; }
  [[nodiscard]] std::int64_t recover_at_ns() const noexcept {
    return recover_at_ns_;
  }
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  /// The fault schedule the --fail-links / --fail-at-ns / --recover-at-ns
  /// flags describe for this fabric (empty without --fail-links), so any
  /// bench can opt into mid-run faults without bespoke wiring.
  [[nodiscard]] FaultSchedule fault_schedule(const FatTreeFabric& fabric) const;

  /// The run_sweep execution knobs these flags describe (threads, quick,
  /// --no-telemetry, --event-queue).
  [[nodiscard]] SweepOptions sweep_options() const;

  /// Apply the flags that change the *figure definition* to a spec: seeds
  /// always, plus quick-mode shrinking and the sim-config overrides
  /// (--event-queue, --no-telemetry) for binaries that run simulations
  /// directly rather than through run_sweep.
  template <typename FigureSpecT>
  void apply(FigureSpecT& spec) const {
    spec.sim.seed = seed_;
    spec.traffic.seed = seed_ ^ 0x5EEDu;
    if constexpr (requires { spec.schemes; }) {
      if (scheme_) spec.schemes = {*scheme_};
    }
    if (policy_) spec.sim.policy.forwarding = *policy_;
    if (vl_map_) spec.sim.policy.vl_map = *vl_map_;
    if (!telemetry_) spec.sim.telemetry = false;
    if (event_queue_) spec.sim.event_queue = *event_queue_;
    if (const auto cc_cfg = cc()) spec.sim.cc = *cc_cfg;
    if (sample_interval_ns_) spec.sim.sample_interval_ns = *sample_interval_ns_;
    if (trace_packets_) spec.sim.trace_packets = *trace_packets_;
    if (trace_stride_) spec.sim.trace_stride = *trace_stride_;
    if (flight_recorder_) spec.sim.flight_recorder_depth = *flight_recorder_;
    if (profile_) spec.sim.profile = true;
    // The chrome-trace exporter needs the control-plane record to draw its
    // fault / SM / CC tracks; asking for the file turns the recording on.
    if (!chrome_trace_.empty()) spec.sim.trace_control = true;
    if (quick_) {
      spec.sim.warmup_ns = 5'000;
      spec.sim.measure_ns = 20'000;
      spec.loads = {0.10, 0.40, 0.80};
    }
  }

 private:
  bool quick_ = false;
  bool csv_ = false;
  bool json_ = false;
  std::string out_;
  std::uint64_t seed_ = 1;
  unsigned threads_ = 0;
  unsigned shards_ = 1;
  std::optional<EventQueueKind> event_queue_;
  std::optional<std::string> scheme_;
  std::optional<std::string> scenario_;
  std::optional<std::string> policy_;
  std::optional<std::string> vl_map_;
  bool telemetry_ = true;
  bool cc_ = false;
  std::optional<std::uint32_t> cc_threshold_;
  std::optional<std::int64_t> cc_timer_ns_;
  std::optional<std::int64_t> sample_interval_ns_;
  std::string chrome_trace_;
  std::optional<std::uint32_t> trace_packets_;
  std::optional<std::uint32_t> trace_stride_;
  std::optional<std::uint32_t> flight_recorder_;
  bool profile_ = false;
  bool progress_ = false;
  std::string metrics_out_;
  std::int64_t metrics_interval_ns_ = 10'000;
  int fail_links_ = 0;
  std::int64_t fail_at_ns_ = 20'000;
  std::int64_t recover_at_ns_ = -1;
  std::vector<std::string> positional_;
};

}  // namespace mlid

#include "harness/chrome_trace.hpp"

#include <fstream>
#include <set>

#include "common/expect.hpp"
#include "harness/report.hpp"

namespace mlid {
namespace {

constexpr std::uint64_t kPidDevices = 1;
constexpr std::uint64_t kPidControl = 2;
constexpr std::uint64_t kPidCounters = 3;
constexpr std::uint64_t kPidFlight = 4;
constexpr std::uint64_t kPidProfiler = 5;

// The trace-event format's ts unit is microseconds; simulation time is
// nanoseconds.  Fractional microseconds keep the sub-microsecond spacing.
double us(SimTime t) { return static_cast<double>(t) / 1000.0; }

// Opens one event object with the common fields; the caller adds "dur" /
// "args" as needed and closes it.
void event_header(JsonWriter& json, std::string_view name,
                  std::string_view ph, std::uint64_t pid, std::uint64_t tid,
                  double ts) {
  json.begin_object();
  json.key("name").value(name);
  json.key("ph").value(ph);
  json.key("pid").value(pid);
  json.key("tid").value(tid);
  json.key("ts").value(ts);
}

// "M" metadata event naming a process or thread track.
void metadata(JsonWriter& json, std::string_view kind, std::uint64_t pid,
              std::uint64_t tid, std::string_view label) {
  event_header(json, kind, "M", pid, tid, 0.0);
  json.key("args").begin_object();
  json.key("name").value(label);
  json.end_object();
  json.end_object();
}

void emit_packet_track(JsonWriter& json, const Fabric& fabric,
                       const std::vector<PacketTraceRecord>& records) {
  metadata(json, "process_name", kPidDevices, 0, "fabric devices");
  // Name only the device threads that actually appear, in id order.
  std::set<DeviceId> devices;
  for (const PacketTraceRecord& rec : records) {
    for (const TraceEvent& e : rec.events) devices.insert(e.dev);
  }
  for (const DeviceId dev : devices) {
    metadata(json, "thread_name", kPidDevices, dev,
             fabric.device(dev).name());
  }
  for (std::size_t r = 0; r < records.size(); ++r) {
    const PacketTraceRecord& rec = records[r];
    for (std::size_t i = 0; i < rec.events.size(); ++i) {
      const TraceEvent& e = rec.events[i];
      if (e.point == TracePoint::kDropped) {
        event_header(json,
                     "drop(" + std::string(to_string(e.drop)) + ")", "i",
                     kPidDevices, e.dev, us(e.time));
        json.key("args").begin_object();
        json.key("trace_index").value(static_cast<std::uint64_t>(r));
        json.key("src").value(static_cast<std::uint64_t>(rec.src));
        json.key("dst").value(static_cast<std::uint64_t>(rec.dst));
        json.key("dlid").value(static_cast<std::uint64_t>(rec.dlid));
        json.end_object();
        json.end_object();
        continue;
      }
      // A span is a pair of consecutive events on the same device: the
      // time the packet spent *in* that device.
      if (i + 1 >= rec.events.size()) continue;
      const TraceEvent& next = rec.events[i + 1];
      if (next.dev != e.dev) continue;
      std::string_view name;
      if (e.point == TracePoint::kGenerated &&
          next.point == TracePoint::kInjected) {
        name = "source-queue";
      } else if (e.point == TracePoint::kHeadArrive &&
                 next.point == TracePoint::kForwarded) {
        name = "switch";
      } else if (e.point == TracePoint::kHeadArrive &&
                 next.point == TracePoint::kDelivered) {
        name = "deliver";
      } else {
        continue;
      }
      event_header(json, name, "X", kPidDevices, e.dev, us(e.time));
      json.key("dur").value(us(next.time - e.time));
      json.key("args").begin_object();
      json.key("trace_index").value(static_cast<std::uint64_t>(r));
      json.key("src").value(static_cast<std::uint64_t>(rec.src));
      json.key("dst").value(static_cast<std::uint64_t>(rec.dst));
      json.key("dlid").value(static_cast<std::uint64_t>(rec.dlid));
      json.key("vl").value(static_cast<std::uint64_t>(e.vl));
      json.end_object();
      json.end_object();
    }
  }
}

std::uint64_t control_tid(ControlPoint point) {
  switch (point) {
    case ControlPoint::kLinkFail:
    case ControlPoint::kLinkRecover:
      return 0;
    case ControlPoint::kTrap:
    case ControlPoint::kSweepDone:
    case ControlPoint::kLftProgram:
      return 1;
    case ControlPoint::kBecn:
    case ControlPoint::kCctTimer:
    case ControlPoint::kCcRelease:
      return 2;
  }
  return 2;
}

void emit_control_track(JsonWriter& json,
                        const std::vector<ControlTraceRecord>& control) {
  metadata(json, "process_name", kPidControl, 0, "control plane");
  metadata(json, "thread_name", kPidControl, 0, "faults");
  metadata(json, "thread_name", kPidControl, 1, "subnet-manager");
  metadata(json, "thread_name", kPidControl, 2, "congestion-control");
  for (const ControlTraceRecord& rec : control) {
    event_header(json, to_string(rec.point), "i", kPidControl,
                 control_tid(rec.point), us(rec.time));
    json.key("args").begin_object();
    json.key("dev").value(static_cast<std::uint64_t>(rec.dev));
    json.key("aux").value(static_cast<std::uint64_t>(rec.aux));
    json.key("port").value(static_cast<std::uint64_t>(rec.port));
    json.end_object();
    json.end_object();
  }
}

void emit_counter_track(JsonWriter& json, const Timeline& timeline) {
  metadata(json, "process_name", kPidCounters, 0, "timeline counters");
  for (const TimelineSample& s : timeline.samples) {
    const double ts = us(s.t_ns);
    event_header(json, "throughput", "C", kPidCounters, 0, ts);
    json.key("args").begin_object();
    json.key("generated").value(s.generated);
    json.key("delivered").value(s.delivered);
    json.key("dropped").value(s.dropped);
    json.end_object();
    json.end_object();
    event_header(json, "occupancy", "C", kPidCounters, 0, ts);
    json.key("args").begin_object();
    json.key("in_flight").value(s.in_flight);
    json.key("queued_pkts").value(s.queued_pkts);
    json.key("max_queue_depth")
        .value(static_cast<std::uint64_t>(s.max_queue_depth));
    json.key("stalled_vls").value(static_cast<std::uint64_t>(s.stalled_vls));
    json.end_object();
    json.end_object();
    event_header(json, "congestion", "C", kPidCounters, 0, ts);
    json.key("args").begin_object();
    json.key("becn").value(s.becn);
    json.key("cct_active_nodes")
        .value(static_cast<std::uint64_t>(s.cct_active_nodes));
    json.key("peak_cct_index")
        .value(static_cast<std::uint64_t>(s.peak_cct_index));
    json.end_object();
    json.end_object();
  }
}

void emit_flight_track(JsonWriter& json, const FlightRecorderDump& flight) {
  metadata(json, "process_name", kPidFlight, 0, "flight recorder");
  metadata(json, "thread_name", kPidFlight, 0,
           flight.device_name + " (" + flight.cause + ")");
  for (const FlightEvent& e : flight.events) {
    event_header(json, to_string(e.kind), "i", kPidFlight, 0, us(e.time));
    json.key("args").begin_object();
    json.key("dev").value(static_cast<std::uint64_t>(e.dev));
    json.key("pkt").value(static_cast<std::uint64_t>(e.pkt));
    json.key("port").value(static_cast<std::uint64_t>(e.port));
    json.key("vl").value(static_cast<std::uint64_t>(e.vl));
    json.end_object();
    json.end_object();
  }
}

// The profiler has no per-window record (that would be a per-event cost the
// passive contract forbids), so each shard's track shows its two aggregate
// phases as spans laid end-to-end: [0, processing) then [processing,
// processing + barrier_wait).  The relative widths are the point of the
// visualization -- a shard whose barrier span dominates is the one waiting
// on its neighbours.  Host nanoseconds, t = 0 at run start.
void emit_profiler_track(JsonWriter& json, const ProfileSummary& p) {
  metadata(json, "process_name", kPidProfiler, 0, "engine profiler (host)");
  for (std::size_t i = 0; i < p.shard_phases.size(); ++i) {
    const std::uint64_t tid = static_cast<std::uint64_t>(i);
    metadata(json, "thread_name", kPidProfiler, tid,
             "shard " + std::to_string(i));
    const ShardPhaseProfile& s = p.shard_phases[i];
    event_header(json, "processing", "X", kPidProfiler, tid, 0.0);
    json.key("dur").value(us(static_cast<SimTime>(s.processing_ns)));
    json.key("args").begin_object();
    json.key("events_processed").value(s.events_processed);
    json.key("handoffs_out").value(s.handoffs_out);
    json.end_object();
    json.end_object();
    if (s.barrier_wait_ns > 0) {
      event_header(json, "barrier-wait", "X", kPidProfiler, tid,
                   us(static_cast<SimTime>(s.processing_ns)));
      json.key("dur").value(us(static_cast<SimTime>(s.barrier_wait_ns)));
      json.end_object();
    }
  }
  const std::uint64_t driver_tid =
      static_cast<std::uint64_t>(p.shard_phases.size());
  metadata(json, "thread_name", kPidProfiler, driver_tid, "driver");
  event_header(json, "mailbox-drain", "X", kPidProfiler, driver_tid, 0.0);
  json.key("dur").value(us(static_cast<SimTime>(p.mailbox_ns)));
  json.key("args").begin_object();
  json.key("windows").value(p.windows);
  json.key("handoff_messages").value(p.handoff_messages);
  json.end_object();
  json.end_object();
  event_header(json, "control-steps", "X", kPidProfiler, driver_tid,
               us(static_cast<SimTime>(p.mailbox_ns)));
  json.key("dur").value(us(static_cast<SimTime>(p.control_ns)));
  json.key("args").begin_object();
  json.key("control_steps").value(p.control_steps);
  json.end_object();
  json.end_object();
}

}  // namespace

std::string chrome_trace_json(const Fabric& fabric,
                              const ChromeTraceData& data) {
  JsonWriter json;
  json.begin_object();
  json.key("displayTimeUnit").value("ns");
  json.key("traceEvents").begin_array();
  if (data.packets != nullptr && !data.packets->empty()) {
    emit_packet_track(json, fabric, *data.packets);
  }
  if (data.control != nullptr && !data.control->empty()) {
    emit_control_track(json, *data.control);
  }
  if (data.timeline != nullptr && data.timeline->enabled()) {
    emit_counter_track(json, *data.timeline);
  }
  if (data.flight != nullptr && data.flight->valid()) {
    emit_flight_track(json, *data.flight);
  }
  if (data.profile != nullptr && data.profile->enabled) {
    emit_profiler_track(json, *data.profile);
  }
  json.end_array();
  json.end_object();
  return json.str();
}

void write_chrome_trace(const std::string& path, const Fabric& fabric,
                        const ChromeTraceData& data) {
  std::ofstream out(path, std::ios::trunc);
  MLID_EXPECT(out.good(), "cannot open chrome-trace file for writing");
  out << chrome_trace_json(fabric, data) << "\n";
  out.flush();
  MLID_EXPECT(out.good(), "chrome-trace write failed");
}

}  // namespace mlid

#include "harness/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace mlid {
namespace {

// Reads the value of a flag that accepts both `--flag=V` and `--flag V`.
// Advances `i` past the consumed value token in the two-token form.
bool flag_value(int argc, char** argv, int& i, std::string_view name,
                std::string_view& value) {
  const std::string_view arg = argv[i];
  if (arg.rfind(name, 0) == 0 && arg.size() > name.size() &&
      arg[name.size()] == '=') {
    value = arg.substr(name.size() + 1);
    return true;
  }
  if (arg == name && i + 1 < argc) {
    value = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

CliOptions::CliOptions(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--csv") {
      csv_ = true;
    } else if (arg == "--json") {
      json_ = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_ = std::string(arg.substr(6));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed_ = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_ = static_cast<unsigned>(
          std::strtoul(arg.data() + 10, nullptr, 10));
    } else if (flag_value(argc, argv, i, "--fail-links", value)) {
      fail_links_ = static_cast<int>(std::strtol(value.data(), nullptr, 10));
    } else if (flag_value(argc, argv, i, "--fail-at-ns", value)) {
      fail_at_ns_ = std::strtoll(value.data(), nullptr, 10);
    } else if (flag_value(argc, argv, i, "--recover-at-ns", value)) {
      recover_at_ns_ = std::strtoll(value.data(), nullptr, 10);
    } else {
      positional_.emplace_back(arg);
    }
  }
}

FaultSchedule CliOptions::fault_schedule(const FatTreeFabric& fabric) const {
  if (fail_links_ <= 0) return FaultSchedule{};
  return FaultSchedule::random_uplink_failures(fabric, fail_links_, fail_at_ns_,
                                               seed_ ^ 0xFA11u, recover_at_ns_);
}

}  // namespace mlid

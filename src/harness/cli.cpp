#include "harness/cli.hpp"

#include <cstdlib>
#include <string_view>

namespace mlid {

CliOptions::CliOptions(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--csv") {
      csv_ = true;
    } else if (arg == "--json") {
      json_ = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_ = std::string(arg.substr(6));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed_ = std::strtoull(arg.data() + 7, nullptr, 10);
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_ = static_cast<unsigned>(
          std::strtoul(arg.data() + 10, nullptr, 10));
    } else {
      positional_.emplace_back(arg);
    }
  }
}

}  // namespace mlid

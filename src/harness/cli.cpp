#include "harness/cli.hpp"

#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <string_view>

#include "harness/sweep.hpp"
#include "obs/stream.hpp"
#include "routing/adaptive.hpp"
#include "routing/registry.hpp"
#include "scenario/scenario.hpp"

namespace mlid {
namespace {

constexpr std::string_view kUsage =
    "flags:\n"
    "  --help             print this message and exit\n"
    "  --quick            shrink windows & load grid (CI-friendly)\n"
    "  --seed=N           master seed\n"
    "  --csv              also print the CSV block\n"
    "  --json             also print a JSON result blob\n"
    "  --out=PATH         also write CSV (and JSON if --json) to PATH.csv /\n"
    "                     PATH.json\n"
    "  --threads=N        worker threads for the sweep (N >= 1; omit the\n"
    "                     flag to use the hardware concurrency)\n"
    "  --shards=N         engine shards per simulation (N >= 1; >1 runs the\n"
    "                     sharded conservative-sync engine, which forces the\n"
    "                     canonical event order)\n"
    "  --event-queue=K    pending-event structure: heap | ladder\n"
    "  --scheme=NAME      routing scheme, by registry name (see the\n"
    "                     'registered schemes' line below)\n"
    "  --scenario=NAME    production scenario, by registry name (see the\n"
    "                     'registered scenarios' line below)\n"
    "  --list-scenarios   print every registered scenario and exit\n"
    "  --policy=NAME      up-phase forwarding policy (see the 'forwarding\n"
    "                     policies' line below)\n"
    "  --vl-map=NAME      HCA-side dynamic VL assignment (see the 'vl maps'\n"
    "                     line below)\n"
    "  --no-telemetry     skip the extended per-link/histogram telemetry\n"
    "  --fail-links=N     fail N random inter-switch uplinks mid-run\n"
    "  --fail-at-ns=T     when the failures hit (default 20000)\n"
    "  --recover-at-ns=T  bring the failed links back at T (default: never)\n"
    "  --cc               enable IBA congestion control (FECN/BECN + CCT)\n"
    "  --cc-threshold=N   FECN marking backlog threshold, packets\n"
    "  --cc-timer-ns=T    CCT recovery-timer period\n"
    "  --sample-interval-ns=T  interval-sampler cadence (0 = off)\n"
    "  --chrome-trace=PATH     write a chrome://tracing / Perfetto JSON "
    "trace\n"
    "  --trace-packets=N  record up to N per-packet event timelines\n"
    "  --trace-stride=K   trace every K-th generated packet\n"
    "  --flight-recorder=K     keep the last K engine events per device\n"
    "                     (works under --shards: per-shard rings, dump\n"
    "                     tagged with the owning shard)\n"
    "  --profile          engine self-profiling (phase breakdown in results\n"
    "                     and manifests; passive, results unchanged)\n"
    "  --progress         stderr heartbeat per completed sweep point\n"
    "  --metrics-out=FILE stream run metrics as JSONL to FILE\n"
    "  --metrics-interval-ns=T  metrics window cadence (default 10000,\n"
    "                     must be >= 1)\n"
    "The fault, CC and tracing value flags also accept the two-token form\n"
    "(`--fail-links 4`, `--cc-threshold 3`).\n";

// Full usage text: the static flag table plus the live registry contents,
// so --help (and every usage error) enumerates exactly what this build can
// run -- including schemes/policies test binaries register themselves.
std::string usage_text() {
  std::string text(kUsage);
  text += "registered schemes: " + scheme_listing() + "\n";
  text += "registered scenarios: " + scenario_listing() + "\n";
  text += "forwarding policies: " + forwarding_policy_listing() + "\n";
  text += "vl maps: " + vl_map_listing() + "\n";
  return text;
}

[[noreturn]] void usage_error(const std::string& message) {
  std::fprintf(stderr, "error: %s\n%s", message.c_str(),
               usage_text().c_str());
  std::exit(2);
}

// Parses the *entire* token as a base-10 integer; anything else (empty,
// trailing junk like `--threads=4x`, out of range) is a fatal usage error.
// The old strtol-with-null-endptr parsing accepted those silently -- e.g.
// `--seed=abc` became seed 0 -- which is exactly the bug class this guards.
template <typename Int>
Int parse_int(std::string_view flag, std::string_view text) {
  Int value{};
  const auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value, 10);
  if (ec != std::errc{} || ptr != text.data() + text.size()) {
    usage_error("invalid value '" + std::string(text) + "' for " +
                std::string(flag) + " (expected a base-10 integer)");
  }
  return value;
}

// Reads the value of a flag that accepts both `--flag=V` and `--flag V`.
// Advances `i` past the consumed value token in the two-token form.
bool flag_value(int argc, char** argv, int& i, std::string_view name,
                std::string_view& value) {
  const std::string_view arg = argv[i];
  if (arg.rfind(name, 0) == 0 && arg.size() > name.size() &&
      arg[name.size()] == '=') {
    value = arg.substr(name.size() + 1);
    return true;
  }
  if (arg == name) {
    if (i + 1 >= argc) {
      usage_error("flag " + std::string(name) + " needs a value");
    }
    value = argv[++i];
    return true;
  }
  return false;
}

}  // namespace

CliOptions::CliOptions(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    std::string_view value;
    if (arg == "--help") {
      std::fputs(usage_text().c_str(), stdout);
      std::exit(0);
    } else if (arg == "--quick") {
      quick_ = true;
    } else if (arg == "--csv") {
      csv_ = true;
    } else if (arg == "--json") {
      json_ = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_ = std::string(arg.substr(6));
    } else if (arg.rfind("--seed=", 0) == 0) {
      seed_ = parse_int<std::uint64_t>("--seed", arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      threads_ = parse_int<unsigned>("--threads", arg.substr(10));
      // from_chars already rejects negatives for unsigned; 0 would silently
      // mean "hardware concurrency", which an explicit flag must not.
      if (threads_ == 0) {
        usage_error(
            "--threads must be >= 1 (omit the flag for hardware concurrency)");
      }
    } else if (flag_value(argc, argv, i, "--shards", value)) {
      shards_ = parse_int<unsigned>("--shards", value);
      if (shards_ == 0) usage_error("--shards must be >= 1");
    } else if (arg == "--no-telemetry") {
      telemetry_ = false;
    } else if (flag_value(argc, argv, i, "--scheme", value)) {
      // Validate at parse time so a typo dies here with the registry
      // listing, not deep inside Subnet construction.
      if (!SchemeRegistry::instance().contains(value)) {
        usage_error("unknown routing scheme '" + std::string(value) +
                    "' for --scheme (registered: " + scheme_listing() + ")");
      }
      scheme_ = std::string(value);
    } else if (arg == "--list-scenarios") {
      for (const std::string& name : scenario_names()) {
        const auto scenario = make_scenario(name);
        std::printf("%s - %s\n", name.c_str(),
                    std::string(scenario->description()).c_str());
      }
      std::exit(0);
    } else if (flag_value(argc, argv, i, "--scenario", value)) {
      if (!ScenarioRegistry::instance().contains(value)) {
        usage_error("unknown scenario '" + std::string(value) +
                    "' for --scenario (registered: " + scenario_listing() +
                    ")");
      }
      scenario_ = std::string(value);
    } else if (flag_value(argc, argv, i, "--policy", value)) {
      if (!ForwardingPolicyRegistry::instance().contains(value)) {
        usage_error("unknown forwarding policy '" + std::string(value) +
                    "' for --policy (registered: " +
                    forwarding_policy_listing() + ")");
      }
      policy_ = std::string(value);
    } else if (flag_value(argc, argv, i, "--vl-map", value)) {
      if (!VlMapRegistry::instance().contains(value)) {
        usage_error("unknown vl map '" + std::string(value) +
                    "' for --vl-map (registered: " + vl_map_listing() + ")");
      }
      vl_map_ = std::string(value);
    } else if (flag_value(argc, argv, i, "--event-queue", value)) {
      const auto kind = event_queue_from_string(value);
      if (!kind) {
        usage_error("invalid value '" + std::string(value) +
                    "' for --event-queue (expected heap or ladder)");
      }
      event_queue_ = *kind;
    } else if (arg == "--cc") {
      cc_ = true;
    } else if (flag_value(argc, argv, i, "--cc-threshold", value)) {
      cc_threshold_ = parse_int<std::uint32_t>("--cc-threshold", value);
    } else if (flag_value(argc, argv, i, "--cc-timer-ns", value)) {
      cc_timer_ns_ = parse_int<std::int64_t>("--cc-timer-ns", value);
    } else if (flag_value(argc, argv, i, "--sample-interval-ns", value)) {
      sample_interval_ns_ =
          parse_int<std::int64_t>("--sample-interval-ns", value);
    } else if (flag_value(argc, argv, i, "--chrome-trace", value)) {
      if (value.empty()) usage_error("--chrome-trace needs a file path");
      chrome_trace_ = std::string(value);
    } else if (flag_value(argc, argv, i, "--trace-packets", value)) {
      trace_packets_ = parse_int<std::uint32_t>("--trace-packets", value);
    } else if (flag_value(argc, argv, i, "--trace-stride", value)) {
      trace_stride_ = parse_int<std::uint32_t>("--trace-stride", value);
    } else if (flag_value(argc, argv, i, "--flight-recorder", value)) {
      flight_recorder_ = parse_int<std::uint32_t>("--flight-recorder", value);
    } else if (arg == "--profile") {
      profile_ = true;
    } else if (arg == "--progress") {
      progress_ = true;
    } else if (flag_value(argc, argv, i, "--metrics-out", value)) {
      if (value.empty()) usage_error("--metrics-out needs a file path");
      metrics_out_ = std::string(value);
    } else if (flag_value(argc, argv, i, "--metrics-interval-ns", value)) {
      metrics_interval_ns_ =
          parse_int<std::int64_t>("--metrics-interval-ns", value);
      if (metrics_interval_ns_ < 1) {
        usage_error("--metrics-interval-ns must be >= 1");
      }
    } else if (flag_value(argc, argv, i, "--fail-links", value)) {
      fail_links_ = parse_int<int>("--fail-links", value);
    } else if (flag_value(argc, argv, i, "--fail-at-ns", value)) {
      fail_at_ns_ = parse_int<std::int64_t>("--fail-at-ns", value);
    } else if (flag_value(argc, argv, i, "--recover-at-ns", value)) {
      recover_at_ns_ = parse_int<std::int64_t>("--recover-at-ns", value);
    } else if (arg.rfind("--", 0) == 0) {
      // A typo like `--quik` must not silently become a positional.
      usage_error("unknown flag '" + std::string(arg) + "'");
    } else {
      positional_.emplace_back(arg);
    }
  }
  if (shards_ > 1) {
    // Per-event observability that needs a single global event order stays
    // sequential-only: the sharded engine dispatches events concurrently
    // across shard queues, so these flags would silently produce empty or
    // interleaved output.  Fail loudly instead.  The interval sampler
    // (--sample-interval-ns) is fine: the sharded driver owns the timeline
    // and reproduces the sequential one.  --flight-recorder is fine too:
    // every device is owned by exactly one shard, so the per-device rings
    // record the same events; the dump is tagged with the owning shard.
    if (!chrome_trace_.empty()) {
      usage_error(
          "--chrome-trace is sequential-only; drop --shards (or set "
          "--shards=1) to export a trace");
    }
    if (trace_packets_ > 0) {
      usage_error(
          "--trace-packets is sequential-only; drop --shards (or set "
          "--shards=1) to record packet timelines");
    }
  }
}

SweepOptions CliOptions::sweep_options() const {
  SweepOptions options;
  options.threads = threads_;
  options.shards = shards_;
  options.quick = quick_;
  if (!telemetry_) options.telemetry = false;
  options.event_queue = event_queue_;
  options.cc = cc();
  options.sample_interval_ns = sample_interval_ns_;
  options.profile = profile_;
  options.progress = progress_;
  return options;
}

std::unique_ptr<MetricsStreamer> CliOptions::make_metrics_streamer() const {
  if (metrics_out_.empty()) return nullptr;
  try {
    return std::make_unique<MetricsStreamer>(metrics_out_,
                                             metrics_interval_ns_);
  } catch (const std::exception& e) {
    usage_error(std::string("--metrics-out: ") + e.what());
  }
}

FaultSchedule CliOptions::fault_schedule(const FatTreeFabric& fabric) const {
  if (fail_links_ <= 0) return FaultSchedule{};
  return FaultSchedule::random_uplink_failures(fabric, fail_links_, fail_at_ns_,
                                               seed_ ^ 0xFA11u, recover_at_ns_);
}

}  // namespace mlid

#include "harness/sweep.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <map>
#include <sstream>
#include <thread>

#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "obs/stream.hpp"
#include "parallel/sharded.hpp"

namespace mlid {

namespace {

// Feed each coordinate through a full SplitMix64 finalization so nearby
// grid points (vls 2 vs 4, load 0.40 vs 0.50) land in unrelated streams.
std::uint64_t mix_word(std::uint64_t h, std::uint64_t word) {
  return SplitMix64(h ^ word).next();
}

// Domain separator between the simulation and traffic stream families.
constexpr std::uint64_t kTrafficSeedDomain = 0x5EEDFACE5EEDFACEull;

}  // namespace

std::uint64_t sweep_point_seed(std::uint64_t base, std::string_view scheme,
                               int vls, double load) {
  std::uint64_t h = SplitMix64(base).next();
  // The registry's stable per-scheme seed key, not a hash of the name:
  // renaming a scheme must not move its streams, and SLID/MLID keep the
  // retired enum's 0/1 so pre-registry BENCH numbers reproduce.
  h = mix_word(h, scheme_seed_key(scheme));
  h = mix_word(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(vls)));
  h = mix_word(h, std::bit_cast<std::uint64_t>(load));
  return h;
}

std::uint64_t sweep_traffic_seed(std::uint64_t base, int vls, double load) {
  std::uint64_t h = SplitMix64(base ^ kTrafficSeedDomain).next();
  h = mix_word(h, static_cast<std::uint64_t>(static_cast<std::int64_t>(vls)));
  h = mix_word(h, std::bit_cast<std::uint64_t>(load));
  return h;
}

std::vector<SweepPoint> run_sweep(const FigureSpec& base_spec,
                                  const SweepOptions& options) {
  FigureSpec spec = base_spec;
  if (options.quick) {
    spec.sim.warmup_ns = 5'000;
    spec.sim.measure_ns = 20'000;
    spec.loads = {0.10, 0.40, 0.80};
  }
  if (options.telemetry) spec.sim.telemetry = *options.telemetry;
  if (options.event_queue) spec.sim.event_queue = *options.event_queue;
  if (options.cc) spec.sim.cc = *options.cc;
  if (options.sample_interval_ns) {
    spec.sim.sample_interval_ns = *options.sample_interval_ns;
  }
  if (options.profile) spec.sim.profile = true;
  MLID_EXPECT(options.shards >= 1, "SweepOptions::shards must be >= 1");
  unsigned threads = options.threads;

  const FatTreeParams params(spec.m, spec.n);
  const FatTreeFabric fabric(params);

  // One subnet per scheme; simulations only read them.
  std::vector<std::unique_ptr<Subnet>> subnets;
  for (const std::string& scheme : spec.schemes) {
    subnets.push_back(std::make_unique<Subnet>(fabric, scheme));
  }

  // Policy arms of the grid (see FigureSpec::policies).
  const std::vector<PolicyConfig> arms =
      spec.policies.empty() ? std::vector<PolicyConfig>{spec.sim.policy}
                            : spec.policies;

  // Materialize the grid, then run the independent points on a small
  // worker pool (the points differ wildly in cost, so dynamic work
  // stealing via an atomic cursor beats static partitioning).
  struct Job {
    std::size_t subnet_index;
    SweepPoint point;
  };
  std::vector<Job> jobs;
  for (std::size_t s = 0; s < spec.schemes.size(); ++s) {
    for (const int vls : spec.vl_counts) {
      for (const double load : spec.loads) {
        for (const PolicyConfig& arm : arms) {
          jobs.push_back(
              Job{s, SweepPoint{spec.schemes[s], vls, load, arm, {}, {}}});
        }
      }
    }
  }

  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(jobs.size()));

  // Denominator of the manifest's bytes_per_endport: every physical port in
  // the fabric (switch and node side alike).
  std::size_t fabric_ports = 0;
  for (DeviceId dev = 0; dev < fabric.fabric().num_devices(); ++dev) {
    fabric_ports +=
        static_cast<std::size_t>(fabric.fabric().device(dev).num_ports());
  }

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  const auto sweep_start = std::chrono::steady_clock::now();
  // Stderr heartbeat + per-point metrics line, shared by every worker.
  auto note_completed = [&](const SweepPoint& point) {
    const std::size_t done = completed.fetch_add(1) + 1;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      sweep_start)
            .count();
    if (options.metrics != nullptr) {
      MetricsPoint mp;
      const std::string series =
          point.scheme + " " + std::to_string(point.vls) + "VL";
      mp.series = series;
      mp.load = point.load;
      mp.wall_seconds = point.manifest.wall_seconds;
      mp.events_processed = point.manifest.events_processed;
      mp.events_per_sec = point.manifest.events_per_sec;
      mp.completed = done;
      mp.total = jobs.size();
      options.metrics->point(mp);
    }
    if (options.progress) {
      const double eta =
          elapsed / static_cast<double>(done) *
          static_cast<double>(jobs.size() - done);
      // One fprintf call per line keeps concurrent workers from
      // interleaving mid-line; stdout stays clean for BENCH/json output.
      std::fprintf(stderr,
                   "progress: %zu/%zu points, %.1fs elapsed, eta %.1fs\n",
                   done, jobs.size(), elapsed, eta);
    }
  };
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      Job& job = jobs[i];
      SimConfig cfg = spec.sim;
      cfg.num_vls = job.point.vls;
      cfg.policy = job.point.policy;
      // Decorrelate the RNG streams across grid points while keeping each
      // point reproducible in isolation; the hash depends only on the
      // point's own coordinates, never on the grid shape or job index.
      cfg.seed = sweep_point_seed(spec.sim.seed, job.point.scheme,
                                  job.point.vls, job.point.load);
      TrafficConfig traffic = spec.traffic;
      traffic.seed = sweep_traffic_seed(spec.traffic.seed, job.point.vls,
                                        job.point.load);
      const auto start = std::chrono::steady_clock::now();
      std::size_t hot_bytes = 0;
      if (options.shards > 1) {
        // Sharded engine per point.  With several sweep workers already in
        // flight the shards drain inline (1 thread) to avoid oversubscribing
        // the host; a single-worker sweep lets the engine pick its own pool.
        ShardedSimulation sim = ShardedSimulation::open_loop(
            *subnets[job.subnet_index], cfg, traffic, job.point.load,
            {static_cast<std::uint32_t>(options.shards),
             threads > 1 ? 1u : 0u});
        job.point.result = sim.run();
        job.point.manifest.queue = sim.queue_stats();
        hot_bytes = sim.memory_footprint();
      } else {
        Simulation sim = Simulation::open_loop(*subnets[job.subnet_index],
                                               cfg, traffic, job.point.load);
        job.point.result = sim.run();
        job.point.manifest.queue = sim.queue_stats();
        hot_bytes = sim.memory_footprint();
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      job.point.manifest.sim_seed = cfg.seed;
      job.point.manifest.traffic_seed = traffic.seed;
      job.point.manifest.wall_seconds = wall;
      job.point.manifest.events_processed = job.point.result.events_processed;
      job.point.manifest.events_scheduled = job.point.result.events_scheduled;
      job.point.manifest.events_per_sec =
          wall > 0.0
              ? static_cast<double>(job.point.result.events_processed) / wall
              : 0.0;
      job.point.manifest.threads = threads;
      job.point.manifest.shards = options.shards;
      job.point.manifest.policy = job.point.policy.forwarding;
      job.point.manifest.vl_map = job.point.policy.vl_map;
      job.point.manifest.bytes_per_endport =
          static_cast<double>(hot_bytes +
                              subnets[job.subnet_index]->routes()
                                  .memory_bytes()) /
          static_cast<double>(fabric_ports);
      job.point.manifest.profile = job.point.result.profile;
      note_completed(job.point);
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  std::vector<SweepPoint> points;
  points.reserve(jobs.size());
  for (auto& job : jobs) points.push_back(std::move(job.point));
  return points;
}

double saturation_throughput(const std::vector<SweepPoint>& points,
                             std::string_view scheme, int vls) {
  double best = 0.0;
  for (const auto& p : points) {
    if (p.scheme == scheme && p.vls == vls) {
      best = std::max(best, p.result.accepted_bytes_per_ns_per_node);
    }
  }
  return best;
}

double find_saturation_load(const Subnet& subnet, const SimConfig& cfg,
                            const TrafficConfig& traffic, double slack,
                            double tolerance) {
  MLID_EXPECT(slack > 0.0 && slack < 1.0, "slack must be a fraction");
  MLID_EXPECT(tolerance > 0.0 && tolerance < 1.0,
              "tolerance must be a fraction");
  auto keeps_up = [&](double load) {
    Simulation sim = Simulation::open_loop(subnet, cfg, traffic, load);
    const SimResult r = sim.run();
    // Offered bytes/ns/node at this load (endnode links carry one byte per
    // byte_time_ns at load 1.0).
    const double offered =
        load / static_cast<double>(cfg.byte_time_ns);
    return r.accepted_bytes_per_ns_per_node >= (1.0 - slack) * offered;
  };
  double lo = tolerance;  // assume the network is not saturated at ~0 load
  double hi = 1.0;
  if (keeps_up(hi)) return hi;
  if (!keeps_up(lo)) return 0.0;
  while (hi - lo > tolerance) {
    const double mid = 0.5 * (lo + hi);
    (keeps_up(mid) ? lo : hi) = mid;
  }
  return lo;
}

Replication replicate(const Subnet& subnet, const SimConfig& cfg,
                      const TrafficConfig& traffic, double offered_load,
                      int runs) {
  MLID_EXPECT(runs >= 1, "need at least one replication");
  Replication rep;
  for (int i = 0; i < runs; ++i) {
    SimConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + static_cast<std::uint64_t>(i) * 7919u;
    TrafficConfig run_traffic = traffic;
    run_traffic.seed = traffic.seed + static_cast<std::uint64_t>(i) * 104729u;
    Simulation sim =
        Simulation::open_loop(subnet, run_cfg, run_traffic, offered_load);
    const SimResult r = sim.run();
    if (rep.runs == 0) rep.first = r;
    rep.accepted.add(r.accepted_bytes_per_ns_per_node);
    rep.avg_latency.add(r.avg_latency_ns);
    ++rep.runs;
  }
  return rep;
}

namespace {

// Series label.  The policy arm joins the label only when it differs from
// the defaults, so single-arm sweeps render byte-identically to the
// pre-policy harness.
std::string series_name(const std::string& scheme, int vls,
                        const PolicyConfig& policy) {
  std::ostringstream os;
  os << scheme << " " << vls << "VL";
  if (policy != PolicyConfig{}) {
    os << " [" << policy.forwarding;
    if (policy.vl_map != "none") os << "+" << policy.vl_map;
    os << "]";
  }
  return os.str();
}

}  // namespace

std::string render_figure_table(const FigureSpec& spec,
                                const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  os << spec.title << "\n"
     << spec.m << "-port " << spec.n << "-tree, "
     << FatTreeParams(spec.m, spec.n).num_nodes() << " nodes, "
     << to_string(spec.traffic.kind) << " traffic, " << spec.sim.packet_bytes
     << "-byte packets\n";
  TextTable table({"series", "offered", "accepted B/ns/node", "avg lat ns",
                   "p99 lat ns", "avg hops", "max util", "delivered"});
  for (const auto& p : points) {
    const SimResult& r = p.result;
    table.add_row({series_name(p.scheme, p.vls, p.policy),
                   TextTable::num(p.load, 2),
                   TextTable::num(r.accepted_bytes_per_ns_per_node, 4),
                   TextTable::num(r.avg_latency_ns, 1),
                   TextTable::num(r.p99_latency_ns, 1),
                   TextTable::num(r.avg_hops, 2),
                   TextTable::num(r.max_link_utilization, 3),
                   std::to_string(r.packets_measured)});
  }
  os << table.to_string();
  return os.str();
}

std::string render_figure_csv(const FigureSpec& spec,
                              const std::vector<SweepPoint>& points) {
  TextTable table({"figure", "scheme", "vls", "offered_load",
                   "accepted_bytes_per_ns_per_node", "avg_latency_ns",
                   "p50_latency_ns", "p99_latency_ns", "avg_hops",
                   "mean_link_utilization", "max_link_utilization",
                   "packets_measured", "packets_dropped"});
  for (const auto& p : points) {
    const SimResult& r = p.result;
    table.add_row({spec.title, p.scheme,
                   std::to_string(p.vls), TextTable::num(p.load, 3),
                   TextTable::num(r.accepted_bytes_per_ns_per_node, 5),
                   TextTable::num(r.avg_latency_ns, 2),
                   TextTable::num(r.p50_latency_ns, 2),
                   TextTable::num(r.p99_latency_ns, 2),
                   TextTable::num(r.avg_hops, 3),
                   TextTable::num(r.mean_link_utilization, 4),
                   TextTable::num(r.max_link_utilization, 4),
                   std::to_string(r.packets_measured),
                   std::to_string(r.packets_dropped)});
  }
  return table.to_csv();
}

std::string render_figure_summary(const FigureSpec& spec,
                                  const std::vector<SweepPoint>& points) {
  std::ostringstream os;
  TextTable table({"series", "saturation B/ns/node", "latency@lowest-load ns"});
  std::map<int, std::pair<double, double>> ratio;  // vls -> (slid, mlid) sat
  for (const std::string& scheme : spec.schemes) {
    for (const int vls : spec.vl_counts) {
      const double sat = saturation_throughput(points, scheme, vls);
      double low_load_latency = 0.0;
      double lowest = 2.0;
      for (const auto& p : points) {
        if (p.scheme == scheme && p.vls == vls && p.load < lowest) {
          lowest = p.load;
          low_load_latency = p.result.avg_latency_ns;
        }
      }
      table.add_row({series_name(scheme, vls, spec.sim.policy),
                     TextTable::num(sat, 4),
                     TextTable::num(low_load_latency, 1)});
      if (scheme == "SLID") ratio[vls].first = sat;
      if (scheme == "MLID") ratio[vls].second = sat;
    }
  }
  os << table.to_string();
  for (const auto& [vls, pair] : ratio) {
    if (pair.first > 0.0 && pair.second > 0.0) {
      os << "MLID/SLID saturation throughput @" << vls << "VL: "
         << TextTable::num(pair.second / pair.first, 3) << "x\n";
    }
  }
  return os.str();
}

}  // namespace mlid

// Scenario sweep orchestrator: runs registered production scenarios
// (scenario/scenario.hpp) through the same machinery as run_sweep --
// point-parallel worker pool, optional sharded engine per point, per-point
// manifests -- and evaluates each scenario's self-check contracts against
// the outcomes.  bench/ablation_scenarios is the CLI front end; its exit
// code is the number of violated contracts.
#pragma once

#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "scenario/scenario.hpp"

namespace mlid {

/// One finished scenario arm: the outcome plus the reproducibility manifest
/// (PointManifest::scenario names the owning scenario, BENCH schema v7).
struct ScenarioPoint {
  std::string scenario;
  std::string arm;
  std::string scheme;
  bool closed_loop = false;
  SimResult sim;      ///< open-loop arms
  BurstResult burst;  ///< closed-loop arms
  PointManifest manifest;
};

/// Everything one scenario produced: the arm points in plan order plus the
/// evaluated contracts.
struct ScenarioReport {
  std::string name;
  std::string description;
  std::vector<ScenarioPoint> points;
  std::vector<ContractCheck> checks;

  /// Violated contracts (the bench's exit-code contribution).
  [[nodiscard]] int violations() const noexcept {
    int n = 0;
    for (const ContractCheck& c : checks) n += c.passed ? 0 : 1;
    return n;
  }
};

/// Execution knobs, mirroring SweepOptions plus the fabric shape (scenarios
/// plan against one fabric; the default is the paper's 4-port 3-tree).
struct ScenarioSweepOptions {
  unsigned threads = 0;  ///< worker threads (0 = hardware concurrency)
  unsigned shards = 1;   ///< engine shards per arm (1 = sequential engine)
  bool quick = false;    ///< CI-sized windows and workloads
  int m = 4;
  int n = 3;
  std::uint64_t base_seed = 1;
  /// Force SimConfig::profile for every arm (ProfileSummary in each arm's
  /// manifest; passive, results unchanged).
  bool profile = false;
  /// Stderr heartbeat: one "progress:" line per completed arm (arms done /
  /// total, elapsed, ETA).  Never on stdout.
  bool progress = false;
};

/// Per-scenario stream derivation, the scenario-space analogue of
/// sweep_point_seed: a SplitMix64 chain over the base seed and the scenario
/// *name* (stable by construction -- renaming a scenario moves its streams,
/// reordering the registry does not).  Deliberately arm-independent: every
/// arm of one scenario faces identical simulation and traffic streams, so
/// arms compare their configuration deltas and nothing else.
[[nodiscard]] std::uint64_t scenario_seed(std::uint64_t base,
                                          std::string_view scenario);
/// Traffic-stream seed, domain-separated from the simulation streams (same
/// separator discipline as sweep_traffic_seed).
[[nodiscard]] std::uint64_t scenario_traffic_seed(std::uint64_t base,
                                                  std::string_view scenario);

/// Run one scenario: plan its arms, execute them on a worker pool (sharded
/// engine per arm when options.shards > 1; arms with a fault schedule get
/// their own live SubnetManager), evaluate the contracts.  Every arm runs
/// under the canonical event order regardless of the shard count, so
/// scenario results -- and contract verdicts -- are byte-identical for any
/// --shards value (pinned by tests/scenario/scenario_test.cpp).
ScenarioReport run_scenario(const Scenario& scenario,
                            const ScenarioSweepOptions& options = {});

/// Run several registered scenarios by name (every registered scenario when
/// `names` is empty), in registry order.
std::vector<ScenarioReport> run_scenarios(
    const std::vector<std::string>& names,
    const ScenarioSweepOptions& options = {});

/// Aligned per-arm outcome table for one scenario.
std::string render_scenario_table(const ScenarioReport& report);

/// PASS/FAIL table of the scenario's contracts.
std::string render_contract_table(const ScenarioReport& report);

}  // namespace mlid

#include "harness/scenario_sweep.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <optional>
#include <thread>

#include "common/rng.hpp"
#include "common/text_table.hpp"
#include "parallel/sharded.hpp"
#include "subnet/sm.hpp"

namespace mlid {

namespace {

// Same finalization discipline as sweep_point_seed's coordinate mixing.
std::uint64_t mix_word(std::uint64_t h, std::uint64_t word) {
  return SplitMix64(h ^ word).next();
}

// Domain separator between the simulation and traffic stream families
// (sweep.cpp uses the same constant for the grid sweeps; scenario streams
// are separated from grid streams by the name hash below).
constexpr std::uint64_t kTrafficSeedDomain = 0x5EEDFACE5EEDFACEull;

// FNV-1a over the lowercased scenario name: lookups are case-insensitive,
// so "Incast" and "incast" must derive identical streams.
std::uint64_t hash_scenario_name(std::string_view name) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : name) {
    h ^= static_cast<std::uint64_t>(
        std::tolower(static_cast<unsigned char>(c)));
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t scenario_seed(std::uint64_t base, std::string_view scenario) {
  return mix_word(SplitMix64(base).next(), hash_scenario_name(scenario));
}

std::uint64_t scenario_traffic_seed(std::uint64_t base,
                                    std::string_view scenario) {
  return mix_word(SplitMix64(base ^ kTrafficSeedDomain).next(),
                  hash_scenario_name(scenario));
}

ScenarioReport run_scenario(const Scenario& scenario,
                            const ScenarioSweepOptions& options) {
  MLID_EXPECT(options.shards >= 1, "ScenarioSweepOptions::shards must be >= 1");
  const FatTreeParams params(options.m, options.n);

  ScenarioReport report;
  report.name = std::string(scenario.name());
  report.description = std::string(scenario.description());

  // Plan against a throwaway fabric; execution builds a fresh, identically
  // parameterized fabric per arm because arms with a fault schedule mutate
  // theirs through the live SM (SubnetManager takes FatTreeFabric&).
  const FatTreeFabric plan_fabric(params);
  std::vector<ScenarioRun> runs = scenario.plan(plan_fabric, options.quick);
  MLID_EXPECT(!runs.empty(), "a scenario must plan at least one arm");

  // Every arm of one scenario shares these streams (see scenario_seed).
  const std::uint64_t sim_seed = scenario_seed(options.base_seed, report.name);
  const std::uint64_t traffic_seed =
      scenario_traffic_seed(options.base_seed, report.name);

  // bytes_per_endport denominator, as in run_sweep: every physical port.
  std::size_t fabric_ports = 0;
  for (DeviceId dev = 0; dev < plan_fabric.fabric().num_devices(); ++dev) {
    fabric_ports += static_cast<std::size_t>(
        plan_fabric.fabric().device(dev).num_ports());
  }

  struct Job {
    ScenarioRun run;
    ScenarioPoint point;
  };
  std::vector<Job> jobs;
  jobs.reserve(runs.size());
  for (ScenarioRun& run : runs) {
    ScenarioPoint point;
    point.scenario = report.name;
    point.arm = run.arm;
    point.scheme = run.scheme;
    point.closed_loop = run.closed_loop;
    jobs.push_back(Job{std::move(run), std::move(point)});
  }

  unsigned threads = options.threads;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads == 0) threads = 1;
  threads = std::min<unsigned>(threads, static_cast<unsigned>(jobs.size()));

  std::atomic<std::size_t> cursor{0};
  std::atomic<std::size_t> completed{0};
  const auto sweep_start = std::chrono::steady_clock::now();
  auto worker = [&]() {
    for (;;) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs.size()) return;
      Job& job = jobs[i];
      SimConfig cfg = job.run.sim;
      cfg.seed = sim_seed;
      if (options.profile) cfg.profile = true;
      // Canonical event order for every arm, sharded or not: the sharded
      // engine forces it anyway, so pinning it here makes scenario results
      // (and therefore contract verdicts) invariant under --shards.
      cfg.event_order = EventOrder::kCanonical;
      // Per-arm fabric + subnet: fault arms mutate the fabric via the SM.
      FatTreeFabric fabric(params);
      const Subnet subnet(fabric, job.run.scheme);
      const ShardOptions par{static_cast<std::uint32_t>(options.shards),
                             threads > 1 ? 1u : 0u};
      const auto start = std::chrono::steady_clock::now();
      std::size_t hot_bytes = 0;
      std::uint64_t events_processed = 0;
      std::uint64_t events_scheduled = 0;
      if (job.run.closed_loop) {
        if (options.shards > 1) {
          ShardedSimulation sim =
              ShardedSimulation::burst(subnet, cfg, job.run.workload, par);
          job.point.burst = sim.run_to_completion();
          job.point.manifest.queue = sim.queue_stats();
          hot_bytes = sim.memory_footprint();
        } else {
          Simulation sim = Simulation::burst(subnet, cfg, job.run.workload);
          job.point.burst = sim.run_to_completion();
          job.point.manifest.queue = sim.queue_stats();
          hot_bytes = sim.memory_footprint();
        }
        events_processed = job.point.burst.events_processed;
        events_scheduled = job.point.burst.events_scheduled;
      } else {
        TrafficConfig traffic = job.run.traffic;
        traffic.seed = traffic_seed;
        job.point.manifest.traffic_seed = traffic.seed;
        // The live SM exists only for arms that actually schedule faults;
        // fault-free arms take the byte-identical unattached path.
        std::optional<SubnetManager> sm;
        OpenLoopOptions sim_options;
        if (!job.run.faults.empty()) {
          sm.emplace(fabric, subnet);
          sim_options.live_sm = &*sm;
          sim_options.faults = job.run.faults;
        }
        if (options.shards > 1) {
          ShardedSimulation sim = ShardedSimulation::open_loop(
              subnet, cfg, traffic, job.run.offered_load, par, sim_options);
          job.point.sim = sim.run();
          job.point.manifest.queue = sim.queue_stats();
          hot_bytes = sim.memory_footprint();
        } else {
          Simulation sim = Simulation::open_loop(
              subnet, cfg, traffic, job.run.offered_load, sim_options);
          job.point.sim = sim.run();
          job.point.manifest.queue = sim.queue_stats();
          hot_bytes = sim.memory_footprint();
        }
        events_processed = job.point.sim.events_processed;
        events_scheduled = job.point.sim.events_scheduled;
      }
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        start)
              .count();
      job.point.manifest.sim_seed = cfg.seed;
      job.point.manifest.wall_seconds = wall;
      job.point.manifest.events_processed = events_processed;
      job.point.manifest.events_scheduled = events_scheduled;
      job.point.manifest.events_per_sec =
          wall > 0.0 ? static_cast<double>(events_processed) / wall : 0.0;
      job.point.manifest.threads = threads;
      job.point.manifest.shards = options.shards;
      job.point.manifest.policy = cfg.policy.forwarding;
      job.point.manifest.vl_map = cfg.policy.vl_map;
      job.point.manifest.scenario = job.point.scenario;
      job.point.manifest.bytes_per_endport =
          static_cast<double>(hot_bytes + subnet.routes().memory_bytes()) /
          static_cast<double>(fabric_ports);
      job.point.manifest.profile = job.point.sim.profile;
      if (options.progress) {
        const std::size_t done = completed.fetch_add(1) + 1;
        const double elapsed =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sweep_start)
                .count();
        const double eta = elapsed / static_cast<double>(done) *
                           static_cast<double>(jobs.size() - done);
        std::fprintf(
            stderr,
            "progress: %s %zu/%zu arms, %.1fs elapsed, eta %.1fs\n",
            report.name.c_str(), done, jobs.size(), elapsed, eta);
      }
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  std::vector<ScenarioOutcome> outcomes;
  outcomes.reserve(jobs.size());
  for (Job& job : jobs) {
    ScenarioOutcome outcome;
    outcome.arm = job.point.arm;
    outcome.closed_loop = job.point.closed_loop;
    outcome.sim = job.point.sim;
    outcome.burst = job.point.burst;
    outcomes.push_back(std::move(outcome));
    report.points.push_back(std::move(job.point));
  }
  report.checks = scenario.evaluate(outcomes);
  return report;
}

std::vector<ScenarioReport> run_scenarios(
    const std::vector<std::string>& names,
    const ScenarioSweepOptions& options) {
  const std::vector<std::string> selected =
      names.empty() ? scenario_names() : names;
  std::vector<ScenarioReport> reports;
  reports.reserve(selected.size());
  for (const std::string& name : selected) {
    const std::unique_ptr<Scenario> scenario = make_scenario(name);
    reports.push_back(run_scenario(*scenario, options));
  }
  return reports;
}

std::string render_scenario_table(const ScenarioReport& report) {
  std::string out = report.name + ": " + report.description + "\n";
  TextTable table({"arm", "scheme", "mode", "throughput B/ns", "avg lat ns",
                   "p99 ns", "delivered", "dropped"});
  for (const ScenarioPoint& p : report.points) {
    if (p.closed_loop) {
      table.add_row({p.arm, p.scheme, "burst",
                     TextTable::num(p.burst.aggregate_bytes_per_ns(), 4),
                     TextTable::num(p.burst.avg_message_latency_ns, 1),
                     TextTable::num(p.burst.p99_message_latency_ns, 1),
                     std::to_string(p.burst.messages), "0"});
    } else {
      table.add_row({p.arm, p.scheme, "open-loop",
                     TextTable::num(p.sim.accepted_bytes_per_ns_per_node, 4),
                     TextTable::num(p.sim.avg_latency_ns, 1),
                     TextTable::num(p.sim.p99_latency_ns, 1),
                     std::to_string(p.sim.packets_delivered),
                     std::to_string(p.sim.packets_dropped)});
    }
  }
  out += table.to_string();
  return out;
}

std::string render_contract_table(const ScenarioReport& report) {
  TextTable table({"contract", "status", "measured", "bound", "detail"});
  for (const ContractCheck& c : report.checks) {
    table.add_row({c.name, c.passed ? "PASS" : "FAIL",
                   TextTable::num(c.measured, 4), TextTable::num(c.bound, 4),
                   c.detail});
  }
  return table.to_string();
}

}  // namespace mlid

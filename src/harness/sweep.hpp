// Experiment harness: run the paper's (scheme x VL x offered-load) sweeps
// and render latency-vs-accepted-traffic series like the paper's figures.
#pragma once

#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace mlid {

/// One full figure: a network, a traffic pattern, and the series grid.
struct FigureSpec {
  std::string title;           ///< e.g. "Figure 12: uniform, 4-port 3-tree"
  int m = 4;
  int n = 3;
  TrafficConfig traffic;
  SimConfig sim;                            ///< VL count is overridden per series
  std::vector<int> vl_counts = {1, 2, 4};   ///< paper: VL 1 / VL 2 / VL 4
  std::vector<SchemeKind> schemes = {SchemeKind::kSlid, SchemeKind::kMlid};
  std::vector<double> loads = kDefaultLoads();

  static std::vector<double> kDefaultLoads() {
    return {0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80, 0.95};
  }
};

/// One sweep sample: the series key plus the simulation outcome.
struct SweepPoint {
  SchemeKind scheme = SchemeKind::kSlid;
  int vls = 1;
  double load = 0.0;
  SimResult result;
};

/// Run the whole grid.  Independent simulations are distributed over
/// `threads` worker threads (0 = hardware concurrency); results come back
/// in deterministic grid order regardless of scheduling.
std::vector<SweepPoint> run_figure(const FigureSpec& spec,
                                   unsigned threads = 0);

/// Saturation throughput of a finished sweep: the highest accepted traffic
/// any load point of the given series reached.
double saturation_throughput(const std::vector<SweepPoint>& points,
                             SchemeKind scheme, int vls);

/// Bisection search for the saturation point: the highest offered load at
/// which accepted traffic still tracks the offered rate within `slack`
/// (relative).  Runs O(log(1 / tolerance)) simulations.
double find_saturation_load(const Subnet& subnet, const SimConfig& cfg,
                            const TrafficConfig& traffic, double slack = 0.05,
                            double tolerance = 0.02);

/// Mean and spread of one metric across independent seeded replications.
struct Replication {
  OnlineStats accepted;     ///< bytes/ns/node
  OnlineStats avg_latency;  ///< ns
  int runs = 0;
};

/// Run `runs` simulations of one configuration with decorrelated seeds and
/// accumulate the headline metrics -- the statistical backing for the
/// EXPERIMENTS.md claims.
Replication replicate(const Subnet& subnet, const SimConfig& cfg,
                      const TrafficConfig& traffic, double offered_load,
                      int runs);

/// Aligned table with one row per sample (offered load, accepted traffic,
/// average latency, ...), grouped per series like the paper's plots.
std::string render_figure_table(const FigureSpec& spec,
                                const std::vector<SweepPoint>& points);

/// Machine-readable CSV of the same data.
std::string render_figure_csv(const FigureSpec& spec,
                              const std::vector<SweepPoint>& points);

/// Short per-series summary: saturation throughput + low-load latency, and
/// the MLID/SLID throughput ratios the paper's observations quote.
std::string render_figure_summary(const FigureSpec& spec,
                                  const std::vector<SweepPoint>& points);

}  // namespace mlid

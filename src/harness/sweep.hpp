// Experiment harness: run the paper's (scheme x VL x offered-load) sweeps
// and render latency-vs-accepted-traffic series like the paper's figures.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace mlid {

/// One full figure: a network, a traffic pattern, and the series grid.
struct FigureSpec {
  std::string title;           ///< e.g. "Figure 12: uniform, 4-port 3-tree"
  int m = 4;
  int n = 3;
  TrafficConfig traffic;
  SimConfig sim;                            ///< VL count is overridden per series
  std::vector<int> vl_counts = {1, 2, 4};   ///< paper: VL 1 / VL 2 / VL 4
  /// SchemeRegistry names (routing/registry.hpp); any registered scheme
  /// can join the grid.
  std::vector<std::string> schemes = {"SLID", "MLID"};
  std::vector<double> loads = kDefaultLoads();
  /// Forwarding/VL-map policy arms.  Empty (the default) runs the single
  /// arm `sim.policy`; listing arms multiplies the grid, every arm facing
  /// the identical simulation and traffic streams (point seeds are
  /// policy-independent), so arms compare policies and nothing else.
  std::vector<PolicyConfig> policies;

  static std::vector<double> kDefaultLoads() {
    return {0.05, 0.10, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80, 0.95};
  }
};

/// Reproducibility + host-performance record attached to every sweep
/// sample: exactly which seeds produced it and what it cost to compute.
struct PointManifest {
  std::uint64_t sim_seed = 0;
  std::uint64_t traffic_seed = 0;
  double wall_seconds = 0.0;          ///< host time for this one simulation
  /// Events the engine actually dispatched; scheduled additionally counts
  /// work still queued at cutoff.  events_per_sec = processed / wall.
  /// Under sharding (`shards > 1`) `processed` is the FLEET total -- every
  /// shard queue plus the driver's control queue -- and `wall_seconds` is
  /// the driver's wall time for the whole run, so events_per_sec keeps the
  /// sequential definition (fleet-processed events over driver wall time)
  /// and is directly comparable across shard counts (pinned by
  /// tests/harness/sweep_test.cpp).
  std::uint64_t events_processed = 0;
  std::uint64_t events_scheduled = 0;
  double events_per_sec = 0.0;
  /// Actual parallelism that computed this point: resolved sweep worker
  /// count (never 0 -- the 0 in SweepOptions means "pick for me") and the
  /// engine shard count (1 = the sequential engine ran this point).
  std::uint32_t threads = 1;
  std::uint32_t shards = 1;
  /// Hot memory per physical port at this point: engine state
  /// (Simulation::memory_footprint, summed across shards) plus the compiled
  /// routing tables, divided by the fabric's total port count.  This is the
  /// scale metric docs/simulator.md budgets and CI regresses on.
  double bytes_per_endport = 0.0;
  /// Forwarding/VL-map policy pair that ran this point (BENCH schema v6).
  std::string policy = "deterministic";
  std::string vl_map = "none";
  /// Scenario this point ran under (BENCH schema v7): a ScenarioRegistry
  /// name for points produced by run_scenarios, "none" for plain sweeps.
  std::string scenario = "none";
  EventQueueStats queue;              ///< pending-event structure internals
  /// Engine self-profile for this point (BENCH schema v8; enabled == false
  /// with all-zero fields unless SimConfig::profile ran the point).  Every
  /// manifest carries the block so BENCH consumers can rely on its shape.
  ProfileSummary profile;
};

/// One sweep sample: the series key plus the simulation outcome.
struct SweepPoint {
  std::string scheme = "SLID";  ///< SchemeRegistry name
  int vls = 1;
  double load = 0.0;
  PolicyConfig policy;          ///< the arm this point ran under
  SimResult result;
  PointManifest manifest;
};

/// Per-point seed derivation: a SplitMix64 hash chain over the base seed
/// and the point's own coordinates (scheme, VL count, load bits).  Unlike
/// the old `base * K + job_index` scheme it does not depend on the grid
/// shape -- adding a load to the sweep leaves every other point's seed (and
/// therefore its results) unchanged -- and a base seed of 0 still yields
/// decorrelated streams instead of collapsing to the bare index.
/// The scheme's hash word is its stable SchemeRegistry seed key (SLID = 0,
/// MLID = 1, matching the retired enum), never the policy arm: policy arms
/// at one grid point deliberately share streams.
[[nodiscard]] std::uint64_t sweep_point_seed(std::uint64_t base,
                                             std::string_view scheme, int vls,
                                             double load);

/// Traffic-stream seed for a grid point.  Deliberately *scheme-independent*
/// (and domain-separated from the simulation streams): both routing schemes
/// at the same (vls, load) point face the bit-identical workload instance
/// -- same hot destinations, same arrival draws -- so their comparison
/// measures routing, not traffic luck.
[[nodiscard]] std::uint64_t sweep_traffic_seed(std::uint64_t base, int vls,
                                               double load);

/// Execution knobs for run_sweep, separate from the figure definition so
/// call sites never grow positional booleans.  The optional fields inherit
/// from FigureSpec::sim when unset -- a default-constructed SweepOptions
/// changes nothing about the spec.
struct SweepOptions {
  unsigned threads = 0;  ///< worker threads (0 = hardware concurrency)
  /// Engine shards per point (parallel/sharded.hpp).  1 runs the sequential
  /// engine; >1 routes every point through ShardedSimulation, which forces
  /// the canonical event order -- results then match a sequential run with
  /// SimConfig::event_order == EventOrder::kCanonical, not the kFifo
  /// default.  Must be >= 1.
  unsigned shards = 1;
  /// CI-sized run: shrink the measurement window and load grid to the
  /// smoke values (warmup 5 us, measure 20 us, loads {0.10, 0.40, 0.80}).
  bool quick = false;
  std::optional<bool> telemetry;  ///< override SimConfig::telemetry
  std::optional<EventQueueKind> event_queue;  ///< override SimConfig::event_queue
  std::optional<CcConfig> cc;  ///< override SimConfig::cc (congestion control)
  /// Override SimConfig::sample_interval_ns: every point of the sweep then
  /// carries an interval-sampler timeline in its result.
  std::optional<SimTime> sample_interval_ns;
  /// Force SimConfig::profile on for every point: each manifest then
  /// carries a live ProfileSummary (results stay byte-identical -- the
  /// profiler is passive).
  bool profile = false;
  /// Stderr heartbeat: one "progress:" line per completed point (points
  /// done / total, elapsed, ETA).  Never written to stdout, so BENCH/json
  /// pipelines stay clean.
  bool progress = false;
  /// JSONL metrics stream (non-owning; may be null).  The pool emits one
  /// "point" line per completed point (the live series for long sweeps);
  /// the streamer serializes concurrent writers.  Window/summary lines are
  /// a single-run concern -- pass the streamer to OpenLoopOptions::metrics
  /// for those.
  MetricsStreamer* metrics = nullptr;
};

/// Run the whole grid.  Independent simulations are distributed over
/// `options.threads` worker threads; results come back in deterministic
/// grid order regardless of scheduling.
std::vector<SweepPoint> run_sweep(const FigureSpec& spec,
                                  const SweepOptions& options = {});

/// Saturation throughput of a finished sweep: the highest accepted traffic
/// any load point of the given series reached (across every policy arm, if
/// the sweep ran several).
double saturation_throughput(const std::vector<SweepPoint>& points,
                             std::string_view scheme, int vls);

/// Bisection search for the saturation point: the highest offered load at
/// which accepted traffic still tracks the offered rate within `slack`
/// (relative).  Runs O(log(1 / tolerance)) simulations.
double find_saturation_load(const Subnet& subnet, const SimConfig& cfg,
                            const TrafficConfig& traffic, double slack = 0.05,
                            double tolerance = 0.02);

/// Mean and spread of one metric across independent seeded replications.
struct Replication {
  OnlineStats accepted;     ///< bytes/ns/node
  OnlineStats avg_latency;  ///< ns
  SimResult first;          ///< full result of the first replication
  int runs = 0;
};

/// Run `runs` simulations of one configuration with decorrelated seeds and
/// accumulate the headline metrics -- the statistical backing for the
/// EXPERIMENTS.md claims.
Replication replicate(const Subnet& subnet, const SimConfig& cfg,
                      const TrafficConfig& traffic, double offered_load,
                      int runs);

/// Aligned table with one row per sample (offered load, accepted traffic,
/// average latency, ...), grouped per series like the paper's plots.
std::string render_figure_table(const FigureSpec& spec,
                                const std::vector<SweepPoint>& points);

/// Machine-readable CSV of the same data.
std::string render_figure_csv(const FigureSpec& spec,
                              const std::vector<SweepPoint>& points);

/// Short per-series summary: saturation throughput + low-load latency, and
/// the MLID/SLID throughput ratios the paper's observations quote.
std::string render_figure_summary(const FigureSpec& spec,
                                  const std::vector<SweepPoint>& points);

}  // namespace mlid

// Machine-readable result export: hand-rolled JSON emission (no external
// dependencies) for SimResult, BurstResult and whole figure sweeps, so
// downstream tooling can plot without scraping the console tables.
#pragma once

#include <string>

#include "harness/sweep.hpp"

namespace mlid {

/// Minimal JSON value builder sufficient for flat result records: objects,
/// arrays, numbers, strings, booleans.  Output is deterministic (insertion
/// order preserved) and ASCII-escaped.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a keyed value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  /// Prevents string literals from binding to the bool overload.
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  [[nodiscard]] std::string str() const { return out_; }

 private:
  void separator();

  std::string out_;
  std::string stack_;      // '{' or '[' per nesting level
  bool need_comma_ = false;
  bool pending_key_ = false;
};

/// One simulation result as a JSON object.
std::string to_json(const SimResult& result);

/// One burst result as a JSON object.
std::string to_json(const BurstResult& result);

/// A whole figure sweep: {"title": ..., "points": [...]} with the series
/// key (scheme, vls, load) embedded in every point.
std::string to_json(const FigureSpec& spec,
                    const std::vector<SweepPoint>& points);

}  // namespace mlid

// Machine-readable result export: hand-rolled JSON emission (no external
// dependencies) for SimResult, BurstResult and whole figure sweeps, so
// downstream tooling can plot without scraping the console tables.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "harness/sweep.hpp"

namespace mlid {

class CliOptions;

/// Minimal JSON value builder sufficient for flat result records: objects,
/// arrays, numbers, strings, booleans.  Output is deterministic (insertion
/// order preserved) and ASCII-escaped.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a keyed value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(double v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  /// Prevents string literals from binding to the bool overload.
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }

  [[nodiscard]] std::string str() const { return out_; }

 private:
  void separator();

  std::string out_;
  std::string stack_;      // '{' or '[' per nesting level
  bool need_comma_ = false;
  bool pending_key_ = false;
};

/// One simulation result as a JSON object.
std::string to_json(const SimResult& result);

/// One burst result as a JSON object.
std::string to_json(const BurstResult& result);

/// A whole figure sweep: {"title": ..., "points": [...]} with the series
/// key (scheme, vls, load) and its reproducibility manifest embedded in
/// every point.
std::string to_json(const FigureSpec& spec,
                    const std::vector<SweepPoint>& points);

/// The build's `git describe` string, baked in at configure time
/// (MLID_GIT_DESCRIBE); "unknown" when the build did not come from a
/// checkout.
[[nodiscard]] std::string git_describe();

/// Bench name from its argv[0]: the basename, directories stripped.
[[nodiscard]] std::string bench_name_from_path(std::string_view argv0);

/// Collects everything one bench binary produced -- standalone results,
/// burst results, whole figure sweeps -- and writes them as a single
/// `BENCH_<name>.json` (schema "mlid-bench-v8") whose manifest records the
/// configuration (seed, threads, quick), the build (git describe) and the
/// host cost (wall seconds, events processed, events/sec).  Every bench
/// executable emits one of these so runs are diffable across machines and
/// commits.
class BenchReport {
 public:
  BenchReport(std::string name, std::uint64_t seed, unsigned threads,
              bool quick);
  /// Convenience: pull seed / threads / quick from parsed CLI flags.
  BenchReport(std::string name, const CliOptions& opts);

  void add(std::string_view series, const SimResult& result);
  /// Standalone result plus its reproducibility/host-cost manifest -- lets
  /// a bench attach per-series wall time, events/sec and event-queue
  /// internals (e.g. to compare queue kinds within one report).
  void add(std::string_view series, const SimResult& result,
           const PointManifest& manifest);
  void add(std::string_view series, const BurstResult& result);
  /// Burst result plus its manifest (scenario arms on the closed-loop path
  /// carry the same provenance record as open-loop points).
  void add(std::string_view series, const BurstResult& result,
           const PointManifest& manifest);
  void add_figure(const FigureSpec& spec,
                  const std::vector<SweepPoint>& points);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::string file_name() const;  ///< "BENCH_<name>.json"
  [[nodiscard]] std::string to_json() const;
  /// Writes file_name() under `dir`; returns the path written.
  std::string write(const std::string& dir = ".") const;

 private:
  struct SimEntry {
    std::string series;
    SimResult result;
    std::optional<PointManifest> manifest;
  };
  struct BurstEntry {
    std::string series;
    BurstResult result;
    std::optional<PointManifest> manifest;
  };
  struct FigureEntry {
    FigureSpec spec;
    std::vector<SweepPoint> points;
  };

  std::string name_;
  std::uint64_t seed_;
  unsigned threads_;
  bool quick_;
  std::chrono::steady_clock::time_point started_;
  std::vector<SimEntry> results_;
  std::vector<BurstEntry> bursts_;
  std::vector<FigureEntry> figures_;
};

}  // namespace mlid

#include "harness/report.hpp"

#include <cmath>
#include <cstdio>

#include "common/expect.hpp"

namespace mlid {

void JsonWriter::separator() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "object needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += '{';
  stack_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '{' && !pending_key_,
              "unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "array needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += '[';
  stack_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '[', "unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '{' && !pending_key_,
              "key outside an object");
  separator();
  value(name);  // emits the quoted key
  out_ += ':';
  need_comma_ = false;
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  const bool is_key = !pending_key_ && !stack_.empty() &&
                      stack_.back() == '{';
  if (!is_key) {
    MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
                "value needs a key inside an object");
    separator();
  }
  pending_key_ = false;
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  if (!is_key) need_comma_ = true;
  return *this;
}

namespace {

void emit_sim_result_fields(JsonWriter& json, const SimResult& r) {
  json.key("offered_load").value(r.offered_load);
  json.key("accepted_bytes_per_ns_per_node")
      .value(r.accepted_bytes_per_ns_per_node);
  json.key("avg_latency_ns").value(r.avg_latency_ns);
  json.key("avg_network_latency_ns").value(r.avg_network_latency_ns);
  json.key("p50_latency_ns").value(r.p50_latency_ns);
  json.key("p99_latency_ns").value(r.p99_latency_ns);
  json.key("max_latency_ns").value(r.max_latency_ns);
  json.key("packets_generated").value(r.packets_generated);
  json.key("packets_delivered").value(r.packets_delivered);
  json.key("packets_measured").value(r.packets_measured);
  json.key("packets_dropped").value(r.packets_dropped);
  json.key("avg_hops").value(r.avg_hops);
  json.key("mean_link_utilization").value(r.mean_link_utilization);
  json.key("max_link_utilization").value(r.max_link_utilization);
  json.key("jain_fairness_index").value(r.jain_fairness_index);
  json.key("delivered_per_vl").begin_array();
  for (const std::uint64_t v : r.delivered_per_vl) json.value(v);
  json.end_array();
}

}  // namespace

std::string to_json(const SimResult& result) {
  JsonWriter json;
  json.begin_object();
  emit_sim_result_fields(json, result);
  json.end_object();
  return json.str();
}

std::string to_json(const BurstResult& result) {
  JsonWriter json;
  json.begin_object();
  json.key("makespan_ns").value(static_cast<std::int64_t>(result.makespan_ns));
  json.key("avg_message_latency_ns").value(result.avg_message_latency_ns);
  json.key("max_message_latency_ns").value(result.max_message_latency_ns);
  json.key("messages").value(result.messages);
  json.key("packets").value(result.packets);
  json.key("total_bytes").value(result.total_bytes);
  json.key("aggregate_bytes_per_ns").value(result.aggregate_bytes_per_ns());
  json.end_object();
  return json.str();
}

std::string to_json(const FigureSpec& spec,
                    const std::vector<SweepPoint>& points) {
  JsonWriter json;
  json.begin_object();
  json.key("title").value(spec.title);
  json.key("m").value(spec.m);
  json.key("n").value(spec.n);
  json.key("traffic").value(to_string(spec.traffic.kind));
  json.key("points").begin_array();
  for (const SweepPoint& point : points) {
    json.begin_object();
    json.key("scheme").value(to_string(point.scheme));
    json.key("vls").value(point.vls);
    json.key("load").value(point.load);
    emit_sim_result_fields(json, point.result);
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

}  // namespace mlid

#include "harness/report.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/expect.hpp"
#include "harness/cli.hpp"

namespace mlid {

void JsonWriter::separator() {
  if (need_comma_) out_ += ',';
  need_comma_ = false;
}

JsonWriter& JsonWriter::begin_object() {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "object needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += '{';
  stack_ += '{';
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '{' && !pending_key_,
              "unbalanced end_object");
  out_ += '}';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "array needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += '[';
  stack_ += '[';
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '[', "unbalanced end_array");
  out_ += ']';
  stack_.pop_back();
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  MLID_EXPECT(!stack_.empty() && stack_.back() == '{' && !pending_key_,
              "key outside an object");
  separator();
  value(name);  // emits the quoted key
  out_ += ':';
  need_comma_ = false;
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  if (std::isfinite(v)) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    out_ += buf;
  } else {
    out_ += "null";  // JSON has no NaN/Inf
  }
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += std::to_string(v);
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
              "value needs a key inside an object");
  separator();
  pending_key_ = false;
  out_ += v ? "true" : "false";
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  const bool is_key = !pending_key_ && !stack_.empty() &&
                      stack_.back() == '{';
  if (!is_key) {
    MLID_EXPECT(stack_.empty() || pending_key_ || stack_.back() == '[',
                "value needs a key inside an object");
    separator();
  }
  pending_key_ = false;
  out_ += '"';
  for (const char c : v) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
  if (!is_key) need_comma_ = true;
  return *this;
}

namespace {

// Emits a Log2Histogram as a value ({"total": N, "counts": [...]}); the
// counts array is trimmed at the last non-empty bucket (the fixed layout
// means readers can always re-pad to Log2Histogram::kBuckets).
void emit_log2_hist(JsonWriter& json, const Log2Histogram& h) {
  json.begin_object();
  json.key("total").value(h.total());
  json.key("counts").begin_array();
  for (std::size_t i = 0, n = h.trimmed_size(); i < n; ++i) {
    json.value(h.counts()[i]);
  }
  json.end_array();
  json.end_object();
}

void emit_link_summary(JsonWriter& json, const LinkSummary& s) {
  json.begin_object();
  json.key("links").value(s.links);
  json.key("total_packets").value(s.total_packets);
  json.key("total_bytes").value(s.total_bytes);
  json.key("mean_utilization").value(s.mean_utilization);
  json.key("max_utilization").value(s.max_utilization);
  json.key("total_credit_stall_ns").value(s.total_credit_stall_ns);
  json.key("max_credit_stall_ns").value(s.max_credit_stall_ns);
  json.key("max_queue_depth_pkts")
      .value(static_cast<std::uint64_t>(s.max_queue_depth_pkts));
  json.key("total_fecn_marks").value(s.total_fecn_marks);
  json.end_object();
}

// Emits the congestion-control summary object (only written when
// SimConfig::cc was enabled; cc_enabled is emitted unconditionally so
// consumers can branch without probing for the object).
void emit_cc_summary(JsonWriter& json, const CcSummary& cc) {
  json.begin_object();
  json.key("fecn_marked").value(cc.fecn_marked);
  json.key("fecn_depth_marks").value(cc.fecn_depth_marks);
  json.key("fecn_stall_marks").value(cc.fecn_stall_marks);
  json.key("becn_sent").value(cc.becn_sent);
  json.key("becn_received").value(cc.becn_received);
  json.key("cct_timer_fires").value(cc.cct_timer_fires);
  json.key("throttled_pkts").value(cc.throttled_pkts);
  json.key("throttled_ns_total").value(cc.throttled_ns_total);
  json.key("max_node_throttled_ns").value(cc.max_node_throttled_ns);
  json.key("peak_cct_index")
      .value(static_cast<std::uint64_t>(cc.peak_cct_index));
  json.key("cct_index_hist").begin_array();
  for (const std::uint64_t v : cc.cct_index_hist) json.value(v);
  json.end_array();
  json.end_object();
}

// Emits the interval sampler's output in columnar form: a "columns" legend
// plus one fixed-width array per sample.  Kept flat (no per-sample objects)
// because a 512-sample timeline rides along with every SweepPoint.
void emit_timeline(JsonWriter& json, const Timeline& t) {
  static constexpr std::string_view kColumns[] = {
      "t_ns",          "intervals",   "generated",
      "delivered",     "dropped",     "becn",
      "in_flight",     "queued_pkts", "max_queue_depth",
      "stalled_vls",   "cct_active_nodes", "peak_cct_index"};
  json.begin_object();
  json.key("base_interval_ns")
      .value(static_cast<std::int64_t>(t.base_interval_ns));
  json.key("interval_ns").value(static_cast<std::int64_t>(t.interval_ns));
  json.key("max_samples").value(static_cast<std::uint64_t>(t.max_samples));
  json.key("decimations").value(static_cast<std::uint64_t>(t.decimations));
  json.key("columns").begin_array();
  for (const std::string_view col : kColumns) json.value(col);
  json.end_array();
  json.key("samples").begin_array();
  for (const TimelineSample& s : t.samples) {
    json.begin_array();
    json.value(static_cast<std::int64_t>(s.t_ns));
    json.value(static_cast<std::uint64_t>(s.intervals));
    json.value(s.generated);
    json.value(s.delivered);
    json.value(s.dropped);
    json.value(s.becn);
    json.value(s.in_flight);
    json.value(s.queued_pkts);
    json.value(static_cast<std::uint64_t>(s.max_queue_depth));
    json.value(static_cast<std::uint64_t>(s.stalled_vls));
    json.value(static_cast<std::uint64_t>(s.cct_active_nodes));
    json.value(static_cast<std::uint64_t>(s.peak_cct_index));
    json.end_array();
  }
  json.end_array();
  json.end_object();
}

void emit_profile_summary(JsonWriter& json, const ProfileSummary& p);

void emit_sim_result_fields(JsonWriter& json, const SimResult& r) {
  json.key("offered_load").value(r.offered_load);
  json.key("accepted_bytes_per_ns_per_node")
      .value(r.accepted_bytes_per_ns_per_node);
  json.key("avg_latency_ns").value(r.avg_latency_ns);
  json.key("avg_network_latency_ns").value(r.avg_network_latency_ns);
  json.key("p50_latency_ns").value(r.p50_latency_ns);
  json.key("p95_latency_ns").value(r.p95_latency_ns);
  json.key("p99_latency_ns").value(r.p99_latency_ns);
  json.key("max_latency_ns").value(r.max_latency_ns);
  json.key("packets_generated").value(r.packets_generated);
  json.key("packets_delivered").value(r.packets_delivered);
  json.key("packets_measured").value(r.packets_measured);
  json.key("packets_dropped").value(r.packets_dropped);
  json.key("events_processed").value(r.events_processed);
  json.key("events_scheduled").value(r.events_scheduled);
  json.key("avg_hops").value(r.avg_hops);
  json.key("mean_link_utilization").value(r.mean_link_utilization);
  json.key("max_link_utilization").value(r.max_link_utilization);
  json.key("jain_fairness_index").value(r.jain_fairness_index);
  json.key("delivered_per_vl").begin_array();
  for (const std::uint64_t v : r.delivered_per_vl) json.value(v);
  json.end_array();
  json.key("victim_packets").value(r.victim_packets);
  json.key("hot_packets").value(r.hot_packets);
  json.key("victim_avg_latency_ns").value(r.victim_avg_latency_ns);
  json.key("victim_p99_latency_ns").value(r.victim_p99_latency_ns);
  json.key("hot_avg_latency_ns").value(r.hot_avg_latency_ns);
  json.key("hot_p99_latency_ns").value(r.hot_p99_latency_ns);
  // v7: per-tenant isolation metrics, present only when the multi-tenant
  // subsystem ran (SimConfig::tenants.count > 0); tenant_count is emitted
  // unconditionally so consumers can branch without probing.
  json.key("tenant_count").value(static_cast<std::uint64_t>(r.tenants.size()));
  if (!r.tenants.empty()) {
    json.key("tenant_jain_fairness_index").value(r.tenant_jain_fairness_index);
    json.key("tenants").begin_array();
    for (const TenantStats& t : r.tenants) {
      json.begin_object();
      json.key("delivered_pkts").value(t.delivered_pkts);
      json.key("accepted_bytes_per_ns").value(t.accepted_bytes_per_ns);
      json.key("avg_latency_ns").value(t.avg_latency_ns);
      json.end_object();
    }
    json.end_array();
  }
  json.key("cc_enabled").value(r.cc.enabled);
  if (r.cc.enabled) {
    json.key("cc");
    emit_cc_summary(json, r.cc);
  }
  json.key("telemetry").value(r.telemetry);
  if (r.telemetry) {
    json.key("latency_log2_hist");
    emit_log2_hist(json, r.latency_log2_hist);
    json.key("queue_log2_hist");
    emit_log2_hist(json, r.queue_log2_hist);
    json.key("network_log2_hist");
    emit_log2_hist(json, r.network_log2_hist);
    json.key("latency_log2_per_vl").begin_array();
    for (const Log2Histogram& h : r.latency_log2_per_vl) {
      emit_log2_hist(json, h);
    }
    json.end_array();
    json.key("link_summary");
    emit_link_summary(json, r.link_summary);
  }
  json.key("timeline_enabled").value(r.timeline.enabled());
  if (r.timeline.enabled()) {
    json.key("timeline");
    emit_timeline(json, r.timeline);
  }
  // v8: engine self-profile, presence-flagged like the other optional
  // blocks.  Wall times are host measurements, so byte-comparisons of this
  // JSON must scrub the block first (see sim/metrics.hpp).
  json.key("profile_enabled").value(r.profile.enabled);
  if (r.profile.enabled) {
    json.key("profile");
    emit_profile_summary(json, r.profile);
  }
}

// v8: engine self-profile block (obs/profile.hpp).  Emitted with a
// presence flag in sim results and unconditionally in point manifests, so
// BENCH consumers can rely on every manifest having the same shape; an
// unprofiled run carries enabled == false and all-zero phase totals.
void emit_profile_summary(JsonWriter& json, const ProfileSummary& p) {
  json.begin_object();
  json.key("enabled").value(p.enabled);
  json.key("shards").value(static_cast<std::uint64_t>(p.shards));
  json.key("threads").value(static_cast<std::uint64_t>(p.threads));
  json.key("windows").value(p.windows);
  json.key("control_steps").value(p.control_steps);
  json.key("handoff_messages").value(p.handoff_messages);
  json.key("window_ns_min").value(static_cast<std::int64_t>(p.window_ns_min));
  json.key("window_ns_max").value(static_cast<std::int64_t>(p.window_ns_max));
  json.key("window_ns_mean").value(p.window_ns_mean);
  json.key("total_wall_ns").value(p.total_wall_ns);
  json.key("processing_ns").value(p.processing_ns);
  json.key("barrier_wait_ns").value(p.barrier_wait_ns);
  json.key("mailbox_ns").value(p.mailbox_ns);
  json.key("control_ns").value(p.control_ns);
  json.key("barrier_wait_fraction").value(p.barrier_wait_fraction());
  json.key("max_imbalance").value(p.max_imbalance);
  json.key("mean_imbalance").value(p.mean_imbalance);
  json.key("queue_pushes").value(p.queue_pushes);
  json.key("queue_pops").value(p.queue_pops);
  json.key("queue_overflow_pushes").value(p.queue_overflow_pushes);
  json.key("queue_resizes").value(p.queue_resizes);
  json.key("shard_phases").begin_array();
  for (const ShardPhaseProfile& s : p.shard_phases) {
    json.begin_object();
    json.key("processing_ns").value(s.processing_ns);
    json.key("barrier_wait_ns").value(s.barrier_wait_ns);
    json.key("events_processed").value(s.events_processed);
    json.key("handoffs_out").value(s.handoffs_out);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

void emit_queue_stats(JsonWriter& json, const EventQueueStats& q) {
  json.begin_object();
  json.key("kind").value(to_string(q.kind));
  json.key("buckets").value(static_cast<std::uint64_t>(q.buckets));
  json.key("bucket_width_ns")
      .value(static_cast<std::int64_t>(q.bucket_width_ns));
  json.key("resizes").value(static_cast<std::uint64_t>(q.resizes));
  json.key("overflow_pushes").value(q.overflow_pushes);
  json.key("max_overflow_depth").value(q.max_overflow_depth);
  json.key("max_bucket_events").value(q.max_bucket_events);
  json.end_object();
}

void emit_point_manifest(JsonWriter& json, const PointManifest& m) {
  json.begin_object();
  json.key("sim_seed").value(m.sim_seed);
  json.key("traffic_seed").value(m.traffic_seed);
  json.key("wall_seconds").value(m.wall_seconds);
  json.key("events_processed").value(m.events_processed);
  json.key("events_scheduled").value(m.events_scheduled);
  json.key("events_per_sec").value(m.events_per_sec);
  json.key("threads").value(static_cast<std::uint64_t>(m.threads));
  json.key("shards").value(static_cast<std::uint64_t>(m.shards));
  json.key("bytes_per_endport").value(m.bytes_per_endport);
  json.key("policy").value(m.policy);
  json.key("vl_map").value(m.vl_map);
  json.key("scenario").value(m.scenario);
  json.key("event_queue");
  emit_queue_stats(json, m.queue);
  // v8: every manifest carries the profile block (enabled == false when the
  // point ran without SimConfig::profile), so consumers need no probing.
  json.key("profile");
  emit_profile_summary(json, m.profile);
  json.end_object();
}

void emit_burst_result_fields(JsonWriter& json, const BurstResult& r) {
  json.key("makespan_ns").value(static_cast<std::int64_t>(r.makespan_ns));
  json.key("avg_message_latency_ns").value(r.avg_message_latency_ns);
  json.key("max_message_latency_ns").value(r.max_message_latency_ns);
  json.key("messages").value(r.messages);
  json.key("packets").value(r.packets);
  json.key("total_bytes").value(r.total_bytes);
  json.key("events_processed").value(r.events_processed);
  json.key("events_scheduled").value(r.events_scheduled);
  json.key("aggregate_bytes_per_ns").value(r.aggregate_bytes_per_ns());
  json.key("cc_enabled").value(r.cc.enabled);
  if (r.cc.enabled) {
    json.key("cc");
    emit_cc_summary(json, r.cc);
  }
  json.key("telemetry").value(r.telemetry);
  if (r.telemetry) {
    json.key("p50_message_latency_ns").value(r.p50_message_latency_ns);
    json.key("p95_message_latency_ns").value(r.p95_message_latency_ns);
    json.key("p99_message_latency_ns").value(r.p99_message_latency_ns);
    json.key("message_latency_hist");
    emit_log2_hist(json, r.message_latency_hist);
    json.key("link_summary");
    emit_link_summary(json, r.link_summary);
  }
}

void emit_figure(JsonWriter& json, const FigureSpec& spec,
                 const std::vector<SweepPoint>& points) {
  json.begin_object();
  json.key("title").value(spec.title);
  json.key("m").value(spec.m);
  json.key("n").value(spec.n);
  json.key("traffic").value(to_string(spec.traffic.kind));
  json.key("points").begin_array();
  for (const SweepPoint& point : points) {
    json.begin_object();
    json.key("scheme").value(point.scheme);
    json.key("vls").value(point.vls);
    json.key("load").value(point.load);
    emit_sim_result_fields(json, point.result);
    json.key("manifest");
    emit_point_manifest(json, point.manifest);
    json.end_object();
  }
  json.end_array();
  json.end_object();
}

}  // namespace

std::string to_json(const SimResult& result) {
  JsonWriter json;
  json.begin_object();
  emit_sim_result_fields(json, result);
  json.end_object();
  return json.str();
}

std::string to_json(const BurstResult& result) {
  JsonWriter json;
  json.begin_object();
  emit_burst_result_fields(json, result);
  json.end_object();
  return json.str();
}

std::string to_json(const FigureSpec& spec,
                    const std::vector<SweepPoint>& points) {
  JsonWriter json;
  emit_figure(json, spec, points);
  return json.str();
}

std::string git_describe() {
#ifdef MLID_GIT_DESCRIBE
  return MLID_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string bench_name_from_path(std::string_view argv0) {
  const auto slash = argv0.find_last_of("/\\");
  if (slash != std::string_view::npos) argv0.remove_prefix(slash + 1);
  return std::string(argv0);
}

BenchReport::BenchReport(std::string name, std::uint64_t seed,
                         unsigned threads, bool quick)
    : name_(std::move(name)),
      seed_(seed),
      threads_(threads),
      quick_(quick),
      started_(std::chrono::steady_clock::now()) {
  MLID_EXPECT(!name_.empty(), "bench report needs a name");
}

BenchReport::BenchReport(std::string name, const CliOptions& opts)
    : BenchReport(std::move(name), opts.seed(), opts.threads(),
                  opts.quick()) {}

void BenchReport::add(std::string_view series, const SimResult& result) {
  results_.push_back(SimEntry{std::string(series), result, std::nullopt});
}

void BenchReport::add(std::string_view series, const SimResult& result,
                      const PointManifest& manifest) {
  results_.push_back(SimEntry{std::string(series), result, manifest});
}

void BenchReport::add(std::string_view series, const BurstResult& result) {
  bursts_.push_back(BurstEntry{std::string(series), result, std::nullopt});
}

void BenchReport::add(std::string_view series, const BurstResult& result,
                      const PointManifest& manifest) {
  bursts_.push_back(BurstEntry{std::string(series), result, manifest});
}

void BenchReport::add_figure(const FigureSpec& spec,
                             const std::vector<SweepPoint>& points) {
  figures_.push_back(FigureEntry{spec, points});
}

std::string BenchReport::file_name() const {
  return "BENCH_" + name_ + ".json";
}

std::string BenchReport::to_json() const {
  std::uint64_t events = 0;
  for (const SimEntry& e : results_) events += e.result.events_processed;
  for (const BurstEntry& e : bursts_) events += e.result.events_processed;
  for (const FigureEntry& f : figures_) {
    for (const SweepPoint& p : f.points) events += p.result.events_processed;
  }
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    started_)
          .count();

  JsonWriter json;
  json.begin_object();
  // v8: engine self-profile -- every point manifest carries a "profile"
  // block (phase breakdown, barrier-wait fraction, imbalance; enabled ==
  // false with zero totals when the point ran unprofiled) and sim results
  // gain "profile_enabled" plus a conditional "profile" object.
  // v7 added scenario provenance per manifest and the per-tenant isolation
  // block; v6 added the forwarding/VL-map policy pair ("policy", "vl_map")
  // per point manifest and registry scheme names in figure points; v5 added
  // bytes_per_endport (engine hot state + compiled routing tables over
  // total fabric ports), the scale metric CI regresses on; v4 added the
  // actual parallelism (worker threads + engine shards) per point.
  json.key("schema").value("mlid-bench-v8");
  json.key("name").value(name_);
  json.key("manifest").begin_object();
  json.key("git").value(git_describe());
  json.key("seed").value(seed_);
  json.key("threads").value(static_cast<std::uint64_t>(threads_));
  json.key("quick").value(quick_);
  json.key("wall_seconds").value(wall);
  json.key("events_processed").value(events);
  json.key("events_per_sec")
      .value(wall > 0.0 ? static_cast<double>(events) / wall : 0.0);
  json.end_object();
  json.key("results").begin_array();
  for (const SimEntry& e : results_) {
    json.begin_object();
    json.key("series").value(e.series);
    emit_sim_result_fields(json, e.result);
    if (e.manifest) {
      json.key("manifest");
      emit_point_manifest(json, *e.manifest);
    }
    json.end_object();
  }
  json.end_array();
  json.key("bursts").begin_array();
  for (const BurstEntry& e : bursts_) {
    json.begin_object();
    json.key("series").value(e.series);
    emit_burst_result_fields(json, e.result);
    if (e.manifest) {
      json.key("manifest");
      emit_point_manifest(json, *e.manifest);
    }
    json.end_object();
  }
  json.end_array();
  json.key("figures").begin_array();
  for (const FigureEntry& f : figures_) emit_figure(json, f.spec, f.points);
  json.end_array();
  json.end_object();
  return json.str();
}

std::string BenchReport::write(const std::string& dir) const {
  const std::string path =
      dir.empty() || dir == "." ? file_name() : dir + "/" + file_name();
  std::ofstream out(path, std::ios::trunc);
  MLID_EXPECT(out.good(), "cannot open bench report file for writing");
  out << to_json() << "\n";
  MLID_EXPECT(out.good(), "bench report write failed");
  return path;
}

}  // namespace mlid

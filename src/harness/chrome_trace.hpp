// Chrome trace-event JSON export: renders packet traces, the control-plane
// record, the interval sampler's timeline and the flight recorder as a
// single trace file loadable in chrome://tracing and Perfetto.
//
// Track layout (process ids are synthetic grouping keys):
//   pid 1  fabric devices   one thread per DeviceId; packet lifecycle spans
//                           ("source-queue", "switch", "deliver") and drop
//                           instants ("drop(<reason>)")
//   pid 2  control plane    thread 0 faults, 1 subnet manager, 2 congestion
//                           control; one instant per ControlTraceRecord
//   pid 3  counters         "C" events fed from the Timeline samples
//   pid 4  flight recorder  the frozen ring as instants, when one froze
//   pid 5  engine profiler  one thread per shard: aggregate processing /
//                           barrier-wait spans laid end-to-end (host
//                           nanoseconds, not simulation time), plus a
//                           driver thread with the mailbox/control totals
// Timestamps are the simulation's nanoseconds divided by 1000 (the format's
// ts unit is microseconds), so sub-microsecond spacing survives as decimals.
// The profiler track is the exception: its spans are host wall time, with
// t = 0 at run start, so it shows where the host spent the run rather than
// where the simulation did.
#pragma once

#include <string>

#include "obs/profile.hpp"
#include "sim/timeline.hpp"
#include "sim/trace.hpp"
#include "topology/fabric.hpp"

namespace mlid {

/// Everything the exporter can draw, all optional: pass nullptr (or an
/// empty / disabled object) to skip a track.  Pointers are non-owning and
/// only read during the call.
struct ChromeTraceData {
  const std::vector<PacketTraceRecord>* packets = nullptr;
  const std::vector<ControlTraceRecord>* control = nullptr;
  const Timeline* timeline = nullptr;
  const FlightRecorderDump* flight = nullptr;
  /// Engine self-profile (skipped unless profile->enabled).
  const ProfileSummary* profile = nullptr;
};

/// The complete trace file content ({"displayTimeUnit": ..., "traceEvents":
/// [...]}).  `fabric` names the device tracks.
[[nodiscard]] std::string chrome_trace_json(const Fabric& fabric,
                                            const ChromeTraceData& data);

/// chrome_trace_json written to `path` (throws ContractViolation on I/O
/// failure).
void write_chrome_trace(const std::string& path, const Fabric& fabric,
                        const ChromeTraceData& data);

}  // namespace mlid

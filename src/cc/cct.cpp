#include "cc/cct.hpp"

#include <algorithm>

namespace mlid {

std::string to_string(CctShape shape) {
  return shape == CctShape::kQuadratic ? "quadratic" : "linear";
}

CongestionControlTable::CongestionControlTable(const CcConfig& cfg,
                                               std::uint32_t num_destinations)
    : levels_(cfg.cct_levels),
      increase_(cfg.becn_increase),
      quantum_ns_(cfg.cct_quantum_ns),
      shape_(cfg.cct_shape),
      index_(num_destinations, 0) {
  cfg.validate();
}

std::uint16_t CongestionControlTable::on_becn(NodeId dst) {
  std::uint16_t& idx = index_[dst];
  if (idx == 0) ++active_;
  idx = static_cast<std::uint16_t>(
      std::min<std::uint32_t>(idx + increase_, levels_));
  peak_ = std::max(peak_, idx);
  return idx;
}

bool CongestionControlTable::decay() {
  if (active_ == 0) return false;
  for (std::uint16_t& idx : index_) {
    if (idx == 0) continue;
    if (--idx == 0) --active_;
  }
  return active_ > 0;
}

SimTime CongestionControlTable::delay_ns(NodeId dst) const noexcept {
  const std::uint16_t idx = index_[dst];
  const auto i = static_cast<SimTime>(idx);
  return shape_ == CctShape::kQuadratic ? quantum_ns_ * i * i
                                        : quantum_ns_ * i;
}

}  // namespace mlid

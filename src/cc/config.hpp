// Congestion-control (IBA Congestion Control Annex) configuration.
//
// The modeled control loop: switches FECN-mark packets whose output VL
// crosses a queue-depth or credit-stall threshold, the destination HCA
// echoes each mark back to the source as a BECN, and the source HCA
// throttles injection toward that destination through its Congestion
// Control Table (CCT) -- the index rises with BECNs, decays on a timer,
// and maps to an inter-packet injection delay.
#pragma once

#include <cstdint>
#include <string>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

/// How a CCT index maps to an inter-packet injection delay.
enum class CctShape : std::uint8_t {
  kLinear,     ///< delay = quantum * index
  kQuadratic,  ///< delay = quantum * index^2 (harsher under sustained marks)
};

[[nodiscard]] std::string to_string(CctShape shape);

struct CcConfig {
  bool enabled = false;

  // --- FECN marking at switches ----------------------------------------------
  /// Mark a packet when its output (port, VL) backlog (granted queue +
  /// crossbar waiters, including the packet itself) reaches this depth.
  std::uint32_t fecn_threshold_pkts = 3;
  /// Also mark a packet whose transmission was blocked purely on downstream
  /// credits for at least this long (the congestion-tree signature when
  /// buffers are too shallow for depth marking to see the backlog).
  SimTime fecn_stall_ns = 2'000;

  // --- BECN return from the destination HCA ----------------------------------
  /// Modeled control-message latency from the destination back to the
  /// source (like SM traps, BECNs do not occupy data VLs or credits).
  SimTime becn_delay_ns = 1'000;

  // --- CCT throttling at the source HCA --------------------------------------
  std::uint16_t cct_levels = 32;     ///< index saturates here
  std::uint16_t becn_increase = 2;   ///< index bump per BECN received
  SimTime cct_quantum_ns = 300;      ///< delay unit of the shape mapping
  CctShape cct_shape = CctShape::kLinear;
  /// Period of the per-HCA recovery timer; each tick decrements every
  /// non-zero CCT index by one.  Armed only while any index is non-zero.
  SimTime timer_ns = 10'000;

  /// Inter-packet injection delay for a given CCT index.
  [[nodiscard]] SimTime delay_ns(std::uint16_t index) const noexcept {
    const auto idx = static_cast<SimTime>(index);
    return cct_shape == CctShape::kQuadratic ? cct_quantum_ns * idx * idx
                                             : cct_quantum_ns * idx;
  }

  void validate() const {
    MLID_EXPECT(fecn_threshold_pkts >= 1,
                "FECN depth threshold must admit at least one packet");
    MLID_EXPECT(fecn_stall_ns >= 0 && becn_delay_ns >= 0,
                "CC delays must be non-negative");
    MLID_EXPECT(cct_levels >= 1, "the CCT needs at least one level");
    MLID_EXPECT(becn_increase >= 1, "a BECN must raise the CCT index");
    MLID_EXPECT(cct_quantum_ns >= 0, "CCT quantum must be non-negative");
    MLID_EXPECT(timer_ns >= 1, "CCT recovery timer period must be positive");
  }
};

}  // namespace mlid

// Congestion Control Table: per-destination throttle state of one HCA.
#pragma once

#include <cstdint>
#include <vector>

#include "cc/config.hpp"
#include "common/types.hpp"

namespace mlid {

/// One source HCA's CCT: an index per destination, bumped by BECNs and
/// decayed by the recovery timer.  The index maps to an inter-packet
/// injection delay through CcConfig's shape.  Copies the config knobs it
/// needs so it never dangles on a moved SimConfig.
class CongestionControlTable {
 public:
  CongestionControlTable(const CcConfig& cfg, std::uint32_t num_destinations);

  /// A BECN for `dst` arrived: index += becn_increase, saturating at
  /// cct_levels.  Returns the new index.
  std::uint16_t on_becn(NodeId dst);

  /// One recovery-timer tick: every non-zero index decrements by one.
  /// Returns true while any index remains non-zero (i.e. the timer must
  /// stay armed).
  bool decay();

  [[nodiscard]] std::uint16_t index(NodeId dst) const {
    return index_[dst];
  }
  [[nodiscard]] SimTime delay_ns(NodeId dst) const noexcept;
  [[nodiscard]] bool any_active() const noexcept { return active_ > 0; }
  /// Highest index ever reached (not just currently held).
  [[nodiscard]] std::uint16_t peak_index() const noexcept { return peak_; }
  /// Highest index currently held (0 when fully decayed).  O(destinations)
  /// scan, short-circuited when no entry is active -- only the interval
  /// sampler calls this, off the hot path.
  [[nodiscard]] std::uint16_t max_index() const noexcept {
    if (active_ == 0) return 0;
    std::uint16_t top = 0;
    for (const std::uint16_t v : index_) top = v > top ? v : top;
    return top;
  }

 private:
  std::uint16_t levels_;
  std::uint16_t increase_;
  SimTime quantum_ns_;
  CctShape shape_;
  std::vector<std::uint16_t> index_;  ///< one entry per destination
  std::uint32_t active_ = 0;          ///< entries currently non-zero
  std::uint16_t peak_ = 0;
};

}  // namespace mlid

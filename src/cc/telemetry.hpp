// Congestion-control telemetry: pure counters the engine accumulates while
// the CC loop runs.  Like the observability layer, these never schedule
// events or draw random numbers -- with CC disabled the whole block stays
// zero and results are bit-identical to a CC-free engine (asserted by
// tests/sim/cc_parity_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mlid {

/// Per-HCA view of the control loop (dense, indexed by NodeId).
struct CcNodeStats {
  std::uint64_t becn_sent = 0;      ///< marks this node echoed as destination
  std::uint64_t becn_received = 0;  ///< BECNs received as a source
  std::uint64_t throttled_pkts = 0; ///< injections that left a gate behind
  std::uint64_t throttled_ns = 0;   ///< time the NIC sat gated with traffic
  std::uint16_t peak_cct_index = 0; ///< highest CCT index ever reached
};

/// Whole-run roll-up attached to SimResult / BurstResult.
struct CcSummary {
  bool enabled = false;

  // --- FECN marking at switches ----------------------------------------------
  std::uint64_t fecn_marked = 0;       ///< packets marked (first mark only)
  std::uint64_t fecn_depth_marks = 0;  ///< via the queue-depth threshold
  std::uint64_t fecn_stall_marks = 0;  ///< via the credit-stall threshold

  // --- BECN return -----------------------------------------------------------
  std::uint64_t becn_sent = 0;      ///< echoed by destinations
  std::uint64_t becn_received = 0;  ///< landed at sources (<= sent: in flight
                                    ///< BECNs die with the run's end time)

  // --- CCT throttling --------------------------------------------------------
  std::uint64_t cct_timer_fires = 0;
  std::uint64_t throttled_pkts = 0;
  std::uint64_t throttled_ns_total = 0;  ///< summed over all HCAs
  std::uint64_t max_node_throttled_ns = 0;
  std::uint16_t peak_cct_index = 0;
  /// Histogram of the index value *after* each BECN application
  /// (size cct_levels + 1); shows how deep the table actually worked.
  std::vector<std::uint64_t> cct_index_hist;
};

}  // namespace mlid

// Builds the IBFT(m, n) fabric from FatTreeParams and keeps the
// label <-> device mappings (paper Section 3).
#pragma once

#include <vector>

#include "topology/fabric.hpp"
#include "topology/fat_tree.hpp"

namespace mlid {

/// A constructed m-port n-tree InfiniBand fabric plus its label mappings.
///
/// NodeId == PID (endnodes are created in PID order) and SwitchId follows
/// SwitchLabel::switch_id (level-major order), so lookups in both
/// directions are O(1) array accesses.
class FatTreeFabric {
 public:
  explicit FatTreeFabric(FatTreeParams params);

  [[nodiscard]] const FatTreeParams& params() const noexcept {
    return params_;
  }
  [[nodiscard]] const Fabric& fabric() const noexcept { return fabric_; }

  /// Mutable access for fault injection (Fabric::disconnect).  Routing
  /// objects computed before a change are stale; rebuild them afterwards,
  /// exactly as an SM re-sweeps after a trap.
  [[nodiscard]] Fabric& mutable_fabric() noexcept { return fabric_; }

  [[nodiscard]] DeviceId node_device(NodeId node) const {
    MLID_EXPECT(node < node_devices_.size(), "node id out of range");
    return node_devices_[node];
  }
  [[nodiscard]] DeviceId switch_device(SwitchId sw) const {
    MLID_EXPECT(sw < switch_devices_.size(), "switch id out of range");
    return switch_devices_[sw];
  }

  [[nodiscard]] NodeLabel node_label(NodeId node) const {
    return NodeLabel::from_pid(params_, node);
  }
  [[nodiscard]] SwitchLabel switch_label(SwitchId sw) const {
    return switch_from_id(params_, sw);
  }

  /// The leaf switch an endnode hangs off, as a dense SwitchId.
  [[nodiscard]] SwitchId leaf_switch_id(NodeId node) const {
    return leaf_switch_of(params_, node_label(node)).switch_id(params_);
  }

 private:
  FatTreeParams params_;
  Fabric fabric_;
  std::vector<DeviceId> node_devices_;
  std::vector<DeviceId> switch_devices_;
};

}  // namespace mlid

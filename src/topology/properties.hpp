// Greatest-common-prefix algebra on node labels (paper Definitions 1-4).
#pragma once

#include <cstdint>
#include <vector>

#include "topology/fat_tree.hpp"

namespace mlid {

/// Length of the greatest common prefix of two node labels (Definition 1);
/// 0 means no common prefix, n means identical labels.
int gcp_length(const FatTreeParams& params, const NodeLabel& a,
               const NodeLabel& b);

/// Least common ancestors of two distinct nodes (Definition 2): all
/// switches at level alpha = gcp_length whose first alpha digits match the
/// common prefix.  There are (m/2)^(n-1-alpha) of them.
std::vector<SwitchLabel> least_common_ancestors(const FatTreeParams& params,
                                                const NodeLabel& a,
                                                const NodeLabel& b);

/// Number of least common ancestors without materializing them.
std::uint32_t num_least_common_ancestors(const FatTreeParams& params,
                                         const NodeLabel& a,
                                         const NodeLabel& b);

/// Members of gcpg(x, alpha) where x is taken as the first alpha digits of
/// `representative` (Definition 3).  alpha = 0 yields every node.
std::vector<NodeLabel> gcp_group(const FatTreeParams& params,
                                 const NodeLabel& representative, int alpha);

/// Size of gcpg(x, alpha): 2 (m/2)^n for alpha = 0, (m/2)^(n-alpha)
/// otherwise.
std::uint32_t gcp_group_size(const FatTreeParams& params, int alpha);

/// rank(gcpg(x, alpha), P(p)) = sum_{i >= alpha} p_i (m/2)^(n-1-i)
/// (Definition 4); rank with alpha = 0 is the PID.
std::uint32_t rank_in_group(const FatTreeParams& params, const NodeLabel& node,
                            int alpha);

/// True iff the node is reachable going only downward from the switch,
/// i.e. the switch's first `level` digits equal the node's.
bool reachable_downward(const FatTreeParams& params, const SwitchLabel& sw,
                        const NodeLabel& node);

/// Minimal path length in links between two nodes: 2 (n - alpha) for
/// distinct nodes (node->leaf, 2(n-1-alpha) switch hops, leaf->node), 0 for
/// a node and itself.
int min_path_links(const FatTreeParams& params, const NodeLabel& a,
                   const NodeLabel& b);

}  // namespace mlid

#include "topology/builder.hpp"

namespace mlid {

FatTreeFabric::FatTreeFabric(FatTreeParams params) : params_(params) {
  node_devices_.reserve(params_.num_nodes());
  switch_devices_.reserve(params_.num_switches());

  // Switches first (SwitchId order = level-major), then endnodes in PID
  // order.  Creation order is an implementation detail; the id mappings are
  // the contract.
  for (SwitchId sw = 0; sw < params_.num_switches(); ++sw) {
    const SwitchLabel label = switch_from_id(params_, sw);
    const DeviceId dev = fabric_.add_switch(params_.m(), label.to_string());
    fabric_.device(dev).switch_id = sw;
    switch_devices_.push_back(dev);
  }
  for (NodeId node = 0; node < params_.num_nodes(); ++node) {
    const NodeLabel label = NodeLabel::from_pid(params_, node);
    const DeviceId dev = fabric_.add_endnode(label.to_string());
    fabric_.device(dev).node_id = node;
    node_devices_.push_back(dev);
  }

  // Inter-switch links: for every non-root switch, wire each of its up
  // ports to the corresponding parent's down port.  Enumerating from below
  // touches every inter-switch link exactly once.
  for (SwitchId sw = 0; sw < params_.num_switches(); ++sw) {
    const SwitchLabel child = switch_from_id(params_, sw);
    if (child.level() == 0) continue;
    for (int u = 0; u < num_up_ports(params_, child.level()); ++u) {
      const auto child_port =
          static_cast<PortId>(params_.half() + u + kPortShift);
      const SwitchLabel parent =
          parent_through_port(params_, child, child_port);
      const PortId parent_port = parent_facing_port(params_, parent, child);
      MLID_ASSERT(child_facing_port(params_, child, parent) == child_port,
                  "wiring rules disagree");
      fabric_.connect(switch_devices_[sw], child_port,
                      switch_devices_[parent.switch_id(params_)], parent_port);
    }
  }

  // Endnode links: each node attaches to its leaf switch.
  for (NodeId node = 0; node < params_.num_nodes(); ++node) {
    const NodeLabel label = NodeLabel::from_pid(params_, node);
    const SwitchLabel leaf = leaf_switch_of(params_, label);
    fabric_.connect(node_devices_[node], PortId{1},
                    switch_devices_[leaf.switch_id(params_)],
                    leaf_port_of(params_, label));
  }
}

}  // namespace mlid

// Structural validation of a constructed IBFT(m, n) fabric.
#pragma once

#include <string>
#include <vector>

#include "topology/builder.hpp"

namespace mlid {

/// Result of a validation pass: empty `problems` means the fabric satisfies
/// every checked invariant.
struct ValidationReport {
  std::vector<std::string> problems;
  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
};

/// Checks, against the closed forms of Section 3:
///  * device counts (nodes, switches, switches per level);
///  * port population: roots use all m ports down, inner switches m/2 down
///    + m/2 up, leaves m/2 node ports + m/2 up, endnodes exactly 1 port;
///  * link symmetry (peer-of-peer round trip);
///  * wiring consistency: every inter-switch link satisfies the digit rule
///    (labels agree except at the parent's level, ports match the rule);
///  * every endnode hangs off the leaf switch its label prescribes;
///  * connectivity (single component via BFS).
ValidationReport validate_fat_tree(const FatTreeFabric& fabric);

}  // namespace mlid

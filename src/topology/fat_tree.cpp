#include "topology/fat_tree.hpp"

#include <sstream>

namespace mlid {

FatTreeParams::FatTreeParams(int m, int n)
    : FatTreeParams(TreeFamily::kMPortNTree, m, n) {}

FatTreeParams FatTreeParams::kary(int k, int n) {
  return FatTreeParams(TreeFamily::kKaryNTree, 2 * k, n);
}

FatTreeParams::FatTreeParams(TreeFamily family, int m, int n)
    : family_(family), m_(m), n_(n) {
  MLID_EXPECT(m >= 4, "fat-tree switches need at least 4 ports");
  MLID_EXPECT(is_pow2(static_cast<std::uint64_t>(m)),
              "switch radix must be a power of two");
  MLID_EXPECT(n >= 2 && n <= kMaxTreeHeight, "n out of supported range");
  p0_radix_ = family == TreeFamily::kMPortNTree ? m_ : m_ / 2;
  const auto half = static_cast<std::uint64_t>(m / 2);
  const auto p0 = static_cast<std::uint64_t>(p0_radix_);
  // m-port n-tree: 2 (m/2)^n nodes; k-ary n-tree: k^n nodes.
  const std::uint64_t nodes = p0 * ipow(half, n - 1);
  // One root row of (m/2)^(n-1) switches plus n-1 rows of
  // p0_radix * (m/2)^(n-2) switches each.
  const std::uint64_t switches =
      ipow(half, n - 1) +
      static_cast<std::uint64_t>(n - 1) * p0 * ipow(half, n - 2);
  MLID_EXPECT(nodes <= 1u << 20, "network too large for this build");
  nodes_ = static_cast<std::uint32_t>(nodes);
  switches_ = static_cast<std::uint32_t>(switches);
  lmc_ = static_cast<Lmc>((n - 1) * ilog2_exact(half));
  // mlid_lmc() is the tree's *structural* path diversity; whether the IBA
  // 16-bit LID space can actually hold nodes * 2^lmc LIDs is a property of
  // the addressing scheme, enforced by the scheme constructors
  // (FatTreeRouting / UpDownRouting).  A 16-port 4-tree is perfectly
  // buildable and simulable under SLID or a reduced-LMC layout even though
  // full MLID cannot address it.
}

std::uint32_t FatTreeParams::switches_at_level(int level) const {
  MLID_EXPECT(level >= 0 && level < n_, "level out of range");
  if (level == 0) {
    return static_cast<std::uint32_t>(
        ipow(static_cast<std::uint64_t>(half()), n_ - 1));
  }
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(p0_radix_) *
      ipow(static_cast<std::uint64_t>(half()), n_ - 2));
}

SwitchId FatTreeParams::level_offset(int level) const {
  MLID_EXPECT(level >= 0 && level < n_, "level out of range");
  if (level == 0) return 0;
  return switches_at_level(0) +
         static_cast<std::uint32_t>(level - 1) * switches_at_level(1);
}

int FatTreeParams::node_digit_radix(int pos) const {
  MLID_EXPECT(pos >= 0 && pos < n_, "digit position out of range");
  return pos == 0 ? p0_radix_ : half();
}

int FatTreeParams::switch_digit_radix(int level, int pos) const {
  MLID_EXPECT(level >= 0 && level < n_, "level out of range");
  MLID_EXPECT(pos >= 0 && pos < n_ - 1, "digit position out of range");
  return (level >= 1 && pos == 0) ? p0_radix_ : half();
}

// --- NodeLabel --------------------------------------------------------------

NodeLabel NodeLabel::from_digits(const FatTreeParams& params,
                                 const std::array<int, kMaxTreeHeight>& digits) {
  NodeLabel label;
  label.n_ = params.n();
  for (int i = 0; i < params.n(); ++i) {
    const int d = digits[static_cast<std::size_t>(i)];
    MLID_EXPECT(d >= 0 && d < params.node_digit_radix(i),
                "node digit out of radix range");
    label.digits_[static_cast<std::size_t>(i)] = d;
  }
  return label;
}

NodeLabel NodeLabel::from_pid(const FatTreeParams& params, std::uint32_t pid) {
  MLID_EXPECT(pid < params.num_nodes(), "PID out of range");
  NodeLabel label;
  label.n_ = params.n();
  std::uint32_t rest = pid;
  // Digits i >= 1 each have radix m/2 and weight (m/2)^(n-1-i); digit 0 has
  // radix m and weight (m/2)^(n-1).
  for (int i = params.n() - 1; i >= 1; --i) {
    label.digits_[static_cast<std::size_t>(i)] =
        static_cast<int>(rest % static_cast<std::uint32_t>(params.half()));
    rest /= static_cast<std::uint32_t>(params.half());
  }
  MLID_ASSERT(rest < static_cast<std::uint32_t>(params.p0_radix()),
              "PID decomposition overflow");
  label.digits_[0] = static_cast<int>(rest);
  return label;
}

std::uint32_t NodeLabel::pid(const FatTreeParams& params) const {
  MLID_EXPECT(n_ == params.n(), "label height mismatch");
  // Mixed radix: digit 0 has radix m but weight (m/2)^(n-1) like the rest.
  auto value = static_cast<std::uint32_t>(digit(0));
  for (int i = 1; i < n_; ++i) {
    value = value * static_cast<std::uint32_t>(params.half()) +
            static_cast<std::uint32_t>(digit(i));
  }
  return value;
}

std::string NodeLabel::to_string() const {
  std::ostringstream os;
  os << "P(";
  for (int i = 0; i < n_; ++i) {
    if (digits_[static_cast<std::size_t>(i)] > 9) os << (i ? "." : "");
    os << digits_[static_cast<std::size_t>(i)];
    if (digits_[static_cast<std::size_t>(i)] > 9 && i + 1 < n_) os << ".";
  }
  os << ")";
  return os.str();
}

// --- SwitchLabel ------------------------------------------------------------

SwitchLabel SwitchLabel::from_digits(const FatTreeParams& params, int level,
                                     const std::array<int, kMaxTreeHeight>& w) {
  MLID_EXPECT(level >= 0 && level < params.n(), "level out of range");
  SwitchLabel label;
  label.level_ = level;
  label.len_ = params.n() - 1;
  for (int i = 0; i < label.len_; ++i) {
    const int d = w[static_cast<std::size_t>(i)];
    MLID_EXPECT(d >= 0 && d < params.switch_digit_radix(level, i),
                "switch digit out of radix range");
    label.digits_[static_cast<std::size_t>(i)] = d;
  }
  return label;
}

SwitchLabel SwitchLabel::from_index(const FatTreeParams& params, int level,
                                    std::uint32_t index) {
  MLID_EXPECT(index < params.switches_at_level(level), "index out of range");
  SwitchLabel label;
  label.level_ = level;
  label.len_ = params.n() - 1;
  std::uint32_t rest = index;
  for (int i = label.len_ - 1; i >= 0; --i) {
    const auto radix =
        static_cast<std::uint32_t>(params.switch_digit_radix(level, i));
    label.digits_[static_cast<std::size_t>(i)] = static_cast<int>(rest % radix);
    rest /= radix;
  }
  MLID_ASSERT(rest == 0, "switch index decomposition overflow");
  return label;
}

std::uint32_t SwitchLabel::index_in_level(const FatTreeParams& params) const {
  std::uint32_t value = 0;
  for (int i = 0; i < len_; ++i) {
    value = value * static_cast<std::uint32_t>(
                        params.switch_digit_radix(level_, i)) +
            static_cast<std::uint32_t>(digit(i));
  }
  return value;
}

SwitchId SwitchLabel::switch_id(const FatTreeParams& params) const {
  return params.level_offset(level_) + index_in_level(params);
}

std::string SwitchLabel::to_string() const {
  std::ostringstream os;
  os << "SW<";
  for (int i = 0; i < len_; ++i) {
    if (digits_[static_cast<std::size_t>(i)] > 9) os << (i ? "." : "");
    os << digits_[static_cast<std::size_t>(i)];
    if (digits_[static_cast<std::size_t>(i)] > 9 && i + 1 < len_) os << ".";
  }
  os << "," << level_ << ">";
  return os.str();
}

SwitchLabel switch_from_id(const FatTreeParams& params, SwitchId id) {
  MLID_EXPECT(id < params.num_switches(), "switch id out of range");
  int level = params.n() - 1;
  while (params.level_offset(level) > id) --level;
  return SwitchLabel::from_index(params, level, id - params.level_offset(level));
}

// --- Wiring -----------------------------------------------------------------

SwitchLabel leaf_switch_of(const FatTreeParams& params, const NodeLabel& node) {
  std::array<int, kMaxTreeHeight> w{};
  for (int i = 0; i < params.n() - 1; ++i) w[static_cast<std::size_t>(i)] =
      node.digit(i);
  return SwitchLabel::from_digits(params, params.n() - 1, w);
}

PortId leaf_port_of(const FatTreeParams& params, const NodeLabel& node) {
  return static_cast<PortId>(node.digit(params.n() - 1) + kPortShift);
}

int num_down_ports(const FatTreeParams& params, int level) {
  MLID_EXPECT(level >= 0 && level < params.n(), "level out of range");
  return level == 0 ? params.p0_radix() : params.half();
}

int num_up_ports(const FatTreeParams& params, int level) {
  MLID_EXPECT(level >= 0 && level < params.n(), "level out of range");
  return level == 0 ? 0 : params.half();
}

SwitchLabel child_through_port(const FatTreeParams& params,
                               const SwitchLabel& sw, PortId port) {
  MLID_EXPECT(sw.level() < params.n() - 1,
              "leaf switches attach nodes, not child switches");
  const int tree_port = port - kPortShift;
  MLID_EXPECT(tree_port >= 0 && tree_port < num_down_ports(params, sw.level()),
              "not a down port");
  std::array<int, kMaxTreeHeight> w{};
  for (int i = 0; i < sw.length(); ++i) w[static_cast<std::size_t>(i)] =
      sw.digit(i);
  // Children differ from the parent exactly at digit position `level`, and
  // the parent's tree port equals that digit of the child.
  w[static_cast<std::size_t>(sw.level())] = tree_port;
  return SwitchLabel::from_digits(params, sw.level() + 1, w);
}

NodeLabel leaf_node_at(const FatTreeParams& params, const SwitchLabel& leaf,
                       PortId port) {
  MLID_EXPECT(leaf.level() == params.n() - 1, "not a leaf switch");
  const int tree_port = port - kPortShift;
  MLID_EXPECT(tree_port >= 0 && tree_port < params.half(), "not a node port");
  std::array<int, kMaxTreeHeight> p{};
  for (int i = 0; i < leaf.length(); ++i) p[static_cast<std::size_t>(i)] =
      leaf.digit(i);
  p[static_cast<std::size_t>(params.n() - 1)] = tree_port;
  return NodeLabel::from_digits(params, p);
}

SwitchLabel parent_through_port(const FatTreeParams& params,
                                const SwitchLabel& sw, PortId port) {
  MLID_EXPECT(sw.level() >= 1, "roots have no parents");
  const int tree_port = port - kPortShift;
  MLID_EXPECT(tree_port >= params.half() && tree_port < params.m(),
              "not an up port");
  std::array<int, kMaxTreeHeight> w{};
  for (int i = 0; i < sw.length(); ++i) w[static_cast<std::size_t>(i)] =
      sw.digit(i);
  // The child's tree up port is (parent digit at position level-1) + m/2.
  w[static_cast<std::size_t>(sw.level() - 1)] = tree_port - params.half();
  return SwitchLabel::from_digits(params, sw.level() - 1, w);
}

PortId parent_facing_port(const FatTreeParams& params,
                          const SwitchLabel& parent, const SwitchLabel& child) {
  MLID_EXPECT(child.level() == parent.level() + 1, "not a parent/child pair");
  (void)params;
  return static_cast<PortId>(child.digit(parent.level()) + kPortShift);
}

PortId child_facing_port(const FatTreeParams& params, const SwitchLabel& child,
                         const SwitchLabel& parent) {
  MLID_EXPECT(child.level() == parent.level() + 1, "not a parent/child pair");
  return static_cast<PortId>(parent.digit(parent.level()) + params.half() +
                             kPortShift);
}

}  // namespace mlid

#include "topology/validate.hpp"

#include <deque>
#include <sstream>

namespace mlid {

namespace {

void check(ValidationReport& report, bool ok, const std::string& what) {
  if (!ok) report.problems.push_back(what);
}

}  // namespace

ValidationReport validate_fat_tree(const FatTreeFabric& ft) {
  ValidationReport report;
  const FatTreeParams& p = ft.params();
  const Fabric& g = ft.fabric();

  // Counts.
  check(report, g.num_endnodes() == p.num_nodes(), "endnode count mismatch");
  check(report, g.num_switches() == p.num_switches(), "switch count mismatch");
  {
    std::uint32_t per_level_total = 0;
    for (int l = 0; l < p.n(); ++l) per_level_total += p.switches_at_level(l);
    check(report, per_level_total == p.num_switches(),
          "per-level switch counts do not add up");
  }
  {
    // Links: inter-switch (each non-root switch has m/2 up links) + node
    // attachment links.
    std::uint32_t expected = p.num_nodes();
    for (int l = 1; l < p.n(); ++l) {
      expected += p.switches_at_level(l) *
                  static_cast<std::uint32_t>(num_up_ports(p, l));
    }
    check(report, g.num_links() == expected, "link count mismatch");
  }

  // Per-device port population and wiring rules.
  for (SwitchId sw = 0; sw < p.num_switches(); ++sw) {
    const SwitchLabel label = ft.switch_label(sw);
    const DeviceId dev = ft.switch_device(sw);
    const Device& device = g.device(dev);
    const int down = num_down_ports(p, label.level());
    const int up = num_up_ports(p, label.level());
    for (PortId port = 1; port <= p.m(); ++port) {
      const bool should_connect = port <= down || (port > p.half() && up > 0);
      if (device.port_connected(port) != should_connect) {
        std::ostringstream os;
        os << label.to_string() << " port " << int(port)
           << (should_connect ? " should be connected" : " must stay free");
        report.problems.push_back(os.str());
        continue;
      }
      if (!should_connect) continue;
      const PortRef peer = device.peer(port);
      // Symmetry.
      const PortRef back = g.peer_of(peer.device, peer.port);
      check(report, back == PortRef{dev, port},
            label.to_string() + " link asymmetry");
      const Device& peer_dev = g.device(peer.device);
      if (label.level() == p.n() - 1 && port <= down) {
        // Leaf node attachment.
        check(report, peer_dev.kind() == DeviceKind::kEndnode,
              label.to_string() + " down port must reach an endnode");
        if (peer_dev.kind() == DeviceKind::kEndnode) {
          const NodeLabel node = ft.node_label(peer_dev.node_id);
          check(report,
                leaf_switch_of(p, node) == label &&
                    leaf_port_of(p, node) == port,
                label.to_string() + " hosts the wrong node " +
                    node.to_string());
        }
      } else {
        check(report, peer_dev.kind() == DeviceKind::kSwitch,
              label.to_string() + " inter-switch port must reach a switch");
        if (peer_dev.kind() != DeviceKind::kSwitch) continue;
        const SwitchLabel other = ft.switch_label(peer_dev.switch_id);
        const bool going_down = port <= down;
        const SwitchLabel& parent = going_down ? label : other;
        const SwitchLabel& child = going_down ? other : label;
        bool rule_ok = child.level() == parent.level() + 1;
        if (rule_ok) {
          for (int i = 0; i < parent.length(); ++i) {
            if (i != parent.level() && parent.digit(i) != child.digit(i)) {
              rule_ok = false;
            }
          }
          rule_ok = rule_ok &&
                    parent_facing_port(p, parent, child) ==
                        (going_down ? port : g.peer_of(dev, port).port) &&
                    child_facing_port(p, child, parent) ==
                        (going_down ? g.peer_of(dev, port).port : port);
        }
        check(report, rule_ok,
              "wiring rule violated on " + label.to_string() + " port " +
                  std::to_string(int(port)));
      }
    }
  }

  // Endnodes: exactly one port, attached to a leaf switch.
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    const Device& device = g.device(ft.node_device(node));
    check(report, device.num_ports() == 1, "endnode must have one endport");
    check(report, device.port_connected(1),
          "endnode " + device.name() + " is unattached");
  }

  // Connectivity: BFS over all devices.
  {
    std::vector<char> seen(g.num_devices(), 0);
    std::deque<DeviceId> frontier{0};
    seen[0] = 1;
    std::size_t visited = 1;
    while (!frontier.empty()) {
      const DeviceId cur = frontier.front();
      frontier.pop_front();
      const Device& device = g.device(cur);
      for (PortId port = 1; port <= device.num_ports(); ++port) {
        if (!device.port_connected(port)) continue;
        const DeviceId next = device.peer(port).device;
        if (!seen[next]) {
          seen[next] = 1;
          ++visited;
          frontier.push_back(next);
        }
      }
    }
    check(report, visited == g.num_devices(), "fabric is not connected");
  }

  return report;
}

}  // namespace mlid

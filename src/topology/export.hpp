// Exporters: Graphviz DOT and link-list CSV renderings of a fabric.
#pragma once

#include <string>

#include "topology/builder.hpp"

namespace mlid {

/// Graphviz DOT with ranked levels (roots on top, endnodes at the bottom).
std::string to_dot(const FatTreeFabric& fabric);

/// CSV link list: device_a,port_a,device_b,port_b (each link once).
std::string links_csv(const FatTreeFabric& fabric);

/// Human-readable one-line-per-device summary.
std::string describe(const FatTreeFabric& fabric);

}  // namespace mlid

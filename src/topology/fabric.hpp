// Generic port-level fabric graph: devices (switches / endnodes) connected
// by bidirectional links between numbered ports.  The graph is topology
// agnostic; the m-port n-tree builder (builder.hpp) produces one instance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

enum class DeviceKind : std::uint8_t { kEndnode, kSwitch };

/// (device, port) pair identifying one side of a link.
struct PortRef {
  DeviceId device = kInvalidDevice;
  PortId port = kInvalidPort;

  [[nodiscard]] bool valid() const noexcept {
    return device != kInvalidDevice;
  }
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

/// One device in the fabric.  Ports are stored densely; index 0 of a switch
/// is the unused management port, endnodes use port 1 as their endport.
class Device {
 public:
  Device(DeviceKind kind, int num_ports, std::string name)
      : name_(std::move(name)),
        peers_(static_cast<std::size_t>(num_ports) + 1),
        kind_(kind) {
    MLID_EXPECT(num_ports >= 1 && num_ports <= 254, "port count out of range");
  }

  [[nodiscard]] DeviceKind kind() const noexcept { return kind_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Number of external ports (1..num_ports are addressable).
  [[nodiscard]] int num_ports() const noexcept {
    return static_cast<int>(peers_.size()) - 1;
  }

  [[nodiscard]] const PortRef& peer(PortId port) const {
    MLID_EXPECT(port >= 1 && port <= num_ports(), "port out of range");
    return peers_[port];
  }

  [[nodiscard]] bool port_connected(PortId port) const {
    return port >= 1 && port <= num_ports() && peers_[port].valid();
  }

  /// Endnode index (only for endnodes) / switch index (only for switches);
  /// assigned by the builder.
  NodeId node_id = kInvalidNode;
  SwitchId switch_id = kInvalidSwitch;

 private:
  friend class Fabric;
  std::string name_;
  std::vector<PortRef> peers_;
  DeviceKind kind_;
};

/// The fabric graph.  Devices are created first, then linked; links are
/// bidirectional and each port carries at most one link.
class Fabric {
 public:
  DeviceId add_endnode(std::string name);
  DeviceId add_switch(int num_ports, std::string name);

  /// Connect (a, pa) <-> (b, pb); both ports must be free.
  void connect(DeviceId a, PortId pa, DeviceId b, PortId pb);

  /// Remove the link attached to (a, pa); both endpoints become free.
  /// Models a cable pull / port failure for the fault-tolerance studies.
  void disconnect(DeviceId a, PortId pa);

  [[nodiscard]] std::size_t num_devices() const noexcept {
    return devices_.size();
  }
  [[nodiscard]] std::uint32_t num_endnodes() const noexcept {
    return num_endnodes_;
  }
  [[nodiscard]] std::uint32_t num_switches() const noexcept {
    return num_switches_;
  }
  [[nodiscard]] std::uint32_t num_links() const noexcept { return num_links_; }

  [[nodiscard]] const Device& device(DeviceId id) const {
    MLID_EXPECT(id < devices_.size(), "device id out of range");
    return devices_[id];
  }
  [[nodiscard]] Device& device(DeviceId id) {
    MLID_EXPECT(id < devices_.size(), "device id out of range");
    return devices_[id];
  }

  /// Follow the link out of (device, port); PortRef{} if unconnected.
  [[nodiscard]] PortRef peer_of(DeviceId id, PortId port) const {
    return device(id).peer(port);
  }

 private:
  std::vector<Device> devices_;
  std::uint32_t num_endnodes_ = 0;
  std::uint32_t num_switches_ = 0;
  std::uint32_t num_links_ = 0;
};

}  // namespace mlid

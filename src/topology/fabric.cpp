#include "topology/fabric.hpp"

namespace mlid {

DeviceId Fabric::add_endnode(std::string name) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.emplace_back(DeviceKind::kEndnode, 1, std::move(name));
  ++num_endnodes_;
  return id;
}

DeviceId Fabric::add_switch(int num_ports, std::string name) {
  const auto id = static_cast<DeviceId>(devices_.size());
  devices_.emplace_back(DeviceKind::kSwitch, num_ports, std::move(name));
  ++num_switches_;
  return id;
}

void Fabric::connect(DeviceId a, PortId pa, DeviceId b, PortId pb) {
  MLID_EXPECT(a < devices_.size() && b < devices_.size(),
              "device id out of range");
  MLID_EXPECT(!(a == b && pa == pb), "cannot connect a port to itself");
  Device& da = devices_[a];
  Device& db = devices_[b];
  MLID_EXPECT(pa >= 1 && pa <= da.num_ports(), "port a out of range");
  MLID_EXPECT(pb >= 1 && pb <= db.num_ports(), "port b out of range");
  MLID_EXPECT(!da.peers_[pa].valid(), "port a already connected");
  MLID_EXPECT(!db.peers_[pb].valid(), "port b already connected");
  da.peers_[pa] = PortRef{b, pb};
  db.peers_[pb] = PortRef{a, pa};
  ++num_links_;
}

void Fabric::disconnect(DeviceId a, PortId pa) {
  MLID_EXPECT(a < devices_.size(), "device id out of range");
  Device& da = devices_[a];
  MLID_EXPECT(pa >= 1 && pa <= da.num_ports(), "port out of range");
  MLID_EXPECT(da.peers_[pa].valid(), "port is not connected");
  const PortRef peer = da.peers_[pa];
  devices_[peer.device].peers_[peer.port] = PortRef{};
  da.peers_[pa] = PortRef{};
  --num_links_;
}

}  // namespace mlid

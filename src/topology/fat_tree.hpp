// m-port n-tree fat-tree label algebra (paper Section 3).
//
// An FT(m, n) is a fat-tree of height n built from m-port switches:
//   * 2 (m/2)^n processing nodes labelled P(p0 p1 ... p(n-1)) with
//     p0 in [0, m) and pi in [0, m/2) for i >= 1;
//   * (2n-1) (m/2)^(n-1) switches labelled SW<w, l> with level l in [0, n)
//     (level 0 = roots, level n-1 = leaf switches) and w = w0 ... w(n-2)
//     where roots draw every digit from [0, m/2) and lower levels draw w0
//     from [0, m) and the rest from [0, m/2);
//   * SW<w, l> and SW<w', l+1> are joined iff w and w' agree everywhere
//     except digit position l; the upper switch uses (tree) port w'_l and
//     the lower switch uses (tree) port w_l + m/2;
//   * leaf switch SW<w, n-1> attaches node P(p) on (tree) port p(n-1) iff
//     w = p0 ... p(n-2).
//
// The InfiniBand realization IBFT(m, n) shifts every tree port by one
// because physical port 0 of an IBA switch is the internal management port.
// All *public* port values in this library are physical (1-based); the
// shift lives in kPortShift only.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/expect.hpp"
#include "common/math_util.hpp"
#include "common/types.hpp"

namespace mlid {

/// Tree port -> physical IBA port offset (management port 0 is reserved).
inline constexpr PortId kPortShift = 1;

/// The two constructive tree families this library builds.  Their label
/// algebra is identical up to the radix of digit position 0:
///   * m-port n-tree (the paper): digit 0 in [0, m), 2 (m/2)^n nodes, roots
///     use all m ports downward;
///   * k-ary n-tree (Petrini & Vanneschi, the paper's reference [10]),
///     realized on 2k-port switches: every digit in [0, k), k^n nodes,
///     roots use only their k down ports.
enum class TreeFamily : std::uint8_t { kMPortNTree, kKaryNTree };

/// Validated shape of one fat tree (either family).
class FatTreeParams {
 public:
  /// m-port n-tree: m must be an even power of two >= 4 (the construction
  /// needs m/2 >= 2); 2 <= n <= kMaxTreeHeight.
  FatTreeParams(int m, int n);

  /// k-ary n-tree on 2k-port switches; k must be a power of two >= 2.
  static FatTreeParams kary(int k, int n);

  [[nodiscard]] TreeFamily family() const noexcept { return family_; }

  [[nodiscard]] int m() const noexcept { return m_; }
  [[nodiscard]] int n() const noexcept { return n_; }
  [[nodiscard]] int half() const noexcept { return m_ / 2; }

  /// Number of processing nodes: 2 (m/2)^n.
  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return nodes_; }

  /// Number of switches: (2n-1) (m/2)^(n-1).
  [[nodiscard]] std::uint32_t num_switches() const noexcept {
    return switches_;
  }

  /// Switches at a given level: (m/2)^(n-1) roots at level 0, twice that at
  /// every level >= 1.
  [[nodiscard]] std::uint32_t switches_at_level(int level) const;

  /// First SwitchId of a level when switches are numbered (level, index).
  [[nodiscard]] SwitchId level_offset(int level) const;

  /// Radix of node-label digit position pos (m for pos 0, m/2 otherwise).
  [[nodiscard]] int node_digit_radix(int pos) const;

  /// Radix of switch-label digit position pos at the given level.
  [[nodiscard]] int switch_digit_radix(int level, int pos) const;

  /// LMC value of the MLID scheme: log2((m/2)^(n-1)).
  [[nodiscard]] Lmc mlid_lmc() const noexcept { return lmc_; }

  /// LIDs per node under MLID: 2^LMC = (m/2)^(n-1); also the number of
  /// distinct root switches reachable from one leaf switch.
  [[nodiscard]] std::uint32_t paths_per_pair() const noexcept {
    return std::uint32_t{1} << lmc_;
  }

  /// Radix of the node label's digit 0 (m for m-port n-trees, k = m/2 for
  /// k-ary n-trees); every other digit has radix m/2.
  [[nodiscard]] int p0_radix() const noexcept { return p0_radix_; }

  friend bool operator==(const FatTreeParams&, const FatTreeParams&) = default;

 private:
  FatTreeParams(TreeFamily family, int m, int n);

  TreeFamily family_;
  int m_;
  int n_;
  int p0_radix_;
  std::uint32_t nodes_;
  std::uint32_t switches_;
  Lmc lmc_;
};

/// Processing-node label P(p0 ... p(n-1)); value type, cheap to copy.
class NodeLabel {
 public:
  NodeLabel() = default;

  /// Build from explicit digits (validated against the params).
  static NodeLabel from_digits(const FatTreeParams& params,
                               const std::array<int, kMaxTreeHeight>& digits);

  /// Build from a PID (the node's rank in gcpg(<>, 0), i.e. its mixed-radix
  /// value); PIDs enumerate nodes in lexicographic label order.
  static NodeLabel from_pid(const FatTreeParams& params, std::uint32_t pid);

  [[nodiscard]] int length() const noexcept { return n_; }
  [[nodiscard]] int digit(int i) const {
    MLID_ASSERT(i >= 0 && i < n_, "digit index out of range");
    return digits_[static_cast<std::size_t>(i)];
  }

  /// PID(P(p)) = sum_i p_i (m/2)^(n-1-i)  (paper Definition 4 with x = <>).
  [[nodiscard]] std::uint32_t pid(const FatTreeParams& params) const;

  /// "P(102)" rendering used by exporters and error messages.
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const NodeLabel&, const NodeLabel&) = default;

 private:
  std::array<int, kMaxTreeHeight> digits_{};
  int n_ = 0;
};

/// Switch label SW<w0 ... w(n-2), level>; value type.
class SwitchLabel {
 public:
  SwitchLabel() = default;

  static SwitchLabel from_digits(const FatTreeParams& params, int level,
                                 const std::array<int, kMaxTreeHeight>& w);

  /// Inverse of index_in_level() for the given level.
  static SwitchLabel from_index(const FatTreeParams& params, int level,
                                std::uint32_t index);

  [[nodiscard]] int level() const noexcept { return level_; }
  [[nodiscard]] int length() const noexcept { return len_; }
  [[nodiscard]] int digit(int i) const {
    MLID_ASSERT(i >= 0 && i < len_, "digit index out of range");
    return digits_[static_cast<std::size_t>(i)];
  }

  /// Mixed-radix value of w within its level (0-based, lexicographic).
  [[nodiscard]] std::uint32_t index_in_level(const FatTreeParams& params) const;

  /// Global dense switch id: level_offset(level) + index_in_level().
  [[nodiscard]] SwitchId switch_id(const FatTreeParams& params) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const SwitchLabel&, const SwitchLabel&) = default;

 private:
  std::array<int, kMaxTreeHeight> digits_{};
  int len_ = 0;
  int level_ = 0;
};

/// Global SwitchId -> label (inverse of SwitchLabel::switch_id).
SwitchLabel switch_from_id(const FatTreeParams& params, SwitchId id);

// --- Wiring rules (all returned ports are physical, 1-based) ---------------

/// Leaf switch SW<p0...p(n-2), n-1> that hosts the node.
SwitchLabel leaf_switch_of(const FatTreeParams& params, const NodeLabel& node);

/// Physical leaf-switch port the node attaches to: p(n-1) + 1.
PortId leaf_port_of(const FatTreeParams& params, const NodeLabel& node);

/// Number of physical down ports of a switch at `level` (m for roots,
/// m/2 otherwise); down ports are the low-numbered physical ports
/// 1 .. num_down_ports.
int num_down_ports(const FatTreeParams& params, int level);

/// Number of up ports (0 for roots, m/2 otherwise); up ports are physical
/// ports m/2+1 .. m.
int num_up_ports(const FatTreeParams& params, int level);

/// Child reached through physical down port `port` of `sw` (level < n-1
/// only; leaf switches attach nodes instead — see leaf_node_at).
SwitchLabel child_through_port(const FatTreeParams& params,
                               const SwitchLabel& sw, PortId port);

/// Node attached to physical port `port` of a *leaf* switch.
NodeLabel leaf_node_at(const FatTreeParams& params, const SwitchLabel& leaf,
                       PortId port);

/// Parent reached through physical up port `port` of `sw` (level >= 1).
SwitchLabel parent_through_port(const FatTreeParams& params,
                                const SwitchLabel& sw, PortId port);

/// Physical port on `parent` that faces back to `child`
/// (= child's digit at position parent.level(), shifted).
PortId parent_facing_port(const FatTreeParams& params,
                          const SwitchLabel& parent, const SwitchLabel& child);

/// Physical port on `child` that faces up to `parent`
/// (= parent's digit at position parent.level() + m/2, shifted).
PortId child_facing_port(const FatTreeParams& params, const SwitchLabel& child,
                         const SwitchLabel& parent);

}  // namespace mlid

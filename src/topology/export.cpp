#include "topology/export.hpp"

#include <sstream>

namespace mlid {

std::string to_dot(const FatTreeFabric& ft) {
  const FatTreeParams& p = ft.params();
  const Fabric& g = ft.fabric();
  std::ostringstream os;
  os << "graph ibft {\n  rankdir=TB;\n  node [shape=box];\n";
  for (int l = 0; l < p.n(); ++l) {
    os << "  { rank=same;";
    for (std::uint32_t i = 0; i < p.switches_at_level(l); ++i) {
      os << " sw" << (p.level_offset(l) + i) << ";";
    }
    os << " }\n";
  }
  os << "  { rank=same;";
  for (NodeId node = 0; node < p.num_nodes(); ++node) os << " n" << node << ";";
  os << " }\n";
  for (SwitchId sw = 0; sw < p.num_switches(); ++sw) {
    os << "  sw" << sw << " [label=\""
       << g.device(ft.switch_device(sw)).name() << "\"];\n";
  }
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    os << "  n" << node << " [label=\"" << g.device(ft.node_device(node)).name()
       << "\", shape=ellipse];\n";
  }
  // Emit each link once: from the device with the smaller id.
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    const Device& device = g.device(dev);
    for (PortId port = 1; port <= device.num_ports(); ++port) {
      if (!device.port_connected(port)) continue;
      const PortRef peer = device.peer(port);
      if (peer.device < dev) continue;
      auto ref = [&](DeviceId d) {
        const Device& dd = g.device(d);
        std::ostringstream name;
        if (dd.kind() == DeviceKind::kSwitch) {
          name << "sw" << dd.switch_id;
        } else {
          name << "n" << dd.node_id;
        }
        return name.str();
      };
      os << "  " << ref(dev) << " -- " << ref(peer.device) << " [taillabel=\""
         << int(port) << "\", headlabel=\"" << int(peer.port) << "\"];\n";
    }
  }
  os << "}\n";
  return os.str();
}

std::string links_csv(const FatTreeFabric& ft) {
  const Fabric& g = ft.fabric();
  std::ostringstream os;
  os << "device_a,port_a,device_b,port_b\n";
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    const Device& device = g.device(dev);
    for (PortId port = 1; port <= device.num_ports(); ++port) {
      if (!device.port_connected(port)) continue;
      const PortRef peer = device.peer(port);
      if (peer.device < dev) continue;
      os << device.name() << ',' << int(port) << ','
         << g.device(peer.device).name() << ',' << int(peer.port) << '\n';
    }
  }
  return os.str();
}

std::string describe(const FatTreeFabric& ft) {
  const FatTreeParams& p = ft.params();
  std::ostringstream os;
  if (p.family() == TreeFamily::kMPortNTree) {
    os << "IBFT(" << p.m() << ", " << p.n() << ")";
  } else {
    os << p.half() << "-ary " << p.n() << "-tree (on " << p.m()
       << "-port switches)";
  }
  os << ": " << p.num_nodes() << " processing nodes, " << p.num_switches()
     << " switches (" << p.switches_at_level(0) << " roots), LMC "
     << int(p.mlid_lmc()) << " (" << p.paths_per_pair()
     << " paths per node pair)\n";
  for (int l = 0; l < p.n(); ++l) {
    os << "  level " << l << ": " << p.switches_at_level(l) << " switches, "
       << num_down_ports(p, l) << " down / " << num_up_ports(p, l)
       << " up ports each\n";
  }
  return os.str();
}

}  // namespace mlid

#include "topology/properties.hpp"

namespace mlid {

int gcp_length(const FatTreeParams& params, const NodeLabel& a,
               const NodeLabel& b) {
  MLID_EXPECT(a.length() == params.n() && b.length() == params.n(),
              "label height mismatch");
  int alpha = 0;
  while (alpha < params.n() && a.digit(alpha) == b.digit(alpha)) ++alpha;
  return alpha;
}

std::uint32_t num_least_common_ancestors(const FatTreeParams& params,
                                         const NodeLabel& a,
                                         const NodeLabel& b) {
  const int alpha = gcp_length(params, a, b);
  MLID_EXPECT(alpha < params.n(), "identical nodes have no lca set");
  return static_cast<std::uint32_t>(
      ipow(static_cast<std::uint64_t>(params.half()), params.n() - 1 - alpha));
}

std::vector<SwitchLabel> least_common_ancestors(const FatTreeParams& params,
                                                const NodeLabel& a,
                                                const NodeLabel& b) {
  const int alpha = gcp_length(params, a, b);
  MLID_EXPECT(alpha < params.n(), "identical nodes have no lca set");
  // Enumerate all switches at level alpha whose first alpha digits equal the
  // common prefix; the remaining n-1-alpha digits range over [0, m/2)
  // because positions >= 1 always have radix m/2 and position 0 is either
  // fixed (alpha >= 1) or has root radix m/2 (alpha = 0).
  std::vector<SwitchLabel> result;
  const int free_digits = params.n() - 1 - alpha;
  const auto count = static_cast<std::uint32_t>(
      ipow(static_cast<std::uint64_t>(params.half()), free_digits));
  result.reserve(count);
  std::array<int, kMaxTreeHeight> w{};
  for (int i = 0; i < alpha; ++i) w[static_cast<std::size_t>(i)] = a.digit(i);
  for (std::uint32_t v = 0; v < count; ++v) {
    std::uint32_t rest = v;
    for (int i = params.n() - 2; i >= alpha; --i) {
      w[static_cast<std::size_t>(i)] =
          static_cast<int>(rest % static_cast<std::uint32_t>(params.half()));
      rest /= static_cast<std::uint32_t>(params.half());
    }
    result.push_back(SwitchLabel::from_digits(params, alpha, w));
  }
  return result;
}

std::uint32_t gcp_group_size(const FatTreeParams& params, int alpha) {
  MLID_EXPECT(alpha >= 0 && alpha <= params.n(), "alpha out of range");
  if (alpha == 0) return params.num_nodes();
  return static_cast<std::uint32_t>(
      ipow(static_cast<std::uint64_t>(params.half()), params.n() - alpha));
}

std::vector<NodeLabel> gcp_group(const FatTreeParams& params,
                                 const NodeLabel& representative, int alpha) {
  MLID_EXPECT(alpha >= 0 && alpha <= params.n(), "alpha out of range");
  std::vector<NodeLabel> result;
  const std::uint32_t count = gcp_group_size(params, alpha);
  result.reserve(count);
  std::array<int, kMaxTreeHeight> p{};
  for (int i = 0; i < alpha; ++i) {
    p[static_cast<std::size_t>(i)] = representative.digit(i);
  }
  // Free positions alpha..n-1 enumerate lexicographically; position 0 (when
  // free, i.e. alpha = 0) has radix m, the rest m/2.
  for (std::uint32_t v = 0; v < count; ++v) {
    std::uint32_t rest = v;
    for (int i = params.n() - 1; i >= alpha; --i) {
      const auto radix =
          static_cast<std::uint32_t>(params.node_digit_radix(i));
      p[static_cast<std::size_t>(i)] = static_cast<int>(rest % radix);
      rest /= radix;
    }
    result.push_back(NodeLabel::from_digits(params, p));
  }
  return result;
}

std::uint32_t rank_in_group(const FatTreeParams& params, const NodeLabel& node,
                            int alpha) {
  MLID_EXPECT(alpha >= 0 && alpha < params.n(), "alpha out of range");
  std::uint32_t value = 0;
  for (int i = alpha; i < params.n(); ++i) {
    // Weight (m/2)^(n-1-i) regardless of the digit's own radix.
    value = (i == alpha)
                ? static_cast<std::uint32_t>(node.digit(i))
                : value * static_cast<std::uint32_t>(params.half()) +
                      static_cast<std::uint32_t>(node.digit(i));
  }
  return value;
}

bool reachable_downward(const FatTreeParams& params, const SwitchLabel& sw,
                        const NodeLabel& node) {
  MLID_EXPECT(node.length() == params.n(), "label height mismatch");
  for (int i = 0; i < sw.level(); ++i) {
    if (sw.digit(i) != node.digit(i)) return false;
  }
  return true;
}

int min_path_links(const FatTreeParams& params, const NodeLabel& a,
                   const NodeLabel& b) {
  const int alpha = gcp_length(params, a, b);
  if (alpha == params.n()) return 0;
  return 2 * (params.n() - alpha);
}

}  // namespace mlid

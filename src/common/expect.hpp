// Lightweight precondition / invariant checking.
//
// MLID_EXPECT is always on (cheap pointer-free checks guarding API
// contracts); MLID_ASSERT compiles away in release builds and guards
// internal invariants on hot paths.  Violations throw ContractViolation so
// tests can assert on misuse without aborting the process.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>

namespace mlid {

/// Thrown when a checked precondition or invariant fails.
class ContractViolation : public std::logic_error {
 public:
  ContractViolation(const char* expr, const char* what,
                    const std::source_location& loc)
      : std::logic_error(std::string(loc.file_name()) + ":" +
                         std::to_string(loc.line()) + ": contract `" + expr +
                         "` violated" +
                         (what && *what ? std::string(": ") + what : "")) {}
};

namespace detail {
[[noreturn]] inline void contract_fail(const char* expr, const char* what,
                                       const std::source_location& loc) {
  throw ContractViolation(expr, what, loc);
}
}  // namespace detail

}  // namespace mlid

#define MLID_EXPECT(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::mlid::detail::contract_fail(#cond, msg,                      \
                                    std::source_location::current()); \
    }                                                                \
  } while (0)

#if defined(NDEBUG) && !defined(MLID_CHECKED_BUILD)
#define MLID_ASSERT(cond, msg) \
  do {                         \
  } while (0)
#else
#define MLID_ASSERT(cond, msg) MLID_EXPECT(cond, msg)
#endif

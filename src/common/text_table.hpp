// Console table / CSV formatting for the experiment harness output.
#pragma once

#include <string>
#include <vector>

namespace mlid {

/// Row-oriented text table with right-aligned numeric-looking cells.
/// Rendered either as an aligned console table or as CSV.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Pretty fixed-width rendering with a header separator line.
  [[nodiscard]] std::string to_string() const;

  /// RFC-4180-ish CSV rendering (quotes cells containing , " or newline).
  [[nodiscard]] std::string to_csv() const;

  [[nodiscard]] std::size_t num_rows() const { return rows_.size(); }
  [[nodiscard]] std::size_t num_cols() const { return header_.size(); }

  /// Format a double with the given number of decimals ("-" for NaN).
  static std::string num(double v, int decimals = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mlid

// Small integer math helpers used by the label algebra and LID arithmetic.
#pragma once

#include <cstdint>

#include "common/expect.hpp"

namespace mlid {

/// True iff v is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t v) noexcept {
  return v != 0 && (v & (v - 1)) == 0;
}

/// Floor of log2(v); requires v > 0.
constexpr int ilog2(std::uint64_t v) {
  MLID_EXPECT(v > 0, "ilog2 of zero");
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

/// Exact log2 for powers of two.
constexpr int ilog2_exact(std::uint64_t v) {
  MLID_EXPECT(is_pow2(v), "ilog2_exact requires a power of two");
  return ilog2(v);
}

/// base^exp for small integers with overflow guard.
constexpr std::uint64_t ipow(std::uint64_t base, int exp) {
  MLID_EXPECT(exp >= 0, "negative exponent");
  std::uint64_t r = 1;
  for (int i = 0; i < exp; ++i) {
    MLID_EXPECT(base == 0 || r <= UINT64_MAX / (base ? base : 1),
                "ipow overflow");
    r *= base;
  }
  return r;
}

/// Ceiling division for non-negative integers.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) {
  MLID_EXPECT(b > 0, "division by zero");
  return (a + b - 1) / b;
}

/// Digit `index` (0 = least significant) of `value` in the given radix.
constexpr std::uint32_t radix_digit(std::uint64_t value, std::uint32_t radix,
                                    int index) {
  MLID_EXPECT(radix >= 2, "radix must be >= 2");
  for (int i = 0; i < index; ++i) value /= radix;
  return static_cast<std::uint32_t>(value % radix);
}

}  // namespace mlid

// Fundamental identifier and time types shared by every subsystem.
//
// All identifiers are small integer handles into dense arrays owned by the
// subsystem that mints them (Core Guidelines: prefer value types; indices
// over pointers for bulk data).  Sentinel values mark "no such object".
#pragma once

#include <cstdint>
#include <limits>

namespace mlid {

/// Dense index of a device (endnode or switch) inside a Fabric.
using DeviceId = std::uint32_t;

/// Dense index of a processing node (endnode), ordered by PID.
using NodeId = std::uint32_t;

/// Dense index of a switch, ordered by (level, index-in-level).
using SwitchId = std::uint32_t;

/// Physical port number on a device.  Port 0 of an InfiniBand switch is the
/// internal management port; external ports are 1..m.  Endnodes expose one
/// endport, numbered 1.
using PortId = std::uint8_t;

/// InfiniBand Local Identifier.  LID 0 is reserved (never assigned); the
/// architectural LID space is 16 bits.
using Lid = std::uint32_t;

/// LID Mask Control: number of low-order LID bits that select one of the
/// 2^LMC paths to an endport.  IBA allows 0..7 (3-bit field).
using Lmc = std::uint8_t;

/// Virtual lane index.  IBA supports VL0..VL14 for data plus VL15 for
/// management; this model uses data VLs only.
using VlId = std::uint8_t;

/// Simulated time in nanoseconds.
using SimTime = std::int64_t;

inline constexpr DeviceId kInvalidDevice = std::numeric_limits<DeviceId>::max();
inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr SwitchId kInvalidSwitch = std::numeric_limits<SwitchId>::max();
inline constexpr PortId kInvalidPort = std::numeric_limits<PortId>::max();
inline constexpr Lid kInvalidLid = 0;  // LID 0 is architecturally reserved.
inline constexpr SimTime kSimTimeNever = std::numeric_limits<SimTime>::max();

/// Maximum tree height supported by the fixed-capacity label types.  An
/// m-port n-tree with n = 8 and m = 4 already has 512 endnodes; larger n is
/// out of scope for the paper's experiments but the limit is a compile-time
/// constant that can be raised freely.
inline constexpr int kMaxTreeHeight = 8;

/// 16-bit LID space bound from the IBA specification.
inline constexpr Lid kMaxLidSpace = 0xFFFF;

}  // namespace mlid

// Deterministic, fast pseudo-random generators for the simulator.
//
// Simulation reproducibility is a hard requirement (the test suite asserts
// bit-identical reruns), so we avoid std::mt19937's platform-inconsistent
// seeding helpers and implement SplitMix64 (for seeding / stream splitting)
// and xoshiro256** (for bulk draws).  Both are public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>

#include "common/expect.hpp"

namespace mlid {

/// SplitMix64: tiny generator used to expand one 64-bit seed into
/// independent streams (one per endnode, one per traffic pattern, ...).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: the workhorse generator for destination selection and
/// traffic randomness.  State is seeded via SplitMix64 so that any 64-bit
/// seed (including 0) yields a valid state.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return UINT64_MAX; }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Unbiased draw from [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept {
    MLID_ASSERT(bound > 0, "empty range");
    // Fast path without 128-bit rejection is fine for bound << 2^64, but we
    // keep the exact method: determinism matters more than nanoseconds here.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform draw from the closed range [lo, hi].
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept {
    MLID_ASSERT(lo <= hi, "inverted range");
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// True with the given probability.
  bool chance(double p) noexcept { return uniform01() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

}  // namespace mlid

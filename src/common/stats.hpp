// Streaming statistics used by the simulator's metric collection.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/expect.hpp"

namespace mlid {

/// Welford online accumulator: mean / variance / extrema in O(1) memory.
class OnlineStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  void merge(const OnlineStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ ? mean_ : 0.0;
  }
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept { return std::sqrt(variance()); }
  [[nodiscard]] double min() const noexcept {
    return count_ ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return count_ ? max_ : 0.0;
  }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Fixed-bin histogram with overflow bin; used for latency distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins)
      : lo_(lo), hi_(hi), bins_(bins, 0) {
    MLID_EXPECT(hi > lo, "histogram range must be non-empty");
    MLID_EXPECT(bins > 0, "histogram needs at least one bin");
  }

  void add(double x) noexcept {
    if (x < lo_) {
      ++underflow_;
    } else if (x >= hi_) {
      ++overflow_;
    } else {
      const auto idx = static_cast<std::size_t>(
          (x - lo_) / (hi_ - lo_) * static_cast<double>(bins_.size()));
      ++bins_[std::min(idx, bins_.size() - 1)];
    }
    ++total_;
  }

  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t underflow() const noexcept { return underflow_; }
  [[nodiscard]] std::uint64_t overflow() const noexcept { return overflow_; }
  [[nodiscard]] const std::vector<std::uint64_t>& bins() const noexcept {
    return bins_;
  }
  [[nodiscard]] double bin_lo(std::size_t i) const noexcept {
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(bins_.size());
  }
  [[nodiscard]] double bin_hi(std::size_t i) const noexcept {
    return bin_lo(i + 1);
  }

  /// Approximate quantile (q in [0,1]) assuming uniform density per bin.
  [[nodiscard]] double quantile(double q) const {
    MLID_EXPECT(q >= 0.0 && q <= 1.0, "quantile out of range");
    if (total_ == 0) return 0.0;
    const auto target = static_cast<std::uint64_t>(
        q * static_cast<double>(total_));
    std::uint64_t seen = underflow_;
    if (seen > target) return lo_;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
      if (seen + bins_[i] > target) {
        const double frac =
            bins_[i] ? static_cast<double>(target - seen) /
                           static_cast<double>(bins_[i])
                     : 0.0;
        return bin_lo(i) + frac * (bin_hi(i) - bin_lo(i));
      }
      seen += bins_[i];
    }
    return hi_;
  }

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> bins_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace mlid

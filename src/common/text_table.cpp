#include "common/text_table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/expect.hpp"

namespace mlid {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  MLID_EXPECT(!header_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  MLID_EXPECT(cells.size() == header_.size(),
              "row width must match the header");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double v, int decimals) {
  if (std::isnan(v)) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  return s.find_first_not_of("0123456789+-.eE%x") == std::string::npos;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      const auto pad = widths[c] - row[c].size();
      if (looks_numeric(row[c])) {
        os << std::string(pad, ' ') << row[c];
      } else {
        os << row[c] << std::string(pad, ' ');
      }
    }
    os << '\n';
  };
  emit_row(header_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace mlid

// Linear Forwarding Table: the per-switch DLID -> output-port map that
// makes InfiniBand routing deterministic (IBA spec ch. 14; paper Section 2).
//
// Two representations share one lookup contract:
//   - LinearForwardingTable: the dense DLID-indexed byte vector real
//     switches hold (64 KiB at the full LID space).
//   - CompactLft: formula-backed storage for schemes whose tables are a
//     closed form (paper Section 4.3).  The base mapping is recomputed on
//     demand through an LftFormula; only entries the live SM has repaired
//     away from the formula are materialized, as a sorted overlay.  A
//     FT(16,4) fabric needs ~224 MiB of dense tables but only a few dozen
//     bytes per switch compactly, which is what makes 65k-port fabrics
//     simulable at all (ROADMAP item 2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

/// Dense DLID-indexed table.  Entry value is the physical output port;
/// kNoEntry marks DLIDs the switch cannot route (packets to them would be
/// dropped by real hardware, and the simulator treats them as fatal).
class LinearForwardingTable {
 public:
  static constexpr std::uint8_t kNoEntry = 0xFF;

  LinearForwardingTable() = default;
  explicit LinearForwardingTable(Lid max_lid)
      : entries_(static_cast<std::size_t>(max_lid) + 1, kNoEntry) {
    MLID_EXPECT(max_lid <= kMaxLidSpace, "LFT larger than the LID space");
  }

  [[nodiscard]] Lid max_lid() const noexcept {
    return entries_.empty() ? 0 : static_cast<Lid>(entries_.size() - 1);
  }

  void set(Lid lid, PortId port) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid < entries_.size(), "LID beyond table size");
    MLID_EXPECT(port != kNoEntry, "port value collides with the sentinel");
    count_ += (entries_[lid] == kNoEntry);
    entries_[lid] = port;
  }

  /// Withdraw the entry for a LID (the SM revoking a route whose
  /// destination became unreachable from this switch).
  void clear(Lid lid) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid < entries_.size(), "LID beyond table size");
    count_ -= (entries_[lid] != kNoEntry);
    entries_[lid] = kNoEntry;
  }

  /// Output port for a DLID, or kNoEntry when the switch cannot route it.
  [[nodiscard]] PortId find(Lid lid) const noexcept {
    return (lid != kInvalidLid && lid < entries_.size()) ? entries_[lid]
                                                         : kNoEntry;
  }

  [[nodiscard]] bool has(Lid lid) const noexcept {
    return find(lid) != kNoEntry;
  }

  /// Output port for a DLID; contract-checked (simulated switches verify
  /// `has` first and account a drop instead of crashing).
  [[nodiscard]] PortId lookup(Lid lid) const {
    MLID_EXPECT(has(lid), "no LFT entry for this DLID");
    return entries_[lid];
  }

  /// Programmed (non-sentinel) entries; a running count maintained by
  /// set/clear, O(1) — bring-up accounting calls this once per switch.
  [[nodiscard]] std::size_t num_entries() const noexcept { return count_; }

  /// Heap bytes owned by the table (excluding sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return entries_.capacity() * sizeof(std::uint8_t);
  }

  /// Whole-table comparison (the SM tests assert incremental repair and a
  /// full rebuild land on identical tables).
  [[nodiscard]] bool operator==(const LinearForwardingTable&) const = default;

 private:
  std::vector<std::uint8_t> entries_;
  std::size_t count_ = 0;
};

using Lft = LinearForwardingTable;

/// Closed-form forwarding: a routing scheme whose per-switch tables are a
/// formula over (switch, DLID) implements this to let CompactLft skip the
/// dense materialization.  The formula must be total over the scheme's
/// assigned LID range [1, max_lid] and side-effect free; out-of-range LIDs
/// are filtered by CompactLft before the call.
class LftFormula {
 public:
  virtual ~LftFormula() = default;
  /// Base output port at `sw` for `lid`, or Lft::kNoEntry when the formula
  /// assigns no route.
  [[nodiscard]] virtual PortId formula_port(SwitchId sw, Lid lid) const = 0;
};

/// One switch's forwarding state, stored compactly: the base mapping comes
/// from an LftFormula (not owned; must outlive the table) and only
/// SM-repaired deviations are materialized as a sorted (lid, port) overlay.
/// An overlay entry is authoritative, including a kNoEntry tombstone for a
/// withdrawn route; entries repaired back to the formula's answer are
/// dropped from the overlay again.  Schemes without a closed form fall
/// back to owning a dense table (formula_backed() == false) behind the
/// same interface.
class CompactLft {
 public:
  static constexpr std::uint8_t kNoEntry = LinearForwardingTable::kNoEntry;

  CompactLft() = default;

  /// Formula-backed table for `sw` covering LIDs [1, max_lid].
  /// `base_entries` is the number of LIDs the formula routes (the paper's
  /// schemes assign the whole contiguous range, so this is max_lid).
  CompactLft(const LftFormula* formula, SwitchId sw, Lid max_lid,
             std::size_t base_entries)
      : formula_(formula), sw_(sw), max_lid_(max_lid), count_(base_entries) {
    MLID_EXPECT(formula != nullptr, "formula-backed table needs a formula");
    MLID_EXPECT(max_lid <= kMaxLidSpace, "LFT larger than the LID space");
  }

  /// Dense fallback: adopts a materialized table (UPDN, custom schemes).
  explicit CompactLft(LinearForwardingTable dense)
      : max_lid_(dense.max_lid()),
        count_(dense.num_entries()),
        dense_(std::move(dense)) {}

  [[nodiscard]] Lid max_lid() const noexcept { return max_lid_; }

  /// Output port for a DLID, or kNoEntry when this switch cannot route it.
  [[nodiscard]] PortId find(Lid lid) const {
    if (lid == kInvalidLid || lid > max_lid_) return kNoEntry;
    if (!overlay_.empty()) {
      const auto it = overlay_find(lid);
      if (it != overlay_.end() && it->lid == lid) return it->port;
    }
    return base_port(lid);
  }

  [[nodiscard]] bool has(Lid lid) const { return find(lid) != kNoEntry; }

  [[nodiscard]] PortId lookup(Lid lid) const {
    const PortId port = find(lid);
    MLID_EXPECT(port != kNoEntry, "no LFT entry for this DLID");
    return port;
  }

  void set(Lid lid, PortId port) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid <= max_lid_, "LID beyond table size");
    MLID_EXPECT(port != kNoEntry, "port value collides with the sentinel");
    if (!formula_) {
      dense_.set(lid, port);
      count_ = dense_.num_entries();
      return;
    }
    count_ += (find(lid) == kNoEntry);
    write_overlay(lid, port);
  }

  void clear(Lid lid) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid <= max_lid_, "LID beyond table size");
    if (!formula_) {
      dense_.clear(lid);
      count_ = dense_.num_entries();
      return;
    }
    count_ -= (find(lid) != kNoEntry);
    write_overlay(lid, kNoEntry);
  }

  /// Programmed entries (base entries plus/minus live overlay edits), O(1).
  [[nodiscard]] std::size_t num_entries() const noexcept { return count_; }

  /// Materialized deviations from the base mapping (0 on a pristine
  /// formula-backed table; the dense fallback never uses the overlay).
  [[nodiscard]] std::size_t overlay_entries() const noexcept {
    return overlay_.size();
  }

  [[nodiscard]] bool formula_backed() const noexcept {
    return formula_ != nullptr;
  }

  /// Heap bytes owned by the table (excluding sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    return overlay_.capacity() * sizeof(Overlay) + dense_.memory_bytes();
  }

  /// Dense copy of the effective mapping (tests, diffs, DOT export).
  [[nodiscard]] LinearForwardingTable materialize() const {
    LinearForwardingTable table(max_lid_);
    for (std::uint32_t lid = 1; lid <= max_lid_; ++lid) {
      const PortId port = find(static_cast<Lid>(lid));
      if (port != kNoEntry) table.set(static_cast<Lid>(lid), port);
    }
    return table;
  }

  /// Semantic comparison: same LID range and same effective mapping,
  /// regardless of representation (formula vs dense vs overlay mix).
  [[nodiscard]] bool operator==(const CompactLft& other) const {
    if (max_lid_ != other.max_lid_ || count_ != other.count_) return false;
    for (std::uint32_t lid = 1; lid <= max_lid_; ++lid) {
      if (find(static_cast<Lid>(lid)) != other.find(static_cast<Lid>(lid))) {
        return false;
      }
    }
    return true;
  }

  [[nodiscard]] bool operator==(const LinearForwardingTable& other) const {
    if (max_lid_ != other.max_lid() || count_ != other.num_entries()) {
      return false;
    }
    for (std::uint32_t lid = 1; lid <= max_lid_; ++lid) {
      if (find(static_cast<Lid>(lid)) != other.find(static_cast<Lid>(lid))) {
        return false;
      }
    }
    return true;
  }

 private:
  struct Overlay {
    Lid lid;
    std::uint8_t port;  ///< kNoEntry = withdrawn route (tombstone)
  };

  [[nodiscard]] PortId base_port(Lid lid) const {
    return formula_ ? formula_->formula_port(sw_, lid) : dense_.find(lid);
  }

  [[nodiscard]] std::vector<Overlay>::const_iterator overlay_find(
      Lid lid) const {
    return std::lower_bound(
        overlay_.begin(), overlay_.end(), lid,
        [](const Overlay& o, Lid l) { return o.lid < l; });
  }

  void write_overlay(Lid lid, std::uint8_t port) {
    const auto it = overlay_.begin() + (overlay_find(lid) - overlay_.cbegin());
    const bool present = it != overlay_.end() && it->lid == lid;
    if (port == base_port(lid)) {
      // The edit restores the formula's answer: the overlay entry (if any)
      // is redundant and the table stays compact.
      if (present) overlay_.erase(it);
    } else if (present) {
      it->port = port;
    } else {
      overlay_.insert(it, Overlay{lid, port});
    }
  }

  const LftFormula* formula_ = nullptr;
  SwitchId sw_ = kInvalidSwitch;
  Lid max_lid_ = 0;
  std::size_t count_ = 0;
  LinearForwardingTable dense_;   ///< engaged when formula_ == nullptr
  std::vector<Overlay> overlay_;  ///< sorted by lid; live-SM repairs only
};

}  // namespace mlid

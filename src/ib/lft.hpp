// Linear Forwarding Table: the per-switch DLID -> output-port map that
// makes InfiniBand routing deterministic (IBA spec ch. 14; paper Section 2).
#pragma once

#include <cstdint>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

/// Dense DLID-indexed table.  Entry value is the physical output port;
/// kNoEntry marks DLIDs the switch cannot route (packets to them would be
/// dropped by real hardware, and the simulator treats them as fatal).
class LinearForwardingTable {
 public:
  static constexpr std::uint8_t kNoEntry = 0xFF;

  LinearForwardingTable() = default;
  explicit LinearForwardingTable(Lid max_lid)
      : entries_(static_cast<std::size_t>(max_lid) + 1, kNoEntry) {
    MLID_EXPECT(max_lid <= kMaxLidSpace, "LFT larger than the LID space");
  }

  [[nodiscard]] Lid max_lid() const noexcept {
    return entries_.empty() ? 0 : static_cast<Lid>(entries_.size() - 1);
  }

  void set(Lid lid, PortId port) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid < entries_.size(), "LID beyond table size");
    MLID_EXPECT(port != kNoEntry, "port value collides with the sentinel");
    entries_[lid] = port;
  }

  /// Withdraw the entry for a LID (the SM revoking a route whose
  /// destination became unreachable from this switch).
  void clear(Lid lid) {
    MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lid < entries_.size(), "LID beyond table size");
    entries_[lid] = kNoEntry;
  }

  [[nodiscard]] bool has(Lid lid) const noexcept {
    return lid != kInvalidLid && lid < entries_.size() &&
           entries_[lid] != kNoEntry;
  }

  /// Output port for a DLID; contract-checked (simulated switches verify
  /// `has` first and account a drop instead of crashing).
  [[nodiscard]] PortId lookup(Lid lid) const {
    MLID_EXPECT(has(lid), "no LFT entry for this DLID");
    return entries_[lid];
  }

  [[nodiscard]] std::size_t num_entries() const noexcept {
    std::size_t n = 0;
    for (auto e : entries_) n += (e != kNoEntry);
    return n;
  }

  /// Whole-table comparison (the SM tests assert incremental repair and a
  /// full rebuild land on identical tables).
  [[nodiscard]] bool operator==(const LinearForwardingTable&) const = default;

 private:
  std::vector<std::uint8_t> entries_;
};

using Lft = LinearForwardingTable;

}  // namespace mlid

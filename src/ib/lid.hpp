// LID / LMC machinery (IBA spec: an endport owns 2^LMC consecutive LIDs
// starting at a base LID whose low LMC bits are zero-offset).
#pragma once

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

/// Contiguous LID block [base, base + 2^lmc) assigned to one endport.
class LidRange {
 public:
  LidRange() = default;
  LidRange(Lid base, Lmc lmc) : base_(base), lmc_(lmc) {
    MLID_EXPECT(base != kInvalidLid, "LID 0 is reserved");
    MLID_EXPECT(lmc <= 7, "LMC is a 3-bit field");
    MLID_EXPECT(base + count() - 1 <= kMaxLidSpace,
                "LID range exceeds the 16-bit space");
  }

  [[nodiscard]] Lid base() const noexcept { return base_; }
  [[nodiscard]] Lmc lmc() const noexcept { return lmc_; }
  [[nodiscard]] std::uint32_t count() const noexcept {
    return std::uint32_t{1} << lmc_;
  }
  [[nodiscard]] Lid last() const noexcept { return base_ + count() - 1; }

  [[nodiscard]] bool contains(Lid lid) const noexcept {
    return lid >= base_ && lid <= last();
  }

  /// lid = base + offset; offset selects one of the 2^LMC paths.
  [[nodiscard]] Lid at(std::uint32_t offset) const {
    MLID_EXPECT(offset < count(), "path offset out of range");
    return base_ + offset;
  }

  [[nodiscard]] std::uint32_t offset_of(Lid lid) const {
    MLID_EXPECT(contains(lid), "LID outside the range");
    return lid - base_;
  }

  friend bool operator==(const LidRange&, const LidRange&) = default;

 private:
  Lid base_ = kInvalidLid;
  Lmc lmc_ = 0;
};

}  // namespace mlid

// Packet model: the subset of the IBA Local Route Header the simulator and
// routing layers need (SLID/DLID, VL, payload size) plus bookkeeping.
#pragma once

#include <cstdint>

#include "common/types.hpp"

namespace mlid {

/// Dense packet handle into the simulator's packet pool.
using PacketId = std::uint32_t;
inline constexpr PacketId kInvalidPacket = 0xFFFFFFFFu;

/// Handle of the (multi-packet) message a segment belongs to.
using MessageId = std::uint32_t;
inline constexpr MessageId kNoMessage = 0xFFFFFFFFu;

/// One in-flight packet.  Plain value type; the simulator owns the pool.
struct Packet {
  Lid slid = kInvalidLid;
  Lid dlid = kInvalidLid;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  VlId vl = 0;
  std::uint32_t size_bytes = 0;

  SimTime generated_at = 0;   ///< entered the source queue
  SimTime injected_at = -1;   ///< head left the source NIC
  SimTime delivered_at = -1;  ///< tail received at the destination
  MessageId msg = kNoMessage; ///< owning message (burst workloads only)
  std::uint16_t hops = 0;     ///< switches traversed
  /// Deterministic generation order: (src << 32 | per-source counter) for
  /// open-loop packets, global segment index for burst workloads.  Stable
  /// across shard counts (unlike the pool PacketId), so it serves as the
  /// canonical event tie-break key (EventOrder::kCanonical).
  std::uint64_t corder = 0;
  /// Forward Explicit Congestion Notification (CCA): set by a congested
  /// switch, echoed back to the source by the destination HCA as a BECN.
  /// The BECN itself travels as a control event (EventKind::kBecnArrive),
  /// like SM traps -- not as an in-band packet.
  bool fecn = false;
};

}  // namespace mlid

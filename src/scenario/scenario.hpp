// Production scenario subsystem: named, self-checking datacenter workload
// scenarios.  A scenario packages everything one "is the network healthy
// under this workload?" question needs -- the traffic or message workload,
// the fault/churn schedule, the per-tenant VL mapping -- plus the contract
// bounds its outcomes must satisfy (e.g. "victim p99 with CC on <= 0.8x CC
// off", "per-tenant Jain fairness >= 0.85", "post-heal delivery >= 90%").
//
// Scenarios live in a string-keyed open registry, the same pattern as
// SchemeRegistry / the policy registries: built-ins (incast, multi-tenant,
// mice-elephants, churn) register on first use, out-of-tree scenarios add()
// themselves before the harness resolves names.  The orchestrator that
// actually runs them is harness/scenario_sweep.hpp; bench/ablation_scenarios
// runs every registered scenario and exits non-zero on a violated contract.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "sim/config.hpp"
#include "sim/fault_schedule.hpp"
#include "sim/metrics.hpp"
#include "sim/traffic.hpp"
#include "sim/workload.hpp"
#include "topology/builder.hpp"

namespace mlid {

/// One simulation arm of a scenario: a complete, runnable configuration.
/// Open-loop arms use (sim, traffic, offered_load) and may carry a fault
/// schedule (a non-empty one gets a live SubnetManager attached); closed-
/// loop arms drain `workload` through the burst engine instead.  Seeds in
/// `sim` / `traffic` are placeholders -- the orchestrator overwrites them
/// with scenario-derived streams shared by every arm, so arms compare their
/// config deltas and nothing else (the policy-arm rule from run_sweep).
struct ScenarioRun {
  std::string arm;              ///< label, unique within the scenario
  std::string scheme = "MLID";  ///< SchemeRegistry name
  SimConfig sim;
  TrafficConfig traffic;        ///< open-loop arms
  double offered_load = 0.5;    ///< open-loop arms
  FaultSchedule faults;         ///< non-empty = live SM + mid-run faults
  bool closed_loop = false;
  std::vector<MessageSpec> workload;  ///< closed-loop arms
};

/// The finished outcome of one arm, handed to Scenario::evaluate in plan
/// order.  Exactly one of `sim` / `burst` is meaningful, keyed by
/// `closed_loop` (mirrors ScenarioRun).
struct ScenarioOutcome {
  std::string arm;
  bool closed_loop = false;
  SimResult sim;
  BurstResult burst;
};

/// One evaluated contract: a named bound and what the run measured.
/// `passed == false` anywhere fails bench/ablation_scenarios' exit code.
struct ContractCheck {
  std::string name;      ///< e.g. "victim-p99-cc-ratio"
  bool passed = false;
  double measured = 0.0;
  double bound = 0.0;
  std::string detail;    ///< human-readable restatement of the bound
};

/// A named production scenario: plans its arms for a fabric and judges the
/// outcomes.  Implementations must be stateless between plan and evaluate
/// (the orchestrator may construct a fresh instance for each).
class Scenario {
 public:
  virtual ~Scenario() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;
  [[nodiscard]] virtual std::string_view description() const noexcept = 0;

  /// The arms to run against `fabric`.  `quick` shrinks windows and
  /// workload sizes to CI-smoke scale (the --quick contract every bench
  /// honours); contracts must hold at both scales.  The fabric reference is
  /// for planning only (sizes, uplink selection for fault schedules) --
  /// execution runs each arm against its own identically-parameterized
  /// fabric instance, so plans must not cache the reference.
  [[nodiscard]] virtual std::vector<ScenarioRun> plan(
      const FatTreeFabric& fabric, bool quick) const = 0;

  /// Contracts over the finished arms (same order plan() returned them).
  [[nodiscard]] virtual std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const = 0;
};

/// String-keyed scenario registry (open registration, case-insensitive
/// lookup -- the SchemeRegistry pattern without seed keys: scenario streams
/// derive from the scenario *name*, which is stable by construction).
class ScenarioRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Scenario>()>;

  /// The process-wide registry.  Built-ins (incast, multi-tenant,
  /// mice-elephants, churn) are registered on first use.
  static ScenarioRegistry& instance();

  /// Registers a factory under a unique name (lookups case-insensitive).
  void add(std::string name, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] std::unique_ptr<Scenario> make(std::string_view name) const;
  /// Canonical spellings, in registration order (for --help and errors).
  [[nodiscard]] std::vector<std::string> names() const;
  /// The names joined with ", " -- the listing CLI diagnostics print.
  [[nodiscard]] std::string listing() const;

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;

  std::vector<Entry> entries_;
};

/// Convenience wrappers over ScenarioRegistry::instance().
[[nodiscard]] std::unique_ptr<Scenario> make_scenario(std::string_view name);
[[nodiscard]] std::string scenario_listing();
[[nodiscard]] std::vector<std::string> scenario_names();

}  // namespace mlid

// The built-in production scenarios: incast (N-to-1 hot spot, CC litmus),
// multi-tenant (partitioned tenants on dedicated VLs), mice-elephants
// (skewed flow-size mix on the closed-loop path) and churn (long-running
// fail/recover process against the live SM).
//
// Contract bounds here are deliberately loose versions of the effects
// EXPERIMENTS.md records -- they gate CI against regressions (a scheme or
// engine change that destroys CC victim relief, tenant fairness, or SM
// recovery), not against run-to-run noise.  Every arm of one scenario runs
// under identical sim/traffic seeds (the orchestrator enforces this), so
// the ratios compare configuration deltas and nothing else.
#include "scenario/scenario.hpp"

#include <algorithm>

#include "common/expect.hpp"

namespace mlid {
namespace {

// Shared quick-mode window shrink (the --quick contract every bench
// honours).  Scenarios whose contracts need slow control loops to engage
// (CC convergence, SM sweeps) pass a larger quick measure window: the run
// still shrinks several-fold, but not below the loop's time constant.
void shrink_windows(SimConfig& sim, bool quick, SimTime measure_ns = 20'000) {
  if (quick) {
    sim.warmup_ns = 5'000;
    sim.measure_ns = measure_ns;
  }
}

// Ratio helper guarding the zero-denominator corner: a baseline of 0 means
// the arm produced nothing to compare against, which must read as a
// violation (HUGE ratio), never as a vacuous pass.
double ratio(double value, double baseline) {
  return baseline > 0.0 ? value / baseline : 1e9;
}

ContractCheck bounded(std::string name, double measured, double bound,
                      std::string detail) {
  ContractCheck c;
  c.name = std::move(name);
  c.measured = measured;
  c.bound = bound;
  c.passed = measured <= bound;
  c.detail = std::move(detail);
  return c;
}

ContractCheck at_least(std::string name, double measured, double bound,
                       std::string detail) {
  ContractCheck c;
  c.name = std::move(name);
  c.measured = measured;
  c.bound = bound;
  c.passed = measured >= bound;
  c.detail = std::move(detail);
  return c;
}

// --- incast ------------------------------------------------------------------
//
// Every node directs most of its traffic at one storage/parameter-server
// node -- the classic datacenter incast.  Two arms, CC off and CC on, facing
// the bit-identical traffic stream; the contract is the paper-adjacent CC
// claim that victim flows (sharing switches with the congestion tree without
// feeding it) recover most of their TAIL latency when the CCT throttles the
// tree.  The victim mean is only held to a no-harm ceiling: throttling
// shifts some mid-distribution packets later even as it collapses the tail.
class IncastScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "incast";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "N-to-1 hot spot; CC off vs on must relieve victim-flow latency";
  }

  [[nodiscard]] std::vector<ScenarioRun> plan(const FatTreeFabric& fabric,
                                              bool quick) const override {
    (void)fabric;
    ScenarioRun base;
    base.scheme = "MLID";
    base.sim.num_vls = 2;
    // The CC litmus needs the CCT loop to engage and drain: below ~60 us
    // measured the tail relief has not materialized yet, and a shortened
    // warmup leaks the throttle-engagement transient into the victim mean.
    shrink_windows(base.sim, quick, /*measure_ns=*/60'000);
    if (quick) base.sim.warmup_ns = 20'000;
    base.traffic.kind = TrafficKind::kCentric;
    base.traffic.hot_fraction = 0.6;
    base.traffic.hot_node = 0;
    base.offered_load = 0.8;

    ScenarioRun cc_off = base;
    cc_off.arm = "cc-off";
    ScenarioRun cc_on = base;
    cc_on.arm = "cc-on";
    cc_on.sim.cc.enabled = true;
    return {cc_off, cc_on};
  }

  [[nodiscard]] std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const override {
    MLID_EXPECT(outcomes.size() == 2, "incast runs exactly two arms");
    const SimResult& off = outcomes[0].sim;
    const SimResult& on = outcomes[1].sim;
    std::vector<ContractCheck> checks;
    checks.push_back(at_least(
        "victim-flows-observed",
        static_cast<double>(std::min(off.victim_packets, on.victim_packets)),
        1.0, "both arms must deliver victim (non-hot) packets in-window"));
    checks.push_back(bounded(
        "victim-p99-cc-ratio",
        ratio(on.victim_p99_latency_ns, off.victim_p99_latency_ns), 0.90,
        "victim p99 latency with CC on <= 0.90x CC off"));
    // Loose ceiling on purpose: CC roughly doubles the victims DELIVERED
    // in-window, so the CC-on mean includes slow packets the CC-off arm
    // never completes at all (survivorship skew), not added queueing.
    checks.push_back(bounded(
        "victim-avg-cc-ratio",
        ratio(on.victim_avg_latency_ns, off.victim_avg_latency_ns), 1.50,
        "CC must not inflate victim mean latency > 1.50x CC off"));
    checks.push_back(at_least(
        "cc-loop-engaged", static_cast<double>(on.cc.becn_sent), 1.0,
        "the CC arm must actually exercise the FECN/BECN loop"));
    return checks;
  }
};

// --- multi-tenant ------------------------------------------------------------
//
// Four tenants on contiguous node blocks, traffic confined to each tenant's
// own block (TrafficConfig::tenants), compared with and without pinning each
// tenant to its own virtual lane.  The contract is isolation: every tenant
// is served, and the per-tenant Jain index over accepted byte rates stays
// near 1 -- symmetric tenants must get symmetric service.
class MultiTenantScenario final : public Scenario {
 public:
  static constexpr int kTenants = 4;

  [[nodiscard]] std::string_view name() const noexcept override {
    return "multi-tenant";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "4 partitioned tenants, shared vs per-tenant VLs; Jain >= 0.85";
  }

  [[nodiscard]] std::vector<ScenarioRun> plan(const FatTreeFabric& fabric,
                                              bool quick) const override {
    MLID_EXPECT(fabric.params().num_nodes() >= 2 * kTenants,
                "multi-tenant needs at least two nodes per tenant");
    ScenarioRun base;
    base.scheme = "MLID";
    base.sim.num_vls = kTenants;
    base.sim.tenants.count = kTenants;
    shrink_windows(base.sim, quick);
    base.traffic.kind = TrafficKind::kUniform;
    base.traffic.tenants = kTenants;
    base.offered_load = 0.6;

    ScenarioRun shared = base;
    shared.arm = "shared-vl";
    ScenarioRun isolated = base;
    isolated.arm = "isolated-vl";
    isolated.sim.tenants.bind_vls = true;
    return {shared, isolated};
  }

  [[nodiscard]] std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const override {
    MLID_EXPECT(outcomes.size() == 2, "multi-tenant runs exactly two arms");
    std::vector<ContractCheck> checks;
    for (const ScenarioOutcome& o : outcomes) {
      std::uint64_t min_delivered =
          o.sim.tenants.empty() ? 0 : o.sim.tenants.front().delivered_pkts;
      for (const TenantStats& t : o.sim.tenants) {
        min_delivered = std::min(min_delivered, t.delivered_pkts);
      }
      checks.push_back(at_least(
          o.arm + "/tenant-count", static_cast<double>(o.sim.tenants.size()),
          kTenants, "per-tenant accounting must cover every tenant"));
      checks.push_back(at_least(o.arm + "/all-tenants-served",
                                static_cast<double>(min_delivered), 1.0,
                                "every tenant block must receive traffic"));
      checks.push_back(at_least(o.arm + "/tenant-jain",
                                o.sim.tenant_jain_fairness_index, 0.85,
                                "Jain index over per-tenant accepted byte "
                                "rates >= 0.85"));
    }
    return checks;
  }
};

// --- mice-elephants ----------------------------------------------------------
//
// The datacenter flow-size mix on the closed-loop path: many short messages,
// a few huge ones carrying most of the bytes, drained to completion under
// SLID and MLID.  The contract is the paper's headline on this workload
// shape: multipath spreading must not lose to single-path routing on
// makespan, and every message must complete under both schemes.
class MiceElephantsScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "mice-elephants";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "skewed flow-size burst, SLID vs MLID; MLID makespan not worse";
  }

  [[nodiscard]] std::vector<ScenarioRun> plan(const FatTreeFabric& fabric,
                                              bool quick) const override {
    MiceElephantsConfig mix;
    if (quick) {
      mix.flows_per_node = 4;
      mix.elephant_bytes = 16'384;
    }
    // Fixed workload seed: both arms must face the bit-identical message
    // list, and the contract bounds are calibrated against this instance.
    const auto workload = mice_elephants(fabric.params().num_nodes(), mix,
                                         /*seed=*/0x00D15C0DE5ull);
    ScenarioRun base;
    base.closed_loop = true;
    base.workload = workload;
    base.sim.num_vls = 2;

    ScenarioRun slid = base;
    slid.arm = "SLID";
    slid.scheme = "SLID";
    ScenarioRun mlid = base;
    mlid.arm = "MLID";
    mlid.scheme = "MLID";
    return {slid, mlid};
  }

  [[nodiscard]] std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const override {
    MLID_EXPECT(outcomes.size() == 2, "mice-elephants runs exactly two arms");
    const BurstResult& slid = outcomes[0].burst;
    const BurstResult& mlid = outcomes[1].burst;
    std::vector<ContractCheck> checks;
    checks.push_back(at_least(
        "messages-complete",
        static_cast<double>(std::min(slid.messages, mlid.messages)), 1.0,
        "both arms must drain the workload (burst mode asserts completion)"));
    checks.push_back(bounded("mlid-makespan-ratio",
                             ratio(static_cast<double>(mlid.makespan_ns),
                                   static_cast<double>(slid.makespan_ns)),
                             1.05,
                             "MLID makespan <= 1.05x SLID on the skewed mix"));
    // Mean message latency is a no-harm ceiling, not an improvement claim:
    // spreading elephants across paths reorders completion of the mice
    // behind them, which moves the mean a little even when makespan wins.
    checks.push_back(bounded(
        "mlid-avg-message-ratio",
        ratio(mlid.avg_message_latency_ns, slid.avg_message_latency_ns), 1.25,
        "MLID mean message latency <= 1.25x SLID"));
    return checks;
  }
};

// --- churn -------------------------------------------------------------------
//
// A long-running fail/recover process (two uplinks flapping on a staggered
// cadence) against the live Subnet Manager.  The contract is operational
// health: the SM must see the traps and re-sweep, convergence must be
// observed, and the delivery rate over the whole run must stay >= 90% --
// i.e. the convergence windows stay short relative to the flap cadence.
class ChurnScenario final : public Scenario {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "churn";
  }
  [[nodiscard]] std::string_view description() const noexcept override {
    return "periodic uplink flaps vs the live SM; delivery >= 90% end to end";
  }

  [[nodiscard]] std::vector<ScenarioRun> plan(const FatTreeFabric& fabric,
                                              bool quick) const override {
    ScenarioRun run;
    run.arm = "flapping-uplinks";
    run.scheme = "MLID";
    run.sim.num_vls = 2;
    // A modeled SM sweep on FT(4,3) costs ~20 us (SMP probes + table
    // programming); the quick window must hold the first flap plus a full
    // sweep or the reconvergence contracts cannot be observed at all.
    shrink_windows(run.sim, quick, /*measure_ns=*/60'000);
    run.traffic.kind = TrafficKind::kUniform;
    run.offered_load = 0.4;
    // Flap parameters scale with the run length so quick mode still fits
    // multiple full fail/recover cycles before the end of the run.
    const SimTime end = run.sim.end_time();
    const SimTime start = quick ? 10'000 : 30'000;
    const SimTime period = quick ? 20'000 : 25'000;
    const SimTime downtime = quick ? 6'000 : 8'000;
    run.faults = FaultSchedule::periodic_uplink_churn(
        fabric, /*links=*/2, start, period, downtime, /*until=*/end,
        /*seed=*/0xC0FFEEull);
    return {run};
  }

  [[nodiscard]] std::vector<ContractCheck> evaluate(
      const std::vector<ScenarioOutcome>& outcomes) const override {
    MLID_EXPECT(outcomes.size() == 1, "churn runs exactly one arm");
    const SimResult& r = outcomes[0].sim;
    std::vector<ContractCheck> checks;
    const double delivery_rate =
        r.packets_generated > 0
            ? static_cast<double>(r.packets_delivered) /
                  static_cast<double>(r.packets_generated)
            : 0.0;
    checks.push_back(at_least("delivery-rate", delivery_rate, 0.90,
                              "delivered / generated >= 90% despite flaps"));
    checks.push_back(at_least("sm-traps", static_cast<double>(r.sm_traps),
                              1.0, "the SM must receive fault traps"));
    checks.push_back(at_least("sm-sweeps", static_cast<double>(r.sm_sweeps),
                              1.0, "traps must trigger re-sweeps"));
    checks.push_back(at_least(
        "reconvergence-observed",
        r.first_fault_ns >= 0 && r.sm_converged_ns > r.first_fault_ns ? 1.0
                                                                      : 0.0,
        1.0, "the SM must reach quiescence after the first fault"));
    return checks;
  }
};

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& registry) {
  registry.add("incast", [] {
    return std::unique_ptr<Scenario>(std::make_unique<IncastScenario>());
  });
  registry.add("multi-tenant", [] {
    return std::unique_ptr<Scenario>(std::make_unique<MultiTenantScenario>());
  });
  registry.add("mice-elephants", [] {
    return std::unique_ptr<Scenario>(
        std::make_unique<MiceElephantsScenario>());
  });
  registry.add("churn", [] {
    return std::unique_ptr<Scenario>(std::make_unique<ChurnScenario>());
  });
}

}  // namespace mlid

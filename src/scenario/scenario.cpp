#include "scenario/scenario.hpp"

#include <cctype>

#include "common/expect.hpp"

namespace mlid {
namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

// Defined in scenario/builtin.cpp; called exactly once from instance().
void register_builtin_scenarios(ScenarioRegistry& registry);

ScenarioRegistry& ScenarioRegistry::instance() {
  static ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    register_builtin_scenarios(r);
    return r;
  }();
  return reg;
}

const ScenarioRegistry::Entry* ScenarioRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

void ScenarioRegistry::add(std::string name, Factory factory) {
  MLID_EXPECT(!name.empty(), "scenario name must be non-empty");
  MLID_EXPECT(factory != nullptr, "scenario factory must be callable");
  if (find(name) != nullptr) {
    const std::string msg = "scenario '" + name + "' is already registered";
    MLID_EXPECT(false, msg.c_str());
  }
  entries_.push_back(Entry{std::move(name), std::move(factory)});
}

bool ScenarioRegistry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::unique_ptr<Scenario> ScenarioRegistry::make(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    const std::string msg = "unknown scenario '" + std::string(name) +
                            "' (registered: " + listing() + ")";
    MLID_EXPECT(false, msg.c_str());
  }
  std::unique_ptr<Scenario> scenario = e->factory();
  MLID_EXPECT(scenario != nullptr, "scenario factory returned nullptr");
  return scenario;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string ScenarioRegistry::listing() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

std::unique_ptr<Scenario> make_scenario(std::string_view name) {
  return ScenarioRegistry::instance().make(name);
}

std::string scenario_listing() {
  return ScenarioRegistry::instance().listing();
}

std::vector<std::string> scenario_names() {
  return ScenarioRegistry::instance().names();
}

}  // namespace mlid

// Streaming run metrics: a periodic JSONL export so multi-minute sweeps
// emit a live series instead of a single end-of-run BENCH blob.
//
// One MetricsStreamer owns one output file (--metrics-out=FILE) and writes
// one self-contained JSON object per line, flushed per line so `tail -f`
// and dashboards see data while the run is still going.  Three line kinds:
//
//   {"kind":"window", ...}   fixed simulated-time cadence (the flush
//                            cadence flag, --metrics-interval-ns) with
//                            counter deltas + gauges for that window; the
//                            final short window is flagged "partial":true.
//   {"kind":"summary", ...}  once per engine run: totals plus the phase
//                            profile when profiling was on.
//   {"kind":"point", ...}    once per completed sweep/scenario point from
//                            the harness worker pool (thread-safe).
//
// Every line carries "wall_ns": host nanoseconds since the streamer was
// created, stamped by the streamer itself so engines never touch clocks on
// its behalf.  Like all observability here the stream is passive: pacing a
// window line never schedules events or perturbs conservative-sync results
// (a stream boundary only *splits* a parallel window, and any window
// partition is a valid schedule -- see parallel/sharded.hpp).
#pragma once

#include <chrono>
#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <string_view>

#include "common/types.hpp"
#include "obs/profile.hpp"

namespace mlid {

/// Counter deltas + gauges for one metrics window [t_ns - window_ns, t_ns).
struct MetricsWindow {
  SimTime t_ns = 0;        ///< window end (simulated ns)
  SimTime window_ns = 0;   ///< window width (short for the final partial one)
  bool partial = false;    ///< true for the final sub-interval window
  std::uint32_t shards = 1;
  std::uint64_t generated = 0;  ///< packets injected this window
  std::uint64_t delivered = 0;  ///< packets delivered this window
  std::uint64_t dropped = 0;    ///< packets dropped this window
  std::uint64_t becn = 0;       ///< BECN notifications this window
  std::uint64_t in_flight = 0;  ///< gauge at the window boundary
  std::uint64_t events_processed = 0;  ///< cumulative fleet dispatches
};

/// End-of-run totals for the "summary" line.
struct MetricsRunSummary {
  SimTime end_ns = 0;
  std::uint32_t shards = 1;
  std::uint32_t threads = 1;
  std::uint64_t generated = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t events_processed = 0;
  /// Phase profile to inline into the summary line; skipped when null or
  /// not enabled.
  const ProfileSummary* profile = nullptr;
};

/// One completed harness point for the "point" line.
struct MetricsPoint {
  std::string_view series;  ///< sweep series / scenario arm label
  double load = 0.0;
  double wall_seconds = 0.0;
  std::uint64_t events_processed = 0;
  double events_per_sec = 0.0;
  std::uint64_t completed = 0;  ///< points finished so far (this sweep)
  std::uint64_t total = 0;      ///< points in the sweep
};

/// Thread-safe JSONL writer for the above records.  Opening the file eagerly
/// in the constructor surfaces bad paths before any simulation work; the
/// constructor throws std::runtime_error on failure (the CLI maps that to a
/// usage error, exit 2).
class MetricsStreamer {
 public:
  MetricsStreamer(const std::string& path, SimTime interval_ns);

  /// Simulated-time flush cadence the engines pace window lines at.
  [[nodiscard]] SimTime interval_ns() const noexcept { return interval_ns_; }

  void window(const MetricsWindow& w);
  void run_summary(const MetricsRunSummary& s);
  void point(const MetricsPoint& p);

 private:
  /// Appends the shared tail ("wall_ns" stamp + closing brace), writes and
  /// flushes the line under the lock.
  void finish_line(std::string& line);

  std::ofstream out_;
  SimTime interval_ns_;
  std::chrono::steady_clock::time_point start_;
  std::mutex mu_;
};

}  // namespace mlid

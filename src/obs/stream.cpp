#include "obs/stream.hpp"

#include <cstdio>
#include <stdexcept>

namespace mlid {
namespace {

// The stream is line-oriented and flat, so a few append helpers beat pulling
// a JSON writer dependency into obs/ (harness/report.hpp sits above sim,
// which sits above this library).

void append_key(std::string& s, std::string_view key) {
  s += ",\"";
  s += key;
  s += "\":";
}

void append_u64(std::string& s, std::string_view key, std::uint64_t v) {
  append_key(s, key);
  s += std::to_string(v);
}

void append_i64(std::string& s, std::string_view key, std::int64_t v) {
  append_key(s, key);
  s += std::to_string(v);
}

void append_double(std::string& s, std::string_view key, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  append_key(s, key);
  s += buf;
}

void append_bool(std::string& s, std::string_view key, bool v) {
  append_key(s, key);
  s += v ? "true" : "false";
}

void append_string(std::string& s, std::string_view key, std::string_view v) {
  append_key(s, key);
  s += '"';
  for (const char c : v) {
    switch (c) {
      case '"': s += "\\\""; break;
      case '\\': s += "\\\\"; break;
      case '\n': s += "\\n"; break;
      default: s += c; break;
    }
  }
  s += '"';
}

void append_profile(std::string& s, const ProfileSummary& p) {
  append_key(s, "profile");
  s += "{\"shards\":" + std::to_string(p.shards);
  append_u64(s, "threads", p.threads);
  append_u64(s, "windows", p.windows);
  append_u64(s, "control_steps", p.control_steps);
  append_u64(s, "handoff_messages", p.handoff_messages);
  append_u64(s, "total_wall_ns", p.total_wall_ns);
  append_u64(s, "processing_ns", p.processing_ns);
  append_u64(s, "barrier_wait_ns", p.barrier_wait_ns);
  append_u64(s, "mailbox_ns", p.mailbox_ns);
  append_u64(s, "control_ns", p.control_ns);
  append_double(s, "barrier_wait_fraction", p.barrier_wait_fraction());
  append_double(s, "max_imbalance", p.max_imbalance);
  append_double(s, "mean_imbalance", p.mean_imbalance);
  s += '}';
}

}  // namespace

MetricsStreamer::MetricsStreamer(const std::string& path, SimTime interval_ns)
    : out_(path, std::ios::out | std::ios::trunc),
      interval_ns_(interval_ns),
      start_(std::chrono::steady_clock::now()) {
  if (!out_) {
    throw std::runtime_error("cannot open metrics stream file: " + path);
  }
  if (interval_ns_ <= 0) {
    throw std::runtime_error("metrics stream interval must be positive");
  }
}

void MetricsStreamer::finish_line(std::string& line) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
  append_i64(line, "wall_ns", wall);
  line += "}\n";
  out_ << line;
  out_.flush();
}

void MetricsStreamer::window(const MetricsWindow& w) {
  std::string line = "{\"kind\":\"window\"";
  append_i64(line, "t_ns", w.t_ns);
  append_i64(line, "window_ns", w.window_ns);
  append_bool(line, "partial", w.partial);
  append_u64(line, "shards", w.shards);
  append_u64(line, "generated", w.generated);
  append_u64(line, "delivered", w.delivered);
  append_u64(line, "dropped", w.dropped);
  append_u64(line, "becn", w.becn);
  append_u64(line, "in_flight", w.in_flight);
  append_u64(line, "events_processed", w.events_processed);
  finish_line(line);
}

void MetricsStreamer::run_summary(const MetricsRunSummary& s) {
  std::string line = "{\"kind\":\"summary\"";
  append_i64(line, "end_ns", s.end_ns);
  append_u64(line, "shards", s.shards);
  append_u64(line, "threads", s.threads);
  append_u64(line, "generated", s.generated);
  append_u64(line, "delivered", s.delivered);
  append_u64(line, "dropped", s.dropped);
  append_u64(line, "events_processed", s.events_processed);
  if (s.profile != nullptr && s.profile->enabled) {
    append_profile(line, *s.profile);
  }
  finish_line(line);
}

void MetricsStreamer::point(const MetricsPoint& p) {
  std::string line = "{\"kind\":\"point\"";
  append_string(line, "series", p.series);
  append_double(line, "load", p.load);
  append_double(line, "wall_seconds", p.wall_seconds);
  append_u64(line, "events_processed", p.events_processed);
  append_double(line, "events_per_sec", p.events_per_sec);
  append_u64(line, "completed", p.completed);
  append_u64(line, "total", p.total);
  finish_line(line);
}

}  // namespace mlid

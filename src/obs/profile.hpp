// Engine self-profiling: counters-only wall-time breakdown of *the
// simulator itself* (not the simulated fabric).
//
// Every other observability surface in this repo -- histograms, timelines,
// packet traces, the flight recorder -- watches the modeled InfiniBand
// fabric.  The phase profiler instead answers "where does the run's wall
// time go": event processing vs conservative-sync barrier wait vs mailbox
// drain vs sequential control-plane steps, per shard, plus window/lookahead
// statistics, cross-shard handoff volume, event-queue op counters and shard
// load-imbalance factors.  Sequential runs carry the same taxonomy with
// degenerate barrier/mailbox/control terms, so downstream consumers (BENCH
// manifests, the JSONL metrics stream, the Chrome-trace profiler track)
// read one shape regardless of engine.
//
// Determinism contract (same as Timeline/flight recorder, sim/timeline.hpp):
// the profiler reads host clocks and existing counters only.  It never
// schedules events, draws random numbers, or changes window boundaries, so
// simulation results are byte-identical with profiling on or off for any
// shard/thread count (tests/obs/profile_parity_test.cpp).  The wall-time
// fields themselves are host-dependent; anything that byte-compares results
// across runs must scrub the profile block first (SimResult keeps it in a
// dedicated field for exactly that reason).
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace mlid {

/// Wall-time phase breakdown for one shard of the fleet (or the single
/// "shard" of a sequential run).  All durations are host nanoseconds.
struct ShardPhaseProfile {
  /// Wall time spent draining this shard's event queue (dispatching model
  /// events).  For sequential runs this is the whole run loop.
  std::uint64_t processing_ns = 0;
  /// Wall time this shard sat idle inside parallel windows while other
  /// shards were still draining: window wall time minus own processing,
  /// summed over windows.  Zero for sequential runs.
  std::uint64_t barrier_wait_ns = 0;
  /// Events this shard's queue dispatched over the whole run.
  std::uint64_t events_processed = 0;
  /// Cross-shard messages this shard emitted into its outbox (mailbox
  /// handoffs).  Zero for sequential runs.
  std::uint64_t handoffs_out = 0;

  friend bool operator==(const ShardPhaseProfile&,
                         const ShardPhaseProfile&) = default;
};

/// Whole-run self-profile, attached to SimResult (and from there to
/// PointManifest / BENCH json, schema mlid-bench-v8) when
/// SimConfig::profile is set.  Default-constructed (enabled == false, all
/// zeros) otherwise, so byte-comparing scrubbed results stays trivial:
/// assign ProfileSummary{} and the JSON matches an unprofiled run.
struct ProfileSummary {
  bool enabled = false;

  std::uint32_t shards = 0;   ///< fleet size (1 for the sequential engine)
  std::uint32_t threads = 0;  ///< worker threads that drove the fleet

  // --- conservative-sync window statistics (zero when sequential) ---------
  std::uint64_t windows = 0;        ///< parallel windows executed
  std::uint64_t control_steps = 0;  ///< zero-lookahead sequential steps
  std::uint64_t handoff_messages = 0;  ///< cross-shard mailbox messages
  SimTime window_ns_min = 0;           ///< narrowest window (simulated ns)
  SimTime window_ns_max = 0;           ///< widest window (simulated ns)
  double window_ns_mean = 0.0;         ///< mean window width (simulated ns)

  // --- wall-time phase totals (host ns, summed over shards) ---------------
  std::uint64_t total_wall_ns = 0;   ///< whole run loop, driver wall time
  std::uint64_t processing_ns = 0;   ///< sum of per-shard event processing
  std::uint64_t barrier_wait_ns = 0; ///< sum of per-shard barrier idle
  std::uint64_t mailbox_ns = 0;      ///< driver-side mailbox drains
  std::uint64_t control_ns = 0;      ///< driver-side control-plane steps

  // --- shard load imbalance over windows ----------------------------------
  // Per window, the imbalance factor is (busiest shard's events) / (mean
  // events per shard); 1.0 is a perfectly balanced window.  Windows where
  // no shard processed anything are skipped.
  double max_imbalance = 0.0;
  double mean_imbalance = 0.0;

  // --- event-queue op counters (summed over shard + control queues) -------
  std::uint64_t queue_pushes = 0;          ///< lifetime schedules
  std::uint64_t queue_pops = 0;            ///< lifetime dispatches
  std::uint64_t queue_overflow_pushes = 0; ///< ladder respills past horizon
  std::uint64_t queue_resizes = 0;         ///< ladder ring doublings

  /// One entry per shard, indexed by shard id.  Sequential runs carry a
  /// single entry.
  std::vector<ShardPhaseProfile> shard_phases;

  /// Fraction of the fleet's in-window wall time spent waiting at barriers:
  /// barrier / (processing + barrier).  The headline "where does the shard
  /// speedup go" number; 0 when nothing was measured.
  [[nodiscard]] double barrier_wait_fraction() const noexcept {
    const double busy = static_cast<double>(processing_ns) +
                        static_cast<double>(barrier_wait_ns);
    return busy > 0.0 ? static_cast<double>(barrier_wait_ns) / busy : 0.0;
  }

  friend bool operator==(const ProfileSummary&,
                         const ProfileSummary&) = default;
};

}  // namespace mlid

// Live Subnet Manager: the entity that keeps a running subnet routed.
//
// The offline Subnet object models the *initial* bring-up (discovery, LID
// assignment, LFT programming) as an instantaneous step before t = 0.
// SubnetManager models what happens afterwards, while traffic flows:
//
//   link fails --> both switch ports detect it after detection_delay_ns and
//   send a trap (trap_travel_ns in flight) --> the SM starts a re-sweep,
//   reusing discover_subnet and paying smp_probe_ns per probe --> at sweep
//   completion it recomputes routes (generic UPDN at the subnet scheme's
//   LMC) and derives a programming plan: the full table per switch, or — in
//   incremental mode — only the entries that changed (routing/repair.hpp)
//   --> switches are reprogrammed one SMP session at a time, each write
//   costing lft_entry_program_ns --> when the last program lands and no
//   newer fabric change is outstanding, the SM is converged.
//
// The class owns the *live* per-switch LFTs the simulator forwards with;
// between a failure and the matching reprogramming the tables are stale,
// which is exactly the convergence window the live-recovery bench measures.
//
// All methods are plain state transitions taking `now` and returning what
// should be scheduled — the simulation engine turns the return values into
// events, and unit tests drive the state machine directly.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "routing/repair.hpp"
#include "subnet/subnet.hpp"

namespace mlid {

struct SmConfig {
  SimTime detection_delay_ns = 2'000;  ///< port down/up -> trap sent
  SimTime trap_travel_ns = 500;        ///< trap SMP flight to the SM
  SimTime smp_probe_ns = 200;          ///< per discovery probe (SMP RTT)
  SimTime lft_entry_program_ns = 50;   ///< per LFT entry written
  SimTime switch_program_overhead_ns = 500;  ///< per-switch SMP session
  /// true: push only changed entries (routing/repair.hpp); false: rewrite
  /// every switch's whole linear table, like a from-scratch bring-up.
  bool incremental = true;
  /// false: the SM counts traps but never re-sweeps — models a dead or
  /// misconfigured SM, the "stale tables forever" baseline.
  bool react = true;

  void validate() const {
    MLID_EXPECT(detection_delay_ns >= 0 && trap_travel_ns >= 0 &&
                    smp_probe_ns >= 0 && lft_entry_program_ns >= 0 &&
                    switch_program_overhead_ns >= 0,
                "SM cost constants must be non-negative");
  }
};

/// Counters and timeline marks for one SM lifetime.
struct SmStats {
  std::uint64_t traps_received = 0;
  std::uint64_t traps_coalesced = 0;  ///< arrived during a sweep / stale
  std::uint64_t sweeps_started = 0;
  std::uint64_t sweeps_completed = 0;
  std::uint64_t probes_sent = 0;
  std::uint64_t entries_programmed = 0;  ///< modeled SMP table writes
  std::uint64_t switches_programmed = 0;
  SimTime first_trap_ns = -1;
  SimTime last_sweep_started_ns = -1;
  SimTime last_sweep_done_ns = -1;
  SimTime last_sweep_cost_ns = 0;    ///< modeled duration of the last sweep
  SimTime last_program_cost_ns = 0;  ///< modeled span of the last plan
  SimTime converged_at = -1;  ///< last time the SM reached quiescence
};

class SubnetManager {
 public:
  /// `fabric` is the live fabric the engine mutates through this SM;
  /// `subnet` supplies the initial tables and the addressing (the SM can
  /// reroute, but endnodes keep their assigned LIDs and path selection).
  SubnetManager(FatTreeFabric& fabric, const Subnet& subnet,
                SmConfig config = {});

  /// Live forwarding table of one switch (what the simulator routes with).
  /// Repairs materialize as overlay entries on the compact tables, so only
  /// switches the SM actually touched cost memory beyond the formula.
  [[nodiscard]] const CompactLft& lft(SwitchId sw) const {
    MLID_EXPECT(sw < lfts_.size(), "switch id out of range");
    return lfts_[sw];
  }

  // --- engine callbacks, in event order ------------------------------------

  /// A trap to be delivered to the SM at `at`.
  struct TrapSchedule {
    SimTime at = 0;
    DeviceId reporter = kInvalidDevice;
    PortId port = 0;
  };

  /// The link leaving (dev, port) just died: disconnect the fabric and
  /// return the traps its switch endpoints will raise.
  std::vector<TrapSchedule> on_link_fail(DeviceId dev, PortId port,
                                         SimTime now);

  /// A previously failed link comes back (IBA IN_SERVICE trap).
  std::vector<TrapSchedule> on_link_recover(DeviceId dev_a, PortId port_a,
                                            DeviceId dev_b, PortId port_b,
                                            SimTime now);

  /// A trap reached the SM.  Returns the sweep-completion time when this
  /// trap starts a re-sweep; nullopt when it is coalesced into a sweep
  /// already in progress, describes a change already routed, or the SM is
  /// configured not to react.
  std::optional<SimTime> on_trap(DeviceId reporter, PortId port, SimTime now);

  /// One pending switch reprogramming.
  struct ProgramOp {
    SimTime at = 0;
    std::uint32_t plan_index = 0;
    std::uint32_t epoch = 0;
    SwitchId sw = kInvalidSwitch;
  };

  /// The re-sweep finished: recompute routes from the fabric's *current*
  /// state (a sweep observes every change up to its completion, including
  /// failures whose traps are still in flight) and return the programming
  /// schedule.  An empty schedule means the tables were already correct.
  std::vector<ProgramOp> on_sweep_done(SimTime now);

  /// Apply one scheduled program.  Returns false (a no-op) when a newer
  /// sweep has superseded the plan the op belongs to.
  bool apply_program(std::uint32_t plan_index, std::uint32_t epoch,
                     SimTime now);

  // --- inspection -----------------------------------------------------------

  /// No sweep running, no programs pending, routes match the fabric.
  [[nodiscard]] bool converged() const noexcept {
    return !sweep_in_progress_ && pending_programs_ == 0 &&
           routed_version_ == fabric_version_;
  }

  [[nodiscard]] const SmStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const SmConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const Subnet& subnet() const noexcept { return *subnet_; }

 private:
  std::vector<TrapSchedule> traps_from_endpoints(DeviceId dev_a, PortId port_a,
                                                 DeviceId dev_b, PortId port_b,
                                                 SimTime now) const;
  void maybe_converge(SimTime now);

  FatTreeFabric* fabric_;
  const Subnet* subnet_;
  SmConfig cfg_;
  std::vector<CompactLft> lfts_;  ///< live tables, mutated by apply_program

  std::uint64_t fabric_version_ = 0;  ///< bumped per fail / recover
  std::uint64_t routed_version_ = 0;  ///< fabric version the tables reflect
  bool sweep_in_progress_ = false;
  std::uint32_t epoch_ = 0;  ///< plan generation; stale ops are ignored
  std::size_t pending_programs_ = 0;
  std::vector<SwitchRepair> plan_;

  SmStats stats_;
};

}  // namespace mlid

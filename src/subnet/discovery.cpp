#include "subnet/discovery.hpp"

#include <deque>

#include "common/expect.hpp"

namespace mlid {

const DiscoveredDevice* DiscoveredTopology::find(DeviceId id) const {
  for (const auto& d : devices) {
    if (d.id == id) return &d;
  }
  return nullptr;
}

DiscoveredTopology discover_subnet(const Fabric& fabric, DeviceId sm_device) {
  MLID_EXPECT(sm_device < fabric.num_devices(), "SM device out of range");
  DiscoveredTopology topo;
  std::vector<char> seen(fabric.num_devices(), 0);
  std::deque<std::pair<DeviceId, int>> frontier;  // (device, hops)
  frontier.emplace_back(sm_device, 0);
  seen[sm_device] = 1;

  while (!frontier.empty()) {
    const auto [id, hops] = frontier.front();
    frontier.pop_front();
    const Device& dev = fabric.device(id);

    DiscoveredDevice record;
    record.id = id;
    record.kind = dev.kind();
    record.num_ports = dev.num_ports();
    record.hops_from_sm = hops;
    record.peers.resize(static_cast<std::size_t>(dev.num_ports()) + 1);
    for (PortId port = 1; port <= dev.num_ports(); ++port) {
      ++topo.probes_sent;  // one PortInfo/NodeInfo SMP per port examined
      if (!dev.port_connected(port)) continue;
      const PortRef peer = dev.peer(port);
      record.peers[port] = peer;
      if (peer.device > id || (peer.device == id && peer.port > port)) {
        ++topo.num_links;  // count each link from its lower endpoint probe
      }
      if (!seen[peer.device]) {
        seen[peer.device] = 1;
        frontier.emplace_back(peer.device, hops + 1);
      }
    }
    if (record.kind == DeviceKind::kEndnode) {
      ++topo.num_endnodes;
    } else {
      ++topo.num_switches;
    }
    topo.devices.push_back(std::move(record));
  }
  return topo;
}

}  // namespace mlid

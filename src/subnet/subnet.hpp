// The initialized subnet: everything the simulator needs after the SM's
// sweep — LID tables, per-switch LFTs, and the path-selection entry point.
#pragma once

#include <memory>
#include <string_view>

#include "routing/path.hpp"
#include "routing/registry.hpp"
#include "subnet/discovery.hpp"
#include "topology/builder.hpp"

namespace mlid {

/// Counters describing what subnet initialization did (exposed for tests
/// and for the quickstart example's narration).
struct SubnetInitStats {
  std::uint64_t discovery_probes = 0;
  std::uint32_t discovered_endnodes = 0;
  std::uint32_t discovered_switches = 0;
  std::uint32_t discovered_links = 0;
  std::uint32_t lids_assigned = 0;
  std::uint32_t lft_entries_programmed = 0;
};

/// A fully initialized subnet.  Owns the routing scheme and compiled LFTs;
/// references (does not own) the fabric.
class Subnet {
 public:
  /// Runs the full SM bring-up: discovery sweep from node 0's endport,
  /// LID assignment, and LFT programming.  `scheme` is any name in the
  /// SchemeRegistry ("SLID", "MLID", ...; case-insensitive); unknown names
  /// throw ContractViolation listing the registry.
  Subnet(const FatTreeFabric& fabric, std::string_view scheme);

  /// Same bring-up with a caller-supplied scheme (e.g. a PartialMlidRouting
  /// at a bespoke LMC, or an unregistered out-of-tree scheme).
  Subnet(const FatTreeFabric& fabric, std::unique_ptr<RoutingScheme> scheme);

  [[nodiscard]] const FatTreeFabric& fabric() const noexcept {
    return *fabric_;
  }
  [[nodiscard]] const RoutingScheme& scheme() const noexcept {
    return *scheme_;
  }
  [[nodiscard]] const CompiledRoutes& routes() const noexcept {
    return *routes_;
  }
  [[nodiscard]] const SubnetInitStats& init_stats() const noexcept {
    return stats_;
  }

  /// Path selection for a packet from src to dst.
  [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const {
    return scheme_->select_dlid(src, dst);
  }

  /// The node owning a LID.
  [[nodiscard]] NodeId node_of(Lid lid) const {
    return scheme_->node_of_lid(lid);
  }

  /// Source LID a node stamps into its packets (its base LID).
  [[nodiscard]] Lid slid_of(NodeId node) const {
    return scheme_->lids_of(node).base();
  }

 private:
  const FatTreeFabric* fabric_;
  std::unique_ptr<RoutingScheme> scheme_;
  std::unique_ptr<CompiledRoutes> routes_;
  SubnetInitStats stats_;
};

}  // namespace mlid

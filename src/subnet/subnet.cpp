#include "subnet/subnet.hpp"

namespace mlid {

Subnet::Subnet(const FatTreeFabric& fabric, std::string_view scheme)
    : Subnet(fabric, make_scheme(scheme, fabric)) {}

Subnet::Subnet(const FatTreeFabric& fabric,
               std::unique_ptr<RoutingScheme> scheme)
    : fabric_(&fabric) {
  MLID_EXPECT(scheme != nullptr, "subnet needs a routing scheme");
  // 1. Discovery sweep, as the SM would run it from its own endport.
  const DiscoveredTopology topo =
      discover_subnet(fabric.fabric(), fabric.node_device(0));
  MLID_EXPECT(topo.num_endnodes == fabric.params().num_nodes() &&
                  topo.num_switches == fabric.params().num_switches(),
              "discovery sweep did not reach the whole subnet");
  stats_.discovery_probes = topo.probes_sent;
  stats_.discovered_endnodes = topo.num_endnodes;
  stats_.discovered_switches = topo.num_switches;
  stats_.discovered_links = topo.num_links;

  // 2. Addressing: adopt the scheme and account the LID blocks it hands to
  //    each endport.
  scheme_ = std::move(scheme);
  for (NodeId node = 0; node < fabric.params().num_nodes(); ++node) {
    stats_.lids_assigned += scheme_->lids_of(node).count();
  }

  // 3. Forwarding table programming for every discovered switch.
  routes_ = std::make_unique<CompiledRoutes>(fabric, *scheme_);
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    stats_.lft_entries_programmed +=
        static_cast<std::uint32_t>(routes_->lft(sw).num_entries());
  }
}

}  // namespace mlid

// Subnet discovery: the Subnet Manager's topology sweep.
//
// Mirrors how an SM explores an unknown IBA subnet with direct-routed SMPs:
// starting from the SM's own port it BFS-expands through switches, learning
// each device's kind and port peers one probe at a time.  The sweep only
// uses the Fabric's port-walk primitives (never the builder's label
// mappings), so it genuinely re-derives the topology.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/fabric.hpp"

namespace mlid {

struct DiscoveredDevice {
  DeviceId id = kInvalidDevice;
  DeviceKind kind = DeviceKind::kEndnode;
  int num_ports = 0;
  int hops_from_sm = 0;          ///< BFS depth of the first probe that saw it
  std::vector<PortRef> peers;    ///< index = port; invalid PortRef = free
};

struct DiscoveredTopology {
  std::vector<DiscoveredDevice> devices;  ///< in discovery (BFS) order
  std::uint32_t num_endnodes = 0;
  std::uint32_t num_switches = 0;
  std::uint32_t num_links = 0;
  std::uint64_t probes_sent = 0;  ///< one per port examined (SMP traffic)

  [[nodiscard]] const DiscoveredDevice* find(DeviceId id) const;
};

/// Sweep the subnet starting from `sm_device` (typically an endnode's port).
DiscoveredTopology discover_subnet(const Fabric& fabric, DeviceId sm_device);

}  // namespace mlid

#include "subnet/sm.hpp"

namespace mlid {

SubnetManager::SubnetManager(FatTreeFabric& fabric, const Subnet& subnet,
                             SmConfig config)
    : fabric_(&fabric), subnet_(&subnet), cfg_(config) {
  cfg_.validate();
  MLID_EXPECT(&subnet.fabric() == &fabric,
              "the SM must manage the fabric its subnet was built on");
  // Adopt the bring-up's tables as the live forwarding state.
  lfts_.reserve(subnet.routes().num_switches());
  for (SwitchId sw = 0; sw < subnet.routes().num_switches(); ++sw) {
    lfts_.push_back(subnet.routes().lft(sw));
  }
}

std::vector<SubnetManager::TrapSchedule> SubnetManager::traps_from_endpoints(
    DeviceId dev_a, PortId port_a, DeviceId dev_b, PortId port_b,
    SimTime now) const {
  // Both switch endpoints notice the port state change after the detection
  // delay and report it; endnode ports have no trap path in this model.
  std::vector<TrapSchedule> traps;
  const SimTime at = now + cfg_.detection_delay_ns + cfg_.trap_travel_ns;
  const Fabric& g = fabric_->fabric();
  if (g.device(dev_a).kind() == DeviceKind::kSwitch) {
    traps.push_back(TrapSchedule{at, dev_a, port_a});
  }
  if (g.device(dev_b).kind() == DeviceKind::kSwitch) {
    traps.push_back(TrapSchedule{at, dev_b, port_b});
  }
  return traps;
}

std::vector<SubnetManager::TrapSchedule> SubnetManager::on_link_fail(
    DeviceId dev, PortId port, SimTime now) {
  const PortRef peer = fabric_->fabric().peer_of(dev, port);
  MLID_EXPECT(peer.valid(), "failing a link that is not connected");
  fabric_->mutable_fabric().disconnect(dev, port);
  ++fabric_version_;
  return traps_from_endpoints(dev, port, peer.device, peer.port, now);
}

std::vector<SubnetManager::TrapSchedule> SubnetManager::on_link_recover(
    DeviceId dev_a, PortId port_a, DeviceId dev_b, PortId port_b,
    SimTime now) {
  fabric_->mutable_fabric().connect(dev_a, port_a, dev_b, port_b);
  ++fabric_version_;
  return traps_from_endpoints(dev_a, port_a, dev_b, port_b, now);
}

std::optional<SimTime> SubnetManager::on_trap(DeviceId /*reporter*/,
                                              PortId /*port*/, SimTime now) {
  ++stats_.traps_received;
  if (stats_.first_trap_ns < 0) stats_.first_trap_ns = now;
  if (!cfg_.react || sweep_in_progress_ ||
      fabric_version_ == routed_version_) {
    // A sweep in progress observes the fabric at its completion, so it
    // already covers whatever this trap reports; a trap for an
    // already-routed change (the second endpoint of a handled failure)
    // needs no action either.
    ++stats_.traps_coalesced;
    return std::nullopt;
  }
  sweep_in_progress_ = true;
  ++stats_.sweeps_started;
  stats_.last_sweep_started_ns = now;
  // The sweep cost is the modeled SMP probe traffic of a full re-discovery
  // from the SM's own endport — genuinely re-run on the degraded fabric.
  const DiscoveredTopology topo =
      discover_subnet(fabric_->fabric(), fabric_->node_device(0));
  stats_.probes_sent += topo.probes_sent;
  stats_.last_sweep_cost_ns =
      static_cast<SimTime>(topo.probes_sent) * cfg_.smp_probe_ns;
  return now + stats_.last_sweep_cost_ns;
}

std::vector<SubnetManager::ProgramOp> SubnetManager::on_sweep_done(
    SimTime now) {
  MLID_EXPECT(sweep_in_progress_, "sweep completion without a sweep");
  sweep_in_progress_ = false;
  ++stats_.sweeps_completed;
  stats_.last_sweep_done_ns = now;
  routed_version_ = fabric_version_;
  ++epoch_;  // any program of an older plan still in flight is void

  const LftRepairPlan repair =
      compute_lft_repair(*fabric_, subnet_->scheme().lmc(), lfts_);
  if (cfg_.incremental) {
    plan_ = repair.switches;
  } else {
    // Full rewrite: every switch gets a complete table push, carrying the
    // same deltas (the final state is identical) but costed as a full
    // linear-table write per switch.
    plan_.clear();
    plan_.reserve(lfts_.size());
    std::size_t next_changed = 0;
    for (SwitchId sw = 0; sw < lfts_.size(); ++sw) {
      SwitchRepair full;
      full.sw = sw;
      if (next_changed < repair.switches.size() &&
          repair.switches[next_changed].sw == sw) {
        full.deltas = repair.switches[next_changed].deltas;
        ++next_changed;
      }
      plan_.push_back(std::move(full));
    }
  }

  std::vector<ProgramOp> ops;
  pending_programs_ = plan_.size();
  if (plan_.empty()) {
    stats_.last_program_cost_ns = 0;
    maybe_converge(now);
    return ops;
  }
  // Switches are programmed sequentially, one SMP session each: session
  // overhead plus one write per entry (whole table in full mode).
  SimTime t = now;
  ops.reserve(plan_.size());
  for (std::uint32_t i = 0; i < plan_.size(); ++i) {
    const std::uint64_t writes =
        cfg_.incremental ? plan_[i].deltas.size()
                         : static_cast<std::uint64_t>(lfts_[plan_[i].sw].max_lid());
    t += cfg_.switch_program_overhead_ns +
         static_cast<SimTime>(writes) * cfg_.lft_entry_program_ns;
    ops.push_back(ProgramOp{t, i, epoch_, plan_[i].sw});
    stats_.entries_programmed += writes;
  }
  stats_.last_program_cost_ns = t - now;
  return ops;
}

bool SubnetManager::apply_program(std::uint32_t plan_index,
                                  std::uint32_t epoch, SimTime now) {
  if (epoch != epoch_) return false;  // superseded by a newer sweep
  MLID_EXPECT(plan_index < plan_.size(), "program index out of range");
  apply_repair(plan_[plan_index], lfts_[plan_[plan_index].sw]);
  ++stats_.switches_programmed;
  MLID_ASSERT(pending_programs_ > 0, "more programs applied than scheduled");
  --pending_programs_;
  if (pending_programs_ == 0) maybe_converge(now);
  return true;
}

void SubnetManager::maybe_converge(SimTime now) {
  if (converged()) stats_.converged_at = now;
}

}  // namespace mlid

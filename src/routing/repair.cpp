#include "routing/repair.hpp"

#include "routing/updown.hpp"

namespace mlid {

LftRepairPlan compute_lft_repair(const FatTreeFabric& fabric, Lmc lmc,
                                 const std::vector<CompactLft>& live) {
  MLID_EXPECT(live.size() == fabric.params().num_switches(),
              "need one live LFT per switch");
  const UpDownRouting target(fabric, lmc);
  LftRepairPlan plan;
  plan.fully_connected = target.fully_connected();
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    const Lft want = target.build_lft(sw);
    const CompactLft& have = live[sw];
    MLID_EXPECT(want.max_lid() == have.max_lid(),
                "live tables use a different LID layout than the repair "
                "target (LMC mismatch?)");
    SwitchRepair repair;
    repair.sw = sw;
    for (Lid lid = 1; lid <= want.max_lid(); ++lid) {
      const PortId want_port = want.find(lid);
      const PortId have_port = have.find(lid);
      if (want_port != have_port) {
        repair.deltas.push_back(LftDelta{lid, want_port});
      }
    }
    if (!repair.deltas.empty()) {
      plan.switches.push_back(std::move(repair));
    }
  }
  return plan;
}

void apply_repair(const SwitchRepair& repair, CompactLft& table) {
  for (const LftDelta& delta : repair.deltas) {
    if (delta.port == Lft::kNoEntry) {
      table.clear(delta.lid);
    } else {
      table.set(delta.lid, delta.port);
    }
  }
}

}  // namespace mlid

#include "routing/validate.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>

#include "topology/properties.hpp"

namespace mlid {

namespace {

void report_problem(RoutingReport& report, int max_problems,
                    const std::string& what) {
  if (static_cast<int>(report.problems.size()) < max_problems) {
    report.problems.push_back(what);
  }
}

/// Level sequence of the switches a trace visits (hops[0] leaves the
/// source endnode, so switch hops start at index 1).
std::vector<int> switch_levels(const FatTreeFabric& ft,
                               const PathTrace& trace) {
  std::vector<int> levels;
  for (std::size_t i = 1; i < trace.hops.size(); ++i) {
    const Device& dev = ft.fabric().device(trace.hops[i].device);
    MLID_ASSERT(dev.kind() == DeviceKind::kSwitch, "mid-path endnode");
    levels.push_back(ft.switch_label(dev.switch_id).level());
  }
  return levels;
}

bool is_up_then_down(const std::vector<int>& levels) {
  // Levels must strictly decrease to a single minimum then strictly
  // increase (root is level 0).  A one-switch path is trivially fine.
  std::size_t i = 1;
  while (i < levels.size() && levels[i] == levels[i - 1] - 1) ++i;
  while (i < levels.size() && levels[i] == levels[i - 1] + 1) ++i;
  return i == levels.size();
}

}  // namespace

namespace {

RoutingReport verify_all_paths_impl(const FatTreeFabric& ft,
                                    const RoutingScheme& scheme,
                                    const CompiledRoutes& routes,
                                    int max_problems, bool require_minimal);

}  // namespace

RoutingReport verify_all_paths(const FatTreeFabric& ft,
                               const RoutingScheme& scheme,
                               const CompiledRoutes& routes,
                               int max_problems) {
  return verify_all_paths_impl(ft, scheme, routes, max_problems,
                               /*require_minimal=*/true);
}

RoutingReport verify_all_paths_relaxed(const FatTreeFabric& ft,
                                       const RoutingScheme& scheme,
                                       const CompiledRoutes& routes,
                                       int max_problems) {
  return verify_all_paths_impl(ft, scheme, routes, max_problems,
                               /*require_minimal=*/false);
}

namespace {

RoutingReport verify_all_paths_impl(const FatTreeFabric& ft,
                                    const RoutingScheme& scheme,
                                    const CompiledRoutes& routes,
                                    int max_problems, bool require_minimal) {
  RoutingReport report;
  const FatTreeParams& p = ft.params();
  for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
    const LidRange range = scheme.lids_of(dst);
    const NodeLabel dst_label = ft.node_label(dst);
    for (NodeId src = 0; src < p.num_nodes(); ++src) {
      if (src == dst) continue;
      const NodeLabel src_label = ft.node_label(src);
      const int minimal = min_path_links(p, src_label, dst_label);
      for (std::uint32_t off = 0; off < range.count(); ++off) {
        const Lid dlid = range.at(off);
        const PathTrace trace = trace_path(ft, routes, src, dlid);
        ++report.paths_checked;
        std::ostringstream ctx;
        ctx << scheme.name() << " " << src_label.to_string() << " -> "
            << dst_label.to_string() << " dlid " << dlid << ": ";
        if (!trace.complete) {
          report_problem(report, max_problems,
                         ctx.str() + "incomplete walk " + to_string(ft, trace));
          continue;
        }
        if (trace.terminal != ft.node_device(dst)) {
          report_problem(report, max_problems,
                         ctx.str() + "delivered to the wrong node " +
                             to_string(ft, trace));
          continue;
        }
        if (require_minimal && trace.num_links() != minimal) {
          report_problem(report, max_problems,
                         ctx.str() + "non-minimal (" +
                             std::to_string(trace.num_links()) + " links, " +
                             std::to_string(minimal) + " minimal)");
        }
        std::unordered_set<DeviceId> seen;
        for (const auto& hop : trace.hops) {
          if (!seen.insert(hop.device).second) {
            report_problem(report, max_problems,
                           ctx.str() + "revisits a device");
            break;
          }
        }
        if (!is_up_then_down(switch_levels(ft, trace))) {
          report_problem(report, max_problems,
                         ctx.str() + "violates up*/down* " +
                             to_string(ft, trace));
        }
      }
    }
  }
  return report;
}

}  // namespace

RoutingReport verify_lca_spreading(const FatTreeFabric& ft,
                                   const RoutingScheme& scheme,
                                   const CompiledRoutes& routes,
                                   int max_problems) {
  RoutingReport report;
  const FatTreeParams& p = ft.params();
  for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
    const NodeLabel dst_label = ft.node_label(dst);
    // Group sources by (alpha, subgroup prefix), where the subgroup is
    // gcpg(x . p_alpha, alpha + 1) of the source; key both by alpha and the
    // prefix digits encoded as the source PID with sub-prefix digits zeroed.
    std::map<std::pair<int, std::uint32_t>, std::unordered_set<DeviceId>> seen;
    for (NodeId src = 0; src < p.num_nodes(); ++src) {
      if (src == dst) continue;
      const NodeLabel src_label = ft.node_label(src);
      const int alpha = gcp_length(p, src_label, dst_label);
      const Lid dlid = scheme.select_dlid(src, dst);
      const PathTrace trace = trace_path(ft, routes, src, dlid);
      ++report.paths_checked;
      if (!trace.complete) {
        report_problem(report, max_problems, "incomplete walk");
        continue;
      }
      // The LCA is the switch at the minimum level on the walk.
      DeviceId lca = kInvalidDevice;
      int best_level = p.n();
      for (std::size_t i = 1; i < trace.hops.size(); ++i) {
        const Device& dev = ft.fabric().device(trace.hops[i].device);
        const int level = ft.switch_label(dev.switch_id).level();
        if (level < best_level) {
          best_level = level;
          lca = trace.hops[i].device;
        }
      }
      if (best_level != alpha) {
        std::ostringstream os;
        os << scheme.name() << " " << src_label.to_string() << " -> "
           << dst_label.to_string() << ": turned at level " << best_level
           << ", gcp length is " << alpha;
        report_problem(report, max_problems, os.str());
      }
      const std::uint32_t subgroup =
          (alpha + 1 < p.n())
              ? src - rank_in_group(p, src_label, alpha + 1)
              : src;  // leaf-local groups are singletons per source
      auto& lcas = seen[{alpha, subgroup}];
      if (!lcas.insert(lca).second) {
        std::ostringstream os;
        os << scheme.name() << ": destination " << dst_label.to_string()
           << " subgroup (alpha=" << alpha << ") reuses LCA "
           << ft.fabric().device(lca).name() << " (source "
           << src_label.to_string() << ")";
        report_problem(report, max_problems, os.str());
      }
    }
  }
  return report;
}

RoutingReport verify_deadlock_free(const FatTreeFabric& ft,
                                   const RoutingScheme& scheme,
                                   const CompiledRoutes& routes) {
  RoutingReport report;
  const FatTreeParams& p = ft.params();
  // Directed channels are (device, out_port) pairs; give each a dense id.
  const Fabric& g = ft.fabric();
  std::vector<std::uint32_t> channel_base(g.num_devices() + 1, 0);
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    channel_base[dev + 1] =
        channel_base[dev] +
        static_cast<std::uint32_t>(g.device(dev).num_ports()) + 1;
  }
  const std::uint32_t num_channels = channel_base[g.num_devices()];
  auto channel_id = [&](DeviceId dev, PortId port) {
    return channel_base[dev] + port;
  };
  std::vector<std::unordered_set<std::uint32_t>> adj(num_channels);

  for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
    const LidRange range = scheme.lids_of(dst);
    for (NodeId src = 0; src < p.num_nodes(); ++src) {
      if (src == dst) continue;
      for (std::uint32_t off = 0; off < range.count(); ++off) {
        const PathTrace trace = trace_path(ft, routes, src, range.at(off));
        ++report.paths_checked;
        // Incomplete walks (hop-limited oscillations) still contribute their
        // channel dependencies -- that is exactly where cycles live.
        for (std::size_t i = 1; i < trace.hops.size(); ++i) {
          adj[channel_id(trace.hops[i - 1].device, trace.hops[i - 1].out_port)]
              .insert(channel_id(trace.hops[i].device, trace.hops[i].out_port));
        }
      }
    }
  }

  // Iterative three-color DFS for cycle detection.
  std::vector<std::uint8_t> color(num_channels, 0);  // 0 white 1 grey 2 black
  std::vector<std::pair<std::uint32_t, bool>> stack;
  for (std::uint32_t start = 0; start < num_channels; ++start) {
    if (color[start] != 0) continue;
    stack.emplace_back(start, false);
    while (!stack.empty()) {
      auto [ch, leaving] = stack.back();
      stack.pop_back();
      if (leaving) {
        color[ch] = 2;
        continue;
      }
      if (color[ch] == 2) continue;
      if (color[ch] == 1) continue;
      color[ch] = 1;
      stack.emplace_back(ch, true);
      for (std::uint32_t next : adj[ch]) {
        if (color[next] == 1) {
          report.problems.push_back(
              std::string(scheme.name()) +
              ": channel dependency cycle detected");
          return report;
        }
        if (color[next] == 0) stack.emplace_back(next, false);
      }
    }
  }
  return report;
}

}  // namespace mlid

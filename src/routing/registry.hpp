// String-keyed routing-scheme registry: the open factory that replaces the
// closed SchemeKind enum.  Schemes register a name and a constructor; the
// harness (`--scheme`), Subnet bring-up and the sweep grid resolve names
// through here, so adding a scheme no longer requires touching subnet /
// harness / sweep internals.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "routing/scheme.hpp"
#include "topology/builder.hpp"

namespace mlid {

class SchemeRegistry {
 public:
  /// Builds a scheme for one fabric.  The factory receives the fabric (not
  /// just its params) because graph-derived schemes like UPDN compute their
  /// tables from the live link state.
  using Factory =
      std::function<std::unique_ptr<RoutingScheme>(const FatTreeFabric&)>;

  /// The process-wide registry.  The built-in schemes (SLID, MLID, UPDN,
  /// PartialMLID-lmc1/2) are registered on first use; out-of-tree schemes
  /// add() themselves before constructing subnets.
  static SchemeRegistry& instance();

  /// Registers a factory under a unique name (lookups are
  /// case-insensitive).  `seed_key` is the word sweep_point_seed mixes for
  /// this scheme and must stay stable across releases -- changing it moves
  /// every published BENCH number for the scheme.  SLID holds 0 and MLID
  /// holds 1 (the retired enum's values), so the registry migration left
  /// their sweep seeds byte-identical.
  void add(std::string name, std::uint64_t seed_key, Factory factory);

  [[nodiscard]] bool contains(std::string_view name) const noexcept;
  [[nodiscard]] std::unique_ptr<RoutingScheme> make(
      std::string_view name, const FatTreeFabric& fabric) const;
  [[nodiscard]] std::uint64_t seed_key(std::string_view name) const;
  /// Canonical spellings, in registration order (for --help and errors).
  [[nodiscard]] std::vector<std::string> names() const;
  /// The names joined with ", " -- the listing CLI diagnostics print.
  [[nodiscard]] std::string listing() const;

 private:
  struct Entry {
    std::string name;
    std::uint64_t seed_key = 0;
    Factory factory;
  };

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept;

  std::vector<Entry> entries_;
};

/// Convenience wrappers over SchemeRegistry::instance().
[[nodiscard]] std::unique_ptr<RoutingScheme> make_scheme(
    std::string_view name, const FatTreeFabric& fabric);
[[nodiscard]] std::uint64_t scheme_seed_key(std::string_view name);
[[nodiscard]] std::string scheme_listing();

}  // namespace mlid

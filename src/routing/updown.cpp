#include "routing/updown.hpp"

#include <deque>
#include <limits>

#include "topology/properties.hpp"

namespace mlid {

namespace {
constexpr int kUnreachable = std::numeric_limits<int>::max() / 2;
}

UpDownRouting::UpDownRouting(const FatTreeFabric& fabric, Lmc lmc)
    : params_(fabric.params()), lmc_(lmc) {
  MLID_EXPECT(lmc <= params_.mlid_lmc(),
              "LMC larger than the tree's path diversity");
  MLID_EXPECT(static_cast<std::uint64_t>(params_.num_nodes()) * (1u << lmc) <
                  kMaxLidSpace,
              "LID space exhausted");
  compute_tables(fabric);
}

LidRange UpDownRouting::lids_of(NodeId node) const {
  MLID_EXPECT(node < params_.num_nodes(), "node id out of range");
  return LidRange(static_cast<Lid>(node) * (Lid{1} << lmc_) + 1, lmc_);
}

NodeId UpDownRouting::node_of_lid(Lid lid) const {
  MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
  const auto pid = static_cast<NodeId>((lid - 1) >> lmc_);
  MLID_EXPECT(pid < params_.num_nodes(), "LID beyond the assigned space");
  return pid;
}

Lid UpDownRouting::max_lid() const {
  return lids_of(params_.num_nodes() - 1).last();
}

Lid UpDownRouting::select_dlid(NodeId src, NodeId dst) const {
  MLID_EXPECT(src < params_.num_nodes() && dst < params_.num_nodes(),
              "node id out of range");
  const NodeLabel src_label = NodeLabel::from_pid(params_, src);
  const NodeLabel dst_label = NodeLabel::from_pid(params_, dst);
  const int alpha = gcp_length(params_, src_label, dst_label);
  if (alpha == params_.n()) return lids_of(dst).base();
  const std::uint32_t r = (alpha + 1 < params_.n())
                              ? rank_in_group(params_, src_label, alpha + 1)
                              : 0;
  return lids_of(dst).at(r & (lids_of(dst).count() - 1));
}

Lft UpDownRouting::build_lft(SwitchId sw) const {
  MLID_EXPECT(sw < lfts_.size(), "switch id out of range");
  return lfts_[sw];
}

void UpDownRouting::compute_tables(const FatTreeFabric& ft) {
  const Fabric& g = ft.fabric();
  const std::uint32_t num_switches = params_.num_switches();
  lfts_.assign(num_switches, Lft(max_lid()));

  // Scratch arrays reused across destinations.
  std::vector<int> dist_down(num_switches);
  std::vector<int> dist(num_switches);
  std::vector<std::vector<PortId>> down_ports(num_switches);
  std::vector<std::vector<PortId>> up_ports(num_switches);
  std::vector<int> level(num_switches);
  for (SwitchId s = 0; s < num_switches; ++s) {
    level[s] = switch_from_id(params_, s).level();
  }

  for (NodeId dst = 0; dst < params_.num_nodes(); ++dst) {
    for (SwitchId s = 0; s < num_switches; ++s) {
      dist_down[s] = kUnreachable;
      dist[s] = kUnreachable;
      down_ports[s].clear();
      up_ports[s].clear();
    }

    // Phase 1: all-descending distances, by reverse BFS climbing from the
    // destination's leaf switch.  A switch's down candidates are the ports
    // on minimal all-down paths; any switch with a finite dist_down will
    // (consistently) forward downward, so packets that have started to
    // descend never turn around.
    const DeviceId node_dev = ft.node_device(dst);
    const PortRef attach = g.peer_of(node_dev, 1);
    if (attach.valid()) {
      const SwitchId leaf = g.device(attach.device).switch_id;
      dist_down[leaf] = 1;
      down_ports[leaf].push_back(attach.port);
      std::deque<SwitchId> frontier{leaf};
      while (!frontier.empty()) {
        const SwitchId cur = frontier.front();
        frontier.pop_front();
        const DeviceId cur_dev = ft.switch_device(cur);
        const Device& cur_device = g.device(cur_dev);
        // Climb through the current switch's alive up ports.
        for (int u = 0; u < num_up_ports(params_, level[cur]); ++u) {
          const auto port = static_cast<PortId>(params_.half() + u + 1);
          if (!cur_device.port_connected(port)) continue;
          const PortRef peer = cur_device.peer(port);
          const SwitchId parent = g.device(peer.device).switch_id;
          const int cand = dist_down[cur] + 1;
          if (cand < dist_down[parent]) {
            dist_down[parent] = cand;
            down_ports[parent].assign(1, peer.port);
            frontier.push_back(parent);
          } else if (cand == dist_down[parent]) {
            down_ports[parent].push_back(peer.port);
          }
        }
      }
    } else {
      fully_connected_ = false;  // the node's own attach link is down
    }

    // Phase 2: full up*/down* distances, levels top-down (roots first) so
    // every parent is finalized before its children.  Descending is chosen
    // whenever possible -- that keeps the destination-based tables
    // consistent (see header) and is minimal on pristine fat trees.
    for (SwitchId s = 0; s < num_switches; ++s) {
      if (dist_down[s] < kUnreachable) {
        dist[s] = dist_down[s];
        continue;  // down wins; candidates already in down_ports
      }
      // SwitchIds are level-major, so all parents (level - 1) precede s.
      const DeviceId dev = ft.switch_device(s);
      const Device& device = g.device(dev);
      int best = kUnreachable;
      for (int u = 0; u < num_up_ports(params_, level[s]); ++u) {
        const auto port = static_cast<PortId>(params_.half() + u + 1);
        if (!device.port_connected(port)) continue;
        const PortRef peer = device.peer(port);
        const SwitchId parent = g.device(peer.device).switch_id;
        const int cand = dist[parent] + 1;
        if (cand < best) {
          best = cand;
          up_ports[s].assign(1, port);
        } else if (cand == best && cand < kUnreachable) {
          up_ports[s].push_back(port);
        }
      }
      dist[s] = best;
    }

    // Phase 3: program every LID of this destination on every switch.  The
    // LID offset walks the candidate lists digit-by-digit (most-significant
    // digit nearest the roots), which reproduces MLID's ascent spreading on
    // an undamaged tree.
    const LidRange lids = lids_of(dst);
    for (SwitchId s = 0; s < num_switches; ++s) {
      const std::vector<PortId>& candidates =
          dist_down[s] < kUnreachable ? down_ports[s] : up_ports[s];
      if (dist[s] >= kUnreachable || candidates.empty()) {
        // A dead end for this destination.  Ascending packets only ever
        // move toward finite-distance parents, so an unreachable *inner*
        // switch is never entered; connectivity is broken only when a leaf
        // switch (where sources inject) has no route.
        if (level[s] == params_.n() - 1) fully_connected_ = false;
        continue;  // leave kNoEntry: this switch cannot reach dst
      }
      for (std::uint32_t off = 0; off < lids.count(); ++off) {
        // Same digit rule as Equation (2): consume base-(m/2) digits of
        // (lid - 1), least significant nearest the leaves.  With a full LMC
        // the low digits are the path offset (MLID's spreading); with
        // LMC = 0 they are the destination PID's digits (SLID's striping).
        const Lid lid = lids.at(off);
        const auto digit = radix_digit(
            lid - 1, static_cast<std::uint32_t>(params_.half()),
            params_.n() - 1 - level[s]);
        const PortId port =
            candidates[digit % static_cast<std::uint32_t>(candidates.size())];
        lfts_[s].set(lid, port);
      }
    }
  }
}

}  // namespace mlid

#include "routing/fat_tree_routing.hpp"

namespace mlid {

FatTreeRouting::FatTreeRouting(const FatTreeParams& params, Lmc lmc)
    : params_(params), lmc_(lmc) {
  MLID_EXPECT(lmc <= params.mlid_lmc(),
              "LMC larger than the tree's path diversity");
  MLID_EXPECT(
      static_cast<std::uint64_t>(params.num_nodes()) * (1u << lmc) <
          kMaxLidSpace,
      "LID space exhausted");
  switch_labels_.reserve(params_.num_switches());
  for (SwitchId sw = 0; sw < params_.num_switches(); ++sw) {
    switch_labels_.push_back(switch_from_id(params_, sw));
  }
}

PortId FatTreeRouting::formula_port(SwitchId sw, Lid lid) const {
  MLID_ASSERT(sw < switch_labels_.size(), "switch id out of range");
  return output_port(switch_labels_[sw], lid);
}

LidRange FatTreeRouting::lids_of(NodeId node) const {
  MLID_EXPECT(node < params_.num_nodes(), "node id out of range");
  // BaseLID(P(p)) = PID(P(p)) * 2^LMC + 1  (LID 0 is reserved).
  return LidRange(static_cast<Lid>(node) * (Lid{1} << lmc_) + 1, lmc_);
}

NodeId FatTreeRouting::node_of_lid(Lid lid) const {
  MLID_EXPECT(lid != kInvalidLid, "LID 0 is reserved");
  const auto pid = static_cast<NodeId>((lid - 1) >> lmc_);
  MLID_EXPECT(pid < params_.num_nodes(), "LID beyond the assigned space");
  return pid;
}

Lid FatTreeRouting::max_lid() const {
  return lids_of(params_.num_nodes() - 1).last();
}

PortId FatTreeRouting::output_port(const SwitchLabel& sw, Lid lid) const {
  const NodeLabel dest = NodeLabel::from_pid(params_, node_of_lid(lid));
  if (reachable_downward(params_, sw, dest)) {
    // Case 1: descend towards the destination; at level l the child (or the
    // node itself on a leaf switch) is selected by digit p_l.
    return static_cast<PortId>(dest.digit(sw.level()) + kPortShift);
  }
  // Case 2: forward upward.  The up port consumes base-(m/2) digit
  // (n-1-level) of (lid-1); because the path offset occupies the low
  // LMC bits, the offset digits are consumed from the leaf level upwards,
  // making the reached least common ancestor the digit-reversal of the
  // offset -- a bijection that spreads subgroup members over distinct LCAs.
  MLID_ASSERT(sw.level() >= 1, "roots reach everything downward");
  const auto digit =
      radix_digit(lid - 1, static_cast<std::uint32_t>(params_.half()),
                  params_.n() - 1 - sw.level());
  return static_cast<PortId>(static_cast<int>(digit) + params_.half() +
                             kPortShift);
}

Lft FatTreeRouting::build_lft(SwitchId sw) const {
  MLID_EXPECT(sw < params_.num_switches(), "switch id out of range");
  const SwitchLabel label = switch_from_id(params_, sw);
  Lft lft(max_lid());
  for (NodeId node = 0; node < params_.num_nodes(); ++node) {
    const LidRange range = lids_of(node);
    for (std::uint32_t off = 0; off < range.count(); ++off) {
      const Lid lid = range.at(off);
      lft.set(lid, output_port(label, lid));
    }
  }
  return lft;
}

Lid SlidRouting::select_dlid(NodeId src, NodeId dst) const {
  MLID_EXPECT(src < params_.num_nodes() && dst < params_.num_nodes(),
              "node id out of range");
  return lids_of(dst).base();
}

Lid PartialMlidRouting::select_dlid(NodeId src, NodeId dst) const {
  MLID_EXPECT(src < params_.num_nodes() && dst < params_.num_nodes(),
              "node id out of range");
  const NodeLabel src_label = NodeLabel::from_pid(params_, src);
  const NodeLabel dst_label = NodeLabel::from_pid(params_, dst);
  const int alpha = gcp_length(params_, src_label, dst_label);
  if (alpha == params_.n()) return lids_of(dst).base();
  const std::uint32_t r = (alpha + 1 < params_.n())
                              ? rank_in_group(params_, src_label, alpha + 1)
                              : 0;
  // Fold the rank into the reduced LID block: neighbours in a subgroup
  // share paths once the block is smaller than the subgroup.
  return lids_of(dst).at(r & (lids_of(dst).count() - 1));
}

Lid MlidRouting::select_dlid(NodeId src, NodeId dst) const {
  MLID_EXPECT(src < params_.num_nodes() && dst < params_.num_nodes(),
              "node id out of range");
  const NodeLabel src_label = NodeLabel::from_pid(params_, src);
  const NodeLabel dst_label = NodeLabel::from_pid(params_, dst);
  const int alpha = gcp_length(params_, src_label, dst_label);
  if (alpha == params_.n()) return lids_of(dst).base();  // self-send
  // The source lives in gcpg(x . p_alpha, alpha + 1); its rank there is
  // taken over digit positions alpha+1 .. n-1 and is < (m/2)^(n-1-alpha),
  // which never exceeds the LID block size 2^LMC = (m/2)^(n-1).
  const std::uint32_t r = (alpha + 1 < params_.n())
                              ? rank_in_group(params_, src_label, alpha + 1)
                              : 0;  // same leaf switch: single minimal path
  return lids_of(dst).at(r);
}

}  // namespace mlid

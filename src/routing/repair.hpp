// Incremental LFT repair: the delta between a subnet's live forwarding
// state and a fresh up*/down* computation on the (possibly degraded)
// fabric.
//
// This is the OpenSM-style "ucast cache" update path: the SM recomputes
// routing in memory — cheap compared to SMP traffic — but pushes only the
// entries that actually changed to the switches, so the programming phase
// of a re-sweep costs O(changed entries) instead of O(switches x LID
// space).  Applying every delta of a plan leaves each switch's table
// bit-identical to a full UpDownRouting rebuild on the same fabric
// (asserted by tests/subnet/sm_test.cpp).
#pragma once

#include <vector>

#include "ib/lft.hpp"
#include "topology/builder.hpp"

namespace mlid {

/// One LFT write: set `lid -> port`, or withdraw the route when `port` is
/// Lft::kNoEntry (the destination became unreachable from this switch).
struct LftDelta {
  Lid lid = kInvalidLid;
  PortId port = Lft::kNoEntry;
};

/// All writes one switch needs.
struct SwitchRepair {
  SwitchId sw = kInvalidSwitch;
  std::vector<LftDelta> deltas;
};

struct LftRepairPlan {
  /// Switches whose tables change, in SwitchId order.
  std::vector<SwitchRepair> switches;
  /// False when the degraded fabric can no longer connect every node pair.
  bool fully_connected = true;

  [[nodiscard]] std::size_t total_entries() const noexcept {
    std::size_t n = 0;
    for (const auto& s : switches) n += s.deltas.size();
    return n;
  }
};

/// Diff the live tables against a fresh UPDN computation on the fabric's
/// current link state.  `live` must hold one table per switch, sized for
/// the same LID layout (any of the repo's schemes at the same LMC).
LftRepairPlan compute_lft_repair(const FatTreeFabric& fabric, Lmc lmc,
                                 const std::vector<CompactLft>& live);

/// Apply one switch's deltas in place.  On a formula-backed table each
/// delta becomes an overlay entry (or removes one, when a later repair
/// restores the formula's answer).
void apply_repair(const SwitchRepair& repair, CompactLft& table);

}  // namespace mlid

// Routing-scheme interface: the three responsibilities the paper assigns to
// a scheme (Section 4) — endport addressing (LID assignment), path
// selection (which DLID a source uses for a destination), and forwarding
// table assignment (the per-switch LFT contents).
#pragma once

#include <memory>
#include <string_view>

#include "ib/lft.hpp"
#include "ib/lid.hpp"
#include "topology/fat_tree.hpp"

namespace mlid {

class RoutingScheme {
 public:
  virtual ~RoutingScheme() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// LMC used for every endport (uniform across the subnet in this model).
  [[nodiscard]] virtual Lmc lmc() const noexcept = 0;

  /// Addressing scheme: the LID block assigned to a node.
  [[nodiscard]] virtual LidRange lids_of(NodeId node) const = 0;

  /// Inverse of the addressing scheme.
  [[nodiscard]] virtual NodeId node_of_lid(Lid lid) const = 0;

  /// Path selection scheme: DLID a source fills into packets for dst.
  [[nodiscard]] virtual Lid select_dlid(NodeId src, NodeId dst) const = 0;

  /// Forwarding table assignment scheme: the complete LFT of one switch.
  [[nodiscard]] virtual Lft build_lft(SwitchId sw) const = 0;

  /// Highest LID the scheme assigns (LFT sizing).
  [[nodiscard]] virtual Lid max_lid() const = 0;

  /// Closed-form forwarding hook: schemes whose tables are a formula over
  /// (switch, DLID) return a formula object (owned by the scheme, valid
  /// for its lifetime) so CompiledRoutes can store CompactLfts instead of
  /// dense tables.  nullptr (the default) keeps the dense fallback.
  [[nodiscard]] virtual const LftFormula* lft_formula() const noexcept {
    return nullptr;
  }
};

}  // namespace mlid

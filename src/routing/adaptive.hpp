// Forwarding-policy and VL-assignment-policy axes: the per-hop adaptive
// routing / dynamic queuing subsystem (ROADMAP item 3, after
// Rocher-Gonzalez et al.'s adaptive-routing + queuing-scheme study).
//
// Two orthogonal, string-keyed policy axes compose with any routing scheme:
//
//  * ForwardingPolicy -- consulted by the engine at each switch
//    output-selection point.  The LFT's deterministic answer is always
//    computed first; when it points upward (any connected up port of a
//    fat-tree switch is a minimal next hop), a non-deterministic policy may
//    pick a different up port using the shard-local occupancy signals the
//    engine exposes (free output slots, link credits, FECN marks stamped at
//    that output).  Down entries are never overridden: the destination sits
//    in exactly one subtree, so only the up-phase has freedom to exploit.
//
//  * VlMapPolicy -- the HCA-side dynamic VL assignment (vFtree / Flow2SL
//    style): remaps the base VL the SimConfig::vl_policy draw produced onto
//    a destination- or flow-keyed lane, composing with the existing
//    weighted VL arbitration.  The identity map is the default and leaves
//    the engine byte-identical to the pre-policy code.
//
// Determinism contract: policies are stateless and read only the candidate
// signals passed in, so a run is bit-reproducible for a given (config,
// traffic) seed pair under any policy; with the *deterministic* forwarding
// policy and the *none* VL map the engine takes its historical hot path
// untouched and stays byte-identical to the pre-policy engine.  In sharded
// runs each shard constructs its own policy objects and the candidate
// signals are the owning shard's local arrays, so shard parity holds.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "common/expect.hpp"
#include "common/types.hpp"

namespace mlid {

/// One candidate up port at a switch output-selection point, with the
/// shard-local occupancy signals the engine exposes to policies.
struct UpPortCandidate {
  PortId port = 0;
  std::int32_t free_slots = 0;   ///< free output-buffer slots on this VL
  std::int32_t credits = 0;      ///< downstream input slots (link credits)
  /// FECN marks stamped at this output so far (0 unless congestion control
  /// is enabled): the CC subsystem's congestion-root discrimination as a
  /// selection input -- ports that have marked are roots worth avoiding.
  std::uint32_t fecn_marks = 0;
};

/// How switches pick among the equivalent up ports of the up-phase.
class ForwardingPolicy {
 public:
  virtual ~ForwardingPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True for the pure-LFT policy: the engine then skips candidate
  /// enumeration entirely, keeping the hot path byte-identical to the
  /// pre-policy engine.
  [[nodiscard]] virtual bool deterministic() const noexcept { return false; }

  /// Chooses one of `up` (never empty; all entries are connected up ports
  /// of the current switch).  `deterministic` is the LFT's Equation-2
  /// answer and is always among the candidates.  Must return a candidate
  /// port -- the engine asserts the choice is an eligible up port.
  [[nodiscard]] virtual PortId select_uplink(
      std::span<const UpPortCandidate> up, PortId deterministic) const = 0;
};

/// HCA-side dynamic VL assignment, applied after the base VlPolicy draw.
class VlMapPolicy {
 public:
  virtual ~VlMapPolicy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// True for the identity map: the engine then skips the remap call.
  [[nodiscard]] virtual bool identity() const noexcept { return false; }

  /// Maps a packet onto its data VL; must return a value < num_vls (the
  /// engine asserts it).  `base` is the VL the configured VlPolicy chose.
  [[nodiscard]] virtual VlId remap(NodeId src, NodeId dst, VlId base,
                                   int num_vls) const = 0;
};

/// Small shared registry shape for the two policy axes: string-keyed,
/// case-insensitive, registration-ordered (like SchemeRegistry, minus the
/// sweep seed keys -- point seeds are deliberately policy-independent so
/// policy arms compare on identical streams).
template <typename Interface>
class PolicyRegistry {
 public:
  using Factory = std::function<std::unique_ptr<Interface>()>;

  void add(std::string name, Factory factory) {
    MLID_EXPECT(!name.empty(), "policy name must be non-empty");
    MLID_EXPECT(factory != nullptr, "policy factory must be callable");
    if (find(name) != nullptr) {
      const std::string msg = "policy '" + name + "' is already registered";
      MLID_EXPECT(false, msg.c_str());
    }
    entries_.push_back(Entry{std::move(name), std::move(factory)});
  }

  [[nodiscard]] bool contains(std::string_view name) const noexcept {
    return find(name) != nullptr;
  }

  [[nodiscard]] std::unique_ptr<Interface> make(std::string_view name) const {
    const Entry* e = find(name);
    if (e == nullptr) {
      const std::string msg = "unknown policy '" + std::string(name) +
                              "' (registered: " + listing() + ")";
      MLID_EXPECT(false, msg.c_str());
    }
    std::unique_ptr<Interface> policy = e->factory();
    MLID_EXPECT(policy != nullptr, "policy factory returned nullptr");
    return policy;
  }

  [[nodiscard]] std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry& e : entries_) out.push_back(e.name);
    return out;
  }

  [[nodiscard]] std::string listing() const {
    std::string out;
    for (const Entry& e : entries_) {
      if (!out.empty()) out += ", ";
      out += e.name;
    }
    return out;
  }

 private:
  struct Entry {
    std::string name;
    Factory factory;
  };

  [[nodiscard]] const Entry* find(std::string_view name) const noexcept {
    for (const Entry& e : entries_) {
      if (e.name.size() != name.size()) continue;
      bool eq = true;
      for (std::size_t i = 0; i < name.size(); ++i) {
        const auto lo = [](char c) {
          return c >= 'A' && c <= 'Z' ? static_cast<char>(c - 'A' + 'a') : c;
        };
        if (lo(e.name[i]) != lo(name[i])) {
          eq = false;
          break;
        }
      }
      if (eq) return &e;
    }
    return nullptr;
  }

  std::vector<Entry> entries_;
};

/// Process-wide forwarding-policy registry; "deterministic" (default) and
/// "adaptive" are registered on first use.
class ForwardingPolicyRegistry : public PolicyRegistry<ForwardingPolicy> {
 public:
  static ForwardingPolicyRegistry& instance();
};

/// Process-wide VL-map registry; "none" (default), "dest-mod" (vFtree-style
/// destination binding) and "flow-hash" (Flow2SL-style flow hashing) are
/// registered on first use.
class VlMapRegistry : public PolicyRegistry<VlMapPolicy> {
 public:
  static VlMapRegistry& instance();
};

/// Convenience wrappers over the singleton registries.
[[nodiscard]] std::unique_ptr<ForwardingPolicy> make_forwarding_policy(
    std::string_view name);
[[nodiscard]] std::unique_ptr<VlMapPolicy> make_vl_map_policy(
    std::string_view name);
[[nodiscard]] std::string forwarding_policy_listing();
[[nodiscard]] std::string vl_map_listing();

/// The policy pair a simulation runs under, by registry name.  Part of
/// SimConfig; the defaults reproduce the pre-policy engine bit-for-bit.
struct PolicyConfig {
  std::string forwarding = "deterministic";
  std::string vl_map = "none";

  void validate() const;  ///< names must be registered

  [[nodiscard]] bool operator==(const PolicyConfig&) const = default;
};

}  // namespace mlid

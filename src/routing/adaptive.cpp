#include "routing/adaptive.hpp"

#include "common/rng.hpp"

namespace mlid {
namespace {

/// Pure LFT lookup -- what real InfiniBand switches do.  The engine
/// short-circuits on deterministic() and never calls select_uplink; the
/// implementation exists so the policy behaves sensibly if driven directly.
class DeterministicPolicy final : public ForwardingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "deterministic";
  }
  [[nodiscard]] bool deterministic() const noexcept override { return true; }
  [[nodiscard]] PortId select_uplink(std::span<const UpPortCandidate> /*up*/,
                                     PortId deterministic) const override {
    return deterministic;
  }
};

/// Credit/occupancy-keyed adaptive up-port choice: take the candidate with
/// the most headroom (free output slots + downstream credits); break ties
/// toward the port with fewer FECN marks (with congestion control on, a
/// marking output is a discriminated congestion root -- steer around it),
/// then toward the LFT's deterministic choice, then by port number.  Not
/// IBA-conformant; this is the what-if that bounds the gap MLID's static
/// rank-spreading leaves on the table.  Only sound on *pristine* fabrics:
/// on a degraded fabric an arbitrary parent may be a dead end.
class AdaptiveUplinkPolicy final : public ForwardingPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "adaptive";
  }
  [[nodiscard]] PortId select_uplink(std::span<const UpPortCandidate> up,
                                     PortId deterministic) const override {
    MLID_ASSERT(!up.empty(), "no candidate up ports");
    PortId best = deterministic;
    std::int32_t best_headroom = -1;
    std::uint32_t best_fecn = 0;
    for (const UpPortCandidate& c : up) {
      const std::int32_t headroom = c.free_slots + c.credits;
      const bool better =
          headroom > best_headroom ||
          (headroom == best_headroom &&
           (c.fecn_marks < best_fecn ||
            (c.fecn_marks == best_fecn && c.port == deterministic)));
      if (better) {
        best = c.port;
        best_headroom = headroom;
        best_fecn = c.fecn_marks;
      }
    }
    return best;
  }
};

/// Identity: keep whatever the base VlPolicy chose.
class IdentityVlMap final : public VlMapPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "none";
  }
  [[nodiscard]] bool identity() const noexcept override { return true; }
  [[nodiscard]] VlId remap(NodeId /*src*/, NodeId /*dst*/, VlId base,
                           int /*num_vls*/) const override {
    return base;
  }
};

/// vFtree-style destination binding: all traffic to one destination shares
/// a lane, separating hot-spot flows from the lanes victims ride on.
class DestModVlMap final : public VlMapPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "dest-mod";
  }
  [[nodiscard]] VlId remap(NodeId /*src*/, NodeId dst, VlId /*base*/,
                           int num_vls) const override {
    return static_cast<VlId>(dst % static_cast<NodeId>(num_vls));
  }
};

/// Flow2SL-style flow hashing: each (src, dst) flow is pinned to a lane by
/// a SplitMix64 finalization, decorrelating neighbouring node ids.
class FlowHashVlMap final : public VlMapPolicy {
 public:
  [[nodiscard]] std::string_view name() const noexcept override {
    return "flow-hash";
  }
  [[nodiscard]] VlId remap(NodeId src, NodeId dst, VlId /*base*/,
                           int num_vls) const override {
    const std::uint64_t flow =
        (static_cast<std::uint64_t>(src) << 32) | static_cast<std::uint64_t>(dst);
    return static_cast<VlId>(SplitMix64(flow).next() %
                             static_cast<std::uint64_t>(num_vls));
  }
};

}  // namespace

ForwardingPolicyRegistry& ForwardingPolicyRegistry::instance() {
  static ForwardingPolicyRegistry reg = [] {
    ForwardingPolicyRegistry r;
    r.add("deterministic", [] {
      return std::unique_ptr<ForwardingPolicy>(
          std::make_unique<DeterministicPolicy>());
    });
    r.add("adaptive", [] {
      return std::unique_ptr<ForwardingPolicy>(
          std::make_unique<AdaptiveUplinkPolicy>());
    });
    return r;
  }();
  return reg;
}

VlMapRegistry& VlMapRegistry::instance() {
  static VlMapRegistry reg = [] {
    VlMapRegistry r;
    r.add("none", [] {
      return std::unique_ptr<VlMapPolicy>(std::make_unique<IdentityVlMap>());
    });
    r.add("dest-mod", [] {
      return std::unique_ptr<VlMapPolicy>(std::make_unique<DestModVlMap>());
    });
    r.add("flow-hash", [] {
      return std::unique_ptr<VlMapPolicy>(std::make_unique<FlowHashVlMap>());
    });
    return r;
  }();
  return reg;
}

std::unique_ptr<ForwardingPolicy> make_forwarding_policy(
    std::string_view name) {
  return ForwardingPolicyRegistry::instance().make(name);
}

std::unique_ptr<VlMapPolicy> make_vl_map_policy(std::string_view name) {
  return VlMapRegistry::instance().make(name);
}

std::string forwarding_policy_listing() {
  return ForwardingPolicyRegistry::instance().listing();
}

std::string vl_map_listing() {
  return VlMapRegistry::instance().listing();
}

void PolicyConfig::validate() const {
  if (!ForwardingPolicyRegistry::instance().contains(forwarding)) {
    const std::string msg =
        "unknown forwarding policy '" + forwarding +
        "' (registered: " + forwarding_policy_listing() + ")";
    MLID_EXPECT(false, msg.c_str());
  }
  if (!VlMapRegistry::instance().contains(vl_map)) {
    const std::string msg = "unknown VL map '" + vl_map +
                            "' (registered: " + vl_map_listing() + ")";
    MLID_EXPECT(false, msg.c_str());
  }
}

}  // namespace mlid

// Generic up*/down* routing with BFS-computed forwarding tables.
//
// This is the class of algorithm the paper contrasts MLID against: routing
// engines "designed for irregular topologies" (Sancho/Robles/Duato-style)
// that compute tables from the discovered graph instead of exploiting the
// fat-tree's closed forms.  We keep the tree's level assignment as the
// up/down direction, but compute distances by BFS over the *actual* link
// state -- so the engine keeps routing (minimally, deadlock-free) after
// links have been removed with Fabric::disconnect(), where the closed-form
// MLID/SLID tables would forward into the void.
//
// Multipath works like MLID's LMC mechanism: each node owns 2^lmc LIDs and
// the LID offset selects among equal-cost candidate ports digit-by-digit,
// so on a pristine fat tree UpDownRouting(lmc = full) reproduces MLID's
// spreading while degrading gracefully on damaged fabrics.
#pragma once

#include <vector>

#include "routing/scheme.hpp"
#include "topology/builder.hpp"

namespace mlid {

class UpDownRouting final : public RoutingScheme {
 public:
  /// Computes tables for the fabric's *current* link state.  Rebuild the
  /// object after topology changes (as an SM would re-sweep).
  /// `lmc` may be anywhere in [0, params.mlid_lmc()].
  UpDownRouting(const FatTreeFabric& fabric, Lmc lmc);

  [[nodiscard]] std::string_view name() const noexcept override {
    return "UPDN";
  }
  [[nodiscard]] Lmc lmc() const noexcept override { return lmc_; }
  [[nodiscard]] LidRange lids_of(NodeId node) const override;
  [[nodiscard]] NodeId node_of_lid(Lid lid) const override;
  [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const override;
  [[nodiscard]] Lft build_lft(SwitchId sw) const override;
  [[nodiscard]] Lid max_lid() const override;

  /// True iff every switch can reach every node (no partition).
  [[nodiscard]] bool fully_connected() const noexcept {
    return fully_connected_;
  }

 private:
  /// Routing state for one (switch, destination) pair: the equal-cost
  /// candidate ports and the distance in links.
  struct Choice {
    std::vector<PortId> candidates;
    int dist = -1;  // -1 = unreachable
  };

  void compute_tables(const FatTreeFabric& fabric);

  FatTreeParams params_;
  Lmc lmc_;
  bool fully_connected_ = true;
  std::vector<Lft> lfts_;  // precomputed per switch
};

}  // namespace mlid

#include "routing/load_analysis.hpp"

#include <cmath>
#include <unordered_map>

namespace mlid {

TrafficMatrix TrafficMatrix::uniform(std::uint32_t num_nodes) {
  MLID_EXPECT(num_nodes >= 2, "matrix needs at least two nodes");
  TrafficMatrix m(num_nodes);
  const double rate = 1.0 / static_cast<double>(num_nodes - 1);
  for (NodeId src = 0; src < num_nodes; ++src) {
    for (NodeId dst = 0; dst < num_nodes; ++dst) {
      if (src != dst) m.set(src, dst, rate);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::centric(std::uint32_t num_nodes, NodeId hot,
                                     double hot_fraction) {
  MLID_EXPECT(num_nodes >= 2, "matrix needs at least two nodes");
  MLID_EXPECT(hot < num_nodes, "hot node out of range");
  MLID_EXPECT(hot_fraction >= 0.0 && hot_fraction <= 1.0,
              "hot fraction must be a probability");
  TrafficMatrix m(num_nodes);
  const double rest = (1.0 - hot_fraction) / static_cast<double>(num_nodes - 1);
  for (NodeId src = 0; src < num_nodes; ++src) {
    if (src == hot) {
      // The hot node itself sends uniformly (as the simulator does).
      for (NodeId dst = 0; dst < num_nodes; ++dst) {
        if (dst != hot) m.set(src, dst, 1.0 / (num_nodes - 1));
      }
      continue;
    }
    for (NodeId dst = 0; dst < num_nodes; ++dst) {
      if (dst == src) continue;
      m.set(src, dst, dst == hot ? hot_fraction + rest : rest);
    }
  }
  return m;
}

TrafficMatrix TrafficMatrix::permutation(
    const std::vector<NodeId>& dst_of_src) {
  const auto n = static_cast<std::uint32_t>(dst_of_src.size());
  MLID_EXPECT(n >= 2, "matrix needs at least two nodes");
  TrafficMatrix m(n);
  for (NodeId src = 0; src < n; ++src) {
    MLID_EXPECT(dst_of_src[src] < n && dst_of_src[src] != src,
                "permutation must map to a different valid node");
    m.set(src, dst_of_src[src], 1.0);
  }
  return m;
}

LoadAnalysis::LoadAnalysis(const FatTreeFabric& fabric,
                           const RoutingScheme& scheme,
                           const CompiledRoutes& routes)
    : fabric_(&fabric), scheme_(&scheme), routes_(&routes) {}

std::vector<PredictedLoad> LoadAnalysis::predict(
    const TrafficMatrix& matrix) const {
  MLID_EXPECT(matrix.num_nodes() == fabric_->params().num_nodes(),
              "matrix size does not match the fabric");
  const Fabric& g = fabric_->fabric();
  // Dense accumulator per (device, port).
  std::vector<std::vector<double>> acc(g.num_devices());
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    acc[dev].assign(static_cast<std::size_t>(g.device(dev).num_ports()) + 1,
                    0.0);
  }
  const std::uint32_t n = matrix.num_nodes();
  for (NodeId src = 0; src < n; ++src) {
    for (NodeId dst = 0; dst < n; ++dst) {
      const double rate = matrix.rate(src, dst);
      if (rate <= 0.0) continue;
      const PathTrace trace =
          trace_path(*fabric_, *routes_, src, scheme_->select_dlid(src, dst));
      MLID_EXPECT(trace.complete, "load analysis on a broken route");
      for (const PathHop& hop : trace.hops) {
        acc[hop.device][hop.out_port] += rate;
      }
    }
  }
  std::vector<PredictedLoad> result;
  for (DeviceId dev = 0; dev < g.num_devices(); ++dev) {
    for (PortId port = 1; port <= g.device(dev).num_ports(); ++port) {
      if (!g.device(dev).port_connected(port)) continue;
      result.push_back(PredictedLoad{dev, port, acc[dev][port]});
    }
  }
  return result;
}

LoadSummary LoadAnalysis::summarize(
    const std::vector<PredictedLoad>& loads) const {
  const Fabric& g = fabric_->fabric();
  LoadSummary summary;
  double sum = 0.0, sum_sq = 0.0;
  std::size_t count = 0;
  for (const PredictedLoad& entry : loads) {
    const Device& dev = g.device(entry.dev);
    const Device& peer = g.device(dev.peer(entry.port).device);
    if (dev.kind() != DeviceKind::kSwitch ||
        peer.kind() != DeviceKind::kSwitch) {
      continue;  // inter-switch links only
    }
    summary.max_load = std::max(summary.max_load, entry.load);
    sum += entry.load;
    sum_sq += entry.load * entry.load;
    ++count;
  }
  if (count > 0) {
    summary.mean_load = sum / static_cast<double>(count);
    const double var =
        sum_sq / static_cast<double>(count) -
        summary.mean_load * summary.mean_load;
    summary.stddev_load = std::sqrt(std::max(var, 0.0));
  }
  summary.saturation_bound =
      summary.max_load > 0.0 ? std::min(1.0, 1.0 / summary.max_load) : 1.0;
  return summary;
}

}  // namespace mlid

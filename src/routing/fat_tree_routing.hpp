// Shared machinery for destination-based routing on IBFT(m, n).
//
// Both SLID and MLID build their LFTs from the same two closed forms
// (paper Section 4.3):
//   Case 1 (destination below this switch):      k = p_l + 1
//   Case 2 (forward upward): k = floor((lid-1) / (m/2)^(n-1-l)) mod (m/2)
//                                + m/2 + 1
// They differ only in the LMC (how many low bits of lid-1 encode a path
// offset) and in the path-selection rule.
#pragma once

#include "routing/scheme.hpp"
#include "topology/properties.hpp"

namespace mlid {

class FatTreeRouting : public RoutingScheme, public LftFormula {
 public:
  FatTreeRouting(const FatTreeParams& params, Lmc lmc);

  [[nodiscard]] Lmc lmc() const noexcept final { return lmc_; }

  [[nodiscard]] LidRange lids_of(NodeId node) const final;
  [[nodiscard]] NodeId node_of_lid(Lid lid) const final;
  [[nodiscard]] Lft build_lft(SwitchId sw) const final;
  [[nodiscard]] Lid max_lid() const final;

  /// Both closed forms are total over the assigned LID range, so the
  /// forwarding tables need no dense materialization (CompactLft).
  [[nodiscard]] const LftFormula* lft_formula() const noexcept final {
    return this;
  }
  [[nodiscard]] PortId formula_port(SwitchId sw, Lid lid) const final;

  [[nodiscard]] const FatTreeParams& params() const noexcept {
    return params_;
  }

  /// The up/down decision for one (switch, DLID) pair; exposed so tests can
  /// probe Equations (1) and (2) directly.
  [[nodiscard]] PortId output_port(const SwitchLabel& sw, Lid lid) const;

 protected:
  FatTreeParams params_;
  Lmc lmc_;

 private:
  /// Per-switch labels, precomputed so formula_port needs no id -> label
  /// decomposition on the per-lookup path.
  std::vector<SwitchLabel> switch_labels_;
};

/// Single-LID baseline: one LID per node (PID + 1); forwarding tables still
/// stripe *destinations* across the up ports, but every (source, dest) pair
/// shares one path, so concurrent senders to one node converge early.
class SlidRouting final : public FatTreeRouting {
 public:
  explicit SlidRouting(const FatTreeParams& params)
      : FatTreeRouting(params, Lmc{0}) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "SLID";
  }

  /// One LID per node: the DLID is always the node's (base) LID.
  [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const override;
};

/// MLID with a reduced LMC ("partial multipathing"): every node owns
/// 2^lmc <= (m/2)^(n-1) LIDs and sources spread over rank mod 2^lmc.
/// lmc = 0 degenerates to SLID and lmc = (n-1) log2(m/2) to full MLID;
/// intermediate values trade LID-space consumption against path diversity
/// (the ablation the paper leaves implicit in its LMC discussion).
class PartialMlidRouting final : public FatTreeRouting {
 public:
  PartialMlidRouting(const FatTreeParams& params, Lmc lmc)
      : FatTreeRouting(params, lmc) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "PartialMLID";
  }

  [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const override;
};

/// Multiple-LID scheme (the paper's contribution): every node owns
/// 2^LMC = (m/2)^(n-1) LIDs; a source selects
///   DLID = BaseLID(dst) + rank(gcpg(x . p_alpha, alpha + 1), src)
/// which bijectively spreads the senders of a subgroup over the distinct
/// least common ancestors.
class MlidRouting final : public FatTreeRouting {
 public:
  explicit MlidRouting(const FatTreeParams& params)
      : FatTreeRouting(params, params.mlid_lmc()) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "MLID";
  }

  [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const override;
};

}  // namespace mlid

#include "routing/path.hpp"

#include <sstream>

namespace mlid {

CompiledRoutes::CompiledRoutes(const FatTreeFabric& fabric,
                               const RoutingScheme& scheme)
    : max_lid_(scheme.max_lid()) {
  const auto count = fabric.params().num_switches();
  lfts_.reserve(count);
  const LftFormula* formula = scheme.lft_formula();
  for (SwitchId sw = 0; sw < count; ++sw) {
    if (formula) {
      // The closed forms route every LID in the contiguous assigned range
      // [1, max_lid], so the base entry count is max_lid (verified against
      // the materialized tables by tests/ib/compact_lft_test.cpp).
      lfts_.emplace_back(formula, sw, max_lid_,
                         static_cast<std::size_t>(max_lid_));
    } else {
      lfts_.emplace_back(scheme.build_lft(sw));
    }
  }
}

PathTrace trace_path(const FatTreeFabric& ft, const CompiledRoutes& routes,
                     NodeId src, Lid dlid, int max_hops) {
  PathTrace trace;
  const Fabric& g = ft.fabric();
  DeviceId current = ft.node_device(src);
  PortId out = 1;  // the endnode's single endport
  for (int hop = 0; hop < max_hops; ++hop) {
    trace.hops.push_back(PathHop{current, out});
    const PortRef next = g.peer_of(current, out);
    MLID_ASSERT(next.valid(), "walked onto an unconnected port");
    current = next.device;
    const Device& device = g.device(current);
    if (device.kind() == DeviceKind::kEndnode) {
      trace.terminal = current;
      trace.complete = true;
      return trace;
    }
    const CompactLft& lft = routes.lft(device.switch_id);
    out = lft.find(dlid);
    if (out == CompactLft::kNoEntry) {
      trace.terminal = current;
      return trace;  // incomplete: the switch cannot route this DLID
    }
    if (!device.port_connected(out)) {
      trace.terminal = current;
      return trace;  // incomplete: LFT points into the void
    }
  }
  trace.terminal = current;
  return trace;  // incomplete: hop limit (cycle) reached
}

std::string to_string(const FatTreeFabric& ft, const PathTrace& trace) {
  const Fabric& g = ft.fabric();
  std::ostringstream os;
  for (std::size_t i = 0; i < trace.hops.size(); ++i) {
    const auto& hop = trace.hops[i];
    if (i) os << " -> ";
    os << g.device(hop.device).name() << ":" << int(hop.out_port);
  }
  if (trace.terminal != kInvalidDevice) {
    os << " -> " << g.device(trace.terminal).name();
  }
  if (!trace.complete) os << " [INCOMPLETE]";
  return os.str();
}

}  // namespace mlid

// Static (analytic) link-load analysis.
//
// Given a compiled routing and a traffic matrix, walks every (source,
// destination) path once and accumulates the expected load on each directed
// link -- the closed-form counterpart to running the simulator.  This is
// how the imbalance the paper illustrates in Figures 8/9 can be *predicted*
// without simulation: under SLID the flows of a whole subtree pile onto one
// ascent, under MLID they spread bijectively.
#pragma once

#include <vector>

#include "routing/path.hpp"

namespace mlid {

/// Row-normalized traffic matrix: rate(src, dst) is the fraction of src's
/// injection bandwidth directed at dst (rows sum to 1; diagonal is 0).
class TrafficMatrix {
 public:
  static TrafficMatrix uniform(std::uint32_t num_nodes);
  static TrafficMatrix centric(std::uint32_t num_nodes, NodeId hot,
                               double hot_fraction);
  static TrafficMatrix permutation(const std::vector<NodeId>& dst_of_src);

  [[nodiscard]] std::uint32_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] double rate(NodeId src, NodeId dst) const {
    MLID_EXPECT(src < n_ && dst < n_, "node out of range");
    return rates_[static_cast<std::size_t>(src) * n_ + dst];
  }

 private:
  explicit TrafficMatrix(std::uint32_t n)
      : n_(n), rates_(static_cast<std::size_t>(n) * n, 0.0) {}
  void set(NodeId src, NodeId dst, double rate) {
    rates_[static_cast<std::size_t>(src) * n_ + dst] = rate;
  }

  std::uint32_t n_;
  std::vector<double> rates_;
};

/// Expected load on one directed link, in units of one node's injection
/// bandwidth (a value of 1.0 means the link is fully booked when every node
/// injects at full rate).
struct PredictedLoad {
  DeviceId dev = kInvalidDevice;  ///< transmitting device
  PortId port = 0;
  double load = 0.0;
};

/// Summary statistics of a prediction (inter-switch links only unless
/// stated otherwise).
struct LoadSummary {
  double max_load = 0.0;   ///< the bottleneck link
  double mean_load = 0.0;
  double stddev_load = 0.0;
  /// Offered-load fraction at which the bottleneck link saturates
  /// (1 / max_load, capped at 1); an upper bound on achievable throughput.
  double saturation_bound = 0.0;
};

class LoadAnalysis {
 public:
  LoadAnalysis(const FatTreeFabric& fabric, const RoutingScheme& scheme,
               const CompiledRoutes& routes);

  /// Expected load of every directed link under the matrix, in
  /// deterministic (device, port) order.  Endnode->switch links included.
  [[nodiscard]] std::vector<PredictedLoad> predict(
      const TrafficMatrix& matrix) const;

  /// Summary over the *inter-switch* links of a prediction.
  [[nodiscard]] LoadSummary summarize(
      const std::vector<PredictedLoad>& loads) const;

 private:
  const FatTreeFabric* fabric_;
  const RoutingScheme* scheme_;
  const CompiledRoutes* routes_;
};

}  // namespace mlid

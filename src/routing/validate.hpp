// Routing validation: functional correctness and deadlock-freedom of a
// compiled scheme, checked exhaustively over all (source, DLID) pairs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "routing/path.hpp"

namespace mlid {

struct RoutingReport {
  std::vector<std::string> problems;
  std::uint64_t paths_checked = 0;
  [[nodiscard]] bool ok() const noexcept { return problems.empty(); }
};

/// For every source and every LID of every destination: the LFT walk must
/// terminate at the owning node, be minimal (2(n - alpha) links), visit no
/// device twice, and ascend-then-descend (up*/down*).
RoutingReport verify_all_paths(const FatTreeFabric& fabric,
                               const RoutingScheme& scheme,
                               const CompiledRoutes& routes,
                               int max_problems = 20);

/// Same walk checks without the minimal-length requirement: the contract
/// for *degraded* fabrics, where legal up*/down* detours are expected.
RoutingReport verify_all_paths_relaxed(const FatTreeFabric& fabric,
                                       const RoutingScheme& scheme,
                                       const CompiledRoutes& routes,
                                       int max_problems = 20);

/// The MLID spreading property (Section 4.2): for a fixed destination,
/// sources in the same gcp subgroup must be routed through pairwise
/// distinct least common ancestors.  (SLID intentionally fails this.)
RoutingReport verify_lca_spreading(const FatTreeFabric& fabric,
                                   const RoutingScheme& scheme,
                                   const CompiledRoutes& routes,
                                   int max_problems = 20);

/// Channel-dependency-graph cycle check over every (source, DLID) path:
/// acyclic CDG implies deadlock-free deterministic routing (Duato).
RoutingReport verify_deadlock_free(const FatTreeFabric& fabric,
                                   const RoutingScheme& scheme,
                                   const CompiledRoutes& routes);

}  // namespace mlid

#include "routing/registry.hpp"

#include <cctype>

#include "common/expect.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/updown.hpp"

namespace mlid {
namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

SchemeRegistry& SchemeRegistry::instance() {
  static SchemeRegistry reg = [] {
    SchemeRegistry r;
    // Seed keys 0 and 1 reproduce the retired SchemeKind enum values, so
    // sweep_point_seed -- and therefore every published BENCH number --
    // survived the enum-to-registry migration unchanged.
    r.add("SLID", 0, [](const FatTreeFabric& f) {
      return std::unique_ptr<RoutingScheme>(
          std::make_unique<SlidRouting>(f.params()));
    });
    r.add("MLID", 1, [](const FatTreeFabric& f) {
      return std::unique_ptr<RoutingScheme>(
          std::make_unique<MlidRouting>(f.params()));
    });
    r.add("UPDN", 2, [](const FatTreeFabric& f) {
      return std::unique_ptr<RoutingScheme>(std::make_unique<UpDownRouting>(
          f, f.params().mlid_lmc()));
    });
    r.add("PartialMLID-lmc1", 3, [](const FatTreeFabric& f) {
      return std::unique_ptr<RoutingScheme>(
          std::make_unique<PartialMlidRouting>(f.params(), Lmc{1}));
    });
    r.add("PartialMLID-lmc2", 4, [](const FatTreeFabric& f) {
      return std::unique_ptr<RoutingScheme>(
          std::make_unique<PartialMlidRouting>(f.params(), Lmc{2}));
    });
    return r;
  }();
  return reg;
}

const SchemeRegistry::Entry* SchemeRegistry::find(
    std::string_view name) const noexcept {
  for (const Entry& e : entries_) {
    if (iequals(e.name, name)) return &e;
  }
  return nullptr;
}

void SchemeRegistry::add(std::string name, std::uint64_t seed_key,
                         Factory factory) {
  MLID_EXPECT(!name.empty(), "scheme name must be non-empty");
  MLID_EXPECT(factory != nullptr, "scheme factory must be callable");
  if (find(name) != nullptr) {
    const std::string msg = "scheme '" + name + "' is already registered";
    MLID_EXPECT(false, msg.c_str());
  }
  for (const Entry& e : entries_) {
    if (e.seed_key == seed_key) {
      const std::string msg = "seed key " + std::to_string(seed_key) +
                              " is already taken by scheme '" + e.name +
                              "' (seed keys pin sweep seeds and must be "
                              "unique)";
      MLID_EXPECT(false, msg.c_str());
    }
  }
  entries_.push_back(Entry{std::move(name), seed_key, std::move(factory)});
}

bool SchemeRegistry::contains(std::string_view name) const noexcept {
  return find(name) != nullptr;
}

std::unique_ptr<RoutingScheme> SchemeRegistry::make(
    std::string_view name, const FatTreeFabric& fabric) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    const std::string msg = "unknown routing scheme '" + std::string(name) +
                            "' (registered: " + listing() + ")";
    MLID_EXPECT(false, msg.c_str());
  }
  std::unique_ptr<RoutingScheme> scheme = e->factory(fabric);
  MLID_EXPECT(scheme != nullptr, "scheme factory returned nullptr");
  return scheme;
}

std::uint64_t SchemeRegistry::seed_key(std::string_view name) const {
  const Entry* e = find(name);
  if (e == nullptr) {
    const std::string msg = "unknown routing scheme '" + std::string(name) +
                            "' (registered: " + listing() + ")";
    MLID_EXPECT(false, msg.c_str());
  }
  return e->seed_key;
}

std::vector<std::string> SchemeRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const Entry& e : entries_) out.push_back(e.name);
  return out;
}

std::string SchemeRegistry::listing() const {
  std::string out;
  for (const Entry& e : entries_) {
    if (!out.empty()) out += ", ";
    out += e.name;
  }
  return out;
}

std::unique_ptr<RoutingScheme> make_scheme(std::string_view name,
                                           const FatTreeFabric& fabric) {
  return SchemeRegistry::instance().make(name, fabric);
}

std::uint64_t scheme_seed_key(std::string_view name) {
  return SchemeRegistry::instance().seed_key(name);
}

std::string scheme_listing() {
  return SchemeRegistry::instance().listing();
}

}  // namespace mlid

// Compiled routes (all LFTs of a subnet) and LFT-walking path resolution.
#pragma once

#include <string>
#include <vector>

#include "routing/scheme.hpp"
#include "topology/builder.hpp"

namespace mlid {

/// All forwarding state of a routed subnet: one LFT per switch, stored
/// compactly (formula-backed for schemes with a closed form, dense
/// otherwise).  When the scheme supplies an LftFormula, the scheme must
/// outlive the routes — the Subnet owns both in the right order.
class CompiledRoutes {
 public:
  CompiledRoutes(const FatTreeFabric& fabric, const RoutingScheme& scheme);

  [[nodiscard]] const CompactLft& lft(SwitchId sw) const {
    MLID_EXPECT(sw < lfts_.size(), "switch id out of range");
    return lfts_[sw];
  }
  [[nodiscard]] Lid max_lid() const noexcept { return max_lid_; }
  [[nodiscard]] std::size_t num_switches() const noexcept {
    return lfts_.size();
  }
  [[nodiscard]] const std::vector<CompactLft>& tables() const noexcept {
    return lfts_;
  }
  /// Heap bytes of all forwarding state (excluding sizeof(*this)).
  [[nodiscard]] std::size_t memory_bytes() const noexcept {
    std::size_t n = lfts_.capacity() * sizeof(CompactLft);
    for (const auto& t : lfts_) n += t.memory_bytes();
    return n;
  }

 private:
  std::vector<CompactLft> lfts_;
  Lid max_lid_;
};

/// One hop of a resolved path.
struct PathHop {
  DeviceId device;   ///< the device the packet *leaves*
  PortId out_port;   ///< port it leaves through
};

/// A resolved source->destination walk.  `complete` is false if the walk
/// fell off the LFTs or exceeded the hop limit (always a routing bug).
struct PathTrace {
  std::vector<PathHop> hops;  ///< first hop leaves the source endnode
  DeviceId terminal = kInvalidDevice;
  bool complete = false;

  /// Number of links traversed.
  [[nodiscard]] int num_links() const noexcept {
    return static_cast<int>(hops.size());
  }
};

/// Walk the fabric from `src`'s endport following LFT entries for `dlid`
/// until an endnode is reached (or the hop limit trips).
PathTrace trace_path(const FatTreeFabric& fabric, const CompiledRoutes& routes,
                     NodeId src, Lid dlid, int max_hops = 64);

/// Pretty "P(000) -> SW<00,2>:5 -> ..." rendering for diagnostics.
std::string to_string(const FatTreeFabric& fabric, const PathTrace& trace);

}  // namespace mlid

// Acceptance gate for the sharded conservative-sync engine: for every shard
// count and every thread count, a sharded run must produce results
// bit-identical to a sequential run under the canonical event order --
// open-loop, burst, live-SM fault, and congestion-control scenarios alike.
// Comparison goes through the JSON export, which serializes every public
// result field (including Welford-derived latency moments, so float rounding
// is part of the contract).
#include <gtest/gtest.h>

#include <cstdint>

#include "harness/report.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quick_canonical() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 3;
  // The sequential oracle must use the same dispatch order the sharded
  // engine forces internally; kFifo ties depend on scheduling order, which
  // no partitioned run can reproduce.
  cfg.event_order = EventOrder::kCanonical;
  return cfg;
}

TEST(ShardParity, CanonicalOrderIsContentDetermined) {
  // Same-timestamp events must pop in (kind, dev, port, vl, corder) order
  // regardless of push order, on both queue structures.
  for (const auto kind : {EventQueueKind::kHeap, EventQueueKind::kLadder}) {
    EventQueue q(kind, EventOrder::kCanonical);
    q.push(10, EventKind::kTailOut, 2, 1);
    q.push(10, EventKind::kHeadArrive, 5, 1);
    q.push(10, EventKind::kHeadArrive, 3, 2, 0, kInvalidPacket, 1);
    q.push(10, EventKind::kHeadArrive, 3, 1, 0, kInvalidPacket, 4);
    q.push(5, EventKind::kTailOut, 9, 0);
    const Event first = q.pop();
    EXPECT_EQ(first.time, 5);
    EXPECT_EQ(first.dev, 9u);
    const Event a = q.pop();  // kHeadArrive sorts before kTailOut
    EXPECT_EQ(a.kind, EventKind::kHeadArrive);
    EXPECT_EQ(a.dev, 3u);
    EXPECT_EQ(int{a.port}, 1);
    const Event b = q.pop();
    EXPECT_EQ(b.dev, 3u);
    EXPECT_EQ(int{b.port}, 2);
    const Event c = q.pop();
    EXPECT_EQ(c.dev, 5u);
    const Event d = q.pop();
    EXPECT_EQ(d.kind, EventKind::kTailOut);
    EXPECT_EQ(d.dev, 2u);
    EXPECT_TRUE(q.empty());
  }
}

TEST(ShardParity, OpenLoopRunsAreBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  for (const double load : {0.2, 0.6, 0.9}) {
    const SimResult oracle =
        Simulation::open_loop(subnet, quick_canonical(), traffic, load).run();
    EXPECT_GT(oracle.packets_delivered, 0u);
    for (const std::uint32_t shards : {1u, 2u, 4u}) {
      ShardedSimulation sim = ShardedSimulation::open_loop(
          subnet, quick_canonical(), traffic, load, {shards, 0});
      EXPECT_EQ(sim.num_shards(), shards);
      const SimResult sharded = sim.run();
      EXPECT_EQ(to_json(oracle), to_json(sharded))
          << "load " << load << " shards " << shards;
    }
  }
}

TEST(ShardParity, ThreadCountDoesNotChangeResults) {
  // Threads only change which worker drains which shard queue; any count
  // must reproduce the oracle bit-for-bit.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  const SimResult oracle =
      Simulation::open_loop(subnet, quick_canonical(), traffic, 0.6).run();
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, quick_canonical(), traffic, 0.6, {4, threads});
    const SimResult sharded = sim.run();
    EXPECT_GE(sim.threads_used(), 1u);
    EXPECT_LE(sim.threads_used(), 4u);
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "threads " << threads;
  }
}

TEST(ShardParity, BurstRunsAreBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(16, 512);
  const BurstResult oracle =
      Simulation::burst(subnet, quick_canonical(), workload)
          .run_to_completion();
  EXPECT_GT(oracle.messages, 0u);
  EXPECT_EQ(oracle.events_processed, oracle.events_scheduled);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const BurstResult sharded =
        ShardedSimulation::burst(subnet, quick_canonical(), workload,
                                 {shards, 0})
            .run_to_completion();
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "shards " << shards;
    EXPECT_EQ(sharded.events_processed, sharded.events_scheduled)
        << "shards " << shards;
  }
}

TEST(ShardParity, LiveSmFaultRunsAreBitIdentical) {
  // The control plane (faults, traps, sweeps, LFT programs) runs as
  // sequential global steps inside the sharded driver; its effects must
  // land identically to the sequential dispatch loop.
  const FatTreeParams params(4, 3);
  auto run = [&](std::uint32_t shards) {
    FatTreeFabric fabric{params};
    const Subnet subnet(fabric, "MLID");
    SubnetManager sm(fabric, subnet);
    const FaultSchedule faults = FaultSchedule::random_uplink_failures(
        fabric, /*count=*/2, /*fail_at=*/8'000, /*seed=*/5, /*recover_at=*/
        18'000);
    const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 4};
    if (shards == 0) {
      return Simulation::open_loop(subnet, quick_canonical(), traffic, 0.6,
                                   {&sm, faults})
          .run();
    }
    return ShardedSimulation::open_loop(subnet, quick_canonical(), traffic,
                                        0.6, {shards, 0}, {&sm, faults})
        .run();
  };
  const SimResult oracle = run(0);
  // Meaningful scenario: the fault machinery actually fired.
  EXPECT_GT(oracle.sm_traps, 0u);
  EXPECT_GT(oracle.packets_dropped, 0u);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    EXPECT_EQ(to_json(oracle), to_json(run(shards))) << "shards " << shards;
  }
}

TEST(ShardParity, CongestionControlRunsAreBitIdentical) {
  // CC couples shards through BECN echoes (delivered-data events at the
  // *source* node) and per-node CCT state; the lookahead shrinks to the
  // BECN echo delay and the owner-exclusive CC state merges at the end.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = quick_canonical();
  cfg.cc.enabled = true;
  // Hot-spot traffic so FECN marking actually triggers.
  const TrafficConfig traffic{TrafficKind::kCentric, 0.4, 3, 9};
  const SimResult oracle =
      Simulation::open_loop(subnet, cfg, traffic, 0.9).run();
  EXPECT_GT(oracle.cc.fecn_marked, 0u);
  EXPECT_GT(oracle.cc.becn_sent, 0u);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const SimResult sharded =
        ShardedSimulation::open_loop(subnet, cfg, traffic, 0.9, {shards, 0})
            .run();
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "shards " << shards;
  }
}

TEST(ShardParity, QueueStatsAccountForEveryEvent) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  ShardedSimulation sim = ShardedSimulation::open_loop(
      subnet, quick_canonical(), traffic, 0.6, {4, 0});
  const SimResult r = sim.run();
  const EventQueueStats stats = sim.queue_stats();
  EXPECT_EQ(stats.events_scheduled, r.events_scheduled);
  EXPECT_EQ(stats.events_processed, r.events_processed);
}

}  // namespace
}  // namespace mlid

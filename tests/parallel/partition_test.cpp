// ShardPlan structural invariants: every device owned by exactly one shard,
// endnodes co-located with their node, subtree locality for non-root
// switches, and a positive lookahead whenever more than one shard exists.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "parallel/partition.hpp"
#include "sim/config.hpp"
#include "topology/builder.hpp"

namespace mlid {
namespace {

TEST(ShardPlan, EveryDeviceAndNodeIsOwned) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const SimConfig cfg;
  for (const std::uint32_t shards : {1u, 2u, 4u, 8u}) {
    const ShardPlan plan = ShardPlan::subtree(fabric, shards, cfg);
    EXPECT_EQ(plan.num_shards, shards);
    ASSERT_EQ(plan.dev_shard.size(), fabric.fabric().num_devices());
    ASSERT_EQ(plan.node_shard.size(), fabric.params().num_nodes());
    for (const std::uint32_t s : plan.dev_shard) EXPECT_LT(s, shards);
    for (const std::uint32_t s : plan.node_shard) EXPECT_LT(s, shards);
    // Node blocks are contiguous and every shard owns at least one node:
    // shard ids along the node axis are non-decreasing and cover [0, shards).
    std::uint32_t prev = 0;
    for (const std::uint32_t s : plan.node_shard) {
      EXPECT_GE(s, prev);
      prev = s;
    }
    EXPECT_EQ(plan.node_shard.front(), 0u);
    EXPECT_EQ(plan.node_shard.back(), shards - 1);
  }
}

TEST(ShardPlan, EndnodeDevicesFollowTheirNode) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const ShardPlan plan = ShardPlan::subtree(fabric, 4, SimConfig{});
  for (NodeId n = 0; n < fabric.params().num_nodes(); ++n) {
    EXPECT_EQ(plan.dev_shard[fabric.node_device(n)], plan.node_shard[n])
        << "node " << n;
  }
}

TEST(ShardPlan, NonRootSwitchesColocateWithLeftmostDescendant) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const ShardPlan plan = ShardPlan::subtree(fabric, 4, SimConfig{});
  const Fabric& fab = fabric.fabric();
  for (DeviceId d = 0; d < fab.num_devices(); ++d) {
    const Device& dev = fab.device(d);
    if (dev.kind() != DeviceKind::kSwitch) continue;
    if (fabric.switch_label(dev.switch_id).level() == 0) continue;
    // Walk down port 1 until an endnode; the switch shares its shard.
    DeviceId cur = d;
    while (fab.device(cur).kind() == DeviceKind::kSwitch) {
      cur = fab.peer_of(cur, 1).device;
    }
    EXPECT_EQ(plan.dev_shard[d], plan.dev_shard[cur]) << "switch dev " << d;
  }
}

TEST(ShardPlan, LookaheadIsPositiveAndShrinksUnderCc) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  SimConfig cfg;
  const ShardPlan plain = ShardPlan::subtree(fabric, 4, cfg);
  EXPECT_EQ(plain.lookahead_ns, cfg.flying_time_ns);
  EXPECT_GE(plain.lookahead_ns, 1);
  cfg.cc.enabled = true;
  const ShardPlan with_cc = ShardPlan::subtree(fabric, 4, cfg);
  EXPECT_LE(with_cc.lookahead_ns, plain.lookahead_ns);
  EXPECT_GE(with_cc.lookahead_ns, 1);
}

}  // namespace
}  // namespace mlid

// Regression coverage for the sharded interval sampler.  The original
// sharded driver silently dropped SimConfig::sample_interval_ns: every
// sharded run came back with an empty timeline while the sequential run
// produced one, so dashboards fed from sharded sweeps lost their
// time-resolved series without any error.  The sampler is now driver-owned
// (windows are clipped at each pending sample time and every shard's gauges
// merge into one TimelineSample), which makes the sharded timeline
// bit-identical to the sequential engine's -- asserted here through the
// JSON export, like the other parity gates.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/expect.hpp"
#include "harness/report.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig sampled_canonical() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 7;
  cfg.event_order = EventOrder::kCanonical;
  cfg.sample_interval_ns = 1'000;
  return cfg;
}

TEST(ShardedTimeline, SampledRunsAreBitIdentical) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  const SimResult oracle =
      Simulation::open_loop(subnet, sampled_canonical(), traffic, 0.6).run();
  ASSERT_TRUE(oracle.timeline.enabled());
  ASSERT_FALSE(oracle.timeline.samples.empty());
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    const SimResult sharded =
        ShardedSimulation::open_loop(subnet, sampled_canonical(), traffic,
                                     0.6, {shards, 0})
            .run();
    // The regression this pins: sharded runs used to come back with
    // timeline.enabled() == false whenever shards > 1.
    EXPECT_TRUE(sharded.timeline.enabled()) << "shards " << shards;
    EXPECT_EQ(sharded.timeline.samples.size(), oracle.timeline.samples.size())
        << "shards " << shards;
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "shards " << shards;
  }
}

TEST(ShardedTimeline, ThreadCountDoesNotChangeSamples) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  const SimResult oracle =
      Simulation::open_loop(subnet, sampled_canonical(), traffic, 0.6).run();
  for (const std::uint32_t threads : {1u, 2u, 4u}) {
    const SimResult sharded =
        ShardedSimulation::open_loop(subnet, sampled_canonical(), traffic,
                                     0.6, {4, threads})
            .run();
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "threads " << threads;
  }
}

TEST(ShardedTimeline, DecimationMatchesSequential) {
  // Force the cap low enough that the sampler decimates mid-run; the
  // driver-owned sampler must reproduce the sequential doubling cadence.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  SimConfig cfg = sampled_canonical();
  cfg.sample_interval_ns = 200;
  cfg.timeline_max_samples = 16;
  const SimResult oracle =
      Simulation::open_loop(subnet, cfg, traffic, 0.6).run();
  ASSERT_GT(oracle.timeline.interval_ns, 200);  // decimation actually fired
  for (const std::uint32_t shards : {2u, 4u}) {
    const SimResult sharded =
        ShardedSimulation::open_loop(subnet, cfg, traffic, 0.6, {shards, 0})
            .run();
    EXPECT_EQ(sharded.timeline.interval_ns, oracle.timeline.interval_ns)
        << "shards " << shards;
    EXPECT_EQ(to_json(oracle), to_json(sharded)) << "shards " << shards;
  }
}

TEST(ShardedTimeline, BurstSamplingIsRejected) {
  // Burst mode has no fixed horizon for the driver to pace samples against;
  // the combination must fail loudly, not silently drop the timeline.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(4, 256);
  SimConfig cfg;
  cfg.event_order = EventOrder::kCanonical;
  cfg.sample_interval_ns = 1'000;
  EXPECT_THROW(ShardedSimulation::burst(subnet, cfg, workload, {2, 0}),
               ContractViolation);
}

}  // namespace
}  // namespace mlid

#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mlid {
namespace {

SimConfig quick() {
  SimConfig cfg;
  cfg.warmup_ns = 4'000;
  cfg.measure_ns = 16'000;
  cfg.seed = 6;
  return cfg;
}

TEST(Saturation, NeighborTrafficIsBoundedByTheCreditLoop) {
  // dst = src ^ 1 gives every pair private links, so the only limit is the
  // single-packet credit loop: the NIC may reinject only after
  // wire + t_fly + t_r + wire + t_fly = 396 ns, i.e. load 256/396 = 0.646.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const double sat = find_saturation_load(
      subnet, quick(), {TrafficKind::kNeighbor, 0, 0, 3});
  EXPECT_GT(sat, 0.55);
  EXPECT_LT(sat, 0.75);
}

TEST(Saturation, DeepBuffersHideTheCreditLoop) {
  // With 4-packet buffers the 140 ns credit bubble is fully pipelined and
  // contention-free traffic keeps up at the full injection rate.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = quick();
  cfg.in_buf_pkts = 4;
  cfg.out_buf_pkts = 4;
  const double sat = find_saturation_load(
      subnet, cfg, {TrafficKind::kNeighbor, 0, 0, 3});
  EXPECT_DOUBLE_EQ(sat, 1.0);
}

TEST(Saturation, PureHotSpotSaturatesNearOneOverN) {
  // Everybody floods node 0: the terminal link splits across N - 1 senders
  // (the hot node's own uniform traffic keeps up separately), so the
  // per-node sustainable load is roughly 1 / (N - 1).
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const double sat = find_saturation_load(
      subnet, quick(), {TrafficKind::kCentric, 1.0, 0, 3});
  EXPECT_GT(sat, 0.02);
  EXPECT_LT(sat, 0.25);
}

TEST(Saturation, MlidSaturatesNoLowerThanSlid) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet mlid(fabric, "MLID");
  const Subnet slid(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 3};
  const double sat_mlid = find_saturation_load(mlid, quick(), traffic);
  const double sat_slid = find_saturation_load(slid, quick(), traffic);
  EXPECT_GE(sat_mlid, sat_slid - 0.03);
}

TEST(Saturation, RejectsBadParameters) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  EXPECT_THROW(find_saturation_load(subnet, quick(),
                                    {TrafficKind::kUniform, 0, 0, 3},
                                    /*slack=*/0.0),
               ContractViolation);
  EXPECT_THROW(find_saturation_load(subnet, quick(),
                                    {TrafficKind::kUniform, 0, 0, 3},
                                    /*slack=*/0.05, /*tolerance=*/1.5),
               ContractViolation);
}

}  // namespace
}  // namespace mlid

#include "harness/cli.hpp"

#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mlid {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  static char name[] = "prog";
  argv.push_back(name);
  for (const char* a : args) {
    argv.push_back(const_cast<char*>(a));
  }
  return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, Defaults) {
  const CliOptions opts = parse({});
  EXPECT_FALSE(opts.quick());
  EXPECT_FALSE(opts.csv());
  EXPECT_EQ(opts.seed(), 1u);
  EXPECT_EQ(opts.threads(), 0u);
  EXPECT_TRUE(opts.positional().empty());
}

TEST(Cli, ParsesFlags) {
  const CliOptions opts =
      parse({"--quick", "--csv", "--seed=99", "--threads=3", "extra"});
  EXPECT_TRUE(opts.quick());
  EXPECT_TRUE(opts.csv());
  EXPECT_EQ(opts.seed(), 99u);
  EXPECT_EQ(opts.threads(), 3u);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "extra");
}

TEST(Cli, QuickModeShrinksAFigureSpec) {
  const CliOptions opts = parse({"--quick", "--seed=5"});
  FigureSpec spec;
  opts.apply(spec);
  EXPECT_EQ(spec.sim.seed, 5u);
  EXPECT_EQ(spec.loads.size(), 3u);
  EXPECT_LT(spec.sim.measure_ns, 80'000);
}

TEST(Cli, NonQuickKeepsTheFullGrid) {
  const CliOptions opts = parse({"--seed=5"});
  FigureSpec spec;
  opts.apply(spec);
  EXPECT_EQ(spec.loads.size(), FigureSpec::kDefaultLoads().size());
  EXPECT_EQ(spec.sim.measure_ns, 80'000);
}

}  // namespace
}  // namespace mlid

#include "harness/cli.hpp"

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "obs/stream.hpp"

namespace mlid {
namespace {

CliOptions parse(std::initializer_list<const char*> args) {
  std::vector<char*> argv;
  static char name[] = "prog";
  argv.push_back(name);
  for (const char* a : args) {
    argv.push_back(const_cast<char*>(a));
  }
  return CliOptions(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, Defaults) {
  const CliOptions opts = parse({});
  EXPECT_FALSE(opts.quick());
  EXPECT_FALSE(opts.csv());
  EXPECT_EQ(opts.seed(), 1u);
  EXPECT_EQ(opts.threads(), 0u);
  EXPECT_TRUE(opts.positional().empty());
}

TEST(Cli, ParsesFlags) {
  const CliOptions opts =
      parse({"--quick", "--csv", "--seed=99", "--threads=3", "extra"});
  EXPECT_TRUE(opts.quick());
  EXPECT_TRUE(opts.csv());
  EXPECT_EQ(opts.seed(), 99u);
  EXPECT_EQ(opts.threads(), 3u);
  ASSERT_EQ(opts.positional().size(), 1u);
  EXPECT_EQ(opts.positional()[0], "extra");
}

TEST(Cli, FaultFlagsDefaultOff) {
  const CliOptions opts = parse({});
  EXPECT_EQ(opts.fail_links(), 0);
  EXPECT_EQ(opts.fail_at_ns(), 20'000);
  EXPECT_EQ(opts.recover_at_ns(), -1);
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  EXPECT_TRUE(opts.fault_schedule(fabric).empty());
}

TEST(Cli, ParsesFaultFlagsBothForms) {
  const CliOptions eq =
      parse({"--fail-links=3", "--fail-at-ns=12000", "--recover-at-ns=50000"});
  EXPECT_EQ(eq.fail_links(), 3);
  EXPECT_EQ(eq.fail_at_ns(), 12'000);
  EXPECT_EQ(eq.recover_at_ns(), 50'000);
  EXPECT_TRUE(eq.positional().empty());

  const CliOptions two = parse({"--fail-links", "3", "--fail-at-ns", "12000"});
  EXPECT_EQ(two.fail_links(), 3);
  EXPECT_EQ(two.fail_at_ns(), 12'000);
  EXPECT_TRUE(two.positional().empty());
}

TEST(Cli, FaultScheduleMatchesFlags) {
  const CliOptions opts =
      parse({"--fail-links=2", "--fail-at-ns=15000", "--recover-at-ns=40000"});
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const FaultSchedule faults = opts.fault_schedule(fabric);
  ASSERT_EQ(faults.size(), 4u);  // 2 failures + 2 recoveries
  EXPECT_TRUE(faults.events()[0].fail);
  EXPECT_EQ(faults.events()[0].at, 15'000);
  EXPECT_FALSE(faults.events()[3].fail);
  EXPECT_EQ(faults.events()[3].at, 40'000);
}

TEST(Cli, EventQueueFlagBothFormsAndDefault) {
  EXPECT_FALSE(parse({}).event_queue().has_value());
  const CliOptions eq = parse({"--event-queue=heap"});
  ASSERT_TRUE(eq.event_queue().has_value());
  EXPECT_EQ(*eq.event_queue(), EventQueueKind::kHeap);
  const CliOptions two = parse({"--event-queue", "ladder"});
  ASSERT_TRUE(two.event_queue().has_value());
  EXPECT_EQ(*two.event_queue(), EventQueueKind::kLadder);
}

TEST(Cli, ShardsFlagBothFormsAndDefault) {
  EXPECT_EQ(parse({}).shards(), 1u);
  EXPECT_EQ(parse({"--shards=4"}).shards(), 4u);
  EXPECT_EQ(parse({"--shards", "2"}).shards(), 2u);
}

TEST(Cli, SweepOptionsMirrorTheFlags) {
  const CliOptions opts =
      parse({"--quick", "--threads=3", "--shards=2", "--event-queue=heap",
             "--no-telemetry"});
  const SweepOptions sweep = opts.sweep_options();
  EXPECT_EQ(sweep.threads, 3u);
  EXPECT_EQ(sweep.shards, 2u);
  EXPECT_TRUE(sweep.quick);
  ASSERT_TRUE(sweep.telemetry.has_value());
  EXPECT_FALSE(*sweep.telemetry);
  ASSERT_TRUE(sweep.event_queue.has_value());
  EXPECT_EQ(*sweep.event_queue, EventQueueKind::kHeap);

  // Unset flags stay nullopt so the spec's own settings win.
  const SweepOptions defaults = parse({}).sweep_options();
  EXPECT_FALSE(defaults.telemetry.has_value());
  EXPECT_FALSE(defaults.event_queue.has_value());
}

TEST(Cli, ApplyPropagatesSimOverrides) {
  const CliOptions opts = parse({"--event-queue=heap", "--no-telemetry"});
  FigureSpec spec;
  opts.apply(spec);
  EXPECT_EQ(spec.sim.event_queue, EventQueueKind::kHeap);
  EXPECT_FALSE(spec.sim.telemetry);
}

TEST(Cli, QuickModeShrinksAFigureSpec) {
  const CliOptions opts = parse({"--quick", "--seed=5"});
  FigureSpec spec;
  opts.apply(spec);
  EXPECT_EQ(spec.sim.seed, 5u);
  EXPECT_EQ(spec.loads.size(), 3u);
  EXPECT_LT(spec.sim.measure_ns, 80'000);
}

TEST(Cli, NonQuickKeepsTheFullGrid) {
  const CliOptions opts = parse({"--seed=5"});
  FigureSpec spec;
  opts.apply(spec);
  EXPECT_EQ(spec.loads.size(), FigureSpec::kDefaultLoads().size());
  EXPECT_EQ(spec.sim.measure_ns, 80'000);
}

// Malformed input must exit non-zero with a diagnostic, never be silently
// coerced (--seed=abc used to parse as 0, --threads=4x as 4).
using CliDeathTest = ::testing::Test;

TEST(CliDeathTest, NonNumericValueIsRejected) {
  EXPECT_EXIT(parse({"--seed=abc"}), ::testing::ExitedWithCode(2),
              "--seed");
}

TEST(CliDeathTest, TrailingGarbageAfterNumberIsRejected) {
  EXPECT_EXIT(parse({"--threads=4x"}), ::testing::ExitedWithCode(2),
              "--threads");
  EXPECT_EXIT(parse({"--fail-at-ns=12000ns"}), ::testing::ExitedWithCode(2),
              "--fail-at-ns");
}

TEST(CliDeathTest, EmptyAndMissingValuesAreRejected) {
  EXPECT_EXIT(parse({"--seed="}), ::testing::ExitedWithCode(2), "--seed");
  EXPECT_EXIT(parse({"--fail-links"}), ::testing::ExitedWithCode(2),
              "--fail-links");
}

TEST(CliDeathTest, OutOfRangeValueIsRejected) {
  // One past UINT64_MAX.
  EXPECT_EXIT(parse({"--seed=18446744073709551616"}),
              ::testing::ExitedWithCode(2), "--seed");
  // Negative where the flag's type is unsigned.
  EXPECT_EXIT(parse({"--threads=-1"}), ::testing::ExitedWithCode(2),
              "--threads");
}

TEST(CliDeathTest, ZeroParallelismIsRejected) {
  // An explicit --threads=0 must not silently mean "hardware concurrency",
  // and a zero shard count has no meaning at all.
  EXPECT_EXIT(parse({"--threads=0"}), ::testing::ExitedWithCode(2),
              "--threads must be >= 1");
  EXPECT_EXIT(parse({"--shards=0"}), ::testing::ExitedWithCode(2),
              "--shards must be >= 1");
  EXPECT_EXIT(parse({"--shards=-2"}), ::testing::ExitedWithCode(2),
              "--shards");
}

TEST(CliDeathTest, BogusEventQueueKindIsRejected) {
  EXPECT_EXIT(parse({"--event-queue=bogus"}), ::testing::ExitedWithCode(2),
              "--event-queue");
  EXPECT_EXIT(parse({"--event-queue="}), ::testing::ExitedWithCode(2),
              "heap or ladder");
}

TEST(CliDeathTest, UnknownFlagListsTheKnownOnes) {
  EXPECT_EXIT(parse({"--quik"}), ::testing::ExitedWithCode(2),
              "unknown flag '--quik'");
  // The diagnostic must teach: it lists the flags that do exist.
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2), "--seed=N");
}

TEST(CliDeathTest, SequentialOnlyObservabilityRejectsShards) {
  // Per-event observability has no sharded implementation; combining it
  // with --shards>1 used to silently produce empty traces.  It must exit 2
  // with a diagnostic naming the conflicting flag.
  EXPECT_EXIT(parse({"--shards=2", "--chrome-trace=/tmp/t.json"}),
              ::testing::ExitedWithCode(2), "--chrome-trace is sequential-only");
  EXPECT_EXIT(parse({"--shards=2", "--trace-packets=8"}),
              ::testing::ExitedWithCode(2), "--trace-packets is sequential-only");
  // Flag order must not matter.
  EXPECT_EXIT(parse({"--trace-packets=8", "--shards", "4"}),
              ::testing::ExitedWithCode(2), "sequential-only");
}

TEST(Cli, FlightRecorderAllowedWithShards) {
  // The flight recorder is per-device and every device is owned by exactly
  // one shard, so sharded runs keep valid rings (dump tagged with the
  // owning shard).  The flag must parse cleanly under --shards > 1.
  const CliOptions opts = parse({"--shards=4", "--flight-recorder=64"});
  EXPECT_EQ(opts.shards(), 4u);
  EXPECT_EQ(opts.flight_recorder(), 64u);
}

TEST(Cli, ProfileAndMetricsFlags) {
  EXPECT_FALSE(parse({}).profile());
  EXPECT_FALSE(parse({}).progress());
  EXPECT_TRUE(parse({}).metrics_out().empty());
  EXPECT_EQ(parse({}).metrics_interval_ns(), 10'000);
  const CliOptions opts =
      parse({"--profile", "--progress", "--metrics-out=/tmp/m.jsonl",
             "--metrics-interval-ns=2500"});
  EXPECT_TRUE(opts.profile());
  EXPECT_TRUE(opts.progress());
  EXPECT_EQ(opts.metrics_out(), "/tmp/m.jsonl");
  EXPECT_EQ(opts.metrics_interval_ns(), 2500);
  // Profiling and streaming are shard-safe by design: the combination
  // parses (the sharded driver owns both).
  const CliOptions sharded = parse({"--shards=4", "--profile",
                                    "--metrics-out=/tmp/m.jsonl"});
  EXPECT_EQ(sharded.shards(), 4u);
  EXPECT_TRUE(sharded.profile());
}

TEST(CliDeathTest, MetricsFlagValidation) {
  EXPECT_EXIT(parse({"--metrics-out="}), ::testing::ExitedWithCode(2),
              "--metrics-out needs a file path");
  EXPECT_EXIT(parse({"--metrics-interval-ns=0"}), ::testing::ExitedWithCode(2),
              "--metrics-interval-ns must be >= 1");
  EXPECT_EXIT(parse({"--metrics-interval-ns=-5"}),
              ::testing::ExitedWithCode(2),
              "--metrics-interval-ns must be >= 1");
  EXPECT_EXIT(parse({"--metrics-interval-ns=abc"}),
              ::testing::ExitedWithCode(2), "base-10 integer");
  // An unopenable metrics path is a usage error too, surfaced when the
  // streamer is built rather than silently dropping the stream.
  EXPECT_EXIT(
      parse({"--metrics-out=/nonexistent-dir/m.jsonl"}).make_metrics_streamer(),
      ::testing::ExitedWithCode(2), "--metrics-out");
}

TEST(Cli, SequentialOnlyObservabilityAllowedWithOneShard) {
  const CliOptions opts =
      parse({"--shards=1", "--trace-packets=8", "--flight-recorder=64",
             "--chrome-trace=/tmp/t.json", "--sample-interval-ns=500"});
  EXPECT_EQ(opts.shards(), 1u);
  EXPECT_EQ(opts.trace_packets(), 8u);
}

TEST(Cli, IntervalSamplerAllowedWithShards) {
  // The interval sampler is driver-owned in sharded runs: the combination
  // is supported and must parse cleanly.
  const CliOptions opts = parse({"--shards=4", "--sample-interval-ns=500"});
  EXPECT_EQ(opts.shards(), 4u);
  EXPECT_EQ(opts.sample_interval_ns(), 500);
}

TEST(CliDeathTest, HelpPrintsUsageAndExitsZero) {
  EXPECT_EXIT(parse({"--help"}), ::testing::ExitedWithCode(0), "");
}

TEST(Cli, SchemeAndPolicyFlagsBothFormsAndDefault) {
  EXPECT_FALSE(parse({}).scheme().has_value());
  EXPECT_FALSE(parse({}).policy().has_value());
  EXPECT_FALSE(parse({}).vl_map().has_value());
  const CliOptions eq =
      parse({"--scheme=UPDN", "--policy=adaptive", "--vl-map=dest-mod"});
  EXPECT_EQ(eq.scheme(), "UPDN");
  EXPECT_EQ(eq.policy(), "adaptive");
  EXPECT_EQ(eq.vl_map(), "dest-mod");
  const CliOptions two = parse({"--scheme", "MLID", "--policy", "adaptive"});
  EXPECT_EQ(two.scheme(), "MLID");
  EXPECT_EQ(two.policy(), "adaptive");
  // Registry lookup is case-insensitive; the flag keeps the user's casing.
  EXPECT_EQ(parse({"--scheme=mlid"}).scheme(), "mlid");
}

TEST(Cli, ApplyPropagatesSchemeAndPolicy) {
  const CliOptions opts =
      parse({"--scheme=SLID", "--policy=adaptive", "--vl-map=flow-hash"});
  FigureSpec spec;
  opts.apply(spec);
  ASSERT_EQ(spec.schemes.size(), 1u);
  EXPECT_EQ(spec.schemes[0], "SLID");
  EXPECT_EQ(spec.sim.policy.forwarding, "adaptive");
  EXPECT_EQ(spec.sim.policy.vl_map, "flow-hash");
  // Without the flags the spec keeps its own grid and defaults.
  FigureSpec untouched;
  parse({}).apply(untouched);
  EXPECT_EQ(untouched.schemes.size(), 2u);
  EXPECT_EQ(untouched.sim.policy, PolicyConfig{});
}

// Unknown registry names must exit 2 and teach: the diagnostic carries the
// live registry listing, so the user sees exactly what this build offers.
TEST(CliDeathTest, UnknownSchemeExitsWithTheRegistryListing) {
  EXPECT_EXIT(parse({"--scheme=bogus"}), ::testing::ExitedWithCode(2),
              "unknown routing scheme 'bogus'");
  EXPECT_EXIT(parse({"--scheme=bogus"}), ::testing::ExitedWithCode(2),
              "registered: SLID, MLID, UPDN");
}

TEST(CliDeathTest, UnknownPolicyExitsWithTheRegistryListing) {
  EXPECT_EXIT(parse({"--policy=bogus"}), ::testing::ExitedWithCode(2),
              "unknown forwarding policy 'bogus'");
  EXPECT_EXIT(parse({"--policy=bogus"}), ::testing::ExitedWithCode(2),
              "registered: deterministic, adaptive");
}

TEST(CliDeathTest, UnknownVlMapExitsWithTheRegistryListing) {
  EXPECT_EXIT(parse({"--vl-map=bogus"}), ::testing::ExitedWithCode(2),
              "unknown vl map 'bogus'");
  EXPECT_EXIT(parse({"--vl-map=bogus"}), ::testing::ExitedWithCode(2),
              "registered: none, dest-mod, flow-hash");
}

TEST(CliDeathTest, UsageTextEnumeratesTheRegistries) {
  // Every usage error (and --help, which prints the same text to stdout)
  // ends with the three live registry listings.
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "registered schemes: ");
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "forwarding policies: ");
  EXPECT_EXIT(parse({"--bogus"}), ::testing::ExitedWithCode(2),
              "vl maps: ");
}

}  // namespace
}  // namespace mlid

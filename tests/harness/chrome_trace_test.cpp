// The Chrome trace-event exporter: structural JSON validity and the four
// tracks (packet spans, control plane, sampled counters, flight recorder)
// from a fully instrumented fault run.
#include <gtest/gtest.h>

#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "harness/chrome_trace.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

// Minimal structural check: braces and brackets balance outside strings.
void expect_balanced(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    else if (c == '{' || c == '[') ++depth;
    else if (c == '}' || c == ']') --depth;
    ASSERT_GE(depth, 0) << "underflow at offset " << i;
  }
  EXPECT_FALSE(in_string);
  EXPECT_EQ(depth, 0);
}

struct InstrumentedRun {
  InstrumentedRun() : fabric{FatTreeParams(4, 3)},
                      subnet(fabric, "MLID"),
                      sm(fabric, subnet) {
    // Long enough for the trap -> sweep -> program pipeline to finish (a
    // (4,3) sweep costs ~12 us of probe SMPs), so the control track holds
    // the full SM story.  Stride 5 is coprime with the 16-node generation
    // round-robin, so traced packets rotate through every source.
    const FaultSchedule faults = FaultSchedule::random_uplink_failures(
        fabric, /*count=*/2, /*fail_at=*/8'000, /*seed=*/5,
        /*recover_at=*/30'000);
    SimConfig cfg;
    cfg.warmup_ns = 5'000;
    cfg.measure_ns = 55'000;
    cfg.seed = 3;
    cfg.sample_interval_ns = 1'000;
    cfg.trace_packets = 64;
    cfg.trace_stride = 5;
    cfg.trace_control = true;
    cfg.flight_recorder_depth = 16;
    sim.emplace(Simulation::open_loop(subnet, cfg,
                                      {TrafficKind::kUniform, 0.2, 0, 4},
                                      0.6, {&sm, faults}));
    result = sim->run();
  }

  [[nodiscard]] ChromeTraceData data() const {
    ChromeTraceData d;
    d.packets = &sim->traces();
    d.control = &sim->control_trace();
    d.timeline = &sim->timeline();
    d.flight = &sim->flight_dump();
    return d;
  }

  FatTreeFabric fabric;
  Subnet subnet;
  SubnetManager sm;
  std::optional<Simulation> sim;
  SimResult result;
};

TEST(ChromeTrace, EmptyDataIsAnEmptyTrace) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const std::string json = chrome_trace_json(fabric.fabric(), {});
  EXPECT_EQ(json, R"({"displayTimeUnit":"ns","traceEvents":[]})");
}

TEST(ChromeTrace, InstrumentedFaultRunProducesAllFourTracks) {
  const InstrumentedRun run;
  ASSERT_GT(run.result.packets_dropped, 0u);  // the scenario has teeth
  const std::string json = chrome_trace_json(run.fabric.fabric(), run.data());
  expect_balanced(json);
  // Track 1: packet lifecycle spans on named device threads.
  EXPECT_NE(json.find(R"("name":"fabric devices")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"source-queue","ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"switch","ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"deliver","ph":"X")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"thread_name","ph":"M")"), std::string::npos);
  // Track 2: the control plane with the SM pipeline and the faults.
  EXPECT_NE(json.find(R"("name":"control plane")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"link-fail","ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"trap","ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"sweep-done","ph":"i")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"lft-program","ph":"i")"), std::string::npos);
  // Track 3: the sampled counters.
  EXPECT_NE(json.find(R"("name":"timeline counters")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"throughput","ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"occupancy","ph":"C")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"congestion","ph":"C")"), std::string::npos);
  // Track 4: the flight recorder froze on the first drop.
  ASSERT_TRUE(run.sim->flight_dump().valid());
  EXPECT_NE(json.find(R"("name":"flight recorder")"), std::string::npos);
  EXPECT_NE(json.find("first drop"), std::string::npos);
}

TEST(ChromeTrace, ProfilerTrackRendersShardPhasesAndDriver) {
  // Track 5 (pid 5): host-time phase spans, one thread per shard plus the
  // driver.  Deterministic synthetic input -- the track layout is data
  // driven, no simulation needed.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  ProfileSummary profile;
  profile.enabled = true;
  profile.shards = 2;
  profile.windows = 7;
  profile.mailbox_ns = 500;
  profile.control_ns = 250;
  profile.shard_phases.resize(2);
  profile.shard_phases[0] = {4'000, 1'000, 123, 9};
  profile.shard_phases[1] = {3'000, 2'000, 77, 4};
  ChromeTraceData data;
  data.profile = &profile;
  const std::string json = chrome_trace_json(fabric.fabric(), data);
  expect_balanced(json);
  EXPECT_NE(json.find(R"x("name":"engine profiler (host)")x"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"shard 0")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"shard 1")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"driver")"), std::string::npos);
  EXPECT_NE(json.find(R"("name":"processing","ph":"X")"), std::string::npos);
  // Barrier span starts where shard 0's processing span ends (4000 ns = 4 us).
  EXPECT_NE(json.find(R"("name":"barrier-wait","ph":"X","pid":5,"tid":0,"ts":4)"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"mailbox-drain","ph":"X")"),
            std::string::npos);
  EXPECT_NE(json.find(R"("name":"control-steps","ph":"X")"),
            std::string::npos);
  // A disabled profile adds no track.
  ProfileSummary off;
  ChromeTraceData none;
  none.profile = &off;
  EXPECT_EQ(chrome_trace_json(fabric.fabric(), none)
                .find(R"x("name":"engine profiler (host)")x"),
            std::string::npos);
}

TEST(ChromeTrace, DroppedPacketsShowUpAsInstants) {
  // Deterministic single-record input: a packet that dies on a dead link
  // renders as an instant named after the reason, not as a span.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  PacketTraceRecord rec;
  rec.src = 0;
  rec.dst = 5;
  rec.dlid = 21;
  rec.events.push_back({100, TracePoint::kGenerated, 0, 0, 0});
  rec.events.push_back({100, TracePoint::kInjected, 0, 0, 0});
  rec.events.push_back(
      {340, TracePoint::kDropped, 8, 2, 0, DropReason::kDeadLink});
  const std::vector<PacketTraceRecord> packets{rec};
  ChromeTraceData data;
  data.packets = &packets;
  const std::string json = chrome_trace_json(fabric.fabric(), data);
  expect_balanced(json);
  EXPECT_NE(json.find(R"x("name":"drop(dead-link)","ph":"i")x"),
            std::string::npos);
  // The generated->injected pair on the source still spans.
  EXPECT_NE(json.find(R"("name":"source-queue","ph":"X")"), std::string::npos);
}

TEST(ChromeTrace, TracksAreSkippedWhenTheirSourceIsOff) {
  const InstrumentedRun run;
  ChromeTraceData only_counters;
  only_counters.timeline = &run.sim->timeline();
  const std::string json =
      chrome_trace_json(run.fabric.fabric(), only_counters);
  expect_balanced(json);
  EXPECT_NE(json.find(R"("name":"timeline counters")"), std::string::npos);
  EXPECT_EQ(json.find(R"("name":"fabric devices")"), std::string::npos);
  EXPECT_EQ(json.find(R"("name":"control plane")"), std::string::npos);
  EXPECT_EQ(json.find(R"("name":"flight recorder")"), std::string::npos);
}

TEST(ChromeTrace, WriteProducesTheSameBytesPlusNewline) {
  const InstrumentedRun run;
  const std::string path =
      ::testing::TempDir() + "mlid_chrome_trace_test.json";
  write_chrome_trace(path, run.fabric.fabric(), run.data());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::ostringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(),
            chrome_trace_json(run.fabric.fabric(), run.data()) + "\n");
}

}  // namespace
}  // namespace mlid

#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace mlid {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::uint64_t{1});
  json.key("b").value(2.5);
  json.key("c").value(true);
  json.key("d").value("text");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":2.5,"c":true,"d":"text"})");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter json;
  json.begin_object();
  json.key("xs").begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.begin_object();
  json.key("y").value(std::int64_t{-3});
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"xs":[1,2,{"y":-3}]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("s").value("a\"b\\c\nd");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[null]");
}

TEST(JsonWriter, MisuseIsRejected) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), ContractViolation);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), ContractViolation);  // mismatched close
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("k"), ContractViolation);  // key at top level
  }
}

TEST(Report, SimResultRoundTripsTheHeadlineFields) {
  SimResult r;
  r.offered_load = 0.5;
  r.accepted_bytes_per_ns_per_node = 0.25;
  r.avg_latency_ns = 123.5;
  r.packets_measured = 42;
  r.delivered_per_vl = {40, 2};
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"offered_load\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"packets_measured\":42"), std::string::npos);
  EXPECT_NE(json.find("\"delivered_per_vl\":[40,2]"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, BurstResultSerializes) {
  BurstResult r;
  r.makespan_ns = 1824;
  r.messages = 3;
  r.total_bytes = 999;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"makespan_ns\":1824"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate_bytes_per_ns\""), std::string::npos);
}

TEST(Report, FigureSweepSerializesEveryPoint) {
  FigureSpec spec;
  spec.title = "json test";
  spec.m = 4;
  spec.n = 2;
  spec.traffic = {TrafficKind::kUniform, 0.2, 0, 3};
  spec.sim.warmup_ns = 3'000;
  spec.sim.measure_ns = 10'000;
  spec.vl_counts = {1};
  spec.loads = {0.2, 0.5};
  const auto points = run_figure(spec, 1);
  const std::string json = to_json(spec, points);
  EXPECT_NE(json.find("\"title\":\"json test\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic\":\"uniform\""), std::string::npos);
  // One "scheme" entry per point.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"scheme\""); pos != std::string::npos;
       pos = json.find("\"scheme\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, points.size());
}

}  // namespace
}  // namespace mlid

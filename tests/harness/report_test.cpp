#include "harness/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace mlid {
namespace {

TEST(JsonWriter, FlatObject) {
  JsonWriter json;
  json.begin_object();
  json.key("a").value(std::uint64_t{1});
  json.key("b").value(2.5);
  json.key("c").value(true);
  json.key("d").value("text");
  json.end_object();
  EXPECT_EQ(json.str(), R"({"a":1,"b":2.5,"c":true,"d":"text"})");
}

TEST(JsonWriter, NestedArrays) {
  JsonWriter json;
  json.begin_object();
  json.key("xs").begin_array();
  json.value(std::uint64_t{1});
  json.value(std::uint64_t{2});
  json.begin_object();
  json.key("y").value(std::int64_t{-3});
  json.end_object();
  json.end_array();
  json.end_object();
  EXPECT_EQ(json.str(), R"({"xs":[1,2,{"y":-3}]})");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter json;
  json.begin_object();
  json.key("s").value("a\"b\\c\nd");
  json.end_object();
  EXPECT_EQ(json.str(), "{\"s\":\"a\\\"b\\\\c\\nd\"}");
}

TEST(JsonWriter, NonFiniteBecomesNull) {
  JsonWriter json;
  json.begin_array();
  json.value(std::nan(""));
  json.end_array();
  EXPECT_EQ(json.str(), "[null]");
}

TEST(JsonWriter, MisuseIsRejected) {
  {
    JsonWriter json;
    json.begin_object();
    EXPECT_THROW(json.value(1.0), ContractViolation);  // value without key
  }
  {
    JsonWriter json;
    json.begin_array();
    EXPECT_THROW(json.end_object(), ContractViolation);  // mismatched close
  }
  {
    JsonWriter json;
    EXPECT_THROW(json.key("k"), ContractViolation);  // key at top level
  }
}

TEST(Report, SimResultRoundTripsTheHeadlineFields) {
  SimResult r;
  r.offered_load = 0.5;
  r.accepted_bytes_per_ns_per_node = 0.25;
  r.avg_latency_ns = 123.5;
  r.packets_measured = 42;
  r.delivered_per_vl = {40, 2};
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"offered_load\":0.5"), std::string::npos);
  EXPECT_NE(json.find("\"packets_measured\":42"), std::string::npos);
  EXPECT_NE(json.find("\"delivered_per_vl\":[40,2]"), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST(Report, BurstResultSerializes) {
  BurstResult r;
  r.makespan_ns = 1824;
  r.messages = 3;
  r.total_bytes = 999;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"makespan_ns\":1824"), std::string::npos);
  EXPECT_NE(json.find("\"aggregate_bytes_per_ns\""), std::string::npos);
}

TEST(Report, FigureSweepSerializesEveryPoint) {
  FigureSpec spec;
  spec.title = "json test";
  spec.m = 4;
  spec.n = 2;
  spec.traffic = {TrafficKind::kUniform, 0.2, 0, 3};
  spec.sim.warmup_ns = 3'000;
  spec.sim.measure_ns = 10'000;
  spec.vl_counts = {1};
  spec.loads = {0.2, 0.5};
  const auto points = run_sweep(spec, {.threads = 1});
  const std::string json = to_json(spec, points);
  EXPECT_NE(json.find("\"title\":\"json test\""), std::string::npos);
  EXPECT_NE(json.find("\"traffic\":\"uniform\""), std::string::npos);
  // One "scheme" entry per point.
  std::size_t count = 0;
  for (std::size_t pos = json.find("\"scheme\""); pos != std::string::npos;
       pos = json.find("\"scheme\"", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, points.size());
}

TEST(Report, TelemetryFieldsSerializeWhenPresent) {
  SimResult r;
  r.telemetry = true;
  r.latency_log2_hist.add(100.0);
  r.latency_log2_per_vl.assign(2, Log2Histogram{});
  r.latency_log2_per_vl[0].add(100.0);
  r.link_summary.links = 3;
  r.link_summary.max_queue_depth_pkts = 5;
  const std::string json = to_json(r);
  EXPECT_NE(json.find("\"telemetry\":true"), std::string::npos);
  EXPECT_NE(json.find("\"latency_log2_hist\""), std::string::npos);
  EXPECT_NE(json.find("\"link_summary\""), std::string::npos);
  EXPECT_NE(json.find("\"max_queue_depth_pkts\":5"), std::string::npos);

  SimResult off;
  const std::string json_off = to_json(off);
  EXPECT_NE(json_off.find("\"telemetry\":false"), std::string::npos);
  EXPECT_EQ(json_off.find("\"latency_log2_hist\""), std::string::npos);
}

TEST(Report, CcFieldsSerializePerTheV2Schema) {
  // cc_enabled and the victim/hot split are always present; the cc block
  // only when congestion control ran.
  SimResult off;
  const std::string json_off = to_json(off);
  EXPECT_NE(json_off.find("\"cc_enabled\":false"), std::string::npos);
  EXPECT_NE(json_off.find("\"victim_packets\":0"), std::string::npos);
  EXPECT_NE(json_off.find("\"hot_packets\":0"), std::string::npos);
  EXPECT_EQ(json_off.find("\"cc\":{"), std::string::npos);

  SimResult on;
  on.cc.enabled = true;
  on.cc.fecn_depth_marks = 3;
  on.cc.fecn_stall_marks = 4;
  on.cc.fecn_marked = 7;
  on.cc.becn_sent = 6;
  on.cc.becn_received = 5;
  on.cc.cct_timer_fires = 2;
  on.cc.throttled_pkts = 4;
  on.cc.throttled_ns_total = 900;
  on.cc.max_node_throttled_ns = 500;
  on.cc.peak_cct_index = 8;
  on.cc.cct_index_hist = {1, 4};
  on.victim_packets = 11;
  on.victim_p99_latency_ns = 125.5;
  on.telemetry = true;
  on.link_summary.total_fecn_marks = 7;
  const std::string json = to_json(on);
  EXPECT_NE(json.find("\"cc_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"fecn_marked\":7"), std::string::npos);
  EXPECT_NE(json.find("\"fecn_depth_marks\":3"), std::string::npos);
  EXPECT_NE(json.find("\"fecn_stall_marks\":4"), std::string::npos);
  EXPECT_NE(json.find("\"becn_sent\":6"), std::string::npos);
  EXPECT_NE(json.find("\"becn_received\":5"), std::string::npos);
  EXPECT_NE(json.find("\"cct_timer_fires\":2"), std::string::npos);
  EXPECT_NE(json.find("\"throttled_pkts\":4"), std::string::npos);
  EXPECT_NE(json.find("\"throttled_ns_total\":900"), std::string::npos);
  EXPECT_NE(json.find("\"max_node_throttled_ns\":500"), std::string::npos);
  EXPECT_NE(json.find("\"peak_cct_index\":8"), std::string::npos);
  EXPECT_NE(json.find("\"cct_index_hist\":[1,4]"), std::string::npos);
  EXPECT_NE(json.find("\"victim_packets\":11"), std::string::npos);
  EXPECT_NE(json.find("\"victim_p99_latency_ns\":125.5"), std::string::npos);
  EXPECT_NE(json.find("\"total_fecn_marks\":7"), std::string::npos);
}

TEST(Report, BenchReportEmitsTheSchema) {
  BenchReport report("unit_bench", /*seed=*/9, /*threads=*/2, /*quick=*/true);
  SimResult r;
  r.packets_measured = 10;
  r.events_processed = 1000;
  report.add("series-a", r);
  BurstResult b;
  b.makespan_ns = 5;
  b.events_processed = 50;
  report.add("burst-b", b);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"schema\":\"mlid-bench-v8\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"unit_bench\""), std::string::npos);
  EXPECT_NE(json.find("\"git\""), std::string::npos);
  EXPECT_NE(json.find("\"seed\":9"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":2"), std::string::npos);
  EXPECT_NE(json.find("\"quick\":true"), std::string::npos);
  EXPECT_NE(json.find("\"wall_seconds\""), std::string::npos);
  // Host cost aggregates across every recorded entry.
  EXPECT_NE(json.find("\"events_processed\":1050"), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"series-a\""), std::string::npos);
  EXPECT_NE(json.find("\"series\":\"burst-b\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(Report, PointManifestEmitsParallelism) {
  // v4: every point manifest records the actual parallelism that computed
  // the point, so a BENCH file read in isolation says how it was made.
  // v5 adds bytes_per_endport, the scale metric CI regresses on.
  PointManifest m;
  m.sim_seed = 7;
  m.threads = 8;
  m.shards = 4;
  m.bytes_per_endport = 612.5;
  BenchReport report("manifest_bench", 1, 8, true);
  report.add("pt", SimResult{}, m);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"sim_seed\":7"), std::string::npos);
  EXPECT_NE(json.find("\"threads\":8"), std::string::npos);
  EXPECT_NE(json.find("\"shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_per_endport\":612.5"), std::string::npos);
}

TEST(Report, V7ScenarioProvenanceAndTenantBlock) {
  // v7: every manifest names its scenario ("none" for plain sweeps), burst
  // entries may carry manifests too, and per-tenant metrics serialize when
  // the tenant subsystem is on.
  PointManifest m;
  m.scenario = "incast";
  SimResult r;
  r.tenants.resize(2);
  r.tenants[0].delivered_pkts = 3;
  r.tenants[1].delivered_pkts = 4;
  r.tenant_jain_fairness_index = 0.75;
  BenchReport report("v7_bench", 1, 1, true);
  report.add("pt", r, m);
  BurstResult b;
  b.messages = 2;
  report.add("bt", b, m);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"scenario\":\"incast\""), std::string::npos);
  EXPECT_NE(json.find("\"tenant_count\":2"), std::string::npos);
  EXPECT_NE(json.find("\"tenant_jain_fairness_index\":0.75"),
            std::string::npos);
  EXPECT_NE(json.find("\"tenants\":[{\"delivered_pkts\":3"),
            std::string::npos);
  // Both entries carry the manifest; a manifest-free point says "none".
  EXPECT_EQ(json.find("\"scenario\":\"incast\"") !=
                json.rfind("\"scenario\":\"incast\""),
            true);
  BenchReport plain("plain_bench", 1, 1, true);
  plain.add("p", SimResult{}, PointManifest{});
  EXPECT_NE(plain.to_json().find("\"scenario\":\"none\""), std::string::npos);
}

TEST(Report, V8ProfileBlockInResultsAndManifests) {
  // v8: sim results carry a presence-flagged profile block; every point
  // manifest carries one unconditionally (enabled == false, all zeros for
  // unprofiled points), so BENCH consumers never probe for its shape.
  PointManifest m;
  m.profile.enabled = true;
  m.profile.shards = 4;
  m.profile.processing_ns = 3'000;
  m.profile.barrier_wait_ns = 1'000;
  m.profile.shard_phases.resize(4);
  m.profile.shard_phases[0].events_processed = 42;
  SimResult r;
  r.profile = m.profile;
  BenchReport report("v8_bench", 1, 1, true);
  report.add("pt", r, m);
  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"profile_enabled\":true"), std::string::npos);
  EXPECT_NE(json.find("\"barrier_wait_fraction\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"shard_phases\":[{\"processing_ns\":0,"
                      "\"barrier_wait_ns\":0,\"events_processed\":42,"
                      "\"handoffs_out\":0}"),
            std::string::npos);
  // Unprofiled: the result skips the block (flag false), the manifest
  // still carries a disabled one.
  BenchReport plain("v8_plain", 1, 1, true);
  plain.add("p", SimResult{}, PointManifest{});
  const std::string plain_json = plain.to_json();
  EXPECT_NE(plain_json.find("\"profile_enabled\":false"), std::string::npos);
  EXPECT_NE(plain_json.find("\"profile\":{\"enabled\":false"),
            std::string::npos);
}

TEST(Report, BenchReportWritesItsFile) {
  BenchReport report("write_test", 1, 1, false);
  report.add("s", SimResult{});
  const std::string path = report.write(::testing::TempDir());
  EXPECT_NE(path.find("BENCH_write_test.json"), std::string::npos);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  // wall_seconds advances between serializations, so compare structure,
  // not the exact bytes.
  EXPECT_NE(buf.str().find("\"schema\":\"mlid-bench-v8\""), std::string::npos);
  EXPECT_NE(buf.str().find("\"name\":\"write_test\""), std::string::npos);
  EXPECT_EQ(buf.str().back(), '\n');
  std::remove(path.c_str());
}

TEST(Report, BenchNameFromPathStripsDirectories) {
  EXPECT_EQ(bench_name_from_path("/a/b/fig12_uniform"), "fig12_uniform");
  EXPECT_EQ(bench_name_from_path("bench\\table1"), "table1");
  EXPECT_EQ(bench_name_from_path("plain"), "plain");
  EXPECT_FALSE(git_describe().empty());
}

}  // namespace
}  // namespace mlid

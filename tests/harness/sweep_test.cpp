#include "harness/sweep.hpp"

#include <gtest/gtest.h>

#include <set>

#include "harness/report.hpp"

namespace mlid {
namespace {

FigureSpec tiny_spec() {
  FigureSpec spec;
  spec.title = "test figure";
  spec.m = 4;
  spec.n = 2;
  spec.traffic = {TrafficKind::kUniform, 0.2, 0, 3};
  spec.sim.warmup_ns = 4'000;
  spec.sim.measure_ns = 12'000;
  spec.sim.seed = 2;
  spec.vl_counts = {1, 2};
  spec.loads = {0.2, 0.6};
  return spec;
}

TEST(Sweep, ProducesTheFullGridInOrder) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_sweep(spec, {.threads = 1});
  ASSERT_EQ(points.size(), 2u * 2u * 2u);  // schemes x vls x loads
  // Grid order: scheme-major, then VLs, then loads.
  EXPECT_EQ(points[0].scheme, "SLID");
  EXPECT_EQ(points[0].vls, 1);
  EXPECT_DOUBLE_EQ(points[0].load, 0.2);
  EXPECT_EQ(points.back().scheme, "MLID");
  EXPECT_EQ(points.back().vls, 2);
  EXPECT_DOUBLE_EQ(points.back().load, 0.6);
  for (const auto& p : points) {
    EXPECT_GT(p.result.packets_measured, 0u);
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  const FigureSpec spec = tiny_spec();
  const auto serial = run_sweep(spec, {.threads = 1});
  const auto parallel = run_sweep(spec, {.threads = 4});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].result.avg_latency_ns,
                     parallel[i].result.avg_latency_ns);
    EXPECT_EQ(serial[i].result.packets_measured,
              parallel[i].result.packets_measured);
  }
}

TEST(Sweep, RunnerIsDeterministicAcrossThreadCounts) {
  // The stronger form of the test above: every serialized result field is
  // byte-identical between a serial and a heavily threaded sweep, and the
  // reproducibility half of the manifest (seeds, event counts, queue
  // structure) matches too.  Only wall-clock fields may differ.
  const FigureSpec spec = tiny_spec();
  const auto serial = run_sweep(spec, {.threads = 1});
  const auto parallel = run_sweep(spec, {.threads = 8});
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(to_json(serial[i].result), to_json(parallel[i].result))
        << "point " << i;
    EXPECT_EQ(serial[i].manifest.sim_seed, parallel[i].manifest.sim_seed);
    EXPECT_EQ(serial[i].manifest.traffic_seed,
              parallel[i].manifest.traffic_seed);
    EXPECT_EQ(serial[i].manifest.events_processed,
              parallel[i].manifest.events_processed);
    EXPECT_EQ(serial[i].manifest.events_scheduled,
              parallel[i].manifest.events_scheduled);
    EXPECT_EQ(serial[i].manifest.queue.kind, parallel[i].manifest.queue.kind);
    // The manifest records the *actual* pool size, never the 0 placeholder.
    EXPECT_EQ(serial[i].manifest.threads, 1u);
    EXPECT_GE(parallel[i].manifest.threads, 1u);
    EXPECT_LE(parallel[i].manifest.threads, 8u);
    EXPECT_EQ(serial[i].manifest.shards, 1u);
  }
}

TEST(Sweep, ShardedPointsMatchTheSequentialCanonicalOracle) {
  // shards > 1 routes every point through the sharded engine, which forces
  // the canonical event order -- so the oracle is a sequential sweep with
  // that same order set explicitly.
  FigureSpec spec = tiny_spec();
  spec.sim.event_order = EventOrder::kCanonical;
  const auto seq = run_sweep(spec, {.threads = 1});
  const auto sharded = run_sweep(spec, {.threads = 1, .shards = 2});
  ASSERT_EQ(seq.size(), sharded.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(to_json(seq[i].result), to_json(sharded[i].result))
        << "point " << i;
    EXPECT_EQ(sharded[i].manifest.shards, 2u);
  }
}

TEST(Sweep, PointSeedsDependOnCoordinatesNotGridShape) {
  // The old derivation (base * K + job_index) changed every point's seed
  // whenever the grid grew.  Now the seed is a pure function of the point's
  // own coordinates: adding loads must leave existing points' results
  // bit-identical.
  FigureSpec small = tiny_spec();
  FigureSpec large = tiny_spec();
  large.loads = {0.2, 0.4, 0.6};  // insert a load between the two existing
  const auto small_points = run_sweep(small, {.threads = 1});
  const auto large_points = run_sweep(large, {.threads = 1});
  for (const auto& sp : small_points) {
    bool found = false;
    for (const auto& lp : large_points) {
      if (lp.scheme == sp.scheme && lp.vls == sp.vls && lp.load == sp.load) {
        found = true;
        EXPECT_EQ(lp.manifest.sim_seed, sp.manifest.sim_seed);
        EXPECT_EQ(lp.manifest.traffic_seed, sp.manifest.traffic_seed);
        EXPECT_EQ(lp.result.packets_measured, sp.result.packets_measured);
        EXPECT_EQ(lp.result.avg_latency_ns, sp.result.avg_latency_ns);
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST(Sweep, PointSeedDerivationSeparatesCoordinates) {
  // Base 0 must not collapse the grid (0 * K + i degenerated to job order).
  std::set<std::uint64_t> seeds;
  for (const std::string_view scheme : {"SLID", "MLID"}) {
    for (const int vls : {1, 2, 4}) {
      for (const double load : {0.1, 0.2, 0.9}) {
        seeds.insert(sweep_point_seed(0, scheme, vls, load));
      }
    }
  }
  EXPECT_EQ(seeds.size(), 2u * 3u * 3u);
  // Distinct bases decorrelate, and the sim/traffic domains never collide.
  EXPECT_NE(sweep_point_seed(0, "SLID", 1, 0.2),
            sweep_point_seed(1, "SLID", 1, 0.2));
  EXPECT_NE(sweep_traffic_seed(0, 1, 0.2),
            sweep_point_seed(0, "SLID", 1, 0.2));
  EXPECT_NE(sweep_traffic_seed(0, 1, 0.2), sweep_traffic_seed(0, 1, 0.4));
}

TEST(Sweep, BothSchemesFaceTheIdenticalWorkload) {
  // The traffic stream is a function of (base, vls, load) only: at every
  // grid point SLID and MLID see the same destinations and arrivals, so
  // their comparison measures routing, not traffic luck.
  const FigureSpec spec = tiny_spec();
  const auto points = run_sweep(spec, {.threads = 1});
  for (const auto& a : points) {
    for (const auto& b : points) {
      if (a.vls == b.vls && a.load == b.load) {
        EXPECT_EQ(a.manifest.traffic_seed, b.manifest.traffic_seed);
      }
      if (a.scheme != b.scheme) {
        EXPECT_NE(a.manifest.sim_seed, b.manifest.sim_seed);
      }
    }
  }
}

TEST(Sweep, ManifestRecordsTheRun) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_sweep(spec, {.threads = 1});
  for (const auto& p : points) {
    EXPECT_EQ(p.manifest.sim_seed,
              sweep_point_seed(spec.sim.seed, p.scheme, p.vls, p.load));
    EXPECT_GT(p.manifest.events_processed, 0u);
    EXPECT_EQ(p.manifest.events_processed, p.result.events_processed);
    // An open-loop run ends at a wall-clock cutoff with work still queued,
    // so scheduled must exceed processed; events/sec divides by processed.
    EXPECT_GE(p.manifest.events_scheduled, p.manifest.events_processed);
    EXPECT_EQ(p.manifest.events_scheduled, p.result.events_scheduled);
    EXPECT_GE(p.manifest.wall_seconds, 0.0);
    // events_per_sec is 0 only if the clock read 0 wall time.
    EXPECT_TRUE(p.manifest.events_per_sec > 0.0 ||
                p.manifest.wall_seconds == 0.0);
    // Queue internals ride along (ladder is the default).
    EXPECT_EQ(p.manifest.queue.kind, EventQueueKind::kLadder);
    EXPECT_GT(p.manifest.queue.buckets, 0u);
    EXPECT_EQ(p.manifest.queue.events_processed, p.manifest.events_processed);
  }
}

TEST(Sweep, ShardedEventsPerSecKeepsTheSequentialDefinition) {
  // events_per_sec = fleet-processed events / driver wall time, the same
  // definition sequential points use -- NOT per-shard rates summed or the
  // busiest shard's rate.  Under the canonical order a sharded point
  // processes exactly the events the sequential point does, so the
  // numerator must be identical and the rate must divide it by the
  // manifest's own wall_seconds.
  FigureSpec spec = tiny_spec();
  spec.sim.event_order = EventOrder::kCanonical;
  spec.loads = {0.6};
  const auto seq = run_sweep(spec, {.threads = 1});
  const auto sharded = run_sweep(spec, {.threads = 1, .shards = 2});
  ASSERT_EQ(seq.size(), sharded.size());
  for (std::size_t i = 0; i < seq.size(); ++i) {
    // Same fleet total as the sequential engine dispatched.
    EXPECT_EQ(sharded[i].manifest.events_processed,
              seq[i].manifest.events_processed);
    for (const auto& p : {seq[i], sharded[i]}) {
      if (p.manifest.wall_seconds > 0.0) {
        EXPECT_DOUBLE_EQ(
            p.manifest.events_per_sec,
            static_cast<double>(p.manifest.events_processed) /
                p.manifest.wall_seconds);
      }
    }
  }
}

TEST(Sweep, ProfileOptionFillsEveryManifest) {
  FigureSpec spec = tiny_spec();
  spec.loads = {0.6};
  const auto plain = run_sweep(spec, {.threads = 1});
  SweepOptions options;
  options.threads = 1;
  options.profile = true;
  const auto profiled = run_sweep(spec, options);
  ASSERT_EQ(plain.size(), profiled.size());
  for (std::size_t i = 0; i < profiled.size(); ++i) {
    // Passive: the profiled sweep's results match the plain sweep's.
    EXPECT_EQ(to_json(plain[i].result), [&] {
      SimResult scrubbed = profiled[i].result;
      scrubbed.profile = ProfileSummary{};
      return to_json(scrubbed);
    }());
    const ProfileSummary& p = profiled[i].manifest.profile;
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.shards, 1u);
    EXPECT_EQ(p.queue_pops, profiled[i].manifest.events_processed);
    // Unprofiled sweeps carry the disabled all-zero block.
    EXPECT_FALSE(plain[i].manifest.profile.enabled);
    EXPECT_EQ(plain[i].manifest.profile, ProfileSummary{});
  }
}

TEST(Sweep, OptionsOverrideQueueKindAndTelemetry) {
  const FigureSpec spec = tiny_spec();
  SweepOptions options;
  options.threads = 1;
  options.event_queue = EventQueueKind::kHeap;
  options.telemetry = false;
  const auto points = run_sweep(spec, options);
  for (const auto& p : points) {
    EXPECT_EQ(p.manifest.queue.kind, EventQueueKind::kHeap);
    EXPECT_FALSE(p.result.telemetry);
  }
  // Defaults inherit from the spec instead of overriding it.
  FigureSpec no_telemetry = tiny_spec();
  no_telemetry.sim.telemetry = false;
  no_telemetry.loads = {0.2};
  no_telemetry.vl_counts = {1};
  const auto inherited = run_sweep(no_telemetry, {.threads = 1});
  for (const auto& p : inherited) EXPECT_FALSE(p.result.telemetry);
}

TEST(Sweep, QuickOptionShrinksTheGrid) {
  FigureSpec spec = tiny_spec();
  spec.loads = FigureSpec::kDefaultLoads();
  const auto points = run_sweep(spec, {.threads = 1, .quick = true});
  // 2 schemes x 2 vls x the 3 smoke loads.
  EXPECT_EQ(points.size(), 2u * 2u * 3u);
}

TEST(Sweep, CcOverrideAppliesToEveryPoint) {
  FigureSpec spec = tiny_spec();
  CcConfig cc;
  cc.enabled = true;
  const auto points = run_sweep(spec, {.threads = 1, .cc = cc});
  ASSERT_FALSE(points.empty());
  for (const auto& p : points) EXPECT_TRUE(p.result.cc.enabled);
  // An unset option inherits the spec's own (disabled) CC config.
  const auto inherited = run_sweep(spec, {.threads = 1});
  for (const auto& p : inherited) EXPECT_FALSE(p.result.cc.enabled);
}

TEST(Sweep, SaturationThroughputPicksTheSeriesMaximum) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_sweep(spec, {.threads = 1});
  const double sat = saturation_throughput(points, "MLID", 1);
  double expected = 0.0;
  for (const auto& p : points) {
    if (p.scheme == "MLID" && p.vls == 1) {
      expected = std::max(expected, p.result.accepted_bytes_per_ns_per_node);
    }
  }
  EXPECT_DOUBLE_EQ(sat, expected);
  EXPECT_EQ(saturation_throughput(points, "MLID", 4), 0.0);
}

TEST(Sweep, RenderersIncludeEverySample) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_sweep(spec, {.threads = 1});
  const std::string table = render_figure_table(spec, points);
  EXPECT_NE(table.find("test figure"), std::string::npos);
  EXPECT_NE(table.find("SLID 1VL"), std::string::npos);
  EXPECT_NE(table.find("MLID 2VL"), std::string::npos);
  const std::string csv = render_figure_csv(spec, points);
  // Header + 8 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(points.size()) + 1);
  const std::string summary = render_figure_summary(spec, points);
  EXPECT_NE(summary.find("MLID/SLID saturation throughput @1VL"),
            std::string::npos);
}

}  // namespace
}  // namespace mlid

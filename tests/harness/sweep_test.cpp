#include "harness/sweep.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

FigureSpec tiny_spec() {
  FigureSpec spec;
  spec.title = "test figure";
  spec.m = 4;
  spec.n = 2;
  spec.traffic = {TrafficKind::kUniform, 0.2, 0, 3};
  spec.sim.warmup_ns = 4'000;
  spec.sim.measure_ns = 12'000;
  spec.sim.seed = 2;
  spec.vl_counts = {1, 2};
  spec.loads = {0.2, 0.6};
  return spec;
}

TEST(Sweep, ProducesTheFullGridInOrder) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_figure(spec, /*threads=*/1);
  ASSERT_EQ(points.size(), 2u * 2u * 2u);  // schemes x vls x loads
  // Grid order: scheme-major, then VLs, then loads.
  EXPECT_EQ(points[0].scheme, SchemeKind::kSlid);
  EXPECT_EQ(points[0].vls, 1);
  EXPECT_DOUBLE_EQ(points[0].load, 0.2);
  EXPECT_EQ(points.back().scheme, SchemeKind::kMlid);
  EXPECT_EQ(points.back().vls, 2);
  EXPECT_DOUBLE_EQ(points.back().load, 0.6);
  for (const auto& p : points) {
    EXPECT_GT(p.result.packets_measured, 0u);
  }
}

TEST(Sweep, ThreadCountDoesNotChangeResults) {
  const FigureSpec spec = tiny_spec();
  const auto serial = run_figure(spec, 1);
  const auto parallel = run_figure(spec, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].result.avg_latency_ns,
                     parallel[i].result.avg_latency_ns);
    EXPECT_EQ(serial[i].result.packets_measured,
              parallel[i].result.packets_measured);
  }
}

TEST(Sweep, SaturationThroughputPicksTheSeriesMaximum) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_figure(spec, 1);
  const double sat = saturation_throughput(points, SchemeKind::kMlid, 1);
  double expected = 0.0;
  for (const auto& p : points) {
    if (p.scheme == SchemeKind::kMlid && p.vls == 1) {
      expected = std::max(expected, p.result.accepted_bytes_per_ns_per_node);
    }
  }
  EXPECT_DOUBLE_EQ(sat, expected);
  EXPECT_EQ(saturation_throughput(points, SchemeKind::kMlid, 4), 0.0);
}

TEST(Sweep, RenderersIncludeEverySample) {
  const FigureSpec spec = tiny_spec();
  const auto points = run_figure(spec, 1);
  const std::string table = render_figure_table(spec, points);
  EXPECT_NE(table.find("test figure"), std::string::npos);
  EXPECT_NE(table.find("SLID 1VL"), std::string::npos);
  EXPECT_NE(table.find("MLID 2VL"), std::string::npos);
  const std::string csv = render_figure_csv(spec, points);
  // Header + 8 rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'),
            static_cast<long>(points.size()) + 1);
  const std::string summary = render_figure_summary(spec, points);
  EXPECT_NE(summary.find("MLID/SLID saturation throughput @1VL"),
            std::string::npos);
}

}  // namespace
}  // namespace mlid

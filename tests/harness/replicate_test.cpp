#include <gtest/gtest.h>

#include "harness/sweep.hpp"

namespace mlid {
namespace {

SimConfig quick() {
  SimConfig cfg;
  cfg.warmup_ns = 4'000;
  cfg.measure_ns = 16'000;
  cfg.seed = 8;
  return cfg;
}

TEST(Replicate, AccumulatesTheRequestedRuns) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const Replication rep = replicate(
      subnet, quick(), {TrafficKind::kUniform, 0.2, 0, 9}, 0.4, 5);
  EXPECT_EQ(rep.runs, 5);
  EXPECT_EQ(rep.accepted.count(), 5u);
  EXPECT_EQ(rep.avg_latency.count(), 5u);
  EXPECT_GT(rep.accepted.mean(), 0.0);
  EXPECT_GT(rep.avg_latency.mean(), 0.0);
}

TEST(Replicate, SeedsActuallyVary) {
  // Distinct seeds must produce nonzero spread at moderate load.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const Replication rep = replicate(
      subnet, quick(), {TrafficKind::kUniform, 0.2, 0, 9}, 0.6, 4);
  EXPECT_GT(rep.avg_latency.stddev(), 0.0);
}

TEST(Replicate, SpreadIsSmallRelativeToTheMeanBelowSaturation) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const Replication rep = replicate(
      subnet, quick(), {TrafficKind::kUniform, 0.2, 0, 9}, 0.2, 5);
  EXPECT_LT(rep.accepted.stddev(), 0.1 * rep.accepted.mean());
}

TEST(Replicate, RejectsZeroRuns) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  EXPECT_THROW(
      replicate(subnet, quick(), {TrafficKind::kUniform, 0.2, 0, 9}, 0.4, 0),
      ContractViolation);
}

}  // namespace
}  // namespace mlid

// Fault tolerance: after links fail, UpDownRouting routes around them while
// the closed-form MLID tables (computed for the pristine tree) do not.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

/// Disconnect one inter-switch link: SW<00,1>'s up port 3 (to root <00>)
/// in a 4-port 3-tree.
void fail_one_uplink(FatTreeFabric& fabric) {
  const SwitchLabel mid = SwitchLabel::from_index(fabric.params(), 1, 0);
  fabric.mutable_fabric().disconnect(
      fabric.switch_device(mid.switch_id(fabric.params())), 3);
}

TEST(FaultTolerance, UpDownRoutesAroundASingleFailedUplink) {
  FatTreeFabric fabric{FatTreeParams(4, 3)};
  fail_one_uplink(fabric);
  const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
  EXPECT_TRUE(updn.fully_connected());
  const CompiledRoutes routes(fabric, updn);

  // Every selected path still completes at the right node and no walk uses
  // the dead link (trace_path would report incomplete if it did).
  const FatTreeParams& p = fabric.params();
  for (NodeId src = 0; src < p.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
      if (src == dst) continue;
      const PathTrace trace =
          trace_path(fabric, routes, src, updn.select_dlid(src, dst));
      ASSERT_TRUE(trace.complete)
          << src << " -> " << dst << ": " << to_string(fabric, trace);
      EXPECT_EQ(trace.terminal, fabric.node_device(dst));
    }
  }
  // Deadlock freedom survives the detours.
  EXPECT_TRUE(verify_deadlock_free(fabric, updn, routes).ok());
}

TEST(FaultTolerance, ClosedFormMlidBreaksOnTheSameFault) {
  FatTreeFabric fabric{FatTreeParams(4, 3)};
  fail_one_uplink(fabric);
  const MlidRouting mlid(fabric.params());
  const CompiledRoutes routes(fabric, mlid);
  // Some (src, dlid) walk must now fall off the dead port.
  const RoutingReport report = verify_all_paths(fabric, mlid, routes);
  EXPECT_FALSE(report.ok());
}

TEST(FaultTolerance, SurvivesManyRandomLinkFailures) {
  // Knock out 4 random inter-switch links (seeded); the 4-port 3-tree has
  // enough redundancy that connectivity usually survives, and whenever the
  // engine reports fully_connected() the paths must all check out.
  Xoshiro256 rng(2024);
  for (int trial = 0; trial < 10; ++trial) {
    FatTreeFabric fabric{FatTreeParams(4, 3)};
    Fabric& g = fabric.mutable_fabric();
    int removed = 0;
    while (removed < 4) {
      const auto sw = static_cast<SwitchId>(
          rng.below(fabric.params().num_switches()));
      const SwitchLabel label = fabric.switch_label(sw);
      if (label.level() == 0) continue;
      const auto port = static_cast<PortId>(
          static_cast<std::uint64_t>(fabric.params().half()) + 1 +
          rng.below(2));
      const DeviceId dev = fabric.switch_device(sw);
      if (!g.device(dev).port_connected(port)) continue;
      g.disconnect(dev, port);
      ++removed;
    }
    const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
    const CompiledRoutes routes(fabric, updn);
    if (!updn.fully_connected()) continue;  // partitioned: nothing to check
    const RoutingReport report = verify_all_paths_relaxed(fabric, updn, routes);
    for (const auto& p : report.problems) ADD_FAILURE() << p;
    EXPECT_TRUE(verify_deadlock_free(fabric, updn, routes).ok());
  }
}

TEST(FaultTolerance, ReportsPartitionWhenANodeIsCutOff) {
  FatTreeFabric fabric{FatTreeParams(4, 2)};
  // Cut node 0's only attachment.
  fabric.mutable_fabric().disconnect(fabric.node_device(0), 1);
  const UpDownRouting updn(fabric, 0);
  EXPECT_FALSE(updn.fully_connected());
  // Other pairs still route.
  const CompiledRoutes routes(fabric, updn);
  const PathTrace trace =
      trace_path(fabric, routes, 2, updn.select_dlid(2, 7));
  EXPECT_TRUE(trace.complete);
  // Nothing routes to the severed node.
  EXPECT_FALSE(routes.lft(0).has(updn.lids_of(0).base()));
}

}  // namespace
}  // namespace mlid

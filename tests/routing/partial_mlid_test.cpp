// PartialMlidRouting: the LMC-reduced middle ground between SLID and MLID.
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

TEST(PartialMlid, Lmc0MatchesSlidSelection) {
  const FatTreeParams p(4, 3);
  const PartialMlidRouting partial(p, 0);
  const SlidRouting slid(p);
  for (NodeId src = 0; src < p.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
      EXPECT_EQ(partial.select_dlid(src, dst), slid.select_dlid(src, dst));
    }
  }
}

TEST(PartialMlid, FullLmcMatchesMlidSelection) {
  const FatTreeParams p(4, 3);
  const PartialMlidRouting partial(p, p.mlid_lmc());
  const MlidRouting mlid(p);
  for (NodeId src = 0; src < p.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
      EXPECT_EQ(partial.select_dlid(src, dst), mlid.select_dlid(src, dst));
    }
  }
}

class PartialLmcSweep : public ::testing::TestWithParam<int> {};

TEST_P(PartialLmcSweep, AllPathsRemainValid) {
  const FatTreeParams p(4, 3);
  const auto lmc = static_cast<Lmc>(GetParam());
  const FatTreeFabric fabric(p);
  const PartialMlidRouting scheme(p, lmc);
  const CompiledRoutes routes(fabric, scheme);
  const RoutingReport report = verify_all_paths(fabric, scheme, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
  EXPECT_TRUE(verify_deadlock_free(fabric, scheme, routes).ok());
}

TEST_P(PartialLmcSweep, DistinctDlidsPerSubgroupUpToBlockSize) {
  // A subgroup of size S spreads over min(S, 2^lmc) DLIDs.
  const FatTreeParams p(4, 3);
  const auto lmc = static_cast<Lmc>(GetParam());
  const PartialMlidRouting scheme(p, lmc);
  const NodeId dst = p.num_nodes() - 1;
  std::set<Lid> dlids;
  for (NodeId src = 0; src < 4; ++src) {  // gcpg(0,1): subgroup of size 4
    dlids.insert(scheme.select_dlid(src, dst));
  }
  EXPECT_EQ(dlids.size(), std::min<std::size_t>(4, 1u << lmc));
}

INSTANTIATE_TEST_SUITE_P(Lmc, PartialLmcSweep, ::testing::Values(0, 1, 2));

TEST(PartialMlid, RejectsLmcBeyondTreeDiversity) {
  const FatTreeParams p(4, 3);
  EXPECT_THROW(PartialMlidRouting(p, 3), ContractViolation);
}

}  // namespace
}  // namespace mlid

// Deadlock-freedom: the channel dependency graph of all used paths must be
// acyclic for deterministic routing without escape channels (Duato's
// condition; up*/down* routing on a tree satisfies it by construction).
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/registry.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

struct Case {
  int m;
  int n;
  std::string_view kind;
};

class DeadlockFree : public ::testing::TestWithParam<Case> {};

TEST_P(DeadlockFree, ChannelDependencyGraphIsAcyclic) {
  const auto param = GetParam();
  const FatTreeParams p(param.m, param.n);
  const FatTreeFabric fabric(p);
  const auto scheme = make_scheme(param.kind, fabric);
  const CompiledRoutes routes(fabric, *scheme);
  const RoutingReport report = verify_deadlock_free(fabric, *scheme, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
  EXPECT_GT(report.paths_checked, 0u);
}

INSTANTIATE_TEST_SUITE_P(Grid, DeadlockFree,
                         ::testing::Values(Case{4, 2, "MLID"},
                                           Case{4, 3, "MLID"},
                                           Case{4, 4, "MLID"},
                                           Case{8, 2, "MLID"},
                                           Case{8, 3, "MLID"},
                                           Case{16, 2, "MLID"},
                                           Case{4, 3, "SLID"},
                                           Case{8, 3, "SLID"}));

TEST(DeadlockDetector, CatchesAnArtificialCycle) {
  // Sanity-check the detector itself: corrupt one leaf switch's LFT so a
  // packet bounces between two leaf switches through a shared parent...
  // Simplest reliable cycle: make two switches forward one DLID to each
  // other by swapping an up entry with a down entry.  We emulate this by
  // building routes from a scheme whose LFT we post-process.
  const FatTreeParams p(4, 2);
  const FatTreeFabric fabric(p);

  /// Wrapper that mis-programs SW<0,1>'s entry for node P(00) (lid 1) to
  /// point up even though the node is below, creating an up-down-up
  /// oscillation between that leaf and a root.
  class Broken final : public RoutingScheme {
   public:
    explicit Broken(const FatTreeParams& params)
        : params_(params), inner_(params) {}
    [[nodiscard]] std::string_view name() const noexcept override {
      return "BROKEN";
    }
    [[nodiscard]] Lmc lmc() const noexcept override { return inner_.lmc(); }
    [[nodiscard]] LidRange lids_of(NodeId node) const override {
      return inner_.lids_of(node);
    }
    [[nodiscard]] NodeId node_of_lid(Lid lid) const override {
      return inner_.node_of_lid(lid);
    }
    [[nodiscard]] Lid select_dlid(NodeId src, NodeId dst) const override {
      return inner_.select_dlid(src, dst);
    }
    [[nodiscard]] Lid max_lid() const override { return inner_.max_lid(); }
    [[nodiscard]] Lft build_lft(SwitchId sw) const override {
      Lft lft = inner_.build_lft(sw);
      const SwitchLabel label = switch_from_id(params_, sw);
      if (label.level() == 1 && label.index_in_level(params_) == 0) {
        lft.set(1, static_cast<PortId>(params_.half() + 1));  // up instead
      }
      return lft;
    }

   private:
    FatTreeParams params_;
    SlidRouting inner_;
  };

  const Broken scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  // The walk for (src != P(000..001) subtree, lid 1) now oscillates: it
  // descends to SW<0,1>, gets kicked back up, descends again, ... so
  // verify_all_paths must flag it; the CDG check may or may not see a cycle
  // (the oscillation revisits channels, which *is* a cycle).
  const RoutingReport paths = verify_all_paths(fabric, scheme, routes);
  EXPECT_FALSE(paths.ok());
  const RoutingReport cdg = verify_deadlock_free(fabric, scheme, routes);
  EXPECT_FALSE(cdg.ok());
}

}  // namespace
}  // namespace mlid

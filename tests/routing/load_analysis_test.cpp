// Static load analysis: conservation, the predicted MLID/SLID imbalance
// (paper Figures 8/9 quantified), and cross-validation against the
// simulator's measured utilizations.
#include "routing/load_analysis.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "routing/fat_tree_routing.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

TEST(TrafficMatrix, RowsAreNormalized) {
  for (const auto& m :
       {TrafficMatrix::uniform(8), TrafficMatrix::centric(8, 3, 0.2)}) {
    for (NodeId src = 0; src < 8; ++src) {
      double row = 0.0;
      for (NodeId dst = 0; dst < 8; ++dst) {
        EXPECT_GE(m.rate(src, dst), 0.0);
        row += m.rate(src, dst);
      }
      EXPECT_NEAR(row, 1.0, 1e-12);
      EXPECT_EQ(m.rate(src, src), 0.0);
    }
  }
}

TEST(TrafficMatrix, CentricConcentratesOnTheHotNode) {
  const TrafficMatrix m = TrafficMatrix::centric(16, 5, 0.2);
  EXPECT_NEAR(m.rate(0, 5), 0.2 + 0.8 / 15.0, 1e-12);
  EXPECT_NEAR(m.rate(0, 1), 0.8 / 15.0, 1e-12);
}

TEST(TrafficMatrix, PermutationValidation) {
  EXPECT_NO_THROW(TrafficMatrix::permutation({1, 0, 3, 2}));
  EXPECT_THROW(TrafficMatrix::permutation({0, 1, 2, 3}), ContractViolation);
  EXPECT_THROW(TrafficMatrix::permutation({4, 0, 1, 2}), ContractViolation);
}

TEST(LoadAnalysis, NodeLinkLoadsEqualTheMatrixMarginals) {
  // The load on src's NIC link is src's total injection (= 1); the load on
  // the link into dst is the column sum of the matrix.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const LoadAnalysis analysis(fabric, scheme, routes);
  const TrafficMatrix matrix = TrafficMatrix::centric(8, 0, 0.5);
  const auto loads = analysis.predict(matrix);

  for (const PredictedLoad& entry : loads) {
    const Device& dev = fabric.fabric().device(entry.dev);
    if (dev.kind() == DeviceKind::kEndnode) {
      EXPECT_NEAR(entry.load, 1.0, 1e-12) << "NIC of " << dev.name();
    }
    const PortRef peer = dev.peer(entry.port);
    const Device& peer_dev = fabric.fabric().device(peer.device);
    if (peer_dev.kind() == DeviceKind::kEndnode) {
      double column = 0.0;
      for (NodeId src = 0; src < 8; ++src) {
        column += matrix.rate(src, peer_dev.node_id);
      }
      EXPECT_NEAR(entry.load, column, 1e-12)
          << "terminal link of " << peer_dev.name();
    }
  }
}

TEST(LoadAnalysis, TotalLoadEqualsRateWeightedPathLengths) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const LoadAnalysis analysis(fabric, scheme, routes);
  const TrafficMatrix matrix = TrafficMatrix::uniform(16);
  const auto loads = analysis.predict(matrix);
  const double total = std::accumulate(
      loads.begin(), loads.end(), 0.0,
      [](double a, const PredictedLoad& b) { return a + b.load; });
  double expected = 0.0;
  for (NodeId src = 0; src < 16; ++src) {
    for (NodeId dst = 0; dst < 16; ++dst) {
      if (src == dst) continue;
      expected += matrix.rate(src, dst) *
                  min_path_links(fabric.params(), fabric.node_label(src),
                                 fabric.node_label(dst));
    }
  }
  EXPECT_NEAR(total, expected, 1e-9);
}

TEST(LoadAnalysis, UniformTrafficLoadsNearlyBalancedAndSchemeIndependent) {
  // Under the uniform matrix the two schemes produce the same aggregate
  // link-load distribution (flows per link differ only in *which* flows,
  // not how many); the residual stddev reflects the ascent-vs-descent role
  // split, not imbalance within a level.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const MlidRouting mlid(fabric.params());
  const SlidRouting slid(fabric.params());
  const CompiledRoutes mlid_routes(fabric, mlid);
  const CompiledRoutes slid_routes(fabric, slid);
  const LoadAnalysis mlid_analysis(fabric, mlid, mlid_routes);
  const LoadAnalysis slid_analysis(fabric, slid, slid_routes);
  const auto matrix = TrafficMatrix::uniform(16);
  const auto a = mlid_analysis.summarize(mlid_analysis.predict(matrix));
  const auto b = slid_analysis.summarize(slid_analysis.predict(matrix));
  EXPECT_NEAR(a.max_load, b.max_load, 1e-9);
  EXPECT_NEAR(a.mean_load, b.mean_load, 1e-9);
  EXPECT_NEAR(a.stddev_load, b.stddev_load, 1e-9);
  EXPECT_LT(a.stddev_load, 0.1 * a.mean_load);
}

TEST(LoadAnalysis, MlidSpreadsTheHotSpotSlidFunnelsIt) {
  // Pure hot spot: every node sends only to node 0.  SLID funnels every
  // remote flow through one root and one final descent link (load 14);
  // MLID spreads the descents over all m/2 = 2 links into the hot leaf
  // (load 7) -- the achievable gain on the last inter-switch stage is
  // bounded by the leaf's down-degree even though four roots are used.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const TrafficMatrix matrix = TrafficMatrix::centric(16, 0, 1.0);

  const MlidRouting mlid(fabric.params());
  const CompiledRoutes mlid_routes(fabric, mlid);
  const auto mlid_summary = LoadAnalysis(fabric, mlid, mlid_routes)
                                .summarize(LoadAnalysis(fabric, mlid,
                                                        mlid_routes)
                                               .predict(matrix));

  const SlidRouting slid(fabric.params());
  const CompiledRoutes slid_routes(fabric, slid);
  const auto slid_summary = LoadAnalysis(fabric, slid, slid_routes)
                                .summarize(LoadAnalysis(fabric, slid,
                                                        slid_routes)
                                               .predict(matrix));

  EXPECT_NEAR(slid_summary.max_load, 14.0, 1e-9);
  EXPECT_NEAR(mlid_summary.max_load, 7.0, 1e-9);
  EXPECT_GT(mlid_summary.saturation_bound, slid_summary.saturation_bound);
}

TEST(LoadAnalysis, PredictionMatchesSimulatedUtilizationRanking) {
  // The analytically hottest link must also be (one of) the hottest in a
  // low-load simulation, where queueing effects are negligible.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const LoadAnalysis analysis(fabric, subnet.scheme(), subnet.routes());
  const auto predicted =
      analysis.predict(TrafficMatrix::centric(8, 0, 1.0));

  SimConfig cfg;
  cfg.warmup_ns = 10'000;
  cfg.measure_ns = 60'000;
  cfg.seed = 3;
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kCentric, 1.0, 0, 3},
                                         0.2);
  sim.run();
  const auto measured = sim.link_loads();

  const auto hottest_predicted = std::max_element(
      predicted.begin(), predicted.end(),
      [](const auto& a, const auto& b) { return a.load < b.load; });
  const auto hottest_measured = std::max_element(
      measured.begin(), measured.end(), [](const auto& a, const auto& b) {
        return a.busy_fraction < b.busy_fraction;
      });
  EXPECT_EQ(hottest_predicted->dev, hottest_measured->dev);
  EXPECT_EQ(hottest_predicted->port, hottest_measured->port);
}

}  // namespace
}  // namespace mlid

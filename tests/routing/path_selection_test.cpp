// Tests for the path selection scheme (paper Section 4.2).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "routing/fat_tree_routing.hpp"
#include "topology/properties.hpp"

namespace mlid {
namespace {

TEST(PathSelection, PaperFigure11Example) {
  // Figure 11 (digits restored): in IBFT(4, 3) the members of gcpg(0, 1) =
  // {P(000), P(001), P(010), P(011)} sending to P(100) pick the four
  // consecutive LIDs BaseLID(P(100)) + {0, 1, 2, 3} = {17, 18, 19, 20}.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  const NodeId dst = 4;  // P(100)
  EXPECT_EQ(scheme.lids_of(dst).base(), 17u);
  EXPECT_EQ(scheme.select_dlid(0, dst), 17u);  // P(000)
  EXPECT_EQ(scheme.select_dlid(1, dst), 18u);  // P(001)
  EXPECT_EQ(scheme.select_dlid(2, dst), 19u);  // P(010)
  EXPECT_EQ(scheme.select_dlid(3, dst), 20u);  // P(011)
}

TEST(PathSelection, SlidAlwaysPicksTheSingleLid) {
  const FatTreeParams p(4, 3);
  const SlidRouting scheme(p);
  for (NodeId src = 0; src < p.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
      EXPECT_EQ(scheme.select_dlid(src, dst), dst + 1);
    }
  }
}

TEST(PathSelection, SameLeafUsesBaseLid) {
  // Nodes under one leaf switch have a unique minimal path; the rank term
  // vanishes and the base LID is used.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  EXPECT_EQ(scheme.select_dlid(0, 1), scheme.lids_of(1).base());  // P(000)->P(001)
  EXPECT_EQ(scheme.select_dlid(1, 0), scheme.lids_of(0).base());
}

TEST(PathSelection, SelfSendIsBaseLid) {
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  EXPECT_EQ(scheme.select_dlid(5, 5), scheme.lids_of(5).base());
}

class SelectionSweep : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(SelectionSweep, DlidAlwaysBelongsToTheDestination) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  const MlidRouting scheme(p);
  for (NodeId src = 0; src < p.num_nodes(); ++src) {
    for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
      const Lid dlid = scheme.select_dlid(src, dst);
      EXPECT_TRUE(scheme.lids_of(dst).contains(dlid));
      EXPECT_EQ(scheme.node_of_lid(dlid), dst);
    }
  }
}

TEST_P(SelectionSweep, SubgroupMembersGetDistinctDlids) {
  // The heart of MLID (Section 4.2): for a fixed destination, all members
  // of the source's gcp subgroup choose pairwise different DLIDs, i.e. the
  // one-to-one source -> path mapping the paper claims.
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  const MlidRouting scheme(p);
  for (NodeId dst = 0; dst < p.num_nodes(); ++dst) {
    const NodeLabel dst_label = NodeLabel::from_pid(p, dst);
    // subgroup key -> set of chosen DLIDs
    std::map<std::pair<int, std::uint32_t>, std::set<Lid>> chosen;
    for (NodeId src = 0; src < p.num_nodes(); ++src) {
      if (src == dst) continue;
      const NodeLabel src_label = NodeLabel::from_pid(p, src);
      const int alpha = gcp_length(p, src_label, dst_label);
      const std::uint32_t rank =
          (alpha + 1 < n) ? rank_in_group(p, src_label, alpha + 1) : 0;
      const std::uint32_t prefix = src - rank;
      const Lid dlid = scheme.select_dlid(src, dst);
      EXPECT_TRUE((chosen[{alpha, prefix}].insert(dlid).second))
          << "sources " << src_label.to_string() << " (subgroup " << prefix
          << ") reuse DLID " << dlid << " toward " << dst_label.to_string();
    }
    // Each subgroup uses a dense block of DLIDs starting at the base.
    for (const auto& [key, dlids] : chosen) {
      EXPECT_EQ(*dlids.begin(), scheme.lids_of(dst).base());
      EXPECT_EQ(*dlids.rbegin(),
                scheme.lids_of(dst).base() + dlids.size() - 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, SelectionSweep,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2}));

}  // namespace
}  // namespace mlid

// The load-spreading property that motivates MLID (paper Figures 8/9):
// senders of a subgroup reach a common destination through pairwise
// distinct least common ancestors.  SLID, by design, funnels them through
// one LCA -- we assert both directions.
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

class MlidSpreading : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(MlidSpreading, SubgroupsUseDistinctLcas) {
  const auto [m, n] = GetParam();
  const FatTreeParams p(m, n);
  const FatTreeFabric fabric(p);
  const MlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  const RoutingReport report = verify_lca_spreading(fabric, scheme, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
}

INSTANTIATE_TEST_SUITE_P(Grid, MlidSpreading,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{4, 4}, std::pair{8, 2},
                                           std::pair{8, 3}, std::pair{16, 2}));

TEST(SlidSpreading, ConvergesOntoASingleLca) {
  // The baseline's defect (paper Figure 9a): with one LID per node every
  // source subtree funnels through the same ancestors, so the spreading
  // check must report reuse for any tree with more than one LCA choice.
  const FatTreeParams p(4, 3);
  const FatTreeFabric fabric(p);
  const SlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  const RoutingReport report =
      verify_lca_spreading(fabric, scheme, routes, /*max_problems=*/5);
  EXPECT_FALSE(report.ok());
}

TEST(SlidSpreading, AllSendersToOneDestinationShareTheFinalLink) {
  // Stronger statement of the congestion scenario: under SLID, every packet
  // towards P(000) enters its leaf switch through a path ending in the same
  // final inter-switch link, because the DLID fully determines the descent.
  const FatTreeParams p(4, 3);
  const FatTreeFabric fabric(p);
  const SlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  const Lid dlid = scheme.select_dlid(8, 0);
  DeviceId shared_lca = kInvalidDevice;
  for (NodeId src = 4; src < 16; ++src) {  // all sources outside 0xx
    const PathTrace trace = trace_path(fabric, routes, src, dlid);
    ASSERT_TRUE(trace.complete);
    // LCA for alpha = 0 is the single root this DLID maps to.
    const DeviceId lca = trace.hops[trace.hops.size() - 3].device;
    if (shared_lca == kInvalidDevice) {
      shared_lca = lca;
    } else {
      EXPECT_EQ(lca, shared_lca);
    }
  }
}

TEST(MlidSpreadingExample, PaperFigure11RoutesUseFourDistinctRoots) {
  const FatTreeParams p(4, 3);
  const FatTreeFabric fabric(p);
  const MlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  std::set<DeviceId> roots;
  for (NodeId src = 0; src < 4; ++src) {  // gcpg(0,1) -> P(100)
    const PathTrace trace =
        trace_path(fabric, routes, src, scheme.select_dlid(src, 4));
    ASSERT_TRUE(trace.complete);
    ASSERT_EQ(trace.hops.size(), 6u);  // node + 5 switches
    const Device& turn = fabric.fabric().device(trace.hops[3].device);
    EXPECT_EQ(fabric.switch_label(turn.switch_id).level(), 0);
    roots.insert(trace.hops[3].device);
  }
  EXPECT_EQ(roots.size(), 4u);
}

}  // namespace
}  // namespace mlid

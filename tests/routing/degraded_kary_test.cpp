// Fault tolerance on the k-ary family and additional load-analysis matrix
// coverage: the extensions composed together.
#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/load_analysis.hpp"
#include "routing/updown.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

TEST(DegradedKary, UpdnRoutesAroundAFailedUplink) {
  FatTreeFabric fabric(FatTreeParams::kary(2, 3));
  // Fail the first level-1 switch's first up port.
  const SwitchLabel victim = SwitchLabel::from_index(fabric.params(), 1, 0);
  fabric.mutable_fabric().disconnect(
      fabric.switch_device(victim.switch_id(fabric.params())),
      static_cast<PortId>(fabric.params().half() + 1));
  const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
  ASSERT_TRUE(updn.fully_connected());
  const CompiledRoutes routes(fabric, updn);
  const RoutingReport report = verify_all_paths_relaxed(fabric, updn, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
  EXPECT_TRUE(verify_deadlock_free(fabric, updn, routes).ok());
}

TEST(DegradedKary, PartitionDetectedWhenLeafLosesAllUplinks) {
  FatTreeFabric fabric(FatTreeParams::kary(2, 2));
  const SwitchLabel leaf = SwitchLabel::from_index(fabric.params(), 1, 0);
  const DeviceId dev = fabric.switch_device(leaf.switch_id(fabric.params()));
  fabric.mutable_fabric().disconnect(dev, 3);
  fabric.mutable_fabric().disconnect(dev, 4);
  const UpDownRouting updn(fabric, 0);
  EXPECT_FALSE(updn.fully_connected());
}

TEST(LoadAnalysisPermutation, MatrixDrivesPredictionsCorrectly) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const MlidRouting scheme(fabric.params());
  const CompiledRoutes routes(fabric, scheme);
  const LoadAnalysis analysis(fabric, scheme, routes);
  // Ring permutation: every node sends exactly one unit.
  std::vector<NodeId> dst(8);
  for (NodeId i = 0; i < 8; ++i) dst[i] = (i + 1) % 8;
  const auto loads = analysis.predict(TrafficMatrix::permutation(dst));
  // Every NIC link carries exactly 1 unit out and 1 unit in.
  for (const PredictedLoad& entry : loads) {
    const Device& device = fabric.fabric().device(entry.dev);
    if (device.kind() == DeviceKind::kEndnode) {
      EXPECT_DOUBLE_EQ(entry.load, 1.0);
    }
    const Device& peer =
        fabric.fabric().device(device.peer(entry.port).device);
    if (peer.kind() == DeviceKind::kEndnode) {
      EXPECT_DOUBLE_EQ(entry.load, 1.0);
    }
  }
}

TEST(RunFigure, EmptyLoadGridYieldsNoPoints) {
  FigureSpec spec;
  spec.title = "empty";
  spec.m = 4;
  spec.n = 2;
  spec.loads = {};
  const auto points = run_sweep(spec, {.threads = 1});
  EXPECT_TRUE(points.empty());
}

}  // namespace
}  // namespace mlid

// Exhaustive path properties: every (source, DLID) pair routes minimally to
// the right node, ascending then descending (verify_all_paths).
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/registry.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

struct Case {
  int m;
  int n;
  std::string_view kind;
};

class AllPaths : public ::testing::TestWithParam<Case> {};

TEST_P(AllPaths, EveryPathIsMinimalCorrectAndUpDown) {
  const auto param = GetParam();
  const FatTreeParams p(param.m, param.n);
  const FatTreeFabric fabric(p);
  const auto scheme = make_scheme(param.kind, fabric);
  const CompiledRoutes routes(fabric, *scheme);
  const RoutingReport report = verify_all_paths(fabric, *scheme, routes);
  for (const auto& problem : report.problems) ADD_FAILURE() << problem;
  // Exactly N * (N - 1) * 2^LMC paths were walked.
  const std::uint64_t expected =
      static_cast<std::uint64_t>(p.num_nodes()) * (p.num_nodes() - 1) *
      scheme->lids_of(0).count();
  EXPECT_EQ(report.paths_checked, expected);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AllPaths,
    ::testing::Values(Case{4, 2, "MLID"},
                      Case{4, 3, "MLID"},
                      Case{4, 4, "MLID"},
                      Case{8, 2, "MLID"},
                      Case{8, 3, "MLID"},
                      Case{16, 2, "MLID"},
                      Case{4, 2, "SLID"},
                      Case{4, 3, "SLID"},
                      Case{4, 4, "SLID"},
                      Case{8, 2, "SLID"},
                      Case{8, 3, "SLID"},
                      Case{16, 2, "SLID"}));

TEST(PathTrace, RendersReadableDiagnostics) {
  const FatTreeParams p(4, 2);
  const FatTreeFabric fabric(p);
  const MlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  const PathTrace trace =
      trace_path(fabric, routes, 0, scheme.select_dlid(0, 7));
  ASSERT_TRUE(trace.complete);
  const std::string text = to_string(fabric, trace);
  EXPECT_EQ(text.rfind("P(00)", 0), 0u);
  EXPECT_NE(text.find("P(31)"), std::string::npos);
  EXPECT_EQ(text.find("INCOMPLETE"), std::string::npos);
}

TEST(PathTrace, HopLimitMarksIncomplete) {
  const FatTreeParams p(4, 2);
  const FatTreeFabric fabric(p);
  const MlidRouting scheme(p);
  const CompiledRoutes routes(fabric, scheme);
  const PathTrace trace =
      trace_path(fabric, routes, 0, scheme.select_dlid(0, 7), /*max_hops=*/1);
  EXPECT_FALSE(trace.complete);
  EXPECT_NE(to_string(fabric, trace).find("INCOMPLETE"), std::string::npos);
}

}  // namespace
}  // namespace mlid

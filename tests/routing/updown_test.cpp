// Generic up*/down* routing: equivalence with MLID on pristine trees and
// the BFS machinery itself.
#include "routing/updown.hpp"

#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/validate.hpp"

namespace mlid {
namespace {

class UpDownPristine : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(UpDownPristine, ReproducesMlidTablesExactly) {
  // On an undamaged fat tree, BFS distances equal the closed forms and the
  // digit-based candidate selection matches Equation (2), so the computed
  // LFTs must be entry-for-entry identical to MLID's.
  const auto [m, n] = GetParam();
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
  const MlidRouting mlid(fabric.params());
  ASSERT_TRUE(updn.fully_connected());
  ASSERT_EQ(updn.max_lid(), mlid.max_lid());
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    const Lft a = updn.build_lft(sw);
    const Lft b = mlid.build_lft(sw);
    for (Lid lid = 1; lid <= mlid.max_lid(); ++lid) {
      ASSERT_EQ(int(a.lookup(lid)), int(b.lookup(lid)))
          << "switch " << sw << " lid " << lid;
    }
  }
}

TEST_P(UpDownPristine, PassesAllRoutingValidators) {
  const auto [m, n] = GetParam();
  const FatTreeFabric fabric{FatTreeParams(m, n)};
  const UpDownRouting updn(fabric, fabric.params().mlid_lmc());
  const CompiledRoutes routes(fabric, updn);
  for (const auto& p : verify_all_paths(fabric, updn, routes).problems) {
    ADD_FAILURE() << p;
  }
  EXPECT_TRUE(verify_deadlock_free(fabric, updn, routes).ok());
  EXPECT_TRUE(verify_lca_spreading(fabric, updn, routes).ok());
}

INSTANTIATE_TEST_SUITE_P(Grid, UpDownPristine,
                         ::testing::Values(std::pair{4, 2}, std::pair{4, 3},
                                           std::pair{8, 2}, std::pair{8, 3}));

TEST(UpDown, LmcZeroReproducesSlidTablesExactly) {
  // With one LID per node the digit rule consumes the destination PID's
  // digits, which is precisely SLID's per-destination striping.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const UpDownRouting updn(fabric, 0);
  const SlidRouting slid(fabric.params());
  for (SwitchId sw = 0; sw < fabric.params().num_switches(); ++sw) {
    const Lft a = updn.build_lft(sw);
    const Lft b = slid.build_lft(sw);
    for (Lid lid = 1; lid <= slid.max_lid(); ++lid) {
      ASSERT_EQ(int(a.lookup(lid)), int(b.lookup(lid)))
          << "switch " << sw << " lid " << lid;
    }
  }
}

TEST(UpDown, LmcZeroGivesOneLidPerNode) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const UpDownRouting updn(fabric, 0);
  EXPECT_EQ(updn.max_lid(), 16u);
  EXPECT_EQ(updn.lids_of(5).count(), 1u);
  EXPECT_EQ(updn.select_dlid(0, 5), 6u);  // base LID = PID + 1
  const CompiledRoutes routes(fabric, updn);
  EXPECT_TRUE(verify_all_paths(fabric, updn, routes).ok());
}

TEST(UpDown, RejectsOversizedLmc) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  EXPECT_THROW(UpDownRouting(fabric, 5), ContractViolation);
}

TEST(UpDown, SelectDlidStaysInsideTheDestinationBlock) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const UpDownRouting updn(fabric, 1);  // reduced LMC
  for (NodeId src = 0; src < 32; ++src) {
    for (NodeId dst = 0; dst < 32; ++dst) {
      const Lid dlid = updn.select_dlid(src, dst);
      EXPECT_TRUE(updn.lids_of(dst).contains(dlid));
    }
  }
}

}  // namespace
}  // namespace mlid

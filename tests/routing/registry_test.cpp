// The string-keyed scheme registry that replaced the closed SchemeKind
// enum (shim removed after its one-release grace period): lookup semantics,
// seed-key stability (sweep seeds must not move across the migration), and
// open registration.
#include "routing/registry.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "routing/fat_tree_routing.hpp"
#include "routing/scheme.hpp"
#include "subnet/subnet.hpp"

namespace mlid {
namespace {

TEST(SchemeRegistry, SeedSchemesAreRegistered) {
  auto& reg = SchemeRegistry::instance();
  for (const char* name :
       {"SLID", "MLID", "UPDN", "PartialMLID-lmc1", "PartialMLID-lmc2"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
  }
  EXPECT_FALSE(reg.contains("no-such-scheme"));
  EXPECT_FALSE(reg.contains(""));
}

TEST(SchemeRegistry, LookupIsCaseInsensitive) {
  auto& reg = SchemeRegistry::instance();
  EXPECT_TRUE(reg.contains("mlid"));
  EXPECT_TRUE(reg.contains("Slid"));
  EXPECT_TRUE(reg.contains("updn"));
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const auto scheme = make_scheme("mlid", fabric);
  EXPECT_EQ(scheme->name(), "MLID");
}

TEST(SchemeRegistry, SeedKeysPinTheRetiredEnumValues) {
  // sweep_point_seed mixes these keys into every grid point's RNG stream;
  // SLID = 0 and MLID = 1 reproduce the retired enum's values so BENCH
  // numbers from before the registry migration stay byte-identical.
  EXPECT_EQ(scheme_seed_key("SLID"), 0u);
  EXPECT_EQ(scheme_seed_key("MLID"), 1u);
  // The rest are stable too -- reordering registrations must not move them.
  EXPECT_EQ(scheme_seed_key("UPDN"), 2u);
  EXPECT_EQ(scheme_seed_key("PartialMLID-lmc1"), 3u);
  EXPECT_EQ(scheme_seed_key("PartialMLID-lmc2"), 4u);
}

TEST(SchemeRegistry, UnknownNameThrowsWithTheListing) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  try {
    (void)make_scheme("bogus", fabric);
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unknown routing scheme 'bogus'"), std::string::npos)
        << what;
    EXPECT_NE(what.find("SLID"), std::string::npos) << what;
    EXPECT_NE(what.find("MLID"), std::string::npos) << what;
  }
  EXPECT_THROW((void)scheme_seed_key("bogus"), ContractViolation);
}

TEST(SchemeRegistry, ListingJoinsEveryRegisteredName) {
  const std::string listing = scheme_listing();
  for (const std::string& name : SchemeRegistry::instance().names()) {
    EXPECT_NE(listing.find(name), std::string::npos) << name;
  }
}

TEST(SchemeRegistry, SubnetBringsUpFromAName) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet mlid(fabric, "MLID");
  EXPECT_EQ(mlid.scheme().name(), "MLID");
  const Subnet updn(fabric, "UPDN");
  EXPECT_EQ(updn.scheme().name(), "UPDN");
}

TEST(SchemeRegistry, AcceptsCustomRegistrations) {
  auto& reg = SchemeRegistry::instance();
  if (!reg.contains("test-custom-slid")) {
    reg.add("test-custom-slid", 0xC05Cu, [](const FatTreeFabric& f) {
      return std::make_unique<SlidRouting>(f.params());
    });
  }
  EXPECT_TRUE(reg.contains("test-custom-slid"));
  EXPECT_EQ(scheme_seed_key("test-custom-slid"), 0xC05Cu);
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "test-custom-slid");
  EXPECT_EQ(subnet.scheme().name(), "SLID");  // factory decides the scheme
}

TEST(SchemeRegistry, RejectsDuplicateNamesAndSeedKeys) {
  auto& reg = SchemeRegistry::instance();
  const auto factory = [](const FatTreeFabric& f) {
    return std::make_unique<SlidRouting>(f.params());
  };
  // Same name (any case) is a registration bug, as is reusing a seed key --
  // two schemes sharing a key would share sweep RNG streams.
  EXPECT_THROW(reg.add("MLID", 999, factory), ContractViolation);
  EXPECT_THROW(reg.add("mlid", 999, factory), ContractViolation);
  EXPECT_THROW(reg.add("fresh-name-dup-key", 0, factory), ContractViolation);
}

}  // namespace
}  // namespace mlid

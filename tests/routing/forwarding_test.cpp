// Tests for the forwarding table assignment scheme: Equations (1) and (2)
// of paper Section 4.3, including the paper's step-by-step walkthrough.
#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/registry.hpp"

namespace mlid {
namespace {

std::array<int, kMaxTreeHeight> digits(std::initializer_list<int> list) {
  std::array<int, kMaxTreeHeight> d{};
  int i = 0;
  for (int v : list) d[static_cast<std::size_t>(i++)] = v;
  return d;
}

TEST(Forwarding, PaperSection43Walkthrough) {
  // The packet P(000) -> P(100) carries DLID = BaseLID(P(100)) + rank(P(000))
  // = 17 and must traverse SW<00,2>, SW<00,1>, SW<00,0>, SW<10,1>, SW<10,2>
  // (path "Q" through root SW<00,0>).  Physical ports below restore the
  // digits the OCR lost; they follow from Equations (1)/(2) + the +1 shift.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  const Lid dlid = 17;

  auto sw = [&](int level, std::initializer_list<int> w) {
    return SwitchLabel::from_digits(p, level, digits(w));
  };
  // Ascent (case 2): both hops pick up-digit 0 -> tree port 2, physical 3.
  EXPECT_EQ(int(scheme.output_port(sw(2, {0, 0}), dlid)), 3);
  EXPECT_EQ(int(scheme.output_port(sw(1, {0, 0}), dlid)), 3);
  // Turnaround at the root (case 1): port p0 + 1 = 2.
  EXPECT_EQ(int(scheme.output_port(sw(0, {0, 0}), dlid)), 2);
  // Descent: p1 + 1 = 1, then the node port p2 + 1 = 1.
  EXPECT_EQ(int(scheme.output_port(sw(1, {1, 0}), dlid)), 1);
  EXPECT_EQ(int(scheme.output_port(sw(2, {1, 0}), dlid)), 1);
}

TEST(Forwarding, OffsetSelectsTheRootBijectively) {
  // DLIDs 17..20 (offsets 0..3) toward P(100) must climb out of the 00
  // subtree toward roots <00>, <01>, <10>, <11> respectively: offset bits
  // are consumed least-significant-first on the way up, so the reached root
  // label reads the offset's binary numeral msb-first -- a bijection.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  auto leaf = SwitchLabel::from_digits(p, 2, digits({0, 0}));
  auto mid0 = SwitchLabel::from_digits(p, 1, digits({0, 0}));
  auto mid1 = SwitchLabel::from_digits(p, 1, digits({0, 1}));

  // offset 0 (lid 17): leaf up digit 0 -> SW<00,1>, up digit 0 -> root <00>.
  EXPECT_EQ(int(scheme.output_port(leaf, 17)), 3);
  EXPECT_EQ(int(scheme.output_port(mid0, 17)), 3);
  // offset 1 (lid 18): leaf up digit 1 -> SW<01,1>, up digit 0 -> root <01>.
  EXPECT_EQ(int(scheme.output_port(leaf, 18)), 4);
  EXPECT_EQ(int(scheme.output_port(mid1, 18)), 3);
  // offset 2 (lid 19): leaf up digit 0 -> SW<00,1>, up digit 1 -> root <10>.
  EXPECT_EQ(int(scheme.output_port(leaf, 19)), 3);
  EXPECT_EQ(int(scheme.output_port(mid0, 19)), 4);
  // offset 3 (lid 20): leaf up digit 1 -> SW<01,1>, up digit 1 -> root <11>.
  EXPECT_EQ(int(scheme.output_port(leaf, 20)), 4);
  EXPECT_EQ(int(scheme.output_port(mid1, 20)), 4);
}

TEST(Forwarding, DescentIgnoresTheOffset) {
  // Once the destination is below the switch, every LID of the destination
  // maps to the same (unique) down port.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  const auto root = SwitchLabel::from_digits(p, 0, digits({1, 1}));
  for (Lid lid = 17; lid <= 20; ++lid) {
    EXPECT_EQ(int(scheme.output_port(root, lid)), 2);  // p0 + 1
  }
}

TEST(Forwarding, LftCoversEveryAssignedLidOnEverySwitch) {
  const FatTreeParams p(4, 3);
  const FatTreeFabric fabric(p);
  for (const std::string_view kind : {"SLID", "MLID"}) {
    const auto scheme = make_scheme(kind, fabric);
    for (SwitchId sw = 0; sw < p.num_switches(); ++sw) {
      const Lft lft = scheme->build_lft(sw);
      EXPECT_EQ(lft.max_lid(), scheme->max_lid());
      for (Lid lid = 1; lid <= scheme->max_lid(); ++lid) {
        ASSERT_TRUE(lft.has(lid))
            << kind << " switch " << sw << " lid " << lid;
      }
    }
  }
}

TEST(Forwarding, PortsAreAlwaysWithinTheSwitchRadix) {
  const FatTreeParams p(8, 3);
  const MlidRouting scheme(p);
  for (SwitchId sw = 0; sw < p.num_switches(); ++sw) {
    const SwitchLabel label = switch_from_id(p, sw);
    const Lft lft = scheme.build_lft(sw);
    for (Lid lid = 1; lid <= scheme.max_lid(); ++lid) {
      const int port = lft.lookup(lid);
      EXPECT_GE(port, 1);
      EXPECT_LE(port, p.m());
      if (label.level() == 0) {
        EXPECT_LE(port, num_down_ports(p, 0)) << "roots have no up ports";
      }
    }
  }
}

TEST(Forwarding, SlidUpPortsStripeByDestination) {
  // With one LID per node, Equation (2) consumes the PID's low digits:
  // destinations under different leaf ports of a remote subtree use
  // different up ports, spreading *per-destination* load (Figure 7).
  const FatTreeParams p(4, 3);
  const SlidRouting scheme(p);
  const auto leaf = SwitchLabel::from_digits(p, 2, digits({0, 0}));
  // P(100) has PID 4 -> lid 5, (lid-1) digit0 base2 = 0 -> port 3;
  // P(101) has PID 5 -> lid 6, digit0 = 1 -> port 4.
  EXPECT_EQ(int(scheme.output_port(leaf, 5)), 3);
  EXPECT_EQ(int(scheme.output_port(leaf, 6)), 4);
}

}  // namespace
}  // namespace mlid

// Tests for the processing-node addressing scheme (paper Section 4.1).
#include <gtest/gtest.h>

#include <vector>

#include "routing/fat_tree_routing.hpp"
#include "routing/registry.hpp"

namespace mlid {
namespace {

TEST(Addressing, PaperFigure10Example) {
  // Figure 10 (digits restored): in a 4-port 3-tree, LMC = 2 and
  // BaseLID(P(010)) = 9, so LIDset(P(010)) = {9, 10, 11, 12}.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  EXPECT_EQ(int(scheme.lmc()), 2);
  const NodeId node010 = 2;  // PID of P(010)
  const LidRange range = scheme.lids_of(node010);
  EXPECT_EQ(range.base(), 9u);
  EXPECT_EQ(range.count(), 4u);
  EXPECT_EQ(range.last(), 12u);
}

TEST(Addressing, BaseLidFormula) {
  // BaseLID(P(p)) = PID * 2^LMC + 1.
  const FatTreeParams p(4, 3);
  const MlidRouting scheme(p);
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    EXPECT_EQ(scheme.lids_of(node).base(), node * 4 + 1);
  }
}

TEST(Addressing, SlidAssignsOneLidPerNode) {
  const FatTreeParams p(4, 3);
  const SlidRouting scheme(p);
  EXPECT_EQ(int(scheme.lmc()), 0);
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    const LidRange range = scheme.lids_of(node);
    EXPECT_EQ(range.base(), node + 1);
    EXPECT_EQ(range.count(), 1u);
  }
  EXPECT_EQ(scheme.max_lid(), p.num_nodes());
}

TEST(Addressing, NodeOfLidRejectsBadLids) {
  const FatTreeParams p(4, 2);
  const MlidRouting scheme(p);
  EXPECT_THROW(static_cast<void>(scheme.node_of_lid(0)), ContractViolation);
  EXPECT_THROW(static_cast<void>(scheme.node_of_lid(scheme.max_lid() + 1)),
               ContractViolation);
  EXPECT_THROW(static_cast<void>(scheme.lids_of(p.num_nodes())),
               ContractViolation);
}

struct AddressingCase {
  int m;
  int n;
  std::string_view kind;
};

class AddressingSweep : public ::testing::TestWithParam<AddressingCase> {};

TEST_P(AddressingSweep, LidBlocksAreDisjointAndCoverTheSpace) {
  const auto param = GetParam();
  const FatTreeParams p(param.m, param.n);
  const FatTreeFabric fabric(p);
  const auto scheme = make_scheme(param.kind, fabric);
  std::vector<NodeId> owner(scheme->max_lid() + 1, kInvalidNode);
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    const LidRange range = scheme->lids_of(node);
    for (Lid lid = range.base(); lid <= range.last(); ++lid) {
      ASSERT_EQ(owner[lid], kInvalidNode) << "LID " << lid << " double-assigned";
      owner[lid] = node;
      // The inverse mapping agrees.
      EXPECT_EQ(scheme->node_of_lid(lid), node);
    }
  }
  // LID 0 reserved, everything above it assigned: blocks are contiguous.
  EXPECT_EQ(owner[0], kInvalidNode);
  for (Lid lid = 1; lid < owner.size(); ++lid) {
    EXPECT_NE(owner[lid], kInvalidNode) << "LID " << lid << " unassigned";
  }
}

TEST_P(AddressingSweep, BlockSizeMatchesLmc) {
  const auto param = GetParam();
  const FatTreeParams p(param.m, param.n);
  const FatTreeFabric fabric(p);
  const auto scheme = make_scheme(param.kind, fabric);
  const std::uint32_t expected =
      param.kind == "MLID" ? p.paths_per_pair() : 1u;
  for (NodeId node = 0; node < p.num_nodes(); ++node) {
    EXPECT_EQ(scheme->lids_of(node).count(), expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AddressingSweep,
    ::testing::Values(AddressingCase{4, 2, "MLID"},
                      AddressingCase{4, 3, "MLID"},
                      AddressingCase{4, 4, "MLID"},
                      AddressingCase{8, 2, "MLID"},
                      AddressingCase{8, 3, "MLID"},
                      AddressingCase{16, 2, "MLID"},
                      AddressingCase{4, 3, "SLID"},
                      AddressingCase{8, 3, "SLID"}));

}  // namespace
}  // namespace mlid

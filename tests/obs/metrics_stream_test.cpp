// JSONL metrics stream: golden-line schema checks for every line kind, plus
// the flush-cadence boundary cases (a run shorter than one interval, the
// final partial window, an end time exactly on a window boundary).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stream.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Every line must be one self-contained flat JSON object ending in the
// streamer-stamped wall_ns.  A full parser is overkill; the structural
// invariants below are what downstream `json.loads` relies on.
void expect_jsonl_shape(const std::string& line) {
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  EXPECT_NE(line.find("\"kind\":\""), std::string::npos) << line;
  EXPECT_NE(line.find(",\"wall_ns\":"), std::string::npos) << line;
  // Flat object: no nested braces except the optional profile block.
  EXPECT_EQ(line.find('\n'), std::string::npos);
}

TEST(MetricsStream, RejectsBadConstruction) {
  EXPECT_THROW(MetricsStreamer("/nonexistent-dir/m.jsonl", 1'000),
               std::runtime_error);
  EXPECT_THROW(MetricsStreamer(temp_path("zero.jsonl"), 0),
               std::runtime_error);
  EXPECT_THROW(MetricsStreamer(temp_path("neg.jsonl"), -5),
               std::runtime_error);
}

TEST(MetricsStream, GoldenLineSchemas) {
  const std::string path = temp_path("golden.jsonl");
  {
    MetricsStreamer stream(path, 1'000);
    MetricsWindow w;
    w.t_ns = 1'000;
    w.window_ns = 1'000;
    w.partial = false;
    w.shards = 2;
    w.generated = 10;
    w.delivered = 8;
    w.dropped = 1;
    w.becn = 0;
    w.in_flight = 2;
    w.events_processed = 123;
    stream.window(w);

    ProfileSummary prof;
    prof.enabled = true;
    prof.shards = 2;
    prof.threads = 2;
    prof.processing_ns = 3'000;
    prof.barrier_wait_ns = 1'000;
    MetricsRunSummary s;
    s.end_ns = 25'000;
    s.shards = 2;
    s.threads = 2;
    s.generated = 10;
    s.delivered = 8;
    s.dropped = 1;
    s.events_processed = 123;
    s.profile = &prof;
    stream.run_summary(s);

    MetricsPoint pt;
    pt.series = "MLID 4VL \"quoted\"";
    pt.load = 0.5;
    pt.wall_seconds = 0.25;
    pt.events_processed = 123;
    pt.events_per_sec = 492.0;
    pt.completed = 1;
    pt.total = 9;
    stream.point(pt);
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 3u);
  for (const std::string& line : lines) expect_jsonl_shape(line);

  // Golden prefixes: key order is part of the schema (only the trailing
  // wall_ns value varies run to run).
  EXPECT_EQ(lines[0].substr(0, lines[0].find(",\"wall_ns\":")),
            "{\"kind\":\"window\",\"t_ns\":1000,\"window_ns\":1000,"
            "\"partial\":false,\"shards\":2,\"generated\":10,\"delivered\":8,"
            "\"dropped\":1,\"becn\":0,\"in_flight\":2,"
            "\"events_processed\":123");
  EXPECT_EQ(lines[1].substr(0, lines[1].find(",\"wall_ns\":")),
            "{\"kind\":\"summary\",\"end_ns\":25000,\"shards\":2,"
            "\"threads\":2,\"generated\":10,\"delivered\":8,\"dropped\":1,"
            "\"events_processed\":123,\"profile\":{\"shards\":2,"
            "\"threads\":2,\"windows\":0,\"control_steps\":0,"
            "\"handoff_messages\":0,\"total_wall_ns\":0,"
            "\"processing_ns\":3000,\"barrier_wait_ns\":1000,"
            "\"mailbox_ns\":0,\"control_ns\":0,"
            "\"barrier_wait_fraction\":0.25,\"max_imbalance\":0,"
            "\"mean_imbalance\":0}");
  // String escaping in the series label.
  EXPECT_NE(lines[2].find("\"series\":\"MLID 4VL \\\"quoted\\\"\""),
            std::string::npos);
  // Summary without a profile pointer omits the block entirely.
  const std::string path2 = temp_path("noprof.jsonl");
  {
    MetricsStreamer stream(path2, 1'000);
    stream.run_summary(MetricsRunSummary{});
  }
  EXPECT_EQ(read_lines(path2)[0].find("\"profile\""), std::string::npos);
}

SimConfig quick_canonical() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 7;
  cfg.event_order = EventOrder::kCanonical;
  return cfg;
}

std::size_t count_kind(const std::vector<std::string>& lines,
                       std::string_view kind) {
  const std::string tag = "{\"kind\":\"" + std::string(kind) + "\"";
  std::size_t n = 0;
  for (const std::string& l : lines) {
    if (l.rfind(tag, 0) == 0) ++n;
  }
  return n;
}

TEST(MetricsStream, SequentialWindowCadence) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimConfig cfg = quick_canonical();  // end = 25'000 ns
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 11};

  // Interval divides the end time exactly: full windows only, the last one
  // landing on end, so no partial line.
  const std::string exact = temp_path("seq_exact.jsonl");
  {
    MetricsStreamer stream(exact, 5'000);
    OpenLoopOptions options;
    options.metrics = &stream;
    Simulation::open_loop(subnet, cfg, traffic, 0.4, options).run();
  }
  std::vector<std::string> lines = read_lines(exact);
  for (const std::string& l : lines) expect_jsonl_shape(l);
  EXPECT_EQ(count_kind(lines, "window"), 5u);  // 5000..25000
  EXPECT_EQ(count_kind(lines, "summary"), 1u);
  EXPECT_EQ(lines.back().rfind("{\"kind\":\"summary\"", 0), 0u);
  for (const std::string& l : lines) {
    EXPECT_EQ(l.find("\"partial\":true"), std::string::npos) << l;
  }

  // Interval that does NOT divide the end time: the tail shows up as one
  // short window flagged partial, with the remainder width.
  const std::string ragged = temp_path("seq_ragged.jsonl");
  {
    MetricsStreamer stream(ragged, 7'000);
    OpenLoopOptions options;
    options.metrics = &stream;
    Simulation::open_loop(subnet, cfg, traffic, 0.4, options).run();
  }
  lines = read_lines(ragged);
  EXPECT_EQ(count_kind(lines, "window"), 4u);  // 7000,14000,21000 + partial
  ASSERT_GE(lines.size(), 2u);
  const std::string& last_window = lines[lines.size() - 2];
  EXPECT_NE(last_window.find("\"partial\":true"), std::string::npos);
  EXPECT_NE(last_window.find("\"t_ns\":25000,\"window_ns\":4000"),
            std::string::npos);

  // Run shorter than one interval: zero full windows, one partial covering
  // the whole run, then the summary.
  const std::string shorter = temp_path("seq_short.jsonl");
  {
    MetricsStreamer stream(shorter, 1'000'000);
    OpenLoopOptions options;
    options.metrics = &stream;
    Simulation::open_loop(subnet, cfg, traffic, 0.4, options).run();
  }
  lines = read_lines(shorter);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"partial\":true"), std::string::npos);
  EXPECT_NE(lines[0].find("\"t_ns\":25000,\"window_ns\":25000"),
            std::string::npos);
  EXPECT_EQ(count_kind(lines, "summary"), 1u);
}

TEST(MetricsStream, ShardedStreamMatchesCountersAndCadence) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimConfig cfg = quick_canonical();
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 11};

  for (const std::uint32_t shards : {2u, 4u}) {
    const std::string path =
        temp_path("sharded_" + std::to_string(shards) + ".jsonl");
    SimResult result;
    {
      MetricsStreamer stream(path, 7'000);
      OpenLoopOptions options;
      options.metrics = &stream;
      ShardedSimulation sim = ShardedSimulation::open_loop(
          subnet, cfg, traffic, 0.4, {shards, 0}, options);
      result = sim.run();
    }
    const std::vector<std::string> lines = read_lines(path);
    for (const std::string& l : lines) expect_jsonl_shape(l);
    EXPECT_EQ(count_kind(lines, "window"), 4u);
    EXPECT_EQ(count_kind(lines, "summary"), 1u);
    // Window deltas must sum to the run totals: the final partial window is
    // emitted before the root merge, so nothing is double-counted.
    std::uint64_t generated = 0;
    for (const std::string& l : lines) {
      if (l.rfind("{\"kind\":\"window\"", 0) != 0) continue;
      const auto pos = l.find("\"generated\":");
      ASSERT_NE(pos, std::string::npos);
      generated += std::stoull(l.substr(pos + 12));
    }
    EXPECT_EQ(generated, result.packets_generated);
    // The summary line reports fleet totals.
    std::ostringstream want;
    want << "\"shards\":" << shards;
    EXPECT_NE(lines.back().find(want.str()), std::string::npos);
  }
}

}  // namespace
}  // namespace mlid

// The observability passive contract, asserted: profiling and metrics
// streaming read host clocks and existing counters only, so simulation
// results are byte-identical with them on or off -- sequential and sharded,
// for every shard x thread combination.  Comparison goes through the JSON
// export with the profile block scrubbed (its wall times are host noise by
// design; everything else must match to the last bit).
#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "harness/report.hpp"
#include "obs/stream.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quick_canonical(bool profile) {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 3;
  cfg.event_order = EventOrder::kCanonical;
  cfg.profile = profile;
  return cfg;
}

// Profile-scrubbed JSON: what byte-identity means for profiled results.
std::string scrubbed_json(SimResult r) {
  r.profile = ProfileSummary{};
  return to_json(r);
}

TEST(ProfileParity, SequentialProfilingIsPassive) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  for (const double load : {0.2, 0.6}) {
    const SimResult off =
        Simulation::open_loop(subnet, quick_canonical(false), traffic, load)
            .run();
    const SimResult on =
        Simulation::open_loop(subnet, quick_canonical(true), traffic, load)
            .run();
    EXPECT_TRUE(on.profile.enabled);
    EXPECT_EQ(to_json(off), scrubbed_json(on)) << "load " << load;
  }
}

TEST(ProfileParity, ShardedProfilingIsPassiveForEveryShardThreadCombo) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  constexpr double kLoad = 0.6;
  // The unprofiled sequential run is the oracle for the whole matrix.
  const std::string oracle = to_json(
      Simulation::open_loop(subnet, quick_canonical(false), traffic, kLoad)
          .run());
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    for (const std::uint32_t threads : {1u, 2u, 4u}) {
      ShardedSimulation sim = ShardedSimulation::open_loop(
          subnet, quick_canonical(true), traffic, kLoad, {shards, threads});
      const SimResult on = sim.run();
      EXPECT_TRUE(on.profile.enabled);
      EXPECT_EQ(on.profile.shards, shards);
      EXPECT_EQ(oracle, scrubbed_json(on))
          << "shards " << shards << " threads " << threads;
    }
  }
}

TEST(ProfileParity, MetricsStreamingIsPassive) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  constexpr double kLoad = 0.6;
  const std::string oracle = to_json(
      Simulation::open_loop(subnet, quick_canonical(false), traffic, kLoad)
          .run());

  // Sequential with a stream attached: the pacer splits the run loop at
  // window boundaries but must not change what the simulation computes.
  {
    MetricsStreamer stream(::testing::TempDir() + "/parity_seq.jsonl", 3'000);
    OpenLoopOptions options;
    options.metrics = &stream;
    const SimResult streamed =
        Simulation::open_loop(subnet, quick_canonical(false), traffic, kLoad,
                              options)
            .run();
    EXPECT_EQ(oracle, to_json(streamed));
  }

  // Sharded: a stream boundary only splits a conservative-sync window, and
  // any window partition is a valid schedule.
  for (const std::uint32_t shards : {2u, 4u}) {
    MetricsStreamer stream(::testing::TempDir() + "/parity_shard" +
                               std::to_string(shards) + ".jsonl",
                           3'000);
    OpenLoopOptions options;
    options.metrics = &stream;
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, quick_canonical(false), traffic, kLoad, {shards, 0}, options);
    const SimResult streamed = sim.run();
    EXPECT_EQ(oracle, to_json(streamed)) << "shards " << shards;
  }
}

TEST(ProfileParity, FlightRecorderWorksUnderSharding) {
  // Satellite of the same contract: per-device rings are shard-safe
  // (devices are owner-exclusive), so a sharded run with the recorder on
  // still produces byte-identical results and can dump a ring on demand.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 9};
  constexpr double kLoad = 0.9;  // drops likely: gives the recorder a cause
  SimConfig cfg = quick_canonical(false);
  cfg.flight_recorder_depth = 32;
  const std::string oracle = to_json(
      Simulation::open_loop(subnet, quick_canonical(false), traffic, kLoad)
          .run());
  for (const std::uint32_t shards : {2u, 4u}) {
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, cfg, traffic, kLoad, {shards, 0});
    const SimResult r = sim.run();
    EXPECT_EQ(oracle, to_json(r)) << "shards " << shards;
    // The dump accessor must be callable either way; when a drop froze a
    // ring, its cause names the owning shard.
    const FlightRecorderDump& dump = sim.flight_dump();
    if (dump.valid()) {
      EXPECT_NE(dump.cause.find("shard"), std::string::npos) << dump.cause;
      EXPECT_FALSE(dump.events.empty());
    }
  }
}

}  // namespace
}  // namespace mlid

// Engine self-profiler content checks: a profiled run must come back with a
// populated ProfileSummary whose counters are consistent with the result it
// rode along with -- sequential and sharded alike.  (Byte-identity of the
// *results* under profiling lives in profile_parity_test.cpp.)
#include <gtest/gtest.h>

#include <cstdint>

#include "obs/profile.hpp"
#include "parallel/sharded.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quick_profiled() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 7;
  cfg.event_order = EventOrder::kCanonical;
  cfg.profile = true;
  return cfg;
}

TEST(Profile, DefaultSummaryIsDisabledAndZero) {
  const ProfileSummary p;
  EXPECT_FALSE(p.enabled);
  EXPECT_EQ(p.shards, 0u);
  EXPECT_EQ(p.windows, 0u);
  EXPECT_EQ(p.total_wall_ns, 0u);
  EXPECT_TRUE(p.shard_phases.empty());
  EXPECT_DOUBLE_EQ(p.barrier_wait_fraction(), 0.0);
  EXPECT_EQ(p, ProfileSummary{});
}

TEST(Profile, BarrierWaitFraction) {
  ProfileSummary p;
  p.processing_ns = 3'000;
  p.barrier_wait_ns = 1'000;
  EXPECT_DOUBLE_EQ(p.barrier_wait_fraction(), 0.25);
  p.barrier_wait_ns = 0;
  EXPECT_DOUBLE_EQ(p.barrier_wait_fraction(), 0.0);
  p.processing_ns = 0;
  EXPECT_DOUBLE_EQ(p.barrier_wait_fraction(), 0.0);  // nothing measured
}

TEST(Profile, UnprofiledRunCarriesDisabledSummary) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = quick_profiled();
  cfg.profile = false;
  const SimResult r =
      Simulation::open_loop(subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 11},
                            0.4)
          .run();
  EXPECT_FALSE(r.profile.enabled);
  EXPECT_EQ(r.profile, ProfileSummary{});
}

TEST(Profile, SequentialRunPopulatesDegenerateTaxonomy) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, quick_profiled(),
                            {TrafficKind::kUniform, 0.2, 0, 11}, 0.4)
          .run();
  const ProfileSummary& p = r.profile;
  EXPECT_TRUE(p.enabled);
  EXPECT_EQ(p.shards, 1u);
  EXPECT_EQ(p.threads, 1u);
  // Sequential runs have no windows, barriers, mailboxes or handoffs.
  EXPECT_EQ(p.windows, 0u);
  EXPECT_EQ(p.handoff_messages, 0u);
  EXPECT_EQ(p.barrier_wait_ns, 0u);
  EXPECT_EQ(p.mailbox_ns, 0u);
  EXPECT_DOUBLE_EQ(p.barrier_wait_fraction(), 0.0);
  // But the shared taxonomy is there: one shard phase, the whole run loop.
  ASSERT_EQ(p.shard_phases.size(), 1u);
  EXPECT_EQ(p.shard_phases[0].events_processed, r.events_processed);
  EXPECT_EQ(p.shard_phases[0].barrier_wait_ns, 0u);
  EXPECT_GT(p.total_wall_ns, 0u);
  EXPECT_EQ(p.processing_ns, p.shard_phases[0].processing_ns);
  // Queue op counters come from the engine's own EventQueueStats.
  EXPECT_EQ(p.queue_pops, r.events_processed);
  EXPECT_EQ(p.queue_pushes, r.events_scheduled);
}

TEST(Profile, ShardedRunPopulatesWindowAndImbalanceStats) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  for (const std::uint32_t shards : {2u, 4u}) {
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, quick_profiled(), {TrafficKind::kUniform, 0.2, 0, 11}, 0.4,
        {shards, 0});
    const SimResult r = sim.run();
    const ProfileSummary& p = r.profile;
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.shards, shards);
    EXPECT_EQ(p.threads, sim.threads_used());
    ASSERT_EQ(p.shard_phases.size(), shards);
    EXPECT_GT(p.windows, 0u);
    EXPECT_GT(p.total_wall_ns, 0u);
    // Window widths are simulated time: bounded by the lookahead, positive,
    // min <= mean <= max.
    EXPECT_GT(p.window_ns_min, 0);
    EXPECT_GE(p.window_ns_max, p.window_ns_min);
    EXPECT_GE(p.window_ns_mean, static_cast<double>(p.window_ns_min));
    EXPECT_LE(p.window_ns_mean, static_cast<double>(p.window_ns_max));
    // Per-shard events must sum to the fleet total minus the driver's
    // control-queue dispatches.
    std::uint64_t shard_events = 0;
    std::uint64_t handoffs = 0;
    for (const ShardPhaseProfile& s : p.shard_phases) {
      shard_events += s.events_processed;
      handoffs += s.handoffs_out;
    }
    EXPECT_LE(shard_events, r.events_processed);
    EXPECT_EQ(handoffs, p.handoff_messages);
    // Uniform traffic crosses shards constantly; the mailbox must have
    // carried something.
    EXPECT_GT(p.handoff_messages, 0u);
    // Imbalance factors: busiest / mean >= 1 for every sampled window.
    EXPECT_GE(p.max_imbalance, 1.0);
    EXPECT_GE(p.mean_imbalance, 1.0);
    EXPECT_GE(p.max_imbalance, p.mean_imbalance);
    // Barrier wait only exists inside windows; fraction stays in [0, 1).
    EXPECT_GE(p.barrier_wait_fraction(), 0.0);
    EXPECT_LT(p.barrier_wait_fraction(), 1.0);
    EXPECT_EQ(p.queue_pops, r.events_processed);
  }
}

}  // namespace
}  // namespace mlid

#include "common/math_util.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"

namespace mlid {
namespace {

TEST(MathUtil, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(4));
  EXPECT_FALSE(is_pow2(6));
  EXPECT_TRUE(is_pow2(1ULL << 63));
  EXPECT_FALSE(is_pow2((1ULL << 63) + 1));
}

TEST(MathUtil, Ilog2) {
  EXPECT_EQ(ilog2(1), 0);
  EXPECT_EQ(ilog2(2), 1);
  EXPECT_EQ(ilog2(3), 1);
  EXPECT_EQ(ilog2(4), 2);
  EXPECT_EQ(ilog2(255), 7);
  EXPECT_EQ(ilog2(256), 8);
  EXPECT_EQ(ilog2(1ULL << 40), 40);
  EXPECT_THROW(ilog2(0), ContractViolation);
}

TEST(MathUtil, Ilog2Exact) {
  EXPECT_EQ(ilog2_exact(8), 3);
  EXPECT_THROW(ilog2_exact(6), ContractViolation);
}

TEST(MathUtil, Ipow) {
  EXPECT_EQ(ipow(2, 0), 1u);
  EXPECT_EQ(ipow(2, 10), 1024u);
  EXPECT_EQ(ipow(3, 4), 81u);
  EXPECT_EQ(ipow(10, 0), 1u);
  EXPECT_EQ(ipow(1, 63), 1u);
  EXPECT_THROW(ipow(2, -1), ContractViolation);
  EXPECT_THROW(ipow(1ULL << 32, 3), ContractViolation);
}

TEST(MathUtil, CeilDiv) {
  EXPECT_EQ(ceil_div(0, 5), 0u);
  EXPECT_EQ(ceil_div(1, 5), 1u);
  EXPECT_EQ(ceil_div(5, 5), 1u);
  EXPECT_EQ(ceil_div(6, 5), 2u);
  EXPECT_THROW(ceil_div(1, 0), ContractViolation);
}

TEST(MathUtil, RadixDigit) {
  // 123 in base 10.
  EXPECT_EQ(radix_digit(123, 10, 0), 3u);
  EXPECT_EQ(radix_digit(123, 10, 1), 2u);
  EXPECT_EQ(radix_digit(123, 10, 2), 1u);
  EXPECT_EQ(radix_digit(123, 10, 3), 0u);
  // 0b1101 in base 2.
  EXPECT_EQ(radix_digit(13, 2, 0), 1u);
  EXPECT_EQ(radix_digit(13, 2, 1), 0u);
  EXPECT_EQ(radix_digit(13, 2, 2), 1u);
  EXPECT_EQ(radix_digit(13, 2, 3), 1u);
}

/// Property sweep: reconstruct values from their digits across radixes.
class RadixRoundTrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(RadixRoundTrip, DigitsRecomposeTheValue) {
  const std::uint32_t radix = GetParam();
  for (std::uint64_t v : {0ULL, 1ULL, 7ULL, 63ULL, 64ULL, 12345ULL}) {
    std::uint64_t rebuilt = 0;
    std::uint64_t weight = 1;
    for (int i = 0; i < 16; ++i) {  // 2^16 covers every sample value
      rebuilt += radix_digit(v, radix, i) * weight;
      weight *= radix;
    }
    EXPECT_EQ(rebuilt, v) << "radix " << radix;
  }
}

INSTANTIATE_TEST_SUITE_P(Radixes, RadixRoundTrip,
                         ::testing::Values(2u, 3u, 4u, 8u, 16u));

}  // namespace
}  // namespace mlid

#include "common/expect.hpp"

#include <gtest/gtest.h>

#include <string>

namespace mlid {
namespace {

TEST(Expect, PassingConditionIsSilent) {
  EXPECT_NO_THROW(MLID_EXPECT(1 + 1 == 2, "math works"));
}

TEST(Expect, FailingConditionThrowsWithContext) {
  try {
    MLID_EXPECT(false, "the message");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("false"), std::string::npos);
    EXPECT_NE(what.find("the message"), std::string::npos);
    EXPECT_NE(what.find("expect_test.cpp"), std::string::npos);
  }
}

TEST(Expect, ContractViolationIsLogicError) {
  EXPECT_THROW(MLID_EXPECT(false, ""), std::logic_error);
}

TEST(Expect, ConditionEvaluatedExactlyOnce) {
  int evaluations = 0;
  MLID_EXPECT([&] {
    ++evaluations;
    return true;
  }(),
              "side effect counting");
  EXPECT_EQ(evaluations, 1);
}

}  // namespace
}  // namespace mlid

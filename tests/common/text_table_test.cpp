#include "common/text_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "common/expect.hpp"

namespace mlid {
namespace {

TEST(TextTable, RejectsEmptyHeaderAndRaggedRows) {
  EXPECT_THROW(TextTable({}), ContractViolation);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractViolation);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"bb", "22.5"});
  const std::string out = t.to_string();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22.5"), std::string::npos);
  // Numeric-looking cells are right-aligned: "1" is padded on the left.
  EXPECT_NE(out.find("    1"), std::string::npos);
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"k", "v"});
  t.add_row({"plain", "with,comma"});
  t.add_row({"quote\"inside", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"quote\"\"inside\""), std::string::npos);
  EXPECT_NE(csv.find("plain,\"with,comma\""), std::string::npos);
}

TEST(TextTable, NumFormatting) {
  EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::num(2.0, 0), "2");
  EXPECT_EQ(TextTable::num(std::nan(""), 3), "-");
}

TEST(TextTable, Shape) {
  TextTable t({"a", "b", "c"});
  EXPECT_EQ(t.num_cols(), 3u);
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.num_rows(), 1u);
}

}  // namespace
}  // namespace mlid

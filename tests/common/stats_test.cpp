#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "common/rng.hpp"

namespace mlid {
namespace {

TEST(OnlineStats, EmptyIsAllZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  // Sample variance of this classic data set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStats, MergeMatchesSinglePass) {
  Xoshiro256 rng(5);
  OnlineStats whole, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform01() * 100.0;
    whole.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-6);
  EXPECT_EQ(left.min(), whole.min());
  EXPECT_EQ(left.max(), whole.max());
}

TEST(OnlineStats, MergeWithEmptyIsIdentity) {
  OnlineStats a, b;
  a.add(1.0);
  a.add(3.0);
  const double mean = a.mean();
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), mean);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), mean);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), ContractViolation);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), ContractViolation);
}

TEST(Histogram, BinningAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);  // underflow
  h.add(0.0);
  h.add(0.999);
  h.add(5.0);
  h.add(9.999);
  h.add(10.0);  // overflow (half-open top)
  h.add(42.0);  // overflow
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bins()[0], 2u);
  EXPECT_EQ(h.bins()[5], 1u);
  EXPECT_EQ(h.bins()[9], 1u);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.quantile(0.0), 0.0, 1.5);
  EXPECT_NEAR(h.quantile(1.0), 100.0, 1.5);
  EXPECT_THROW(static_cast<void>(h.quantile(1.5)), ContractViolation);
}

TEST(Histogram, QuantileEmptyIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.quantile(0.5), 0.0);
}

}  // namespace
}  // namespace mlid

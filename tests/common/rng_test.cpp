#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>

namespace mlid {
namespace {

TEST(SplitMix64, KnownSequenceFromSeedZero) {
  // Reference values from the public-domain splitmix64.c.
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(sm.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(sm.next(), 0x06C45D188009454FULL);
}

TEST(SplitMix64, DistinctSeedsProduceDistinctStreams) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro256, DeterministicPerSeed) {
  Xoshiro256 a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto va = a();
    EXPECT_EQ(va, b());
    (void)c();
  }
  Xoshiro256 a2(123), c2(124);
  EXPECT_NE(a2(), c2());
}

TEST(Xoshiro256, BelowStaysInRange) {
  Xoshiro256 rng(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Xoshiro256, BelowOneIsAlwaysZero) {
  Xoshiro256 rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro256, BetweenCoversClosedRange) {
  Xoshiro256 rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.between(3, 6));
  EXPECT_EQ(seen, (std::set<std::uint64_t>{3, 4, 5, 6}));
}

TEST(Xoshiro256, Uniform01IsInHalfOpenUnitInterval) {
  Xoshiro256 rng(13);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  // Mean of U(0,1) is 0.5; 100k draws keep the sample mean within ~0.5%.
  EXPECT_NEAR(sum / kDraws, 0.5, 0.005);
}

TEST(Xoshiro256, ChanceMatchesProbability) {
  Xoshiro256 rng(17);
  int hits = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) hits += rng.chance(0.2);
  EXPECT_NEAR(static_cast<double>(hits) / kDraws, 0.2, 0.01);
}

TEST(Xoshiro256, BelowIsRoughlyUniform) {
  Xoshiro256 rng(19);
  std::array<int, 8> buckets{};
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++buckets[rng.below(8)];
  for (int b = 0; b < 8; ++b) {
    EXPECT_NEAR(buckets[static_cast<std::size_t>(b)], kDraws / 8,
                kDraws / 8 / 10)
        << "bucket " << b;
  }
}

}  // namespace
}  // namespace mlid

#include "ib/lid.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

TEST(LidRange, BasicsAndPaperExample) {
  // Figure 10 (digits restored): LIDset(P(010)) = {9, 10, 11, 12} with
  // LMC 2 in a 4-port 3-tree.
  const LidRange r(9, 2);
  EXPECT_EQ(r.base(), 9u);
  EXPECT_EQ(int(r.lmc()), 2);
  EXPECT_EQ(r.count(), 4u);
  EXPECT_EQ(r.last(), 12u);
  EXPECT_TRUE(r.contains(9));
  EXPECT_TRUE(r.contains(12));
  EXPECT_FALSE(r.contains(8));
  EXPECT_FALSE(r.contains(13));
  EXPECT_EQ(r.at(0), 9u);
  EXPECT_EQ(r.at(3), 12u);
  EXPECT_EQ(r.offset_of(11), 2u);
}

TEST(LidRange, LmcZeroIsASingleLid) {
  const LidRange r(5, 0);
  EXPECT_EQ(r.count(), 1u);
  EXPECT_EQ(r.last(), 5u);
  EXPECT_THROW(static_cast<void>(r.at(1)), ContractViolation);
}

TEST(LidRange, RejectsReservedAndOversized) {
  EXPECT_THROW(LidRange(0, 0), ContractViolation);  // LID 0 reserved
  EXPECT_THROW(LidRange(1, 8), ContractViolation);  // LMC is 3 bits
  EXPECT_NO_THROW(LidRange(0xFFFF, 0));             // top of the space
  EXPECT_THROW(LidRange(0xFFFF, 1), ContractViolation);  // spills over
}

TEST(LidRange, OffsetOfRejectsForeignLids) {
  const LidRange r(16, 2);
  EXPECT_THROW(static_cast<void>(r.offset_of(15)), ContractViolation);
  EXPECT_THROW(static_cast<void>(r.offset_of(20)), ContractViolation);
}

TEST(LidRange, DefaultIsInvalid) {
  const LidRange r;
  EXPECT_EQ(r.base(), kInvalidLid);
}

}  // namespace
}  // namespace mlid

#include "ib/lft.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

TEST(Lft, SetAndLookup) {
  Lft lft(100);
  EXPECT_EQ(lft.max_lid(), 100u);
  EXPECT_FALSE(lft.has(5));
  lft.set(5, 3);
  EXPECT_TRUE(lft.has(5));
  EXPECT_EQ(int(lft.lookup(5)), 3);
  lft.set(5, 7);  // overwrite is allowed (SM reprogramming)
  EXPECT_EQ(int(lft.lookup(5)), 7);
}

TEST(Lft, Lid0IsAlwaysUnroutable) {
  Lft lft(10);
  EXPECT_FALSE(lft.has(0));
  EXPECT_THROW(lft.set(0, 1), ContractViolation);
  EXPECT_THROW(static_cast<void>(lft.lookup(0)), ContractViolation);
}

TEST(Lft, OutOfRangeLids) {
  Lft lft(10);
  EXPECT_THROW(lft.set(11, 1), ContractViolation);
  EXPECT_FALSE(lft.has(11));
  EXPECT_THROW(static_cast<void>(lft.lookup(11)), ContractViolation);
}

TEST(Lft, SentinelPortValueRejected) {
  Lft lft(10);
  EXPECT_THROW(lft.set(1, Lft::kNoEntry), ContractViolation);
}

TEST(Lft, NumEntriesCountsProgrammedLids) {
  Lft lft(10);
  EXPECT_EQ(lft.num_entries(), 0u);
  lft.set(1, 1);
  lft.set(2, 2);
  lft.set(2, 3);
  EXPECT_EQ(lft.num_entries(), 2u);
}

// num_entries() is a running count maintained by set/clear (it used to
// rescan the whole LID space, O(48k) per call during bring-up accounting).
// Pin every transition: fresh set counts, overwrite does not, clear
// uncounts once, clearing an absent entry is a no-op.
TEST(Lft, NumEntriesTracksSetClearOverwrite) {
  Lft lft(100);
  EXPECT_EQ(lft.num_entries(), 0u);

  lft.set(10, 1);
  EXPECT_EQ(lft.num_entries(), 1u);
  lft.set(10, 2);  // overwrite: same LID must not double-count
  EXPECT_EQ(lft.num_entries(), 1u);
  EXPECT_EQ(int(lft.lookup(10)), 2);

  lft.set(20, 3);
  lft.set(30, 4);
  EXPECT_EQ(lft.num_entries(), 3u);

  lft.clear(20);
  EXPECT_EQ(lft.num_entries(), 2u);
  EXPECT_FALSE(lft.has(20));
  lft.clear(20);  // clearing an already-empty slot must not underflow
  EXPECT_EQ(lft.num_entries(), 2u);

  lft.set(20, 5);  // re-program after withdrawal counts again
  EXPECT_EQ(lft.num_entries(), 3u);

  lft.clear(10);
  lft.clear(20);
  lft.clear(30);
  EXPECT_EQ(lft.num_entries(), 0u);
}

TEST(Lft, EmptyTable) {
  Lft lft;
  EXPECT_EQ(lft.max_lid(), 0u);
  EXPECT_FALSE(lft.has(1));
}

}  // namespace
}  // namespace mlid

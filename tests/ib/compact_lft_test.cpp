// CompactLft correctness: the formula-backed representation must be
// observably identical to the dense tables the schemes materialize through
// build_lft() -- across every switch of every paper Table 1 topology the
// test budget allows, for both LID layouts (SLID and full MLID), and after
// live-SM repairs have materialized overlay entries on top of the formula.
#include "ib/lft.hpp"

#include <gtest/gtest.h>

#include "routing/fat_tree_routing.hpp"
#include "routing/repair.hpp"
#include "routing/updown.hpp"
#include "topology/builder.hpp"

namespace mlid {
namespace {

// Paper Table 1 grid, minus the two widest entries (16,2)/(32,2) whose
// dense oracle tables alone would dominate unit-test time.
const std::pair<int, int> kTable1Grid[] = {
    {4, 2}, {4, 3}, {4, 4}, {8, 2}, {8, 3}};

TEST(CompactLft, FormulaMatchesDenseTablesOverTable1Topologies) {
  for (const auto& [m, n] : kTable1Grid) {
    const FatTreeParams params(m, n);
    for (const bool mlid : {false, true}) {
      std::unique_ptr<FatTreeRouting> scheme;
      if (mlid) {
        scheme = std::make_unique<MlidRouting>(params);
      } else {
        scheme = std::make_unique<SlidRouting>(params);
      }
      const Lid max_lid = scheme->max_lid();
      for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
        const CompactLft compact(scheme.get(), sw, max_lid,
                                 static_cast<std::size_t>(max_lid));
        const Lft dense = scheme->build_lft(sw);
        ASSERT_TRUE(compact == dense)
            << scheme->name() << " (" << m << "," << n << ") switch " << sw;
        ASSERT_TRUE(compact.materialize() == dense)
            << scheme->name() << " (" << m << "," << n << ") switch " << sw;
        EXPECT_EQ(compact.num_entries(), dense.num_entries());
        EXPECT_EQ(compact.overlay_entries(), 0u);
        // The point of the representation: per-switch table cost must not
        // scale with the LID space (the dense oracle holds max_lid bytes).
        EXPECT_EQ(compact.memory_bytes(), 0u);
      }
    }
  }
}

TEST(CompactLft, OverlayEditsAreAuthoritative) {
  const FatTreeParams params(4, 3);
  const MlidRouting scheme(params);
  const Lid max_lid = scheme.max_lid();
  CompactLft table(&scheme, /*sw=*/0, max_lid,
                   static_cast<std::size_t>(max_lid));
  const Lid lid = 5;
  const PortId base = scheme.formula_port(0, lid);
  const PortId other = (base == 1) ? 2 : 1;

  // Deviation from the formula materializes exactly one overlay entry.
  table.set(lid, other);
  EXPECT_EQ(int(table.find(lid)), int(other));
  EXPECT_EQ(table.overlay_entries(), 1u);
  EXPECT_EQ(table.num_entries(), static_cast<std::size_t>(max_lid));

  // Restoring the formula's answer drops the overlay entry again.
  table.set(lid, base);
  EXPECT_EQ(int(table.find(lid)), int(base));
  EXPECT_EQ(table.overlay_entries(), 0u);

  // A withdrawn route is a tombstone: find() reports no entry even though
  // the formula still has an answer, and the count drops.
  table.clear(lid);
  EXPECT_FALSE(table.has(lid));
  EXPECT_EQ(table.overlay_entries(), 1u);
  EXPECT_EQ(table.num_entries(), static_cast<std::size_t>(max_lid) - 1);

  // Re-programming the base answer erases the tombstone.
  table.set(lid, base);
  EXPECT_EQ(table.overlay_entries(), 0u);
  EXPECT_EQ(table.num_entries(), static_cast<std::size_t>(max_lid));
}

TEST(CompactLft, DenseFallbackBehavesLikeTheAdoptedTable) {
  Lft dense(50);
  dense.set(1, 3);
  dense.set(7, 4);
  CompactLft table{Lft(dense)};
  EXPECT_FALSE(table.formula_backed());
  EXPECT_TRUE(table == dense);
  EXPECT_EQ(table.num_entries(), 2u);
  table.set(9, 2);
  EXPECT_EQ(table.num_entries(), 3u);
  table.clear(7);
  EXPECT_FALSE(table.has(7));
  EXPECT_EQ(table.num_entries(), 2u);
  EXPECT_EQ(table.overlay_entries(), 0u);  // dense mode never overlays
}

// Post-repair equivalence: degrade each Table 1 fabric, diff the live
// formula-backed tables against a fresh up*/down* computation, apply the
// deltas as overlays, and demand the result is bit-identical to the same
// plan applied to materialized dense tables.
TEST(CompactLft, PostRepairOverlaysMatchRepairedDenseTables) {
  for (const auto& [m, n] : {std::pair<int, int>{4, 2}, {4, 3}, {8, 2}}) {
    FatTreeFabric fabric{FatTreeParams(m, n)};
    const FatTreeParams& params = fabric.params();
    const MlidRouting scheme(params);
    const Lid max_lid = scheme.max_lid();

    std::vector<CompactLft> live;
    std::vector<Lft> dense;
    live.reserve(params.num_switches());
    dense.reserve(params.num_switches());
    for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
      live.emplace_back(&scheme, sw, max_lid,
                        static_cast<std::size_t>(max_lid));
      dense.push_back(scheme.build_lft(sw));
    }

    // Kill one leaf uplink: every switch that striped paths through it
    // needs repairs, exercising multi-switch overlay application.
    const DeviceId leaf = fabric.switch_device(0);
    const PortId up = static_cast<PortId>(params.half() + 1);
    ASSERT_TRUE(fabric.fabric().peer_of(leaf, up).valid());
    fabric.mutable_fabric().disconnect(leaf, up);

    const LftRepairPlan plan =
        compute_lft_repair(fabric, scheme.lmc(), live);
    ASSERT_TRUE(plan.fully_connected) << "(" << m << "," << n << ")";
    ASSERT_GT(plan.total_entries(), 0u) << "(" << m << "," << n << ")";

    std::size_t overlays = 0;
    for (const SwitchRepair& repair : plan.switches) {
      apply_repair(repair, live[repair.sw]);
      for (const LftDelta& d : repair.deltas) {
        if (d.port == Lft::kNoEntry) {
          dense[repair.sw].clear(d.lid);
        } else {
          dense[repair.sw].set(d.lid, d.port);
        }
      }
      overlays += live[repair.sw].overlay_entries();
    }
    EXPECT_GT(overlays, 0u);  // the repairs actually materialized overlays
    for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
      ASSERT_TRUE(live[sw] == dense[sw])
          << "(" << m << "," << n << ") switch " << sw << " after repair";
    }

    // The repaired formula tables must also agree with a from-scratch
    // up*/down* computation on the degraded fabric (the repair oracle).
    const UpDownRouting updn(fabric, scheme.lmc());
    for (SwitchId sw = 0; sw < params.num_switches(); ++sw) {
      ASSERT_TRUE(live[sw] == updn.build_lft(sw))
          << "(" << m << "," << n << ") switch " << sw << " vs UPDN";
    }
  }
}

}  // namespace
}  // namespace mlid

// Weighted VL arbitration (IBA VLArb) and fairness accounting.
#include <gtest/gtest.h>

#include <numeric>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window() {
  SimConfig cfg;
  cfg.warmup_ns = 10'000;
  cfg.measure_ns = 60'000;
  cfg.seed = 91;
  return cfg;
}

TEST(VlArbitration, ConfigValidation) {
  SimConfig cfg = window();
  cfg.num_vls = 2;
  cfg.vl_weights = {3};
  EXPECT_THROW(cfg.validate(), ContractViolation);  // wrong arity
  cfg.vl_weights = {3, 0};
  EXPECT_THROW(cfg.validate(), ContractViolation);  // non-positive
  cfg.vl_weights = {3, 1};
  EXPECT_NO_THROW(cfg.validate());
}

TEST(VlArbitration, UnitWeightsEqualPlainRoundRobin) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig plain = window();
  plain.num_vls = 2;
  SimConfig weighted = window();
  weighted.num_vls = 2;
  weighted.vl_weights = {1, 1};
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 17};
  const SimResult a = Simulation::open_loop(subnet, plain, traffic, 0.7).run();
  const SimResult b = Simulation::open_loop(subnet, weighted, traffic, 0.7).run();
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
}

TEST(VlArbitration, WeightsSkewSaturatedLaneThroughput) {
  // Pure hot spot, sources pinned to VLs by parity: both lanes stay
  // backlogged on the terminal link, so service follows the 3:1 weights.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();
  cfg.num_vls = 2;
  cfg.vl_policy = VlPolicy::kBySource;
  cfg.vl_weights = {3, 1};
  const TrafficConfig traffic{TrafficKind::kCentric, 1.0, 0, 17};
  const SimResult r = Simulation::open_loop(subnet, cfg, traffic, 0.9).run();
  ASSERT_EQ(r.delivered_per_vl.size(), 2u);
  ASSERT_GT(r.delivered_per_vl[1], 0u);
  const double ratio = static_cast<double>(r.delivered_per_vl[0]) /
                       static_cast<double>(r.delivered_per_vl[1]);
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 4.5);
}

TEST(VlArbitration, PerVlCountsSumToMeasured) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = window();
  cfg.num_vls = 4;
  const SimResult r =
      Simulation::open_loop(subnet, cfg, {TrafficKind::kUniform, 0.2, 0, 17},
                            0.5)
          .run();
  const std::uint64_t sum = std::accumulate(
      r.delivered_per_vl.begin(), r.delivered_per_vl.end(), std::uint64_t{0});
  EXPECT_EQ(sum, r.packets_measured);
  // Random VL policy spreads deliveries over every lane.
  for (const std::uint64_t count : r.delivered_per_vl) EXPECT_GT(count, 0u);
}

TEST(Fairness, UniformTrafficIsFair) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, window(),
                            {TrafficKind::kUniform, 0.2, 0, 17}, 0.3)
          .run();
  EXPECT_GT(r.jain_fairness_index, 0.9);
  EXPECT_GT(r.min_node_accepted_bytes_per_ns, 0.0);
  EXPECT_GE(r.max_node_accepted_bytes_per_ns,
            r.min_node_accepted_bytes_per_ns);
}

TEST(Fairness, HotSpotSkewsTheIndex) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, window(),
                            {TrafficKind::kCentric, 1.0, 0, 17}, 0.9)
          .run();
  EXPECT_LT(r.jain_fairness_index, 0.7);
  // The hot node is the max receiver by a wide margin.
  EXPECT_GT(r.max_node_accepted_bytes_per_ns,
            4.0 * r.min_node_accepted_bytes_per_ns);
}

}  // namespace
}  // namespace mlid

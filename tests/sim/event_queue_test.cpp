#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace mlid {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  q.push(30, EventKind::kTryTx, 1);
  q.push(10, EventKind::kGenerate, 2);
  q.push(20, EventKind::kDeliver, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.pop().time, 20);
  EXPECT_EQ(q.pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, SimultaneousEventsPopInInsertionOrder) {
  EventQueue q;
  for (DeviceId dev = 0; dev < 10; ++dev) {
    q.push(5, EventKind::kTryTx, dev);
  }
  for (DeviceId dev = 0; dev < 10; ++dev) {
    EXPECT_EQ(q.pop().dev, dev);
  }
}

TEST(EventQueue, CarriesThePayload) {
  EventQueue q;
  q.push(7, EventKind::kHeadArrive, 42, 3, 2, 99);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kHeadArrive);
  EXPECT_EQ(e.dev, 42u);
  EXPECT_EQ(int(e.port), 3);
  EXPECT_EQ(int(e.vl), 2);
  EXPECT_EQ(e.pkt, 99u);
}

TEST(EventQueue, PopEmptyThrows) {
  EventQueue q;
  EXPECT_THROW(q.pop(), ContractViolation);
}

TEST(EventQueue, SchedulingIntoThePastIsACodingError) {
  EventQueue q;
  q.push(100, EventKind::kGenerate, 0);
  (void)q.pop();
  EXPECT_THROW(q.push(50, EventKind::kGenerate, 0), ContractViolation);
}

TEST(EventQueue, EventsProcessedCounter) {
  EventQueue q;
  EXPECT_EQ(q.events_processed(), 0u);
  q.push(1, EventKind::kGenerate, 0);
  q.push(2, EventKind::kGenerate, 0);
  EXPECT_EQ(q.events_processed(), 2u);
}

TEST(EventQueue, InterleavedPushPopKeepsOrder) {
  EventQueue q;
  q.push(10, EventKind::kGenerate, 1);
  q.push(20, EventKind::kGenerate, 2);
  EXPECT_EQ(q.pop().dev, 1u);
  q.push(15, EventKind::kGenerate, 3);
  q.push(12, EventKind::kGenerate, 4);
  EXPECT_EQ(q.pop().dev, 4u);
  EXPECT_EQ(q.pop().dev, 3u);
  EXPECT_EQ(q.pop().dev, 2u);
}

}  // namespace
}  // namespace mlid

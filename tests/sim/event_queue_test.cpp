#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"

namespace mlid {
namespace {

// Every contract below must hold for both implementations -- the ladder
// queue's whole value proposition is that it is bit-interchangeable with
// the heap.
class EventQueueTest : public ::testing::TestWithParam<EventQueueKind> {
 protected:
  [[nodiscard]] EventQueue make() const { return EventQueue(GetParam()); }
};

TEST_P(EventQueueTest, PopsInTimeOrder) {
  EventQueue q = make();
  q.push(30, EventKind::kTryTx, 1);
  q.push(10, EventKind::kGenerate, 2);
  q.push(20, EventKind::kDeliver, 3);
  EXPECT_EQ(q.size(), 3u);
  EXPECT_EQ(q.pop().time, 10);
  EXPECT_EQ(q.pop().time, 20);
  EXPECT_EQ(q.pop().time, 30);
  EXPECT_TRUE(q.empty());
}

TEST_P(EventQueueTest, SimultaneousEventsPopInInsertionOrder) {
  EventQueue q = make();
  for (DeviceId dev = 0; dev < 10; ++dev) {
    q.push(5, EventKind::kTryTx, dev);
  }
  for (DeviceId dev = 0; dev < 10; ++dev) {
    EXPECT_EQ(q.pop().dev, dev);
  }
}

TEST_P(EventQueueTest, CarriesThePayload) {
  EventQueue q = make();
  q.push(7, EventKind::kHeadArrive, 42, 3, 2, 99);
  const Event e = q.pop();
  EXPECT_EQ(e.kind, EventKind::kHeadArrive);
  EXPECT_EQ(e.dev, 42u);
  EXPECT_EQ(int(e.port), 3);
  EXPECT_EQ(int(e.vl), 2);
  EXPECT_EQ(e.pkt, 99u);
}

TEST_P(EventQueueTest, PopEmptyThrows) {
  EventQueue q = make();
  EXPECT_THROW(q.pop(), ContractViolation);
}

TEST_P(EventQueueTest, PeekReturnsNextWithoutRemoving) {
  EventQueue q = make();
  EXPECT_EQ(q.peek(), nullptr);
  q.push(20, EventKind::kTryTx, 2);
  q.push(10, EventKind::kGenerate, 1);
  const Event* e = q.peek();
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->time, 10);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().dev, 1u);
  EXPECT_EQ(q.pop().dev, 2u);
}

TEST_P(EventQueueTest, SchedulingIntoThePastIsACodingError) {
  EventQueue q = make();
  q.push(100, EventKind::kGenerate, 0);
  (void)q.pop();
  EXPECT_THROW(q.push(50, EventKind::kGenerate, 0), ContractViolation);
}

TEST_P(EventQueueTest, PushAtTheLastPoppedTimestampIsLegal) {
  EventQueue q = make();
  q.push(100, EventKind::kGenerate, 1);
  (void)q.pop();
  q.push(100, EventKind::kTryTx, 2);  // same instant: fine, later seq
  EXPECT_EQ(q.pop().dev, 2u);
}

// Regression: events_processed() used to return the *scheduled* count
// (next_seq_), so manifests divided wall time by pushes, over-reporting
// events/sec whenever the end time cut the run off with work still queued.
TEST_P(EventQueueTest, ScheduledAndProcessedAreSeparateCounters) {
  EventQueue q = make();
  EXPECT_EQ(q.events_scheduled(), 0u);
  EXPECT_EQ(q.events_processed(), 0u);
  q.push(1, EventKind::kGenerate, 0);
  q.push(2, EventKind::kGenerate, 0);
  EXPECT_EQ(q.events_scheduled(), 2u);
  EXPECT_EQ(q.events_processed(), 0u);
  (void)q.pop();
  EXPECT_EQ(q.events_scheduled(), 2u);
  EXPECT_EQ(q.events_processed(), 1u);
  (void)q.pop();
  EXPECT_EQ(q.events_processed(), 2u);
  const EventQueueStats s = q.stats();
  EXPECT_EQ(s.events_scheduled, 2u);
  EXPECT_EQ(s.events_processed, 2u);
}

TEST_P(EventQueueTest, InterleavedPushPopKeepsOrder) {
  EventQueue q = make();
  q.push(10, EventKind::kGenerate, 1);
  q.push(20, EventKind::kGenerate, 2);
  EXPECT_EQ(q.pop().dev, 1u);
  q.push(15, EventKind::kGenerate, 3);
  q.push(12, EventKind::kGenerate, 4);
  EXPECT_EQ(q.pop().dev, 4u);
  EXPECT_EQ(q.pop().dev, 3u);
  EXPECT_EQ(q.pop().dev, 2u);
}

TEST_P(EventQueueTest, DrainUntilStopsAtTheBoundary) {
  EventQueue q = make();
  q.push(10, EventKind::kGenerate, 1);
  q.push(50, EventKind::kGenerate, 2);
  q.push(90, EventKind::kGenerate, 3);
  std::vector<DeviceId> seen;
  q.drain_until(90, [&](const Event& e) {
    seen.push_back(e.dev);
    if (e.dev == 1) q.push(60, EventKind::kTryTx, 4);  // scheduled mid-drain
  });
  EXPECT_EQ(seen, (std::vector<DeviceId>{1, 2, 4}));
  EXPECT_EQ(q.size(), 1u);  // the t=90 event is not strictly before 90
  EXPECT_EQ(q.events_processed(), 3u);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, EventQueueTest,
                         ::testing::Values(EventQueueKind::kHeap,
                                           EventQueueKind::kLadder),
                         [](const auto& info) {
                           return std::string(to_string(info.param));
                         });

// --- ladder-specific internals ----------------------------------------------

TEST(LadderInternals, FarFutureEventsGoThroughOverflowAndComeBackInOrder) {
  EventQueue q(EventQueueKind::kLadder);
  // Default horizon is 256 buckets x 64 ns = 16384 ns; 1e6 is far beyond.
  q.push(1'000'000, EventKind::kDeliver, 7);
  q.push(5, EventKind::kGenerate, 1);
  EXPECT_GT(q.stats().overflow_pushes, 0u);
  EXPECT_EQ(q.pop().dev, 1u);
  EXPECT_EQ(q.pop().dev, 7u);
  EXPECT_TRUE(q.empty());
}

TEST(LadderInternals, RingDoublesUnderLoadAndStaysOrdered) {
  EventQueue q(EventQueueKind::kLadder);
  const std::uint32_t before = q.stats().buckets;
  // Cram far more events into the horizon than kResizeLoad allows per
  // bucket; the ring must double (at least once) and lose nothing.
  constexpr int kEvents = 6000;
  for (int i = 0; i < kEvents; ++i) {
    q.push((i * 13) % 16'000, EventKind::kTryTx,
           static_cast<DeviceId>(i));
  }
  const EventQueueStats s = q.stats();
  EXPECT_GT(s.resizes, 0u);
  EXPECT_GT(s.buckets, before);
  SimTime prev = 0;
  for (int i = 0; i < kEvents; ++i) {
    const Event e = q.pop();
    EXPECT_GE(e.time, prev);
    prev = e.time;
  }
  EXPECT_TRUE(q.empty());
}

TEST(LadderInternals, StatsShapePerKind) {
  EventQueue heap(EventQueueKind::kHeap);
  heap.push(1, EventKind::kGenerate, 0);
  const EventQueueStats hs = heap.stats();
  EXPECT_EQ(hs.kind, EventQueueKind::kHeap);
  EXPECT_EQ(hs.buckets, 0u);
  EXPECT_EQ(hs.bucket_width_ns, 0);

  EventQueue ladder(EventQueueKind::kLadder);
  ladder.push(1, EventKind::kGenerate, 0);
  (void)ladder.pop();
  const EventQueueStats ls = ladder.stats();
  EXPECT_EQ(ls.kind, EventQueueKind::kLadder);
  EXPECT_GT(ls.buckets, 0u);
  EXPECT_EQ(ls.bucket_width_ns, 64);
  EXPECT_GT(ls.max_bucket_events, 0u);
}

// --- property test: the ladder IS the heap ----------------------------------

// Randomized push/pop streams exercised against both queues in lockstep:
// same-timestamp bursts, pushes landing exactly at last_popped_ (the active
// epoch's drain cursor), far-future overflow traffic and enough volume to
// force ring resizes.  Every pop must match field for field.
TEST(EventQueueParity, RandomizedStreamsPopIdentically) {
  for (const std::uint64_t seed : {1u, 7u, 42u}) {
    EventQueue heap(EventQueueKind::kHeap);
    EventQueue ladder(EventQueueKind::kLadder);
    Xoshiro256 rng(seed);
    SimTime now = 0;
    std::uint64_t pending = 0;
    for (int step = 0; step < 50'000; ++step) {
      const bool push = pending == 0 || rng.below(100) < 55;
      if (push) {
        SimTime t = now;
        switch (rng.below(10)) {
          case 0:  // same-instant burst member
            break;
          case 1:  // exact bucket-width boundary
            t += 64 * static_cast<SimTime>(1 + rng.below(4));
            break;
          case 2:  // far future: overflow tier
            t += 20'000 + static_cast<SimTime>(rng.below(200'000));
            break;
          default:  // typical engine deltas
            t += static_cast<SimTime>(rng.below(1'000));
        }
        const auto dev = static_cast<DeviceId>(rng.below(1 << 20));
        heap.push(t, EventKind::kTryTx, dev);
        ladder.push(t, EventKind::kTryTx, dev);
        ++pending;
      } else {
        const Event a = heap.pop();
        const Event b = ladder.pop();
        ASSERT_EQ(a.time, b.time) << "seed " << seed << " step " << step;
        ASSERT_EQ(a.seq, b.seq) << "seed " << seed << " step " << step;
        ASSERT_EQ(a.dev, b.dev);
        now = a.time;
        --pending;
      }
    }
    while (pending-- > 0) {
      const Event a = heap.pop();
      const Event b = ladder.pop();
      ASSERT_EQ(a.time, b.time);
      ASSERT_EQ(a.seq, b.seq);
      ASSERT_EQ(a.dev, b.dev);
    }
    EXPECT_TRUE(heap.empty());
    EXPECT_TRUE(ladder.empty());
    // The stream was heavy enough to exercise every ladder tier.
    const EventQueueStats s = ladder.stats();
    EXPECT_GT(s.overflow_pushes, 0u);
    EXPECT_GT(s.max_bucket_events, 0u);
  }
}

}  // namespace
}  // namespace mlid

// Packet conservation and accounting identities across a config matrix.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

struct Case {
  int m;
  int n;
  std::string_view kind;
  TrafficKind traffic;
  double load;
  int vls;
};

class Conservation : public ::testing::TestWithParam<Case> {};

TEST_P(Conservation, CountsAndRatesAreConsistent) {
  const auto c = GetParam();
  const FatTreeFabric fabric{FatTreeParams(c.m, c.n)};
  const Subnet subnet(fabric, c.kind);
  SimConfig cfg;
  cfg.warmup_ns = 8'000;
  cfg.measure_ns = 40'000;
  cfg.seed = 17;
  cfg.num_vls = c.vls;
  Simulation sim = Simulation::open_loop(subnet, cfg, {c.traffic, 0.2, 0, 23},
                                         c.load);
  const SimResult r = sim.run();

  // Conservation: no drops, deliveries never exceed generation, and the
  // windowed subset never exceeds total deliveries.
  EXPECT_EQ(r.packets_dropped, 0u);
  EXPECT_LE(r.packets_delivered, r.packets_generated);
  EXPECT_LE(r.packets_measured, r.packets_delivered);
  EXPECT_GT(r.packets_measured, 0u);

  // Generation rate: one packet per interval per node across the run
  // (within one interval of rounding per node).
  const double interval = 256.0 / c.load;
  const double expected_generated =
      static_cast<double>(fabric.params().num_nodes()) *
      static_cast<double>(cfg.end_time()) / interval;
  EXPECT_NEAR(static_cast<double>(r.packets_generated), expected_generated,
              static_cast<double>(fabric.params().num_nodes()) + 2);

  // Accepted traffic identity: measured packets * bytes / window / nodes.
  const double expected_accepted =
      static_cast<double>(r.packets_measured) * 256.0 /
      static_cast<double>(cfg.measure_ns) /
      static_cast<double>(fabric.params().num_nodes());
  EXPECT_DOUBLE_EQ(r.accepted_bytes_per_ns_per_node, expected_accepted);

  // Latency sanity: bounded below by the physical minimum.
  const double min_latency =
      1.0 * static_cast<double>(cfg.routing_delay_ns) +
      2.0 * static_cast<double>(cfg.flying_time_ns) + 256.0;
  EXPECT_GE(r.avg_latency_ns, min_latency);
  EXPECT_GE(r.avg_network_latency_ns, min_latency);
  EXPECT_LE(r.avg_network_latency_ns, r.avg_latency_ns + 1e-9);
  EXPECT_LE(r.p50_latency_ns, r.p99_latency_ns + 1e-9);

  // Hops: between 1 (same leaf) and 2n - 1 switches.
  EXPECT_GE(r.avg_hops, 1.0);
  EXPECT_LE(r.avg_hops, 2.0 * c.n - 1.0);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, Conservation,
    ::testing::Values(
        Case{4, 2, "MLID", TrafficKind::kUniform, 0.3, 1},
        Case{4, 2, "SLID", TrafficKind::kUniform, 0.3, 1},
        Case{4, 3, "MLID", TrafficKind::kUniform, 0.7, 2},
        Case{4, 3, "SLID", TrafficKind::kCentric, 0.5, 4},
        Case{8, 2, "MLID", TrafficKind::kCentric, 0.9, 1},
        Case{8, 2, "SLID", TrafficKind::kPermutation, 0.6, 2},
        Case{4, 4, "MLID", TrafficKind::kBitComplement, 0.4, 1},
        Case{8, 3, "MLID", TrafficKind::kUniform, 0.5, 2}));

}  // namespace
}  // namespace mlid

// Contention behaviour: hot-spot saturation, serialization on a shared
// link, and the MLID-vs-SLID separation the paper's figures show.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window(SimTime warmup = 10'000, SimTime measure = 60'000) {
  SimConfig cfg;
  cfg.warmup_ns = warmup;
  cfg.measure_ns = measure;
  cfg.seed = 21;
  return cfg;
}

TEST(Contention, PureHotSpotSaturatesTheDestinationLink) {
  // hot_fraction = 1.0: every node sends only to node 0.  The terminal link
  // sustains at most one packet per (wire + credit-bubble) interval, so the
  // aggregate accepted traffic is bounded by ~ 256B / 296ns, no matter how
  // much is offered.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kCentric, 1.0, 0, 5},
                                         0.9);
  const SimResult r = sim.run();
  // The terminal link is the busiest in the network.  Its steady-state
  // cadence is one packet per (wire + credit round trip) where the credit
  // returns t_fly after the previous delivery: 256 + 40 ns => 256/296.
  EXPECT_NEAR(r.max_link_utilization, 256.0 / 296.0, 0.02);
  // Aggregate accepted traffic at least covers the saturated hot link.
  const double aggregate =
      r.accepted_bytes_per_ns_per_node * fabric.params().num_nodes();
  EXPECT_GE(aggregate, 256.0 / 296.0 * 0.95);
  // Latency blows up: source queues grow without bound.
  EXPECT_GT(r.avg_latency_ns, 5'000.0);
  EXPECT_GT(r.max_source_queue_pkts, 10u);
}

TEST(Contention, SharedLinkServesCompetitorsFairly) {
  // Under pure hot-spot, throughput per source should be roughly equal
  // (round-robin-ish arbitration): compare min/max accepted per source via
  // delivered packet counts per node -- we approximate with total counts
  // across two runs differing only in seed.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kCentric, 1.0, 0, 5},
                                         0.9);
  const SimResult r = sim.run();
  // All 7 competing sources deliver in steady state; the hot node's own
  // uniform traffic also flows.  Sanity: deliveries happened and nothing
  // was dropped.
  EXPECT_GT(r.packets_measured, 100u);
  EXPECT_EQ(r.packets_dropped, 0u);
}

TEST(Contention, UniformLoadDegradesGracefully) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  double last_latency = 0.0;
  for (double load : {0.1, 0.5, 0.9}) {
    Simulation sim = Simulation::open_loop(subnet, window(),
                                           {TrafficKind::kUniform, 0, 0, 5},
                                           load);
    const SimResult r = sim.run();
    EXPECT_GE(r.avg_latency_ns, last_latency * 0.95)
        << "latency should not drop as load rises (load " << load << ")";
    last_latency = r.avg_latency_ns;
  }
}

TEST(Contention, MlidBeatsSlidOnCentricTraffic) {
  // The paper's headline claim (Observation 3) at simulation scale: with a
  // 20% hot-spot, MLID accepts more traffic than SLID at high load.
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet mlid_subnet(fabric, "MLID");
  const Subnet slid_subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.20, 0, 5};
  Simulation mlid_sim = Simulation::open_loop(mlid_subnet, window(), traffic,
                                              0.8);
  Simulation slid_sim = Simulation::open_loop(slid_subnet, window(), traffic,
                                              0.8);
  const double mlid_acc = mlid_sim.run().accepted_bytes_per_ns_per_node;
  const double slid_acc = slid_sim.run().accepted_bytes_per_ns_per_node;
  EXPECT_GT(mlid_acc, slid_acc);
}

TEST(Contention, LinkUtilizationIsAProperFraction) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(),
                                         {TrafficKind::kUniform, 0, 0, 5}, 0.7);
  const SimResult r = sim.run();
  EXPECT_GT(r.mean_link_utilization, 0.0);
  EXPECT_LE(r.max_link_utilization, 1.0 + 1e-9);
  EXPECT_LE(r.mean_link_utilization, r.max_link_utilization);
}

}  // namespace
}  // namespace mlid

// The congestion-control bit-identity contract: with SimConfig::cc
// disabled the engine must produce results bit-identical to the pre-CC
// engine -- no CC code path may schedule an event, draw randomness, or
// touch a counter.  Asserted two ways: (1) cc-off runs are invariant under
// every inert CC knob, and (2) a cc-*enabled* run whose thresholds are
// unreachable matches a cc-off run in every field except the cc block
// itself (the strongest form: the CC machinery is armed but never fires).
#include <gtest/gtest.h>

#include "harness/report.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quick_window() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 3;
  return cfg;
}

// CC enabled but physically unable to fire: the depth threshold exceeds
// any possible backlog and the stall threshold exceeds the run length.
SimConfig inert_cc_window() {
  SimConfig cfg = quick_window();
  cfg.cc.enabled = true;
  cfg.cc.fecn_threshold_pkts = 1'000'000;
  cfg.cc.fecn_stall_ns = 1'000'000'000;
  return cfg;
}

TEST(CcParity, CcOffIsInvariantUnderInertKnobs) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 9};
  SimConfig tweaked = quick_window();
  tweaked.cc.fecn_threshold_pkts = 1;
  tweaked.cc.cct_quantum_ns = 99'999;
  tweaked.cc.becn_increase = 7;  // all inert while cc.enabled is false
  const SimResult base =
      Simulation::open_loop(subnet, quick_window(), traffic, 0.6).run();
  const SimResult other =
      Simulation::open_loop(subnet, tweaked, traffic, 0.6).run();
  EXPECT_EQ(to_json(base), to_json(other));
  EXPECT_GT(base.packets_delivered, 0u);
}

TEST(CcParity, ArmedButUnreachableCcMatchesCcOffBitForBit) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 9};
  for (const double load : {0.3, 0.9}) {
    const SimResult off =
        Simulation::open_loop(subnet, quick_window(), traffic, load).run();
    const SimResult armed =
        Simulation::open_loop(subnet, inert_cc_window(), traffic, load).run();
    // The armed run must not have fired once...
    EXPECT_EQ(armed.cc.fecn_marked, 0u) << "load " << load;
    EXPECT_EQ(armed.cc.becn_received, 0u) << "load " << load;
    EXPECT_EQ(armed.cc.throttled_pkts, 0u) << "load " << load;
    // ...and every non-cc field must be bit-identical to the cc-off run.
    SimResult armed_sans_cc = armed;
    armed_sans_cc.cc = off.cc;
    EXPECT_EQ(to_json(off), to_json(armed_sans_cc)) << "load " << load;
    EXPECT_GT(off.packets_delivered, 0u);
  }
}

TEST(CcParity, BurstCcOffMatchesArmedUnreachableCc) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(16, 512);
  const BurstResult off =
      Simulation::burst(subnet, quick_window(), workload).run_to_completion();
  const BurstResult armed = Simulation::burst(subnet, inert_cc_window(),
                                              workload)
                                .run_to_completion();
  EXPECT_EQ(armed.cc.fecn_marked, 0u);
  EXPECT_EQ(armed.cc.throttled_pkts, 0u);
  BurstResult armed_sans_cc = armed;
  armed_sans_cc.cc = off.cc;
  EXPECT_EQ(to_json(off), to_json(armed_sans_cc));
  EXPECT_GT(off.messages, 0u);
}

}  // namespace
}  // namespace mlid

// Bit-reproducibility: identical configuration => identical results, and
// seed / parameter changes actually change the run.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig window(std::uint64_t seed) {
  SimConfig cfg;
  cfg.warmup_ns = 8'000;
  cfg.measure_ns = 40'000;
  cfg.seed = seed;
  return cfg;
}

SimResult run_once(std::string_view kind, std::uint64_t seed, double load,
                   TrafficKind traffic = TrafficKind::kUniform) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, kind);
  Simulation sim = Simulation::open_loop(subnet, window(seed),
                                         {traffic, 0.2, 0, seed * 3 + 1}, load);
  return sim.run();
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_DOUBLE_EQ(a.avg_network_latency_ns, b.avg_network_latency_ns);
  EXPECT_DOUBLE_EQ(a.accepted_bytes_per_ns_per_node,
                   b.accepted_bytes_per_ns_per_node);
  EXPECT_DOUBLE_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_DOUBLE_EQ(a.mean_link_utilization, b.mean_link_utilization);
}

TEST(Determinism, SameSeedsSameResultsUniform) {
  expect_identical(run_once("MLID", 5, 0.6),
                   run_once("MLID", 5, 0.6));
}

TEST(Determinism, SameSeedsSameResultsCentricSlid) {
  expect_identical(
      run_once("SLID", 9, 0.8, TrafficKind::kCentric),
      run_once("SLID", 9, 0.8, TrafficKind::kCentric));
}

TEST(Determinism, DifferentSeedsDiffer) {
  const SimResult a = run_once("MLID", 5, 0.6);
  const SimResult b = run_once("MLID", 6, 0.6);
  EXPECT_NE(a.avg_latency_ns, b.avg_latency_ns);
}

TEST(Determinism, FreshSubnetDoesNotPerturbResults) {
  // Rebuilding the fabric/subnet between runs must not change anything:
  // no hidden global state.
  const SimResult a = run_once("MLID", 11, 0.4);
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, window(11),
                                         {TrafficKind::kUniform, 0.2, 0, 34},
                                         0.4);
  expect_identical(a, sim.run());
}

TEST(Determinism, LoadChangesTheOutcome) {
  const SimResult a = run_once("MLID", 5, 0.2);
  const SimResult b = run_once("MLID", 5, 0.8);
  EXPECT_GT(b.packets_generated, a.packets_generated);
}

}  // namespace
}  // namespace mlid

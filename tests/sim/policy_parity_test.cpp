// Forwarding/VL-map policy subsystem: registry semantics, selection-rule
// unit tests, and the bit-determinism contracts -- the deterministic policy
// is the engine's historical hot path (parity suites elsewhere pin that),
// and the adaptive policy must itself be bit-reproducible across queue
// structures and shard counts.
#include <gtest/gtest.h>

#include <vector>

#include "common/expect.hpp"
#include "harness/report.hpp"
#include "parallel/sharded.hpp"
#include "routing/adaptive.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

// ---- registries -----------------------------------------------------------

TEST(PolicyRegistry, SeedPoliciesAreRegistered) {
  EXPECT_TRUE(ForwardingPolicyRegistry::instance().contains("deterministic"));
  EXPECT_TRUE(ForwardingPolicyRegistry::instance().contains("adaptive"));
  EXPECT_TRUE(VlMapRegistry::instance().contains("none"));
  EXPECT_TRUE(VlMapRegistry::instance().contains("dest-mod"));
  EXPECT_TRUE(VlMapRegistry::instance().contains("flow-hash"));
  // Case-insensitive like the scheme registry.
  EXPECT_TRUE(ForwardingPolicyRegistry::instance().contains("Adaptive"));
  EXPECT_FALSE(ForwardingPolicyRegistry::instance().contains("bogus"));
}

TEST(PolicyRegistry, UnknownNamesThrowWithTheListing) {
  try {
    (void)make_forwarding_policy("bogus");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("bogus"), std::string::npos);
    EXPECT_NE(what.find("deterministic"), std::string::npos) << what;
  }
  EXPECT_THROW((void)make_vl_map_policy("bogus"), ContractViolation);
  PolicyConfig bad;
  bad.forwarding = "bogus";
  EXPECT_THROW(bad.validate(), ContractViolation);
  bad = PolicyConfig{};
  bad.vl_map = "bogus";
  EXPECT_THROW(bad.validate(), ContractViolation);
  PolicyConfig good;
  good.validate();  // defaults must be registered
}

TEST(PolicyRegistry, SimConfigValidateChecksPolicyNames) {
  SimConfig cfg;
  cfg.policy.forwarding = "no-such-policy";
  EXPECT_THROW(cfg.validate(), ContractViolation);
}

// ---- forwarding-policy selection rules ------------------------------------

UpPortCandidate cand(PortId port, std::int32_t free_slots, std::int32_t credits,
                     std::uint32_t fecn = 0) {
  return UpPortCandidate{port, free_slots, credits, fecn};
}

TEST(AdaptivePolicy, DeterministicPolicyAlwaysReturnsTheLftAnswer) {
  const auto det = make_forwarding_policy("deterministic");
  EXPECT_TRUE(det->deterministic());
  const std::vector<UpPortCandidate> up = {cand(5, 0, 0), cand(6, 9, 9),
                                           cand(7, 9, 9)};
  EXPECT_EQ(det->select_uplink(up, 5), 5);
  EXPECT_EQ(det->select_uplink(up, 7), 7);
}

TEST(AdaptivePolicy, PicksTheLargestHeadroom) {
  // headroom = free output slots + downstream credits.
  const auto adaptive = make_forwarding_policy("adaptive");
  EXPECT_FALSE(adaptive->deterministic());
  const std::vector<UpPortCandidate> up = {cand(5, 1, 0), cand(6, 1, 2),
                                           cand(7, 0, 1)};
  EXPECT_EQ(adaptive->select_uplink(up, 5), 6);
}

TEST(AdaptivePolicy, FecnMarksBreakHeadroomTies) {
  // Equal headroom: the port that has stamped fewer FECN marks (not a
  // congestion root) wins.
  const auto adaptive = make_forwarding_policy("adaptive");
  const std::vector<UpPortCandidate> up = {cand(5, 1, 1, /*fecn=*/8),
                                           cand(6, 1, 1, /*fecn=*/2),
                                           cand(7, 0, 1, /*fecn=*/0)};
  EXPECT_EQ(adaptive->select_uplink(up, 5), 6);
}

TEST(AdaptivePolicy, DeterministicPortWinsFullTies) {
  // All signals equal: the LFT's answer wins, so an uncontended adaptive
  // run follows the deterministic paths exactly.
  const auto adaptive = make_forwarding_policy("adaptive");
  const std::vector<UpPortCandidate> up = {cand(5, 1, 1), cand(6, 1, 1),
                                           cand(7, 1, 1)};
  EXPECT_EQ(adaptive->select_uplink(up, 6), 6);
  EXPECT_EQ(adaptive->select_uplink(up, 7), 7);
}

TEST(AdaptivePolicy, SelectionIsAlwaysACandidate) {
  const auto adaptive = make_forwarding_policy("adaptive");
  const std::vector<UpPortCandidate> up = {cand(5, -3, 0), cand(6, -1, -2)};
  const PortId pick = adaptive->select_uplink(up, 5);
  EXPECT_TRUE(pick == 5 || pick == 6);
}

// ---- VL-map rules ---------------------------------------------------------

TEST(VlMap, IdentityAndKeyedMapsStayInRange) {
  const auto none = make_vl_map_policy("none");
  EXPECT_TRUE(none->identity());
  EXPECT_EQ(none->remap(3, 9, 2, 4), 2);

  const auto dest = make_vl_map_policy("dest-mod");
  EXPECT_FALSE(dest->identity());
  for (NodeId dst = 0; dst < 64; ++dst) {
    EXPECT_EQ(dest->remap(0, dst, 0, 4), static_cast<VlId>(dst % 4));
  }

  const auto flow = make_vl_map_policy("flow-hash");
  EXPECT_FALSE(flow->identity());
  for (NodeId src = 0; src < 8; ++src) {
    for (NodeId dst = 0; dst < 8; ++dst) {
      const VlId vl = flow->remap(src, dst, 0, 4);
      EXPECT_LT(int{vl}, 4);
      // Flow-keyed: stable per (src, dst) pair.
      EXPECT_EQ(flow->remap(src, dst, 3, 4), vl);
    }
  }
}

// ---- engine-level determinism and invariants ------------------------------

SimConfig adaptive_canonical() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 17;
  cfg.policy.forwarding = "adaptive";
  cfg.event_order = EventOrder::kCanonical;
  return cfg;
}

TEST(PolicyParity, AdaptiveHeapAndLadderQueuesAgreeByteForByte) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 23};
  SimConfig heap = adaptive_canonical();
  heap.event_queue = EventQueueKind::kHeap;
  SimConfig ladder = adaptive_canonical();
  ladder.event_queue = EventQueueKind::kLadder;
  const SimResult a = Simulation::open_loop(subnet, heap, traffic, 0.8).run();
  const SimResult b = Simulation::open_loop(subnet, ladder, traffic, 0.8).run();
  EXPECT_GT(a.packets_delivered, 0u);
  EXPECT_EQ(to_json(a), to_json(b));
}

TEST(PolicyParity, AdaptiveShardedRunsMatchTheSequentialOracle) {
  // The occupancy/credit signals a policy reads are the owning shard's own
  // arrays (device state never splits across shards), so the adaptive
  // policy must hold the same shard-parity contract as the deterministic
  // engine.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 23};
  const SimResult oracle =
      Simulation::open_loop(subnet, adaptive_canonical(), traffic, 0.7).run();
  EXPECT_GT(oracle.packets_delivered, 0u);
  for (const std::uint32_t shards : {1u, 2u, 4u}) {
    ShardedSimulation sim = ShardedSimulation::open_loop(
        subnet, adaptive_canonical(), traffic, 0.7, {shards, 0});
    EXPECT_EQ(to_json(oracle), to_json(sim.run())) << "shards " << shards;
  }
}

TEST(PolicyParity, VlMapShardedRunsMatchTheSequentialOracle) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.0, 0, 29};
  SimConfig cfg = adaptive_canonical();
  cfg.num_vls = 4;
  cfg.policy.vl_map = "flow-hash";
  const SimResult oracle =
      Simulation::open_loop(subnet, cfg, traffic, 0.6).run();
  for (const std::uint32_t shards : {2u, 4u}) {
    ShardedSimulation sim =
        ShardedSimulation::open_loop(subnet, cfg, traffic, 0.6, {shards, 0});
    EXPECT_EQ(to_json(oracle), to_json(sim.run())) << "shards " << shards;
  }
}

TEST(PolicyParity, TelemetryDoesNotChangeAdaptiveResults) {
  // The adaptive FECN-mark signal is its own counter, not the telemetry
  // one: turning observability off must not move a single packet.
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 31};
  SimConfig on = adaptive_canonical();
  on.cc.enabled = true;
  SimConfig off = on;
  off.telemetry = false;
  const SimResult with =
      Simulation::open_loop(subnet, on, traffic, 0.9).run();
  const SimResult without =
      Simulation::open_loop(subnet, off, traffic, 0.9).run();
  EXPECT_EQ(with.packets_delivered, without.packets_delivered);
  EXPECT_EQ(with.packets_dropped, without.packets_dropped);
  EXPECT_DOUBLE_EQ(with.avg_latency_ns, without.avg_latency_ns);
}

TEST(PolicyInvariants, AdaptivePathsStayMinimal) {
  // Only up-phase ports are ever overridden, so every packet still crosses
  // at most 2n hops of wire (up to a root, down to the leaf): no loops, no
  // detours.  avg_hops counts link traversals including the two endnode
  // links.
  for (const auto& [m, n] : {std::pair{4, 3}, std::pair{8, 2}}) {
    const FatTreeFabric fabric{FatTreeParams(m, n)};
    const Subnet subnet(fabric, "SLID");
    SimConfig cfg = adaptive_canonical();
    const TrafficConfig traffic{TrafficKind::kCentric, 0.2, 0, 37};
    const SimResult r = Simulation::open_loop(subnet, cfg, traffic, 0.9).run();
    EXPECT_GT(r.packets_delivered, 0u);
    EXPECT_EQ(r.packets_dropped, 0u);
    EXPECT_LE(r.avg_hops, 2.0 * n) << "m=" << m << " n=" << n;
  }
}

TEST(PolicyInvariants, VlMapDeliveriesLandOnTheMappedLanes) {
  // dest-mod at 4 VLs: every delivered packet rides VL (dst % 4), so all
  // four lanes carry traffic and per-VL delivery is deterministic.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = adaptive_canonical();
  cfg.policy.forwarding = "deterministic";
  cfg.num_vls = 4;
  cfg.policy.vl_map = "dest-mod";
  const TrafficConfig traffic{TrafficKind::kUniform, 0.0, 0, 41};
  const SimResult a = Simulation::open_loop(subnet, cfg, traffic, 0.5).run();
  const SimResult b = Simulation::open_loop(subnet, cfg, traffic, 0.5).run();
  ASSERT_EQ(a.delivered_per_vl.size(), 4u);
  std::uint64_t total = 0;
  for (int vl = 0; vl < 4; ++vl) {
    EXPECT_GT(a.delivered_per_vl[vl], 0u) << "vl " << vl;
    EXPECT_EQ(a.delivered_per_vl[vl], b.delivered_per_vl[vl]);
    total += a.delivered_per_vl[vl];
  }
  // delivered_per_vl counts the measurement window only.
  EXPECT_EQ(total, a.packets_measured);
}

}  // namespace
}  // namespace mlid

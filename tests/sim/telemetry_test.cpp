// The observability layer's core contract: telemetry is counters-only.
// Turning it off must not change a single engine result bit, and the
// exported aggregates must be consistent with each other and with the
// always-on LinkLoad counters.
#include <gtest/gtest.h>

#include <string>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig small_config(bool telemetry) {
  SimConfig cfg;
  cfg.seed = 7;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 25'000;
  cfg.num_vls = 2;
  cfg.telemetry = telemetry;
  return cfg;
}

TrafficConfig small_traffic() {
  return {TrafficKind::kUniform, 0.2, 0, 11};
}

// Every non-telemetry SimResult field, compared bit-for-bit (EXPECT_EQ on
// doubles is deliberate: the engine is deterministic, so "close" would hide
// a telemetry-path perturbation).
void expect_identical_core(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.offered_load, b.offered_load);
  EXPECT_EQ(a.accepted_bytes_per_ns_per_node, b.accepted_bytes_per_ns_per_node);
  EXPECT_EQ(a.avg_latency_ns, b.avg_latency_ns);
  EXPECT_EQ(a.avg_network_latency_ns, b.avg_network_latency_ns);
  EXPECT_EQ(a.p50_latency_ns, b.p50_latency_ns);
  EXPECT_EQ(a.p95_latency_ns, b.p95_latency_ns);
  EXPECT_EQ(a.p99_latency_ns, b.p99_latency_ns);
  EXPECT_EQ(a.max_latency_ns, b.max_latency_ns);
  EXPECT_EQ(a.packets_generated, b.packets_generated);
  EXPECT_EQ(a.packets_delivered, b.packets_delivered);
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_EQ(a.packets_dropped, b.packets_dropped);
  EXPECT_EQ(a.dropped_unroutable, b.dropped_unroutable);
  EXPECT_EQ(a.dropped_dead_link, b.dropped_dead_link);
  EXPECT_EQ(a.dropped_during_convergence, b.dropped_during_convergence);
  EXPECT_EQ(a.drops_post_convergence, b.drops_post_convergence);
  EXPECT_EQ(a.events_processed, b.events_processed);
  EXPECT_EQ(a.avg_hops, b.avg_hops);
  EXPECT_EQ(a.max_source_queue_pkts, b.max_source_queue_pkts);
  EXPECT_EQ(a.mean_link_utilization, b.mean_link_utilization);
  EXPECT_EQ(a.max_link_utilization, b.max_link_utilization);
  EXPECT_EQ(a.sim_end_ns, b.sim_end_ns);
  EXPECT_EQ(a.delivered_per_vl, b.delivered_per_vl);
  EXPECT_EQ(a.avg_latency_per_vl_ns, b.avg_latency_per_vl_ns);
  EXPECT_EQ(a.jain_fairness_index, b.jain_fairness_index);
  EXPECT_EQ(a.min_node_accepted_bytes_per_ns, b.min_node_accepted_bytes_per_ns);
  EXPECT_EQ(a.max_node_accepted_bytes_per_ns, b.max_node_accepted_bytes_per_ns);
  EXPECT_EQ(a.first_fault_ns, b.first_fault_ns);
  EXPECT_EQ(a.sm_converged_ns, b.sm_converged_ns);
  EXPECT_EQ(a.reconvergence_ns, b.reconvergence_ns);
  EXPECT_EQ(a.sm_traps, b.sm_traps);
  EXPECT_EQ(a.sm_sweeps, b.sm_sweeps);
  EXPECT_EQ(a.sm_entries_programmed, b.sm_entries_programmed);
  EXPECT_EQ(a.sm_switches_programmed, b.sm_switches_programmed);
}

TEST(Telemetry, EngineResultsBitIdenticalOnAndOff) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const SimResult with_telemetry =
      Simulation::open_loop(subnet, small_config(true), small_traffic(), 0.7).run();
  const SimResult without =
      Simulation::open_loop(subnet, small_config(false), small_traffic(), 0.7).run();
  EXPECT_TRUE(with_telemetry.telemetry);
  EXPECT_FALSE(without.telemetry);
  expect_identical_core(with_telemetry, without);
  // Off means off: the telemetry block stays at its zero defaults.
  EXPECT_EQ(without.latency_log2_hist.total(), 0u);
  EXPECT_TRUE(without.latency_log2_per_vl.empty());
  EXPECT_EQ(without.link_summary.links, 0u);
}

TEST(Telemetry, HistogramsCoverTheMeasuredPackets) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const SimResult r =
      Simulation::open_loop(subnet, small_config(true), small_traffic(), 0.6).run();
  ASSERT_GT(r.packets_measured, 0u);
  EXPECT_EQ(r.latency_log2_hist.total(), r.packets_measured);
  EXPECT_EQ(r.queue_log2_hist.total(), r.packets_measured);
  EXPECT_EQ(r.network_log2_hist.total(), r.packets_measured);
  // The log2 p50 must agree with the fine-grained p50 to bucket resolution
  // (one factor of two either way).
  const double coarse = r.latency_log2_hist.quantile(0.5);
  EXPECT_GE(coarse, r.p50_latency_ns / 2.0);
  EXPECT_LE(coarse, r.p50_latency_ns * 2.0 + 1.0);
}

TEST(Telemetry, PerVlHistogramsMergeBackToTheTotal) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = small_config(true);
  cfg.num_vls = 4;
  const SimResult r = Simulation::open_loop(subnet, cfg, small_traffic(), 0.6).run();
  ASSERT_EQ(r.latency_log2_per_vl.size(), 4u);
  Log2Histogram merged;
  for (const Log2Histogram& h : r.latency_log2_per_vl) merged.merge(h);
  EXPECT_EQ(merged, r.latency_log2_hist);
}

TEST(Telemetry, LinkStatsAgreeWithAlwaysOnLinkLoads) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, small_config(true),
                                         small_traffic(), 0.6);
  const SimResult r = sim.run();
  const auto loads = sim.link_loads();
  const auto stats = sim.link_stats();
  ASSERT_EQ(stats.size(), loads.size());
  ASSERT_EQ(r.link_summary.links, loads.size());
  std::uint64_t sum_packets = 0, sum_bytes = 0;
  for (std::size_t i = 0; i < stats.size(); ++i) {
    // Same deterministic (device, port) order as link_loads().
    EXPECT_EQ(stats[i].dev, loads[i].dev);
    EXPECT_EQ(stats[i].port, loads[i].port);
    // Whole-run totals can only exceed the windowed LinkLoad count.
    EXPECT_GE(stats[i].packets_tx, loads[i].packets_tx);
    std::uint64_t vl_packets = 0, vl_bytes = 0;
    std::uint32_t vl_peak = 0;
    for (const VlLinkStats& vl : stats[i].vls) {
      vl_packets += vl.packets_tx;
      vl_bytes += vl.bytes_tx;
      vl_peak = std::max(vl_peak, vl.peak_queue_pkts);
    }
    EXPECT_EQ(stats[i].packets_tx, vl_packets);
    EXPECT_EQ(stats[i].bytes_tx, vl_bytes);
    EXPECT_EQ(stats[i].peak_queue_pkts, vl_peak);
    sum_packets += stats[i].packets_tx;
    sum_bytes += stats[i].bytes_tx;
  }
  EXPECT_EQ(r.link_summary.total_packets, sum_packets);
  EXPECT_EQ(r.link_summary.total_bytes, sum_bytes);
  EXPECT_GE(r.link_summary.max_utilization, r.link_summary.mean_utilization);
  EXPECT_GT(r.link_summary.max_queue_depth_pkts, 0u);
}

TEST(Telemetry, BurstResultsBitIdenticalOnAndOff) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "SLID");
  const auto workload = all_to_all_personalized(8, 1024);
  SimConfig on = small_config(true);
  SimConfig off = small_config(false);
  const BurstResult a = Simulation::burst(subnet, on, workload).run_to_completion();
  const BurstResult b = Simulation::burst(subnet, off, workload).run_to_completion();
  EXPECT_TRUE(a.telemetry);
  EXPECT_FALSE(b.telemetry);
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_EQ(a.packets, b.packets);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.avg_message_latency_ns, b.avg_message_latency_ns);
  EXPECT_EQ(a.max_message_latency_ns, b.max_message_latency_ns);
  ASSERT_GT(a.messages, 0u);
  EXPECT_EQ(a.message_latency_hist.total(), a.messages);
  EXPECT_LE(a.p50_message_latency_ns, a.p99_message_latency_ns);
  EXPECT_GT(a.link_summary.links, 0u);
}

}  // namespace
}  // namespace mlid

// Closed-loop (burst) workloads: segmentation, exact single-message
// timings, collective makespans, and conservation.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig one_lane() {
  SimConfig cfg;
  cfg.num_vls = 1;
  cfg.vl_policy = VlPolicy::kFixed0;
  cfg.seed = 41;
  return cfg;
}

TEST(Workload, BuilderShapes) {
  const auto a2a = all_to_all_personalized(8, 256);
  EXPECT_EQ(a2a.size(), 8u * 7u);
  for (const auto& m : a2a) EXPECT_NE(m.src, m.dst);

  const auto gather = gather_to(8, 3, 512);
  EXPECT_EQ(gather.size(), 7u);
  for (const auto& m : gather) EXPECT_EQ(m.dst, 3u);

  const auto scatter = scatter_from(8, 3, 512);
  EXPECT_EQ(scatter.size(), 7u);
  for (const auto& m : scatter) EXPECT_EQ(m.src, 3u);

  const auto ring = ring_shift(8, 1, 128);
  EXPECT_EQ(ring.size(), 8u);
  EXPECT_EQ(ring[7].dst, 0u);

  const auto perm = random_permutation(8, 128, 5);
  std::set<NodeId> images;
  for (const auto& m : perm) {
    EXPECT_NE(m.src, m.dst);
    EXPECT_TRUE(images.insert(m.dst).second);
  }
}

TEST(Workload, BuilderValidation) {
  EXPECT_THROW(all_to_all_personalized(1, 256), ContractViolation);
  EXPECT_THROW(gather_to(8, 9, 256), ContractViolation);
  EXPECT_THROW(ring_shift(8, 8, 256), ContractViolation);
  EXPECT_THROW(ring_shift(8, 0, 256), ContractViolation);
  EXPECT_THROW(scatter_from(8, 0, 0), ContractViolation);
}

TEST(Workload, CsvTraceParsing) {
  std::istringstream trace(
      "# comment line\n"
      "\n"
      "0,15,4096\n"
      "  3,7,256\n"
      "1,2,1\n");
  const auto messages = parse_message_csv(trace);
  ASSERT_EQ(messages.size(), 3u);
  EXPECT_EQ(messages[0].src, 0u);
  EXPECT_EQ(messages[0].dst, 15u);
  EXPECT_EQ(messages[0].bytes, 4096u);
  EXPECT_EQ(messages[1].src, 3u);
  EXPECT_EQ(messages[2].bytes, 1u);
}

TEST(Workload, CsvTraceRejectsGarbage) {
  {
    std::istringstream bad("0;15;4096\n");
    EXPECT_THROW(parse_message_csv(bad), ContractViolation);
  }
  {
    std::istringstream bad("0,15\n");
    EXPECT_THROW(parse_message_csv(bad), ContractViolation);
  }
  {
    std::istringstream bad("0,15,0\n");  // empty message
    EXPECT_THROW(parse_message_csv(bad), ContractViolation);
  }
  {
    std::istringstream empty("# nothing here\n");
    EXPECT_TRUE(parse_message_csv(empty).empty());
  }
}

TEST(Workload, MiceElephantsShapeAndSkew) {
  MiceElephantsConfig mix;  // defaults: 8 flows/node, 10% elephants
  const auto flows = mice_elephants(64, mix, 7);
  EXPECT_EQ(flows.size(), 64u * 8u);
  std::uint64_t elephants = 0, mouse_bytes = 0, elephant_bytes = 0;
  for (const auto& m : flows) {
    EXPECT_LT(m.src, 64u);
    EXPECT_LT(m.dst, 64u);
    EXPECT_NE(m.src, m.dst);
    ASSERT_TRUE(m.bytes == mix.mouse_bytes || m.bytes == mix.elephant_bytes)
        << m.bytes;
    if (m.bytes == mix.elephant_bytes) {
      ++elephants;
      elephant_bytes += m.bytes;
    } else {
      mouse_bytes += m.bytes;
    }
  }
  // ~10% of the flows, but the clear majority of the bytes: the skew the
  // mice-elephants scenario is named for.
  EXPECT_NEAR(static_cast<double>(elephants) / static_cast<double>(flows.size()),
              mix.elephant_fraction, 0.05);
  EXPECT_GT(elephant_bytes, 4 * mouse_bytes);
}

TEST(Workload, MiceElephantsIsDeterministicAndSeedKeyed) {
  const MiceElephantsConfig mix;
  const auto a = mice_elephants(32, mix, 123);
  const auto b = mice_elephants(32, mix, 123);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].src, b[i].src);
    EXPECT_EQ(a[i].dst, b[i].dst);
    EXPECT_EQ(a[i].bytes, b[i].bytes);
  }
  const auto c = mice_elephants(32, mix, 124);
  bool differs = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    differs |= a[i].dst != c[i].dst || a[i].bytes != c[i].bytes;
  }
  EXPECT_TRUE(differs);
}

TEST(Burst, MiceElephantsDrainsAndConserves) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  MiceElephantsConfig mix;
  mix.flows_per_node = 2;
  mix.mouse_bytes = 256;
  mix.elephant_bytes = 4'096;
  const auto workload = mice_elephants(8, mix, 9);
  std::uint64_t expected_bytes = 0;
  for (const auto& m : workload) expected_bytes += m.bytes;
  SimConfig cfg;
  cfg.seed = 41;
  const BurstResult r =
      Simulation::burst(subnet, cfg, workload).run_to_completion();
  EXPECT_EQ(r.messages, workload.size());
  EXPECT_EQ(r.total_bytes, expected_bytes);
  EXPECT_GT(r.makespan_ns, 0);
  EXPECT_EQ(r.events_processed, r.events_scheduled);
}

TEST(Burst, SingleMessageMatchesTheClosedFormLatency) {
  // One 256-byte message across the full 4-port 2-tree: 3 switches,
  // 3*100 + 4*20 + 256 = 636 ns.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::burst(subnet, one_lane(), {{0, 7, 256}});
  const BurstResult r = sim.run_to_completion();
  EXPECT_EQ(r.messages, 1u);
  EXPECT_EQ(r.packets, 1u);
  EXPECT_EQ(r.makespan_ns, 636);
  EXPECT_DOUBLE_EQ(r.avg_message_latency_ns, 636.0);
}

TEST(Burst, SegmentedMessagePipelinesAtTheCreditCadence) {
  // A 1024-byte message = 4 MTU segments.  The NIC reinjects every
  // wire + t_fly + t_r + wire + t_fly = 396 ns (single-packet credit loop),
  // so the tail segment leaves at 3*396 and lands 636 ns later: 1824 ns.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::burst(subnet, one_lane(), {{0, 7, 1024}});
  const BurstResult r = sim.run_to_completion();
  EXPECT_EQ(r.packets, 4u);
  EXPECT_EQ(r.total_bytes, 1024u);
  EXPECT_EQ(r.makespan_ns, 3 * 396 + 636);
}

TEST(Burst, OddSizesSegmentExactly) {
  // 300 bytes -> one 256-byte and one 44-byte segment.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::burst(subnet, one_lane(), {{0, 1, 300}});
  const BurstResult r = sim.run_to_completion();
  EXPECT_EQ(r.packets, 2u);
  EXPECT_EQ(r.total_bytes, 300u);
  EXPECT_GT(r.makespan_ns, 0);
}

TEST(Burst, AllToAllDrainsAndConserves) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg;
  cfg.seed = 41;
  const auto workload = all_to_all_personalized(16, 512);
  Simulation sim = Simulation::burst(subnet, cfg, workload);
  const BurstResult r = sim.run_to_completion();
  EXPECT_EQ(r.messages, 16u * 15u);
  EXPECT_EQ(r.packets, 16u * 15u * 2u);  // 512 B = 2 segments
  EXPECT_EQ(r.total_bytes, 16u * 15u * 512u);
  EXPECT_GT(r.makespan_ns, 0);
  EXPECT_LE(r.avg_message_latency_ns,
            static_cast<double>(r.makespan_ns));
  EXPECT_DOUBLE_EQ(r.max_message_latency_ns,
                   static_cast<double>(r.makespan_ns));
  EXPECT_GT(r.aggregate_bytes_per_ns(), 0.0);
}

TEST(Burst, MlidAllToAllNoSlowerThanSlid) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet mlid(fabric, "MLID");
  const Subnet slid(fabric, "SLID");
  const auto workload = all_to_all_personalized(32, 1024);
  SimConfig cfg;
  cfg.seed = 41;
  const SimTime t_mlid =
      Simulation::burst(mlid, cfg, workload).run_to_completion().makespan_ns;
  const SimTime t_slid =
      Simulation::burst(slid, cfg, workload).run_to_completion().makespan_ns;
  EXPECT_LE(t_mlid, static_cast<SimTime>(1.05 * static_cast<double>(t_slid)));
}

TEST(Burst, GatherSerializesOnTheRootLink) {
  // All 7 senders share node 3's terminal link: the makespan is at least
  // the pure serialization of their payloads.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::burst(subnet, one_lane(), gather_to(8, 3, 512));
  const BurstResult r = sim.run_to_completion();
  EXPECT_GE(r.makespan_ns, 7 * 512);
}

TEST(Burst, Deterministic) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const auto workload = all_to_all_personalized(16, 512);
  SimConfig cfg;
  cfg.seed = 41;
  const BurstResult a = Simulation::burst(subnet, cfg, workload).run_to_completion();
  const BurstResult b = Simulation::burst(subnet, cfg, workload).run_to_completion();
  EXPECT_EQ(a.makespan_ns, b.makespan_ns);
  EXPECT_DOUBLE_EQ(a.avg_message_latency_ns, b.avg_message_latency_ns);
  EXPECT_EQ(a.events_processed, b.events_processed);
}

TEST(Burst, ModeMixupsAreRejected) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation burst = Simulation::burst(subnet, one_lane(), {{0, 1, 256}});
  EXPECT_THROW(burst.run(), ContractViolation);
  Simulation open = Simulation::open_loop(subnet, one_lane(),
                                          {TrafficKind::kUniform, 0, 0, 1},
                                          0.5);
  EXPECT_THROW(open.run_to_completion(), ContractViolation);
  EXPECT_THROW(Simulation::burst(subnet, one_lane(),
                                 std::vector<MessageSpec>{}),
               ContractViolation);
  EXPECT_THROW(Simulation::burst(subnet, one_lane(), {{0, 0, 256}}),
               ContractViolation);
}

}  // namespace
}  // namespace mlid

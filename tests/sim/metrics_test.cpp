#include "sim/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace mlid {
namespace {

TEST(Log2Histogram, BucketEdgesArePowersOfTwo) {
  // Bucket 0 holds [0, 1); bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(Log2Histogram::bucket_of(0.0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(0.5), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(0.999), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(1.0), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(1.999), 1u);
  EXPECT_EQ(Log2Histogram::bucket_of(2.0), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(3.999), 2u);
  EXPECT_EQ(Log2Histogram::bucket_of(4.0), 3u);
  EXPECT_EQ(Log2Histogram::bucket_of(1024.0), 11u);
  EXPECT_EQ(Log2Histogram::bucket_of(1025.0), 11u);
  for (std::size_t i = 1; i + 1 < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(Log2Histogram::bucket_of(Log2Histogram::bucket_lo(i)), i);
    EXPECT_EQ(Log2Histogram::bucket_of(
                  std::nextafter(Log2Histogram::bucket_hi(i), 0.0)),
              i);
  }
}

TEST(Log2Histogram, DegenerateInputsClampInsteadOfCorrupting) {
  EXPECT_EQ(Log2Histogram::bucket_of(-5.0), 0u);
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<double>::quiet_NaN()),
            0u);
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<double>::infinity()),
            Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(1e300), Log2Histogram::kBuckets - 1);
}

TEST(Log2Histogram, AddAndTotalTrackCounts) {
  Log2Histogram h;
  EXPECT_EQ(h.total(), 0u);
  h.add(0.5);
  h.add(3.0);
  h.add(3.5);
  h.add(100.0);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[2], 2u);
  EXPECT_EQ(h.counts()[7], 1u);  // [64, 128)
}

TEST(Log2Histogram, QuantileInterpolatesWithinBucket) {
  Log2Histogram h;
  for (int i = 0; i < 100; ++i) h.add(10.0);  // all in bucket [8, 16)
  // Every sample lands in one bucket: quantiles interpolate linearly
  // across [8, 16) by rank.
  EXPECT_NEAR(h.quantile(0.0), 8.0, 1e-9);
  EXPECT_NEAR(h.quantile(0.5), 12.0, 1.0);
  EXPECT_LE(h.quantile(0.99), 16.0);
  EXPECT_GE(h.quantile(0.99), 8.0);
}

TEST(Log2Histogram, QuantileOrderingAndEmpty) {
  Log2Histogram empty;
  EXPECT_EQ(empty.quantile(0.5), 0.0);

  Log2Histogram h;
  for (int i = 1; i <= 1000; ++i) h.add(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Bucketed quantiles are accurate to within their bucket width.
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 1024.0);
  EXPECT_GE(p99, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(Log2Histogram, MergeEqualsAddingAllSamplesToOne) {
  Log2Histogram a, b, both;
  const double samples_a[] = {0.2, 1.0, 7.0, 300.0};
  const double samples_b[] = {2.0, 7.5, 4096.0};
  for (double s : samples_a) {
    a.add(s);
    both.add(s);
  }
  for (double s : samples_b) {
    b.add(s);
    both.add(s);
  }
  a.merge(b);
  EXPECT_EQ(a, both);
  EXPECT_EQ(a.total(), 7u);
}

TEST(Log2Histogram, MergeWithEmptyIsIdentity) {
  Log2Histogram h, empty;
  h.add(5.0);
  h.add(9.0);
  const Log2Histogram before = h;
  h.merge(empty);
  EXPECT_EQ(h, before);
  empty.merge(h);
  EXPECT_EQ(empty, before);
}

TEST(Log2Histogram, TopBucketClampsAtTwoToTheSixtyThree) {
  // 0x1p63 is the first double that cannot round-trip through uint64, so
  // bucket_of short-circuits before the integer conversion: everything at
  // or above it clamps to the top bucket instead of hitting UB.
  EXPECT_EQ(Log2Histogram::bucket_of(0x1p63), Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(std::nextafter(0x1p63, 0.0)),
            Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(0x1p64), Log2Histogram::kBuckets - 1);
  EXPECT_EQ(Log2Histogram::bucket_of(std::numeric_limits<double>::max()),
            Log2Histogram::kBuckets - 1);
  Log2Histogram h;
  h.add(0x1p63);
  h.add(-0x1p63);  // negative mirror lands in bucket 0, not the top
  EXPECT_EQ(h.counts()[Log2Histogram::kBuckets - 1], 1u);
  EXPECT_EQ(h.counts()[0], 1u);
}

TEST(Log2Histogram, MergeIsAssociative) {
  // Decimation merges samples pairwise in whatever order the cap forces;
  // histogram merge must not care about that grouping.
  Log2Histogram a, b, c;
  for (double s : {0.0, 1.5, 80.0}) a.add(s);
  for (double s : {2.0, 2.5, 1e6}) b.add(s);
  for (double s : {0.4, 4096.0}) c.add(s);
  Log2Histogram left = a;   // (a + b) + c
  left.merge(b);
  left.merge(c);
  Log2Histogram bc = b;     // a + (b + c)
  bc.merge(c);
  Log2Histogram right = a;
  right.merge(bc);
  EXPECT_EQ(left, right);
  EXPECT_EQ(left.total(), 8u);
}

TEST(Log2Histogram, TrimmedSizeDropsTrailingZeroBuckets) {
  Log2Histogram h;
  EXPECT_EQ(h.trimmed_size(), 0u);
  h.add(100.0);  // bucket 7
  EXPECT_EQ(h.trimmed_size(), 8u);
  h.add(0.0);  // bucket 0 does not extend the trim
  EXPECT_EQ(h.trimmed_size(), 8u);
}

}  // namespace
}  // namespace mlid

// Packet tracing and link-load accounting.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig traced_config(std::uint32_t n) {
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 11;
  cfg.trace_packets = n;
  return cfg;
}

TEST(Trace, OffByDefault) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.1);
  sim.run();
  EXPECT_TRUE(sim.traces().empty());
}

TEST(Trace, FirstPacketTimelineMatchesTheTimingModel) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, traced_config(4),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  sim.run();
  ASSERT_EQ(sim.traces().size(), 4u);
  for (const PacketTraceRecord& rec : sim.traces()) {
    // Neighbor pattern: generated -> injected -> head at leaf ->
    // forwarded by leaf -> head at dst -> delivered.
    ASSERT_EQ(rec.events.size(), 6u);
    EXPECT_EQ(rec.events[0].point, TracePoint::kGenerated);
    EXPECT_EQ(rec.events[1].point, TracePoint::kInjected);
    EXPECT_EQ(rec.events[2].point, TracePoint::kHeadArrive);
    EXPECT_EQ(rec.events[3].point, TracePoint::kForwarded);
    EXPECT_EQ(rec.events[4].point, TracePoint::kHeadArrive);
    EXPECT_EQ(rec.events[5].point, TracePoint::kDelivered);
    const SimTime t0 = rec.events[0].time;
    EXPECT_EQ(rec.events[1].time, t0);        // idle NIC injects at once
    EXPECT_EQ(rec.events[2].time, t0 + 20);   // flying time
    EXPECT_EQ(rec.events[3].time, t0 + 120);  // + routing delay
    EXPECT_EQ(rec.events[4].time, t0 + 140);  // + flying time
    EXPECT_EQ(rec.events[5].time, t0 + 396);  // + serialization (tail)
    EXPECT_EQ(rec.dst, rec.src ^ 1u);
  }
}

TEST(Trace, RecordsExactlyTheRequestedCount) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, traced_config(7),
                                         {TrafficKind::kUniform, 0, 0, 3}, 0.4);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_generated, 7u);
  EXPECT_EQ(sim.traces().size(), 7u);
}

TEST(Trace, LinkLoadsConserveForwardedPackets) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                         {TrafficKind::kUniform, 0, 0, 3}, 0.3);
  const SimResult r = sim.run();
  const auto loads = sim.link_loads();
  // One entry per connected directed link.
  EXPECT_EQ(loads.size(), 2u * fabric.fabric().num_links());
  std::uint64_t nic_tx = 0;
  std::uint64_t total_tx = 0;
  for (const LinkLoad& load : loads) {
    EXPECT_GE(load.busy_fraction, 0.0);
    EXPECT_LE(load.busy_fraction, 1.0 + 1e-9);
    total_tx += load.packets_tx;
    if (fabric.fabric().device(load.dev).kind() == DeviceKind::kEndnode) {
      nic_tx += load.packets_tx;
    }
  }
  // Every injected packet crossed the NIC link exactly once...
  EXPECT_LE(nic_tx, r.packets_generated);
  EXPECT_GE(nic_tx, r.packets_delivered);
  // ...and each delivered packet used at least 2 directed links.
  EXPECT_GE(total_tx, 2 * r.packets_delivered);
}

TEST(Trace, RecordRendering) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, traced_config(1),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  sim.run();
  ASSERT_EQ(sim.traces().size(), 1u);
  const std::string text = to_string(sim.traces().front());
  EXPECT_NE(text.find("generated"), std::string::npos);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  // One line per event plus the header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(sim.traces().front().events.size()) + 1);
}

TEST(Trace, InvariantCheckPassesAfterEveryRun) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  for (double load : {0.2, 0.9}) {
    Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                           {TrafficKind::kCentric, 0.3, 0, 3},
                                           load);
    sim.run();  // run() already calls check_invariants()
    EXPECT_NO_THROW(sim.check_invariants());
  }
}

TEST(Trace, StrideSamplesTheWholeRunNotJustWarmup) {
  // With stride 1 the first trace_packets generations fill the buffer
  // during warm-up; a stride records every k-th generated packet, so the
  // same packets appear in both runs at indices 0, k, 2k, ...
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0, 0, 3};
  SimConfig dense_cfg = traced_config(10);
  Simulation dense = Simulation::open_loop(subnet, dense_cfg, traffic, 0.4);
  dense.run();
  SimConfig strided_cfg = traced_config(4);
  strided_cfg.trace_stride = 3;
  Simulation strided = Simulation::open_loop(subnet, strided_cfg, traffic, 0.4);
  const SimResult r = strided.run();
  ASSERT_GT(r.packets_generated, 4u * 3u);
  ASSERT_EQ(strided.traces().size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(strided.traces()[i], dense.traces()[3 * i]) << "record " << i;
  }
  // The stride widens coverage: at the same record index, the strided run
  // holds a packet generated strictly later than the dense run's.
  EXPECT_GT(strided.traces()[3].events.front().time,
            dense.traces()[3].events.front().time);
}

TEST(Trace, DroppedPacketsCarryTheReason) {
  // Dead SM: the tables stay stale after the failure, so traced packets
  // keep walking into the dead link for the rest of the run.
  const FatTreeParams params(4, 2);
  FatTreeFabric fabric{params};
  const Subnet subnet(fabric, "MLID");
  SmConfig dead;
  dead.react = false;
  SubnetManager sm(fabric, subnet, dead);
  const FaultSchedule faults = FaultSchedule::random_uplink_failures(
      fabric, /*count=*/2, /*fail_at=*/4'000, /*seed=*/5);
  // Stride 3 is coprime with the 8-node generation round-robin, so the
  // traced packets rotate through every source instead of aliasing onto
  // the same few nodes (whose flows may all dodge the dead links).
  SimConfig cfg = traced_config(256);
  cfg.trace_stride = 3;
  Simulation sim = Simulation::open_loop(
      subnet, cfg, {TrafficKind::kUniform, 0, 0, 3}, 0.5, {&sm, faults});
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_dropped, 0u);
  std::size_t dropped_records = 0;
  for (const PacketTraceRecord& rec : sim.traces()) {
    for (const TraceEvent& e : rec.events) {
      if (e.point != TracePoint::kDropped) {
        EXPECT_EQ(e.drop, DropReason::kNone);
        continue;
      }
      ++dropped_records;
      EXPECT_NE(e.drop, DropReason::kNone);
      // The terminal event renders with its reason attached.
      const std::string text = to_string(rec);
      EXPECT_NE(text.find("dropped"), std::string::npos);
      EXPECT_NE(text.find("(" + std::string(to_string(e.drop)) + ")"),
                std::string::npos);
    }
  }
  EXPECT_GT(dropped_records, 0u);
}

TEST(Trace, DropReasonNames) {
  EXPECT_EQ(to_string(DropReason::kNone), "none");
  EXPECT_EQ(to_string(DropReason::kUnroutable), "unroutable");
  EXPECT_EQ(to_string(DropReason::kDeadLink), "dead-link");
  EXPECT_EQ(to_string(DropReason::kConvergence), "convergence");
}

TEST(Trace, ToStringNames) {
  EXPECT_EQ(to_string(TracePoint::kGenerated), "generated");
  EXPECT_EQ(to_string(TracePoint::kInjected), "injected");
  EXPECT_EQ(to_string(TracePoint::kHeadArrive), "head-arrive");
  EXPECT_EQ(to_string(TracePoint::kForwarded), "forwarded");
  EXPECT_EQ(to_string(TracePoint::kDelivered), "delivered");
}

}  // namespace
}  // namespace mlid

// Packet tracing and link-load accounting.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig traced_config(std::uint32_t n) {
  SimConfig cfg;
  cfg.warmup_ns = 2'000;
  cfg.measure_ns = 20'000;
  cfg.seed = 11;
  cfg.trace_packets = n;
  return cfg;
}

TEST(Trace, OffByDefault) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.1);
  sim.run();
  EXPECT_TRUE(sim.traces().empty());
}

TEST(Trace, FirstPacketTimelineMatchesTheTimingModel) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  Simulation sim = Simulation::open_loop(subnet, traced_config(4),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  sim.run();
  ASSERT_EQ(sim.traces().size(), 4u);
  for (const PacketTraceRecord& rec : sim.traces()) {
    // Neighbor pattern: generated -> injected -> head at leaf ->
    // forwarded by leaf -> head at dst -> delivered.
    ASSERT_EQ(rec.events.size(), 6u);
    EXPECT_EQ(rec.events[0].point, TracePoint::kGenerated);
    EXPECT_EQ(rec.events[1].point, TracePoint::kInjected);
    EXPECT_EQ(rec.events[2].point, TracePoint::kHeadArrive);
    EXPECT_EQ(rec.events[3].point, TracePoint::kForwarded);
    EXPECT_EQ(rec.events[4].point, TracePoint::kHeadArrive);
    EXPECT_EQ(rec.events[5].point, TracePoint::kDelivered);
    const SimTime t0 = rec.events[0].time;
    EXPECT_EQ(rec.events[1].time, t0);        // idle NIC injects at once
    EXPECT_EQ(rec.events[2].time, t0 + 20);   // flying time
    EXPECT_EQ(rec.events[3].time, t0 + 120);  // + routing delay
    EXPECT_EQ(rec.events[4].time, t0 + 140);  // + flying time
    EXPECT_EQ(rec.events[5].time, t0 + 396);  // + serialization (tail)
    EXPECT_EQ(rec.dst, rec.src ^ 1u);
  }
}

TEST(Trace, RecordsExactlyTheRequestedCount) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  Simulation sim = Simulation::open_loop(subnet, traced_config(7),
                                         {TrafficKind::kUniform, 0, 0, 3}, 0.4);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_generated, 7u);
  EXPECT_EQ(sim.traces().size(), 7u);
}

TEST(Trace, LinkLoadsConserveForwardedPackets) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                         {TrafficKind::kUniform, 0, 0, 3}, 0.3);
  const SimResult r = sim.run();
  const auto loads = sim.link_loads();
  // One entry per connected directed link.
  EXPECT_EQ(loads.size(), 2u * fabric.fabric().num_links());
  std::uint64_t nic_tx = 0;
  std::uint64_t total_tx = 0;
  for (const LinkLoad& load : loads) {
    EXPECT_GE(load.busy_fraction, 0.0);
    EXPECT_LE(load.busy_fraction, 1.0 + 1e-9);
    total_tx += load.packets_tx;
    if (fabric.fabric().device(load.dev).kind() == DeviceKind::kEndnode) {
      nic_tx += load.packets_tx;
    }
  }
  // Every injected packet crossed the NIC link exactly once...
  EXPECT_LE(nic_tx, r.packets_generated);
  EXPECT_GE(nic_tx, r.packets_delivered);
  // ...and each delivered packet used at least 2 directed links.
  EXPECT_GE(total_tx, 2 * r.packets_delivered);
}

TEST(Trace, RecordRendering) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  Simulation sim = Simulation::open_loop(subnet, traced_config(1),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  sim.run();
  ASSERT_EQ(sim.traces().size(), 1u);
  const std::string text = to_string(sim.traces().front());
  EXPECT_NE(text.find("generated"), std::string::npos);
  EXPECT_NE(text.find("delivered"), std::string::npos);
  // One line per event plus the header.
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'),
            static_cast<long>(sim.traces().front().events.size()) + 1);
}

TEST(Trace, InvariantCheckPassesAfterEveryRun) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, SchemeKind::kMlid);
  for (double load : {0.2, 0.9}) {
    Simulation sim = Simulation::open_loop(subnet, traced_config(0),
                                           {TrafficKind::kCentric, 0.3, 0, 3},
                                           load);
    sim.run();  // run() already calls check_invariants()
    EXPECT_NO_THROW(sim.check_invariants());
  }
}

TEST(Trace, ToStringNames) {
  EXPECT_EQ(to_string(TracePoint::kGenerated), "generated");
  EXPECT_EQ(to_string(TracePoint::kInjected), "injected");
  EXPECT_EQ(to_string(TracePoint::kHeadArrive), "head-arrive");
  EXPECT_EQ(to_string(TracePoint::kForwarded), "forwarded");
  EXPECT_EQ(to_string(TracePoint::kDelivered), "delivered");
}

}  // namespace
}  // namespace mlid

// Adaptive uplink forwarding (the non-IBA what-if mode): correctness and
// the expected performance ordering against static MLID/SLID.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig adaptive_cfg() {
  SimConfig cfg;
  cfg.policy.forwarding = "adaptive";
  cfg.warmup_ns = 10'000;
  cfg.measure_ns = 50'000;
  cfg.seed = 61;
  return cfg;
}

TEST(Adaptive, DeliversEverythingCorrectly) {
  // Any up port is a minimal next hop, so adaptivity must not break
  // delivery; drops would indicate an illegal choice.
  for (const auto params :
       {FatTreeParams(4, 3), FatTreeParams(8, 2), FatTreeParams::kary(2, 3)}) {
    const FatTreeFabric fabric(params);
    const Subnet subnet(fabric, "SLID");
    Simulation sim = Simulation::open_loop(subnet, adaptive_cfg(),
                                           {TrafficKind::kUniform, 0.2, 0, 5},
                                           0.6);
    const SimResult r = sim.run();
    EXPECT_GT(r.packets_measured, 100u);
    EXPECT_EQ(r.packets_dropped, 0u);
  }
}

TEST(Adaptive, LatencyModelUnchangedWithoutContention) {
  // With a single flow there is nothing to adapt around: exact closed-form
  // latency still holds.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SimConfig cfg = adaptive_cfg();
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kBitComplement, 0, 0, 5},
                                         0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 40u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 636.0);
}

TEST(Adaptive, RescuesSlidFromHotSpotConvergence) {
  // SLID's weakness is its static ascent convergence; adaptive uplinks
  // bypass exactly that, so SLID+adaptive must beat plain SLID under a
  // strong hot spot.
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "SLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.3, 0, 5};
  SimConfig det = adaptive_cfg();
  det.policy.forwarding = "deterministic";
  const double d =
      Simulation::open_loop(subnet, det, traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  const double a =
      Simulation::open_loop(subnet, adaptive_cfg(), traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  EXPECT_GT(a, d);
}

TEST(Adaptive, AtLeastMatchesMlidUnderHotSpot) {
  const FatTreeFabric fabric{FatTreeParams(8, 2)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kCentric, 0.3, 0, 5};
  SimConfig det = adaptive_cfg();
  det.policy.forwarding = "deterministic";
  const double d =
      Simulation::open_loop(subnet, det, traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  const double a =
      Simulation::open_loop(subnet, adaptive_cfg(), traffic, 0.9).run()
          .accepted_bytes_per_ns_per_node;
  EXPECT_GE(a, 0.95 * d);
}

TEST(Adaptive, StillDeterministicGivenTheSeed) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 5};
  const SimResult a = Simulation::open_loop(subnet, adaptive_cfg(), traffic,
                                            0.7).run();
  const SimResult b = Simulation::open_loop(subnet, adaptive_cfg(), traffic,
                                            0.7).run();
  EXPECT_EQ(a.packets_measured, b.packets_measured);
  EXPECT_DOUBLE_EQ(a.avg_latency_ns, b.avg_latency_ns);
}

}  // namespace
}  // namespace mlid

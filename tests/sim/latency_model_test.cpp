// Exact checks of the virtual cut-through timing model against the closed
// form  latency = S * t_r + (S + 1) * t_fly + L * t_byte  for a packet
// crossing S switches without contention.
#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mlid {
namespace {

SimConfig quiet_config() {
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 40'000;
  cfg.seed = 7;
  return cfg;
}

TEST(LatencyModel, NeighborTrafficMatchesTheClosedForm) {
  // dst = src ^ 1 crosses exactly one switch (the shared leaf):
  // 1 * 100 + 2 * 20 + 256 * 1 = 396 ns, with zero contention because every
  // pair owns its two links exclusively.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, quiet_config(),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         /*offered_load=*/0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 40u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 396.0);
  EXPECT_DOUBLE_EQ(r.max_latency_ns, 396.0);
  EXPECT_DOUBLE_EQ(r.avg_hops, 1.0);
  EXPECT_EQ(r.packets_dropped, 0u);
}

TEST(LatencyModel, BitComplementCrossesTheFullTree) {
  // In a 4-port 2-tree every complement pair has no common prefix: three
  // switches, 3 * 100 + 4 * 20 + 256 = 636 ns, and the MLID path selection
  // gives each flow private links, so the latency is exact.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, quiet_config(),
                                         {TrafficKind::kBitComplement, 0, 0, 3},
                                         0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 40u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 636.0);
  EXPECT_DOUBLE_EQ(r.max_latency_ns, 636.0);
  EXPECT_DOUBLE_EQ(r.avg_hops, 3.0);
}

TEST(LatencyModel, TallerTreeAddsTwoHopsPerLevel) {
  // 4-port 3-tree bit-complement: 5 switches -> 5*100 + 6*20 + 256 = 876.
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, quiet_config(),
                                         {TrafficKind::kBitComplement, 0, 0, 3},
                                         0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 100u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 876.0);
  EXPECT_DOUBLE_EQ(r.avg_hops, 5.0);
}

TEST(LatencyModel, TimingKnobsScaleTheFormula) {
  SimConfig cfg = quiet_config();
  cfg.routing_delay_ns = 50;
  cfg.flying_time_ns = 10;
  cfg.byte_time_ns = 2;
  cfg.packet_bytes = 128;
  // Neighbor in (4,2): 1*50 + 2*10 + 128*2 = 326.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, cfg,
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  const SimResult r = sim.run();
  ASSERT_GT(r.packets_measured, 50u);
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, 326.0);
}

TEST(LatencyModel, NetworkLatencyEqualsTotalAtLowLoad) {
  // With an idle NIC the packet leaves the source queue instantly, so
  // generation->delivery equals injection->delivery.
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  Simulation sim = Simulation::open_loop(subnet, quiet_config(),
                                         {TrafficKind::kNeighbor, 0, 0, 3},
                                         0.05);
  const SimResult r = sim.run();
  EXPECT_DOUBLE_EQ(r.avg_latency_ns, r.avg_network_latency_ns);
}

TEST(LatencyModel, AcceptedTrafficTracksTheOfferedLoadBelowSaturation) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  for (double load : {0.1, 0.2, 0.4}) {
    Simulation sim = Simulation::open_loop(subnet, quiet_config(),
                                           {TrafficKind::kNeighbor, 0, 0, 3},
                                           load);
    const SimResult r = sim.run();
    // offered bytes/ns/node = load (1 B/ns link, saturating pattern-free).
    EXPECT_NEAR(r.accepted_bytes_per_ns_per_node, load, 0.02 * load + 0.005)
        << "load " << load;
  }
}

}  // namespace
}  // namespace mlid

// FaultSchedule::validate(): per-link event-ordering hardening.  A
// malformed schedule (recover-before-fail, duplicate fails, recover at
// the failure instant) must be rejected up front with a clear error, not
// trip an engine assertion halfway through a run.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <utility>
#include <vector>

#include "common/expect.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

struct Link {
  DeviceId dev_a;
  PortId port_a;
  DeviceId dev_b;
  PortId port_b;
};

// First inter-switch uplink of the fabric (the same family of links
// random_uplink_failures draws from).
Link first_uplink(const FatTreeFabric& fabric) {
  for (std::uint32_t sw = 0; sw < fabric.params().num_switches(); ++sw) {
    if (fabric.switch_label(static_cast<SwitchId>(sw)).level() == 0) continue;
    const DeviceId dev = fabric.switch_device(static_cast<SwitchId>(sw));
    for (int p = fabric.params().half() + 1; p <= fabric.params().m(); ++p) {
      const auto port = static_cast<PortId>(p);
      if (!fabric.fabric().device(dev).port_connected(port)) continue;
      const PortRef peer = fabric.fabric().peer_of(dev, port);
      return {dev, port, peer.device, peer.port};
    }
  }
  ADD_FAILURE() << "fabric has no uplink";
  return {};
}

TEST(FaultSchedule, WellFormedSchedulesValidate) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  s.recover_link(2'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  s.fail_link(3'000, fabric.fabric(), l.dev_a, l.port_a);  // fail again: ok
  s.recover_link(4'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_NO_THROW(s.validate());
  EXPECT_NO_THROW(FaultSchedule{}.validate());
  EXPECT_NO_THROW(FaultSchedule::random_uplink_failures(fabric, 3, 8'000, 7,
                                                        18'000)
                      .validate());
}

TEST(FaultSchedule, RecoverNamingReversedEndpointsValidates) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  // The link is an unordered endpoint pair; either orientation recovers it.
  s.recover_link(2'000, l.dev_b, l.port_b, l.dev_a, l.port_a);
  EXPECT_NO_THROW(s.validate());
}

TEST(FaultSchedule, RejectsRecoverBeforeFail) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  {
    FaultSchedule s;
    s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // recover sorts before the later fail
    s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    s.fail_link(2'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
}

TEST(FaultSchedule, RejectsDuplicateFail) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  {
    FaultSchedule s;  // same timestamp
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // later duplicate without an intervening recovery
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.fail_link(5'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
}

TEST(FaultSchedule, RejectsRecoveryAtTheFailureInstant) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_THROW(s.validate(), ContractViolation);
}

TEST(FaultSchedule, RejectsRefailureAtTheRecoveryInstant) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  // Regression: validate() used to accept or reject this depending on
  // which same-timestamp event was inserted first (sort ties keep
  // insertion order).  Both orders must reject now.
  {
    FaultSchedule s;  // recover inserted first
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.recover_link(2'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    s.fail_link(2'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // re-fail inserted first
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.fail_link(2'000, fabric.fabric(), l.dev_a, l.port_a);
    s.recover_link(2'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // strictly later re-fail stays legal
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.recover_link(2'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    s.fail_link(2'001, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_NO_THROW(s.validate());
  }
}

TEST(FaultSchedule, PeriodicUplinkChurnValidatesAndRespectsBounds) {
  const FatTreeFabric fabric{FatTreeParams(4, 3)};
  const SimTime start = 10'000, period = 20'000, downtime = 6'000;
  const SimTime until = 100'000;
  const FaultSchedule s = FaultSchedule::periodic_uplink_churn(
      fabric, /*links=*/2, start, period, downtime, until, /*seed=*/0xC0FFEE);
  EXPECT_NO_THROW(s.validate());
  ASSERT_FALSE(s.empty());

  std::size_t fails = 0, recovers = 0;
  for (const FaultEvent& e : s.events()) {
    EXPECT_GE(e.at, start);
    EXPECT_LT(e.at, until);
    e.fail ? ++fails : ++recovers;
  }
  // Every window that starts also closes: no link is left dangling down.
  EXPECT_EQ(fails, recovers);

  // Per link the cadence is exact: recover = fail + downtime, next fail =
  // previous fail + period.  Events are time-sorted, so walk per endpoint.
  std::map<std::pair<DeviceId, PortId>, SimTime> last_fail;
  for (const FaultEvent& e : s.events()) {
    const auto key = std::make_pair(e.dev_a, e.port_a);
    if (e.fail) {
      const auto it = last_fail.find(key);
      if (it != last_fail.end()) {
        EXPECT_EQ(e.at, it->second + period);
      }
      last_fail[key] = e.at;
    } else {
      ASSERT_TRUE(last_fail.count(key));
      EXPECT_EQ(e.at, last_fail[key] + downtime);
    }
  }
  // Two distinct links flap, staggered by period / links.
  EXPECT_EQ(last_fail.size(), 2u);
  std::vector<SimTime> firsts;
  for (const FaultEvent& e : s.events()) {
    if (e.fail && e.at < start + period) firsts.push_back(e.at);
  }
  ASSERT_EQ(firsts.size(), 2u);
  EXPECT_EQ(std::abs(firsts[1] - firsts[0]), period / 2);
}

TEST(FaultSchedule, PeriodicUplinkChurnRejectsBadCadence) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  // downtime must be positive and strictly shorter than the period.
  EXPECT_THROW(FaultSchedule::periodic_uplink_churn(fabric, 1, 1'000, 5'000,
                                                    5'000, 50'000, 1),
               ContractViolation);
  EXPECT_THROW(FaultSchedule::periodic_uplink_churn(fabric, 1, 1'000, 5'000,
                                                    0, 50'000, 1),
               ContractViolation);
}

TEST(FaultSchedule, AttachingALiveSmValidatesTheSchedule) {
  FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SubnetManager sm(fabric, subnet);
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 4};
  const Link l = first_uplink(fabric);
  FaultSchedule bad;
  bad.recover_link(9'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_THROW(
      Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, bad}),
      ContractViolation);
  FaultSchedule good;
  good.fail_link(8'000, fabric.fabric(), l.dev_a, l.port_a);
  good.recover_link(18'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  const SimResult r =
      Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, good}).run();
  EXPECT_GT(r.sm_traps, 0u);
}

}  // namespace
}  // namespace mlid

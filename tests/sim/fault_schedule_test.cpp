// FaultSchedule::validate(): per-link event-ordering hardening.  A
// malformed schedule (recover-before-fail, duplicate fails, recover at
// the failure instant) must be rejected up front with a clear error, not
// trip an engine assertion halfway through a run.
#include <gtest/gtest.h>

#include "common/expect.hpp"
#include "sim/engine.hpp"

namespace mlid {
namespace {

struct Link {
  DeviceId dev_a;
  PortId port_a;
  DeviceId dev_b;
  PortId port_b;
};

// First inter-switch uplink of the fabric (the same family of links
// random_uplink_failures draws from).
Link first_uplink(const FatTreeFabric& fabric) {
  for (std::uint32_t sw = 0; sw < fabric.params().num_switches(); ++sw) {
    if (fabric.switch_label(static_cast<SwitchId>(sw)).level() == 0) continue;
    const DeviceId dev = fabric.switch_device(static_cast<SwitchId>(sw));
    for (int p = fabric.params().half() + 1; p <= fabric.params().m(); ++p) {
      const auto port = static_cast<PortId>(p);
      if (!fabric.fabric().device(dev).port_connected(port)) continue;
      const PortRef peer = fabric.fabric().peer_of(dev, port);
      return {dev, port, peer.device, peer.port};
    }
  }
  ADD_FAILURE() << "fabric has no uplink";
  return {};
}

TEST(FaultSchedule, WellFormedSchedulesValidate) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  s.recover_link(2'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  s.fail_link(3'000, fabric.fabric(), l.dev_a, l.port_a);  // fail again: ok
  s.recover_link(4'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_NO_THROW(s.validate());
  EXPECT_NO_THROW(FaultSchedule{}.validate());
  EXPECT_NO_THROW(FaultSchedule::random_uplink_failures(fabric, 3, 8'000, 7,
                                                        18'000)
                      .validate());
}

TEST(FaultSchedule, RecoverNamingReversedEndpointsValidates) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  // The link is an unordered endpoint pair; either orientation recovers it.
  s.recover_link(2'000, l.dev_b, l.port_b, l.dev_a, l.port_a);
  EXPECT_NO_THROW(s.validate());
}

TEST(FaultSchedule, RejectsRecoverBeforeFail) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  {
    FaultSchedule s;
    s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // recover sorts before the later fail
    s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
    s.fail_link(2'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
}

TEST(FaultSchedule, RejectsDuplicateFail) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  {
    FaultSchedule s;  // same timestamp
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
  {
    FaultSchedule s;  // later duplicate without an intervening recovery
    s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
    s.fail_link(5'000, fabric.fabric(), l.dev_a, l.port_a);
    EXPECT_THROW(s.validate(), ContractViolation);
  }
}

TEST(FaultSchedule, RejectsRecoveryAtTheFailureInstant) {
  const FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Link l = first_uplink(fabric);
  FaultSchedule s;
  s.fail_link(1'000, fabric.fabric(), l.dev_a, l.port_a);
  s.recover_link(1'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_THROW(s.validate(), ContractViolation);
}

TEST(FaultSchedule, AttachingALiveSmValidatesTheSchedule) {
  FatTreeFabric fabric{FatTreeParams(4, 2)};
  const Subnet subnet(fabric, "MLID");
  SubnetManager sm(fabric, subnet);
  SimConfig cfg;
  cfg.warmup_ns = 5'000;
  cfg.measure_ns = 20'000;
  const TrafficConfig traffic{TrafficKind::kUniform, 0.2, 0, 4};
  const Link l = first_uplink(fabric);
  FaultSchedule bad;
  bad.recover_link(9'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  EXPECT_THROW(
      Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, bad}),
      ContractViolation);
  FaultSchedule good;
  good.fail_link(8'000, fabric.fabric(), l.dev_a, l.port_a);
  good.recover_link(18'000, l.dev_a, l.port_a, l.dev_b, l.port_b);
  const SimResult r =
      Simulation::open_loop(subnet, cfg, traffic, 0.5, {&sm, good}).run();
  EXPECT_GT(r.sm_traps, 0u);
}

}  // namespace
}  // namespace mlid

#include "sim/traffic.hpp"

#include <gtest/gtest.h>

#include <map>
#include <set>

namespace mlid {
namespace {

TEST(Traffic, UniformNeverPicksSelfAndCoversEveryone) {
  TrafficPattern pattern({TrafficKind::kUniform, 0.2, 0, 7}, 16);
  std::set<NodeId> seen;
  for (int i = 0; i < 4000; ++i) {
    const NodeId dst = pattern.pick_destination(3);
    EXPECT_NE(dst, 3u);
    EXPECT_LT(dst, 16u);
    seen.insert(dst);
  }
  EXPECT_EQ(seen.size(), 15u);
}

TEST(Traffic, UniformIsRoughlyUniform) {
  TrafficPattern pattern({TrafficKind::kUniform, 0.2, 0, 11}, 8);
  std::map<NodeId, int> hist;
  constexpr int kDraws = 70000;
  for (int i = 0; i < kDraws; ++i) ++hist[pattern.pick_destination(0)];
  for (NodeId dst = 1; dst < 8; ++dst) {
    EXPECT_NEAR(hist[dst], kDraws / 7, kDraws / 70) << "dst " << dst;
  }
}

TEST(Traffic, CentricHitsTheHotNodeAtTheConfiguredRate) {
  // P(hot) = h + (1 - h) / (N - 1) for sources other than the hot node.
  TrafficConfig cfg{TrafficKind::kCentric, 0.20, 5, 13};
  TrafficPattern pattern(cfg, 16);
  int hot = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    hot += pattern.pick_destination(2) == 5;
  }
  const double expected = 0.20 + 0.80 / 15.0;
  EXPECT_NEAR(static_cast<double>(hot) / kDraws, expected, 0.01);
}

TEST(Traffic, CentricHotNodeItselfSendsUniformly) {
  TrafficConfig cfg{TrafficKind::kCentric, 0.20, 5, 13};
  TrafficPattern pattern(cfg, 16);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_NE(pattern.pick_destination(5), 5u);
  }
}

TEST(Traffic, PermutationIsAFixedDerangement) {
  TrafficPattern pattern({TrafficKind::kPermutation, 0.2, 0, 99}, 32);
  std::set<NodeId> images;
  for (NodeId src = 0; src < 32; ++src) {
    const NodeId dst = pattern.pick_destination(src);
    EXPECT_NE(dst, src) << "fixed point at " << src;
    EXPECT_TRUE(images.insert(dst).second) << "not a bijection";
    // Stable across draws.
    EXPECT_EQ(pattern.pick_destination(src), dst);
  }
  EXPECT_EQ(images.size(), 32u);
}

TEST(Traffic, BitComplementAndNeighborFormulas) {
  TrafficPattern bc({TrafficKind::kBitComplement, 0.2, 0, 1}, 16);
  EXPECT_EQ(bc.pick_destination(0), 15u);
  EXPECT_EQ(bc.pick_destination(7), 8u);
  TrafficPattern nb({TrafficKind::kNeighbor, 0.2, 0, 1}, 16);
  EXPECT_EQ(nb.pick_destination(0), 1u);
  EXPECT_EQ(nb.pick_destination(1), 0u);
  EXPECT_EQ(nb.pick_destination(6), 7u);
}

TEST(Traffic, SameSeedSameStream) {
  TrafficConfig cfg{TrafficKind::kUniform, 0.2, 0, 321};
  TrafficPattern a(cfg, 16), b(cfg, 16);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.pick_destination(4), b.pick_destination(4));
  }
}

TEST(Traffic, PerSourceStreamsAreIndependent) {
  // Drawing from one source must not perturb another source's stream.
  TrafficConfig cfg{TrafficKind::kUniform, 0.2, 0, 55};
  TrafficPattern a(cfg, 16), b(cfg, 16);
  for (int i = 0; i < 100; ++i) (void)a.pick_destination(9);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.pick_destination(4), b.pick_destination(4));
  }
}

TEST(Traffic, RejectsBadConfigs) {
  EXPECT_THROW(TrafficPattern({TrafficKind::kUniform, 0.2, 0, 1}, 1),
               ContractViolation);
  EXPECT_THROW(TrafficPattern({TrafficKind::kCentric, 1.5, 0, 1}, 4),
               ContractViolation);
  EXPECT_THROW(TrafficPattern({TrafficKind::kCentric, 0.2, 9, 1}, 4),
               ContractViolation);
}

TEST(Traffic, TenantHelpersPartitionEveryNodeExactlyOnce) {
  // 4-way partition of 10 nodes: contiguous near-equal blocks, block
  // bounds from tenant_block_begin invert tenant_of_node.
  constexpr int kTenants = 4;
  constexpr std::uint32_t kNodes = 10;
  for (NodeId i = 0; i < kNodes; ++i) {
    const int t = tenant_of_node(i, kTenants, kNodes);
    EXPECT_GE(t, 0);
    EXPECT_LT(t, kTenants);
    EXPECT_GE(i, tenant_block_begin(t, kTenants, kNodes));
    EXPECT_LT(i, tenant_block_begin(t + 1, kTenants, kNodes));
  }
  EXPECT_EQ(tenant_block_begin(0, kTenants, kNodes), 0u);
  EXPECT_EQ(tenant_block_begin(kTenants, kTenants, kNodes), kNodes);
}

TEST(Traffic, TenantDrawsStayInsideTheSourceBlock) {
  TrafficConfig cfg{TrafficKind::kUniform, 0.2, 0, 17};
  cfg.tenants = 4;
  TrafficPattern pattern(cfg, 16);
  for (NodeId src = 0; src < 16; ++src) {
    const int t = tenant_of_node(src, 4, 16);
    std::set<NodeId> seen;
    for (int i = 0; i < 400; ++i) {
      const NodeId dst = pattern.pick_destination(src);
      EXPECT_NE(dst, src);
      EXPECT_EQ(tenant_of_node(dst, 4, 16), t) << "src " << src;
      seen.insert(dst);
    }
    // The block's three other nodes are all reachable.
    EXPECT_EQ(seen.size(), 3u) << "src " << src;
  }
}

TEST(Traffic, TenantCentricHammersPerTenantHotNodes) {
  TrafficConfig cfg{TrafficKind::kCentric, 0.50, 1, 19};
  cfg.tenants = 2;
  TrafficPattern pattern(cfg, 8);
  // Tenant 0 = nodes [0,4), hot = 0 + (1 % 4) = 1; tenant 1 = [4,8),
  // hot = 4 + 1 = 5.  Hot hits dominate; cross-tenant hits never happen.
  int hot_hits = 0;
  constexpr int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const NodeId dst = pattern.pick_destination(6);
    EXPECT_GE(dst, 4u);
    hot_hits += dst == 5;
  }
  const double expected = 0.50 + 0.50 / 3.0;
  EXPECT_NEAR(static_cast<double>(hot_hits) / kDraws, expected, 0.05);
}

TEST(Traffic, TenantZeroStreamsAreByteIdenticalToPreTenantStreams) {
  // tenants = 0 must keep the historical draw sequence exactly: the
  // scenario=none parity guarantee at the pattern level.
  TrafficConfig legacy{TrafficKind::kUniform, 0.2, 0, 77};
  TrafficConfig modern = legacy;
  modern.tenants = 0;
  TrafficPattern a(legacy, 16), b(modern, 16);
  for (int i = 0; i < 500; ++i) {
    const NodeId src = static_cast<NodeId>(i % 16);
    EXPECT_EQ(a.pick_destination(src), b.pick_destination(src));
  }
}

TEST(Traffic, RejectsBadTenantConfigs) {
  TrafficConfig cfg{TrafficKind::kUniform, 0.2, 0, 1};
  cfg.tenants = -1;
  EXPECT_THROW(TrafficPattern(cfg, 8), ContractViolation);
  cfg.tenants = 5;  // 8 nodes / 5 tenants < 2 nodes per block
  EXPECT_THROW(TrafficPattern(cfg, 8), ContractViolation);
  cfg.tenants = 2;  // permutation has no tenant semantics
  cfg.kind = TrafficKind::kPermutation;
  EXPECT_THROW(TrafficPattern(cfg, 8), ContractViolation);
}

TEST(Traffic, ToStringNames) {
  EXPECT_EQ(to_string(TrafficKind::kUniform), "uniform");
  EXPECT_EQ(to_string(TrafficKind::kCentric), "centric");
  EXPECT_EQ(to_string(TrafficKind::kPermutation), "permutation");
  EXPECT_EQ(to_string(TrafficKind::kBitComplement), "bit-complement");
  EXPECT_EQ(to_string(TrafficKind::kNeighbor), "neighbor");
}

}  // namespace
}  // namespace mlid
